# repligc — common tasks. Everything is stdlib-only and offline.

.PHONY: all build lint test race bench bench-baseline bench-smoke serve-smoke calibrate calibrate-smoke crash-matrix trace microbench experiments quick-experiments examples clean

all: build lint test

build:
	go build ./...

# go vet plus the repository's invariant linter (cmd/gclint): write-barrier
# discipline (syntactic and interprocedural), from-space forwarding hygiene,
# stale heap.Values across may-flip calls, pause-only collector state,
# simulated-clock-only timing, deterministic iteration, dispatch
# exhaustiveness, and the annotation hygiene of //gclint:allow itself.
# See DESIGN.md, "Machine-checked invariants". gclint runs over ./..., which
# includes internal/analysis, internal/trace and internal/faultinject — the
# linter lints itself.
lint:
	go vet ./...
	go run ./cmd/gclint ./...

test:
	go test ./...

race:
	go test -race ./...

# Regenerate the perf trajectory at full scale: per-workload
# baseline-vs-coalesced-vs-checkpointed log and pause metrics plus wall-clock
# barrier and hot-path ns/op. The committed BENCH_PR8.json is this target's
# output, gated against itself-as-baseline when present.
bench:
	go run ./cmd/rtgc-bench -out BENCH_PR8.json perf
	go run ./cmd/rtgc-bench validate BENCH_PR8.json

# Regenerate the committed quick-scale baseline (BENCH_SMOKE.json) that
# bench-smoke gates fresh reports against. Simulated numbers are
# deterministic across machines, so the gate compares exactly; rerun this
# target only when a deliberate collector or cost-model change moves them.
bench-baseline:
	go run ./cmd/rtgc-bench -quick -out BENCH_SMOKE.json perf
	go run ./cmd/rtgc-bench validate BENCH_SMOKE.json

# CI's bench smoke: a quick-scale report validated for schema shape and
# gated against the committed baseline (simulated p95 pause and elapsed time
# only — wall-clock sections are never gated), plus the checkpoint-recovery
# smoke.
bench-smoke:
	go run ./cmd/rtgc-bench -quick -out /tmp/bench_smoke.json -baseline BENCH_SMOKE.json perf
	go run ./cmd/rtgc-bench validate /tmp/bench_smoke.json
	go run ./cmd/rtgc-bench recover

# CI's serving smoke: serve the committed spec (recording the materialised
# trace), validate the report, replay the recorded trace, and require the
# replayed report to be byte-identical — record/replay is exact or the build
# fails.
serve-smoke:
	go run ./cmd/rtgc-bench -out /tmp/serve_smoke.json -record /tmp/serve_smoke.trace serve examples/serve/mixed.json
	go run ./cmd/rtgc-bench servecheck /tmp/serve_smoke.json
	go run ./cmd/rtgc-bench -out /tmp/serve_replay.json servereplay /tmp/serve_smoke.trace
	cmp /tmp/serve_smoke.json /tmp/serve_replay.json

# Fit the simulated cost model to this machine's wall clock: run the paper
# workloads and the single-primitive probes uninstrumented, extract work
# counts from the collector's counters, least-squares the cost constants,
# and write the repligc-calib/1 artifact.
calibrate:
	go run ./cmd/rtgc-bench -out CALIB.json calibrate
	go run ./cmd/rtgc-bench calibcheck CALIB.json

# CI's calibration smoke: reduced iterations, artifact validated end to end.
calibrate-smoke:
	go run ./cmd/rtgc-bench -quick -out /tmp/calib_smoke.json calibrate
	go run ./cmd/rtgc-bench calibcheck /tmp/calib_smoke.json

# The deterministic crash-point matrix: seeded workloads × crash plans
# (snapshot/WAL × truncate/torn-word/duplicate-record, newest-epoch and
# all-epoch damage). Every cell must end in a fingerprint-verified recovery
# or a typed corruption rejection; the report is the CI artifact.
crash-matrix:
	go run ./cmd/rtgc-bench -out crash_matrix.json crashmatrix

# Emit a Perfetto-loadable Chrome trace per paper workload (full scale) and
# shape-check each artifact with the same validator CI uses.
trace:
	go run ./cmd/rtgc-bench -out /tmp/repligc_trace.json trace
	go run ./cmd/rtgc-bench tracecheck /tmp/repligc_trace-primes.json
	go run ./cmd/rtgc-bench tracecheck /tmp/repligc_trace-sort.json
	go run ./cmd/rtgc-bench tracecheck /tmp/repligc_trace-comp.json

# One testing.B benchmark per paper table/figure, at the quick scale.
microbench:
	go test -bench=. -benchmem -run '^$$' .

# Regenerate every table and figure of the paper at full scale.
experiments:
	go run ./cmd/rtgc-bench all

quick-experiments:
	go run ./cmd/rtgc-bench -quick all

examples:
	go run ./examples/quickstart
	go run ./examples/interactive
	go run ./examples/primes
	go run ./examples/futures
	go run ./examples/replay
	go run ./examples/lowlatency

# The two output files the reproduction ships with.
outputs:
	go test ./... 2>&1 | tee test_output.txt
	go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
