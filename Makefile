# repligc — common tasks. Everything is stdlib-only and offline.

.PHONY: all build lint test race bench experiments quick-experiments examples clean

all: build lint test

build:
	go build ./...
	go vet ./...

# The repository's invariant linter (cmd/gclint): write-barrier discipline,
# from-space forwarding hygiene, simulated-clock-only timing, deterministic
# iteration, dispatch exhaustiveness. See DESIGN.md, "Machine-checked
# invariants".
lint:
	go run ./cmd/gclint ./...

test:
	go test ./...

race:
	go test -race ./...

# One testing.B benchmark per paper table/figure, at the quick scale.
bench:
	go test -bench=. -benchmem -run '^$$' .

# Regenerate every table and figure of the paper at full scale.
experiments:
	go run ./cmd/rtgc-bench all

quick-experiments:
	go run ./cmd/rtgc-bench -quick all

examples:
	go run ./examples/quickstart
	go run ./examples/interactive
	go run ./examples/primes
	go run ./examples/futures
	go run ./examples/replay
	go run ./examples/lowlatency

# The two output files the reproduction ships with.
outputs:
	go test ./... 2>&1 | tee test_output.txt
	go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
