package repligc_test

// The testing.B benchmarks mirror the paper's evaluation artifacts: one
// bench per table/figure, each regenerating its rows/series at the quick
// workload scale and reporting the headline quantity as custom metrics
// (simulated milliseconds / percentages). Run the full-scale versions with
// `go run ./cmd/rtgc-bench <experiment>`.

import (
	"testing"

	"repligc/internal/bench"
	"repligc/internal/simtime"
)

func suite() *bench.Suite { return bench.NewSuite(bench.QuickScale()) }

// BenchmarkTable1PauseTimes regenerates table 1 and reports the maximum
// pause of each collector (simulated ms).
func BenchmarkTable1PauseTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := suite()
		rows, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		var scMax, rtMax simtime.Duration
		for _, r := range rows {
			if r.SC[2] > scMax {
				scMax = r.SC[2]
			}
			if r.RT[2] > rtMax {
				rtMax = r.RT[2]
			}
		}
		b.ReportMetric(scMax.Milliseconds(), "sc-max-ms")
		b.ReportMetric(rtMax.Milliseconds(), "rt-max-ms")
	}
}

// BenchmarkFig5Fig6Histograms regenerates the pause histograms of
// figures 5 and 6 (Comp, N=0.2MB, O=1MB).
func BenchmarkFig5Fig6Histograms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := suite()
		_, rtShort, scLong, _, err := s.PauseHistograms()
		if err != nil {
			b.Fatal(err)
		}
		short := 0
		for _, c := range rtShort.Counts {
			short += c
		}
		long := scLong.Overflow
		for _, c := range scLong.Counts {
			long += c
		}
		b.ReportMetric(float64(short), "rt-short-pauses")
		b.ReportMetric(float64(long), "sc-long-pauses")
	}
}

// BenchmarkFig7Breakdown regenerates figure 7's execution-time components.
func BenchmarkFig7Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := suite()
		comps, err := s.Fig7("Comp", bench.PaperParams()[0])
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range comps {
			if c.Name == "mutator" {
				b.ReportMetric(c.Percent, "mutator-pct")
			}
		}
	}
}

func benchOverheads(b *testing.B, workload string) {
	for i := 0; i < b.N; i++ {
		s := suite()
		rows, err := s.Overheads(workload)
		if err != nil {
			b.Fatal(err)
		}
		var rt float64
		n := 0
		for _, row := range rows {
			for _, c := range row.Cells {
				if c.Config == bench.CfgRT {
					rt += c.Overhead
					n++
				}
			}
		}
		b.ReportMetric(rt/float64(n), "rt-overhead-pct")
	}
}

// BenchmarkFig8PrimesOverheads regenerates figure 8 (Primes elapsed times).
func BenchmarkFig8PrimesOverheads(b *testing.B) { benchOverheads(b, "Primes") }

// BenchmarkFig9CompOverheads regenerates figure 9 (Comp elapsed times).
func BenchmarkFig9CompOverheads(b *testing.B) { benchOverheads(b, "Comp") }

// BenchmarkFig10SortOverheads regenerates figure 10 (Sort elapsed times).
func BenchmarkFig10SortOverheads(b *testing.B) { benchOverheads(b, "Sort") }

// BenchmarkTable2LogCosts regenerates table 2 (reapply and flip costs).
func BenchmarkTable2LogCosts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := suite()
		rows, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		var cr, cf float64
		for _, r := range rows {
			cr += r.CRPct
			cf += r.CFPct
		}
		b.ReportMetric(cr/float64(len(rows)), "avg-CR-pct")
		b.ReportMetric(cf/float64(len(rows)), "avg-CF-pct")
	}
}

// BenchmarkTable3LatentGarbage regenerates table 3 (latent garbage).
func BenchmarkTable3LatentGarbage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := suite()
		rows, err := s.Table3()
		if err != nil {
			b.Fatal(err)
		}
		var g float64
		for _, r := range rows {
			g += float64(r.GBytes)
		}
		b.ReportMetric(g/1024, "total-G-KB")
	}
}

// BenchmarkAblationLazyLog measures the §2.5 lazy-log-processing variant.
func BenchmarkAblationLazyLog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := suite()
		rows, err := s.AblationLazy()
		if err != nil {
			b.Fatal(err)
		}
		var base, lazy float64
		for _, r := range rows {
			base += float64(r.Base.Stats.LogReapplied)
			lazy += float64(r.Var.Stats.LogReapplied)
		}
		b.ReportMetric(base, "eager-reapplies")
		b.ReportMetric(lazy, "lazy-reapplies")
	}
}

// BenchmarkAblationBoundedLog measures the §3.4 incremental-log extension.
func BenchmarkAblationBoundedLog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := suite()
		rows, err := s.AblationBoundedLog()
		if err != nil {
			b.Fatal(err)
		}
		var baseMax, varMax simtime.Duration
		for _, r := range rows {
			if m := r.Base.Pauses.Max(); m > baseMax {
				baseMax = m
			}
			if m := r.Var.Pauses.Max(); m > varMax {
				varMax = m
			}
		}
		b.ReportMetric(baseMax.Milliseconds(), "unbounded-max-ms")
		b.ReportMetric(varMax.Milliseconds(), "bounded-max-ms")
	}
}

// BenchmarkAblationLogPolicy measures the §4.5 compiler-modification cost.
func BenchmarkAblationLogPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := suite()
		rows, err := s.AblationLogPolicy()
		if err != nil {
			b.Fatal(err)
		}
		var over float64
		for _, r := range rows {
			over += r.OverheadPct
		}
		b.ReportMetric(over/float64(len(rows)), "mods-overhead-pct")
	}
}

// BenchmarkAblationConcurrent measures the §6 interleaved pacing variant.
func BenchmarkAblationConcurrent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := suite()
		rows, err := s.AblationConcurrent()
		if err != nil {
			b.Fatal(err)
		}
		var baseP99, varP99 simtime.Duration
		for _, r := range rows {
			if p := r.Base.Pauses.Percentile(99); p > baseP99 {
				baseP99 = p
			}
			if p := r.Var.Pauses.Percentile(99); p > varP99 {
				varP99 = p
			}
		}
		b.ReportMetric(baseP99.Milliseconds(), "pause-based-p99-ms")
		b.ReportMetric(varP99.Milliseconds(), "interleaved-p99-ms")
	}
}
