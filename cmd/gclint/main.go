// Command gclint is the repository's invariant linter: a stdlib-only static
// analyzer that enforces the discipline the replication collector's
// correctness rests on — the logging write barrier, the from-space
// invariant's forwarding hygiene, simulated-clock-only timing, deterministic
// iteration, and dispatch exhaustiveness. See DESIGN.md, "Machine-checked
// invariants", for the rule ↔ paper-invariant catalogue.
//
// Usage:
//
//	gclint [-rules] [packages]
//
// Packages default to ./... relative to the module root. The exit status is
// 0 when the tree is clean, 1 when violations are found, and 2 on usage or
// load errors. Violations can be suppressed, one site at a time, with
//
//	//gclint:allow rule[,rule] -- reason why this site is correct
//
// on the offending line or the line above; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"

	"repligc/internal/analysis"
)

func main() {
	listRules := flag.Bool("rules", false, "list the rules and exit")
	flag.Parse()

	rules := analysis.DefaultRules()
	if *listRules {
		for _, r := range rules {
			fmt.Printf("%-12s %s\n", r.Name(), r.Doc())
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gclint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gclint: %v\n", err)
		os.Exit(2)
	}

	diags := analysis.Run(pkgs, rules)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gclint: %d violation(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
