// Command gclint is the repository's invariant linter: a stdlib-only static
// analyzer that enforces the discipline the replication collector's
// correctness rests on — the logging write barrier, the from-space
// invariant's forwarding hygiene, simulated-clock-only timing, deterministic
// iteration, and dispatch exhaustiveness — plus the interprocedural checks
// built on per-function call-graph summaries: stale heap.Values held across
// may-flip calls, barrier completeness on all dataflow paths, and
// pause-only collector state. See DESIGN.md, "Machine-checked invariants",
// for the rule ↔ paper-invariant catalogue.
//
// Usage:
//
//	gclint [-rules] [-summaries] [-json | -github] [-out file] [packages]
//
// Packages default to ./... relative to the module root. The exit status is
// 0 when the tree is clean, 1 when violations are found, and 2 on usage or
// load errors. Output modes:
//
//	-json       print findings as a JSON array on stdout
//	-github     print findings as GitHub Actions ::error annotations
//	-out file   additionally write the JSON findings document to file
//	-summaries  dump the interprocedural per-function summaries and exit
//
// Violations can be suppressed, one site at a time, with
//
//	//gclint:allow rule[,rule] -- reason why this site is correct
//
// on the offending line or the line above; the reason is mandatory, and
// unknown rule names and annotations that suppress nothing are themselves
// findings. The interprocedural rules have dedicated annotations:
// //gclint:handle <invariant> vouches for a heap.Value across a flip,
// //gclint:pauseonly <invariant> marks pause-only fields, and
// //gclint:pauseentry <reason> marks pause entry points.
package main

import (
	"flag"
	"fmt"
	"os"

	"repligc/internal/analysis"
)

//gclint:io writes the rule-documentation file requested with -doc
func main() {
	listRules := flag.Bool("rules", false, "list the rules and exit")
	summaries := flag.Bool("summaries", false, "dump interprocedural function summaries and exit")
	jsonMode := flag.Bool("json", false, "print findings as a JSON array on stdout")
	githubMode := flag.Bool("github", false, "print findings as GitHub Actions ::error annotations")
	outFile := flag.String("out", "", "also write the JSON findings document to this file")
	flag.Parse()

	rules := analysis.DefaultRules()
	if *listRules {
		for _, r := range rules {
			fmt.Printf("%-16s %s\n", r.Name(), r.Doc())
		}
		return
	}
	if *jsonMode && *githubMode {
		fmt.Fprintln(os.Stderr, "gclint: -json and -github are mutually exclusive")
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gclint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gclint: %v\n", err)
		os.Exit(2)
	}

	if *summaries {
		idx := analysis.BuildIndex(pkgs)
		for _, line := range idx.Summaries() {
			fmt.Println(line)
		}
		return
	}

	diags := analysis.Run(pkgs, rules)

	if *outFile != "" {
		doc, err := analysis.DiagnosticsJSON(diags)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gclint: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*outFile, doc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "gclint: %v\n", err)
			os.Exit(2)
		}
	}

	switch {
	case *jsonMode:
		doc, err := analysis.DiagnosticsJSON(diags)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gclint: %v\n", err)
			os.Exit(2)
		}
		os.Stdout.Write(doc)
	case *githubMode:
		for _, d := range diags {
			fmt.Println(analysis.GitHubAnnotation(d))
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gclint: %d violation(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
