// Command mlc compiles a MiniML program and prints its bytecode — the
// compiler substrate on its own. Compilation itself runs on the simulated
// heap (this is the paper's Comp workload), so -stats also reports what the
// compilation did to the collector.
//
// Usage:
//
//	mlc [-stats] program.ml
package main

import (
	"flag"
	"fmt"
	"os"

	"repligc/internal/core"
	"repligc/internal/heap"
	"repligc/internal/lang"
	"repligc/internal/simtime"
	"repligc/internal/stopcopy"
)

//gclint:io reads the MiniML source file named on the command line
func main() {
	stats := flag.Bool("stats", false, "report heap/collector statistics of the compilation")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mlc [-stats] program.ml")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlc: %v\n", err)
		os.Exit(1)
	}

	h := heap.New(heap.DefaultConfig())
	m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), core.LogAllMutations)
	gc := stopcopy.New(h, stopcopy.Config{NurseryBytes: 1 << 20, MajorThresholdBytes: 8 << 20})
	m.AttachGC(gc)

	prog, err := lang.Compile(m, string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlc: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(prog.Disassemble())

	if *stats {
		fmt.Fprintf(os.Stderr, "\ncompilation allocated %.2f KB on the simulated heap, "+
			"%d log entries, %d minor collections\n",
			float64(m.BytesAllocated)/1024, m.LogWrites, gc.Stats().MinorCollections)
	}
}
