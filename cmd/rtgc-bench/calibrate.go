package main

// The calibrate subcommand: runs the wall-clock calibration harness
// (internal/calib) and writes the repligc-calib/1 artifact. All timing
// happens inside internal/calib behind its //gclint:wallclock boundary;
// this file is export glue.

import (
	"encoding/json"
	"fmt"
	"os"

	"repligc/internal/bench"
	"repligc/internal/calib"
)

// runCalibrate executes the calibration suite and writes the artifact to
// outPath ("" = stdout).
//
//gclint:io writes the calibration artifact JSON to the requested path
func runCalibrate(quick bool, outPath string) error {
	cfg := calib.Config{Scale: bench.DefaultScale(), ScaleName: "default"}
	if quick {
		// CI smoke sizing: small workloads, small arenas, fewer probe
		// iterations — enough to validate the artifact end to end without
		// occupying the job.
		cfg = calib.Config{
			Scale:        bench.QuickScale(),
			ScaleName:    "quick",
			Reps:         2,
			ProbeOps:     20000,
			OldSemiBytes: 16 << 20,
		}
	}
	rep, err := calib.Run(cfg)
	if err != nil {
		return err
	}
	if err := calib.Validate(rep); err != nil {
		return fmt.Errorf("generated calibration artifact failed validation: %w", err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows, fit MAPE %.1f%%, r=%.3f, fitted copy %.0f MB/s, replay %.0f MB/s)\n",
		outPath, len(rep.Rows), rep.Fit.MAPEPct, rep.Fit.Pearson,
		rep.FittedCopyRateBytesPerSec/(1<<20), rep.FittedReplayRateBytesPerSec/(1<<20))
	return nil
}

// runCalibCheck validates an existing calibration artifact.
//
//gclint:io reads the calibration artifact JSON under validation
func runCalibCheck(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep calib.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("calibration artifact: %w", err)
	}
	if err := calib.Validate(&rep); err != nil {
		return err
	}
	fmt.Printf("%s: valid %s artifact (%d rows)\n", path, calib.Schema, len(rep.Rows))
	return nil
}
