package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repligc/internal/checkpoint"
	"repligc/internal/faultinject"
)

// runRecoverSmoke is the CI smoke for the recovery path: one seeded
// reference run with the checkpoint writer attached, recovered from its own
// artifacts and probed (audit + continuation + degradation ladder). It is
// the baseline-only row of the crash matrix.
func runRecoverSmoke() error {
	rep, err := checkpoint.RunCrashMatrix(checkpoint.MatrixConfig{
		Seeds:     []uint64{1},
		OpsPerRun: 3000,
	})
	if err != nil {
		return fmt.Errorf("recover smoke: %w", err)
	}
	for _, c := range rep.Cases {
		if c.Failed {
			return fmt.Errorf("recover smoke: seed %d %s: %s (%s)", c.Seed, c.Plan, c.Outcome, c.Err)
		}
	}
	fmt.Printf("recover smoke: %d epochs committed, %d cases, all recovered\n", rep.Epochs, len(rep.Cases))
	return nil
}

// runCrashMatrix executes the full deterministic crash-point matrix and
// writes the report (schema repligc-crash-matrix/1) to outPath, or stdout
// when empty. A contract violation in any cell is exit-status-failing.
//
//gclint:io writes the crash-matrix report JSON to the requested path
func runCrashMatrix(outPath string) error {
	rep, err := checkpoint.RunCrashMatrix(checkpoint.MatrixConfig{
		Seeds:     []uint64{1, 2, 3},
		OpsPerRun: 4000,
		Plans:     faultinject.CrashPlans(0xc0ffee, 12),
	})
	if err != nil {
		return fmt.Errorf("crash matrix: %w", err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	recovered, corrupt := 0, 0
	for _, c := range rep.Cases {
		switch c.Outcome {
		case "recovered":
			recovered++
		case "corrupt-detected":
			corrupt++
		}
	}
	fmt.Fprintf(os.Stderr, "crash matrix: %d cases (%d recovered, %d corruption-rejected), %d failures\n",
		len(rep.Cases), recovered, corrupt, rep.Failures)
	if rep.Failures > 0 {
		return fmt.Errorf("crash matrix: %d cells violated the recovery contract", rep.Failures)
	}
	return nil
}
