package main

// The hot-path section of the perf report (introduced in schema repligc-bench/4):
// wall-clock before/after of the collector's raw-speed optimisations. Each
// "naive" leg is the same collector with core.Config.NaiveReplay set — the
// per-object replay memo, block byte copies and batched scan accounting
// disabled — so the pair differs only in implementation. The simulated
// outcome is proved identical by bench.ReplaySimIdentical, and that proof is
// part of the report.
//
// Wall-clock measurement lives in this command, not under internal/, for the
// same reason as the barrier section: internal/ is the simulated-clock-only
// lint boundary (internal/calib being the one annotated exception).

import (
	"testing"

	"repligc/internal/bench"
	"repligc/internal/core"
	"repligc/internal/heap"
	"repligc/internal/simtime"
)

// hotMutator builds an incremental replicating collector whose minor cycles
// span several budgeted pauses, which is what keeps the replay and scan
// paths busy while the benchmark loops mutate.
func hotMutator(naiveReplay bool) (*core.Mutator, *core.Replicating) {
	h := heap.New(heap.Config{
		NurseryBytes:    1 << 20,
		NurseryCapBytes: 16 << 20,
		OldSemiBytes:    64 << 20,
	})
	m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), core.LogAllMutations)
	gc := core.NewReplicating(h, core.Config{
		NurseryBytes:        1 << 20,
		MajorThresholdBytes: 16 << 20,
		CopyLimitBytes:      100 << 10,
		IncrementalMinor:    true,
		IncrementalMajor:    true,
		NaiveReplay:         naiveReplay,
	})
	m.AttachGC(gc)
	return m, gc
}

// rootSource adapts a function to core.RootSource for the fixtures below.
type rootSource func(core.RootVisitor)

func (f rootSource) VisitRoots(v core.RootVisitor) { f(v) }

// replayNs times a mutation-heavy loop whose log is dominated by runs of
// entries against the same arrays: long-lived arrays are replicated
// mid-cycle while consecutive stores keep dirtying their slots, so every
// pause re-applies batches of same-object entries — the shape the
// per-object forwarding memo accelerates.
func replayNs(naiveReplay bool) float64 {
	m, _ := hotMutator(naiveReplay)
	arrays := make([]heap.Value, 4)
	for i := range arrays {
		arrays[i] = m.MustAlloc(heap.KindArray, 64)
	}
	keep := make([]heap.Value, 1024)
	m.Roots.Register(rootSource(func(v core.RootVisitor) {
		for i := range arrays {
			v(&arrays[i])
		}
		for i := range keep {
			v(&keep[i])
		}
	}))
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// 32 consecutive stores to one array before moving on: the log
			// carries long same-object runs into each pause.
			m.Set(arrays[(i/32)%4], i%32, heap.FromInt(int64(i)))
			if i%4 == 0 {
				p := m.MustAlloc(heap.KindRecord, 30)
				if i%16 == 0 {
					keep[(i/16)%1024] = p
				}
			}
		}
	})
	return float64(r.NsPerOp())
}

// byteCopyNs times byte-range mutations to nursery byte buffers anchored
// from a logged old-generation object: the log-replay phase at each minor
// cycle's start replicates them, so every byte range logged for the rest of
// the cycle is re-applied to the replica — byte-at-a-time on the naive
// path, through heap.CopyPayloadBytes otherwise. Stores stride across large
// buffers so each dirties fresh words (one log entry per store rather than
// a coalesced handful), and the buffers are re-allocated after every flip
// so promotion never closes the replay window. Reported per byte stored.
func byteCopyNs(naiveReplay bool) float64 {
	m, gc := hotMutator(naiveReplay)
	//gclint:allow barrier -- benchmark fixture: the buffers need an old-generation anchor so log replay replicates them at cycle start; every measured store goes through Mutator.SetByteRange
	anchor, ok := m.H.AllocIn(m.H.OldFrom(), heap.KindArray, 4)
	if !ok {
		panic("rtgc-bench: old-space alloc failed")
	}
	keep := make([]heap.Value, 3072)
	const (
		bufBytes   = 32 << 10
		chunkBytes = 512
		ranges     = bufBytes / chunkBytes
	)
	// The buffers are roots as well as anchor referents: flips must update
	// the Go-side handles the loop stores through, or they go stale.
	bufs := make([]heap.Value, 4)
	m.Roots.Register(rootSource(func(v core.RootVisitor) {
		v(&anchor)
		for i := range bufs {
			v(&bufs[i])
		}
		for i := range keep {
			v(&keep[i])
		}
	}))
	refresh := func() {
		for k := range bufs {
			bufs[k] = m.MustAllocBytes(bufBytes)
			m.Set(anchor, k, bufs[k])
		}
	}
	refresh()
	lastMinor := gc.Stats().MinorCollections
	chunk := make([]byte, chunkBytes)
	for i := range chunk {
		chunk[i] = byte(i)
	}
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.SetByteRange(bufs[i%4], (i/4%ranges)*chunkBytes, chunk)
			if i%2 == 0 {
				p := m.MustAlloc(heap.KindRecord, 30)
				if i%4 == 0 {
					keep[(i/4)%3072] = p
				}
			}
			if i%16 == 0 {
				if mc := gc.Stats().MinorCollections; mc != lastMinor {
					lastMinor = mc
					refresh()
				}
			}
		}
	})
	return float64(r.NsPerOp()) / chunkBytes
}

// scanNs times a survivor-heavy allocation loop: large records full of
// non-pointer slots survive into the old generation, so pause time is
// dominated by scanFresh walking boring slots — per-slot budget checks on
// the naive path, batched accounting otherwise. Reported per word scanned.
func scanNs(naiveReplay bool) float64 {
	m, gc := hotMutator(naiveReplay)
	const recWords = 62
	keep := make([]heap.Value, 2048)
	m.Roots.Register(rootSource(func(v core.RootVisitor) {
		for i := range keep {
			v(&keep[i])
		}
	}))
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := m.MustAlloc(heap.KindRecord, recWords)
			m.Init(p, 0, heap.FromInt(int64(i)))
			keep[i%2048] = p
		}
	})
	if gc.Stats().TotalBytesCopied() == 0 {
		return 0 // the loop never triggered a collection; nothing was scanned
	}
	// Every iteration allocates one surviving record of recWords+1 words
	// (header included), and survivors are copied and scanned exactly once
	// per generation, so ns/op over the record size is the per-word figure.
	// Both legs process the identical volume (sim-identical), making the
	// pair directly comparable.
	return float64(r.NsPerOp()) / float64(recWords+1)
}

// rootsNs times root enumeration per slot through the closure-based Visit
// and the reusable Slots buffer.
func rootsNs() (visit, slots float64, zeroAlloc bool) {
	const nRoots = 4096
	var rs core.RootSet
	table := make([]heap.Value, nRoots)
	rs.Register(rootSource(func(v core.RootVisitor) {
		for i := range table {
			v(&table[i])
		}
	}))
	sink := 0
	rv := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += rs.Visit(func(slot *heap.Value) {})
		}
	})
	rsl := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += len(rs.Slots())
		}
	})
	_ = sink
	rs.Slots() // warm the buffer before asserting allocation freedom
	zeroAlloc = testing.AllocsPerRun(100, func() { rs.Slots() }) == 0
	return float64(rv.NsPerOp()) / nRoots, float64(rsl.NsPerOp()) / nRoots, zeroAlloc
}

// speedup guards the naive/optimised ratio against a zero denominator.
func speedup(naive, opt float64) float64 {
	if opt <= 0 {
		return 0
	}
	return naive / opt
}

// measureHotPaths fills the hot-path wall-clock section, including the
// sim-identity proof at the report's scale.
func measureHotPaths(s bench.Scale) (bench.HotPathsNsOp, error) {
	identical, err := bench.ReplaySimIdentical(s)
	if err != nil {
		return bench.HotPathsNsOp{}, err
	}
	hp := bench.HotPathsNsOp{
		ReplayNaive:   replayNs(true),
		ReplayBatched: replayNs(false),
		ByteCopyNaive: byteCopyNs(true),
		ByteCopyBlock: byteCopyNs(false),
		ScanNaive:     scanNs(true),
		ScanBatched:   scanNs(false),
		SimIdentical:  identical,
	}
	var zero bool
	hp.RootsVisit, hp.RootsSlots, zero = rootsNs()
	hp.ZeroAllocs = zero
	hp.ReplaySpeedupX = speedup(hp.ReplayNaive, hp.ReplayBatched)
	hp.ByteCopySpeedupX = speedup(hp.ByteCopyNaive, hp.ByteCopyBlock)
	hp.ScanSpeedupX = speedup(hp.ScanNaive, hp.ScanBatched)
	hp.RootsSpeedupX = speedup(hp.RootsVisit, hp.RootsSlots)
	return hp, nil
}
