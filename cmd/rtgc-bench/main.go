// Command rtgc-bench regenerates every table and figure of the paper's
// evaluation (§4). Each subcommand reproduces one artifact; "all" runs the
// whole suite. Reported times are simulated milliseconds from the
// deterministic cost model calibrated to the paper's hardware (2 MB/s
// copying, so L = 100 KB yields 50 ms pauses).
//
// Usage:
//
//	rtgc-bench [-quick] table1|table2|table3|fig5|fig6|fig7|fig8|fig9|fig10|ablations|all
//	rtgc-bench [-quick] [-out FILE] [-baseline FILE] perf
//	rtgc-bench validate FILE
//	rtgc-bench [-quick] [-out FILE] calibrate
//	rtgc-bench calibcheck FILE
//	rtgc-bench [-quick] [-out FILE] trace [workload]
//	rtgc-bench tracecheck FILE
//	rtgc-bench recover
//	rtgc-bench [-out FILE] crashmatrix
//	rtgc-bench [-out FILE] [-record FILE] serve SPECFILE
//	rtgc-bench [-out FILE] servereplay TRACEFILE
//	rtgc-bench servecheck FILE
//
// "perf" emits the performance trajectory (BENCH_PR8.json): per-workload
// baseline-vs-coalesced-vs-checkpointed log and pause metrics in simulated
// time, plus wall-clock barrier and hot-path ns/op. "validate" checks a
// previously emitted report's schema and internal consistency (the CI smoke
// check — shape only, never thresholds on the numbers). With -baseline, a
// fresh perf report is additionally gated against a committed one: simulated
// p95 pause or elapsed time regressing beyond tolerance fails the run.
//
// "calibrate" runs the wall-clock calibration harness (internal/calib): the
// benchmark workloads and single-primitive probes run uninstrumented under
// the host clock, per-primitive work counts are extracted from the
// collector's counters, and a least-squares fit produces this machine's
// simtime cost constants (repligc-calib/1 artifact). "calibcheck" validates
// a previously emitted artifact.
//
// "trace" runs the paper workloads (Primes, Sort, Comp — or just the one
// named) under the full real-time configuration with the event recorder
// attached, prints each run's trace digest (pause quantiles, MMU curve,
// per-phase attribution) and, with -out, writes a Chrome trace-event JSON
// per workload (Perfetto-loadable; "-out x.json" yields x-primes.json
// etc.). "tracecheck" validates a previously emitted Chrome trace's shape
// (balanced B/E events, ordered timestamps) — the CI artifact check.
//
// "serve" runs the GC-under-live-traffic experiment (internal/workload): a
// spec-driven open-loop request trace is materialised and served under the
// naive-barrier and coalesced legs, producing the schema-5 serving report
// (per-cohort latency tails, SLO breakdowns, queue stats, pause-intrusion
// attribution, request-granularity MMU). With -record, the materialised
// trace is also written as a fingerprinted artifact; "servereplay" serves
// such an artifact bit-identically; "servecheck" validates a serving
// report's shape — the CI artifact check.
//
// "recover" is the checkpoint-recovery smoke: a seeded run with the
// incremental checkpoint writer attached, recovered from its own artifacts
// with the fingerprint, audit and degradation ladder verified.
// "crashmatrix" runs the full deterministic crash-point matrix (workloads ×
// crash plans, newest-epoch and all-epoch damage) and writes the
// repligc-crash-matrix/1 report — the CI artifact proving every cell ends
// in verified recovery or a typed corruption rejection.
package main

import (
	"flag"
	"fmt"
	"os"

	"repligc/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "use the small test-scale workloads")
	out := flag.String("out", "", "write the perf report to this file instead of stdout")
	baseline := flag.String("baseline", "", "gate a fresh perf report against this committed report (simulated elapsed and p95 pause)")
	record := flag.String("record", "", "serve: also write the materialised trace artifact to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rtgc-bench [-quick] <experiment>\n")
		fmt.Fprintf(os.Stderr, "       rtgc-bench [-quick] [-out FILE] [-baseline FILE] perf\n")
		fmt.Fprintf(os.Stderr, "       rtgc-bench validate FILE\n")
		fmt.Fprintf(os.Stderr, "       rtgc-bench [-quick] [-out FILE] calibrate\n")
		fmt.Fprintf(os.Stderr, "       rtgc-bench calibcheck FILE\n")
		fmt.Fprintf(os.Stderr, "       rtgc-bench [-quick] [-out FILE] trace [Primes|Sort|Comp]\n")
		fmt.Fprintf(os.Stderr, "       rtgc-bench tracecheck FILE\n")
		fmt.Fprintf(os.Stderr, "       rtgc-bench recover\n")
		fmt.Fprintf(os.Stderr, "       rtgc-bench [-out FILE] crashmatrix\n")
		fmt.Fprintf(os.Stderr, "       rtgc-bench [-out FILE] [-record FILE] serve SPECFILE\n")
		fmt.Fprintf(os.Stderr, "       rtgc-bench [-out FILE] servereplay TRACEFILE\n")
		fmt.Fprintf(os.Stderr, "       rtgc-bench servecheck FILE\n")
		fmt.Fprintf(os.Stderr, "experiments: table1 table2 table3 fig5 fig6 fig7 fig8 fig9 fig10 ablations all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	wantArgs := 1
	switch {
	case flag.NArg() > 0 && (flag.Arg(0) == "validate" || flag.Arg(0) == "tracecheck" || flag.Arg(0) == "calibcheck" ||
		flag.Arg(0) == "serve" || flag.Arg(0) == "servereplay" || flag.Arg(0) == "servecheck"):
		wantArgs = 2
	case flag.NArg() == 2 && flag.Arg(0) == "trace":
		wantArgs = 2 // optional workload selector
	}
	if flag.NArg() != wantArgs {
		flag.Usage()
		os.Exit(2)
	}

	scale, scaleName := bench.DefaultScale(), "default"
	if *quick {
		scale, scaleName = bench.QuickScale(), "quick"
	}
	s := bench.NewSuite(scale)

	var run func(name string) error
	run = func(name string) error {
		switch name {
		case "table1":
			rows, err := s.Table1()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatTable1(rows))
		case "fig5", "fig6":
			a, b, c, d, err := s.PauseHistograms()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatHistograms(a, b, c, d))
		case "fig7":
			comps, err := s.Fig7("Comp", bench.PaperParams()[0])
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatFig7("Comp", comps))
		case "fig8", "fig9", "fig10":
			figOf := map[string]struct {
				n int
				w string
			}{"fig8": {8, "Primes"}, "fig9": {9, "Comp"}, "fig10": {10, "Sort"}}[name]
			rows, err := s.Overheads(figOf.w)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatOverheads(figOf.n, rows))
		case "table2":
			rows, err := s.Table2()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatTable2(rows))
		case "table3":
			rows, err := s.Table3()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatTable3(rows))
		case "ablations":
			lazy, err := s.AblationLazy()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatAblation("Ablation: lazy log processing (paper §2.5)", lazy))
			fmt.Println()
			bounded, err := s.AblationBoundedLog()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatAblation("Ablation: bounded (incremental) log processing (paper §3.4 extension)", bounded))
			fmt.Println()
			deferred, err := s.AblationDeferMutables()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatAblation("Ablation: deferred mutable copying (paper §2.5 copy order)", deferred))
			fmt.Println()
			conc, err := s.AblationConcurrent()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatAblation("Ablation: interleaved concurrent-style pacing (paper §6)", conc))
			fmt.Println()
			logpol, err := s.AblationLogPolicy()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatLogPolicy(logpol))
		case "perf":
			return runPerf(scale, scaleName, *out, *baseline)
		case "recover":
			return runRecoverSmoke()
		case "crashmatrix":
			return runCrashMatrix(*out)
		case "validate":
			return runValidate(flag.Arg(1))
		case "serve":
			return runServe(flag.Arg(1), *out, *record)
		case "servereplay":
			return runServeReplay(flag.Arg(1), *out)
		case "servecheck":
			return runServeCheck(flag.Arg(1))
		case "calibrate":
			return runCalibrate(*quick, *out)
		case "calibcheck":
			return runCalibCheck(flag.Arg(1))
		case "trace":
			return runTrace(scale, flag.Arg(1), *out)
		case "tracecheck":
			return runTraceCheck(flag.Arg(1))
		case "all":
			for _, e := range []string{"table1", "fig5", "fig7", "fig8", "fig9", "fig10", "table2", "table3", "ablations"} {
				if err := run(e); err != nil {
					return err
				}
				fmt.Println()
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintf(os.Stderr, "rtgc-bench: %v\n", err)
		os.Exit(1)
	}
}
