package main

// The perf subcommand: emits the performance trajectory as JSON
// (BENCH_PR8.json). Workload metrics come from internal/bench in simulated
// time; the barrier and hot-path ns/op sections are wall-clock, which is why
// they live in this command rather than under internal/ (the
// simulated-clock-only lint boundary).

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repligc/internal/bench"
	"repligc/internal/core"
	"repligc/internal/heap"
	"repligc/internal/simtime"
)

// barrierMutator builds a mutator with an incremental collector attached,
// matching the setup of internal/core's micro-benchmarks.
func barrierMutator(naive bool) *core.Mutator {
	h := heap.New(heap.Config{
		NurseryBytes:    1 << 20,
		NurseryCapBytes: 16 << 20,
		OldSemiBytes:    64 << 20,
	})
	m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), core.LogAllMutations)
	m.NaiveBarrier = naive
	gc := core.NewReplicating(h, core.Config{
		NurseryBytes:        1 << 20,
		MajorThresholdBytes: 4 << 20,
		CopyLimitBytes:      100 << 10,
		IncrementalMinor:    true,
		IncrementalMajor:    true,
	})
	m.AttachGC(gc)
	return m
}

// oldStoreNs times repeated stores to one old-generation slot: with naive
// true every store appends a log entry; with coalescing the first store
// stamps the slot and the rest are dirty hits.
func oldStoreNs(naive bool) float64 {
	m := barrierMutator(naive)
	//gclint:allow barrier -- benchmark fixture: the store being measured needs an old-generation target, and every measured store goes through Mutator.Set
	arr, ok := m.H.AllocIn(m.H.OldFrom(), heap.KindArray, 64)
	if !ok {
		panic("rtgc-bench: old-space alloc failed")
	}
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Set(arr, 0, heap.FromInt(int64(i)))
			if i%4096 == 0 {
				m.Log.TrimTo(m.Log.Len())
			}
		}
	})
	return float64(r.NsPerOp())
}

// nurseryStoreNs times the nursery fast path: stores to an unreplicated
// nursery object append nothing.
func nurseryStoreNs() float64 {
	m := barrierMutator(false)
	arr := m.MustAlloc(heap.KindArray, 64)
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Set(arr, i%64, heap.FromInt(int64(i)))
		}
	})
	return float64(r.NsPerOp())
}

// fastPathAllocsZero reports whether both fast paths are allocation-free.
func fastPathAllocsZero() bool {
	m := barrierMutator(false)
	nursery := m.MustAlloc(heap.KindArray, 8)
	//gclint:allow barrier -- benchmark fixture: the dirty-stamp probe needs an old-generation target, and every measured store goes through Mutator.Set
	old, ok := m.H.AllocIn(m.H.OldFrom(), heap.KindArray, 8)
	if !ok {
		panic("rtgc-bench: old-space alloc failed")
	}
	m.Set(old, 0, heap.FromInt(0)) // prime the stamp
	n := testing.AllocsPerRun(1000, func() { m.Set(nursery, 0, heap.FromInt(1)) })
	n += testing.AllocsPerRun(1000, func() { m.Set(old, 0, heap.FromInt(1)) })
	return n == 0
}

// measureBarrier fills the wall-clock section of the report.
func measureBarrier() bench.BarrierNsOp {
	b := bench.BarrierNsOp{
		Naive:       oldStoreNs(true),
		DirtyHit:    oldStoreNs(false),
		NurserySkip: nurseryStoreNs(),
		ZeroAllocs:  fastPathAllocsZero(),
	}
	if b.DirtyHit > 0 {
		b.SpeedupX = b.Naive / b.DirtyHit
	}
	return b
}

// regressionTolerancePct is how far a fresh report's simulated elapsed time
// or p95 pause may drift above the committed baseline before the gate
// fails. Simulated numbers are deterministic, so on unchanged code the
// comparison is exact; the headroom only admits deliberate small changes.
const regressionTolerancePct = 10

// runPerf builds the full report and writes it to outPath ("" = stdout),
// gating it against baselinePath when one is given.
//
//gclint:io writes the benchmark report JSON to the requested path
func runPerf(s bench.Scale, scaleName, outPath, baselinePath string) error {
	rep, err := bench.RunPerf(s, scaleName)
	if err != nil {
		return err
	}
	rep.Barrier = measureBarrier()
	rep.HotPaths, err = measureHotPaths(s)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := bench.ValidatePerf(data); err != nil {
		return fmt.Errorf("generated report failed validation: %w", err)
	}
	if baselinePath != "" {
		base, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("perf baseline: %w", err)
		}
		if err := bench.ComparePerf(data, base, regressionTolerancePct); err != nil {
			return err
		}
		fmt.Printf("baseline gate passed against %s (+%d%% tolerance)\n",
			baselinePath, regressionTolerancePct)
	}
	if outPath == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d workloads, barrier %0.1f -> %0.1f ns/op, replay %0.1f -> %0.1f, copy %0.2f -> %0.2f ns/B)\n",
		outPath, len(rep.Workloads), rep.Barrier.Naive, rep.Barrier.DirtyHit,
		rep.HotPaths.ReplayNaive, rep.HotPaths.ReplayBatched,
		rep.HotPaths.ByteCopyNaive, rep.HotPaths.ByteCopyBlock)
	return nil
}

// runValidate checks an existing report file.
//
//gclint:io reads the benchmark report JSON under validation
func runValidate(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := bench.ValidatePerf(data); err != nil {
		return err
	}
	fmt.Printf("%s: valid %s report\n", path, bench.PerfSchema)
	return nil
}
