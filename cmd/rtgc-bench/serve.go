package main

// The serving subcommands: GC under live traffic.
//
//	rtgc-bench [-out FILE] [-record FILE] serve SPECFILE
//	rtgc-bench [-out FILE] servereplay TRACEFILE
//	rtgc-bench servecheck FILE
//
// "serve" parses a workload spec, materialises its trace, serves it under
// the naive-barrier and coalesced legs, and emits the schema-5 serving
// report; -record additionally writes the materialised trace artifact.
// "servereplay" decodes a recorded trace artifact (fingerprint-verified)
// and serves it — the same traffic, bit for bit. "servecheck" validates a
// previously emitted serving report's schema and internal consistency.

import (
	"encoding/json"
	"fmt"
	"os"

	"repligc/internal/workload"
)

//gclint:io reads the spec file, writes the report and optional trace artifact
func runServe(specPath, outPath, recordPath string) error {
	raw, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	spec, err := workload.ParseSpec(raw)
	if err != nil {
		return err
	}
	tr, err := workload.Generate(spec)
	if err != nil {
		return err
	}
	if recordPath != "" {
		enc, err := workload.EncodeTrace(tr)
		if err != nil {
			return err
		}
		if err := os.WriteFile(recordPath, enc, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "rtgc-bench: recorded %d requests (%d bytes) to %s\n",
			len(tr.Reqs), len(enc), recordPath)
	}
	sec, err := workload.RunLegs(tr, workload.StandardLegs())
	if err != nil {
		return err
	}
	return emitServing(sec, outPath)
}

//gclint:io reads the trace artifact, writes the report
func runServeReplay(tracePath, outPath string) error {
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		return err
	}
	tr, err := workload.DecodeTrace(raw)
	if err != nil {
		return err
	}
	sec, err := workload.RunLegs(tr, workload.StandardLegs())
	if err != nil {
		return err
	}
	return emitServing(sec, outPath)
}

//gclint:io writes the serving report JSON to the requested path
func emitServing(sec *workload.Section, outPath string) error {
	data, err := json.MarshalIndent(workload.BuildReport(sec), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" {
		os.Stdout.Write(data)
		return nil
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Print(workload.FormatSection(sec))
	fmt.Printf("serving report written to %s\n", outPath)
	return nil
}

//gclint:io reads the serving report JSON under validation
func runServeCheck(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := workload.ValidateReport(data); err != nil {
		return err
	}
	fmt.Printf("%s: valid %s serving report\n", path, workload.ReportSchema)
	return nil
}
