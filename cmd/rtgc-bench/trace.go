package main

// The "trace" subcommand: run the paper workloads under the full real-time
// configuration with the event recorder attached, print each run's digest,
// and optionally export Chrome trace-event JSON for Perfetto. The
// "tracecheck" subcommand is the matching artifact validator CI runs.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repligc/internal/bench"
	"repligc/internal/trace"
)

// tracePath derives the per-workload output file: "x.json" for Primes
// becomes "x-primes.json".
func tracePath(out, workload string) string {
	ext := filepath.Ext(out)
	return out[:len(out)-len(ext)] + "-" + strings.ToLower(workload) + ext
}

// runTrace traces one workload (or, with workload == "", all three) under
// CfgRT in the paper's 50 ms parameter cell, printing the digest and — when
// out is non-empty — writing a Chrome trace per workload.
//
//gclint:io writes the Chrome trace artifact per workload
func runTrace(s bench.Scale, workload, out string) error {
	workloads := []bench.Workload{bench.Primes(s), bench.Sort(s), bench.Comp(s)}
	if workload != "" {
		found := false
		for _, w := range workloads {
			if w.Name() == workload {
				workloads, found = []bench.Workload{w}, true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown workload %q (want Primes, Sort or Comp)", workload)
		}
	}
	params := bench.PaperParams()[0]
	for _, w := range workloads {
		tr := trace.NewRecorder(1 << 20)
		_, err := bench.Run(w, bench.RunConfig{Config: bench.CfgRT, Params: params, Trace: tr})
		if err != nil {
			return fmt.Errorf("trace %s: %w", w.Name(), err)
		}
		an, err := trace.Analyze(tr.Events())
		if err != nil {
			return fmt.Errorf("trace %s: %w", w.Name(), err)
		}
		fmt.Print(trace.Summary(fmt.Sprintf("%s (%s, %v)", w.Name(), bench.CfgRT, params), an, tr.Dropped()))
		if out == "" {
			continue
		}
		labels := map[string]string{
			"workload":  w.Name(),
			"collector": string(bench.CfgRT),
			"params":    params.String(),
		}
		data, err := trace.ChromeTrace(tr.Events(), labels)
		if err != nil {
			return fmt.Errorf("trace %s: %w", w.Name(), err)
		}
		// Self-check before writing: an artifact that would fail
		// tracecheck must never be produced in the first place.
		if err := trace.ValidateChrome(data); err != nil {
			return fmt.Errorf("trace %s: emitted trace failed validation: %w", w.Name(), err)
		}
		path := tracePath(out, w.Name())
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return fmt.Errorf("trace %s: %w", w.Name(), err)
		}
		fmt.Printf("wrote %s (%d events)\n", path, tr.Len())
	}
	return nil
}

// runTraceCheck validates a previously emitted Chrome trace file's shape.
//
//gclint:io reads the Chrome trace file under validation
func runTraceCheck(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := trace.ValidateChrome(data); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("%s: valid Chrome trace\n", path)
	return nil
}
