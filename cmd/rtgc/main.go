// Command rtgc compiles and runs a MiniML program on the simulated heap
// under a chosen garbage collector, then reports the collector's pause-time
// and work statistics — a direct way to watch the replication collector
// bound pauses on your own programs.
//
// Usage:
//
//	rtgc [flags] program.ml
//	rtgc -restore DIR
//	rtgc [-gc C] -serve SPECFILE
//
// The collector flags mirror the paper's parameters: -gc selects the
// configuration, -n/-o/-l set N, O and L in kilobytes. With -serve, no
// program runs: the open-loop serving engine materialises the request spec
// and prints its latency/SLO digest under the selected collector.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repligc/internal/checkpoint"
	"repligc/internal/core"
	"repligc/internal/heap"
	"repligc/internal/lang"
	"repligc/internal/simtime"
	"repligc/internal/stopcopy"
	"repligc/internal/trace"
	"repligc/internal/vm"
)

//gclint:io reads the MiniML source program and writes the optional trace/checkpoint artifacts
func main() {
	gcName := flag.String("gc", "rt", "collector: rt, rt-conc, minor-inc, major-inc, sc, sc-mods")
	nKB := flag.Int64("n", 200, "nursery size N in KB")
	oKB := flag.Int64("o", 1024, "major threshold O in KB")
	lKB := flag.Int64("l", 100, "copy limit L in KB (incremental configurations)")
	oldMB := flag.Int64("old", 96, "old-space semispace size in MB")
	stats := flag.Bool("stats", true, "print collector statistics after the run")
	disasm := flag.Bool("S", false, "print the compiled bytecode instead of running")
	census := flag.Bool("census", false, "print a live-object census by kind after the run")
	prelude := flag.Bool("prelude", false, "prepend the MiniML standard prelude")
	traceFile := flag.String("trace", "", "write a Chrome trace-event JSON (Perfetto-loadable) of the run to this file")
	traceSummary := flag.Bool("trace-summary", false, "print the trace digest (pause quantiles, MMU, phases) to stderr")
	ckptDir := flag.String("checkpoint", "", "write crash-consistent incremental checkpoints to this directory (replicating collectors only)")
	restoreDir := flag.String("restore", "", "recover the newest checkpoint from this directory, audit it, and print its summary (no program runs)")
	serveSpec := flag.String("serve", "", "serve the open-loop request spec in this file under -gc and print the serving digest (no program runs)")
	flag.Parse()
	if *restoreDir != "" && flag.NArg() == 0 {
		os.Exit(runRestore(*restoreDir))
	}
	if *serveSpec != "" && flag.NArg() == 0 {
		os.Exit(runServeSpec(*serveSpec, *gcName))
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rtgc [flags] program.ml")
		fmt.Fprintln(os.Stderr, "       rtgc -restore DIR")
		fmt.Fprintln(os.Stderr, "       rtgc [-gc C] -serve SPECFILE")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *nKB <= 0 || *oKB <= 0 || *lKB <= 0 || *oldMB <= 0 {
		fmt.Fprintln(os.Stderr, "rtgc: -n, -o, -l and -old must be positive")
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtgc: %v\n", err)
		os.Exit(1)
	}

	h := heap.New(heap.Config{
		NurseryBytes:    *nKB << 10,
		NurseryCapBytes: 32 << 20,
		OldSemiBytes:    *oldMB << 20,
	})
	policy := core.LogAllMutations
	if *gcName == "sc" {
		policy = core.LogPointersOnly
	}
	m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), policy)

	var gc core.Collector
	switch *gcName {
	case "sc", "sc-mods":
		gc = stopcopy.New(h, stopcopy.Config{NurseryBytes: *nKB << 10, MajorThresholdBytes: *oKB << 10})
	case "rt", "rt-conc", "minor-inc", "major-inc":
		gc = core.NewReplicating(h, core.Config{
			NurseryBytes:           *nKB << 10,
			MajorThresholdBytes:    *oKB << 10,
			CopyLimitBytes:         *lKB << 10,
			IncrementalMinor:       *gcName != "major-inc",
			IncrementalMajor:       *gcName != "minor-inc",
			InterleavedTaxPermille: map[bool]int{true: 1500, false: 0}[*gcName == "rt-conc"],
			BoundedLogProcessing:   *gcName == "rt-conc",
		})
	default:
		fmt.Fprintf(os.Stderr, "rtgc: unknown collector %q\n", *gcName)
		os.Exit(2)
	}
	m.AttachGC(gc)

	var ckptW *checkpoint.Writer
	if *ckptDir != "" {
		rep, ok := gc.(*core.Replicating)
		if !ok {
			fmt.Fprintf(os.Stderr, "rtgc: -checkpoint needs a replicating collector, not %q\n", *gcName)
			os.Exit(2)
		}
		ckptW = checkpoint.NewWriter(checkpoint.Config{Dir: *ckptDir})
		rep.SetCheckpointer(ckptW)
	}

	// The recorder is always attached: it charges nothing to the simulated
	// clock, so the run is identical with or without it, and a late decision
	// to look at -stats still has data.
	tr := trace.NewRecorder(1 << 18)
	m.Trace = tr
	clock := m.Clock
	h.EpochHook = func(epoch uint32) { tr.LogEpoch(clock.Now(), int64(epoch)) }
	if ts, ok := gc.(interface{ SetTrace(*trace.Recorder) }); ok {
		ts.SetTrace(tr)
	}

	text := string(src)
	if *prelude {
		text = lang.Prelude + text
	}
	prog, err := lang.Compile(m, text)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtgc: %v\n", err)
		os.Exit(1)
	}
	if *disasm {
		fmt.Print(prog.Disassemble())
		return
	}

	machine := vm.New(m, prog)
	runErr := machine.Run()
	os.Stdout.Write(machine.Output.Bytes())
	if err := gc.FinishCycles(m); err != nil && runErr == nil {
		runErr = err
	}
	if ckptW != nil && runErr == nil {
		if err := ckptW.ForceCommit(m, gc.(*core.Replicating)); err != nil {
			runErr = fmt.Errorf("final checkpoint: %w", err)
		}
	}

	an, anErr := trace.Analyze(tr.Events())
	if anErr != nil {
		// The hook discipline should make this impossible; report, don't hide.
		fmt.Fprintf(os.Stderr, "rtgc: malformed trace: %v\n", anErr)
	}
	if *traceFile != "" {
		labels := map[string]string{
			"program":   flag.Arg(0),
			"collector": gc.Name(),
			//gclint:allow wallclock -- exporter glue: the wall-clock stamp only labels the artifact; nothing simulated reads it
			"exported_at": time.Now().UTC().Format(time.RFC3339),
		}
		data, err := trace.ChromeTrace(tr.Events(), labels)
		if err == nil {
			err = os.WriteFile(*traceFile, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtgc: writing trace: %v\n", err)
			os.Exit(1)
		}
	}
	if *traceSummary && an != nil {
		fmt.Fprintf(os.Stderr, "\n%s", trace.Summary(flag.Arg(0), an, tr.Dropped()))
	}
	if runErr != nil {
		// Every program-level failure — MiniML runtime errors and heap
		// exhaustion (the typed core.OOMError) alike — is one diagnostic
		// line and exit status 1, never a Go panic traceback.
		fmt.Fprintf(os.Stderr, "rtgc: %v\n", runErr)
		os.Exit(1)
	}
	if *stats {
		st := gc.Stats()
		rec := gc.Pauses()
		fmt.Fprintf(os.Stderr, "\n--- %s collector (simulated time) ---\n", gc.Name())
		fmt.Fprintf(os.Stderr, "elapsed            %v\n", m.Clock.Now())
		fmt.Fprintf(os.Stderr, "allocated          %.2f MB\n", float64(m.BytesAllocated)/(1<<20))
		fmt.Fprintf(os.Stderr, "minor collections  %d\n", st.MinorCollections)
		fmt.Fprintf(os.Stderr, "major collections  %d\n", st.MajorCollections)
		fmt.Fprintf(os.Stderr, "copied minor/major %.2f / %.2f MB\n",
			float64(st.BytesCopiedMinor)/(1<<20), float64(st.BytesCopiedMajor)/(1<<20))
		fmt.Fprintf(os.Stderr, "pauses             %d (p50 %v, p99 %v, max %v)\n",
			st.PauseCount, rec.Percentile(50), rec.Percentile(99), rec.Max())
		fmt.Fprintf(os.Stderr, "log entries        %d written, %d reapplied\n",
			m.LogWrites, st.LogReapplied)
		if ckptW != nil {
			cs := ckptW.Stats()
			fmt.Fprintf(os.Stderr, "checkpoints        %d committed, %d aborted, %.2f MB snapshots + %.2f MB WAL, %v charged\n",
				cs.Committed, cs.Aborted,
				float64(cs.SnapshotBytes)/(1<<20), float64(cs.WALBytes)/(1<<20),
				m.Clock.AccountTotal(simtime.AcctCheckpoint))
		}
		if an != nil {
			fmt.Fprintf(os.Stderr, "utilization        %.1f%%\n", 100*an.Utilization())
			mmu := "MMU               "
			for _, pt := range an.MMUCurve(an.StandardWindows()) {
				mmu += fmt.Sprintf(" %v=%.1f%%", pt.Window, 100*pt.Utilization)
			}
			fmt.Fprintln(os.Stderr, mmu)
			for p := trace.Phase(0); p < trace.NumPhases; p++ {
				if an.PhaseCount[p] == 0 {
					continue
				}
				fmt.Fprintf(os.Stderr, "phase %-12s %v over %d spans\n", p, an.PhaseTime[p], an.PhaseCount[p])
			}
		}
	}
	if *census {
		fmt.Fprintf(os.Stderr, "\n--- live-object census ---\n")
		c := h.Census(&h.Nursery, h.OldFrom())
		for k := heap.KindRecord; k <= heap.KindMax; k++ {
			if e, ok := c[k]; ok {
				fmt.Fprintf(os.Stderr, "%-8s %8d objects %10.1f KB\n", k, e.Count, float64(e.Bytes)/1024)
			}
		}
	}
}

// runRestore recovers the newest checkpoint epoch in dir, re-attaches a
// runtime over it, audits the heap, and prints the recovered summary. The
// exit status is the contract: 0 for a verified recovery, 1 for a typed
// corruption rejection or audit failure.
func runRestore(dir string) int {
	r, err := checkpoint.Recover(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtgc: restore: %v\n", err)
		return 1
	}
	m := core.NewMutator(r.Heap, simtime.NewClock(), simtime.Default1993(), core.LogAllMutations)
	gc := core.NewReplicating(r.Heap, core.Config{
		NurseryBytes:        200 << 10,
		MajorThresholdBytes: 1 << 20,
		CopyLimitBytes:      100 << 10,
		IncrementalMinor:    true,
		IncrementalMajor:    true,
	})
	m.AttachGC(gc)
	r.Attach(m, gc)
	if err := core.AuditHeap(m); err != nil {
		fmt.Fprintf(os.Stderr, "rtgc: restore: recovered heap failed its audit: %v\n", err)
		return 1
	}
	h := r.Heap
	fmt.Printf("restored epoch %d from %s\n", r.Epoch, dir)
	fmt.Printf("fingerprint        %#016x (verified)\n", r.Fingerprint)
	fmt.Printf("old generation     %.2f MB live\n", float64(h.OldFrom().UsedBytes())/(1<<20))
	fmt.Printf("nursery            %.2f KB live\n", float64(h.Nursery.UsedBytes())/1024)
	fmt.Printf("roots              %d\n", len(r.Roots))
	fmt.Printf("log entries        %d retained\n", len(r.LogEntries))
	fmt.Printf("audit              clean\n")
	return 0
}
