package main

// The -serve mode: instead of compiling a MiniML program, rtgc drives the
// open-loop serving engine (internal/workload) over a request spec and
// prints the serving digest — request latency tails, SLO breakdowns and
// GC pause intrusion under the collector selected with -gc.

import (
	"fmt"
	"os"

	"repligc/internal/workload"
)

// serveCollector maps the rtgc -gc names onto the workload engine's
// collector configurations. The engine runs whole-request service, so only
// the configurations it models are accepted.
func serveCollector(gcName string) (string, bool) {
	switch gcName {
	case "rt", "rt-lazy", "stop-copy-core", "sc":
		return gcName, true
	}
	return "", false
}

// runServeSpec parses the spec, materialises its trace, and serves it under
// the selected collector. Exit status 0 on success, 1 on any failure.
//
//gclint:io reads the workload spec file
func runServeSpec(specPath, gcName string) int {
	coll, ok := serveCollector(gcName)
	if !ok {
		fmt.Fprintf(os.Stderr, "rtgc: -serve supports collectors %v, not %q\n",
			workload.Collectors(), gcName)
		return 2
	}
	raw, err := os.ReadFile(specPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtgc: %v\n", err)
		return 1
	}
	spec, err := workload.ParseSpec(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtgc: %v\n", err)
		return 1
	}
	tr, err := workload.Generate(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtgc: %v\n", err)
		return 1
	}
	sec, err := workload.RunLegs(tr, []workload.LegSpec{{Name: coll, Collector: coll}})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtgc: %v\n", err)
		return 1
	}
	fmt.Print(workload.FormatSection(sec))
	return 0
}
