// Futures: the concurrency substrate of the paper's Sort benchmark —
// futures built from green threads and synchronising variables — used
// here to fan a computation out across threads while the replication
// collector runs incrementally underneath. The mutation-heavy profile
// (integer refs, sync-var fills) is exactly what exercises the mutation
// log's reapply machinery (the paper's CR cost, table 2).
package main

import (
	"fmt"
	"log"

	"repligc"
)

const program = `
fun future f = let sv = newsv () in (spawn (fn u => putsv sv (f ())); sv) in
fun force sv = takesv sv in
let counter = ref 0 in
fun work n seed acc =
  if n = 0 then acc
  else (counter := !counter + 1;
        work (n - 1) ((seed * 31 + n) mod 1000003) (seed :: acc)) in
fun sum l acc = case l of [] => acc | x :: r => sum r ((acc + x) mod 1000003) in
fun launch k =
  if k = 0 then []
  else future (fn u => sum (work 12000 k []) 0) :: launch (k - 1) in
fun collect fs acc =
  case fs of [] => acc | f :: r => collect r ((acc + force f) mod 1000003) in
let fs = launch 12 in
(print ("result " ^ itos (collect fs 0) ^ "\n");
 print ("work items " ^ itos (!counter) ^ "\n"))
`

func main() {
	rt, err := repligc.NewRealTime(repligc.RealTimeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	out, err := rt.CompileAndRun(program)
	if err != nil {
		log.Fatal(err)
	}
	rt.Finish()
	fmt.Print(out)
	fmt.Println(rt.StatsSummary())
	st := rt.GC.Stats()
	fmt.Printf("mutation log: %d entries written, %d reapplied to replicas, %d flip updates\n",
		rt.Mutator.LogWrites, st.LogReapplied, st.FlipEntryUpdates)
}
