// Interactive: the paper's motivating scenario — "smoothly tracking a
// mouse in an interactive graphics application requires pause times of
// 50 milliseconds or less" (§1, citing Card, Moran & Newell).
//
// This example simulates an interactive session at the allocation level,
// using the mutator API directly rather than MiniML: every frame allocates
// a burst of short-lived event records and updates a heap-resident scene
// graph (an array of chained scene nodes, mutated through the write
// barrier). Several megabytes stay live, so the stop-and-copy baseline's
// major collections blow far past the 50 ms deadline; the real-time
// collector's pauses stay at the budget set by L.
package main

import (
	"fmt"
	"log"

	"repligc"
	"repligc/internal/core"
	"repligc/internal/heap"
	"repligc/internal/simtime"
)

// app holds the mutator's registers: just two root slots, like a real
// runtime. The scene window itself is a heap array.
type app struct {
	window repligc.Value // heap array of scene-chain heads
	tmp    repligc.Value
}

func (a *app) VisitRoots(v core.RootVisitor) {
	v(&a.window)
	v(&a.tmp)
}

const (
	windowSlots = 2048
	frames      = 20000
	deadline    = 50 * simtime.Millisecond
)

// frame allocates one frame's worth of event and scene data.
func frame(m *repligc.Mutator, a *app, n int) {
	// A burst of short-lived event records...
	for i := 0; i < 300; i++ {
		ev := m.MustAlloc(heap.KindRecord, 3)
		m.Init(ev, 0, heap.FromInt(int64(n)))
		m.Init(ev, 1, heap.FromInt(int64(i)))
		m.Init(ev, 2, heap.Nil)
		m.Step(8)
	}
	// ...plus one retained scene node chained onto a window slot. The
	// store into the window array goes through the write barrier: it is
	// exactly the kind of old→new pointer the mutation log exists for.
	slot := n % windowSlots
	a.tmp = m.Get(a.window, slot)
	node := m.MustAlloc(heap.KindRecord, 64)
	m.Init(node, 0, heap.FromInt(int64(n)))
	m.Init(node, 1, a.tmp)
	for i := 2; i < 64; i++ {
		m.Init(node, i, heap.FromInt(int64(n*i)))
	}
	m.Set(a.window, slot, node)
	a.tmp = heap.Nil
	// Periodically drop a chain so the scene stays a few MB.
	if n%13 == 0 {
		m.Set(a.window, (slot+windowSlots/2)%windowSlots, heap.Nil)
	}
	m.Step(40)
}

func run(name string, rt *repligc.Runtime) {
	a := &app{}
	rt.Mutator.Roots.Register(a)
	a.window = rt.Mutator.MustAlloc(heap.KindArray, windowSlots)
	for n := 0; n < frames; n++ {
		frame(rt.Mutator, a, n)
	}
	rt.Finish()

	missed := 0
	for _, p := range rt.GC.Pauses().Pauses {
		if p.Length > deadline {
			missed++
		}
	}
	rec := rt.GC.Pauses()
	fmt.Printf("%-14s frames=%d pauses=%d p50=%v p99=%v max=%v deadline-misses=%d\n",
		name, frames, len(rec.Pauses), rec.Percentile(50), rec.Percentile(99), rec.Max(), missed)
}

func main() {
	// L = 80 KB keeps the real-time collector's work budget safely inside
	// the 50 ms frame deadline.
	rt, err := repligc.NewRealTime(repligc.RealTimeOptions{CopyLimitBytes: 80 << 10})
	if err != nil {
		log.Fatal(err)
	}
	run("real-time", rt)

	sc, err := repligc.NewStopCopy(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	run("stop-and-copy", sc)
}
