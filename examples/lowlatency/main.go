// Lowlatency: the paper's §6 future-work direction, realised — collection
// work interleaved with allocation (a copying tax) instead of discrete
// pauses, so the only stop-the-mutator events of any size are the atomic
// flips. Compare the pause profile against the pause-based real-time
// collector on the same allocation- and mutation-heavy program.
package main

import (
	"fmt"
	"log"

	"repligc"
	"repligc/internal/simtime"
)

const program = `
fun future f = let sv = newsv () in (spawn (fn u => putsv sv (f ())); sv) in
let counter = ref 0 in
fun build n acc =
  if n = 0 then acc
  else (counter := !counter + 1; build (n - 1) (n :: acc)) in
fun sum l acc = case l of [] => acc | x :: r => sum r (acc + x) in
fun job u = sum (build 4000 []) 0 in
fun launch k = if k = 0 then [] else future job :: launch (k - 1) in
fun collect fs acc = case fs of [] => acc | f :: r => collect r (acc + takesv f) in
print ("total " ^ itos (collect (launch 24) 0) ^ " mutations " ^ itos (!counter) ^ "\n")
`

func run(label string, opts repligc.RealTimeOptions) {
	rt, err := repligc.NewRealTime(opts)
	if err != nil {
		log.Fatal(err)
	}
	out, err := rt.CompileAndRun(program)
	if err != nil {
		log.Fatal(err)
	}
	rt.Finish()
	rec := rt.GC.Pauses()
	fmt.Print(out)
	fmt.Printf("%-12s pauses=%6d p50=%8v p99=%8v max=%8v elapsed=%v\n",
		label, len(rec.Pauses), rec.Percentile(50), rec.Percentile(99), rec.Max(), rt.Clock.Now())

	hist := simtime.NewHistogram(5*simtime.Millisecond, 0, 80*simtime.Millisecond)
	hist.AddAll(rec.Durations())
	fmt.Print(hist.Render("  pause histogram (5 ms bins)"))
	fmt.Println()
}

func main() {
	run("pause-based", repligc.RealTimeOptions{})
	run("interleaved", repligc.RealTimeOptions{InterleavedTaxPermille: 1500})
}
