(* Huffman coding: builds a code tree from symbol frequencies and reports
   the weighted code length — heavy on sorting, tuples, and recursion.
   Run with: go run ./cmd/rtgc -prelude examples/miniml/huffman.ml *)
fun freqs u =
  map (fn i => ((i * 37) mod 95 + 5, i)) (range 0 48) in
(* nodes are (weight, 0)=leaf or (weight, (l, r))=branch; sorted by weight *)
fun node w = (w, 0) in
fun combine a b = (#1 a + #1 b, (a, b)) in
fun byweight a b = #1 a <= #1 b in
fun build trees =
  case trees of
    [t] => t
  | a :: b :: rest => build (msort byweight (combine a b :: rest))
  | _ => (0, 0) in
fun depthsum t d =
  case #2 t of
    0 => #1 t * d
  | (l, r) => depthsum l (d + 1) + depthsum r (d + 1) in
let leaves = msort byweight (map (fn p => node (#1 p)) (freqs ())) in
let tree = build leaves in
println ("weighted code length: " ^ itos (depthsum tree 0))
