(* Conway's game of life on arrays: mutation-heavy (every generation
   writes the whole board through the logged store path).
   Run with: go run ./cmd/rtgc -prelude examples/miniml/life.ml *)
let w = 16 in
let gens = 30 in
fun idx x y = ((y mod w) + w) mod w * w + (((x mod w) + w) mod w) in
let board = array (w * w) 0 in
fun seed l = appl (fn p => aset board (idx (#1 p) (#2 p)) 1) l in
fun neighbours b x y =
  suml (map (fn d => aget b (idx (x + #1 d) (y + #2 d)))
    [(~1, ~1), (0, ~1), (1, ~1), (~1, 0), (1, 0), (~1, 1), (0, 1), (1, 1)]) in
fun stepgen b =
  let nb = array (w * w) 0 in
  (appl (fn y =>
     appl (fn x =>
       let n = neighbours b x y in
       let alive = aget b (idx x y) in
       aset nb (idx x y)
         (if alive = 1 then (if n = 2 orelse n = 3 then 1 else 0)
          else (if n = 3 then 1 else 0)))
       (range 0 w))
     (range 0 w);
   nb) in
fun run b g = if g = 0 then b else run (stepgen b) (g - 1) in
(seed [(1, 0), (2, 1), (0, 2), (1, 2), (2, 2)]; (* a glider *)
 let final = run board gens in
 println ("alive after " ^ itos gens ^ " generations: "
          ^ itos (suml (atolist final))))
