(* N-queens: counts solutions with list-based backtracking — an
   allocation-heavy classic. Uses the prelude (-prelude flag).
   Run with: go run ./cmd/rtgc -prelude examples/miniml/queens.ml *)
fun safe q qs =
  fun go d rest =
    case rest of
      [] => true
    | x :: r => x <> q andalso abs (x - q) <> d andalso go (d + 1) r in
  go 1 qs in
fun solve n =
  fun place qs row =
    if row = n then 1
    else suml (map (fn q => if safe q qs then place (q :: qs) (row + 1) else 0)
                   (range 0 n)) in
  place [] 0 in
println ("queens 8 -> " ^ itos (solve 8))
