(* The Primes benchmark at small scale: a lazy-stream prime sieve.
   Run with: go run ./cmd/rtgc examples/miniml/sieve.ml *)
fun from n = fn u => (n, from (n + 1)) in
fun filter p s = fn u =>
  let pr = s () in
  (case pr of (x, rest) =>
    if p x then (x, filter p rest)
    else (filter p rest) ()) in
fun sieve s = fn u =>
  let pr = s () in
  (case pr of (x, rest) =>
    (x, sieve (filter (fn y => (y mod x) <> 0) rest))) in
fun show k s =
  if k = 0 then ()
  else let pr = s () in
       (case pr of (x, rest) =>
         (print (itos x); print " "; show (k - 1) rest)) in
(show 25 (sieve (from 2)); print "\n")
