// Primes: the paper's first benchmark — a prime sieve in a lazy style
// (thunk streams), allocation-heavy with almost no survivors — run under
// the real-time collector, with the pause-time histogram of figure 5
// printed for this single run.
package main

import (
	"fmt"
	"log"

	"repligc"
	"repligc/internal/simtime"
)

const sieve = `
fun from n = fn u => (n, from (n + 1)) in
fun filter p s = fn u =>
  let pr = s () in
  (case pr of (x, rest) =>
    if p x then (x, filter p rest)
    else (filter p rest) ()) in
fun sieve s = fn u =>
  let pr = s () in
  (case pr of (x, rest) =>
    (x, sieve (filter (fn y => (y mod x) <> 0) rest))) in
fun take k s acc =
  if k = 0 then acc
  else let pr = s () in
       (case pr of (x, rest) => take (k - 1) rest (acc + x)) in
print ("sum of first 300 primes: " ^ itos (take 300 (sieve (from 2)) 0) ^ "\n")
`

func main() {
	rt, err := repligc.NewRealTime(repligc.RealTimeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	out, err := rt.CompileAndRun(sieve)
	if err != nil {
		log.Fatal(err)
	}
	rt.Finish()
	fmt.Print(out)
	fmt.Println(rt.StatsSummary())

	hist := simtime.NewHistogram(5*simtime.Millisecond, 0, 100*simtime.Millisecond)
	hist.AddAll(rt.GC.Pauses().Durations())
	fmt.Print(hist.Render("pause-time histogram (5 ms bins)"))
}
