// Quickstart: build a real-time replication-collected runtime, run a
// MiniML program on it, and look at the pause-time profile — the paper's
// headline claim is that the maximum pause stays near the 50 ms target set
// by the copy limit L, no matter how much the program allocates.
package main

import (
	"fmt"
	"log"

	"repligc"
)

const program = `
fun build n acc = if n = 0 then acc else build (n - 1) (n :: acc) in
fun sum l = case l of [] => 0 | x :: r => x + sum r in
fun iterate k total =
  if k = 0 then total
  else iterate (k - 1) (total + sum (build 500 [])) in
print ("total " ^ itos (iterate 2000 0) ^ "\n")
`

func main() {
	// The paper's defaults: N = 0.2 MB nursery, O = 1 MB major threshold,
	// L = 100 KB copy limit per pause (about 50 ms at 2 MB/s copying).
	rt, err := repligc.NewRealTime(repligc.RealTimeOptions{})
	if err != nil {
		log.Fatal(err)
	}

	out, err := rt.CompileAndRun(program)
	if err != nil {
		log.Fatal(err)
	}
	rt.Finish()
	fmt.Print(out)
	fmt.Println(rt.StatsSummary())

	// Compare with the stop-and-copy baseline on the identical program.
	sc, err := repligc.NewStopCopy(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sc.CompileAndRun(program); err != nil {
		log.Fatal(err)
	}
	fmt.Println(sc.StatsSummary())

	fmt.Printf("\nmax pause: real-time %v vs stop-and-copy %v\n",
		rt.GC.Pauses().Max(), sc.GC.Pauses().Max())
}
