// Replay: the paper's §4.2 measurement methodology, end to end. The
// real-time collector runs once and records a script of exactly when it
// flipped and how much allocation space it returned; a stop-and-copy
// collector then replays those policy decisions on the identical program.
// With flips and allocation amounts synchronized, the difference in copied
// bytes is the latent garbage (table 3), and the elapsed difference is pure
// mechanism cost — not policy variation.
package main

import (
	"fmt"
	"log"

	"repligc"
)

const program = `
fun build n acc = if n = 0 then acc else build (n - 1) ((n * n) :: acc) in
fun sum l acc = case l of [] => acc | x :: r => sum r ((acc + x) mod 1000003) in
let window = array 64 0 in
fun iterate k total =
  if k = 0 then total
  else (aset window (k mod 64) (build 400 []);
        iterate (k - 1) ((total + sum (aget window ((k * 31) mod 64)) 0) mod 1000003)) in
print ("checksum " ^ itos (iterate 4000 0) ^ "\n")
`

func main() {
	// Pass 1: real-time collector, recording its flip script.
	script := &repligc.Script{}
	rt, err := repligc.NewRealTime(repligc.RealTimeOptions{Record: script, CopyLimitBytes: 24 << 10})
	if err != nil {
		log.Fatal(err)
	}
	rtOut, err := rt.CompileAndRun(program)
	if err != nil {
		log.Fatal(err)
	}
	rt.Finish()

	// Pass 2: stop-and-copy, replaying the recorded script.
	sc, err := repligc.NewStopCopyReplay(0, script)
	if err != nil {
		log.Fatal(err)
	}
	scOut, err := sc.CompileAndRun(program)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(rtOut)
	if rtOut != scOut {
		log.Fatalf("outputs diverged: %q vs %q", rtOut, scOut)
	}

	fmt.Printf("recorded script: %d minor flips\n", script.Len())
	fmt.Println(rt.StatsSummary())
	fmt.Println(sc.StatsSummary())

	// With synchronized flips, compare copy volumes at the last common
	// flip: the difference is the latent garbage of table 3.
	rtFlips := rt.GC.Stats().FlipCopied
	scFlips := sc.GC.Stats().FlipCopied
	n := len(rtFlips)
	if len(scFlips) < n {
		n = len(scFlips)
	}
	if n > 0 {
		g := rtFlips[n-1] - scFlips[n-1]
		fmt.Printf("latent garbage after %d synchronized flips: %.1f KB (%.2f%% of stop-and-copy volume)\n",
			n, float64(g)/1024, 100*float64(g)/float64(scFlips[n-1]))
	}
	fmt.Printf("mechanism cost: rt elapsed %v vs sc elapsed %v (%+.1f%%)\n",
		rt.Clock.Now(), sc.Clock.Now(),
		100*(float64(rt.Clock.Now())-float64(sc.Clock.Now()))/float64(sc.Clock.Now()))
}
