module repligc

go 1.22
