// Package analysis is a stdlib-only static analyzer that machine-checks the
// invariant discipline the replication collector depends on. The paper's
// correctness story rests on conventions the SML/NJ compiler enforced for
// the original system: every mutator write flows through the logging write
// barrier, ordinary reads never follow forwarding pointers (the from-space
// invariant), and all work charges the simulated clock so runs are
// bit-for-bit reproducible. Nothing in Go enforces any of that, so this
// package does: it type-checks the tree with go/types and applies a set of
// rules, each mapped to a specific invariant (see DESIGN.md, "Machine-checked
// invariants").
//
// The analyzer is deliberately built on the standard library alone (go/ast,
// go/types, go/importer) — the repository stays offline and dependency-free.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one rule violation at a source position.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Msg, d.Rule)
}

// Rule checks one invariant over a type-checked package.
type Rule interface {
	// Name is the short identifier used in diagnostics and in
	// //gclint:allow annotations.
	Name() string
	// Doc is a one-line description of the invariant the rule enforces.
	Doc() string
	// Appraise inspects pkg and reports violations through pass.Reportf.
	Appraise(pass *Pass)
}

// Pass carries one package through one rule. Index is the interprocedural
// summary graph built once per Run and shared by all rules.
type Pass struct {
	Pkg   *Package
	Index *Index
	rule  Rule
	out   *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Diagnostic{
		Pos:  p.Pkg.Fset.Position(pos),
		Rule: p.rule.Name(),
		Msg:  fmt.Sprintf(format, args...),
	})
}

// DefaultRules returns the standard rule set in a fixed order.
func DefaultRules() []Rule {
	return []Rule{
		&BarrierRule{},
		&BarrierFastRule{},
		&WallClockRule{},
		&MapRangeRule{},
		&ExhaustiveRule{},
		&ForwardRule{},
		&PanicPathRule{},
		&StaleHandleRule{},
		&BarrierCompleteRule{},
		&PauseOnlyRule{},
		&IORule{},
	}
}

// Run builds the shared interprocedural Index over pkgs (one load, one
// type-check, one summary fixpoint for all rules), applies rules, resolves
// //gclint:allow annotations, and returns the surviving diagnostics sorted
// by position. Malformed annotations — missing reason, unknown rule names,
// duplicates — and allows that suppress nothing are themselves reported
// (rule "annotation").
func Run(pkgs []*Package, rules []Rule) []Diagnostic {
	idx := BuildIndex(pkgs)
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, r := range rules {
			r.Appraise(&Pass{Pkg: pkg, Index: idx, rule: r, out: &raw})
		}
	}

	valid := map[string]bool{"annotation": true}
	for _, r := range rules {
		valid[r.Name()] = true
	}
	var out []Diagnostic
	var sites []allowSite
	for _, pkg := range pkgs {
		allows, list, bad := collectAllows(pkg, valid)
		out = append(out, bad...)
		pkg.allows = allows
		sites = append(sites, list...)
	}
	used := make(map[allowKey]bool)
	for _, d := range raw {
		if key, ok := allowed(pkgs, d); ok {
			used[key] = true
			continue
		}
		out = append(out, d)
	}
	for _, s := range sites {
		if !used[s.key] {
			out = append(out, Diagnostic{
				Pos:  s.pos,
				Rule: "annotation",
				Msg:  fmt.Sprintf("unused //gclint:allow for rule %q: no diagnostic on this line or the one below; drop the annotation (it would silently mask a future violation)", s.key.rule),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// allowKey identifies one suppression site: a file line and a rule name.
type allowKey struct {
	file string
	line int
	rule string
}

// allowSite is one parsed allow annotation entry, kept in source order so
// unused annotations can be reported deterministically.
type allowSite struct {
	key allowKey
	pos token.Position
}

// allowed reports whether d is suppressed by a //gclint:allow annotation on
// its own line or on the line directly above, returning the matching key so
// the caller can track which annotations earn their keep.
func allowed(pkgs []*Package, d Diagnostic) (allowKey, bool) {
	for _, pkg := range pkgs {
		if pkg.allows == nil {
			continue
		}
		if k := (allowKey{d.Pos.Filename, d.Pos.Line, d.Rule}); pkg.allows[k] {
			return k, true
		}
		if k := (allowKey{d.Pos.Filename, d.Pos.Line - 1, d.Rule}); pkg.allows[k] {
			return k, true
		}
	}
	return allowKey{}, false
}

const allowPrefix = "//gclint:allow"

// collectAllows scans a package's comments for //gclint:allow annotations.
// The accepted form is
//
//	//gclint:allow rule[,rule...] -- reason
//
// and the reason is mandatory: an allowlisted violation must say why it is
// acceptable. Malformed annotations — missing reason, rule names not in the
// active rule set (valid), the same rule allowed twice on one line — are
// returned as diagnostics.
func collectAllows(pkg *Package, valid map[string]bool) (map[allowKey]bool, []allowSite, []Diagnostic) {
	allows := make(map[allowKey]bool)
	var sites []allowSite
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // some other gclint:allowX word
				}
				ruleList, reason, ok := strings.Cut(rest, "--")
				if !ok || strings.TrimSpace(reason) == "" {
					bad = append(bad, Diagnostic{
						Pos:  pos,
						Rule: "annotation",
						Msg:  "malformed //gclint:allow: want \"//gclint:allow rule[,rule] -- reason\" (the reason is required)",
					})
					continue
				}
				names := strings.Split(strings.TrimSpace(ruleList), ",")
				any := false
				for _, n := range names {
					n = strings.TrimSpace(n)
					if n == "" {
						continue
					}
					any = true
					if !valid[n] {
						bad = append(bad, Diagnostic{
							Pos:  pos,
							Rule: "annotation",
							Msg:  fmt.Sprintf("unknown rule %q in //gclint:allow (run gclint -rules for the rule set)", n),
						})
						continue
					}
					key := allowKey{pos.Filename, pos.Line, n}
					if allows[key] {
						bad = append(bad, Diagnostic{
							Pos:  pos,
							Rule: "annotation",
							Msg:  fmt.Sprintf("duplicate //gclint:allow for rule %q on this line", n),
						})
						continue
					}
					allows[key] = true
					sites = append(sites, allowSite{key: key, pos: pos})
				}
				if !any {
					bad = append(bad, Diagnostic{
						Pos:  pos,
						Rule: "annotation",
						Msg:  "malformed //gclint:allow: no rule names given",
					})
				}
			}
		}
	}
	return allows, sites, bad
}

// --- shared type helpers -------------------------------------------------

// heapPkgPath is the import path of the simulated-heap package every typed
// rule keys off.
const heapPkgPath = "repligc/internal/heap"

// collectorPkgs are the packages allowed to touch raw heap words and
// forwarding pointers: the heap itself, the two collector implementations,
// and the checkpoint writer (which snapshots and restores raw words at
// pause boundaries, on the collector's side of the barrier). Everything
// else must go through the Mutator interface.
var collectorPkgs = map[string]bool{
	heapPkgPath:                   true,
	"repligc/internal/core":       true,
	"repligc/internal/stopcopy":   true,
	"repligc/internal/checkpoint": true,
}

// isNamed reports whether t (after pointer indirection) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// selectorOnHeap resolves sel to (method-or-field name, true) when its
// receiver expression has type repligc/internal/heap.Heap.
func selectorOnHeap(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	tv, ok := info.Types[sel.X]
	if !ok {
		return "", false
	}
	if !isNamed(tv.Type, heapPkgPath, "Heap") {
		return "", false
	}
	return sel.Sel.Name, true
}

// enclosingFuncName returns the name of the innermost named function or
// method declaration containing pos, or "" when pos sits in a function
// literal or at file scope.
func enclosingFuncName(files []*ast.File, pos token.Pos) string {
	for _, f := range files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || pos < fd.Pos() || pos > fd.End() {
				continue
			}
			// A function literal inside fd is still attributed to fd: the
			// literal runs with the same discipline as its host.
			return fd.Name.Name
		}
	}
	return ""
}

// isTestFile reports whether the position is inside a _test.go file. The
// loader skips test files already; this guards rules that are handed
// positions from other sources.
func isTestFile(pos token.Position) bool {
	return strings.HasSuffix(pos.Filename, "_test.go")
}
