package analysis

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current analyzer output")

// goldenCases pairs each fixture package under testdata/src with the import
// path it masquerades as — path-scoped rules (barrier, wallclock, forward)
// behave differently inside and outside the collector packages, and the
// fixture must land on the right side of that line.
var goldenCases = []struct {
	fixture string
	path    string
}{
	{"barrier", "repligc/internal/fixbarrier"},
	{"wallclock", "repligc/internal/fixwallclock"},
	// Masquerades as a cmd/ package: exporter glue is in scope for the
	// wallclock rule, with the annotated stamp as the allowed exception.
	{"wallclockcmd", "repligc/cmd/fixwallclockcmd"},
	// Masquerades as the calibration package, the one place wall-clock
	// reads are legal — behind //gclint:wallclock function annotations.
	{"wallclockcalib", "repligc/internal/calib"},
	{"maprange", "repligc/internal/fixmaprange"},
	{"exhaustive", "repligc/internal/fixexhaustive"},
	{"forward", "repligc/internal/fixforward"},
	// Masquerades as a collector package: forwarding access is legal there
	// except on the raw read path (Get*/Load* functions).
	{"forwardheap", "repligc/internal/stopcopy"},
	// Masquerades as a collector package: bare panics are flagged there.
	{"panicpath", "repligc/internal/heap"},
	{"fastpath", "repligc/internal/fixfastpath"},
	{"clean", "repligc/internal/fixclean"},
	{"badallow", "repligc/internal/fixbadallow"},
	{"stalehandle", "repligc/internal/fixstale"},
	{"barriercomp", "repligc/internal/fixbarriercomp"},
	{"pauseonly", "repligc/internal/fixpauseonly"},
	// The multi-mutator group shape: the pause entry is installed as a heap
	// hook (a function value the call graph cannot see), so its pauseentry
	// annotation alone certifies the merge writes underneath it.
	{"multimut", "repligc/internal/fixmultimut"},
	{"annot", "repligc/internal/fixannot"},
	// Masquerades as a simulation package: filesystem access is banned
	// outright, annotation or not.
	{"iorule", "repligc/internal/fixio"},
	// Masquerades as a cmd/ package: I/O is legal behind //gclint:io.
	{"iocmd", "repligc/cmd/fixiocmd"},
}

func TestGolden(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range goldenCases {
		t.Run(tc.fixture, func(t *testing.T) {
			pkg, err := loader.Load(filepath.Join("testdata", "src", tc.fixture), tc.path)
			if err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			for _, d := range Run([]*Package{pkg}, DefaultRules()) {
				fmt.Fprintf(&got, "%s\n", d)
			}
			golden := filepath.Join("testdata", "golden", tc.fixture+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run go test -run TestGolden -update): %v", err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("diagnostics differ from %s\n--- got ---\n%s--- want ---\n%s", golden, got.Bytes(), want)
			}
		})
	}
}

// TestCleanFixtureIsEmpty pins the semantics the "clean" golden depends on:
// a well-formed allow annotation fully suppresses its diagnostic.
func TestCleanFixtureIsEmpty(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(filepath.Join("testdata", "src", "clean"), "repligc/internal/fixclean")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Package{pkg}, DefaultRules()); len(diags) != 0 {
		t.Errorf("clean fixture produced %d diagnostics, want 0:", len(diags))
		for _, d := range diags {
			t.Errorf("  %s", d)
		}
	}
}

// TestTreeIsClean runs the full default rule set over the real module — the
// same check `make lint` performs — so a rule regression or a new violation
// fails the test suite, not just the build.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("expected to load the whole module, got %d packages", len(pkgs))
	}
	for _, d := range Run(pkgs, DefaultRules()) {
		t.Errorf("%s", d)
	}
}
