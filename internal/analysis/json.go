package analysis

// json.go renders diagnostics for machines: a JSON findings document for CI
// artifacts and GitHub Actions workflow commands ("::error ...") that turn
// each finding into an inline annotation on the pull request.

import (
	"encoding/json"
	"fmt"
	"strings"
)

// JSONDiagnostic is the wire form of one finding.
type JSONDiagnostic struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// DiagnosticsJSON marshals diags as an indented JSON array (never null: an
// empty run yields []).
func DiagnosticsJSON(diags []Diagnostic) ([]byte, error) {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, JSONDiagnostic{
			File: d.Pos.Filename,
			Line: d.Pos.Line,
			Col:  d.Pos.Column,
			Rule: d.Rule,
			Msg:  d.Msg,
		})
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// GitHubAnnotation renders d as a GitHub Actions workflow command, which the
// Actions runner turns into an inline ::error annotation at the source line.
func GitHubAnnotation(d Diagnostic) string {
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=gclint %s::%s",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, escapeGitHubData(d.Msg))
}

// escapeGitHubData applies the workflow-command data escaping rules.
func escapeGitHubData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}
