package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for rule passes.
type Package struct {
	// Path is the import path the rules see; fixture packages in tests can
	// masquerade as any path to exercise path-scoped rules.
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	allows map[allowKey]bool
}

// Loader parses and type-checks packages of the repligc module from source.
// One Loader shares a file set and an import cache across all packages it
// loads, so the (source-based) type-checking of common dependencies happens
// once.
type Loader struct {
	ModRoot string // absolute path of the module root
	ModPath string // module path from go.mod

	fset *token.FileSet
	imp  types.Importer
}

// NewLoader locates the enclosing module starting at dir (walking upward to
// the go.mod) and returns a loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("gclint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: root,
		ModPath: modPath,
		fset:    fset,
		// The "source" importer type-checks dependencies (standard library
		// included) from source — no export data, no external tooling.
		imp: importer.ForCompiler(fset, "source", nil),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("gclint: no module directive in %s", gomod)
}

// Expand resolves package patterns ("./...", "./cmd/gclint", "internal/vm")
// into package directories, skipping testdata, vendor and hidden trees the
// way the go tool does.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(l.ModRoot, pat)
		}
		if !recursive {
			if hasGoFiles(base) {
				add(base)
			} else {
				return nil, fmt.Errorf("gclint: no Go files in %s", base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true
		}
	}
	return false
}

// isSourceFile reports whether name is a non-test Go source file the
// analyzer should consider.
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// ImportPathFor derives the import path of a package directory within the
// module.
func (l *Loader) ImportPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("gclint: %s is outside module %s", dir, l.ModRoot)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// Load parses and type-checks the package in dir. importPath overrides the
// derived path when non-empty (used by tests to place fixture packages under
// rule-scoped paths). Test files are excluded: the rules police the shipped
// system, and tests legitimately reach around the discipline to corrupt
// heaps and simulate failures.
func (l *Loader) Load(dir, importPath string) (*Package, error) {
	if importPath == "" {
		p, err := l.ImportPathFor(dir)
		if err != nil {
			return nil, err
		}
		importPath = p
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range ents {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("gclint: %s: multiple packages (%s, %s)", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("gclint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	cfg := types.Config{
		Importer: l.imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := cfg.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("gclint: type-checking %s: %v", importPath, typeErrs[0])
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// LoadPatterns expands patterns and loads every matched package.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	dirs, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.Load(dir, "")
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
