package analysis

import (
	"path/filepath"
	"testing"
)

// The analyzer parses and type-checks each package once and hands the same
// *Package (and the same interprocedural Index) to every rule. These
// benchmarks quantify what that sharing buys by comparing the real
// architecture against the naive one — a fresh load per rule — over a
// mid-sized package. With ten rules, the naive shape pays the parse,
// type-check and import-resolution cost ten times.

func BenchmarkLintSharedLoad(b *testing.B) {
	dir := filepath.Join("..", "heap")
	for i := 0; i < b.N; i++ {
		loader, err := NewLoader(".")
		if err != nil {
			b.Fatal(err)
		}
		pkg, err := loader.Load(dir, "")
		if err != nil {
			b.Fatal(err)
		}
		Run([]*Package{pkg}, DefaultRules())
	}
}

func BenchmarkLintPerRuleLoad(b *testing.B) {
	dir := filepath.Join("..", "heap")
	for i := 0; i < b.N; i++ {
		for _, r := range DefaultRules() {
			loader, err := NewLoader(".")
			if err != nil {
				b.Fatal(err)
			}
			pkg, err := loader.Load(dir, "")
			if err != nil {
				b.Fatal(err)
			}
			Run([]*Package{pkg}, []Rule{r})
		}
	}
}
