package analysis

// The barriercomplete rule: every store into heap-object payload memory
// must reach the logging-barrier API (Mutator.Set/SetByte/SetByteRange/
// Init) on all dataflow paths. The syntactic barrier rule only sees direct
// touches of Heap primitives; this rule uses the interprocedural summaries
// to also catch stores hidden behind call chains — a helper that calls a
// helper that calls Heap.Store is just as much a barrier bypass as the
// direct call, and is invisible file-by-file. Propagation stops at the
// logging boundary (functions that append to the mutation log) and at the
// exported API of the collector packages, whose raw stores are replica
// writes (see summaries.go). The rule therefore subsumes the write-half of
// the barrier rule: every site the barrier rule flags as an unlogged store
// is a call whose callee summary includes unlogged-store.

// BarrierCompleteRule flags calls (outside the collector packages) whose
// callee may transitively store into heap payload without logging.
type BarrierCompleteRule struct{}

// Name implements Rule.
func (*BarrierCompleteRule) Name() string { return "barriercomplete" }

// Doc implements Rule.
func (*BarrierCompleteRule) Doc() string {
	return "every heap payload store must reach the logging barrier on all paths (interprocedural)"
}

// Appraise implements Rule.
func (r *BarrierCompleteRule) Appraise(pass *Pass) {
	if collectorPkgs[pass.Pkg.Path] {
		return
	}
	for _, fi := range pass.Index.PkgFuncs(pass.Pkg) {
		for _, pos := range fi.arenaWrites {
			pass.Reportf(pos,
				"direct Heap.Arena store outside the collector packages: the mutation can never reach the log; use Mutator.Set/SetByte/SetByteRange/Init")
		}
		for _, cs := range fi.Calls {
			facts := pass.Index.CalleeFacts(cs.Callee)
			if !facts.UnloggedStore {
				continue
			}
			name := funcDisplay(cs.Callee)
			via := ""
			if facts.StoreVia != "" && facts.StoreVia != name {
				via = " (reaches " + facts.StoreVia + ")"
			}
			pass.Reportf(cs.Call.Pos(),
				"call to %s stores into heap payload without reaching the logging barrier%s: the replica misses the mutation; route the store through Mutator.Set/SetByte/SetByteRange/Init",
				name, via)
		}
	}
}
