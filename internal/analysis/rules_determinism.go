package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// WallClockRule bans the host's wall clock from simulation-governed
// packages. Every "time" measurement in the system is a function of work
// charged to the simulated simtime.Clock, which is what makes runs
// bit-for-bit reproducible across machines and across collector
// configurations (the paper's §4.2 replay methodology depends on it). A
// single time.Now or time.Sleep smuggled into the simulation would couple
// results to the host scheduler.
//
// One package is different in kind: internal/calib exists to measure real
// elapsed time (it fits the simulated cost model to the host's wall clock).
// There the rule enforces a boundary instead of a ban — each function
// reading the wall clock must carry a //gclint:wallclock <reason>
// annotation, the annotation is rejected anywhere else, and an annotation
// on a function that reads no clock is itself a finding (it would silently
// license a future nondeterminism).
type WallClockRule struct{}

// Name implements Rule.
func (*WallClockRule) Name() string { return "wallclock" }

// Doc implements Rule.
func (*WallClockRule) Doc() string {
	return "simulation-governed packages must charge simtime.Clock, never read the wall clock (internal/calib may, inside //gclint:wallclock-annotated functions)"
}

// calibPkgPath is the one package whose purpose is wall-clock measurement.
const calibPkgPath = "repligc/internal/calib"

const wallClockPrefix = "//gclint:wallclock"

// wallClockFuncs are the package-time functions that observe or depend on
// real time.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Appraise implements Rule.
func (r *WallClockRule) Appraise(pass *Pass) {
	// internal/ is the simulation; cmd/ is in scope too so that exporter
	// glue stamping artifacts with wall-clock metadata stays an explicit,
	// annotated exception (the trace subsystem itself must never read it).
	p := pass.Pkg.Path
	if !strings.HasPrefix(p, "repligc/internal/") && !strings.HasPrefix(p, "repligc/cmd/") {
		return
	}
	calib := p == calibPkgPath
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				// File-scope initialisers have no doc comment to hang a
				// reason on, so wall-clock reads there are always flagged.
				r.checkSites(pass, decl, false, "")
				continue
			}
			reason, annotated := wallClockAnnotation(fd)
			if annotated && reason == "" {
				pass.Reportf(fd.Pos(),
					"//gclint:wallclock needs a reason: state why this function must read real time")
				annotated = false
			}
			if annotated && !calib {
				pass.Reportf(fd.Pos(),
					"//gclint:wallclock on %s: package %s is simulation-governed; wall-clock measurement belongs to internal/calib only",
					fd.Name.Name, p)
				annotated = false
			}
			sites := r.checkSites(pass, fd, annotated && calib, fd.Name.Name)
			if annotated && calib && sites == 0 {
				pass.Reportf(fd.Pos(),
					"unused //gclint:wallclock on %s: the function reads no clock; drop the annotation (it would silently license a future nondeterminism)",
					fd.Name.Name)
			}
		}
	}
}

// checkSites walks n for wall-clock reads, reporting each unless licensed,
// and returns the number of sites found.
func (r *WallClockRule) checkSites(pass *Pass, n ast.Node, licensed bool, fn string) int {
	sites := 0
	ast.Inspect(n, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || !wallClockFuncs[sel.Sel.Name] {
			return true
		}
		pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
		if !ok || pn.Imported().Path() != "time" {
			return true
		}
		sites++
		if licensed {
			return true
		}
		where := "at file scope"
		if fn != "" {
			where = "in " + fn
		}
		pass.Reportf(sel.Sel.Pos(),
			"time.%s %s: all timing must advance the simulated clock (simtime.Clock.Charge) so runs stay bit-for-bit reproducible; only internal/calib may read real time, inside //gclint:wallclock-annotated functions",
			sel.Sel.Name, where)
		return true
	})
	return sites
}

// wallClockAnnotation reports the //gclint:wallclock reason on fd's doc
// comment and whether the annotation is present at all.
func wallClockAnnotation(fd *ast.FuncDecl) (string, bool) {
	if fd.Doc == nil {
		return "", false
	}
	for _, c := range fd.Doc.List {
		if reason, ok := annotationText(c, wallClockPrefix); ok {
			return reason, true
		}
	}
	return "", false
}

// MapRangeRule flags range loops over maps in non-test code. Go randomises
// map iteration order per run, so any map range whose effects reach a
// recorded table, a policy script or program output breaks the bit-for-bit
// replay the experiments depend on (paper §4.2). Order-insensitive
// iterations (pure tallies) can be allowlisted with an annotation stating
// why.
type MapRangeRule struct{}

// Name implements Rule.
func (*MapRangeRule) Name() string { return "maprange" }

// Doc implements Rule.
func (*MapRangeRule) Doc() string {
	return "map iteration order is random; deterministic code must iterate sorted keys"
}

// Appraise implements Rule.
func (r *MapRangeRule) Appraise(pass *Pass) {
	p := pass.Pkg.Path
	if p != "repligc" &&
		!strings.HasPrefix(p, "repligc/internal/") &&
		!strings.HasPrefix(p, "repligc/cmd/") {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Pkg.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			pass.Reportf(rng.Pos(),
				"range over a map iterates in random order and breaks bit-for-bit reproducibility; iterate sorted keys (or allowlist with the reason the order cannot matter)")
			return true
		})
	}
}
