package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// WallClockRule bans the host's wall clock from simulation-governed
// packages. Every "time" measurement in the system is a function of work
// charged to the simulated simtime.Clock, which is what makes runs
// bit-for-bit reproducible across machines and across collector
// configurations (the paper's §4.2 replay methodology depends on it). A
// single time.Now or time.Sleep smuggled into the simulation would couple
// results to the host scheduler.
type WallClockRule struct{}

// Name implements Rule.
func (*WallClockRule) Name() string { return "wallclock" }

// Doc implements Rule.
func (*WallClockRule) Doc() string {
	return "simulation-governed packages must charge simtime.Clock, never read the wall clock"
}

// wallClockFuncs are the package-time functions that observe or depend on
// real time.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Appraise implements Rule.
func (r *WallClockRule) Appraise(pass *Pass) {
	// internal/ is the simulation; cmd/ is in scope too so that exporter
	// glue stamping artifacts with wall-clock metadata stays an explicit,
	// annotated exception (the trace subsystem itself must never read it).
	p := pass.Pkg.Path
	if !strings.HasPrefix(p, "repligc/internal/") && !strings.HasPrefix(p, "repligc/cmd/") {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"time.%s in a simulation-governed package: all timing must advance the simulated clock (simtime.Clock.Charge) so runs stay bit-for-bit reproducible",
				sel.Sel.Name)
			return true
		})
	}
}

// MapRangeRule flags range loops over maps in non-test code. Go randomises
// map iteration order per run, so any map range whose effects reach a
// recorded table, a policy script or program output breaks the bit-for-bit
// replay the experiments depend on (paper §4.2). Order-insensitive
// iterations (pure tallies) can be allowlisted with an annotation stating
// why.
type MapRangeRule struct{}

// Name implements Rule.
func (*MapRangeRule) Name() string { return "maprange" }

// Doc implements Rule.
func (*MapRangeRule) Doc() string {
	return "map iteration order is random; deterministic code must iterate sorted keys"
}

// Appraise implements Rule.
func (r *MapRangeRule) Appraise(pass *Pass) {
	p := pass.Pkg.Path
	if p != "repligc" &&
		!strings.HasPrefix(p, "repligc/internal/") &&
		!strings.HasPrefix(p, "repligc/cmd/") {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Pkg.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			pass.Reportf(rng.Pos(),
				"range over a map iterates in random order and breaks bit-for-bit reproducibility; iterate sorted keys (or allowlist with the reason the order cannot matter)")
			return true
		})
	}
}
