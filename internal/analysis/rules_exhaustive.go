package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// ExhaustiveRule enforces dispatch completeness over the system's enum-like
// types: every bytecode opcode must be handled by the VM dispatch switch,
// every heap.Kind by the kind-property dispatches the collector scan loops
// key off, and so on. A new constant added without extending the dispatch
// sites would otherwise fail silently at runtime (an opcode falling into the
// "illegal instruction" default, a kind scanned with the wrong pointer
// discipline).
//
// Two switch shapes are checked:
//
//   - a switch annotated with //gclint:dispatch (the designated dispatch
//     site) must list every constant of the tag type in its cases, even if
//     it also has a default clause for corruption handling;
//   - an unannotated switch with no default clause must be exhaustive —
//     otherwise unlisted constants fall through to nothing.
//
// Switches with a default clause and no annotation are deliberate partial
// matches and are left alone.
type ExhaustiveRule struct{}

// Name implements Rule.
func (*ExhaustiveRule) Name() string { return "exhaustive" }

// Doc implements Rule.
func (*ExhaustiveRule) Doc() string {
	return "dispatch switches over Op/BinOp/Kind/Account must handle every declared constant"
}

// dispatchMarker designates a switch as a dispatch site that must stay
// exhaustive even though it carries a default clause.
const dispatchMarker = "//gclint:dispatch"

// watchedEnums are the enum-like types whose constants participate in
// dispatch. Sentinel constants (unexported num* counters) are ignored.
var watchedEnums = []struct{ pkg, name string }{
	{"repligc/internal/bytecode", "Op"},
	{"repligc/internal/bytecode", "BinOp"},
	{"repligc/internal/heap", "Kind"},
	{"repligc/internal/simtime", "Account"},
}

// Appraise implements Rule.
func (r *ExhaustiveRule) Appraise(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		markers := dispatchMarkerLines(pass.Pkg, f)
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.Pkg.Info.Types[sw.Tag]
			if !ok {
				return true
			}
			named := watchedEnum(tv.Type)
			if named == nil {
				return true
			}
			line := pass.Pkg.Fset.Position(sw.Pos()).Line
			marked := markers[line] || markers[line-1]
			covered, hasDefault := coveredConstants(pass.Pkg.Info, sw)
			if !marked && hasDefault {
				return true
			}
			missing := missingConstants(named, covered)
			if len(missing) == 0 {
				return true
			}
			site := "switch with no default clause"
			if marked {
				site = "dispatch switch"
			}
			pass.Reportf(sw.Pos(), "%s over %s does not handle %s",
				site, typeString(named), strings.Join(missing, ", "))
			return true
		})
	}
}

// dispatchMarkerLines maps source lines carrying a //gclint:dispatch comment.
func dispatchMarkerLines(pkg *Package, f *ast.File) map[int]bool {
	out := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.TrimSpace(c.Text) == dispatchMarker {
				out[pkg.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return out
}

// watchedEnum returns t as a watched named enum type, or nil.
func watchedEnum(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return nil
	}
	for _, w := range watchedEnums {
		if named.Obj().Pkg().Path() == w.pkg && named.Obj().Name() == w.name {
			return named
		}
	}
	return nil
}

func typeString(named *types.Named) string {
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// coveredConstants collects the constant values listed in sw's case clauses
// and reports whether sw has a default clause.
func coveredConstants(info *types.Info, sw *ast.SwitchStmt) (map[string]bool, bool) {
	covered := make(map[string]bool)
	hasDefault := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			if tv, ok := info.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}
	return covered, hasDefault
}

// missingConstants lists (by name, in numeric-value order) the constants of
// the enum's package whose values are absent from covered. Constants sharing
// a value (aliases like heap.KindMax) count as one: covering either covers
// both.
func missingConstants(named *types.Named, covered map[string]bool) []string {
	scope := named.Obj().Pkg().Scope()
	nameOf := make(map[string]string) // constant value -> first declared name
	var values []string
	for _, name := range scope.Names() { // Names() is sorted: deterministic
		if strings.HasPrefix(name, "num") {
			continue // sentinel counters
		}
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		v := c.Val().ExactString()
		if _, seen := nameOf[v]; !seen {
			nameOf[v] = name
			values = append(values, v)
		}
	}
	sort.Slice(values, func(i, j int) bool {
		av, aok := parseInt(values[i])
		bv, bok := parseInt(values[j])
		if aok && bok {
			return av < bv
		}
		return values[i] < values[j]
	})
	var missing []string
	for _, v := range values {
		if !covered[v] {
			missing = append(missing, nameOf[v])
		}
	}
	return missing
}

// parseInt parses a decimal constant value as written by ExactString.
func parseInt(s string) (int64, bool) {
	var v int64
	neg := false
	i := 0
	if i < len(s) && s[i] == '-' {
		neg = true
		i++
	}
	if i == len(s) {
		return 0, false
	}
	for ; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
		v = v*10 + int64(s[i]-'0')
	}
	if neg {
		v = -v
	}
	return v, true
}
