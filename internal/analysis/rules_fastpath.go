package analysis

import (
	"go/ast"
	"strings"
)

// stampMethods are the Heap dirty-stamp methods whose use means "this store
// may bypass the logging slow path".
var stampMethods = map[string]bool{
	"SlotDirty":      true,
	"MarkSlotDirty":  true,
	"WordsDirty":     true,
	"MarkWordsDirty": true,
}

// fastpathPrefix marks a function as a reviewed barrier fast path.
const fastpathPrefix = "//gclint:fastpath"

// BarrierFastRule polices the write-barrier fast path. Coalescing lets a
// store skip the mutation-log append when a dirty stamp (or nursery
// residence) proves the skip is safe, but every such bypass rests on a
// subtle invariant: the log must still retain an unconsumed entry covering
// the skipped location, at a sequence number no collector cursor has passed.
// Any function consulting the Heap's dirty-stamp API is making that bet, so
// it must carry a //gclint:fastpath annotation stating the invariant it
// relies on — which keeps each bypass an explicit, reviewed claim instead of
// an optimization someone can quietly extend to a store it does not cover.
type BarrierFastRule struct{}

// Name implements Rule.
func (*BarrierFastRule) Name() string { return "barrierfast" }

// Doc implements Rule.
func (*BarrierFastRule) Doc() string {
	return "stores bypassing the logging slow path via dirty stamps must sit in a function annotated //gclint:fastpath with the invariant"
}

// Appraise implements Rule.
func (r *BarrierFastRule) Appraise(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		annotated := fastpathFuncs(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name, onHeap := selectorOnHeap(pass.Pkg.Info, sel)
			if !onHeap || !stampMethods[name] {
				return true
			}
			fn := enclosingFuncName(pass.Pkg.Files, call.Pos())
			if fn != "" && annotated[fn] {
				return true
			}
			pass.Reportf(call.Pos(),
				"Heap.%s outside an annotated fast path: a store that skips the logging slow path must sit in a function carrying \"//gclint:fastpath <invariant>\" stating why the log still covers the skipped location", name)
			return true
		})
	}
}

// fastpathFuncs collects the names of functions in f whose doc comment ends
// with a //gclint:fastpath line carrying a non-empty invariant.
func fastpathFuncs(f *ast.File) map[string]bool {
	out := make(map[string]bool)
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			if !strings.HasPrefix(c.Text, fastpathPrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, fastpathPrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // some other gclint:fastpathX word
			}
			// The invariant text is mandatory: a bare annotation is a
			// claim with no content and does not count.
			if strings.TrimSpace(rest) != "" {
				out[fd.Name.Name] = true
			}
		}
	}
	return out
}
