package analysis

import (
	"go/ast"
	"strings"
)

// BarrierRule enforces the write-barrier discipline of paper §2.1: outside
// the heap and collector packages, no code may touch heap words directly.
// Every mutation must flow through Mutator.Set/SetByte/SetByteRange/Init so
// the mutation log stays complete — the replication collector is silently
// incorrect without it — and every read must flow through Mutator.Get/
// GetByte so the read path stays raw-by-construction (no hidden forwarding,
// no uncharged simulated cost).
type BarrierRule struct{}

// Name implements Rule.
func (*BarrierRule) Name() string { return "barrier" }

// Doc implements Rule.
func (*BarrierRule) Doc() string {
	return "heap words may only be touched through the Mutator write barrier outside the collector packages"
}

// heapWriters are Heap methods that mutate arena words without logging.
var heapWriters = map[string]string{
	"Store":      "Mutator.Set",
	"StoreByte":  "Mutator.SetByte",
	"SetBytes":   "Mutator.SetByteRange",
	"SetForward": "(collector-only)",
	"AllocIn":    "Mutator.Alloc",
	"CopyObject": "(collector-only)",
	"SwapOld":    "(collector-only)",
}

// heapReaders are Heap methods that read arena words without going through
// the mutator interface.
var heapReaders = map[string]string{
	"Load":      "Mutator.Get",
	"LoadByte":  "Mutator.GetByte",
	"Bytes":     "Mutator.Bytes",
	"RawHeader": "Mutator.Header",
}

// Appraise implements Rule.
func (r *BarrierRule) Appraise(pass *Pass) {
	if collectorPkgs[pass.Pkg.Path] {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name, onHeap := selectorOnHeap(pass.Pkg.Info, sel)
			if !onHeap {
				return true
			}
			switch {
			case name == "Arena":
				pass.Reportf(sel.Sel.Pos(),
					"direct arena access outside the collector packages; heap words are owned by internal/heap, internal/core and internal/stopcopy")
			case heapWriters[name] != "":
				pass.Reportf(sel.Sel.Pos(),
					"Heap.%s bypasses the logging write barrier (paper §2.1: every mutation must reach the mutation log); use %s",
					name, heapWriters[name])
			case heapReaders[name] != "":
				pass.Reportf(sel.Sel.Pos(),
					"raw heap read Heap.%s outside the collector packages; use %s", name, heapReaders[name])
			}
			return true
		})
	}
}

// ForwardRule enforces forwarding-pointer hygiene, the from-space invariant
// of DESIGN §4: the mutator always addresses from-space originals, so
// ordinary reads must never follow a forwarding pointer. Only getheader-class
// operations (Mutator.Header and friends: length primitives, polymorphic
// equality) may observe forwarding, and only the collectors may manipulate
// it. Concretely: Heap.ForwardAddr / ResolveForward / IsForwarded are
// (a) forbidden entirely outside the collector packages and (b) forbidden
// inside them from any function on the raw read path (Get*/Load* names).
type ForwardRule struct{}

// Name implements Rule.
func (*ForwardRule) Name() string { return "forward" }

// Doc implements Rule.
func (*ForwardRule) Doc() string {
	return "only collectors and getheader-class functions may observe forwarding pointers (from-space invariant)"
}

// forwardObservers are the Heap methods that expose forwarding state.
var forwardObservers = map[string]bool{
	"ForwardAddr":    true,
	"ResolveForward": true,
	"IsForwarded":    true,
}

// Appraise implements Rule.
func (r *ForwardRule) Appraise(pass *Pass) {
	inside := collectorPkgs[pass.Pkg.Path]
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name, onHeap := selectorOnHeap(pass.Pkg.Info, sel)
			if !onHeap || !forwardObservers[name] {
				return true
			}
			if !inside {
				pass.Reportf(sel.Sel.Pos(),
					"Heap.%s outside the collector packages: mutator code must not observe forwarding (from-space invariant); use Mutator.Header for getheader",
					name)
				return true
			}
			fn := enclosingFuncName(pass.Pkg.Files, sel.Pos())
			lower := strings.ToLower(fn)
			if strings.HasPrefix(lower, "get") || strings.HasPrefix(lower, "load") {
				pass.Reportf(sel.Sel.Pos(),
					"%s calls Heap.%s: raw read paths must not follow forwarding (from-space invariant); only getheader-class functions may",
					fn, name)
			}
			return true
		})
	}
}
