package analysis

// The io rule: file-system side effects are confined to the two layers whose
// job they are — cmd/ (artifact export, source loading) and
// internal/checkpoint (crash-consistent snapshots) — and even there each
// function that touches the filesystem must carry a //gclint:io annotation
// stating why. The simulated runtime is a closed system: collector
// correctness arguments, bit-for-bit replay and the crash-recovery
// fingerprint all assume state lives only in the arena, the mutation log and
// the simulated clock. An os.WriteFile smuggled into a simulation package is
// hidden state the recovery protocol can neither snapshot nor replay.

import (
	"go/ast"
	"go/types"
	"strings"
)

// IORule flags os file primitives outside the annotated I/O boundary.
type IORule struct{}

// Name implements Rule.
func (*IORule) Name() string { return "io" }

// Doc implements Rule.
func (*IORule) Doc() string {
	return "os file primitives are confined to cmd/ and internal/checkpoint, inside //gclint:io-annotated functions"
}

// ioFuncs are the package-os functions that create, read, write or remove
// filesystem state.
var ioFuncs = map[string]bool{
	"Open":       true,
	"OpenFile":   true,
	"Create":     true,
	"CreateTemp": true,
	"ReadFile":   true,
	"WriteFile":  true,
	"ReadDir":    true,
	"Mkdir":      true,
	"MkdirAll":   true,
	"MkdirTemp":  true,
	"Remove":     true,
	"RemoveAll":  true,
	"Rename":     true,
	"Truncate":   true,
	"Stat":       true,
	"Lstat":      true,
	"Chmod":      true,
	"Chtimes":    true,
	"Link":       true,
	"Symlink":    true,
}

const ioPrefix = "//gclint:io"

// Appraise implements Rule.
func (r *IORule) Appraise(pass *Pass) {
	p := pass.Pkg.Path
	// Hard carve-out: the analyzer itself loads source trees from disk;
	// policing it with its own rule would only breed annotation noise.
	if p == "repligc/internal/analysis" {
		return
	}
	if p != "repligc" &&
		!strings.HasPrefix(p, "repligc/internal/") &&
		!strings.HasPrefix(p, "repligc/cmd/") {
		return
	}
	allowedPkg := p == checkpointPkgPath || strings.HasPrefix(p, "repligc/cmd/")
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				// File-scope initialisers have no place to hang a reason, so
				// any I/O there is flagged unconditionally.
				r.checkSites(pass, decl, false, "")
				continue
			}
			reason, annotated := ioAnnotation(fd)
			if annotated && reason == "" {
				pass.Reportf(fd.Pos(),
					"//gclint:io needs a reason: state what artifact this function owns on disk")
				annotated = false
			}
			if annotated && !allowedPkg {
				pass.Reportf(fd.Pos(),
					"//gclint:io on %s: package %s may not touch the filesystem at all; file I/O belongs to cmd/ and internal/checkpoint only",
					fd.Name.Name, p)
				annotated = false
			}
			sites := r.checkSites(pass, fd, annotated && allowedPkg, fd.Name.Name)
			if annotated && allowedPkg && sites == 0 {
				pass.Reportf(fd.Pos(),
					"unused //gclint:io on %s: the function performs no file I/O; drop the annotation (it would silently license a future side effect)",
					fd.Name.Name)
			}
		}
	}
}

// checkSites walks n for file I/O, reporting each os file-primitive call
// unless licensed, and returns the number of I/O sites found. Method calls
// on an already-open *os.File (Write, Close, Sync, ...) count as sites for
// the unused-annotation check but are not themselves reported — the handle
// had to come from a flagged primitive somewhere.
func (r *IORule) checkSites(pass *Pass, n ast.Node, licensed bool, fn string) int {
	sites := 0
	ast.Inspect(n, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && ioFuncs[sel.Sel.Name] {
			if pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "os" {
				sites++
				if licensed {
					return true
				}
				where := "at file scope"
				if fn != "" {
					where = "in " + fn
				}
				pass.Reportf(sel.Sel.Pos(),
					"os.%s %s: file I/O is confined to cmd/ and internal/checkpoint, and the enclosing function must carry //gclint:io <reason> naming the on-disk artifact it owns",
					sel.Sel.Name, where)
				return true
			}
		}
		if tv, ok := pass.Pkg.Info.Types[sel.X]; ok && isNamed(tv.Type, "os", "File") {
			sites++
		}
		return true
	})
	return sites
}

// ioAnnotation reports the //gclint:io reason on fd's doc comment and
// whether the annotation is present at all.
func ioAnnotation(fd *ast.FuncDecl) (string, bool) {
	if fd.Doc == nil {
		return "", false
	}
	for _, c := range fd.Doc.List {
		if reason, ok := annotationText(c, ioPrefix); ok {
			return reason, true
		}
	}
	return "", false
}
