package analysis

import (
	"go/ast"
	"go/types"
)

// PanicPathRule reserves panic, inside the collector packages, for genuine
// invariant violations. The robustness contract (DESIGN.md, "Failure model
// and fault injection") is that running out of memory is a runtime
// condition, not a bug: every resource-exhaustion path must degrade and
// then surface the typed *core.OOMError, never unwind the host program.
// A panic that really does guard an invariant — a corrupted header, a
// cursor past the log's low-water mark — must be allowlisted with the
// invariant spelled out as the reason, which keeps each such site an
// explicit, reviewed claim.
type PanicPathRule struct{}

// Name implements Rule.
func (*PanicPathRule) Name() string { return "panicpath" }

// Doc implements Rule.
func (*PanicPathRule) Doc() string {
	return "collector packages reserve panic for invariant violations; exhaustion paths must return typed errors"
}

// Appraise implements Rule.
func (r *PanicPathRule) Appraise(pass *Pass) {
	if !collectorPkgs[pass.Pkg.Path] {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			pass.Reportf(call.Pos(),
				"panic in a collector package: resource exhaustion must surface as a typed *core.OOMError (degrade, then return); if this site guards a genuine invariant, allowlist it with the invariant as the reason")
			return true
		})
	}
}
