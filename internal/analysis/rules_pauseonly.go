package analysis

// The pauseonly rule: collector state annotated //gclint:pauseonly may only
// be written by functions whose call sites are all dominated by a pause
// entry (//gclint:pauseentry). Today's runtime is single-mutator, so "the
// world is stopped" is implicit in being inside a collector increment; the
// annotation makes the discipline explicit and machine-checked, which is
// exactly what sharing the heap between mutators will require (ROADMAP open
// item 1): any write reachable without first stopping the mutator is a data
// race in waiting. The in-pause summary comes from the call-graph greatest
// fixpoint in summaries.go — a function is in-pause when it is a pause
// entry, or when every known caller is in-pause and its identifier never
// escapes into a func value (which would allow calls the graph cannot see).

import (
	"go/ast"
	"go/types"
)

// PauseOnlyRule flags writes to //gclint:pauseonly fields from functions
// not dominated by a pause entry.
type PauseOnlyRule struct{}

// Name implements Rule.
func (*PauseOnlyRule) Name() string { return "pauseonly" }

// Doc implements Rule.
func (*PauseOnlyRule) Doc() string {
	return "//gclint:pauseonly fields may only be written under a //gclint:pauseentry function"
}

// Appraise implements Rule.
func (r *PauseOnlyRule) Appraise(pass *Pass) {
	for _, issue := range pass.Index.badAnnots {
		if issue.pkg == pass.Pkg {
			pass.Reportf(issue.pos, "%s", issue.msg)
		}
	}
	for _, fi := range pass.Index.PkgFuncs(pass.Pkg) {
		if fi.Decl.Body == nil || fi.Facts.InPause {
			continue
		}
		r.checkWrites(pass, fi)
	}
}

// checkWrites reports pauseonly-field writes inside a non-in-pause function.
func (r *PauseOnlyRule) checkWrites(pass *Pass, fi *FuncInfo) {
	info := pass.Pkg.Info
	report := func(sel *ast.SelectorExpr) {
		pf := pauseOnlyTarget(pass, info, sel)
		if pf == nil {
			return
		}
		pass.Reportf(sel.Sel.Pos(),
			"write to pause-only field %s from %s, which is reachable without passing a //gclint:pauseentry function (field invariant: %s); move the write under a pause entry or annotate the site",
			pf.Var.Name(), funcDisplay(fi.Obj), pf.Invariant)
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel := selectorWriteTarget(lhs); sel != nil {
					report(sel)
				}
			}
		case *ast.IncDecStmt:
			if sel := selectorWriteTarget(n.X); sel != nil {
				report(sel)
			}
		}
		return true
	})
}

// selectorWriteTarget unwraps an assignment target down to the field
// selector being written: c.f, c.f[i], c.f[i:j] all write through c.f.
func selectorWriteTarget(lhs ast.Expr) *ast.SelectorExpr {
	for {
		switch e := unparen(lhs).(type) {
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.SliceExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			return e
		default:
			return nil
		}
	}
}

// pauseOnlyTarget resolves sel to an annotated pauseonly field, or nil.
func pauseOnlyTarget(pass *Pass, info *types.Info, sel *ast.SelectorExpr) *PauseOnlyField {
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return pass.Index.PauseOnly(v)
}
