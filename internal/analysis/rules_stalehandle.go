package analysis

// The stalehandle rule: a raw heap.Value held in a Go local across a call
// that may trigger a collection flip is a dangling reference waiting to
// happen. The collector cannot see the Go stack (DESIGN.md, "Roots and
// handles"): after a minor flip the nursery is reset, after a major flip
// the old from-space is recycled, and any Value derived before the flip may
// point into the condemned space. The discipline the runtime code follows —
// pin the value in a root (handle stack, operand stack, root slot) before
// the call and re-derive it afterwards — is exactly what this rule checks:
// every read of a Value local must be separated from a may-flip call by an
// intervening re-derivation (any fresh assignment), or the read must carry
// a //gclint:handle <invariant> annotation stating why the value survives.
//
// The check is a position-ordered approximation of real dataflow: within
// one function body (closures included), a read at position R whose last
// write ended at W is stale when some may-flip call F satisfies W < F < R,
// or when R sits in a loop containing a may-flip call and W precedes the
// loop (the value is loop-carried across flips). Immediates — constants of
// type heap.Value and the heap.FromInt/FromBool constructors — are exempt:
// they are tagged words, not pointers, and survive any flip. Locals whose
// address is taken are exempt too: a *heap.Value handed out is (in this
// codebase) a registered root slot, which the flip itself repoints.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// StaleHandleRule flags heap.Value locals read after a may-flip call.
type StaleHandleRule struct{}

// Name implements Rule.
func (*StaleHandleRule) Name() string { return "stalehandle" }

// Doc implements Rule.
func (*StaleHandleRule) Doc() string {
	return "a heap.Value held across a may-flip call must be re-derived or carry //gclint:handle <invariant>"
}

// Appraise implements Rule.
func (r *StaleHandleRule) Appraise(pass *Pass) {
	handles := collectHandleAnnotations(pass)
	for _, fi := range pass.Index.PkgFuncs(pass.Pkg) {
		if fi.Decl.Body == nil {
			continue
		}
		checkStaleValues(pass, fi, handles)
	}
}

// collectHandleAnnotations maps file:line to //gclint:handle annotations in
// the package, reporting annotations with a missing invariant.
func collectHandleAnnotations(pass *Pass) map[allowKey]bool {
	out := make(map[allowKey]bool)
	for _, f := range pass.Pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				invariant, ok := annotationText(c, handlePrefix)
				if !ok {
					continue
				}
				pos := pass.Pkg.Fset.Position(c.Pos())
				if invariant == "" {
					pass.Reportf(c.Pos(),
						"//gclint:handle needs an invariant: state why the value stays valid across the flip")
					continue
				}
				out[allowKey{pos.Filename, pos.Line, "handle"}] = true
			}
		}
	}
	return out
}

// span is a half-open source range.
type span struct {
	pos, end token.Pos
}

func (s span) contains(p token.Pos) bool { return s.pos <= p && p < s.end }

// flipSite is one may-flip call in a function body.
type flipSite struct {
	span
	name string // callee display name
	via  string // root primitive the flip fact came from
}

// valueEvent is one read or write of a tracked heap.Value local.
type valueEvent struct {
	pos       token.Pos // read position, or end of the writing statement
	write     bool
	immediate bool // write of a non-pointer immediate (constant, FromInt...)
}

// checkStaleValues runs the position-ordered staleness check over one
// function body.
func checkStaleValues(pass *Pass, fi *FuncInfo, handles map[allowKey]bool) {
	var flips []flipSite
	for _, cs := range fi.Calls {
		facts := pass.Index.CalleeFacts(cs.Callee)
		if !facts.MayFlip {
			continue
		}
		via := facts.FlipVia
		if via == "" {
			via = funcDisplay(cs.Callee)
		}
		flips = append(flips, flipSite{
			span: span{cs.Call.Pos(), cs.Call.End()},
			name: funcDisplay(cs.Callee),
			via:  via,
		})
	}
	if len(flips) == 0 {
		return
	}

	info := pass.Pkg.Info
	var loops []span
	writes := make(map[*ast.Ident]valueEvent)
	exempt := make(map[*types.Var]bool)
	track := func(id *ast.Ident) *types.Var {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || !typeIsHeapValue(v.Type()) {
			return nil
		}
		if v.Pos() < fi.Decl.Pos() || v.Pos() > fi.Decl.End() {
			return nil // not a local/param of this declaration
		}
		return v
	}
	markWrite := func(target ast.Expr, end token.Pos, imm bool) {
		if id, ok := unparen(target).(*ast.Ident); ok && track(id) != nil {
			writes[id] = valueEvent{pos: end, write: true, immediate: imm}
		}
	}
	ast.Inspect(fi.Decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, span{n.Pos(), n.End()})
		case *ast.RangeStmt:
			loops = append(loops, span{n.Pos(), n.End()})
			// Key/Value are rewritten each iteration; the write "happens"
			// at the range header, before any body read.
			if n.Key != nil {
				markWrite(n.Key, n.X.End(), false)
			}
			if n.Value != nil {
				markWrite(n.Value, n.X.End(), false)
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				markWrite(lhs, n.End(), isImmediateValue(pass, rhs))
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				var rhs ast.Expr
				switch {
				case len(n.Values) == 0:
					// Zero value: heap.Nil, an immediate.
					markWrite(id, n.End(), true)
					continue
				case len(n.Values) == len(n.Names):
					rhs = n.Values[i]
				}
				markWrite(id, n.End(), isImmediateValue(pass, rhs))
			}
		case *ast.IncDecStmt:
			markWrite(n.X, n.End(), false)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := unparen(n.X).(*ast.Ident); ok {
					if v := track(id); v != nil {
						exempt[v] = true
					}
				}
			}
		}
		return true
	})

	// Function parameters (and named results) are written at their
	// declaration site.
	declWrite := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, id := range field.Names {
				writes[id] = valueEvent{pos: id.End(), write: true}
			}
		}
	}
	declWrite(fi.Decl.Recv)
	declWrite(fi.Decl.Type.Params)
	declWrite(fi.Decl.Type.Results)
	// Closure parameters inside the body.
	ast.Inspect(fi.Decl, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			declWrite(fl.Type.Params)
			declWrite(fl.Type.Results)
		}
		return true
	})

	// Gather per-variable event streams.
	events := make(map[*types.Var][]valueEvent)
	var order []*types.Var
	ast.Inspect(fi.Decl, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v := track(id)
		if v == nil || exempt[v] {
			return true
		}
		ev, isWrite := writes[id]
		if !isWrite {
			ev = valueEvent{pos: id.Pos()}
		}
		if _, seen := events[v]; !seen {
			order = append(order, v)
		}
		events[v] = append(events[v], ev)
		return true
	})

	fset := pass.Pkg.Fset
	for _, v := range order {
		evs := events[v]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
		reported := make(map[token.Pos]bool) // keyed by last-write position
		lastWrite := valueEvent{pos: v.Pos(), write: true}
		for _, ev := range evs {
			if ev.write {
				lastWrite = ev
				continue
			}
			if lastWrite.immediate || reported[lastWrite.pos] {
				continue
			}
			f, loopCarried := staleAgainst(ev.pos, lastWrite.pos, flips, loops)
			if f == nil {
				continue
			}
			reported[lastWrite.pos] = true
			rp := fset.Position(ev.pos)
			if handles[allowKey{rp.Filename, rp.Line, "handle"}] ||
				handles[allowKey{rp.Filename, rp.Line - 1, "handle"}] {
				continue
			}
			if loopCarried {
				pass.Reportf(ev.pos,
					"heap.Value %q is carried across iterations of a loop that calls %s (may flip, reaches %s): after a flip it may point into a condemned space; re-derive it inside the loop or annotate //gclint:handle <invariant>",
					v.Name(), f.name, f.via)
			} else {
				pass.Reportf(ev.pos,
					"heap.Value %q is read after the call to %s (may flip, reaches %s): after a flip it may point into a condemned space; re-derive it after the call or annotate //gclint:handle <invariant>",
					v.Name(), f.name, f.via)
			}
		}
	}
}

// staleAgainst decides whether a read at readPos with last write at
// writePos crosses a flip: either linearly (write < flip < read) or
// loop-carried (read inside a loop containing a flip, write before the
// loop). It returns the offending flip site, or nil.
func staleAgainst(readPos, writePos token.Pos, flips []flipSite, loops []span) (*flipSite, bool) {
	for i := range flips {
		f := &flips[i]
		if writePos <= f.pos && f.end <= readPos {
			return f, false
		}
	}
	for _, l := range loops {
		if !l.contains(readPos) || writePos > l.pos {
			continue
		}
		for i := range flips {
			f := &flips[i]
			if l.contains(f.pos) {
				return f, true
			}
		}
	}
	return nil, false
}

// typeIsHeapValue reports whether t is exactly repligc/internal/heap.Value
// (not a pointer to it: *heap.Value slots are registered roots the flip
// repoints).
func typeIsHeapValue(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == heapPkgPath && obj.Name() == "Value"
}

// isImmediateValue reports whether e evaluates to a non-pointer immediate:
// a constant (heap.Nil and friends) or a heap.FromInt/FromBool call.
func isImmediateValue(pass *Pass, e ast.Expr) bool {
	if e == nil {
		return false
	}
	e = unparen(e)
	if tv, ok := pass.Pkg.Info.Types[e]; ok && tv.Value != nil {
		return true
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	callee, _ := calleeOf(pass.Pkg.Info, call)
	if callee == nil {
		return false
	}
	switch funcKey(callee) {
	case heapPkgPath + ".FromInt", heapPkgPath + ".FromBool":
		return true
	}
	return false
}
