package analysis

// summaries.go is the interprocedural layer of gclint: a package-level call
// graph over everything the loader hands Run, plus a fixpoint pass that
// computes transitive per-function summaries. Three facts matter to the
// replication collector's invariants (DESIGN.md, "Machine-checked
// invariants"):
//
//   - may-flip: the function can transitively reach a collection flip
//     (Heap.SwapOld, Space.Reset, or any collector entry point), after which
//     raw heap.Values held in Go locals may point into a condemned space.
//   - may-alloc: the function can transitively allocate on the simulated
//     heap. Every alloc site is also a potential flip site (the pacer taxes
//     allocation), so may-alloc implies may-flip in practice; the facts are
//     kept separate because the stalehandle rule keys on flips while future
//     rules (e.g. alloc-free fast paths) key on allocation.
//   - unlogged-store: the function can transitively reach a raw store into
//     heap-object payload memory (Heap.Store/StoreByte/SetBytes or a direct
//     Arena write) without passing a logging boundary. The propagation stops
//     at functions that append to the mutation log and at the exported API
//     of the collector packages — inside that boundary, raw stores are the
//     collector's own replica writes, which are correct by construction.
//
// The graph also computes an in-pause summary for the pauseonly rule: a
// function is in-pause when every static call site is dominated by a
// //gclint:pauseentry function. Base facts for callees whose declarations
// are not in the loaded package set (notably when tests load a single
// fixture package) come from a builtin table keyed by qualified name, so
// interface dispatch through core.Collector and calls into internal/heap
// stay conservative without whole-program loading.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

const (
	corePkgPath       = "repligc/internal/core"
	stopcopyPkgPath   = "repligc/internal/stopcopy"
	checkpointPkgPath = "repligc/internal/checkpoint"
)

// FuncFacts is the computed interprocedural summary of one function.
type FuncFacts struct {
	MayAlloc      bool
	MayFlip       bool
	UnloggedStore bool

	// LogBoundary marks a function that appends to the mutation log on the
	// path containing its stores; unlogged-store propagation stops here.
	LogBoundary bool

	// PauseEntry marks a //gclint:pauseentry function: a collector entry
	// that stops the mutator before doing any work.
	PauseEntry bool
	// InPause reports that every static call site of the function is
	// dominated by a PauseEntry function.
	InPause bool

	// AllocVia/FlipVia/StoreVia name the root primitive that introduced the
	// corresponding fact, for diagnostics ("reaches Heap.SwapOld").
	AllocVia string
	FlipVia  string
	StoreVia string
}

// CallSite is one resolved static call inside a function body.
type CallSite struct {
	Call   *ast.CallExpr
	Callee *types.Func
}

// FuncInfo is the call-graph node for one declared function.
type FuncInfo struct {
	Obj   *types.Func
	Decl  *ast.FuncDecl
	Pkg   *Package
	Facts FuncFacts
	Calls []CallSite

	// arenaWrites are direct Heap.Arena element assignments in the body
	// (outside internal/heap, which owns the arena).
	arenaWrites []token.Pos

	// hasCaller / escapes feed the in-pause fixpoint: a function with no
	// known callers, or whose value escapes (method value, callback), can be
	// invoked from anywhere and is never considered pause-dominated.
	hasCaller bool
	escapes   bool
}

// PauseOnlyField is one struct field annotated //gclint:pauseonly.
type PauseOnlyField struct {
	Var       *types.Var
	Invariant string
	Pos       token.Pos
}

// annotIssue is a malformed gclint annotation found while indexing; the rule
// owning the annotation reports it for the package it appears in.
type annotIssue struct {
	pkg *Package
	pos token.Pos
	msg string
}

// Index is the shared interprocedural state for one Run: built once from the
// loaded package set and handed to every rule through Pass.Index.
type Index struct {
	funcs     []*FuncInfo // deterministic: package, file, declaration order
	byObj     map[*types.Func]*FuncInfo
	pauseOnly map[*types.Var]*PauseOnlyField

	// pauseOnlyOrder lists annotated fields in source order for -summaries.
	pauseOnlyOrder []*PauseOnlyField

	badAnnots []annotIssue

	// calleeIdents are identifiers consumed as the function part of a call;
	// any other use of a tracked function's identifier marks it escaping.
	calleeIdents map[*ast.Ident]bool
}

// builtinFacts supplies base facts for callees by qualified name (see
// funcKey), covering interface dispatch and callees whose declarations are
// outside the loaded set. Map lookups only — never ranged.
var builtinFacts = map[string]FuncFacts{
	// The flip primitives themselves.
	heapPkgPath + ".Heap.SwapOld": {MayFlip: true, FlipVia: "Heap.SwapOld"},
	heapPkgPath + ".Space.Reset":  {MayFlip: true, FlipVia: "Space.Reset"},

	// Raw allocation.
	heapPkgPath + ".Heap.AllocIn": {MayAlloc: true, AllocVia: "Heap.AllocIn"},

	// Raw payload stores (the mutation-store primitives the write barrier
	// wraps). Header/forwarding writes (SetForward, CopyObject) are collector
	// mechanics, not payload mutations, and are policed by the barrier and
	// forward rules instead.
	heapPkgPath + ".Heap.Store":     {UnloggedStore: true, StoreVia: "Heap.Store"},
	heapPkgPath + ".Heap.StoreByte": {UnloggedStore: true, StoreVia: "Heap.StoreByte"},
	heapPkgPath + ".Heap.SetBytes":  {UnloggedStore: true, StoreVia: "Heap.SetBytes"},

	// The mutator allocation API: the pacer taxes every allocation and the
	// collector may run (and flip) inside the call.
	corePkgPath + ".Mutator.Alloc":           {MayAlloc: true, MayFlip: true, AllocVia: "Mutator.Alloc", FlipVia: "Collector.CollectForAlloc"},
	corePkgPath + ".Mutator.MustAlloc":       {MayAlloc: true, MayFlip: true, AllocVia: "Mutator.MustAlloc", FlipVia: "Collector.CollectForAlloc"},
	corePkgPath + ".Mutator.AllocString":     {MayAlloc: true, MayFlip: true, AllocVia: "Mutator.AllocString", FlipVia: "Collector.CollectForAlloc"},
	corePkgPath + ".Mutator.MustAllocString": {MayAlloc: true, MayFlip: true, AllocVia: "Mutator.MustAllocString", FlipVia: "Collector.CollectForAlloc"},
	corePkgPath + ".Mutator.AllocBytes":      {MayAlloc: true, MayFlip: true, AllocVia: "Mutator.AllocBytes", FlipVia: "Collector.CollectForAlloc"},
	corePkgPath + ".Mutator.MustAllocBytes":  {MayAlloc: true, MayFlip: true, AllocVia: "Mutator.MustAllocBytes", FlipVia: "Collector.CollectForAlloc"},

	// Collector interface dispatch: any implementation may collect, copy
	// (allocate in to-space) and flip.
	corePkgPath + ".Collector.CollectForAlloc":           {MayAlloc: true, MayFlip: true, AllocVia: "Collector.CollectForAlloc", FlipVia: "Collector.CollectForAlloc"},
	corePkgPath + ".Collector.AfterAlloc":                {MayAlloc: true, MayFlip: true, AllocVia: "Collector.AfterAlloc", FlipVia: "Collector.AfterAlloc"},
	corePkgPath + ".Collector.FinishCycles":              {MayAlloc: true, MayFlip: true, AllocVia: "Collector.FinishCycles", FlipVia: "Collector.FinishCycles"},
	corePkgPath + ".EmergencyCollector.CollectEmergency": {MayAlloc: true, MayFlip: true, AllocVia: "EmergencyCollector.CollectEmergency", FlipVia: "EmergencyCollector.CollectEmergency"},
	corePkgPath + ".Pacer.AllocTax":                      {MayAlloc: true, MayFlip: true, AllocVia: "Pacer.AllocTax", FlipVia: "Pacer.AllocTax"},
}

// boundaryCallees are calls that mark the calling function as a logging
// boundary: its raw stores are mirrored to the mutation log.
var boundaryCallees = map[string]bool{
	corePkgPath + ".Mutator.logMutation": true,
	corePkgPath + ".MutationLog.Append":  true,
}

// BuildIndex constructs the call graph over pkgs and runs the summary
// fixpoints. It is built once per Run and shared by all rules.
func BuildIndex(pkgs []*Package) *Index {
	idx := &Index{
		byObj:        make(map[*types.Func]*FuncInfo),
		pauseOnly:    make(map[*types.Var]*PauseOnlyField),
		calleeIdents: make(map[*ast.Ident]bool),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			idx.collectFile(pkg, f)
		}
	}
	for _, fi := range idx.funcs {
		idx.scanFunc(fi)
	}
	idx.markCallersAndEscapes(pkgs)
	idx.fixpointFacts()
	idx.fixpointInPause()
	return idx
}

// collectFile registers the file's function declarations and pauseonly
// field annotations.
func (idx *Index) collectFile(pkg *Package, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
		if obj == nil {
			continue
		}
		fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
		fi.Facts.PauseEntry = idx.pauseEntryAnnotation(pkg, fd)
		idx.funcs = append(idx.funcs, fi)
		idx.byObj[obj] = fi
	}
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		for _, field := range st.Fields.List {
			idx.collectPauseOnlyField(pkg, field)
		}
		return true
	})
}

const (
	pauseOnlyPrefix  = "//gclint:pauseonly"
	pauseEntryPrefix = "//gclint:pauseentry"
	handlePrefix     = "//gclint:handle"
)

// annotationText returns (rest-of-line, true) when comment c is the given
// gclint annotation. A prefix match followed by a non-space rune is some
// other annotation word and does not count.
func annotationText(c *ast.Comment, prefix string) (string, bool) {
	if !strings.HasPrefix(c.Text, prefix) {
		return "", false
	}
	rest := strings.TrimPrefix(c.Text, prefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// pauseEntryAnnotation reports whether fd carries a well-formed
// //gclint:pauseentry annotation; a missing reason is recorded as a
// malformed annotation and does not make the function an entry.
func (idx *Index) pauseEntryAnnotation(pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		reason, ok := annotationText(c, pauseEntryPrefix)
		if !ok {
			continue
		}
		if reason == "" {
			idx.badAnnots = append(idx.badAnnots, annotIssue{
				pkg: pkg,
				pos: c.Pos(),
				msg: "//gclint:pauseentry needs a reason: state why the mutator is stopped at this entry",
			})
			return false
		}
		return true
	}
	return false
}

// collectPauseOnlyField records a //gclint:pauseonly annotation from a
// struct field's doc comment or trailing line comment.
func (idx *Index) collectPauseOnlyField(pkg *Package, field *ast.Field) {
	var invariant string
	var pos token.Pos
	found := false
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text, ok := annotationText(c, pauseOnlyPrefix)
			if !ok {
				continue
			}
			found, invariant, pos = true, text, c.Pos()
		}
	}
	if !found {
		return
	}
	if invariant == "" {
		idx.badAnnots = append(idx.badAnnots, annotIssue{
			pkg: pkg,
			pos: pos,
			msg: "//gclint:pauseonly needs an invariant: state why the field may only change during a pause",
		})
		return
	}
	for _, name := range field.Names {
		v, _ := pkg.Info.Defs[name].(*types.Var)
		if v == nil {
			continue
		}
		pf := &PauseOnlyField{Var: v, Invariant: invariant, Pos: name.Pos()}
		idx.pauseOnly[v] = pf
		idx.pauseOnlyOrder = append(idx.pauseOnlyOrder, pf)
	}
}

// scanFunc walks one function body collecting call sites and base facts.
func (idx *Index) scanFunc(fi *FuncInfo) {
	info := fi.Pkg.Info
	inHeapPkg := fi.Pkg.Path == heapPkgPath
	ast.Inspect(fi.Decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callee, id := calleeOf(info, n)
			if id != nil {
				idx.calleeIdents[id] = true
			}
			if callee == nil {
				return true
			}
			fi.Calls = append(fi.Calls, CallSite{Call: n, Callee: callee})
			if boundaryCallees[funcKey(callee)] {
				fi.Facts.LogBoundary = true
			}
		case *ast.AssignStmt:
			// Direct Arena element writes count as raw stores everywhere
			// except internal/heap itself, where they implement the store
			// primitives the builtin table already describes.
			if inHeapPkg {
				return true
			}
			for _, lhs := range n.Lhs {
				if pos, ok := arenaWriteTarget(info, lhs); ok {
					fi.arenaWrites = append(fi.arenaWrites, pos)
					fi.Facts.UnloggedStore = true
					fi.Facts.StoreVia = "direct Heap.Arena write"
				}
			}
		}
		return true
	})
	if fi.storeBoundary() {
		fi.Facts.UnloggedStore = false
		fi.Facts.StoreVia = ""
	}
}

// storeBoundary reports whether unlogged-store propagation stops at fi:
// either it logs its stores, or it is part of the exported API of the
// collector packages (whose raw stores are replica writes, correct by
// construction and unreachable from mutator code except through this API).
// The checkpoint package counts too: its raw stores rebuild a recovered
// heap before any mutator runs, so no log entry could ever be owed.
func (fi *FuncInfo) storeBoundary() bool {
	if fi.Facts.LogBoundary {
		return true
	}
	path := fi.Pkg.Path
	return (path == corePkgPath || path == stopcopyPkgPath || path == checkpointPkgPath) &&
		ast.IsExported(fi.Obj.Name())
}

// arenaWriteTarget reports whether lhs assigns an element (or slice) of a
// Heap.Arena selector, returning the selector position.
func arenaWriteTarget(info *types.Info, lhs ast.Expr) (token.Pos, bool) {
	for {
		switch e := unparen(lhs).(type) {
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.SliceExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			if name, ok := selectorOnHeap(info, e); ok && name == "Arena" {
				return e.Sel.Pos(), true
			}
			return token.NoPos, false
		default:
			return token.NoPos, false
		}
	}
}

// markCallersAndEscapes fills hasCaller from the collected call sites and
// marks functions whose identifier is used outside call position (method
// values, callbacks) as escaping.
func (idx *Index) markCallersAndEscapes(pkgs []*Package) {
	for _, fi := range idx.funcs {
		for _, cs := range fi.Calls {
			if target, ok := idx.byObj[cs.Callee]; ok {
				target.hasCaller = true
			}
		}
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || idx.calleeIdents[id] {
					return true
				}
				obj, ok := pkg.Info.Uses[id].(*types.Func)
				if !ok {
					return true
				}
				if target, ok := idx.byObj[obj]; ok {
					target.escapes = true
				}
				return true
			})
		}
	}
}

// CalleeFacts merges the builtin base facts for callee with its computed
// summary (when its declaration is in the loaded set).
func (idx *Index) CalleeFacts(callee *types.Func) FuncFacts {
	var out FuncFacts
	if callee == nil {
		return out
	}
	if bf, ok := builtinFacts[funcKey(callee)]; ok {
		out = bf
	}
	if fi, ok := idx.byObj[callee]; ok {
		c := fi.Facts
		if c.MayAlloc && !out.MayAlloc {
			out.MayAlloc, out.AllocVia = true, c.AllocVia
		}
		if c.MayFlip && !out.MayFlip {
			out.MayFlip, out.FlipVia = true, c.FlipVia
		}
		if c.UnloggedStore && !out.UnloggedStore {
			out.UnloggedStore, out.StoreVia = true, c.StoreVia
		}
	}
	return out
}

// fixpointFacts propagates may-alloc / may-flip / unlogged-store up the call
// graph to convergence. Iteration is over the deterministic function slice,
// so the resulting via-strings are stable run to run.
func (idx *Index) fixpointFacts() {
	for changed := true; changed; {
		changed = false
		for _, fi := range idx.funcs {
			boundary := fi.storeBoundary()
			for _, cs := range fi.Calls {
				facts := idx.CalleeFacts(cs.Callee)
				if facts.MayAlloc && !fi.Facts.MayAlloc {
					fi.Facts.MayAlloc, fi.Facts.AllocVia = true, facts.AllocVia
					changed = true
				}
				if facts.MayFlip && !fi.Facts.MayFlip {
					fi.Facts.MayFlip, fi.Facts.FlipVia = true, facts.FlipVia
					changed = true
				}
				if facts.UnloggedStore && !boundary && !fi.Facts.UnloggedStore {
					fi.Facts.UnloggedStore, fi.Facts.StoreVia = true, facts.StoreVia
					changed = true
				}
			}
		}
	}
}

// fixpointInPause computes the greatest fixpoint of "every call site is
// dominated by a pause entry": start optimistic (any function with known,
// non-escaping callers), then strip in-pause from every function reachable
// from a non-in-pause caller until nothing changes.
func (idx *Index) fixpointInPause() {
	for _, fi := range idx.funcs {
		fi.Facts.InPause = fi.Facts.PauseEntry || (fi.hasCaller && !fi.escapes)
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range idx.funcs {
			if fi.Facts.InPause {
				continue
			}
			for _, cs := range fi.Calls {
				target, ok := idx.byObj[cs.Callee]
				if ok && target.Facts.InPause && !target.Facts.PauseEntry {
					target.Facts.InPause = false
					changed = true
				}
			}
		}
	}
}

// PkgFuncs returns the graph nodes declared in pkg, in source order.
func (idx *Index) PkgFuncs(pkg *Package) []*FuncInfo {
	var out []*FuncInfo
	for _, fi := range idx.funcs {
		if fi.Pkg == pkg {
			out = append(out, fi)
		}
	}
	return out
}

// PauseOnly returns the annotation for v, or nil.
func (idx *Index) PauseOnly(v *types.Var) *PauseOnlyField {
	return idx.pauseOnly[v]
}

// Summaries renders one line per function ("pkg.Func: alloc flip ...") in
// declaration order, for gclint -summaries.
func (idx *Index) Summaries() []string {
	var out []string
	for _, fi := range idx.funcs {
		var tags []string
		if fi.Facts.MayAlloc {
			tags = append(tags, "may-alloc("+fi.Facts.AllocVia+")")
		}
		if fi.Facts.MayFlip {
			tags = append(tags, "may-flip("+fi.Facts.FlipVia+")")
		}
		if fi.Facts.UnloggedStore {
			tags = append(tags, "unlogged-store("+fi.Facts.StoreVia+")")
		}
		if fi.Facts.LogBoundary {
			tags = append(tags, "log-boundary")
		}
		if fi.Facts.PauseEntry {
			tags = append(tags, "pause-entry")
		} else if fi.Facts.InPause {
			tags = append(tags, "in-pause")
		}
		if len(tags) == 0 {
			tags = append(tags, "pure")
		}
		out = append(out, fmt.Sprintf("%s.%s: %s", fi.Pkg.Path, funcDisplay(fi.Obj), strings.Join(tags, " ")))
	}
	return out
}

// --- shared call-graph helpers -------------------------------------------

// unparen strips parenthesis nodes.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeOf resolves the static callee of call, returning the function
// object and the identifier consumed as the callee (for escape analysis).
// Interface method calls resolve to the interface's method object, which the
// builtin fact table covers; dynamic calls (func values) return nil.
func calleeOf(info *types.Info, call *ast.CallExpr) (*types.Func, *ast.Ident) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f, fun
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f, fun.Sel
			}
			return nil, nil
		}
		// Package-qualified call (pkg.Func).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f, fun.Sel
		}
	}
	return nil, nil
}

// funcKey is the qualified name used by the builtin fact tables:
// "pkgpath.Recv.Name" for methods (pointer receivers stripped, interface
// receivers included) and "pkgpath.Name" for plain functions.
func funcKey(f *types.Func) string {
	name := f.Name()
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil {
				return obj.Pkg().Path() + "." + obj.Name() + "." + name
			}
			return obj.Name() + "." + name
		}
	}
	if f.Pkg() != nil {
		return f.Pkg().Path() + "." + name
	}
	return name
}

// funcDisplay is the human-readable name used in diagnostics:
// "(*Type).Name", "Type.Name" or "Name".
func funcDisplay(f *types.Func) string {
	name := f.Name()
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		star := ""
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			star = "*"
		}
		if named, ok := t.(*types.Named); ok {
			if star != "" {
				return "(" + star + named.Obj().Name() + ")." + name
			}
			return named.Obj().Name() + "." + name
		}
	}
	return name
}
