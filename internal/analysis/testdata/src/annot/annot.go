// Package fixannot exercises the annotation machinery itself: allows that
// suppress nothing, unknown rule names, missing reasons, and duplicate rule
// names are all findings (rule "annotation") — a stale annotation would
// silently mask the next real violation on its line.
package fixannot

import "repligc/internal/heap"

// used: a well-formed allow on the line above its violation suppresses it.
func used(h *heap.Heap, p heap.Value) {
	//gclint:allow barrier,barriercomplete -- fixture: legal debugging poke
	h.Store(p, 0, heap.Nil)
}

// wrongLine: the allow sits two lines above the violation, so it suppresses
// nothing — the store is still flagged and the allow is reported as unused.
func wrongLine(h *heap.Heap, p heap.Value) {
	//gclint:allow barrier,barriercomplete -- fixture: stranded annotation

	h.Store(p, 0, heap.Nil)
}

// unknownRule: the rule name has a typo, so the annotation is rejected and
// the read is still flagged.
func unknownRule(h *heap.Heap, p heap.Value) heap.Value {
	//gclint:allow barier -- fixture: typo in the rule name
	return h.Load(p, 0)
}

// missingReason: the " -- reason" part is mandatory.
func missingReason(h *heap.Heap, p heap.Value) heap.Value {
	//gclint:allow barrier
	return h.Load(p, 0)
}

// duplicate: the same rule listed twice on one annotation.
func duplicate(h *heap.Heap, p heap.Value) heap.Value {
	//gclint:allow barrier,barrier -- fixture: rule listed twice
	return h.Load(p, 0)
}
