// Package fixbadallow exercises annotation validation: an allow without a
// reason is itself a diagnostic, and does not suppress the violation.
package fixbadallow

func bad(m map[int]int) int {
	n := 0
	//gclint:allow maprange
	for _, v := range m {
		n += v
	}
	return n
}
