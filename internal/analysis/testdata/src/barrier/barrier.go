// Package fixbarrier exercises the barrier rule: every direct touch of heap
// words outside the collector packages must be flagged with a pointer at the
// Mutator method to use instead.
package fixbarrier

import "repligc/internal/heap"

func writes(h *heap.Heap, p heap.Value) {
	h.Store(p, 0, heap.FromInt(1))
	h.StoreByte(p, 0, 7)
	h.SetBytes(p, []byte("x"))
	h.SetForward(p, p)
	h.SwapOld()
	if q, ok := h.AllocIn(h.OldFrom(), heap.KindRecord, 1); ok {
		_ = q
	}
	if q, ok := h.CopyObject(p, h.OldTo()); ok {
		_ = q
	}
}

func reads(h *heap.Heap, p heap.Value) heap.Value {
	_ = h.LoadByte(p, 0)
	_ = h.Bytes(p)
	_ = h.RawHeader(p)
	_ = len(h.Arena)
	return h.Load(p, 0)
}

// Mutator-style calls through a non-Heap receiver must not be flagged.
type wrapper struct{ inner *heap.Heap }

func (w wrapper) Load(p heap.Value, i int) heap.Value { return heap.Nil }

func fine(w wrapper, p heap.Value) heap.Value { return w.Load(p, 0) }
