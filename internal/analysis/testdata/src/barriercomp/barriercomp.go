// Package fixbarriercomp exercises the barriercomplete rule: every store
// into heap payload must reach the logging barrier on all paths, including
// through helper functions — the interprocedural summary propagates the
// unlogged-store fact up the call graph until it meets a log boundary.
package fixbarriercomp

import (
	"repligc/internal/core"
	"repligc/internal/heap"
)

// mutate stores into the heap payload directly: the base unlogged-store
// fact, flagged at the Heap.Store call site (the syntactic barrier rule
// fires here too).
func mutate(h *heap.Heap, p heap.Value) {
	h.Store(p, 0, heap.Nil)
}

// pokeMid inherits mutate's unlogged-store summary: flagged at the call.
func pokeMid(h *heap.Heap, p heap.Value) { mutate(h, p) }

// pokeDeep is two hops from the raw store; the via chain in the message
// names the primitive the call eventually reaches.
func pokeDeep(h *heap.Heap, p heap.Value) { pokeMid(h, p) }

// setLogged routes the store through Mutator.Set, which appends to the
// mutation log before writing: the summary stops at the barrier and
// nothing is flagged, here or in its callers.
func setLogged(m *core.Mutator, p heap.Value) { m.Set(p, 0, heap.Nil) }

func wrapper(m *core.Mutator, p heap.Value) { setLogged(m, p) }

// debugPoke is an annotated-allowed site: a raw store with a stated reason.
func debugPoke(h *heap.Heap, p heap.Value) {
	//gclint:allow barriercomplete,barrier -- fixture: checkpoint dump writes to a detached snapshot heap
	h.Store(p, 0, heap.Nil)
}
