// Package fixclean holds violations of several rules, each suppressed by a
// well-formed //gclint:allow annotation: the analyzer must report nothing.
package fixclean

import "repligc/internal/heap"

func tally(c map[heap.Kind]int) int {
	n := 0
	//gclint:allow maprange -- pure commutative sum; order cannot matter
	for _, v := range c {
		n += v
	}
	return n
}

func poke(h *heap.Heap, p heap.Value) heap.Value {
	//gclint:allow barrier,barriercomplete -- fixture: pretend this is a debugging hook
	h.Store(p, 0, heap.Nil)
	h.Load(p, 0)     //gclint:allow barrier -- same-line annotation form
	h.IsForwarded(p) //gclint:allow forward -- fixture: a heap auditor is allowed to observe forwarding
	return heap.Nil
}
