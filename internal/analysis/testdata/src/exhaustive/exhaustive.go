// Package fixexhaustive exercises the exhaustive rule over the watched enum
// types: marked dispatch switches and default-less switches must cover every
// constant; unmarked switches with a default are deliberate partial matches.
package fixexhaustive

import (
	"repligc/internal/bytecode"
	"repligc/internal/heap"
)

// A designated dispatch site must be exhaustive even with a default clause.
func dispatch(k heap.Kind) int {
	//gclint:dispatch
	switch k {
	case heap.KindRecord, heap.KindClosure:
		return 1
	case heap.KindString:
		return 2
	default:
		return 0
	}
}

// A default-less switch silently drops unlisted constants.
func noDefault(op bytecode.BinOp) bool {
	switch op {
	case bytecode.BinAdd, bytecode.BinSub, bytecode.BinMul:
		return true
	}
	return false
}

// An unmarked switch with a default is a deliberate partial match: not flagged.
func partial(k heap.Kind) bool {
	switch k {
	case heap.KindBytes:
		return true
	default:
		return false
	}
}

// Covering every constant satisfies the rule; KindMax aliases KindBytes, so
// listing KindBytes covers both.
func full(k heap.Kind) bool {
	//gclint:dispatch
	switch k {
	case heap.KindRecord, heap.KindClosure, heap.KindString:
		return false
	case heap.KindRef, heap.KindArray, heap.KindBytes:
		return true
	}
	return false
}
