// Package fixfastpath exercises the barrierfast rule: consulting the heap's
// dirty-stamp API commits a function to the fast-path invariant, so it must
// carry a //gclint:fastpath annotation with the invariant spelled out.
package fixfastpath

import "repligc/internal/heap"

// skipUnannotated consults the stamp with no annotation at all: flagged.
func skipUnannotated(h *heap.Heap, p heap.Value, i int) bool {
	return h.SlotDirty(p, i)
}

// markUnannotated mutates the stamp table without the annotation: flagged.
func markUnannotated(h *heap.Heap, p heap.Value, i int) {
	h.MarkSlotDirty(p, i)
}

// skipBare carries the annotation but no invariant text, which is a claim
// with no content: still flagged.
//gclint:fastpath
func skipBare(h *heap.Heap, p heap.Value, i int) bool {
	return h.SlotDirty(p, i)
}

// skipAnnotated is the reviewed form: the annotation states why skipping the
// append is safe.
//gclint:fastpath a current-epoch stamp proves the log retains an unconsumed entry for this slot
func skipAnnotated(h *heap.Heap, p heap.Value, i int) bool {
	if h.SlotDirty(p, i) {
		return true
	}
	h.MarkSlotDirty(p, i)
	return false
}

// skipWords covers the word-range variants under one annotation.
//gclint:fastpath current-epoch stamps prove the log retains word-aligned entries covering these words
func skipWords(h *heap.Heap, p heap.Value, w, n int) bool {
	if h.WordsDirty(p, w, n) {
		return true
	}
	h.MarkWordsDirty(p, w, n)
	return false
}

// fastpathLiteral holds a function literal consulting the stamps: the
// literal is attributed to its annotated host.
//gclint:fastpath the literal runs under its host's invariant; stamps only suppress entries the log still retains
func fastpathLiteral(h *heap.Heap, p heap.Value) func(int) bool {
	return func(i int) bool { return h.SlotDirty(p, i) }
}

// epoch is unrelated stamp-free heap use: never flagged.
func epoch(h *heap.Heap) {
	h.BeginLogEpoch()
}
