// Package fixforward exercises the forward rule outside the collector
// packages: mutator code must never observe forwarding state.
package fixforward

import "repligc/internal/heap"

func peek(h *heap.Heap, p heap.Value) heap.Value {
	if h.IsForwarded(p) {
		return h.ForwardAddr(p)
	}
	return h.ResolveForward(p)
}
