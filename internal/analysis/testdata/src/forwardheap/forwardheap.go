// Package fixforwardheap masquerades as a collector package and exercises
// the forward rule's raw-read-path restriction: even inside the collectors,
// Get*/Load* functions must not follow forwarding pointers.
package fixforwardheap

import "repligc/internal/heap"

// GetSlot is on the raw read path (Get prefix): observing forwarding here
// would break the from-space invariant.
func GetSlot(h *heap.Heap, p heap.Value) heap.Value {
	if h.IsForwarded(p) {
		return heap.Nil
	}
	return heap.Nil
}

// loadWord likewise (load prefix, case-insensitive).
func loadWord(h *heap.Heap, p heap.Value) heap.Value {
	return h.ResolveForward(p)
}

// scan is collector machinery: forwarding access is its job.
func scan(h *heap.Heap, p heap.Value) heap.Value {
	if h.IsForwarded(p) {
		return h.ForwardAddr(p)
	}
	return p
}
