// Package fixiocmd exercises the io rule inside cmd/: file I/O is legal
// behind a //gclint:io annotation naming the artifact, and flagged without
// one.
package fixiocmd

import "os"

// writeReport persists the report artifact.
//
//gclint:io owns the report JSON written to the path the user named
func writeReport(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func sneaky(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// forgotten carries the annotation but performs no I/O.
//
//gclint:io held over from an earlier revision
func forgotten() int { return 42 }

//gclint:io
func noReason(path string) error {
	return os.Remove(path)
}
