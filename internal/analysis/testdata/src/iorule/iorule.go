// Package fixio exercises the io rule outside the permitted packages: a
// simulation package may never touch the filesystem, and no annotation can
// license it.
package fixio

import "os"

func spill() error {
	return os.WriteFile("state.bin", nil, 0o644)
}

// persist is annotated, but the annotation itself is the violation here:
// this package is not on the I/O boundary at all.
//
//gclint:io wants to persist the routing table between runs
func persist() error {
	return os.WriteFile("table.bin", nil, 0o644)
}
