// Package fixmaprange exercises the maprange rule: ranging over a map
// iterates in random order and is flagged in deterministic code.
package fixmaprange

import "sort"

type tally map[string]int

func bad(m map[string]int, t tally) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	for k := range t { // named map types are maps too
		sum += len(k)
	}
	return sum
}

// Iterating sorted keys is the sanctioned pattern.
func fine(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//gclint:allow maprange -- keys are sorted before use; collection order cannot matter
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
