// Package fixmultimut exercises the pauseonly rule on the multi-mutator
// group surface: the pause entry is a method installed as a heap hook (a
// function value, invisible to the call graph), so the //gclint:pauseentry
// annotation on the hook target is what certifies its writes — and the
// per-member merge helpers it calls inherit that certification through the
// ordinary interprocedural chain.
package fixmultimut

// hookHeap stands in for the heap's epoch machinery: it calls preEpoch
// through a function value, an edge the analyzer cannot see.
type hookHeap struct {
	preEpoch func()
}

// group is shared multi-mutator state guarded by the pause-entry rendezvous.
type group struct {
	h *hookHeap

	//gclint:pauseonly fixture: merged only at pause entry, with every mutator stopped
	merged int

	//gclint:pauseonly fixture: epoch counter advanced only while the world is stopped
	epoch int
}

// newGroup installs pauseEntry as the hook; the call edge from the heap to
// the method exists only at runtime.
func newGroup(h *hookHeap) *group {
	g := &group{h: h}
	h.preEpoch = g.pauseEntry
	return g
}

//gclint:pauseentry fixture: invoked only from the heap's epoch begin, after every mutator parked
func (g *group) pauseEntry() {
	g.mergeLogs()
}

// mergeLogs is only reachable through pauseEntry, so its write to the
// pause-only counter is certified by the annotation on the hook target
// alone — no diagnostic, even though the hook edge itself is invisible.
func (g *group) mergeLogs() {
	g.merged++
}

//gclint:pauseentry
func (g *group) bareEntry() {
	// Missing reason text: the annotation itself is flagged, exactly as a
	// collector pause entry without its stop-the-world justification is.
	g.epoch++
}

// Drain is an un-annotated entry point writing a pause-only field through a
// helper nothing pause-dominated calls; the write is flagged.
func (g *group) Drain() {
	g.drainNow()
}

func (g *group) drainNow() {
	g.epoch = 0
}

// Reset clears the counter outside a pause on purpose; the allow annotation
// carries the reason.
func (g *group) Reset() {
	g.merged = 0 //gclint:allow pauseonly -- fixture: group construction, before any mutator can observe it
}
