// Package panicpath exercises the panicpath rule. The fixture masquerades
// as a collector package: a bare panic is flagged (resource exhaustion must
// return a typed error), while an annotated invariant panic is allowed.
package panicpath

// allocFrom is an exhaustion path: it must return an error, not panic.
func allocFrom(free, need int) int {
	if need > free {
		panic("out of memory")
	}
	return free - need
}

// checkHeader is an invariant check: the annotated panic is acceptable.
func checkHeader(raw uint64) uint64 {
	if raw == 0 {
		//gclint:allow panicpath -- invariant: callers never pass a zero header word
		panic("corrupt header")
	}
	return raw
}
