// Package fixpauseonly exercises the pauseonly rule: fields annotated
// //gclint:pauseonly may only be written from functions whose every caller
// chain passes through a //gclint:pauseentry function (the mutator is
// stopped there, so unsynchronized writes are safe).
package fixpauseonly

// world is collector-style state with a pause-only cursor.
type world struct {
	//gclint:pauseonly fixture: the cursor only advances while the mutator is stopped
	cursor int

	//gclint:pauseonly
	bad int // missing invariant text: the annotation itself is flagged

	free int // ordinary field, writable anywhere
}

//gclint:pauseentry fixture: the mutator is parked before step runs
func (w *world) pause() {
	w.step()
}

// step is only reachable through pause, so its cursor write is fine.
func (w *world) step() {
	w.cursor++
	w.free = 0
}

// Poke is an un-annotated entry point: the write it reaches through step2
// is not pause-dominated and is flagged there.
func (w *world) Poke() {
	w.step2()
}

func (w *world) step2() {
	w.cursor = 0
}

// Reset writes the field outside a pause on purpose, with the reason in an
// allow annotation.
func (w *world) Reset() {
	w.cursor = 0 //gclint:allow pauseonly -- fixture: constructor-style reset before the world is shared
}
