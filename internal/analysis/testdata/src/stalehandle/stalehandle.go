// Package fixstale exercises the stalehandle rule: a raw heap.Value held
// across a may-flip call is stale — a replication flip may retire the space
// it points into — and must be re-derived from a root or vouched for with a
// //gclint:handle annotation.
package fixstale

import (
	"repligc/internal/core"
	"repligc/internal/heap"
)

// buildPair holds p raw across MustAlloc (which may run a collection and
// flip): the read of p in Init is flagged.
func buildPair(m *core.Mutator, p heap.Value) heap.Value {
	q := m.MustAlloc(heap.KindRecord, 2)
	m.Init(q, 0, p)
	return q
}

// buildPairRooted re-derives the value through a registered handle after the
// may-flip call: nothing is flagged.
func buildPairRooted(m *core.Mutator, p heap.Value) heap.Value {
	h := m.PushHandle(p)
	q := m.MustAlloc(heap.KindRecord, 2)
	m.Init(q, 0, m.HandleVal(h))
	return q
}

// buildPairVouched carries p across the flip on purpose, with the invariant
// that makes it sound stated in a //gclint:handle annotation.
func buildPairVouched(m *core.Mutator, p heap.Value) heap.Value {
	q := m.MustAlloc(heap.KindRecord, 2)
	//gclint:handle fixture: p is an immediate-only protocol word in this call chain, never a movable pointer
	m.Init(q, 0, p)
	return q
}

// fill is the loop-carried form: p is written before the loop and read on
// every iteration after the may-flip allocation inside it.
func fill(m *core.Mutator, p heap.Value, n int) {
	for i := 0; i < n; i++ {
		q := m.MustAlloc(heap.KindRecord, 1)
		m.Init(q, 0, p)
	}
}

// observe reads p at the top of each iteration, before the may-flip
// allocation later in the body: only the loop-carried clause catches the
// stale read on the second time around.
func observe(m *core.Mutator, p heap.Value, n int) {
	for i := 0; i < n; i++ {
		m.SetHandleVal(0, p)
		_ = m.MustAlloc(heap.KindRecord, 1)
	}
}

// fillInts stores an immediate: immediates are values, not pointers, and a
// flip cannot invalidate them, so nothing is flagged.
func fillInts(m *core.Mutator, n int) {
	v := heap.FromInt(42)
	for i := 0; i < n; i++ {
		q := m.MustAlloc(heap.KindRecord, 1)
		m.Init(q, 0, v)
	}
}

// rewriteAfterFlip re-assigns p from a rooted source after the may-flip
// call; the read uses the fresh value, so nothing is flagged.
func rewriteAfterFlip(m *core.Mutator, p heap.Value) heap.Value {
	h := m.PushHandle(p)
	q := m.MustAlloc(heap.KindRecord, 2)
	p = m.HandleVal(h)
	m.Init(q, 0, p)
	return q
}
