// Package fixwallclock exercises the wallclock rule: host-time functions are
// banned from simulation-governed packages.
package fixwallclock

import "time"

func tick() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}

// Pure duration arithmetic does not observe the wall clock and is fine.
func fine() time.Duration { return 3 * time.Second }
