// Package fixwallclockcalib exercises the wallclock rule's calibration
// boundary: masquerading as repligc/internal/calib, wall-clock reads are
// legal only inside functions annotated //gclint:wallclock <reason>.
package fixwallclockcalib

import "time"

// stopwatch is the intended shape: an annotated function owning the reads.
//
//gclint:wallclock calibration fits the simulated cost model against real elapsed time
func stopwatch() func() int64 {
	start := time.Now()
	return func() int64 { return int64(time.Since(start)) }
}

// reasonless carries the annotation without saying why, which is flagged,
// and its read is then unlicensed.
//
//gclint:wallclock
func reasonless() time.Time {
	return time.Now()
}

// unannotated reads the clock with no annotation at all.
func unannotated() time.Time {
	return time.Now()
}

// unused carries the annotation but reads no clock: flagged so a stale
// annotation cannot silently license a future read.
//
//gclint:wallclock left over from a deleted measurement
func unused() time.Duration {
	return 3 * time.Second
}

// arithmetic is pure duration math; no annotation needed.
func arithmetic() time.Duration { return 2 * time.Millisecond }
