// Package fixwallclockcmd exercises the wallclock rule's cmd/ scope:
// exporter glue may stamp artifacts with wall-clock metadata behind an
// explicit annotation, but an unannotated read is still flagged.
package fixwallclockcmd

import "time"

func exportLabel() string {
	//gclint:allow wallclock -- exporter glue: the stamp only labels an artifact; nothing simulated reads it
	return time.Now().UTC().Format(time.RFC3339)
}

func sneaky() time.Time {
	return time.Now()
}
