package bench

import (
	"testing"

	"repligc/internal/core"
)

// exhaustionScale is small enough that the matrix below stays fast but
// still allocates far more than the tightest heaps in the ladder.
func exhaustionScale() Scale {
	return Scale{PrimesCount: 40, SortSize: 800, SortDepth: 2, CompModules: 3, CompReps: 4}
}

// TestExhaustionMatrix tightens the heap across every workload × collector
// configuration until the run dies of memory exhaustion, and asserts the
// robustness contract each time: the failure is the typed *core.OOMError
// (never a Go panic), the post-OOM heap still passes a full audit, and the
// collector's statistics remain coherent.
func TestExhaustionMatrix(t *testing.T) {
	s := NewSuite(exhaustionScale())
	// Old-semispace ladder, descending. The smallest rungs cannot hold the
	// workloads' live data, so every (workload, config) pair is guaranteed
	// to reach OOM before the ladder ends.
	ladder := []int64{2 << 20, 512 << 10, 128 << 10, 48 << 10, 16 << 10, 6 << 10}
	params := Params{NBytes: 32 << 10, OBytes: 64 << 10, LBytes: 8 << 10}

	for _, name := range AllWorkloads {
		for _, cfg := range AllPaperConfigs {
			t.Run(name+"/"+string(cfg), func(t *testing.T) {
				w, err := s.WorkloadByName(name)
				if err != nil {
					t.Fatal(err)
				}
				sawOOM := false
				for _, oldSemi := range ladder {
					rt, err := NewRuntime(RunConfig{
						Config:          cfg,
						Params:          params,
						OldSemiBytes:    oldSemi,
						NurseryCapBytes: 8 * params.NBytes,
					})
					if err != nil {
						t.Fatal(err)
					}
					runErr := func() (err error) {
						defer func() {
							if r := recover(); r != nil {
								t.Fatalf("old=%dKB: run panicked instead of returning a typed error: %v",
									oldSemi>>10, r)
							}
						}()
						if _, err := w.Run(rt.Mutator); err != nil {
							return err
						}
						return rt.GC.FinishCycles(rt.Mutator)
					}()

					st := rt.GC.Stats()
					rec := rt.GC.Pauses()
					if len(rec.Pauses) != st.PauseCount {
						t.Fatalf("old=%dKB: %d recorded pauses but PauseCount=%d",
							oldSemi>>10, len(rec.Pauses), st.PauseCount)
					}
					if st.EmergencyCollections < 0 || st.ForcedCompletion < 0 {
						t.Fatalf("old=%dKB: negative degradation counters: %+v", oldSemi>>10, st)
					}
					if err := core.AuditHeap(rt.Mutator); err != nil {
						t.Fatalf("old=%dKB: heap not auditable after run (err=%v): %v",
							oldSemi>>10, runErr, err)
					}
					if runErr == nil {
						continue
					}
					oom, ok := core.AsOOM(runErr)
					if !ok {
						t.Fatalf("old=%dKB: failure is not a typed OOM: %v", oldSemi>>10, runErr)
					}
					if oom.Request <= 0 || oom.Limit < 0 || oom.Free < 0 {
						t.Fatalf("old=%dKB: incoherent OOM fields: %+v", oldSemi>>10, oom)
					}
					sawOOM = true
				}
				if !sawOOM {
					t.Fatalf("no rung of the ladder exhausted %s under %s", name, cfg)
				}
			})
		}
	}
}
