package bench

import (
	"fmt"

	"repligc/internal/policy"
	"repligc/internal/simtime"
)

// Suite runs the paper's experiments, caching the recorded real-time runs
// that several experiments share (the rt run both produces measurements and
// records the policy script that synchronized replays consume).
type Suite struct {
	Scale Scale
	cache map[string]*recordedRun
}

type recordedRun struct {
	res    *Result
	script *policy.Script
}

// NewSuite builds an experiment suite at the given workload scale.
func NewSuite(s Scale) *Suite {
	return &Suite{Scale: s, cache: make(map[string]*recordedRun)}
}

// WorkloadByName constructs a workload.
func (s *Suite) WorkloadByName(name string) (Workload, error) {
	switch name {
	case "Primes":
		return Primes(s.Scale), nil
	case "Comp":
		return Comp(s.Scale), nil
	case "Sort":
		return Sort(s.Scale), nil
	}
	return nil, fmt.Errorf("bench: unknown workload %q", name)
}

// AllWorkloads is the paper's benchmark list.
var AllWorkloads = []string{"Primes", "Comp", "Sort"}

// rt returns the cached recorded real-time run for (workload, params).
func (s *Suite) rt(name string, p Params) (*recordedRun, error) {
	key := fmt.Sprintf("%s/%v", name, p)
	if r, ok := s.cache[key]; ok {
		return r, nil
	}
	w, err := s.WorkloadByName(name)
	if err != nil {
		return nil, err
	}
	res, script, err := RecordedRT(w, p)
	if err != nil {
		return nil, err
	}
	r := &recordedRun{res: res, script: script}
	s.cache[key] = r
	return r, nil
}

// run executes one non-recording configuration, replaying the rt script for
// the configurations whose minor collections are not incremental.
func (s *Suite) run(name string, cfg ConfigName, p Params) (*Result, error) {
	w, err := s.WorkloadByName(name)
	if err != nil {
		return nil, err
	}
	rc := RunConfig{Config: cfg, Params: p}
	switch cfg {
	case CfgSC, CfgSCMods, CfgMajorInc:
		rt, err := s.rt(name, p)
		if err != nil {
			return nil, err
		}
		rc.Replay = rt.script
	case CfgRT:
		rt, err := s.rt(name, p)
		if err != nil {
			return nil, err
		}
		return rt.res, nil
	}
	return Run(w, rc)
}

// ------------------------------------------------------------- Table 1

// Table1Row is one row of the paper's pause-time table: the 50th and 99th
// percentile and maximum pause for stop-and-copy and real-time collection.
type Table1Row struct {
	Workload string
	P        Params
	SC, RT   [3]simtime.Duration // p50, p99, max
}

// Table1 reproduces "Table 1: Garbage Collection Pause Times (msec)".
func (s *Suite) Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range AllWorkloads {
		for _, p := range PaperParams() {
			sc, err := s.run(name, CfgSC, p)
			if err != nil {
				return nil, err
			}
			rt, err := s.run(name, CfgRT, p)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table1Row{
				Workload: name,
				P:        p,
				SC:       percentiles(&sc.Pauses),
				RT:       percentiles(&rt.Pauses),
			})
		}
	}
	return rows, nil
}

func percentiles(r *simtime.Recorder) [3]simtime.Duration {
	return [3]simtime.Duration{r.Percentile(50), r.Percentile(99), r.Max()}
}

// ------------------------------------------------------- Figures 5 and 6

// PauseHistograms reproduces figures 5 and 6: the distribution of short
// (fig 5) and long (fig 6) pauses for the Comp benchmark at N=0.2 MB,
// O=1 MB under stop-and-copy and real-time collection.
func (s *Suite) PauseHistograms() (scShort, rtShort, scLong, rtLong *simtime.Histogram, err error) {
	p := PaperParams()[0] // O=1MB, N=0.2MB
	sc, err := s.run("Comp", CfgSC, p)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	rt, err := s.run("Comp", CfgRT, p)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	scShort = simtime.NewHistogram(4*simtime.Millisecond, 0, 100*simtime.Millisecond)
	rtShort = simtime.NewHistogram(4*simtime.Millisecond, 0, 100*simtime.Millisecond)
	scLong = simtime.NewHistogram(100*simtime.Millisecond, 100*simtime.Millisecond, simtime.Second)
	rtLong = simtime.NewHistogram(100*simtime.Millisecond, 100*simtime.Millisecond, simtime.Second)
	scShort.AddAll(sc.Pauses.Durations())
	rtShort.AddAll(rt.Pauses.Durations())
	scLong.AddAll(sc.Pauses.Durations())
	rtLong.AddAll(rt.Pauses.Durations())
	return scShort, rtShort, scLong, rtLong, nil
}

// ------------------------------------------------------------- Figure 7

// Fig7Component is one slice of figure 7's execution-time decomposition.
type Fig7Component struct {
	Name    string
	Time    simtime.Duration
	Percent float64
}

// Fig7 reproduces "Figure 7: Components of Execution Time" for one
// workload under the real-time collector.
func (s *Suite) Fig7(name string, p Params) ([]Fig7Component, error) {
	rt, err := s.rt(name, p)
	if err != nil {
		return nil, err
	}
	total := rt.res.Elapsed
	var out []Fig7Component
	for a := 0; a < simtime.NumAccounts; a++ {
		d := rt.res.Breakdown[a]
		out = append(out, Fig7Component{
			Name:    simtime.Account(a).String(),
			Time:    d,
			Percent: 100 * float64(d) / float64(total),
		})
	}
	return out, nil
}

// ---------------------------------------------------- Figures 8, 9, 10

// OverheadCell is one point of figures 8-10: elapsed time for one
// configuration and its overhead relative to the plain stop-and-copy
// baseline.
type OverheadCell struct {
	Config   ConfigName
	Elapsed  simtime.Duration
	Overhead float64 // percent vs CfgSC
}

// OverheadRow groups the five configurations for one parameter setting.
type OverheadRow struct {
	Workload string
	P        Params
	Cells    []OverheadCell
}

// Overheads reproduces the elapsed-time comparison of figures 8 (Primes),
// 9 (Comp) and 10 (Sort): the five collector configurations, policy-
// synchronized, at every parameter setting.
func (s *Suite) Overheads(name string) ([]OverheadRow, error) {
	var rows []OverheadRow
	for _, p := range PaperParams() {
		base, err := s.run(name, CfgSC, p)
		if err != nil {
			return nil, err
		}
		row := OverheadRow{Workload: name, P: p}
		for _, cfg := range AllPaperConfigs {
			var res *Result
			if cfg == CfgSC {
				res = base
			} else {
				res, err = s.run(name, cfg, p)
				if err != nil {
					return nil, err
				}
			}
			row.Cells = append(row.Cells, OverheadCell{
				Config:   cfg,
				Elapsed:  res.Elapsed,
				Overhead: 100 * (float64(res.Elapsed) - float64(base.Elapsed)) / float64(base.Elapsed),
			})
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ------------------------------------------------------------- Table 2

// Table2Row is one row of the paper's log-processing-cost table: CR is the
// cost of reapplying mutations to replicas, CF the cost of atomically
// re-pointing logged locations and roots at flips, each in seconds and as
// a percentage of real-time-collector elapsed time.
type Table2Row struct {
	Workload string
	P        Params
	CR       simtime.Duration
	CRPct    float64
	CF       simtime.Duration
	CFPct    float64
}

// Table2 reproduces "Table 2: Log processing costs".
func (s *Suite) Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, name := range AllWorkloads {
		for _, p := range PaperParams() {
			rt, err := s.rt(name, p)
			if err != nil {
				return nil, err
			}
			cr := rt.res.Breakdown[simtime.AcctLogReapply]
			cf := rt.res.Breakdown[simtime.AcctFlip]
			el := float64(rt.res.Elapsed)
			rows = append(rows, Table2Row{
				Workload: name, P: p,
				CR: cr, CRPct: 100 * float64(cr) / el,
				CF: cf, CFPct: 100 * float64(cf) / el,
			})
		}
	}
	return rows, nil
}

// ------------------------------------------------------------- Table 3

// Table3Row is one row of the paper's latent-garbage table: G is the extra
// data copied by the incremental collector relative to a stop-and-copy
// collector with synchronized flips (data that died between being copied
// and the flip), %G its share of the stop-and-copy copy volume, and CG the
// estimated cost of copying it.
type Table3Row struct {
	Workload string
	P        Params
	GBytes   int64
	GPct     float64
	CG       simtime.Duration
	Flips    int // synchronized flips compared
}

// Table3 reproduces "Table 3: Latent garbage amounts" using the paper's
// method: flips are synchronized via the recorded policy script, and the
// copy volumes are compared at the last common flip.
func (s *Suite) Table3() ([]Table3Row, error) {
	cost := simtime.Default1993()
	perByte := float64(cost.CopyWord+cost.ScanWord) / float64(simtime.BytesPerWord)
	var rows []Table3Row
	for _, name := range AllWorkloads {
		for _, p := range PaperParams() {
			rt, err := s.rt(name, p)
			if err != nil {
				return nil, err
			}
			sc, err := s.run(name, CfgSC, p)
			if err != nil {
				return nil, err
			}
			n := len(rt.res.Stats.FlipCopied)
			if len(sc.Stats.FlipCopied) < n {
				n = len(sc.Stats.FlipCopied)
			}
			var g int64
			var scCopied int64 = 1
			if n > 0 {
				g = rt.res.Stats.FlipCopied[n-1] - sc.Stats.FlipCopied[n-1]
				scCopied = sc.Stats.FlipCopied[n-1]
			}
			rows = append(rows, Table3Row{
				Workload: name, P: p,
				GBytes: g,
				GPct:   100 * float64(g) / float64(scCopied),
				CG:     simtime.Duration(float64(g) * perByte),
				Flips:  n,
			})
		}
	}
	return rows, nil
}

// ------------------------------------------------------------ Ablations

// AblationRow compares the real-time collector with one variant.
type AblationRow struct {
	Workload  string
	Base, Var *Result
}

// AblationLazy compares eager log processing against the paper §2.5
// opportunity of delaying reapplication to the last possible moment.
func (s *Suite) AblationLazy() ([]AblationRow, error) {
	return s.ablation(CfgRTLazy)
}

// AblationBoundedLog compares the paper's unbounded log processing against
// the incremental log processing extension suggested in §3.4.
func (s *Suite) AblationBoundedLog() ([]AblationRow, error) {
	return s.ablation(CfgRTBounded)
}

// AblationDeferMutables compares eager copying against the §2.5 copy-order
// opportunity of replicating mutable objects only at completion, when their
// contents are final and their log entries need no reapplication.
func (s *Suite) AblationDeferMutables() ([]AblationRow, error) {
	return s.ablation(CfgRTDefer)
}

// AblationConcurrent compares pause-based real-time collection against the
// interleaved (concurrent-style) pacing of the paper's §6, in which the
// collector's work rides on allocation as a copying tax and only flips
// stop the mutator for more than a work quantum.
func (s *Suite) AblationConcurrent() ([]AblationRow, error) {
	return s.ablation(CfgRTConc)
}

func (s *Suite) ablation(variant ConfigName) ([]AblationRow, error) {
	p := PaperParams()[0]
	var rows []AblationRow
	for _, name := range AllWorkloads {
		base, err := s.rt(name, p)
		if err != nil {
			return nil, err
		}
		w, err := s.WorkloadByName(name)
		if err != nil {
			return nil, err
		}
		res, err := Run(w, RunConfig{Config: variant, Params: p})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Workload: name, Base: base.res, Var: res})
	}
	return rows, nil
}

// LogPolicyRow measures the mutator cost of the compiler modifications
// (§4.5): plain stop-and-copy against stop-and-copy with full logging.
type LogPolicyRow struct {
	Workload    string
	SC, SCMods  *Result
	ExtraWrites int64
	OverheadPct float64
}

// AblationLogPolicy reproduces the §4.5 analysis in isolation.
func (s *Suite) AblationLogPolicy() ([]LogPolicyRow, error) {
	p := PaperParams()[0]
	var rows []LogPolicyRow
	for _, name := range AllWorkloads {
		sc, err := s.run(name, CfgSC, p)
		if err != nil {
			return nil, err
		}
		mods, err := s.run(name, CfgSCMods, p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, LogPolicyRow{
			Workload:    name,
			SC:          sc,
			SCMods:      mods,
			ExtraWrites: mods.LogWrites - sc.LogWrites,
			OverheadPct: 100 * (float64(mods.Elapsed) - float64(sc.Elapsed)) / float64(sc.Elapsed),
		})
	}
	return rows, nil
}
