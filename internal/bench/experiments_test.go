package bench

import (
	"strings"
	"testing"

	"repligc/internal/simtime"
)

// quickParams shrinks the parameter matrix proportionally for tests: the
// quick workloads allocate a few MB, so N, O and L come down with them.
func quickSuite() *Suite {
	return NewSuite(QuickScale())
}

func TestWorkloadOutputsIdenticalAcrossConfigs(t *testing.T) {
	s := quickSuite()
	p := PaperParams()[0]
	for _, name := range AllWorkloads {
		var outputs []string
		for _, cfg := range AllPaperConfigs {
			res, err := s.run(name, cfg, p)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, cfg, err)
			}
			outputs = append(outputs, res.Output)
		}
		for i := 1; i < len(outputs); i++ {
			if outputs[i] != outputs[0] {
				t.Errorf("%s: output differs between %s and %s:\n%q\n%q",
					name, AllPaperConfigs[0], AllPaperConfigs[i], outputs[0], outputs[i])
			}
		}
	}
}

func TestTable1Shape(t *testing.T) {
	s := quickSuite()
	rows, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AllWorkloads)*len(PaperParams()) {
		t.Fatalf("row count = %d", len(rows))
	}
	// The headline result: the real-time collector eliminates the long
	// stop-and-copy pauses. At quick scale only the cells where the
	// baseline actually performed a long (major) pause are meaningful,
	// and at N=1MB the paper's L=0.5MB budget is itself ~250ms of work,
	// so a modest margin is allowed.
	for _, r := range rows {
		if r.SC[2] > 100*simtime.Millisecond && float64(r.RT[2]) > 1.3*float64(r.SC[2]) {
			t.Errorf("%s %v: rt max %v exceeds 1.3x sc max %v",
				r.Workload, r.P, r.RT[2], r.SC[2])
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "Primes") || !strings.Contains(out, "Max") {
		t.Errorf("format missing content:\n%s", out)
	}
}

func TestHistogramsAndFig7(t *testing.T) {
	s := quickSuite()
	a, b, c, d, err := s.PauseHistograms()
	if err != nil {
		t.Fatal(err)
	}
	out := FormatHistograms(a, b, c, d)
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "Figure 6") {
		t.Errorf("histogram format missing figures:\n%s", out)
	}

	comps, err := s.Fig7("Comp", PaperParams()[0])
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, comp := range comps {
		total += comp.Percent
	}
	if total < 99.9 || total > 100.1 {
		t.Errorf("fig7 components sum to %.2f%%, want 100%%", total)
	}
	if !strings.Contains(FormatFig7("Comp", comps), "mutator") {
		t.Error("fig7 format missing mutator row")
	}
}

func TestOverheadsShape(t *testing.T) {
	s := quickSuite()
	rows, err := s.Overheads("Sort")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(PaperParams()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if len(row.Cells) != len(AllPaperConfigs) {
			t.Fatalf("cells = %d", len(row.Cells))
		}
		var sc, rt, scMods OverheadCell
		for _, cell := range row.Cells {
			switch cell.Config {
			case CfgSC:
				sc = cell
			case CfgRT:
				rt = cell
			case CfgSCMods:
				scMods = cell
			}
		}
		if sc.Overhead != 0 {
			t.Errorf("%v: baseline overhead %.2f != 0", row.P, sc.Overhead)
		}
		// Real-time collection costs something relative to the baseline
		// (logging, reapply, flips, latent garbage).
		if rt.Elapsed <= sc.Elapsed {
			t.Errorf("%v: rt elapsed %v <= sc elapsed %v", row.P, rt.Elapsed, sc.Elapsed)
		}
		// The mutator logging mods alone cost less than full rt.
		if scMods.Elapsed > rt.Elapsed {
			t.Errorf("%v: sc-mods %v > rt %v", row.P, scMods.Elapsed, rt.Elapsed)
		}
	}
	if out := FormatOverheads(10, rows); !strings.Contains(out, "Figure 10") {
		t.Errorf("bad overhead format:\n%s", out)
	}
}

func TestTable2Shape(t *testing.T) {
	s := quickSuite()
	rows, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CRPct < 0 || r.CRPct > 50 || r.CFPct < 0 || r.CFPct > 50 {
			t.Errorf("%s %v: implausible CR/CF percentages: %.2f %.2f",
				r.Workload, r.P, r.CRPct, r.CFPct)
		}
	}
	// Sort mutates most; its reapply cost should exceed Primes'.
	byName := map[string]Table2Row{}
	for _, r := range rows {
		if r.P == PaperParams()[0] {
			byName[r.Workload] = r
		}
	}
	if byName["Sort"].CR < byName["Primes"].CR {
		t.Errorf("Sort CR %v < Primes CR %v", byName["Sort"].CR, byName["Primes"].CR)
	}
	if !strings.Contains(FormatTable2(rows), "%CR") {
		t.Error("table2 format missing header")
	}
}

func TestTable3Shape(t *testing.T) {
	s := quickSuite()
	rows, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Latent garbage is normally positive; it can go slightly negative
		// because the incremental collector allocates black during majors
		// (promotions born during a major are never major-copied, while
		// the synchronized stop-and-copy run does copy them).
		if r.GPct < -10 {
			t.Errorf("%s %v: latent garbage %.1f%% too negative", r.Workload, r.P, r.GPct)
		}
		if r.Flips == 0 {
			t.Errorf("%s %v: no synchronized flips", r.Workload, r.P)
		}
	}
	if !strings.Contains(FormatTable3(rows), "Latent garbage") {
		t.Error("table3 format missing title")
	}
}

func TestAblations(t *testing.T) {
	s := quickSuite()
	lazy, err := s.AblationLazy()
	if err != nil {
		t.Fatal(err)
	}
	if len(lazy) != len(AllWorkloads) {
		t.Fatalf("lazy rows = %d", len(lazy))
	}
	bounded, err := s.AblationBoundedLog()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range bounded {
		if r.Var.Stats.MinorCollections == 0 {
			t.Errorf("%s: bounded variant did no collections", r.Workload)
		}
	}
	conc, err := s.AblationConcurrent()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range conc {
		if r.Var.Output != r.Base.Output {
			t.Errorf("%s: interleaved output differs", r.Workload)
		}
		// Interleaved pacing exists to shrink pauses: its median must be
		// well below the pause-based collector's.
		if r.Var.Pauses.Percentile(50) >= r.Base.Pauses.Percentile(50) {
			t.Errorf("%s: interleaved p50 %v not below pause-based %v",
				r.Workload, r.Var.Pauses.Percentile(50), r.Base.Pauses.Percentile(50))
		}
	}
	logpol, err := s.AblationLogPolicy()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range logpol {
		if r.ExtraWrites < 0 {
			t.Errorf("%s: negative extra writes", r.Workload)
		}
		if r.Workload != "Primes" && r.ExtraWrites == 0 {
			t.Errorf("%s: expected extra log writes under full logging", r.Workload)
		}
	}
	_ = FormatAblation("lazy", lazy)
	_ = FormatLogPolicy(logpol)
}

func TestGenerateModuleCompiles(t *testing.T) {
	// Every generated module must be valid MiniML.
	s := quickSuite()
	for i := 0; i < 16; i++ {
		src := GenerateModule(i, 40)
		w := &vmWorkload{name: "gen", src: src}
		if _, err := Run(w, RunConfig{Config: CfgSC, Params: PaperParams()[0]}); err != nil {
			t.Fatalf("module %d: %v\n%s", i, err, src)
		}
	}
	_ = s
}

func TestGenerateModuleDeterministic(t *testing.T) {
	a := GenerateModule(3, 25)
	b := GenerateModule(3, 25)
	if a != b {
		t.Fatal("generator not deterministic")
	}
	if GenerateModule(4, 25) == a {
		t.Fatal("seeds do not differentiate modules")
	}
}

// TestDeferMutablesReducesReapplies checks the §2.5 copy-order benefit on
// the paper's mutation-heavy benchmark at full scale: deferring mutable
// copies to completion must cut log reapplication substantially.
func TestDeferMutablesReducesReapplies(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale Sort runs")
	}
	s := NewSuite(DefaultScale())
	p := PaperParams()[0]
	rt, err := s.run("Sort", CfgRT, p)
	if err != nil {
		t.Fatal(err)
	}
	deferred, err := s.run("Sort", CfgRTDefer, p)
	if err != nil {
		t.Fatal(err)
	}
	if deferred.Output != rt.Output {
		t.Fatal("outputs differ")
	}
	if deferred.Stats.LogReapplied > rt.Stats.LogReapplied*3/4 {
		t.Errorf("deferred reapplies %d not substantially below eager %d",
			deferred.Stats.LogReapplied, rt.Stats.LogReapplied)
	}
}
