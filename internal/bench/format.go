package bench

import (
	"fmt"
	"strings"

	"repligc/internal/simtime"
)

func ms(d simtime.Duration) string { return fmt.Sprintf("%.0f", d.Milliseconds()) }

// FormatTable1 renders table 1 in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Garbage Collection Pause Times (simulated msec)\n")
	fmt.Fprintf(&b, "%-7s %-5s %-5s | %6s %6s %6s | %6s %6s %6s\n",
		"", "O", "N", "S+C", "", "", "RT", "", "")
	fmt.Fprintf(&b, "%-7s %-5s %-5s | %6s %6s %6s | %6s %6s %6s\n",
		"bench", "(MB)", "(MB)", "50%", "99%", "Max", "50%", "99%", "Max")
	last := ""
	for _, r := range rows {
		name := r.Workload
		if name == last {
			name = ""
		}
		last = r.Workload
		fmt.Fprintf(&b, "%-7s %-5.1f %-5.1f | %6s %6s %6s | %6s %6s %6s\n",
			name,
			float64(r.P.OBytes)/(1<<20), float64(r.P.NBytes)/(1<<20),
			ms(r.SC[0]), ms(r.SC[1]), ms(r.SC[2]),
			ms(r.RT[0]), ms(r.RT[1]), ms(r.RT[2]))
	}
	return b.String()
}

// FormatHistograms renders figures 5 and 6.
func FormatHistograms(scShort, rtShort, scLong, rtLong *simtime.Histogram) string {
	var b strings.Builder
	b.WriteString("Figure 5: Short GC Pauses during Comp Benchmark (N=0.2MB, O=1MB)\n\n")
	b.WriteString(scShort.Render("  Stop and Copy (S+C)"))
	b.WriteString("\n")
	b.WriteString(rtShort.Render("  Real-Time (RT)"))
	b.WriteString("\nFigure 6: Long GC Pauses during Comp Benchmark (N=0.2MB, O=1MB)\n\n")
	b.WriteString(scLong.Render("  Stop and Copy (S+C)"))
	b.WriteString("\n")
	b.WriteString(rtLong.Render("  Real-Time (RT)"))
	return b.String()
}

// FormatFig7 renders figure 7's breakdown.
func FormatFig7(name string, comps []Fig7Component) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: Components of Execution Time (%s, real-time collector)\n", name)
	for _, c := range comps {
		if c.Time == 0 {
			continue
		}
		bar := strings.Repeat("#", int(c.Percent/2))
		fmt.Fprintf(&b, "  %-13s %8s %6.2f%% %s\n", c.Name, c.Time, c.Percent, bar)
	}
	return b.String()
}

// FormatOverheads renders one of figures 8-10.
func FormatOverheads(fig int, rows []OverheadRow) string {
	var b strings.Builder
	if len(rows) == 0 {
		return ""
	}
	fmt.Fprintf(&b, "Figure %d: %s Benchmark: Elapsed Times (policy-synchronized)\n", fig, rows[0].Workload)
	fmt.Fprintf(&b, "%-16s", "config \\ params")
	for _, r := range rows {
		fmt.Fprintf(&b, " | %18s", r.P)
	}
	b.WriteString("\n")
	for i := range rows[0].Cells {
		fmt.Fprintf(&b, "%-16s", rows[0].Cells[i].Config)
		for _, r := range rows {
			c := r.Cells[i]
			fmt.Fprintf(&b, " | %9s %+7.1f%%", c.Elapsed, c.Overhead)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatTable2 renders table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: Log processing costs\n")
	fmt.Fprintf(&b, "%-7s %-5s %-5s | %9s %6s | %9s %6s\n",
		"bench", "O(MB)", "N(MB)", "CR", "%CR", "CF", "%CF")
	last := ""
	for _, r := range rows {
		name := r.Workload
		if name == last {
			name = ""
		}
		last = r.Workload
		fmt.Fprintf(&b, "%-7s %-5.1f %-5.1f | %9s %5.2f%% | %9s %5.2f%%\n",
			name, float64(r.P.OBytes)/(1<<20), float64(r.P.NBytes)/(1<<20),
			r.CR, r.CRPct, r.CF, r.CFPct)
	}
	return b.String()
}

// FormatTable3 renders table 3.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: Latent garbage amounts (flip-synchronized)\n")
	fmt.Fprintf(&b, "%-7s %-5s %-5s | %9s %6s %9s %6s\n",
		"bench", "O(MB)", "N(MB)", "G (KB)", "%G", "CG", "flips")
	last := ""
	for _, r := range rows {
		name := r.Workload
		if name == last {
			name = ""
		}
		last = r.Workload
		fmt.Fprintf(&b, "%-7s %-5.1f %-5.1f | %9.0f %5.1f%% %9s %6d\n",
			name, float64(r.P.OBytes)/(1<<20), float64(r.P.NBytes)/(1<<20),
			float64(r.GBytes)/1024, r.GPct, r.CG, r.Flips)
	}
	return b.String()
}

// FormatAblation renders an rt-vs-variant comparison.
func FormatAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-7s | %10s %10s | %10s %10s | %9s %9s | %8s %8s\n",
		"bench", "rt elapsed", "variant", "rt max", "var max", "rt reappl", "var reappl", "rt pause", "var pause")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7s | %10s %10s | %10s %10s | %9d %9d | %8d %8d\n",
			r.Workload,
			r.Base.Elapsed, r.Var.Elapsed,
			r.Base.Pauses.Max(), r.Var.Pauses.Max(),
			r.Base.Stats.LogReapplied, r.Var.Stats.LogReapplied,
			r.Base.Stats.PauseCount, r.Var.Stats.PauseCount)
	}
	return b.String()
}

// FormatLogPolicy renders the §4.5 compiler-modification cost analysis.
func FormatLogPolicy(rows []LogPolicyRow) string {
	var b strings.Builder
	b.WriteString("Compiler-modification (logging) cost: stop-and-copy vs stop-and-copy w/ mods\n")
	fmt.Fprintf(&b, "%-7s | %10s %10s | %12s | %9s\n",
		"bench", "sc", "sc-mods", "extra writes", "overhead")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7s | %10s %10s | %12d | %8.2f%%\n",
			r.Workload, r.SC.Elapsed, r.SCMods.Elapsed, r.ExtraWrites, r.OverheadPct)
	}
	return b.String()
}
