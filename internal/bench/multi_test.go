package bench

import (
	"reflect"
	"testing"

	"repligc/internal/core"
	"repligc/internal/gctest"
	"repligc/internal/heap"
	"repligc/internal/simtime"
)

func multiParams() Params {
	return Params{OBytes: 1 << 20, NBytes: 200 << 10, LBytes: 100 << 10}
}

// TestSoloGroupBitIdentical is the refactor-safety differential: a
// one-member group must be bit-identical to the pre-split solo mutator —
// same reachable-graph fingerprint, same final simulated clock, same
// per-account time breakdown — across collector configurations and seeds.
// The group path shares the log instance and skips chunking at n=1, so any
// divergence here means the context split changed single-mutator behaviour.
func TestSoloGroupBitIdentical(t *testing.T) {
	type result struct {
		fp        uint64
		now       simtime.Duration
		breakdown [simtime.NumAccounts]simtime.Duration
	}
	const ops = 12000
	for _, cfg := range []ConfigName{CfgRT, CfgRTLazy, CfgSC} {
		for _, seed := range []int64{1, 7, 42, 99, 1234, 987654} {
			rc := RunConfig{Config: cfg, Params: multiParams()}

			solo := func() result {
				rt, err := NewRuntime(rc)
				if err != nil {
					t.Fatal(err)
				}
				d := gctest.NewDriver(rt.Mutator, seed)
				if err := d.Step(ops); err != nil {
					t.Fatal(err)
				}
				if err := rt.GC.FinishCycles(rt.Mutator); err != nil {
					t.Fatal(err)
				}
				return result{d.Fingerprint(), rt.Mutator.Clock.Now(), rt.Mutator.Clock.Breakdown()}
			}()

			grouped := func() result {
				gr, err := NewGroupRuntime(rc, 1)
				if err != nil {
					t.Fatal(err)
				}
				m := gr.Group.Members[0]
				d := gctest.NewDriver(m, seed)
				var fp uint64
				if err := gr.Group.Run(0, func(m *core.Mutator) error {
					if err := d.Step(ops); err != nil {
						return err
					}
					if err := gr.GC.FinishCycles(m); err != nil {
						return err
					}
					fp = d.Fingerprint()
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				if gr.Group.Elapsed() != m.Clock.Now() {
					t.Fatalf("%s seed %d: one-member wall %v != clock %v",
						cfg, seed, gr.Group.Elapsed(), m.Clock.Now())
				}
				return result{fp, m.Clock.Now(), m.Clock.Breakdown()}
			}()

			if solo != grouped {
				t.Fatalf("%s seed %d: solo and one-member group diverged:\nsolo    %+v\ngrouped %+v",
					cfg, seed, solo, grouped)
			}
		}
	}
}

// TestMultiMutatorDeterminismMatrix pins that N-mutator runs are exact
// functions of the seed: same seed → identical combined fingerprint and
// identical final clock, for N in {2, 4, 8}, and independently of the order
// member logs are drained in at merge time (the canonical merge is what
// buys the latter).
func TestMultiMutatorDeterminismMatrix(t *testing.T) {
	run := func(n int, seed int64, mergeOrder []int) (uint64, simtime.Duration) {
		gr, err := NewGroupRuntime(RunConfig{Config: CfgRT, Params: multiParams()}, n)
		if err != nil {
			t.Fatal(err)
		}
		gr.Group.SetMergeOrder(mergeOrder)
		md, err := gctest.NewMultiDriver(gr.Group, seed)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 40; round++ {
			if err := md.Step(60); err != nil {
				t.Fatal(err)
			}
		}
		if err := gr.Group.Run(0, func(m *core.Mutator) error {
			return gr.GC.FinishCycles(m)
		}); err != nil {
			t.Fatal(err)
		}
		if err := md.Verify(); err != nil {
			t.Fatal(err)
		}
		return md.Fingerprint(), gr.Group.Clock.Now()
	}

	reversed := func(n int) []int {
		o := make([]int, n)
		for i := range o {
			o[i] = n - 1 - i
		}
		return o
	}

	for _, n := range []int{2, 4, 8} {
		for _, seed := range []int64{3, 11} {
			fp1, clk1 := run(n, seed, nil)
			fp2, clk2 := run(n, seed, nil)
			if fp1 != fp2 || clk1 != clk2 {
				t.Fatalf("N=%d seed %d: rerun diverged (fp %#x/%#x, clock %v/%v)",
					n, seed, fp1, fp2, clk1, clk2)
			}
			fp3, clk3 := run(n, seed, reversed(n))
			if fp1 != fp3 || clk1 != clk3 {
				t.Fatalf("N=%d seed %d: merge order changed the result (fp %#x/%#x, clock %v/%v)",
					n, seed, fp1, fp3, clk1, clk3)
			}
		}
		// Different seeds must not collide (sanity that the fingerprint has
		// teeth at this scale).
		fpA, _ := run(n, 3, nil)
		fpB, _ := run(n, 11, nil)
		if fpA == fpB {
			t.Fatalf("N=%d: different seeds produced identical fingerprints", n)
		}
	}
}

// TestMultiMutatorOverlap checks the time model end-to-end on a real
// workload: with N mutators interleaving on one clock, collector pause work
// beyond the sync portion overlaps other mutators, so the wall-clock
// makespan is shorter than the serial clock and the group records non-empty
// all-stopped intervals for MMU.
func TestMultiMutatorOverlap(t *testing.T) {
	gr, err := NewGroupRuntime(RunConfig{Config: CfgRT, Params: multiParams()}, 4)
	if err != nil {
		t.Fatal(err)
	}
	md, err := gctest.NewMultiDriver(gr.Group, 5)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 60; round++ {
		if err := md.Step(80); err != nil {
			t.Fatal(err)
		}
	}
	if err := md.Verify(); err != nil {
		t.Fatal(err)
	}
	st := gr.GC.Stats()
	if st.MinorCollections == 0 {
		t.Fatal("workload drove no minor collections; overlap leg is vacuous")
	}
	if r := gr.Group.OverlapRatio(); r <= 1 {
		t.Fatalf("overlap ratio = %v, want > 1 (collector work overlapped nothing)", r)
	}
	ps := gr.Group.GroupPauses().Pauses
	if len(ps) == 0 {
		t.Fatal("no all-stopped intervals recorded")
	}
	for i, p := range ps {
		if p.Length <= 0 || p.Sync != p.Length {
			t.Fatalf("group pause %d malformed: %+v", i, p)
		}
	}
	mmu := simtime.MMUFromPauses(ps, gr.Group.Elapsed(), 20*simtime.Millisecond)
	if mmu < 0 || mmu >= 1 {
		t.Fatalf("MMU@20ms = %v, want in (0, 1) for a run with pauses", mmu)
	}
	for i := range gr.Group.Members {
		u := gr.Group.Utilization(i)
		if u <= 0 || u > 1 {
			t.Fatalf("member %d utilization %v out of range", i, u)
		}
	}
}

// TestRunMultiSection produces the schema-6 multi-mutator scaling section at
// quick scale and holds it to the same shape checks `rtgc-bench validate`
// applies to the committed artifact — including the N = 1 identity anchor
// and overlap ratios above 1 for every N ≥ 2 leg.
func TestRunMultiSection(t *testing.T) {
	legs, err := RunMulti(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if err := checkMulti(legs); err != nil {
		t.Fatal(err)
	}
	// Regenerating the same scale must reproduce the committed fingerprints
	// and times exactly: the section is a determinism artifact, not a
	// measurement with noise.
	again, err := RunMulti(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	for i := range legs {
		if !reflect.DeepEqual(legs[i], again[i]) {
			t.Fatalf("N=%d: rerun changed the leg:\n%+v\n%+v", legs[i].Mutators, legs[i], again[i])
		}
	}
}

// TestParallelGroupTorture drives a goroutine-backed group — real
// parallelism with a stop-the-world rendezvous around collections — and
// verifies every member's shadow graph afterwards. Interleavings are
// runtime-scheduled, so this is a correctness (and, under `make race`, a
// data-race) exercise, not a determinism one.
func TestParallelGroupTorture(t *testing.T) {
	h := heap.New(heap.Config{NurseryBytes: 200 << 10, NurseryCapBytes: 2 << 20, OldSemiBytes: 8 << 20})
	pg := core.NewParallelGroup(h, simtime.Default1993(), core.LogAllMutations, 4)
	gc := core.NewReplicating(pg.G.H, core.Config{
		NurseryBytes:        200 << 10,
		MajorThresholdBytes: 1 << 20,
		CopyLimitBytes:      100 << 10,
		IncrementalMinor:    true,
		IncrementalMajor:    true,
	})
	pg.AttachGC(gc)

	drivers := make([]*gctest.Driver, len(pg.G.Members))
	fns := make([]func(*core.Mutator) error, len(pg.G.Members))
	for i, m := range pg.G.Members {
		d := gctest.NewDriver(m, int64(100+i))
		drivers[i] = d
		fns[i] = func(*core.Mutator) error {
			for k := 0; k < 400; k++ {
				pg.Safepoint()
				if err := d.Step(10); err != nil {
					return err
				}
			}
			return nil
		}
	}
	for i, err := range pg.Run(fns) {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	// All workers exited; the world is quiescent.
	if err := gc.FinishCycles(pg.G.Members[0]); err != nil {
		t.Fatal(err)
	}
	for i, d := range drivers {
		if err := d.Verify(); err != nil {
			t.Fatalf("member %d shadow mismatch: %v", i, err)
		}
	}
	if err := core.AuditHeap(pg.G.Members[0]); err != nil {
		t.Fatal(err)
	}
}
