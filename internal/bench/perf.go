package bench

// The perf trajectory (BENCH_PR3.json): a machine-readable before/after
// comparison of the naive append-every-store write barrier against the
// coalescing barrier (dirty stamps + nursery fast path), per workload, under
// the full real-time configuration. "Before" is the same collector with
// coalescing disabled (RunConfig.NaiveBarrier), so both legs run identical
// workload code over the identical cost model and differ only in how the
// mutation log represents the exception set.
//
// Workload metrics use simulated time (deterministic, cost-model units); the
// barrier ns/op section is wall-clock and is therefore filled in by
// cmd/rtgc-bench, which is outside the simulated-clock-only lint scope.

import (
	"encoding/json"
	"fmt"
	"math"
)

// PerfSchema identifies the report layout; bump on incompatible change.
const PerfSchema = "repligc-bench/1"

// PerfReport is the document serialised to BENCH_PR3.json.
type PerfReport struct {
	Schema    string `json:"schema"`
	Collector string `json:"collector"` // configuration of both legs ("rt")
	Params    string `json:"params"`    // O/N/L of both legs
	Scale     string `json:"scale"`     // "default" or "quick"

	// Barrier holds wall-clock nanoseconds per store for each barrier
	// outcome, measured by testing.Benchmark in cmd/rtgc-bench. Zero when
	// the report was produced without the wall-clock section.
	Barrier BarrierNsOp `json:"barrier_ns_per_op"`

	Workloads []PerfWorkload `json:"workloads"`
}

// BarrierNsOp is the wall-clock barrier micro-benchmark section.
type BarrierNsOp struct {
	Naive        float64 `json:"naive"`         // append-every-store, old-space target
	DirtyHit     float64 `json:"dirty_hit"`     // same store, suppressed by the stamp
	NurserySkip  float64 `json:"nursery_skip"`  // store to an unreplicated nursery object
	SpeedupX     float64 `json:"speedup_x"`     // naive / dirty_hit
	ZeroAllocs   bool    `json:"zero_allocs"`   // fast paths allocate nothing
}

// PerfWorkload compares the two barrier legs on one workload.
type PerfWorkload struct {
	Name      string  `json:"name"`
	Baseline  PerfLeg `json:"baseline"`  // NaiveBarrier: true
	Coalesced PerfLeg `json:"coalesced"` // the PR's barrier

	// ReapplyReductionPct is the headline number: the percentage of the
	// baseline's re-applied log entries that coalescing eliminated.
	ReapplyReductionPct float64 `json:"reapply_reduction_pct"`
	// AppendReductionPct is the same for barrier-side log appends.
	AppendReductionPct float64 `json:"append_reduction_pct"`
}

// PerfLeg is one run's measurements.
type PerfLeg struct {
	ElapsedMs       float64 `json:"elapsed_ms"`        // simulated
	ReplicationMBps float64 `json:"replication_mb_s"`  // bytes replicated / simulated second
	BytesReplicated int64   `json:"bytes_replicated"`  // minor + major copying volume
	LogAppended     int64   `json:"log_appended"`      // barrier-side appends
	LogScanned      int64   `json:"log_scanned"`       // collector-side entries examined
	LogReapplied    int64   `json:"log_reapplied"`     // mutations re-applied to replicas
	NurserySkips    int64   `json:"nursery_skips"`     // fast-path suppressions (coalesced leg only)
	DirtySkips      int64   `json:"dirty_skips"`       // stamp-hit suppressions (coalesced leg only)
	Pauses          int     `json:"pauses"`
	PauseMinMs      float64 `json:"pause_min_ms"`
	PauseMedianMs   float64 `json:"pause_median_ms"`
	PauseP95Ms      float64 `json:"pause_p95_ms"`
	PauseMaxMs      float64 `json:"pause_max_ms"`
}

// perfLeg distils a Result.
func perfLeg(r *Result) PerfLeg {
	copied := r.Stats.TotalBytesCopied()
	leg := PerfLeg{
		ElapsedMs:       r.Elapsed.Milliseconds(),
		BytesReplicated: copied,
		LogAppended:     r.LogWrites,
		LogScanned:      r.Stats.LogScanned,
		LogReapplied:    r.Stats.LogReapplied,
		NurserySkips:    r.BarrierFastSkips,
		DirtySkips:      r.BarrierDirtySkips,
		Pauses:          len(r.Pauses.Pauses),
		PauseMinMs:      r.Pauses.Percentile(0).Milliseconds(),
		PauseMedianMs:   r.Pauses.Percentile(50).Milliseconds(),
		PauseP95Ms:      r.Pauses.Percentile(95).Milliseconds(),
		PauseMaxMs:      r.Pauses.Max().Milliseconds(),
	}
	if secs := r.Elapsed.Seconds(); secs > 0 {
		leg.ReplicationMBps = float64(copied) / (1 << 20) / secs
	}
	return leg
}

// reductionPct returns how much of base the coalesced leg eliminated, as a
// percentage; 0 when the baseline did none of the work.
func reductionPct(base, coal int64) float64 {
	if base <= 0 {
		return 0
	}
	return 100 * (1 - float64(coal)/float64(base))
}

// perfParams is the parameter cell both legs run under: the paper's 50 ms
// pause target (O = 1 MB, N = 0.2 MB, L = 100 KB), the cell every workload
// collects frequently in.
func perfParams() Params { return PaperParams()[0] }

// RunPerf runs the three workloads under both barrier legs and assembles the
// report (without the wall-clock barrier section).
func RunPerf(s Scale, scaleName string) (*PerfReport, error) {
	rep := &PerfReport{
		Schema:    PerfSchema,
		Collector: string(CfgRT),
		Params:    perfParams().String(),
		Scale:     scaleName,
	}
	for _, w := range []Workload{Primes(s), Sort(s), Comp(s)} {
		base, err := Run(w, RunConfig{Config: CfgRT, Params: perfParams(), NaiveBarrier: true})
		if err != nil {
			return nil, fmt.Errorf("perf %s baseline: %w", w.Name(), err)
		}
		coal, err := Run(w, RunConfig{Config: CfgRT, Params: perfParams()})
		if err != nil {
			return nil, fmt.Errorf("perf %s coalesced: %w", w.Name(), err)
		}
		if base.Output != coal.Output {
			return nil, fmt.Errorf("perf %s: barrier legs computed different results", w.Name())
		}
		rep.Workloads = append(rep.Workloads, PerfWorkload{
			Name:                w.Name(),
			Baseline:            perfLeg(base),
			Coalesced:           perfLeg(coal),
			ReapplyReductionPct: reductionPct(base.Stats.LogReapplied, coal.Stats.LogReapplied),
			AppendReductionPct:  reductionPct(base.LogWrites, coal.LogWrites),
		})
	}
	return rep, nil
}

// ValidatePerf checks that data parses as a PerfReport with the current
// schema, all three workloads, and internally-consistent numbers. It is the
// CI smoke check: shape and sanity, never thresholds on the measurements
// themselves.
func ValidatePerf(data []byte) error {
	var rep PerfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("perf report: %w", err)
	}
	if rep.Schema != PerfSchema {
		return fmt.Errorf("perf report: schema %q, want %q", rep.Schema, PerfSchema)
	}
	names := []string{"Primes", "Sort", "Comp"}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = false
	}
	for _, w := range rep.Workloads {
		seen, ok := want[w.Name]
		if !ok {
			return fmt.Errorf("perf report: unknown workload %q", w.Name)
		}
		if seen {
			return fmt.Errorf("perf report: duplicate workload %q", w.Name)
		}
		want[w.Name] = true
		for _, leg := range []struct {
			tag string
			l   PerfLeg
		}{{"baseline", w.Baseline}, {"coalesced", w.Coalesced}} {
			if err := leg.l.check(); err != nil {
				return fmt.Errorf("perf report: %s %s: %w", w.Name, leg.tag, err)
			}
		}
		if w.Baseline.NurserySkips != 0 || w.Baseline.DirtySkips != 0 {
			return fmt.Errorf("perf report: %s baseline leg reports fast-path skips", w.Name)
		}
	}
	for _, name := range names {
		if !want[name] {
			return fmt.Errorf("perf report: workload %q missing", name)
		}
	}
	return nil
}

// check rejects legs with impossible measurements.
func (l PerfLeg) check() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"elapsed_ms", l.ElapsedMs}, {"replication_mb_s", l.ReplicationMBps},
		{"pause_min_ms", l.PauseMinMs}, {"pause_median_ms", l.PauseMedianMs},
		{"pause_p95_ms", l.PauseP95Ms}, {"pause_max_ms", l.PauseMaxMs},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
			return fmt.Errorf("%s = %v is not a finite non-negative number", f.name, f.v)
		}
	}
	if l.ElapsedMs == 0 || l.Pauses == 0 {
		return fmt.Errorf("run did no work (elapsed %.0f ms, %d pauses)", l.ElapsedMs, l.Pauses)
	}
	if l.PauseMinMs > l.PauseMedianMs || l.PauseMedianMs > l.PauseP95Ms || l.PauseP95Ms > l.PauseMaxMs {
		return fmt.Errorf("pause percentiles are not monotone")
	}
	if l.LogReapplied > l.LogScanned {
		return fmt.Errorf("re-applied %d entries but scanned only %d", l.LogReapplied, l.LogScanned)
	}
	return nil
}
