package bench

// The perf trajectory (BENCH_PR8.json): a machine-readable before/after
// comparison of the naive append-every-store write barrier against the
// coalescing barrier (dirty stamps + nursery fast path), per workload, under
// the full real-time configuration. "Before" is the same collector with
// coalescing disabled (RunConfig.NaiveBarrier), so both legs run identical
// workload code over the identical cost model and differ only in how the
// mutation log represents the exception set.
//
// Workload metrics use simulated time (deterministic, cost-model units); the
// barrier ns/op section is wall-clock and is therefore filled in by
// cmd/rtgc-bench, which is outside the simulated-clock-only lint scope.

import (
	"encoding/json"
	"fmt"
	"math"
	"reflect"

	"repligc/internal/checkpoint"
	"repligc/internal/core"
	"repligc/internal/gctest"
	"repligc/internal/simtime"
	"repligc/internal/trace"
	"repligc/internal/workload"
)

// PerfSchema identifies the report layout; bump on incompatible change.
// repligc-bench/2 added per-leg MMU curves and per-phase pause attribution
// (from the internal/trace subsystem). repligc-bench/3 added the
// checkpointed leg: the coalesced collector with the incremental checkpoint
// writer attached, measuring crash-consistency overhead. repligc-bench/4
// added the hot-path wall-clock section (replay memo, block byte copies,
// batched scan, allocation-free roots) with its simulated-identity proof.
// repligc-bench/5 added the serving section (internal/workload): per-cohort
// latency tails, SLO breakdowns and pause-intrusion attribution for the
// naive and coalesced barriers serving identical open-loop traffic.
// repligc-bench/6 added the multi-mutator section: N mutator contexts
// sharing one heap and one simulated clock, with the wall-clock makespan
// projected so that only a pause's synchronous portion stops every mutator —
// the overlap ratio (serial work over wall makespan) is the headline number.
// The constant aliases workload.ReportSchema so the two producers of the
// schema cannot drift apart.
const PerfSchema = workload.ReportSchema

// PerfReport is the document serialised to BENCH_PR8.json.
type PerfReport struct {
	Schema    string `json:"schema"`
	Collector string `json:"collector"` // configuration of both legs ("rt")
	Params    string `json:"params"`    // O/N/L of both legs
	Scale     string `json:"scale"`     // "default" or "quick"

	// Barrier holds wall-clock nanoseconds per store for each barrier
	// outcome, measured by testing.Benchmark in cmd/rtgc-bench. Zero when
	// the report was produced without the wall-clock section.
	Barrier BarrierNsOp `json:"barrier_ns_per_op"`

	// HotPaths holds the wall-clock before/after of the collector's
	// raw-speed optimisations (added in repligc-bench/4), also measured in
	// cmd/rtgc-bench. "Before" is RunConfig.NaiveReplay — the same
	// collector with the memo, block copies and batched scan disabled — so
	// the pair differs only in implementation, never in simulated outcome.
	HotPaths HotPathsNsOp `json:"hot_paths_ns_per_op"`

	Workloads []PerfWorkload `json:"workloads"`

	// Serving is the schema-5 section: the standard serving mix
	// (DefaultServeSpec) under the naive-barrier and coalesced legs, with
	// per-cohort latency percentiles, SLO breakdowns, queue stats,
	// pause-intrusion attribution and request-granularity MMU.
	Serving *workload.Section `json:"serving"`

	// Multi is the schema-6 section: the same seeded group workload run
	// with N ∈ {1, 2, 4, 8} mutator contexts sharing one heap under the
	// full real-time configuration. The N = 1 leg doubles as the identity
	// anchor (overlap ratio exactly 1, wall equals the serial clock); the
	// N ≥ 2 legs demonstrate collection genuinely overlapping mutators.
	Multi []MultiLeg `json:"multi_mutator"`
}

// MultiLeg is one N-mutator scaling cell of the multi-mutator section. All
// times are simulated: WorkMs is the shared serial clock (total work done by
// every actor), WallMs the projected makespan in which only each pause's
// synchronous portion stops all mutators, and OverlapRatio their quotient —
// greater than 1 means collector work genuinely ran while mutators ran.
type MultiLeg struct {
	Mutators       int       `json:"mutators"`
	WorkMs         float64   `json:"work_ms"`
	WallMs         float64   `json:"wall_ms"`
	OverlapRatio   float64   `json:"overlap_ratio"`
	Utilization    []float64 `json:"utilization"` // per-mutator, on the wall timeline
	Minor          int       `json:"minor_collections"`
	Major          int       `json:"major_collections"`
	GroupPauses    int       `json:"group_pauses"` // all-mutators-stopped intervals
	SyncPauseMaxMs float64   `json:"sync_pause_max_ms"`
	MMU20Ms        float64   `json:"mmu_20ms"` // over the all-stopped intervals, wall timeline
	MergedEntries  int64     `json:"merged_entries"`
	MergeDropped   int64     `json:"merge_dropped"`
	// Fingerprint anchors determinism: the combined reachable-graph hash of
	// every member plus the shared contended array, stable across reruns and
	// merge orders for a given (N, seed).
	Fingerprint string `json:"fingerprint"`
}

// HotPathsNsOp is the wall-clock hot-path micro-benchmark section. Each
// pair reports nanoseconds per operation through the naive path and the
// optimised one; SimIdentical certifies that a full workload run produced
// bit-identical simulated measurements both ways (the optimisations must
// change wall time only).
type HotPathsNsOp struct {
	ReplayNaive   float64 `json:"replay_naive"`   // per logged store replayed, entry-at-a-time checks
	ReplayBatched float64 `json:"replay_batched"` // same, through the per-object forwarding memo
	ReplaySpeedupX float64 `json:"replay_speedup_x"`

	ByteCopyNaive float64 `json:"byte_copy_naive"` // per byte re-applied byte-at-a-time
	ByteCopyBlock float64 `json:"byte_copy_block"` // per byte through CopyPayloadBytes
	ByteCopySpeedupX float64 `json:"byte_copy_speedup_x"`

	ScanNaive   float64 `json:"scan_naive"`   // per slot scanned with per-slot budget checks
	ScanBatched float64 `json:"scan_batched"` // per slot with batched budget accounting
	ScanSpeedupX float64 `json:"scan_speedup_x"`

	RootsVisit float64 `json:"roots_visit"` // per root slot via the closure-based Visit
	RootsSlots float64 `json:"roots_slots"` // per root slot via the reusable Slots buffer
	RootsSpeedupX float64 `json:"roots_speedup_x"`

	// ZeroAllocs is true when root enumeration and the replay batch path
	// allocate nothing per operation (asserted, not just measured).
	ZeroAllocs bool `json:"zero_allocs"`
	// SimIdentical is true when the naive and optimised runs of every
	// workload agreed on all simulated measurements, bit for bit.
	SimIdentical bool `json:"sim_identical"`
}

// BarrierNsOp is the wall-clock barrier micro-benchmark section.
type BarrierNsOp struct {
	Naive        float64 `json:"naive"`         // append-every-store, old-space target
	DirtyHit     float64 `json:"dirty_hit"`     // same store, suppressed by the stamp
	NurserySkip  float64 `json:"nursery_skip"`  // store to an unreplicated nursery object
	SpeedupX     float64 `json:"speedup_x"`     // naive / dirty_hit
	ZeroAllocs   bool    `json:"zero_allocs"`   // fast paths allocate nothing
}

// PerfWorkload compares the barrier legs on one workload.
type PerfWorkload struct {
	Name         string  `json:"name"`
	Baseline     PerfLeg `json:"baseline"`     // NaiveBarrier: true
	Coalesced    PerfLeg `json:"coalesced"`    // the coalescing barrier
	Checkpointed PerfLeg `json:"checkpointed"` // coalesced + incremental checkpoint writer

	// ReapplyReductionPct is the headline number: the percentage of the
	// baseline's re-applied log entries that coalescing eliminated.
	ReapplyReductionPct float64 `json:"reapply_reduction_pct"`
	// AppendReductionPct is the same for barrier-side log appends.
	AppendReductionPct float64 `json:"append_reduction_pct"`

	// Checkpoint describes what the checkpointed leg persisted and what the
	// crash consistency cost relative to the coalesced leg.
	Checkpoint PerfCheckpoint `json:"checkpoint"`
}

// PerfCheckpoint is the checkpointed leg's persistence section.
type PerfCheckpoint struct {
	Epochs        int     `json:"epochs"`         // committed epochs (≥ 1: the final forced commit)
	Aborted       int     `json:"aborted"`        // epochs invalidated by a major flip
	SnapshotBytes int64   `json:"snapshot_bytes"` // total snapshot artifact bytes
	WALBytes      int64   `json:"wal_bytes"`      // total WAL artifact bytes
	WordsCopied   int64   `json:"words_copied"`   // heap words copied into segments
	PatchWords    int64   `json:"patch_words"`    // WAL patch pairs (slots mutated mid-snapshot)
	CheckpointMs  float64 `json:"checkpoint_ms"`  // simulated time charged to AcctCheckpoint
	// OverheadPct is the headline intrusion number: the checkpointed leg's
	// simulated elapsed time over the coalesced leg's, as a percentage.
	OverheadPct float64 `json:"overhead_pct"`
}

// PerfLeg is one run's measurements.
type PerfLeg struct {
	ElapsedMs       float64 `json:"elapsed_ms"`        // simulated
	ReplicationMBps float64 `json:"replication_mb_s"`  // bytes replicated / simulated second
	BytesReplicated int64   `json:"bytes_replicated"`  // minor + major copying volume
	LogAppended     int64   `json:"log_appended"`      // barrier-side appends
	LogScanned      int64   `json:"log_scanned"`       // collector-side entries examined
	LogReapplied    int64   `json:"log_reapplied"`     // mutations re-applied to replicas
	NurserySkips    int64   `json:"nursery_skips"`     // fast-path suppressions (coalesced leg only)
	DirtySkips      int64   `json:"dirty_skips"`       // stamp-hit suppressions (coalesced leg only)
	Pauses          int     `json:"pauses"`
	PauseMinMs      float64 `json:"pause_min_ms"`
	PauseMedianMs   float64 `json:"pause_median_ms"`
	PauseP95Ms      float64 `json:"pause_p95_ms"`
	PauseMaxMs      float64 `json:"pause_max_ms"`

	// MMU is the minimum-mutator-utilization curve over the standard
	// window ladder; Phases attributes pause time to collection phases.
	// Both come from the internal/trace recorder attached to the leg
	// (schema repligc-bench/2).
	MMU    []MMUPoint  `json:"mmu"`
	Phases []PhaseTime `json:"phase_ms"`
}

// MMUPoint is one point of a leg's MMU curve.
type MMUPoint struct {
	WindowMs    float64 `json:"window_ms"`
	Utilization float64 `json:"utilization"`
}

// PhaseTime attributes pause time to one collection phase.
type PhaseTime struct {
	Phase string  `json:"phase"`
	Ms    float64 `json:"ms"`
	Count int     `json:"count"`
}

// perfLeg distils a Result plus its trace digest.
func perfLeg(r *Result, a *trace.Analysis) PerfLeg {
	copied := r.Stats.TotalBytesCopied()
	q := simtime.Percentiles(r.Pauses.Durations(), 0, 50, 95, 100)
	leg := PerfLeg{
		ElapsedMs:       r.Elapsed.Milliseconds(),
		BytesReplicated: copied,
		LogAppended:     r.LogWrites,
		LogScanned:      r.Stats.LogScanned,
		LogReapplied:    r.Stats.LogReapplied,
		NurserySkips:    r.BarrierFastSkips,
		DirtySkips:      r.BarrierDirtySkips,
		Pauses:          len(r.Pauses.Pauses),
		PauseMinMs:      q[0].Milliseconds(),
		PauseMedianMs:   q[1].Milliseconds(),
		PauseP95Ms:      q[2].Milliseconds(),
		PauseMaxMs:      q[3].Milliseconds(),
	}
	if secs := r.Elapsed.Seconds(); secs > 0 {
		leg.ReplicationMBps = float64(copied) / (1 << 20) / secs
	}
	for _, pt := range a.MMUCurve(a.StandardWindows()) {
		leg.MMU = append(leg.MMU, MMUPoint{
			WindowMs:    pt.Window.Milliseconds(),
			Utilization: pt.Utilization,
		})
	}
	for p := trace.Phase(0); p < trace.NumPhases; p++ {
		if a.PhaseCount[p] == 0 {
			continue
		}
		leg.Phases = append(leg.Phases, PhaseTime{
			Phase: p.String(),
			Ms:    a.PhaseTime[p].Milliseconds(),
			Count: a.PhaseCount[p],
		})
	}
	return leg
}

// reductionPct returns how much of base the coalesced leg eliminated, as a
// percentage; 0 when the baseline did none of the work.
func reductionPct(base, coal int64) float64 {
	if base <= 0 {
		return 0
	}
	return 100 * (1 - float64(coal)/float64(base))
}

// perfParams is the parameter cell both legs run under: the paper's 50 ms
// pause target (O = 1 MB, N = 0.2 MB, L = 100 KB), the cell every workload
// collects frequently in.
func perfParams() Params { return PaperParams()[0] }

// RunPerf runs the three workloads under both barrier legs and assembles the
// report (without the wall-clock barrier section).
func RunPerf(s Scale, scaleName string) (*PerfReport, error) {
	rep := &PerfReport{
		Schema:    PerfSchema,
		Collector: string(CfgRT),
		Params:    perfParams().String(),
		Scale:     scaleName,
	}
	// Each leg carries its own trace recorder for the MMU and phase
	// sections. 2^20 events hold the full default-scale runs; a leg that
	// overflows would only lose its oldest events, and Analyze still gets
	// a consistent suffix.
	for _, w := range []Workload{Primes(s), Sort(s), Comp(s)} {
		baseTr := trace.NewRecorder(1 << 20)
		base, err := Run(w, RunConfig{Config: CfgRT, Params: perfParams(), NaiveBarrier: true, Trace: baseTr})
		if err != nil {
			return nil, fmt.Errorf("perf %s baseline: %w", w.Name(), err)
		}
		coalTr := trace.NewRecorder(1 << 20)
		coal, err := Run(w, RunConfig{Config: CfgRT, Params: perfParams(), Trace: coalTr})
		if err != nil {
			return nil, fmt.Errorf("perf %s coalesced: %w", w.Name(), err)
		}
		if base.Output != coal.Output {
			return nil, fmt.Errorf("perf %s: barrier legs computed different results", w.Name())
		}
		baseA, err := trace.Analyze(baseTr.Events())
		if err != nil {
			return nil, fmt.Errorf("perf %s baseline trace: %w", w.Name(), err)
		}
		coalA, err := trace.Analyze(coalTr.Events())
		if err != nil {
			return nil, fmt.Errorf("perf %s coalesced trace: %w", w.Name(), err)
		}

		// Checkpointed leg: the coalesced collector with the incremental
		// checkpoint writer attached, its artifacts in a throwaway dir the
		// checkpoint package owns.
		ckptDir, cleanup, err := checkpoint.TempDir("rtgc-bench-ckpt-")
		if err != nil {
			return nil, fmt.Errorf("perf %s checkpointed: %w", w.Name(), err)
		}
		// One epoch per 4 MB allocated, 64 KB of copying per pause: the
		// steady-state cadence, not back-to-back snapshots.
		ckptW := checkpoint.NewWriter(checkpoint.Config{Dir: ckptDir, BudgetBytes: 64 << 10, EveryBytes: 4 << 20})
		ckptTr := trace.NewRecorder(1 << 20)
		ckpt, err := Run(w, RunConfig{Config: CfgRT, Params: perfParams(), Trace: ckptTr, Checkpoint: ckptW})
		cleanup()
		if err != nil {
			return nil, fmt.Errorf("perf %s checkpointed: %w", w.Name(), err)
		}
		if ckpt.Output != coal.Output {
			return nil, fmt.Errorf("perf %s: checkpointed leg computed a different result", w.Name())
		}
		ckptA, err := trace.Analyze(ckptTr.Events())
		if err != nil {
			return nil, fmt.Errorf("perf %s checkpointed trace: %w", w.Name(), err)
		}
		st := ckptW.Stats()
		section := PerfCheckpoint{
			Epochs:        st.Committed,
			Aborted:       st.Aborted,
			SnapshotBytes: st.SnapshotBytes,
			WALBytes:      st.WALBytes,
			WordsCopied:   st.WordsCopied,
			PatchWords:    st.PatchWords,
			CheckpointMs:  ckpt.Breakdown[simtime.AcctCheckpoint].Milliseconds(),
		}
		if coalMs := coal.Elapsed.Milliseconds(); coalMs > 0 {
			section.OverheadPct = 100 * (ckpt.Elapsed.Milliseconds() - coalMs) / coalMs
		}

		rep.Workloads = append(rep.Workloads, PerfWorkload{
			Name:                w.Name(),
			Baseline:            perfLeg(base, baseA),
			Coalesced:           perfLeg(coal, coalA),
			Checkpointed:        perfLeg(ckpt, ckptA),
			ReapplyReductionPct: reductionPct(base.Stats.LogReapplied, coal.Stats.LogReapplied),
			AppendReductionPct:  reductionPct(base.LogWrites, coal.LogWrites),
			Checkpoint:          section,
		})
	}
	serving, err := RunServing(s)
	if err != nil {
		return nil, err
	}
	rep.Serving = serving
	multi, err := RunMulti(s)
	if err != nil {
		return nil, err
	}
	rep.Multi = multi
	return rep, nil
}

// multiSeed seeds the multi-mutator legs; one fixed seed keeps the committed
// fingerprints comparable across regenerations.
const multiSeed = 42

// RunMulti runs the multi-mutator scaling legs: the seeded group workload
// (per-member graph drivers plus a shared contended array) under the full
// real-time configuration with N ∈ {1, 2, 4, 8} mutator contexts on one
// heap and one simulated clock.
func RunMulti(s Scale) ([]MultiLeg, error) {
	var legs []MultiLeg
	for _, n := range []int{1, 2, 4, 8} {
		gr, err := NewGroupRuntime(RunConfig{Config: CfgRT, Params: perfParams()}, n)
		if err != nil {
			return nil, fmt.Errorf("multi N=%d: %w", n, err)
		}
		md, err := gctest.NewMultiDriver(gr.Group, multiSeed)
		if err != nil {
			return nil, fmt.Errorf("multi N=%d: %w", n, err)
		}
		for round := 0; round < s.MultiRounds; round++ {
			if err := md.Step(80); err != nil {
				return nil, fmt.Errorf("multi N=%d round %d: %w", n, round, err)
			}
		}
		if err := gr.Group.Run(0, func(m *core.Mutator) error {
			return gr.GC.FinishCycles(m)
		}); err != nil {
			return nil, fmt.Errorf("multi N=%d finish: %w", n, err)
		}
		g := gr.Group
		st := gr.GC.Stats()
		leg := MultiLeg{
			Mutators:      n,
			WorkMs:        g.Clock.Now().Milliseconds(),
			WallMs:        g.Elapsed().Milliseconds(),
			OverlapRatio:  g.OverlapRatio(),
			Minor:         st.MinorCollections,
			Major:         st.MajorCollections,
			GroupPauses:   len(g.GroupPauses().Pauses),
			MergedEntries: g.MergedEntries,
			MergeDropped:  g.MergeDropped,
			Fingerprint:   fmt.Sprintf("%016x", md.Fingerprint()),
		}
		for i := range g.Members {
			leg.Utilization = append(leg.Utilization, g.Utilization(i))
		}
		var maxSync simtime.Duration
		for _, p := range g.GroupPauses().Pauses {
			if p.Length > maxSync {
				maxSync = p.Length
			}
		}
		leg.SyncPauseMaxMs = maxSync.Milliseconds()
		leg.MMU20Ms = simtime.MMUFromPauses(g.GroupPauses().Pauses, g.Elapsed(), 20*simtime.Millisecond)
		// Verification re-reads the whole heap through the mutators and
		// charges the serial clock; it is a correctness gate, not part of the
		// measured run, so the leg is distilled first.
		if err := md.Verify(); err != nil {
			return nil, fmt.Errorf("multi N=%d verify: %w", n, err)
		}
		legs = append(legs, leg)
	}
	return legs, nil
}

// ReplaySimIdentical runs every workload under the real-time configuration
// twice — hot paths enabled and NaiveReplay — and reports whether all
// simulated measurements agreed exactly. This is the schema-4 proof
// obligation: the replay memo, block byte copies and batched scan accounting
// may change wall-clock time only, never a simulated number.
func ReplaySimIdentical(s Scale) (bool, error) {
	for _, w := range []Workload{Primes(s), Sort(s), Comp(s)} {
		opt, err := Run(w, RunConfig{Config: CfgRT, Params: perfParams()})
		if err != nil {
			return false, fmt.Errorf("sim-identity %s optimised: %w", w.Name(), err)
		}
		naive, err := Run(w, RunConfig{Config: CfgRT, Params: perfParams(), NaiveReplay: true})
		if err != nil {
			return false, fmt.Errorf("sim-identity %s naive: %w", w.Name(), err)
		}
		if !reflect.DeepEqual(opt, naive) {
			return false, nil
		}
	}
	return true, nil
}

// ComparePerf gates a fresh report against a committed baseline: simulated
// elapsed time and p95 pause of the coalesced leg may not regress beyond
// tolPct percent on any workload. Simulated numbers are deterministic, so on
// unchanged code the comparison is exact and the tolerance only admits
// deliberate cost-model or collector changes small enough to accept.
func ComparePerf(fresh, baseline []byte, tolPct float64) error {
	var fr, br PerfReport
	if err := json.Unmarshal(fresh, &fr); err != nil {
		return fmt.Errorf("fresh perf report: %w", err)
	}
	if err := json.Unmarshal(baseline, &br); err != nil {
		return fmt.Errorf("baseline perf report: %w", err)
	}
	if fr.Schema != br.Schema {
		return fmt.Errorf("perf baseline: schema %q vs fresh %q; regenerate the baseline", br.Schema, fr.Schema)
	}
	if fr.Scale != br.Scale {
		return fmt.Errorf("perf baseline: scale %q vs fresh %q; compare like with like", br.Scale, fr.Scale)
	}
	base := make(map[string]PerfWorkload, len(br.Workloads))
	for _, w := range br.Workloads {
		base[w.Name] = w
	}
	limit := 1 + tolPct/100
	for _, w := range fr.Workloads {
		b, ok := base[w.Name]
		if !ok {
			return fmt.Errorf("perf baseline: no workload %q to compare against", w.Name)
		}
		if bound := b.Coalesced.ElapsedMs * limit; w.Coalesced.ElapsedMs > bound {
			return fmt.Errorf("perf regression: %s simulated elapsed %.3f ms exceeds baseline %.3f ms (+%.1f%% allowed)",
				w.Name, w.Coalesced.ElapsedMs, b.Coalesced.ElapsedMs, tolPct)
		}
		if bound := b.Coalesced.PauseP95Ms * limit; w.Coalesced.PauseP95Ms > bound {
			return fmt.Errorf("perf regression: %s simulated p95 pause %.3f ms exceeds baseline %.3f ms (+%.1f%% allowed)",
				w.Name, w.Coalesced.PauseP95Ms, b.Coalesced.PauseP95Ms, tolPct)
		}
	}
	return nil
}

// ValidatePerf checks that data parses as a PerfReport with the current
// schema, all three workloads, and internally-consistent numbers. It is the
// CI smoke check: shape and sanity, never thresholds on the measurements
// themselves.
func ValidatePerf(data []byte) error {
	var rep PerfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("perf report: %w", err)
	}
	if rep.Schema != PerfSchema {
		return fmt.Errorf("perf report: schema %q, want %q", rep.Schema, PerfSchema)
	}
	hp := rep.HotPaths
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"replay_naive", hp.ReplayNaive}, {"replay_batched", hp.ReplayBatched},
		{"byte_copy_naive", hp.ByteCopyNaive}, {"byte_copy_block", hp.ByteCopyBlock},
		{"scan_naive", hp.ScanNaive}, {"scan_batched", hp.ScanBatched},
		{"roots_visit", hp.RootsVisit}, {"roots_slots", hp.RootsSlots},
		{"replay_speedup_x", hp.ReplaySpeedupX}, {"byte_copy_speedup_x", hp.ByteCopySpeedupX},
		{"scan_speedup_x", hp.ScanSpeedupX}, {"roots_speedup_x", hp.RootsSpeedupX},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
			return fmt.Errorf("perf report: hot_paths %s = %v is not a finite non-negative number", f.name, f.v)
		}
	}
	if hp != (HotPathsNsOp{}) {
		// A filled hot-path section must carry its proof obligations: the
		// optimised paths produced bit-identical simulated results and the
		// asserted-allocation-free paths allocated nothing. The ns/op
		// magnitudes themselves are machine-dependent and never gated here.
		if !hp.SimIdentical {
			return fmt.Errorf("perf report: hot_paths present but sim_identical is false; the optimisations changed simulated results")
		}
		if !hp.ZeroAllocs {
			return fmt.Errorf("perf report: hot_paths present but zero_allocs is false; root enumeration or batched replay allocated")
		}
	}
	names := []string{"Primes", "Sort", "Comp"}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = false
	}
	for _, w := range rep.Workloads {
		seen, ok := want[w.Name]
		if !ok {
			return fmt.Errorf("perf report: unknown workload %q", w.Name)
		}
		if seen {
			return fmt.Errorf("perf report: duplicate workload %q", w.Name)
		}
		want[w.Name] = true
		for _, leg := range []struct {
			tag string
			l   PerfLeg
		}{{"baseline", w.Baseline}, {"coalesced", w.Coalesced}, {"checkpointed", w.Checkpointed}} {
			if err := leg.l.check(); err != nil {
				return fmt.Errorf("perf report: %s %s: %w", w.Name, leg.tag, err)
			}
		}
		if w.Baseline.NurserySkips != 0 || w.Baseline.DirtySkips != 0 {
			return fmt.Errorf("perf report: %s baseline leg reports fast-path skips", w.Name)
		}
		c := w.Checkpoint
		if c.Epochs < 1 {
			return fmt.Errorf("perf report: %s checkpointed leg committed no epochs", w.Name)
		}
		if c.SnapshotBytes <= 0 || c.WALBytes <= 0 || c.WordsCopied <= 0 {
			return fmt.Errorf("perf report: %s checkpoint section persisted nothing (snap %d, wal %d, words %d)",
				w.Name, c.SnapshotBytes, c.WALBytes, c.WordsCopied)
		}
		if math.IsNaN(c.CheckpointMs) || c.CheckpointMs < 0 {
			return fmt.Errorf("perf report: %s checkpoint_ms = %v is not plausible", w.Name, c.CheckpointMs)
		}
		if math.IsNaN(c.OverheadPct) || math.IsInf(c.OverheadPct, 0) {
			return fmt.Errorf("perf report: %s checkpoint overhead_pct = %v is not finite", w.Name, c.OverheadPct)
		}
	}
	for _, name := range names {
		if !want[name] {
			return fmt.Errorf("perf report: workload %q missing", name)
		}
	}
	if rep.Serving == nil {
		return fmt.Errorf("perf report: serving section missing (schema %s requires it)", PerfSchema)
	}
	if err := rep.Serving.Check(); err != nil {
		return fmt.Errorf("perf report: %w", err)
	}
	if err := checkMulti(rep.Multi); err != nil {
		return fmt.Errorf("perf report: %w", err)
	}
	return nil
}

// checkMulti validates the schema-6 multi-mutator section: the standard
// scaling ladder, an exact-identity N = 1 anchor, and genuine overlap
// (ratio > 1) on every N ≥ 2 leg.
func checkMulti(legs []MultiLeg) error {
	wantN := []int{1, 2, 4, 8}
	if len(legs) != len(wantN) {
		return fmt.Errorf("multi section has %d legs, want %d (schema %s requires it)", len(legs), len(wantN), PerfSchema)
	}
	for i, leg := range legs {
		if leg.Mutators != wantN[i] {
			return fmt.Errorf("multi leg %d: mutators = %d, want %d", i, leg.Mutators, wantN[i])
		}
		for _, f := range []struct {
			name string
			v    float64
		}{
			{"work_ms", leg.WorkMs}, {"wall_ms", leg.WallMs},
			{"overlap_ratio", leg.OverlapRatio}, {"sync_pause_max_ms", leg.SyncPauseMaxMs},
			{"mmu_20ms", leg.MMU20Ms},
		} {
			if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
				return fmt.Errorf("multi N=%d: %s = %v is not a finite non-negative number", leg.Mutators, f.name, f.v)
			}
		}
		if leg.WorkMs == 0 || leg.Minor == 0 || leg.GroupPauses == 0 {
			return fmt.Errorf("multi N=%d: leg did no collected work (work %.0f ms, %d minors, %d group pauses)",
				leg.Mutators, leg.WorkMs, leg.Minor, leg.GroupPauses)
		}
		if leg.WallMs > leg.WorkMs {
			return fmt.Errorf("multi N=%d: wall %.3f ms exceeds serial work %.3f ms", leg.Mutators, leg.WallMs, leg.WorkMs)
		}
		if leg.Mutators == 1 {
			// The identity anchor: one mutator overlaps nothing, so the wall
			// timeline must be the serial clock exactly.
			if leg.OverlapRatio != 1 {
				return fmt.Errorf("multi N=1: overlap ratio %v, want exactly 1", leg.OverlapRatio)
			}
			if leg.MergedEntries != 0 || leg.MergeDropped != 0 {
				return fmt.Errorf("multi N=1: merge touched %d entries (one member shares the log; nothing to merge)",
					leg.MergedEntries+leg.MergeDropped)
			}
		} else {
			if leg.OverlapRatio <= 1 {
				return fmt.Errorf("multi N=%d: overlap ratio %v, want > 1 (collection overlapped no mutator time)",
					leg.Mutators, leg.OverlapRatio)
			}
			if leg.MergedEntries <= 0 {
				return fmt.Errorf("multi N=%d: no private log entries merged", leg.Mutators)
			}
		}
		if len(leg.Utilization) != leg.Mutators {
			return fmt.Errorf("multi N=%d: %d utilization entries", leg.Mutators, len(leg.Utilization))
		}
		for j, u := range leg.Utilization {
			if math.IsNaN(u) || u <= 0 || u > 1 {
				return fmt.Errorf("multi N=%d: mutator %d utilization %v outside (0, 1]", leg.Mutators, j, u)
			}
		}
		if leg.MMU20Ms >= 1 {
			return fmt.Errorf("multi N=%d: MMU@20ms = %v with %d group pauses", leg.Mutators, leg.MMU20Ms, leg.GroupPauses)
		}
		if len(leg.Fingerprint) != 16 {
			return fmt.Errorf("multi N=%d: fingerprint %q is not 16 hex digits", leg.Mutators, leg.Fingerprint)
		}
	}
	return nil
}

// check rejects legs with impossible measurements.
func (l PerfLeg) check() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"elapsed_ms", l.ElapsedMs}, {"replication_mb_s", l.ReplicationMBps},
		{"pause_min_ms", l.PauseMinMs}, {"pause_median_ms", l.PauseMedianMs},
		{"pause_p95_ms", l.PauseP95Ms}, {"pause_max_ms", l.PauseMaxMs},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
			return fmt.Errorf("%s = %v is not a finite non-negative number", f.name, f.v)
		}
	}
	if l.ElapsedMs == 0 || l.Pauses == 0 {
		return fmt.Errorf("run did no work (elapsed %.0f ms, %d pauses)", l.ElapsedMs, l.Pauses)
	}
	if l.PauseMinMs > l.PauseMedianMs || l.PauseMedianMs > l.PauseP95Ms || l.PauseP95Ms > l.PauseMaxMs {
		return fmt.Errorf("pause percentiles are not monotone")
	}
	if l.LogReapplied > l.LogScanned {
		return fmt.Errorf("re-applied %d entries but scanned only %d", l.LogReapplied, l.LogScanned)
	}
	if len(l.MMU) == 0 {
		return fmt.Errorf("mmu curve is empty (schema %s requires it)", PerfSchema)
	}
	lastW := 0.0
	for _, pt := range l.MMU {
		if math.IsNaN(pt.WindowMs) || pt.WindowMs <= lastW {
			return fmt.Errorf("mmu windows are not positive and strictly increasing (%v after %v)",
				pt.WindowMs, lastW)
		}
		lastW = pt.WindowMs
		if math.IsNaN(pt.Utilization) || pt.Utilization < 0 || pt.Utilization > 1 {
			return fmt.Errorf("mmu(%v ms) = %v outside [0, 1]", pt.WindowMs, pt.Utilization)
		}
	}
	if len(l.Phases) == 0 {
		return fmt.Errorf("phase attribution is empty (schema %s requires it)", PerfSchema)
	}
	for _, ph := range l.Phases {
		if ph.Phase == "" {
			return fmt.Errorf("phase attribution entry with empty phase name")
		}
		if math.IsNaN(ph.Ms) || math.IsInf(ph.Ms, 0) || ph.Ms < 0 || ph.Count <= 0 {
			return fmt.Errorf("phase %s: %.3f ms over %d spans is not plausible", ph.Phase, ph.Ms, ph.Count)
		}
	}
	return nil
}
