package bench

import (
	"fmt"

	"repligc/internal/checkpoint"
	"repligc/internal/core"
	"repligc/internal/heap"
	"repligc/internal/policy"
	"repligc/internal/simtime"
	"repligc/internal/stopcopy"
	"repligc/internal/trace"
)

// ConfigName selects one of the paper's five collector configurations
// (§4.4), plus the ablation variants.
type ConfigName string

// The configurations of figures 8–10, plus ablations.
const (
	CfgRT        ConfigName = "rt"         // full real-time collector
	CfgMinorInc  ConfigName = "minor-inc"  // only minor collections incremental
	CfgMajorInc  ConfigName = "major-inc"  // only major collections incremental
	CfgSCMods    ConfigName = "sc-mods"    // stop-and-copy + compiler modifications (full logging)
	CfgSC        ConfigName = "sc"         // plain stop-and-copy baseline
	CfgRTLazy    ConfigName = "rt-lazy"    // rt + lazy log processing (§2.5 ablation)
	CfgRTBounded ConfigName = "rt-bounded" // rt + incremental log processing (§3.4 extension)
	CfgRTConc    ConfigName = "rt-conc"    // rt + interleaved (concurrent-style) pacing (§6)
	CfgRTDefer   ConfigName = "rt-defer"   // rt + deferred mutable copying (§2.5 copy order)
)

// AllPaperConfigs is the matrix of figures 8–10.
var AllPaperConfigs = []ConfigName{CfgRT, CfgMinorInc, CfgMajorInc, CfgSCMods, CfgSC}

// Params is one cell of the paper's parameter matrix.
type Params struct {
	OBytes int64 // major threshold O
	NBytes int64 // nursery size N
	LBytes int64 // copy limit L (per pause)
	ABytes int64 // nursery expansion A (0 = L/2)
}

// String renders as the paper does, in megabytes.
func (p Params) String() string {
	return fmt.Sprintf("O=%.1fMB N=%.1fMB", float64(p.OBytes)/(1<<20), float64(p.NBytes)/(1<<20))
}

// PaperParams is the paper's O×N matrix with its L choices: L = 0.1 MB when
// N = 0.2 MB (the 50 ms target) and L = 0.5 MB when N = 1 MB (§4.2).
func PaperParams() []Params {
	mk := func(oMB, nMB float64) Params {
		p := Params{OBytes: int64(oMB * (1 << 20)), NBytes: int64(nMB * (1 << 20))}
		if nMB < 0.5 {
			p.LBytes = 100 << 10
		} else {
			p.LBytes = 500 << 10
		}
		return p
	}
	return []Params{mk(1, 0.2), mk(1, 1.0), mk(5, 0.2), mk(5, 1.0)}
}

// RunConfig describes one benchmark run.
type RunConfig struct {
	Config ConfigName
	Params Params
	// Record collects a policy script (only meaningful for incremental
	// configurations, normally CfgRT).
	Record *policy.Script
	// Replay drives collections from a recorded script (honoured by the
	// stop-and-copy-minor configurations: sc, sc-mods, major-inc).
	Replay *policy.Script
	// Cost overrides the cost model; zero value means Default1993.
	Cost simtime.CostModel
	// OldSemiBytes overrides the old-generation semispace size; zero means
	// the paper's 96 MB. The exhaustion-matrix tests tighten this until
	// the collectors run out of memory.
	OldSemiBytes int64
	// NurseryCapBytes overrides the nursery growth bound; zero derives it
	// from N as before.
	NurseryCapBytes int64
	// NaiveBarrier disables write-barrier coalescing (the dirty-stamp and
	// nursery fast paths), restoring the append-every-store barrier. Used
	// as the baseline leg of the perf trajectory.
	NaiveBarrier bool
	// NaiveReplay disables the collector's wall-clock hot-path
	// optimisations (per-object replay memo, block byte copies, batched
	// scan accounting). Simulated results are bit-identical either way;
	// the flag exists for the differential tests and the before/after
	// wall-clock sections of the perf report.
	NaiveReplay bool
	// Trace, when non-nil, attaches an event recorder to the run: the
	// mutator's allocation epochs, the heap's log epochs and the
	// collector's pause/phase events all land in it. Tracing charges
	// nothing to the simulated clock, so a traced run's measurements are
	// bit-identical to an untraced one.
	Trace *trace.Recorder
	// Checkpoint, when non-nil, attaches the incremental checkpoint writer
	// to the run (replicating configurations only). Unlike tracing, the
	// snapshot copying is charged to the simulated clock
	// (simtime.AcctCheckpoint), so the checkpointed leg measures the
	// intrusion honestly. Run force-commits a final epoch at the end.
	Checkpoint *checkpoint.Writer
}

// Result is everything measured in one run.
type Result struct {
	Workload string
	Config   ConfigName
	Params   Params

	Elapsed   simtime.Duration
	Pauses    simtime.Recorder
	Stats     core.GCStats
	Breakdown [simtime.NumAccounts]simtime.Duration

	BytesAllocated    int64
	LogWrites         int64
	BarrierFastSkips  int64
	BarrierDirtySkips int64
	Output            string
}

// Runtime is one constructed heap + mutator + collector, ready to run a
// workload. Tests that need to observe a run's state after a failure (the
// exhaustion matrix) build one directly instead of going through Run.
type Runtime struct {
	Heap    *heap.Heap
	Mutator *core.Mutator
	GC      core.Collector
}

// NewRuntime constructs the runtime rc describes without running anything.
func NewRuntime(rc RunConfig) (*Runtime, error) {
	cost := rc.Cost
	if cost == (simtime.CostModel{}) {
		cost = simtime.Default1993()
	}

	// The nursery cap must accommodate replayed deltas (N plus expansion).
	nurseryCap := rc.NurseryCapBytes
	if nurseryCap == 0 {
		nurseryCap = 16 * rc.Params.NBytes
		if nurseryCap < 16<<20 {
			nurseryCap = 16 << 20
		}
	}
	oldSemi := rc.OldSemiBytes
	if oldSemi == 0 {
		oldSemi = 96 << 20
	}
	h := heap.New(heap.Config{
		NurseryBytes:    rc.Params.NBytes,
		NurseryCapBytes: nurseryCap,
		OldSemiBytes:    oldSemi,
	})

	logPolicy := core.LogAllMutations
	if rc.Config == CfgSC {
		logPolicy = core.LogPointersOnly
	}
	m := core.NewMutator(h, simtime.NewClock(), cost, logPolicy)
	m.NaiveBarrier = rc.NaiveBarrier

	gc, err := newCollector(rc, h)
	if err != nil {
		return nil, err
	}
	m.AttachGC(gc)
	if rc.Trace != nil {
		AttachTrace(&Runtime{Heap: h, Mutator: m, GC: gc}, rc.Trace)
	}
	if rc.Checkpoint != nil {
		rep, ok := gc.(*core.Replicating)
		if !ok {
			return nil, fmt.Errorf("bench: configuration %q cannot checkpoint (replicating collectors only)", rc.Config)
		}
		rep.SetCheckpointer(rc.Checkpoint)
	}
	return &Runtime{Heap: h, Mutator: m, GC: gc}, nil
}

// newCollector builds the collector rc describes over h.
func newCollector(rc RunConfig, h *heap.Heap) (core.Collector, error) {
	var gc core.Collector
	switch rc.Config {
	case CfgSC, CfgSCMods:
		gc = stopcopy.New(h, stopcopy.Config{
			NurseryBytes:        rc.Params.NBytes,
			MajorThresholdBytes: rc.Params.OBytes,
			Replay:              rc.Replay,
		})
	case CfgRT, CfgMinorInc, CfgMajorInc, CfgRTLazy, CfgRTBounded, CfgRTConc, CfgRTDefer:
		cfg := core.Config{
			NurseryBytes:         rc.Params.NBytes,
			MajorThresholdBytes:  rc.Params.OBytes,
			CopyLimitBytes:       rc.Params.LBytes,
			ExpandBytes:          rc.Params.ABytes,
			IncrementalMinor:     rc.Config != CfgMajorInc,
			IncrementalMajor:     rc.Config != CfgMinorInc,
			LazyLogProcessing:    rc.Config == CfgRTLazy,
			BoundedLogProcessing: rc.Config == CfgRTBounded,
			DeferMutableCopies:   rc.Config == CfgRTDefer,
			NaiveReplay:          rc.NaiveReplay,
			Record:               rc.Record,
		}
		if rc.Config == CfgRTConc {
			// 1.5 bytes of collector work per allocated byte: enough to
			// finish each collection well before the nursery fills.
			cfg.InterleavedTaxPermille = 1500
			cfg.BoundedLogProcessing = true
		}
		if rc.Config == CfgMajorInc {
			cfg.Replay = rc.Replay
		}
		gc = core.NewReplicating(h, cfg)
	default:
		return nil, fmt.Errorf("bench: unknown configuration %q", rc.Config)
	}
	return gc, nil
}

// GroupRuntime is a constructed heap + n-member mutator group + collector.
type GroupRuntime struct {
	Heap  *heap.Heap
	Group *core.Group
	GC    core.Collector
}

// NewGroupRuntime constructs the runtime rc describes with n mutator
// contexts sharing the heap and collector. A one-member group is
// bit-identical to the solo Runtime (the differential tests pin this);
// larger groups give each member a private nursery chunk and mutation log.
func NewGroupRuntime(rc RunConfig, n int) (*GroupRuntime, error) {
	cost := rc.Cost
	if cost == (simtime.CostModel{}) {
		cost = simtime.Default1993()
	}
	nurseryCap := rc.NurseryCapBytes
	if nurseryCap == 0 {
		nurseryCap = 16 * rc.Params.NBytes
		if nurseryCap < 16<<20 {
			nurseryCap = 16 << 20
		}
	}
	oldSemi := rc.OldSemiBytes
	if oldSemi == 0 {
		oldSemi = 96 << 20
	}
	h := heap.New(heap.Config{
		NurseryBytes:    rc.Params.NBytes,
		NurseryCapBytes: nurseryCap,
		OldSemiBytes:    oldSemi,
	})
	logPolicy := core.LogAllMutations
	if rc.Config == CfgSC {
		logPolicy = core.LogPointersOnly
	}
	g := core.NewGroup(h, simtime.NewClock(), cost, logPolicy, n)
	for _, m := range g.Members {
		m.NaiveBarrier = rc.NaiveBarrier
	}
	gc, err := newCollector(rc, h)
	if err != nil {
		return nil, err
	}
	g.AttachGC(gc)
	return &GroupRuntime{Heap: h, Group: g, GC: gc}, nil
}

// AttachTrace wires recorder r into every hook point of rt: the mutator's
// allocation epochs, the heap's log-epoch hook, and the collector's pause
// and phase events (any collector implementing SetTrace).
func AttachTrace(rt *Runtime, r *trace.Recorder) {
	rt.Mutator.Trace = r
	clock := rt.Mutator.Clock
	rt.Heap.EpochHook = func(epoch uint32) {
		r.LogEpoch(clock.Now(), int64(epoch))
	}
	if ts, ok := rt.GC.(interface{ SetTrace(*trace.Recorder) }); ok {
		ts.SetTrace(r)
	}
}

// Run executes workload w under rc and returns the measurements.
func Run(w Workload, rc RunConfig) (*Result, error) {
	rt, err := NewRuntime(rc)
	if err != nil {
		return nil, err
	}
	m, gc := rt.Mutator, rt.GC

	out, err := w.Run(m)
	if err != nil {
		return nil, err
	}
	if err := gc.FinishCycles(m); err != nil {
		return nil, err
	}
	if rc.Checkpoint != nil {
		if err := rc.Checkpoint.ForceCommit(m, gc.(*core.Replicating)); err != nil {
			return nil, fmt.Errorf("bench: final checkpoint commit: %w", err)
		}
	}

	res := &Result{
		Workload:       w.Name(),
		Config:         rc.Config,
		Params:         rc.Params,
		Elapsed:        m.Clock.Now(),
		Pauses:         *gc.Pauses(),
		Stats:          *gc.Stats(),
		Breakdown:      m.Clock.Breakdown(),
		BytesAllocated:    m.BytesAllocated,
		LogWrites:         m.LogWrites,
		BarrierFastSkips:  m.BarrierFastSkips,
		BarrierDirtySkips: m.BarrierDirtySkips,
		Output:            out,
	}
	return res, nil
}

// RecordedRT runs the real-time configuration while recording its policy
// script, returning both.
func RecordedRT(w Workload, p Params) (*Result, *policy.Script, error) {
	script := &policy.Script{}
	res, err := Run(w, RunConfig{Config: CfgRT, Params: p, Record: script})
	return res, script, err
}
