package bench

// The serving leg of the perf trajectory (introduced in schema repligc-bench/5): the
// paper's batch workloads measure collector cost per unit of work; this leg
// measures what the collector does to a *service* — request latency tails
// and SLO misses under open-loop traffic. The spec mirrors the committed
// examples/serve/mixed.json mix: an interactive cohort with tight SLOs and
// a mutation-heavy, bursty batch-ingest cohort, served by the naive and
// coalesced barrier legs over the identical materialised trace.

import (
	"fmt"

	"repligc/internal/workload"
)

// DefaultServeSpec is the standard serving mix at scale s.
func DefaultServeSpec(s Scale) *workload.Spec {
	return &workload.Spec{
		Name:       "mixed-serving",
		Seed:       7,
		DurationMs: s.ServeMs,
		Cohorts: []workload.Cohort{
			{
				Name:    "interactive",
				Arrival: workload.Arrival{Law: workload.LawPoisson, RatePerSec: 400},
				Profile: workload.Profile{
					ObjsPerReq: 6, ObjWords: 16, RetainPct: 0.25,
					SessionWords: 64, SessionReqs: 8,
					Mutations: 12, WorkSteps: 2000,
				},
				SLO: workload.SLO{TargetMs: 2, DeadlineMs: 10},
			},
			{
				Name: "batch-ingest",
				Arrival: workload.Arrival{
					Law: workload.LawGamma, RatePerSec: 40, Shape: 0.7,
					Burst: &workload.Burst{OnMs: 200, OffMs: 100, OffFactor: 4},
				},
				Profile: workload.Profile{
					ObjsPerReq: 40, ObjWords: 64, RetainPct: 0.5,
					SessionWords: 256, SessionReqs: 4,
					Mutations: 48, WorkSteps: 20000,
				},
				SLO: workload.SLO{TargetMs: 20, DeadlineMs: 100},
			},
		},
	}
}

// RunServing materialises the standard serving spec and serves it under the
// naive-barrier and coalesced legs.
func RunServing(s Scale) (*workload.Section, error) {
	spec := DefaultServeSpec(s)
	tr, err := workload.Generate(spec)
	if err != nil {
		return nil, fmt.Errorf("serving: %w", err)
	}
	sec, err := workload.RunLegs(tr, workload.StandardLegs())
	if err != nil {
		return nil, fmt.Errorf("serving: %w", err)
	}
	return sec, nil
}
