// Package bench implements the paper's evaluation: the three benchmark
// workloads (Primes, Comp, Sort — §4.1), the configuration matrix over the
// parameters N, O and L (§4.2), the policy record/replay methodology, and
// the experiment runners that regenerate every table and figure of §4.
package bench

import (
	"fmt"
	"strings"

	"repligc/internal/bytecode"
	"repligc/internal/core"
	"repligc/internal/heap"
	"repligc/internal/lang"
	"repligc/internal/vm"
)

// Workload is one benchmark program.
type Workload interface {
	// Name is the paper's benchmark name.
	Name() string
	// Run executes the workload through the mutator and returns a
	// deterministic result summary (used to check that every collector
	// configuration computes the same thing).
	Run(m *core.Mutator) (string, error)
}

// Scale sizes the workloads. The paper's runs allocate gigabytes over
// minutes of 1993-hardware time; these defaults allocate tens of megabytes,
// preserving every ratio that matters (nursery and copy-limit sizes are the
// paper's own, so collection counts stay high).
type Scale struct {
	PrimesCount int     // primes to produce
	SortSize    int     // list length to sort
	SortDepth   int     // futures fan-out depth
	CompModules int     // generated modules per repetition
	CompReps    int     // corpus repetitions
	ServeMs     float64 // simulated milliseconds of serving traffic (schema /5)
	MultiRounds int     // mutator-group scheduling rounds per scaling leg (schema /6)
}

// DefaultScale is used by the full experiment suite.
func DefaultScale() Scale {
	return Scale{PrimesCount: 600, SortSize: 30000, SortDepth: 4, CompModules: 12, CompReps: 40, ServeMs: 3000, MultiRounds: 1600}
}

// QuickScale is used by tests.
func QuickScale() Scale {
	return Scale{PrimesCount: 60, SortSize: 2500, SortDepth: 2, CompModules: 4, CompReps: 30, ServeMs: 800, MultiRounds: 400}
}

// ---------------------------------------------------------------- Primes

// primesSource is the paper's Primes benchmark: a prime sieve written in a
// lazy style (explicit thunk streams) and run by the MiniML interpreter —
// the same double level of interpretation as the paper's "simple lazy
// language ... interpreted by an SML program". Streams are non-memoising,
// so the workload allocates at a very high rate and performs (almost) no
// mutation, and few objects survive collection.
const primesSource = `
fun from n = fn u => (n, from (n + 1)) in
fun filter p s = fn u =>
  let pr = s () in
  (case pr of (x, rest) =>
    if p x then (x, filter p rest)
    else (filter p rest) ()) in
fun sieve s = fn u =>
  let pr = s () in
  (case pr of (x, rest) =>
    (x, sieve (filter (fn y => (y mod x) <> 0) rest))) in
fun take k s acc =
  if k = 0 then acc
  else let pr = s () in
       (case pr of (x, rest) => take (k - 1) rest (acc + x)) in
let total = take %COUNT% (sieve (from 2)) 0 in
print ("primes-sum " ^ itos total ^ "\n")
`

// Primes returns the Primes workload.
func Primes(s Scale) Workload {
	src := strings.ReplaceAll(primesSource, "%COUNT%", fmt.Sprint(s.PrimesCount))
	return &vmWorkload{name: "Primes", src: src}
}

// ------------------------------------------------------------------ Sort

// sortSource is the paper's Sort benchmark: a futures-based parallel merge
// sort built on threads and synchronising variables. The pseudo-random
// input generator mutates an integer ref on every draw and the work queue
// counters mutate more — "Sort does more mutation than a typical SML
// program and it creates a large amount of live data."
const sortSource = `
let seed = ref 123456789 in
let draws = ref 0 in
let cmps = ref 0 in
fun rnd u =
  (seed := ((!seed * 1103515245) + 12345) mod 1073741824;
   draws := !draws + 1;
   !seed mod 1000000) in
fun build n acc = if n = 0 then acc else build (n - 1) (rnd () :: acc) in
fun split l a b = case l of [] => (a, b) | x :: r => split r (x :: b) a in
fun revapp a b = case a of [] => b | x :: r => revapp r (x :: b) in
fun mergei a b acc =
  case a of
    [] => revapp acc b
  | x :: xs =>
      (case b of
         [] => revapp acc a
       | y :: ys =>
           (cmps := !cmps + 1;
            if x <= y then mergei xs b (x :: acc) else mergei a ys (y :: acc))) in
fun merge a b = mergei a b [] in
fun msort l =
  case l of
    [] => []
  | x :: r =>
      (case r of
         [] => l
       | _ => let p = split l [] [] in merge (msort (#1 p)) (msort (#2 p))) in
fun future f = let sv = newsv () in (spawn (fn u => putsv sv (f ())); sv) in
fun pmsort d l =
  if d = 0 then msort l
  else case l of
    [] => []
  | x :: r =>
      (case r of
         [] => l
       | _ =>
           let p = split l [] [] in
           let other = future (fn u => pmsort (d - 1) (#1 p)) in
           let mine = pmsort (d - 1) (#2 p) in
           merge (takesv other) mine) in
let out = array %SIZE% 0 in
fun store l i = case l of [] => i | x :: r => (aset out i x; store r (i + 1)) in
fun checksum i acc =
  if i = alen out then acc
  else checksum (i + 1) ((acc + (aget out i) * (i + 1)) mod 1000000007) in
fun sorted i =
  if i + 1 >= alen out then true
  else aget out i <= aget out (i + 1) andalso sorted (i + 1) in
let input = build %SIZE% [] in
let result = pmsort %DEPTH% input in
let stored = store result 0 in
(if sorted 0 then print "sorted " else print "UNSORTED ";
 print ("checksum " ^ itos (checksum 0 0) ^ " draws " ^ itos (!draws)
        ^ " cmps " ^ itos (!cmps) ^ "\n"))
`

// Sort returns the Sort workload.
func Sort(s Scale) Workload {
	src := strings.ReplaceAll(sortSource, "%SIZE%", fmt.Sprint(s.SortSize))
	src = strings.ReplaceAll(src, "%DEPTH%", fmt.Sprint(s.SortDepth))
	return &vmWorkload{name: "Sort", src: src}
}

// vmWorkload compiles and runs a MiniML source.
type vmWorkload struct {
	name string
	src  string
}

func (w *vmWorkload) Name() string { return w.name }

func (w *vmWorkload) Run(m *core.Mutator) (string, error) {
	prog, err := lang.Compile(m, w.src)
	if err != nil {
		return "", fmt.Errorf("%s: compile: %w", w.name, err)
	}
	machine := vm.New(m, prog)
	machine.MaxSteps = 2_000_000_000
	if err := machine.Run(); err != nil {
		return machine.Output.String(), fmt.Errorf("%s: %w", w.name, err)
	}
	return machine.Output.String(), nil
}

// ------------------------------------------------------------------ Comp

// compWorkload is the paper's Comp benchmark: the compiler compiling a
// substantial body of source. The MiniML compiler's tokens, AST records,
// interned symbol strings, scope chains and emitted code buffers all live
// on the simulated heap, so repeated compilation reproduces the compiler
// workload shape: moderate allocation, higher survival, live data
// fluctuating with compilation phases, and many byte mutations from code
// emission and backpatching.
type compWorkload struct {
	sources []string
	reps    int
}

// loadedCode is the compiler session's retained state: the "loaded" code
// segments of previously compiled modules, like a compiler that keeps its
// compilation units in memory. It is a GC root source; the retained
// megabytes are what give Comp its substantial, slowly-varying live data
// (and its long stop-and-copy major pauses).
type loadedCode struct {
	segs []heap.Value
	next int
}

func (l *loadedCode) VisitRoots(v core.RootVisitor) {
	for i := range l.segs {
		v(&l.segs[i])
	}
}

// retainedModules bounds the loaded-code ring.
const retainedModules = 24

// Comp returns the Comp workload: a deterministic generated corpus plus the
// other two benchmarks' own sources (the compiler compiling the benchmark
// suite, in the spirit of the SML/NJ compiler compiling a portion of
// itself). The corpus mixes a few large modules with several small ones so
// live data fluctuates with compilation phases, as the paper observed —
// the megabyte-scale ASTs of the large modules are what give the
// stop-and-copy baseline its long major pauses on this benchmark.
func Comp(s Scale) Workload {
	w := &compWorkload{reps: s.CompReps}
	for i := 0; i < s.CompModules; i++ {
		defs := 48 + 16*(i%3)
		if i%4 == 0 {
			defs = 80 + 20*(i%3) // a large module: the compiler holds a few hundred KB live
		}
		w.sources = append(w.sources, GenerateModule(i, defs))
	}
	w.sources = append(w.sources,
		strings.ReplaceAll(primesSource, "%COUNT%", "10"),
		strings.ReplaceAll(strings.ReplaceAll(sortSource, "%SIZE%", "10"), "%DEPTH%", "1"),
		lang.Prelude+"0", // the standard library is part of the corpus
	)
	return w
}

func (w *compWorkload) Name() string { return "Comp" }

func (w *compWorkload) Run(m *core.Mutator) (string, error) {
	loaded := &loadedCode{segs: make([]heap.Value, retainedModules)}
	m.Roots.Register(loaded)
	blocks, instrs := 0, 0
	for r := 0; r < w.reps; r++ {
		for i, src := range w.sources {
			prog, err := lang.Compile(m, src)
			if err != nil {
				return "", fmt.Errorf("Comp: module %d: %w", i, err)
			}
			blocks += len(prog.Blocks)
			n := 0
			for _, b := range prog.Blocks {
				n += len(b.Code)
			}
			instrs += n
			if err := loaded.load(m, prog, n); err != nil {
				return "", fmt.Errorf("Comp: module %d: %w", i, err)
			}
		}
	}
	return fmt.Sprintf("compiled blocks=%d instrs=%d\n", blocks, instrs), nil
}

// load writes the module's encoded code into a fresh heap segment and
// retains it in the ring, evicting the oldest module's segment.
func (l *loadedCode) load(m *core.Mutator, prog *bytecode.Program, instrs int) error {
	if instrs == 0 {
		return nil
	}
	slot := l.next
	seg, err := m.Alloc(heap.KindBytes, instrs*bytecode.EncodedSize)
	if err != nil {
		return err
	}
	l.segs[slot] = seg
	l.next = (l.next + 1) % len(l.segs)
	var chunk [16 * bytecode.EncodedSize]byte
	off, used := 0, 0
	flush := func() {
		if used > 0 {
			// Re-read the segment from the ring slot: the stores can
			// trigger collections, and the slot is a root.
			m.SetByteRange(l.segs[slot], off, chunk[:used])
			off += used
			used = 0
		}
	}
	for _, b := range prog.Blocks {
		for _, ins := range b.Code {
			ins.EncodeInto(chunk[:], used)
			used += bytecode.EncodedSize
			if used == len(chunk) {
				flush()
			}
		}
	}
	flush()
	m.Step(instrs)
	return nil
}

// GenerateModule produces a deterministic MiniML module of roughly n
// top-level function groups exercising every language construct the
// compiler knows: recursion, closures, cases with nested patterns, tuples,
// lists, refs, arrays and string building.
func GenerateModule(seed, n int) string {
	var b strings.Builder
	rng := uint64(seed)*2654435761 + 12345
	next := func(k int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int(rng>>33) % k
	}
	fmt.Fprintf(&b, "(* generated module %d *)\n", seed)
	for i := 0; i < n; i++ {
		switch next(5) {
		case 0:
			fmt.Fprintf(&b, "fun f%d_%d x = if x <= 1 then 1 else x * f%d_%d (x - %d) in\n",
				seed, i, seed, i, 1+next(2))
		case 1:
			fmt.Fprintf(&b, "fun g%d_%d l = case l of [] => 0 | x :: r => x + g%d_%d r in\n",
				seed, i, seed, i)
		case 2:
			fmt.Fprintf(&b, "fun h%d_%d p = case p of (a, b) => a * %d + b in\n",
				seed, i, 2+next(7))
		case 3:
			fmt.Fprintf(&b, "let v%d_%d = [%d, %d, %d, %d] in\n",
				seed, i, next(100), next(100), next(100), next(100))
		default:
			fmt.Fprintf(&b, "let c%d_%d = fn x => (x + %d, x * %d, \"m%d\") in\n",
				seed, i, next(50), 1+next(9), i)
		}
	}
	// A body that references a sample of the definitions so nothing is
	// trivially dead and the module runs if executed.
	fmt.Fprintf(&b, "let acc = ref 0 in\n")
	fmt.Fprintf(&b, "fun touch%d k = (acc := !acc + k; !acc) in\n", seed)
	fmt.Fprintf(&b, "print (itos (touch%d %d) ^ \"\\n\")\n", seed, next(1000))
	return b.String()
}
