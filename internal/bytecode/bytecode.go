// Package bytecode defines the instruction set of the MiniML virtual
// machine: a compact stack machine with heap-allocated environments and
// call frames, mirroring the stackless, allocation-heavy execution model of
// SML/NJ that the paper's workloads run on (§3.1: "the runtime system has
// no stack, heavy demands are placed on the storage allocation system").
package bytecode

import (
	"fmt"
	"strings"
)

// Op is an instruction opcode.
type Op uint8

// Opcodes. Conventions: the operand stack grows rightward; every
// expression leaves exactly one value. Within a function, bindings form a
// chain of three-word heap records (parent, value), so local access is
// (hops, slot 1) and every binding allocates — the dominant object shape
// the paper measured in SML/NJ. Across function boundaries the compiler
// performs flat closure conversion: a closure captures exactly the values
// of its free variables (recursive fun-group bindings are captured as
// their mutable environment records — boxes — and dereferenced with a
// projection), so dead scopes are never retained, as in SML/NJ.
const (
	OpNop       Op = iota
	OpConstInt     // push immediate integer A
	OpConstStr     // push preallocated string literal A
	OpLocal        // push value at A hops up the environment chain
	OpLocalRec     // push the environment record itself at A hops (boxed bindings)
	OpFree         // push free-variable slot A of the current closure
	OpClosure      // pop B captured values; push new closure over block A
	OpCall         // pop arg, closure; push heap frame; enter closure
	OpTailCall     // pop arg, closure; enter closure reusing the frame
	OpReturn       // pop frame; resume caller (thread exits on empty frame)
	OpJump         // unconditional jump to A
	OpJumpIfNot    // pop; jump to A when false (immediate 0)
	OpBin          // pop b, a; push a <binop A> b
	OpNot          // pop; push logical negation
	OpNeg          // pop; push arithmetic negation
	OpMkTuple      // pop A values; push record
	OpProj         // pop tuple; push field A
	OpMkRef        // pop v; push new ref cell
	OpDeref        // pop ref; push contents
	OpAssign       // pop v, ref; store (write barrier + mutation log); push unit
	OpMkArray      // pop init, n; push new array of n inits
	OpAGet         // pop i, arr; push element
	OpASet         // pop v, i, arr; store (logged); push unit
	OpALen         // pop arr; push length
	OpBind         // pop v; extend environment with v
	OpBindHole     // extend environment with a mutable hole (recursive bindings)
	OpPatch        // pop v; store v into the hole A hops up the chain (logged mutation)
	OpEnvPop       // discard A environment records
	OpPopN         // pop A values
	OpSwapPop      // pop r, v; push r (drop the value under the top)
	OpDup          // duplicate top of stack
	OpTestInt      // pop; if != immediate A jump to B
	OpTestNil      // pop; if not nil (immediate 0) jump to A
	OpTestCons     // if top not a pair jump to A; else pop, push tail, head
	OpTestTuple    // pop tuple of A fields; push fields so slot 0 is on top (jump A2=B on mismatch)
	OpPrint        // pop string; append to program output; push unit
	OpItoS         // pop int; push decimal string
	OpStoI         // pop string; push integer value (0 on parse failure)
	OpSize         // pop string; push length
	OpSub          // pop i, s; push byte i of string s as int
	OpSpawn        // pop closure; schedule new thread running it; push unit
	OpYield        // reschedule; push unit
	OpNewSV        // push a fresh empty synchronising variable
	OpPutSV        // pop v, sv; fill sv (error if already full); push unit
	OpTakeSV       // pop sv; block until full; push its value
	OpHalt         // stop the whole program
	numOps
)

var opNames = [numOps]string{
	"nop", "constint", "conststr", "local", "localrec", "free", "closure", "call", "tailcall",
	"return", "jump", "jumpifnot", "bin", "not", "neg", "mktuple", "proj",
	"mkref", "deref", "assign", "mkarray", "aget", "aset", "alen", "bind",
	"bindhole", "patch", "envpop", "popn", "swappop", "dup", "testint", "testnil",
	"testcons", "testtuple", "print", "itos", "stoi", "size", "sub",
	"spawn", "yield", "newsv", "putsv", "takesv", "halt",
}

// String names the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// BinOp selects the operation of OpBin.
type BinOp int32

// Binary operators.
const (
	BinAdd BinOp = iota
	BinSub
	BinMul
	BinDiv
	BinMod
	BinLt
	BinLe
	BinGt
	BinGe
	BinEq // polymorphic equality (uses getheader; paper §3.2)
	BinNe
	BinCons
	BinStrCat
	numBinOps
)

var binNames = [numBinOps]string{
	"+", "-", "*", "/", "mod", "<", "<=", ">", ">=", "=", "<>", "::", "^",
}

// String names the operator.
func (b BinOp) String() string {
	if int(b) < len(binNames) {
		return binNames[b]
	}
	return fmt.Sprintf("bin(%d)", int(b))
}

// Instr is one instruction. A and B are operands whose meaning depends on
// the opcode (jump target, literal, arity, hop count, ...).
type Instr struct {
	Op   Op
	A, B int32
}

func (i Instr) String() string {
	switch i.Op {
	case OpNop, OpCall, OpTailCall, OpReturn, OpNot, OpNeg, OpMkRef, OpDeref,
		OpAssign, OpMkArray, OpAGet, OpASet, OpALen, OpBind, OpSwapPop, OpDup,
		OpPrint, OpItoS, OpStoI, OpSize, OpSub, OpSpawn, OpYield, OpNewSV,
		OpPutSV, OpTakeSV, OpHalt:
		return i.Op.String()
	case OpBin:
		return fmt.Sprintf("bin %s", BinOp(i.A))
	case OpClosure:
		return fmt.Sprintf("closure %d free %d", i.A, i.B)
	case OpTestInt, OpTestTuple:
		return fmt.Sprintf("%s %d -> %d", i.Op, i.A, i.B)
	default:
		return fmt.Sprintf("%s %d", i.Op, i.A)
	}
}

// Block is one compiled function body (or the program entry).
type Block struct {
	Name string
	Code []Instr
}

// Program is a compiled MiniML program.
type Program struct {
	Blocks  []Block
	Strings []string // literal pool, preallocated on the heap at load time
	Entry   int      // index of the entry block
}

// EncodedSize is the byte footprint of one instruction in the compiler's
// heap code buffers (opcode + two 32-bit operands).
const EncodedSize = 9

// EncodeInto writes the instruction into buf at off using the code-buffer
// encoding. buf must have room for EncodedSize bytes.
func (i Instr) EncodeInto(buf []byte, off int) {
	buf[off] = byte(i.Op)
	putInt32(buf, off+1, i.A)
	putInt32(buf, off+5, i.B)
}

// DecodeInstr reads an instruction back from a code buffer.
func DecodeInstr(buf []byte, off int) Instr {
	return Instr{
		Op: Op(buf[off]),
		A:  getInt32(buf, off+1),
		B:  getInt32(buf, off+5),
	}
}

func putInt32(b []byte, off int, v int32) {
	b[off] = byte(v)
	b[off+1] = byte(v >> 8)
	b[off+2] = byte(v >> 16)
	b[off+3] = byte(v >> 24)
}

func getInt32(b []byte, off int) int32 {
	return int32(b[off]) | int32(b[off+1])<<8 | int32(b[off+2])<<16 | int32(b[off+3])<<24
}

// Disassemble renders the program as text.
func (p *Program) Disassemble() string {
	var sb strings.Builder
	for bi, blk := range p.Blocks {
		marker := ""
		if bi == p.Entry {
			marker = " (entry)"
		}
		fmt.Fprintf(&sb, "block %d %s%s:\n", bi, blk.Name, marker)
		for pc, ins := range blk.Code {
			fmt.Fprintf(&sb, "  %4d  %s\n", pc, ins)
		}
	}
	if len(p.Strings) > 0 {
		fmt.Fprintf(&sb, "strings:\n")
		for i, s := range p.Strings {
			fmt.Fprintf(&sb, "  %4d  %q\n", i, s)
		}
	}
	return sb.String()
}
