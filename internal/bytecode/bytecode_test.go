package bytecode

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, a, b int32) bool {
		ins := Instr{Op: Op(op % uint8(numOps)), A: a, B: b}
		var buf [EncodedSize]byte
		ins.EncodeInto(buf[:], 0)
		return DecodeInstr(buf[:], 0) == ins
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeAtOffset(t *testing.T) {
	buf := make([]byte, 3*EncodedSize)
	a := Instr{Op: OpConstInt, A: -7}
	b := Instr{Op: OpJump, A: 1 << 20}
	a.EncodeInto(buf, 0)
	b.EncodeInto(buf, EncodedSize)
	if DecodeInstr(buf, 0) != a || DecodeInstr(buf, EncodedSize) != b {
		t.Fatal("offset encoding broken")
	}
}

func TestOpNamesComplete(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		name := op.String()
		if name == "" || strings.HasPrefix(name, "op(") {
			t.Errorf("opcode %d has no name", op)
		}
	}
	if !strings.HasPrefix(Op(250).String(), "op(") {
		t.Error("out-of-range opcode should fall back")
	}
}

func TestBinOpNamesComplete(t *testing.T) {
	for b := BinOp(0); b < numBinOps; b++ {
		if strings.HasPrefix(b.String(), "bin(") {
			t.Errorf("binop %d has no name", b)
		}
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		ins  Instr
		want string
	}{
		{Instr{Op: OpReturn}, "return"},
		{Instr{Op: OpBin, A: int32(BinAdd)}, "bin +"},
		{Instr{Op: OpClosure, A: 3, B: 2}, "closure 3 free 2"},
		{Instr{Op: OpTestInt, A: 5, B: 9}, "testint 5 -> 9"},
		{Instr{Op: OpJump, A: 4}, "jump 4"},
	}
	for _, c := range cases {
		if got := c.ins.String(); got != c.want {
			t.Errorf("%+v => %q, want %q", c.ins, got, c.want)
		}
	}
}

func TestDisassemble(t *testing.T) {
	p := &Program{
		Blocks: []Block{
			{Name: "entry", Code: []Instr{{Op: OpConstInt, A: 1}, {Op: OpHalt}}},
			{Name: "f", Code: []Instr{{Op: OpReturn}}},
		},
		Strings: []string{"lit"},
		Entry:   0,
	}
	out := p.Disassemble()
	for _, want := range []string{"block 0 entry (entry)", "block 1 f", "constint 1", `"lit"`} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}
