// Package calib fits the simulated cost model to this machine's wall clock.
//
// The paper's experiments run entirely on the deterministic simulated clock
// (internal/simtime), which is what makes every table reproducible
// bit-for-bit. This package answers the complementary question: how well do
// those simulated costs track *real* time on the host running the
// implementation? It executes the benchmark workloads and a set of
// single-primitive micro-probes uninstrumented, times them with the wall
// clock, extracts per-primitive work counts from the collector's existing
// counters, and least-squares-fits a simtime.CostModel whose constants are
// nanoseconds-on-this-machine instead of nanoseconds-on-1993-hardware.
//
// Wall-clock reads are confined to functions carrying a
// "//gclint:wallclock <reason>" annotation; the determinism lint enforces
// that boundary (and rejects wall-clock reads anywhere else in the tree).
package calib

import (
	"fmt"
	"math"
	"time"

	"repligc/internal/bench"
	"repligc/internal/core"
	"repligc/internal/heap"
	"repligc/internal/simtime"
)

// Schema identifies the calibration artifact format.
const Schema = "repligc-calib/1"

// Config sizes a calibration run.
type Config struct {
	// Scale sizes the benchmark workloads; the zero value means
	// bench.DefaultScale. CI smoke runs pass bench.QuickScale.
	Scale     bench.Scale
	ScaleName string
	// Reps is how many times each specimen runs; the minimum wall time is
	// kept (the simulated side is deterministic, so repetition only fights
	// scheduler noise). Zero means 3.
	Reps int
	// ProbeOps is the iteration count of each micro-probe. Zero means 200000.
	ProbeOps int
	// OldSemiBytes overrides the old-generation semispace size for every
	// specimen; zero keeps the bench default. Smoke runs shrink it so that
	// arena construction does not dominate the job.
	OldSemiBytes int64
}

// Counts is the per-primitive work vector of one run, extracted from the
// collector counters and the simulated clock's per-account breakdown. Each
// account is charged as an exact integer multiple of one or two cost
// constants, so the decomposition below recovers the counts exactly.
type Counts struct {
	Instructions int64 `json:"instructions"`
	AllocWords   int64 `json:"alloc_words"`
	LogWrites    int64 `json:"log_writes"`
	HeaderChecks int64 `json:"header_checks"`
	CopyWords    int64 `json:"copy_words"`
	ScanWords    int64 `json:"scan_words"`
	LogScans     int64 `json:"log_scans"`
	LogReapplies int64 `json:"log_reapplies"`
	RootUpdates  int64 `json:"root_updates"`
	FlipEntries  int64 `json:"flip_entries"`
}

// vector lays the counts out in paramNames order.
func (c Counts) vector() [nParams]float64 {
	return [nParams]float64{
		float64(c.Instructions), float64(c.AllocWords), float64(c.LogWrites),
		float64(c.HeaderChecks), float64(c.CopyWords), float64(c.ScanWords),
		float64(c.LogScans), float64(c.LogReapplies), float64(c.RootUpdates),
		float64(c.FlipEntries),
	}
}

// Row is one measured specimen: a (workload, configuration) pair or a
// micro-probe, with its wall time, simulated time, and work counts.
type Row struct {
	Name     string           `json:"name"`
	Workload string           `json:"workload"`
	Config   bench.ConfigName `json:"config"`
	Reps     int              `json:"reps"`
	WallNs   int64            `json:"wall_ns"`
	SimNs    int64            `json:"sim_ns"`
	Counts   Counts           `json:"counts"`
}

// FitStats summarises how well a model explains a set of rows.
type FitStats struct {
	Rows    int     `json:"rows"`
	MAPEPct float64 `json:"mape_pct"`
	Pearson float64 `json:"pearson"`
}

// WorkloadFit is the per-workload sim-vs-wall agreement: the least-squares
// scalar mapping simulated to wall nanoseconds across that workload's
// configurations, and the error of that single-knob model.
type WorkloadFit struct {
	Workload    string  `json:"workload"`
	Rows        int     `json:"rows"`
	ScaleFactor float64 `json:"scale_factor"`
	MAPEPct     float64 `json:"mape_pct"`
	Pearson     float64 `json:"pearson"`
}

// Report is the calibration artifact (schema repligc-calib/1).
type Report struct {
	Schema    string `json:"schema"`
	ScaleName string `json:"scale"`
	Reps      int    `json:"reps"`

	Rows []Row `json:"rows"`

	// DefaultNs restates simtime.Default1993 for side-by-side reading;
	// FittedNs is this machine's fit, pluggable back in via simtime.Fitted.
	DefaultNs simtime.FittedNs `json:"default_ns"`
	FittedNs  simtime.FittedNs `json:"fitted_ns"`

	FittedCopyRateBytesPerSec   float64 `json:"fitted_copy_rate_bytes_per_sec"`
	FittedReplayRateBytesPerSec float64 `json:"fitted_replay_rate_bytes_per_sec"`

	// Fit is the fitted model's error over all rows; Workloads is the
	// simpler one-scalar sim-vs-wall agreement per workload.
	Fit       FitStats      `json:"fit"`
	Workloads []WorkloadFit `json:"workloads"`
}

// ------------------------------------------------------------ measurement

// stopwatch starts a wall-clock timer and returns a function reporting the
// nanoseconds elapsed since the call. It is the only wall-clock read in the
// package; everything else handles the resulting integers.
//
//gclint:wallclock calibration fits the simulated cost model against real elapsed time
func stopwatch() func() int64 {
	start := time.Now()
	return func() int64 { return int64(time.Since(start)) }
}

// spec is one specimen to measure.
type spec struct {
	name     string
	workload string
	config   bench.ConfigName
	build    func() (*bench.Runtime, error)
	body     func(rt *bench.Runtime) error
}

// measure runs s cfg.Reps times and returns its row: minimum wall time
// across repetitions, simulated time and counts from the final repetition
// (the simulated side is deterministic, so every repetition agrees).
func measure(s spec, reps int) (Row, error) {
	row := Row{Name: s.name, Workload: s.workload, Config: s.config, Reps: reps}
	for rep := 0; rep < reps; rep++ {
		rt, err := s.build()
		if err != nil {
			return row, fmt.Errorf("calib: build %s: %w", s.name, err)
		}
		elapsed := stopwatch()
		err = s.body(rt)
		wall := elapsed()
		if err != nil {
			return row, fmt.Errorf("calib: run %s: %w", s.name, err)
		}
		if rep == 0 || wall < row.WallNs {
			row.WallNs = wall
		}
		m := rt.Mutator
		row.SimNs = int64(m.Clock.Now())
		row.Counts = countsFrom(m.Clock.Breakdown(), *rt.GC.Stats(), m.LogWrites, m.Cost)
	}
	return row, nil
}

// countsFrom decomposes the per-account simulated-time breakdown back into
// primitive counts. Valid because every account is charged in exact
// multiples of its cost constants: the pure accounts divide directly, and
// the two mixed accounts (minor/major copy = CopyWord + ScanWord, flip =
// FlipEntry + RootUpdate) split using the collector's own volume counters.
func countsFrom(br [simtime.NumAccounts]simtime.Duration, st core.GCStats, logWrites int64, cost simtime.CostModel) Counts {
	units := func(total, per simtime.Duration) int64 {
		if per <= 0 || total <= 0 {
			return 0
		}
		return int64((total + per/2) / per)
	}
	copyWords := st.TotalBytesCopied() / heap.BytesPerWord
	scanNs := br[simtime.AcctMinorCopy] + br[simtime.AcctMajorCopy] -
		simtime.Duration(copyWords)*cost.CopyWord
	flipRootNs := br[simtime.AcctFlip] - simtime.Duration(st.FlipEntryUpdates)*cost.FlipEntry
	return Counts{
		Instructions: units(br[simtime.AcctMutator], cost.Instruction),
		AllocWords:   units(br[simtime.AcctAlloc], cost.AllocWord),
		LogWrites:    logWrites,
		HeaderChecks: units(br[simtime.AcctHeaderCheck], cost.HeaderCheck),
		CopyWords:    copyWords,
		ScanWords:    units(scanNs, cost.ScanWord),
		LogScans:     st.LogScanned,
		LogReapplies: st.LogReapplied,
		RootUpdates:  units(br[simtime.AcctRootScan], cost.RootUpdate) + units(flipRootNs, cost.RootUpdate),
		FlipEntries:  st.FlipEntryUpdates,
	}
}

// ---------------------------------------------------------------- specimens

// workloadConfigs are the collector configurations each workload runs under.
// They span the count space: rt and rt-lazy exercise the incremental replay
// machinery, minor-inc shifts the copy/scan mix, and sc-mods is the
// stop-and-copy path with full logging.
var workloadConfigs = []bench.ConfigName{
	bench.CfgRT, bench.CfgRTLazy, bench.CfgMinorInc, bench.CfgSCMods,
}

func (cfg Config) workloadSpecs() []spec {
	params := bench.PaperParams()[0]
	workloads := []bench.Workload{
		bench.Primes(cfg.Scale), bench.Sort(cfg.Scale), bench.Comp(cfg.Scale),
	}
	var specs []spec
	for _, w := range workloads {
		for _, cn := range workloadConfigs {
			w, cn := w, cn
			specs = append(specs, spec{
				name:     fmt.Sprintf("%s/%s", w.Name(), cn),
				workload: w.Name(),
				config:   cn,
				build: func() (*bench.Runtime, error) {
					return bench.NewRuntime(bench.RunConfig{
						Config:       cn,
						Params:       params,
						OldSemiBytes: cfg.OldSemiBytes,
					})
				},
				body: func(rt *bench.Runtime) error {
					if _, err := w.Run(rt.Mutator); err != nil {
						return err
					}
					return rt.GC.FinishCycles(rt.Mutator)
				},
			})
		}
	}
	return specs
}

// rootFunc adapts a function to core.RootSource for the probes.
type rootFunc func(core.RootVisitor)

func (f rootFunc) VisitRoots(v core.RootVisitor) { f(v) }

// probeParams keeps probe heaps small: the probes measure per-primitive
// costs, not capacity.
func (cfg Config) probeRunConfig() bench.RunConfig {
	old := cfg.OldSemiBytes
	if old == 0 || old > 16<<20 {
		old = 16 << 20
	}
	return bench.RunConfig{
		Config: bench.CfgRT,
		Params: bench.Params{
			OBytes: 4 << 20,
			NBytes: 256 << 10,
			LBytes: 16 << 10,
		},
		OldSemiBytes: old,
	}
}

// probeSpecs are hand-rolled single-primitive loops. Their count vectors are
// far from the workloads' (a pure allocator, a pure logger, a replay-heavy
// mutator, a root-heavy retainer), which is what conditions the least-squares
// system well enough to separate the collinear constants.
func (cfg Config) probeSpecs() []spec {
	ops := cfg.ProbeOps
	build := func() (*bench.Runtime, error) { return bench.NewRuntime(cfg.probeRunConfig()) }
	buildNaive := func() (*bench.Runtime, error) {
		rc := cfg.probeRunConfig()
		rc.NaiveBarrier = true
		return bench.NewRuntime(rc)
	}
	return []spec{
		{
			// Allocation-dominated: short-lived records, nothing retained.
			name: "probe-alloc", workload: "probes", config: bench.CfgRT,
			build: build,
			body: func(rt *bench.Runtime) error {
				m := rt.Mutator
				for i := 0; i < ops; i++ {
					p, err := m.Alloc(heap.KindRecord, 2)
					if err != nil {
						return err
					}
					m.Init(p, 0, heap.FromInt(int64(i)))
				}
				return rt.GC.FinishCycles(m)
			},
		},
		{
			// Log-write-dominated: naive barrier, old-space stores, no
			// allocation (so no collections).
			name: "probe-barrier", workload: "probes", config: bench.CfgRT,
			build: buildNaive,
			body: func(rt *bench.Runtime) error {
				m := rt.Mutator
				//gclint:allow barrier -- probe fixture: plants one old-space array without perturbing the allocation counters under measurement
				arr, ok := m.H.AllocIn(m.H.OldFrom(), heap.KindArray, 64)
				if !ok {
					return fmt.Errorf("probe-barrier: old-space alloc failed")
				}
				for i := 0; i < ops; i++ {
					m.Set(arr, i%64, heap.FromInt(int64(i)))
					if i%4096 == 0 {
						m.Log.TrimTo(m.Log.Len())
					}
				}
				return rt.GC.FinishCycles(m)
			},
		},
		{
			// Replay-dominated: long-lived refs mutated between the pauses
			// of incremental cycles, forcing log scans and reapplies.
			name: "probe-replay", workload: "probes", config: bench.CfgRT,
			build: build,
			body: func(rt *bench.Runtime) error {
				m := rt.Mutator
				refs := make([]heap.Value, 16)
				for i := range refs {
					r, err := m.Alloc(heap.KindRef, 1)
					if err != nil {
						return err
					}
					m.Init(r, 0, heap.FromInt(0))
					refs[i] = r
				}
				keep := make([]heap.Value, 512)
				m.Roots.Register(rootFunc(func(v core.RootVisitor) {
					for i := range refs {
						v(&refs[i])
					}
					for i := range keep {
						v(&keep[i])
					}
				}))
				for i := 0; i < ops; i++ {
					m.Set(refs[i%16], 0, heap.FromInt(int64(i)))
					if i%4 == 0 {
						p, err := m.Alloc(heap.KindRecord, 30)
						if err != nil {
							return err
						}
						if i%16 == 0 {
							keep[(i/16)%512] = p
						}
					}
				}
				return rt.GC.FinishCycles(m)
			},
		},
		{
			// Root-dominated: a large retained root table scanned and
			// re-pointed by every collection.
			name: "probe-roots", workload: "probes", config: bench.CfgRT,
			build: build,
			body: func(rt *bench.Runtime) error {
				m := rt.Mutator
				keep := make([]heap.Value, 4096)
				m.Roots.Register(rootFunc(func(v core.RootVisitor) {
					for i := range keep {
						v(&keep[i])
					}
				}))
				for i := 0; i < ops; i++ {
					p, err := m.Alloc(heap.KindRecord, 6)
					if err != nil {
						return err
					}
					if i%8 == 0 {
						keep[(i/8)%4096] = p
					}
				}
				return rt.GC.FinishCycles(m)
			},
		},
	}
}

// --------------------------------------------------------------------- Run

// Run executes the calibration suite under cfg and returns the artifact.
func Run(cfg Config) (*Report, error) {
	if cfg.Scale == (bench.Scale{}) {
		cfg.Scale = bench.DefaultScale()
		if cfg.ScaleName == "" {
			cfg.ScaleName = "default"
		}
	}
	if cfg.ScaleName == "" {
		cfg.ScaleName = "custom"
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 3
	}
	if cfg.ProbeOps <= 0 {
		cfg.ProbeOps = 200000
	}

	specs := append(cfg.workloadSpecs(), cfg.probeSpecs()...)
	rows := make([]Row, 0, len(specs))
	for _, s := range specs {
		row, err := measure(s, cfg.Reps)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}

	beta, err := fitRidge(rows, 1e-6)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Schema:    Schema,
		ScaleName: cfg.ScaleName,
		Reps:      cfg.Reps,
		Rows:      rows,
		DefaultNs: simtime.Default1993().Ns(),
		FittedNs: simtime.FittedNs{
			InstructionNs: beta[0], AllocWordNs: beta[1], LogWriteNs: beta[2],
			HeaderCheckNs: beta[3], CopyWordNs: beta[4], ScanWordNs: beta[5],
			LogScanNs: beta[6], LogReapplyNs: beta[7], RootUpdateNs: beta[8],
			FlipEntryNs: beta[9],
		},
	}
	model := simtime.Fitted(rep.FittedNs)
	rep.FittedCopyRateBytesPerSec = model.CopyRateBytesPerSec()
	rep.FittedReplayRateBytesPerSec = model.ReplayRateBytesPerSec()

	pred := make([]float64, len(rows))
	wall := make([]float64, len(rows))
	sim := make([]float64, len(rows))
	for i, r := range rows {
		pred[i] = predict(beta, r.Counts)
		wall[i] = float64(r.WallNs)
		sim[i] = float64(r.SimNs)
	}
	rep.Fit = FitStats{Rows: len(rows), MAPEPct: mape(pred, wall), Pearson: pearson(pred, wall)}

	// Per-workload single-scalar agreement, in first-seen order (the row
	// order is deterministic, so the report is too).
	var order []string
	byW := map[string][]int{}
	for i, r := range rows {
		if _, ok := byW[r.Workload]; !ok {
			order = append(order, r.Workload)
		}
		byW[r.Workload] = append(byW[r.Workload], i)
	}
	for _, w := range order {
		idx := byW[w]
		ws := make([]float64, len(idx))
		ww := make([]float64, len(idx))
		for j, i := range idx {
			ws[j] = sim[i]
			ww[j] = wall[i]
		}
		a := scaleFactor(ws, ww)
		scaled := make([]float64, len(ws))
		for j := range ws {
			scaled[j] = a * ws[j]
		}
		rep.Workloads = append(rep.Workloads, WorkloadFit{
			Workload: w, Rows: len(idx), ScaleFactor: a,
			MAPEPct: mape(scaled, ww), Pearson: pearson(ws, ww),
		})
	}
	return rep, nil
}

// ---------------------------------------------------------------- Validate

// Validate checks the structural invariants of a calibration artifact: the
// wall-clock magnitudes are machine-dependent, so it checks shape and sanity,
// never absolute speed.
func Validate(r *Report) error {
	if r.Schema != Schema {
		return fmt.Errorf("calib: schema %q, want %q", r.Schema, Schema)
	}
	if len(r.Rows) == 0 {
		return fmt.Errorf("calib: no rows")
	}
	seen := map[string]bool{}
	for _, row := range r.Rows {
		if row.WallNs <= 0 {
			return fmt.Errorf("calib: row %s has non-positive wall time %d", row.Name, row.WallNs)
		}
		if row.SimNs <= 0 {
			return fmt.Errorf("calib: row %s has non-positive simulated time %d", row.Name, row.SimNs)
		}
		seen[row.Workload] = true
	}
	for _, w := range []string{"Primes", "Sort", "Comp"} {
		if !seen[w] {
			return fmt.Errorf("calib: workload %s missing from rows", w)
		}
	}
	finite := func(name string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("calib: %s = %v, want finite and non-negative", name, v)
		}
		return nil
	}
	f := r.FittedNs
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"instruction_ns", f.InstructionNs}, {"alloc_word_ns", f.AllocWordNs},
		{"log_write_ns", f.LogWriteNs}, {"header_check_ns", f.HeaderCheckNs},
		{"copy_word_ns", f.CopyWordNs}, {"scan_word_ns", f.ScanWordNs},
		{"log_scan_ns", f.LogScanNs}, {"log_reapply_ns", f.LogReapplyNs},
		{"root_update_ns", f.RootUpdateNs}, {"flip_entry_ns", f.FlipEntryNs},
	} {
		if err := finite("fitted "+c.name, c.v); err != nil {
			return err
		}
	}
	if err := finite("fit mape_pct", r.Fit.MAPEPct); err != nil {
		return err
	}
	if r.Fit.Pearson < -1 || r.Fit.Pearson > 1 || math.IsNaN(r.Fit.Pearson) {
		return fmt.Errorf("calib: fit pearson = %v, want within [-1, 1]", r.Fit.Pearson)
	}
	if len(r.Workloads) == 0 {
		return fmt.Errorf("calib: no per-workload fits")
	}
	for _, w := range r.Workloads {
		if err := finite(w.Workload+" mape_pct", w.MAPEPct); err != nil {
			return err
		}
		if err := finite(w.Workload+" scale_factor", w.ScaleFactor); err != nil {
			return err
		}
		if w.Pearson < -1 || w.Pearson > 1 || math.IsNaN(w.Pearson) {
			return fmt.Errorf("calib: %s pearson = %v, want within [-1, 1]", w.Workload, w.Pearson)
		}
	}
	return nil
}
