package calib

import (
	"math"
	"testing"

	"repligc/internal/bench"
	"repligc/internal/simtime"
)

// synthRow builds a row whose wall time is exactly the model's prediction.
func synthRow(name string, truth [nParams]float64, c Counts) Row {
	return Row{Name: name, Workload: "synth", Config: bench.CfgRT,
		WallNs: int64(predict(truth, c)), SimNs: 1, Counts: c}
}

// TestFitRecoversExactModel feeds the solver rows generated from a known
// model with well-separated count vectors and checks the constants come back.
func TestFitRecoversExactModel(t *testing.T) {
	truth := [nParams]float64{80, 120, 400, 40, 2000, 1800, 1000, 4000, 900, 3500}
	rows := []Row{
		synthRow("a", truth, Counts{Instructions: 1e6, AllocWords: 2e5, HeaderChecks: 5e4}),
		synthRow("b", truth, Counts{Instructions: 3e5, LogWrites: 4e5, HeaderChecks: 4e5}),
		synthRow("c", truth, Counts{CopyWords: 2e5, ScanWords: 1e5, Instructions: 1e4}),
		synthRow("d", truth, Counts{CopyWords: 5e4, ScanWords: 4e5, LogScans: 3e4}),
		synthRow("e", truth, Counts{LogScans: 2e5, LogReapplies: 1e5, LogWrites: 5e4}),
		synthRow("f", truth, Counts{RootUpdates: 3e5, FlipEntries: 1e5, Instructions: 2e4}),
		synthRow("g", truth, Counts{RootUpdates: 5e4, FlipEntries: 4e5, AllocWords: 1e5}),
		synthRow("h", truth, Counts{AllocWords: 6e5, Instructions: 1e5, CopyWords: 2e4}),
		synthRow("i", truth, Counts{LogReapplies: 4e5, LogWrites: 2e5, ScanWords: 1e4}),
		synthRow("j", truth, Counts{HeaderChecks: 7e5, LogWrites: 1e5, RootUpdates: 2e4}),
		synthRow("k", truth, Counts{Instructions: 5e5, AllocWords: 5e5, CopyWords: 1e5,
			ScanWords: 1e5, LogScans: 1e5, LogReapplies: 1e5, RootUpdates: 1e5,
			FlipEntries: 1e5, LogWrites: 1e5, HeaderChecks: 1e5}),
	}
	beta, err := fitRidge(rows, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		rel := math.Abs(beta[i]-truth[i]) / truth[i]
		if rel > 0.01 {
			t.Errorf("%s: fitted %.1f, want %.1f (rel err %.3f)", paramNames[i], beta[i], truth[i], rel)
		}
	}
}

// TestFitClampsNegatives checks a collinear system yields no negative costs.
func TestFitClampsNegatives(t *testing.T) {
	truth := [nParams]float64{80, 120, 400, 40, 2000, 1800, 1000, 4000, 900, 3500}
	// Copy and scan words move in lockstep: the individual constants are
	// unidentifiable, but the fit must still be non-negative and solvable.
	rows := []Row{
		synthRow("a", truth, Counts{CopyWords: 1e5, ScanWords: 1e5}),
		synthRow("b", truth, Counts{CopyWords: 2e5, ScanWords: 2e5}),
		synthRow("c", truth, Counts{CopyWords: 3e5, ScanWords: 3e5}),
	}
	beta, err := fitRidge(rows, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range beta {
		if b < 0 {
			t.Errorf("%s: negative fitted cost %v", paramNames[i], b)
		}
	}
}

func TestFitNoRows(t *testing.T) {
	if _, err := fitRidge(nil, 1e-6); err == nil {
		t.Fatal("fit on zero rows should fail")
	}
}

func TestStats(t *testing.T) {
	if m := mape([]float64{110, 90}, []float64{100, 100}); math.Abs(m-10) > 1e-9 {
		t.Errorf("mape = %v, want 10", m)
	}
	if p := pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(p-1) > 1e-12 {
		t.Errorf("pearson = %v, want 1", p)
	}
	if p := pearson([]float64{1, 1, 1}, []float64{2, 4, 6}); p != 0 {
		t.Errorf("pearson of constant series = %v, want 0", p)
	}
	if a := scaleFactor([]float64{1, 2}, []float64{3, 6}); math.Abs(a-3) > 1e-12 {
		t.Errorf("scaleFactor = %v, want 3", a)
	}
}

// validReport builds a minimal artifact that passes Validate.
func validReport() *Report {
	rows := []Row{
		{Name: "Primes/rt", Workload: "Primes", Config: bench.CfgRT, WallNs: 100, SimNs: 200},
		{Name: "Sort/rt", Workload: "Sort", Config: bench.CfgRT, WallNs: 100, SimNs: 200},
		{Name: "Comp/rt", Workload: "Comp", Config: bench.CfgRT, WallNs: 100, SimNs: 200},
	}
	return &Report{
		Schema: Schema, ScaleName: "quick", Reps: 1, Rows: rows,
		DefaultNs: simtime.Default1993().Ns(),
		FittedNs:  simtime.FittedNs{InstructionNs: 1},
		Fit:       FitStats{Rows: 3, MAPEPct: 5, Pearson: 0.99},
		Workloads: []WorkloadFit{{Workload: "Primes", Rows: 1, ScaleFactor: 0.5, MAPEPct: 1, Pearson: 1}},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := Validate(validReport()); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Report)
	}{
		{"wrong schema", func(r *Report) { r.Schema = "repligc-calib/0" }},
		{"no rows", func(r *Report) { r.Rows = nil }},
		{"missing workload", func(r *Report) { r.Rows = r.Rows[:2] }},
		{"zero wall", func(r *Report) { r.Rows[0].WallNs = 0 }},
		{"zero sim", func(r *Report) { r.Rows[1].SimNs = 0 }},
		{"negative fitted", func(r *Report) { r.FittedNs.CopyWordNs = -1 }},
		{"nan fitted", func(r *Report) { r.FittedNs.ScanWordNs = math.NaN() }},
		{"bad pearson", func(r *Report) { r.Fit.Pearson = 1.5 }},
		{"nan mape", func(r *Report) { r.Fit.MAPEPct = math.NaN() }},
		{"no workload fits", func(r *Report) { r.Workloads = nil }},
		{"bad workload pearson", func(r *Report) { r.Workloads[0].Pearson = -2 }},
	}
	for _, c := range cases {
		r := validReport()
		c.mut(r)
		if err := Validate(r); err == nil {
			t.Errorf("%s: Validate accepted a bad report", c.name)
		}
	}
}

// TestRunQuickSmoke runs the whole harness at a tiny scale and validates the
// artifact it produces end to end.
func TestRunQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration smoke is seconds-long")
	}
	rep, err := Run(Config{
		Scale:        bench.QuickScale(),
		ScaleName:    "quick",
		Reps:         1,
		ProbeOps:     20000,
		OldSemiBytes: 16 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(rep); err != nil {
		t.Fatal(err)
	}
	// The fitted model must be pluggable back into the simulator.
	model := simtime.Fitted(rep.FittedNs)
	clock := simtime.NewClock()
	clock.Charge(simtime.AcctMinorCopy, 10*model.CopyWord)
	if model.CopyWord > 0 && clock.Now() <= 0 {
		t.Fatal("fitted model does not charge")
	}
	// Counts must reflect real work: every workload row allocated and the
	// replay probe reapplied log entries.
	var reapplies int64
	for _, row := range rep.Rows {
		if row.Workload != "probes" && row.Counts.AllocWords == 0 {
			t.Errorf("row %s: zero alloc words", row.Name)
		}
		if row.Name == "probe-replay" {
			reapplies = row.Counts.LogReapplies
		}
	}
	if reapplies == 0 {
		t.Error("probe-replay reapplied no log entries")
	}
}
