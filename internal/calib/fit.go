package calib

// Least-squares machinery for fitting the simulated cost model to wall-clock
// measurements. Pure arithmetic: nothing here reads a clock of any kind.

import (
	"fmt"
	"math"
)

// nParams is the number of fitted cost constants, in the fixed order of
// paramNames (which mirrors simtime.CostModel's fields).
const nParams = 10

// paramNames are the design-matrix columns, index-aligned with the count
// vectors produced by countsOf.
var paramNames = [nParams]string{
	"instruction", "alloc_word", "log_write", "header_check",
	"copy_word", "scan_word", "log_scan", "log_reapply",
	"root_update", "flip_entry",
}

// fitRidge solves min ||X b - y||^2 + lambda ||b||^2 by the normal
// equations, then clamps negative coefficients to zero. The ridge term keeps
// the system solvable when counts are collinear (copy and scan words move
// together on every workload); lambda is scaled by the trace of X'X so its
// strength is independent of the measurement units.
func fitRidge(rows []Row, lambda float64) ([nParams]float64, error) {
	var beta [nParams]float64
	if len(rows) == 0 {
		return beta, fmt.Errorf("calib: no rows to fit")
	}
	// Normal equations: A = X'X + lambda*scale*I, v = X'y.
	var a [nParams][nParams]float64
	var v [nParams]float64
	for _, r := range rows {
		x := r.Counts.vector()
		for i := 0; i < nParams; i++ {
			if x[i] == 0 {
				continue
			}
			v[i] += x[i] * float64(r.WallNs)
			for j := 0; j < nParams; j++ {
				a[i][j] += x[i] * x[j]
			}
		}
	}
	trace := 0.0
	for i := 0; i < nParams; i++ {
		trace += a[i][i]
	}
	ridge := lambda * trace / nParams
	if ridge <= 0 {
		ridge = 1e-9 * trace / nParams
	}
	for i := 0; i < nParams; i++ {
		a[i][i] += ridge
	}
	sol, err := solve(a, v)
	if err != nil {
		return beta, err
	}
	for i, b := range sol {
		if b < 0 {
			b = 0 // a negative per-unit cost is a collinearity artifact
		}
		beta[i] = b
	}
	return beta, nil
}

// solve performs Gaussian elimination with partial pivoting on the (small,
// symmetric positive-definite after the ridge) normal-equation system.
func solve(a [nParams][nParams]float64, v [nParams]float64) ([nParams]float64, error) {
	var x [nParams]float64
	for col := 0; col < nParams; col++ {
		pivot := col
		for r := col + 1; r < nParams; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-30 {
			return x, fmt.Errorf("calib: singular normal equations at column %s", paramNames[col])
		}
		a[col], a[pivot] = a[pivot], a[col]
		v[col], v[pivot] = v[pivot], v[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < nParams; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < nParams; c++ {
				a[r][c] -= f * a[col][c]
			}
			v[r] -= f * v[col]
		}
	}
	for i := nParams - 1; i >= 0; i-- {
		s := v[i]
		for j := i + 1; j < nParams; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / a[i][i]
	}
	return x, nil
}

// predict evaluates the fitted model on one row's counts.
func predict(beta [nParams]float64, c Counts) float64 {
	x := c.vector()
	s := 0.0
	for i := 0; i < nParams; i++ {
		s += beta[i] * x[i]
	}
	return s
}

// mape is the mean absolute percentage error of pred against actual, in
// percent; rows with a non-positive actual are skipped.
func mape(pred, actual []float64) float64 {
	n, s := 0, 0.0
	for i := range actual {
		if actual[i] <= 0 {
			continue
		}
		s += math.Abs(pred[i]-actual[i]) / actual[i]
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * s / float64(n)
}

// pearson is the sample correlation coefficient of xs and ys; 0 when either
// series is constant (no linear relationship is measurable).
func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx <= 0 || syy <= 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// scaleFactor is the least-squares scalar a minimising ||a*sim - wall||^2,
// the single-knob calibration "how many wall nanoseconds per simulated
// nanosecond" used for the per-workload sim-vs-wall error.
func scaleFactor(sim, wall []float64) float64 {
	var sw, ss float64
	for i := range sim {
		sw += sim[i] * wall[i]
		ss += sim[i] * sim[i]
	}
	if ss <= 0 {
		return 0
	}
	return sw / ss
}
