package checkpoint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repligc/internal/core"
	"repligc/internal/heap"
	"repligc/internal/simtime"
	"repligc/internal/trace"
)

// Config parameterises a Writer.
type Config struct {
	// Dir is the artifact directory (created on first use). Each committed
	// epoch leaves a snap-<epoch>.ckpt / wal-<epoch>.ckpt pair in it.
	Dir string
	// BudgetBytes bounds the snapshot copying added to any one pause —
	// the checkpoint analogue of the paper's copy limit L. Zero defaults
	// to 128 KB.
	BudgetBytes int64
	// CommitSlackBytes bounds the completing increment: an epoch commits
	// at a quiescent pause once its remaining copy (stable-prefix tail
	// plus nursery) fits this allowance. It mirrors the collector's own
	// completion pauses, which also run past the steady budget to reach a
	// flip. Zero defaults to 4× BudgetBytes.
	CommitSlackBytes int64
	// EveryBytes throttles epoch starts: a new epoch begins only after the
	// mutator has allocated this much since the previous epoch began. Zero
	// means continuous checkpointing (a new epoch at the first quiescent
	// pause after each commit).
	EveryBytes int64
	// Keep is how many committed epochs to retain (older pairs are
	// deleted). Zero defaults to 2, so a crash while damaging the newest
	// epoch still leaves a complete predecessor.
	Keep int
}

// EpochInfo describes one committed epoch.
type EpochInfo struct {
	Epoch       uint64
	Fingerprint uint64 // authoritative state hash, computed from the live heap at commit
	SnapBytes   int64
	WALBytes    int64
	PatchWords  int    // WAL patch pairs written (slots mutated mid-snapshot)
	LogEntries  int    // retained mutation-log entries persisted
	Pauses      int    // pauses the epoch's copying was spread across
}

// Stats aggregates a Writer's lifetime activity.
type Stats struct {
	Committed     int
	Aborted       int // epochs invalidated by a major flip mid-snapshot
	SnapshotBytes int64
	WALBytes      int64
	WordsCopied   int64 // heap words written into snapshot segments
	PatchWords    int64
	Epochs        []EpochInfo
	LastErr       error // most recent I/O failure (epoch aborted, writing continues)
}

// Writer incrementally persists checkpoints of a running collector. Attach
// it with Replicating.SetCheckpointer; every collection pause then advances
// the open epoch by at most BudgetBytes of copying, inside the pause and
// charged to simtime.AcctCheckpoint, so checkpoint intrusion is visible in
// pause times, MMU curves and the per-account breakdown.
//
// The protocol is the paper's replication idea turned on persistence. An
// epoch begins only at a quiescent pause (no collection in flight): the
// writer pins the mutation log at the collector's pending cursor and starts
// copying the old from-space prefix that existed at begin time. That prefix
// is stable against everything except logged mutation — promotions land
// above it, scan rewrites target the promoting cycle's own region, and flip
// redirections only touch slots with pinned log entries — so the mutation
// log is exactly the write-ahead log the snapshot needs. The copy frontier
// is raised to the current allocation cursor at each quiescent pause; when
// the remainder fits in one budget the epoch commits: tail and nursery are
// copied verbatim, every pinned-entry slot is re-read and written as a WAL
// patch (entries are value-free, so the patch carries the commit-time
// value), and the retained log suffix, roots and scheduling state follow,
// sealed by a fingerprint of the live state. A major flip swaps the old
// semispaces underneath the snapshot, so an epoch that sees one aborts and
// restarts clean.
type Writer struct {
	cfg   Config
	stats Stats

	// The epoch state below is pause-only: PauseCheckpoint runs inside the
	// collector's pause window, and the cursor arithmetic is only sound
	// against a stopped mutator (rule "pauseonly").

	//gclint:pauseonly epoch lifecycle flips only inside the pause that begins, commits or aborts the epoch
	open bool
	//gclint:pauseonly snapshot copy cursor; advances only against a stopped mutator
	cursor uint64
	//gclint:pauseonly stable-prefix frontier; raised only at quiescent pauses
	copyTarget uint64
	//gclint:pauseonly WAL base, fixed when the epoch begins under pause
	walBase int64
	//gclint:pauseonly completed-major count at epoch begin; a change aborts the epoch
	startMajors int
	//gclint:pauseonly allocation volume at epoch begin, for the EveryBytes throttle
	beginAlloc int64
	//gclint:pauseonly pause count of the open epoch
	epochPauses int
	//gclint:pauseonly segment records written so far this epoch
	segCount int

	epoch          uint64 // next epoch number to commit
	lastPatchWords int    // patch pairs in the most recent commit
	retained       []uint64
	snapTmp        *os.File
	snapBuf        *bufio.Writer
	snapRec        *recordWriter

	// lastPoint caches the newest pause-boundary state so ForceCommit can
	// run without a collector callback.
	lastPoint core.CheckpointPoint
}

// NewWriter builds a Writer. The directory is created lazily, when the
// first epoch begins.
func NewWriter(cfg Config) *Writer {
	if cfg.BudgetBytes <= 0 {
		cfg.BudgetBytes = 128 << 10
	}
	if cfg.CommitSlackBytes <= 0 {
		cfg.CommitSlackBytes = 4 * cfg.BudgetBytes
	}
	if cfg.Keep <= 0 {
		cfg.Keep = 2
	}
	return &Writer{cfg: cfg, epoch: 1}
}

// Stats returns a snapshot of the writer's counters.
func (w *Writer) Stats() Stats { return w.stats }

func (w *Writer) snapPath(epoch uint64) string {
	return filepath.Join(w.cfg.Dir, fmt.Sprintf("snap-%08d.ckpt", epoch))
}

func (w *Writer) walPath(epoch uint64) string {
	return filepath.Join(w.cfg.Dir, fmt.Sprintf("wal-%08d.ckpt", epoch))
}

// PauseCheckpoint implements core.Checkpointer. It runs at the tail of
// every collection pause, inside the pause window.
//
//gclint:pauseentry the collector invokes this inside its pause; the snapshot cursor reads the arena un-synchronized
func (w *Writer) PauseCheckpoint(m *core.Mutator, p core.CheckpointPoint) {
	w.lastPoint = p
	if w.open && (p.MajorActive || p.MajorCollections != w.startMajors) {
		// The major will (or did) swap the old semispaces: every segment
		// copied so far describes a space about to become the reserve.
		w.abort(m)
	}
	if !w.open {
		if !p.Quiescent {
			return
		}
		if w.cfg.EveryBytes > 0 && w.stats.Committed > 0 && m.BytesAllocated < w.beginAlloc+w.cfg.EveryBytes {
			return
		}
		if !w.begin(m, p) {
			return
		}
	}
	w.epochPauses++
	if p.Quiescent {
		w.copyTarget = m.H.OldFrom().Next
	}
	budgetWords := uint64(w.cfg.BudgetBytes) / heap.BytesPerWord
	slackWords := uint64(w.cfg.CommitSlackBytes) / heap.BytesPerWord
	if p.Quiescent && w.remainingWords(m) <= slackWords {
		w.commit(m, p)
		return
	}
	w.copyIncrement(m, budgetWords)
}

// ForceCommit drives the open epoch (or a fresh one) to commit inside a
// pause of its own. The collector must be quiescent — call FinishCycles
// first. It guarantees at least one committed epoch on success, regardless
// of budget, so short runs still leave a recoverable artifact.
//
//gclint:pauseentry runs its own Clock.BeginPause/EndPause window around the commit
func (w *Writer) ForceCommit(m *core.Mutator, gc *core.Replicating) error {
	p := gc.CheckpointNow()
	if !p.Quiescent {
		return fmt.Errorf("checkpoint: ForceCommit with a collection in flight (run FinishCycles first)")
	}
	m.Clock.BeginPause()
	m.Trace.PauseBegin(m.Clock.Now())
	m.Trace.PhaseBegin(m.Clock.Now(), trace.PhaseCheckpoint)
	if !w.open {
		w.begin(m, p)
	}
	if w.open {
		w.epochPauses++
		w.copyTarget = m.H.OldFrom().Next
		w.commit(m, p)
	}
	m.Trace.PhaseEnd(m.Clock.Now(), trace.PhaseCheckpoint)
	length := m.Clock.EndPause()
	_ = length
	m.Trace.PauseEnd(m.Clock.Now(), 0, 0, int64(simtime.PauseMinor))
	if w.stats.LastErr != nil {
		return w.stats.LastErr
	}
	return nil
}

// remainingWords is the copying left before the epoch could commit right
// now: the uncopied stable prefix plus the nursery contents that a commit
// captures verbatim.
func (w *Writer) remainingWords(m *core.Mutator) uint64 {
	from := m.H.OldFrom()
	rem := from.Next - w.cursor
	rem += m.H.Nursery.Next - m.H.Nursery.Lo
	return rem
}

// fail aborts the epoch on an I/O error. Checkpointing is best-effort
// against the host filesystem: the run continues, the error is surfaced
// through Stats and ForceCommit.
func (w *Writer) fail(m *core.Mutator, err error) {
	w.stats.LastErr = err
	w.abort(m)
}

// abort invalidates the open epoch and releases its log pin.
//
//gclint:io closes and removes the aborted epoch's temporary snapshot file
func (w *Writer) abort(m *core.Mutator) {
	if !w.open {
		return
	}
	if w.snapTmp != nil {
		w.snapTmp.Close()
		os.Remove(w.snapTmp.Name())
		w.snapTmp, w.snapBuf, w.snapRec = nil, nil, nil
	}
	m.Log.Unpin()
	w.open = false
	w.stats.Aborted++
}

// begin opens a new epoch at a quiescent pause: pin the log at the
// collector's pending cursor (everything a restored run must re-consume or
// patch is at or above it) and start the snapshot file.
//
//gclint:io creates the artifact directory and the epoch's temporary snapshot file
func (w *Writer) begin(m *core.Mutator, p core.CheckpointPoint) bool {
	if err := os.MkdirAll(w.cfg.Dir, 0o777); err != nil {
		w.stats.LastErr = err
		return false
	}
	f, err := os.Create(w.snapPath(w.epoch) + ".tmp")
	if err != nil {
		w.stats.LastErr = err
		return false
	}
	w.snapTmp = f
	w.snapBuf = bufio.NewWriterSize(f, 1<<16)
	w.snapRec = newRecordWriter(w.snapBuf)

	w.open = true
	w.walBase = p.MinorLogCursor
	m.Log.Pin(w.walBase)
	w.startMajors = p.MajorCollections
	w.cursor = m.H.OldFrom().Lo
	w.copyTarget = m.H.OldFrom().Next
	w.beginAlloc = m.BytesAllocated
	w.epochPauses = 0
	w.segCount = 0

	cfg := heapConfigOf(m.H)
	var e enc
	e.u64(version)
	e.u64(w.epoch)
	e.i64(w.walBase)
	e.i64(cfg.NurseryBytes)
	e.i64(cfg.NurseryCapBytes)
	e.i64(cfg.OldSemiBytes)
	if m.H.OldFrom().Name == "oldB" {
		e.u8(1)
	} else {
		e.u8(0)
	}
	w.snapRec.writeMagic(snapMagic)
	w.snapRec.record(recSnapHeader, e.b)
	if w.snapRec.err != nil {
		w.fail(m, w.snapRec.err)
		return false
	}
	return true
}

// writeSegment frames one contiguous run of arena words and charges its
// copying cost to the checkpoint account.
func (w *Writer) writeSegment(m *core.Mutator, space uint8, start, count uint64) {
	if count == 0 || w.snapRec == nil {
		return
	}
	var e enc
	e.u8(space)
	e.u64(start)
	e.u64(count)
	for _, word := range m.H.Arena[start : start+count] {
		e.u64(uint64(word))
	}
	w.snapRec.record(recSegment, e.b)
	w.segCount++
	w.stats.WordsCopied += int64(count)
	m.Clock.Charge(simtime.AcctCheckpoint, simtime.Duration(count)*m.Cost.CopyWord)
}

// copyIncrement advances the snapshot cursor by at most budgetWords.
func (w *Writer) copyIncrement(m *core.Mutator, budgetWords uint64) {
	if w.cursor >= w.copyTarget {
		return
	}
	n := w.copyTarget - w.cursor
	if n > budgetWords {
		n = budgetWords
	}
	w.writeSegment(m, spaceOldFrom, w.cursor, n)
	w.cursor += n
	if w.snapRec != nil && w.snapRec.err != nil {
		w.fail(m, w.snapRec.err)
	}
}

// commit seals the epoch: copy the stable-prefix tail and the nursery,
// finish the snapshot, write the WAL (patches, retained log, roots,
// scheduling state, fingerprint), and atomically publish both files.
//
//gclint:io finishes, fsync-renames and prunes the epoch's artifact files
func (w *Writer) commit(m *core.Mutator, p core.CheckpointPoint) {
	from := m.H.OldFrom()
	if w.cursor < from.Next {
		w.writeSegment(m, spaceOldFrom, w.cursor, from.Next-w.cursor)
		w.cursor = from.Next
	}
	w.writeSegment(m, spaceNursery, m.H.Nursery.Lo, m.H.Nursery.Next-m.H.Nursery.Lo)

	var e enc
	e.u64(uint64(w.segCount))
	w.snapRec.record(recSnapFooter, e.b)
	if w.snapRec.err != nil {
		w.fail(m, w.snapRec.err)
		return
	}
	if err := w.snapBuf.Flush(); err != nil {
		w.fail(m, err)
		return
	}
	snapBytes := w.snapRec.n
	if err := w.snapTmp.Close(); err != nil {
		w.fail(m, err)
		return
	}
	tmpName := w.snapTmp.Name()
	w.snapTmp, w.snapBuf, w.snapRec = nil, nil, nil

	st := captureState(m, p)
	fp := st.fingerprint()
	walBytes, err := w.writeWAL(m, st, fp)
	if err != nil {
		os.Remove(tmpName)
		w.fail(m, err)
		return
	}
	if err := os.Rename(tmpName, w.snapPath(w.epoch)); err != nil {
		w.fail(m, err)
		return
	}
	if err := os.Rename(w.walPath(w.epoch)+".tmp", w.walPath(w.epoch)); err != nil {
		w.fail(m, err)
		return
	}

	m.Log.Unpin()
	w.open = false
	info := EpochInfo{
		Epoch:       w.epoch,
		Fingerprint: fp,
		SnapBytes:   snapBytes,
		WALBytes:    walBytes,
		PatchWords:  w.lastPatchWords,
		LogEntries:  len(st.logEntries),
		Pauses:      w.epochPauses,
	}
	w.stats.Committed++
	w.stats.SnapshotBytes += snapBytes
	w.stats.WALBytes += walBytes
	w.stats.Epochs = append(w.stats.Epochs, info)
	w.retained = append(w.retained, w.epoch)
	w.prune()
	w.epoch++
}

// patchSet materialises the WAL patch list: the deduplicated, sorted arena
// indices covered by every pinned log entry, paired with their commit-time
// values. Only words inside the snapshot's segments are kept — a logged
// slot whose object died (its nursery words recycled by a later cycle) is
// not part of the restored image.
func (w *Writer) patchSet(m *core.Mutator) []patch {
	lo := w.walBase
	if b := m.Log.Base(); b > lo {
		lo = b
	}
	var idxs []uint64
	for seq := lo; seq < m.Log.Len(); seq++ {
		e := m.Log.At(seq)
		if e.Byte {
			first := heap.WordIndex(e.Obj, int(e.Slot)/heap.BytesPerWord)
			last := heap.WordIndex(e.Obj, int(e.Slot+e.Len-1)/heap.BytesPerWord)
			for idx := first; idx <= last; idx++ {
				idxs = append(idxs, idx)
			}
		} else {
			idxs = append(idxs, heap.WordIndex(e.Obj, int(e.Slot)))
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	from, nur := m.H.OldFrom(), &m.H.Nursery
	out := make([]patch, 0, len(idxs))
	var prev uint64
	for i, idx := range idxs {
		if i > 0 && idx == prev {
			continue
		}
		prev = idx
		inFrom := idx >= from.Lo && idx < from.Next
		inNursery := idx >= nur.Lo && idx < nur.Next
		if !inFrom && !inNursery {
			continue
		}
		out = append(out, patch{idx: idx, val: m.H.Arena[idx]})
	}
	return out
}

type patch struct {
	idx uint64
	val heap.Value
}

// writeWAL writes the epoch's write-ahead log to its temporary file and
// returns the byte count.
//
//gclint:io creates and fills the epoch's temporary WAL file
func (w *Writer) writeWAL(m *core.Mutator, st *state, fp uint64) (int64, error) {
	f, err := os.Create(w.walPath(w.epoch) + ".tmp")
	if err != nil {
		return 0, err
	}
	buf := bufio.NewWriterSize(f, 1<<16)
	rw := newRecordWriter(buf)
	rw.writeMagic(walMagic)

	var e enc
	e.u64(w.epoch)
	rw.record(recWALHeader, e.b)

	e = enc{}
	e.u64(st.nurseryHi)
	e.u64(st.nurseryNext)
	e.u64(st.fromHi)
	e.u64(st.fromNext)
	e.u64(st.toHi)
	e.u64(st.toNext)
	rw.record(recSpaces, e.b)

	patches := w.patchSet(m)
	w.lastPatchWords = len(patches)
	w.stats.PatchWords += int64(len(patches))
	e = enc{}
	e.u64(uint64(len(patches)))
	for _, p := range patches {
		e.u64(p.idx)
		e.u64(uint64(p.val))
	}
	rw.record(recPatch, e.b)
	m.Clock.Charge(simtime.AcctCheckpoint, simtime.Duration(len(patches))*m.Cost.LogWrite)

	e = enc{}
	e.i64(st.logBase)
	e.u64(uint64(len(st.logEntries)))
	for _, le := range st.logEntries {
		e.u64(uint64(le.Obj))
		e.u64(uint64(uint32(le.Slot)))
		e.u64(uint64(uint32(le.Len)))
		if le.Byte {
			e.u8(1)
		} else {
			e.u8(0)
		}
	}
	rw.record(recLog, e.b)
	m.Clock.Charge(simtime.AcctCheckpoint, simtime.Duration(len(st.logEntries))*m.Cost.LogWrite)

	e = enc{}
	e.u64(uint64(len(st.roots)))
	for _, r := range st.roots {
		e.u64(uint64(r))
	}
	rw.record(recRoots, e.b)
	m.Clock.Charge(simtime.AcctCheckpoint, simtime.Duration(len(st.roots))*m.Cost.RootUpdate)

	e = enc{}
	e.i64(st.bytesAllocated)
	e.i64(st.logWrites)
	e.i64(st.minorLogCursor)
	e.i64(st.promotedSinceMajor)
	e.i64(st.promoHighWater)
	rw.record(recSched, e.b)

	e = enc{}
	e.u64(fp)
	rw.record(recCommit, e.b)

	if rw.err != nil {
		f.Close()
		os.Remove(f.Name())
		return 0, rw.err
	}
	if err := buf.Flush(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return 0, err
	}
	return rw.n, nil
}

// prune deletes committed epochs beyond the retention window.
//
//gclint:io deletes artifact files of epochs beyond the retention window
func (w *Writer) prune() {
	if n := len(w.retained); n > w.cfg.Keep {
		for _, old := range w.retained[:n-w.cfg.Keep] {
			os.Remove(w.snapPath(old))
			os.Remove(w.walPath(old))
		}
		w.retained = append(w.retained[:0], w.retained[n-w.cfg.Keep:]...)
	}
}

// TempDir creates a scratch artifact directory for callers — benchmarks,
// smoke tests — that are not themselves on the I/O boundary, and returns it
// with a cleanup function. The checkpoint package owns all artifact-dir
// lifecycle so filesystem access stays confined here.
//
//gclint:io owns throwaway checkpoint artifact directories and their cleanup
func TempDir(pattern string) (string, func(), error) {
	dir, err := os.MkdirTemp("", pattern)
	if err != nil {
		return "", nil, err
	}
	return dir, func() { os.RemoveAll(dir) }, nil
}
