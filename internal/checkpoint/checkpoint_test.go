package checkpoint

import (
	"errors"
	"testing"
	"testing/quick"

	"repligc/internal/core"
	"repligc/internal/faultinject"
	"repligc/internal/gctest"
	"repligc/internal/heap"
	"repligc/internal/simtime"
	"repligc/internal/trace"
)

// buildRun constructs a traced runtime with a checkpoint writer attached.
func buildRun(t *testing.T, dir string, budget int64) (*core.Mutator, *core.Replicating, *Writer, *trace.Recorder) {
	t.Helper()
	hcfg, ccfg := matrixHeapConfig()
	h := heap.New(hcfg)
	clock := simtime.NewClock()
	m := core.NewMutator(h, clock, simtime.Default1993(), core.LogAllMutations)
	gc := core.NewReplicating(h, ccfg)
	m.AttachGC(gc)
	tr := trace.NewRecorder(1 << 20)
	m.Trace = tr
	gc.SetTrace(tr)
	w := NewWriter(Config{Dir: dir, BudgetBytes: budget})
	gc.SetCheckpointer(w)
	return m, gc, w, tr
}

// TestRoundTrip is the core tentpole property: drive a workload through
// many incremental checkpoint epochs, recover from the artifacts, and the
// restored state must be fingerprint-identical to what the writer hashed
// from the live heap at commit — with a clean audit and a working collector
// afterwards.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, gc, w, tr := buildRun(t, dir, 8<<10)

	d := gctest.NewDriver(m, 42)
	if err := d.Step(20000); err != nil {
		t.Fatalf("driver: %v", err)
	}
	if err := d.Verify(); err != nil {
		t.Fatalf("shadow verify: %v", err)
	}
	if err := gc.FinishCycles(m); err != nil {
		t.Fatalf("FinishCycles: %v", err)
	}
	if err := w.ForceCommit(m, gc); err != nil {
		t.Fatalf("ForceCommit: %v", err)
	}
	st := w.Stats()
	if st.Committed == 0 {
		t.Fatal("no epochs committed")
	}
	t.Logf("epochs=%d aborted=%d copied=%d words, patches=%d, snapBytes=%d walBytes=%d",
		st.Committed, st.Aborted, st.WordsCopied, st.PatchWords, st.SnapshotBytes, st.WALBytes)

	r, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	want, ok := epochFingerprint(w, r.Epoch)
	if !ok {
		t.Fatalf("recovered epoch %d never committed", r.Epoch)
	}
	if r.Fingerprint != want {
		t.Fatalf("fingerprint %#x, want %#x", r.Fingerprint, want)
	}

	// The recovered image must be bit-identical to the live heap over the
	// captured ranges (the fingerprint already implies this; compare
	// directly so a hash collision cannot mask a divergence in this test).
	h := m.H
	from := h.OldFrom()
	rfrom := r.Heap.OldFrom()
	if from.Next != rfrom.Next || from.Hi != rfrom.Hi {
		t.Fatalf("old-from geometry: live next=%d hi=%d, restored next=%d hi=%d",
			from.Next, from.Hi, rfrom.Next, rfrom.Hi)
	}
	for i := from.Lo; i < from.Next; i++ {
		if h.Arena[i] != r.Heap.Arena[i] {
			t.Fatalf("old-from word %d: live %#x, restored %#x", i, h.Arena[i], r.Heap.Arena[i])
		}
	}
	for i := h.Nursery.Lo; i < h.Nursery.Next; i++ {
		if h.Arena[i] != r.Heap.Arena[i] {
			t.Fatalf("nursery word %d: live %#x, restored %#x", i, h.Arena[i], r.Heap.Arena[i])
		}
	}

	m2, gc2 := rebuild(r)
	if err := core.AuditHeap(m2); err != nil {
		t.Fatalf("post-recovery audit: %v", err)
	}
	if err := probeRecovered(m2, gc2); err != nil {
		t.Fatalf("probe: %v", err)
	}

	// The run's trace must validate with the checkpoint phase present.
	events := tr.Events()
	if err := trace.Validate(events); err != nil {
		t.Fatalf("trace validate: %v", err)
	}
	saw := false
	for _, e := range events {
		if e.Kind == trace.KindPhaseBegin && e.Phase == trace.PhaseCheckpoint {
			saw = true
			break
		}
	}
	if !saw {
		t.Fatal("no checkpoint phase spans in the trace")
	}
	if m.Clock.AccountTotal(simtime.AcctCheckpoint) <= 0 {
		t.Fatal("no time charged to the checkpoint account")
	}
}

// TestEpochsSpanMultiplePauses checks the incrementality claim: with a
// small budget, committed epochs spread their copying across several
// pauses rather than dumping the heap in one.
func TestEpochsSpanMultiplePauses(t *testing.T) {
	dir := t.TempDir()
	m, gc, w, _ := buildRun(t, dir, 2<<10)
	d := gctest.NewDriver(m, 7)
	if err := d.Step(8000); err != nil {
		t.Fatalf("driver: %v", err)
	}
	if err := gc.FinishCycles(m); err != nil {
		t.Fatalf("FinishCycles: %v", err)
	}
	if err := w.ForceCommit(m, gc); err != nil {
		t.Fatalf("ForceCommit: %v", err)
	}
	multi := 0
	for _, e := range w.Stats().Epochs {
		if e.Pauses > 1 {
			multi++
		}
	}
	if w.Stats().Committed > 2 && multi == 0 {
		t.Fatalf("every one of %d epochs committed in a single pause under a 2 KB budget", w.Stats().Committed)
	}
}

// TestRecoverFromCrashes runs the deterministic crash-point matrix and
// requires every cell to land on the contract: fingerprint-verified
// recovery or typed corruption, never anything else.
func TestRecoverFromCrashes(t *testing.T) {
	rep, err := RunCrashMatrix(MatrixConfig{
		Seeds:     []uint64{1, 2, 3},
		OpsPerRun: 4000,
		Plans:     faultinject.CrashPlans(0xc0ffee, 12),
	})
	if err != nil {
		t.Fatalf("matrix: %v", err)
	}
	outcomes := map[string]int{}
	for _, c := range rep.Cases {
		t.Logf("seed=%d plan=%s outcome=%s epoch=%d err=%q", c.Seed, c.Plan, c.Outcome, c.Epoch, c.Err)
		if c.Failed {
			t.Errorf("cell failed: seed=%d plan=%s outcome=%s: %s", c.Seed, c.Plan, c.Outcome, c.Err)
		}
		outcomes[c.Outcome]++
	}
	if rep.Epochs == 0 {
		t.Fatal("reference runs committed no epochs")
	}
	// The matrix must exercise both contractual endings: fallback recovery
	// from surviving epochs and typed rejection when nothing intact remains.
	if outcomes["recovered"] == 0 || outcomes["corrupt-detected"] == 0 {
		t.Fatalf("matrix did not cover both contract outcomes: %v", outcomes)
	}
}

// TestPostRestoreOOMRecovery is the quick-checked degradation property: a
// recovered runtime squeezed to an arbitrary (generated) headroom and
// allocation size must walk the ladder to a typed *core.OOMError — never a
// panic or an untyped failure — and come back once headroom is restored.
func TestPostRestoreOOMRecovery(t *testing.T) {
	dir := t.TempDir()
	m, gc, w, _ := buildRun(t, dir, 8<<10)
	d := gctest.NewDriver(m, 11)
	if err := d.Step(6000); err != nil {
		t.Fatalf("driver: %v", err)
	}
	if err := gc.FinishCycles(m); err != nil {
		t.Fatalf("FinishCycles: %v", err)
	}
	if err := w.ForceCommit(m, gc); err != nil {
		t.Fatalf("ForceCommit: %v", err)
	}

	prop := func(slackSeed uint16, sizeSeed uint8) bool {
		r, err := Recover(dir)
		if err != nil {
			t.Logf("recover: %v", err)
			return false
		}
		m2, gc2 := rebuild(r)
		_ = gc2
		slack := int64(slackSeed%2048) + 64
		words := int(sizeSeed%32) + 1
		h := r.Heap
		h.Nursery.SetLimitBytes(h.Nursery.UsedBytes() + slack)
		h.OldFrom().SetLimitBytes(h.OldFrom().UsedBytes() + slack)
		h.OldTo().SetLimitBytes(h.OldTo().UsedBytes() + slack)

		// Live allocations (pinned on the shadow stack) must exhaust the
		// shrunk heap and surface the typed OOM rung.
		mark := m2.HandleMark()
		sawOOM := false
		for i := 0; i < 1<<16; i++ {
			v, err := m2.Alloc(heap.KindArray, words)
			if err != nil {
				var oom *core.OOMError
				if !errors.As(err, &oom) {
					t.Logf("slack=%d words=%d: untyped alloc error: %v", slack, words, err)
					return false
				}
				sawOOM = true
				break
			}
			m2.PushHandle(v)
		}
		if !sawOOM {
			t.Logf("slack=%d words=%d: shrunk heap never reached OOM", slack, words)
			return false
		}

		// Release the pinned garbage, restore headroom: allocation recovers.
		m2.PopHandles(mark)
		for _, s := range []*heap.Space{&h.Nursery, h.OldFrom(), h.OldTo()} {
			s.SetLimitBytes(int64(s.Cap-s.Lo) * heap.BytesPerWord)
		}
		if _, err := m2.Alloc(heap.KindArray, words); err != nil {
			t.Logf("slack=%d words=%d: alloc after headroom restore: %v", slack, words, err)
			return false
		}
		if err := core.AuditHeap(m2); err != nil {
			t.Logf("slack=%d words=%d: post-ladder audit: %v", slack, words, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 16}); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverEmptyDir pins the no-artifact behaviour: a typed error.
func TestRecoverEmptyDir(t *testing.T) {
	_, err := Recover(t.TempDir())
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Recover on empty dir: %v (want *CorruptError)", err)
	}
}
