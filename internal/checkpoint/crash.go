package checkpoint

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"repligc/internal/faultinject"
)

// ApplyCrash damages the newest epoch's artifact in dir according to plan.
// It is the bridge between faultinject's pure-data crash plans and the
// filesystem: truncation simulates a kill at byte k of a write, a torn word
// simulates a damaged sector, a duplicated record simulates a replayed
// buffer flush. It reports the damaged path.
func ApplyCrash(dir string, plan faultinject.CrashPlan) (string, error) {
	epochs, err := Epochs(dir)
	if err != nil {
		return "", err
	}
	if len(epochs) == 0 {
		return "", fmt.Errorf("checkpoint: no epochs in %s to crash", dir)
	}
	return applyCrashEpoch(dir, epochs[len(epochs)-1], plan)
}

// ApplyCrashAll damages the targeted artifact of every retained epoch —
// the no-fallback scenario, where recovery has nothing intact left and must
// fail with a typed *CorruptError rather than hand back a damaged heap.
func ApplyCrashAll(dir string, plan faultinject.CrashPlan) error {
	epochs, err := Epochs(dir)
	if err != nil {
		return err
	}
	if len(epochs) == 0 {
		return fmt.Errorf("checkpoint: no epochs in %s to crash", dir)
	}
	for _, epoch := range epochs {
		if _, err := applyCrashEpoch(dir, epoch, plan); err != nil {
			return err
		}
	}
	return nil
}

// applyCrashEpoch damages one epoch's targeted artifact.
//
//gclint:io rewrites one checkpoint artifact in place to simulate crash damage
func applyCrashEpoch(dir string, epoch uint64, plan faultinject.CrashPlan) (string, error) {
	name := fmt.Sprintf("snap-%08d.ckpt", epoch)
	if plan.Target == faultinject.CrashWAL {
		name = fmt.Sprintf("wal-%08d.ckpt", epoch)
	}
	path := filepath.Join(dir, name)

	data, err := os.ReadFile(path)
	if err != nil {
		return path, err
	}
	if len(data) == 0 {
		return path, fmt.Errorf("checkpoint: empty artifact %s", path)
	}
	at := int(plan.Fraction * float64(len(data)))
	if at >= len(data) {
		at = len(data) - 1
	}

	switch plan.Kind {
	case faultinject.CrashTruncate:
		data = data[:at]
	case faultinject.CrashTornWord:
		word := at &^ 7
		if word+8 > len(data) {
			word = (len(data) - 8) &^ 7
		}
		if word < 0 {
			word = 0
		}
		end := word + 8
		if end > len(data) {
			end = len(data)
		}
		var buf [8]byte
		copy(buf[:], data[word:end])
		v := binary.LittleEndian.Uint64(buf[:]) ^ plan.Mask
		binary.LittleEndian.PutUint64(buf[:], v)
		copy(data[word:end], buf[:end-word])
	case faultinject.CrashDuplicateRecord:
		// Re-append the framed record that spans the damage site (falling
		// back to a raw byte range when no frame parses there), yielding a
		// file whose checksums are all intact but whose record ordinals
		// repeat.
		lo, hi := recordSpanAt(data, at)
		dup := append([]byte(nil), data[lo:hi]...)
		data = append(data, dup...)
	default:
		return path, fmt.Errorf("checkpoint: unknown crash kind %v", plan.Kind)
	}
	return path, os.WriteFile(path, data, 0o666)
}

// recordSpanAt walks the record framing from the top of the file and
// returns the [lo, hi) byte range of the record covering offset at. When
// framing does not parse (already-damaged input), it returns a fixed-width
// window around at.
func recordSpanAt(data []byte, at int) (int, int) {
	off := 8 // past the magic
	for off+13 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off+5 : off+9]))
		end := off + 9 + n + 4
		if n < 0 || n > 1<<30 || end > len(data) {
			break
		}
		if at < end {
			return off, end
		}
		off = end
	}
	lo := at - 32
	if lo < 0 {
		lo = 0
	}
	hi := at + 32
	if hi > len(data) {
		hi = len(data)
	}
	return lo, hi
}

// CloneDir copies every checkpoint artifact from src into dst (created if
// needed), so a crash can be applied to a copy while the pristine reference
// artifacts survive for comparison.
//
//gclint:io duplicates the artifact directory for destructive crash testing
func CloneDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o777); err != nil {
		return err
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o666); err != nil {
			return err
		}
	}
	return nil
}
