package checkpoint

import (
	"repligc/internal/core"
	"repligc/internal/heap"
)

// state is the canonical tuple a checkpoint preserves. The writer fills one
// from the live run at commit time and fingerprints it; recovery rebuilds
// one from the artifacts and fingerprints it again. Equality of the two
// fingerprints is the "bit-identical to the uncrashed run" guarantee: both
// sides hash the same logical fields in the same order, so any divergence —
// a missed patch, a stale segment, a mis-restored cursor — changes the hash.
type state struct {
	cfg      heap.Config
	fromOldB bool // old from-space is oldB (a major has flipped an odd number of times)

	// Space geometry: soft limit and allocation cursor for the nursery and
	// both old semispaces, in canonical (from, to) order.
	nurseryHi, nurseryNext uint64
	fromHi, fromNext       uint64
	toHi, toNext           uint64

	fromWords    []heap.Value // old from-space payload [Lo, Next)
	nurseryWords []heap.Value // nursery payload [Lo, Next)
	roots        []heap.Value // root slot values in visit order

	logBase    int64
	logEntries []core.LogEntry

	bytesAllocated     int64
	logWrites          int64
	minorLogCursor     int64
	promotedSinceMajor int64
	promoHighWater     int64
}

// captureState snapshots the canonical tuple from a live, quiescent run.
func captureState(m *core.Mutator, p core.CheckpointPoint) *state {
	h := m.H
	from, to := h.OldFrom(), h.OldTo()
	s := &state{
		cfg:                heapConfigOf(h),
		fromOldB:           from.Name == "oldB",
		nurseryHi:          h.Nursery.Hi,
		nurseryNext:        h.Nursery.Next,
		fromHi:             from.Hi,
		fromNext:           from.Next,
		toHi:               to.Hi,
		toNext:             to.Next,
		fromWords:          append([]heap.Value(nil), h.Arena[from.Lo:from.Next]...),
		nurseryWords:       append([]heap.Value(nil), h.Arena[h.Nursery.Lo:h.Nursery.Next]...),
		logBase:            p.MinorLogCursor,
		bytesAllocated:     m.BytesAllocated,
		logWrites:          m.LogWrites,
		minorLogCursor:     p.MinorLogCursor,
		promotedSinceMajor: p.PromotedSinceMajor,
		promoHighWater:     p.PromoHighWater,
	}
	m.Roots.Visit(func(slot *heap.Value) { s.roots = append(s.roots, *slot) })
	for seq := p.MinorLogCursor; seq < m.Log.Len(); seq++ {
		s.logEntries = append(s.logEntries, m.Log.At(seq))
	}
	return s
}

// heapConfigOf reconstructs the heap.Config a heap was built with, from its
// space geometry (Lo/Cap are construction-time constants).
func heapConfigOf(h *heap.Heap) heap.Config {
	nCap := int64(h.Nursery.Cap-h.Nursery.Lo) * heap.BytesPerWord
	from, to := h.OldFrom(), h.OldTo()
	oldSemi := int64(from.Cap-from.Lo) * heap.BytesPerWord
	if alt := int64(to.Cap-to.Lo) * heap.BytesPerWord; alt > oldSemi {
		oldSemi = alt
	}
	return heap.Config{
		// NurseryBytes is the *initial* soft limit; it only matters as a
		// floor for heap.New, which the restore overrides with the
		// recorded Hi anyway. Use the capacity so New never rejects it.
		NurseryBytes:    nCap,
		NurseryCapBytes: nCap,
		OldSemiBytes:    oldSemi,
	}
}

// fingerprint hashes the canonical tuple with FNV-1a 64.
func (s *state) fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	fp := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			fp ^= v & 0xff
			fp *= prime64
			v >>= 8
		}
	}
	mixBool := func(b bool) {
		if b {
			mix(1)
		} else {
			mix(0)
		}
	}
	mix(uint64(s.cfg.NurseryBytes))
	mix(uint64(s.cfg.NurseryCapBytes))
	mix(uint64(s.cfg.OldSemiBytes))
	mixBool(s.fromOldB)
	mix(s.nurseryHi)
	mix(s.nurseryNext)
	mix(s.fromHi)
	mix(s.fromNext)
	mix(s.toHi)
	mix(s.toNext)
	mix(uint64(len(s.fromWords)))
	for _, w := range s.fromWords {
		mix(uint64(w))
	}
	mix(uint64(len(s.nurseryWords)))
	for _, w := range s.nurseryWords {
		mix(uint64(w))
	}
	mix(uint64(len(s.roots)))
	for _, r := range s.roots {
		mix(uint64(r))
	}
	mix(uint64(s.logBase))
	mix(uint64(len(s.logEntries)))
	for _, e := range s.logEntries {
		mix(uint64(e.Obj))
		mix(uint64(uint32(e.Slot)))
		mix(uint64(uint32(e.Len)))
		mixBool(e.Byte)
	}
	mix(uint64(s.bytesAllocated))
	mix(uint64(s.logWrites))
	mix(uint64(s.minorLogCursor))
	mix(uint64(s.promotedSinceMajor))
	mix(uint64(s.promoHighWater))
	return fp
}
