// Package checkpoint implements crash-consistent incremental checkpointing
// for the replication collector. It applies the paper's own replication idea
// to persistence: a snapshot writer copies the stable prefix of the old
// from-space in bounded increments at pause boundaries — charged to the
// simulated clock like any other pause work, so checkpoint intrusion shows
// up honestly in pause times and MMU curves — while the mutation log doubles
// as a write-ahead log that patches every slot mutated after its snapshot
// segment was written. Recovery loads the newest complete snapshot, replays
// the WAL tail, and yields a heap whose fingerprint is bit-identical to the
// state the writer fingerprinted at commit time; any damage surfaces as a
// typed *CorruptError, never as a silently wrong heap.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// File format. Both artifact files are sequences of framed records:
//
//	frame := seq u32 | type u8 | payloadLen u32 | payload | crc u32
//
// where crc is the IEEE CRC-32 of everything before it in the frame. The
// sequence number is the record's ordinal within its file; readers require
// consecutive ordinals, so a duplicated or reordered record is detected even
// when its checksum is intact. All integers are little-endian.
const (
	snapMagic = "RGCSNAP1" // snapshot file magic
	walMagic  = "RGCWAL\x001"  // WAL file magic
	version   = 1
)

// Record types.
const (
	recSnapHeader uint8 = iota + 1 // version, epoch, walBase, heap config, from-space name
	recSegment                     // space id, start word, word count, payload words
	recSnapFooter                  // segment count (snapshot completeness marker)
	recWALHeader                   // epoch
	recSpaces                      // Hi and Next for nursery and both old semispaces
	recPatch                       // (arena index, value) pairs: commit-time values of logged slots
	recLog                         // retained mutation-log entries
	recRoots                       // root slot values in visit order
	recSched                       // mutator and collector scheduling state
	recCommit                      // record count, state fingerprint (WAL completeness marker)
)

// Space ids used by segment records.
const (
	spaceOldFrom uint8 = iota
	spaceNursery
)

// CorruptError is the typed error for any damaged, truncated, or
// inconsistent checkpoint artifact. Recovery either succeeds with a
// fingerprint-verified heap or fails with one of these; there is no third
// outcome.
type CorruptError struct {
	Path   string // offending file (may be a directory for "no usable epoch")
	Detail string // what was wrong
	Err    error  // underlying cause, if any
}

// Error implements error.
func (e *CorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("checkpoint: %s: %s: %v", e.Path, e.Detail, e.Err)
	}
	return fmt.Sprintf("checkpoint: %s: %s", e.Path, e.Detail)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *CorruptError) Unwrap() error { return e.Err }

func corrupt(path, format string, args ...any) *CorruptError {
	return &CorruptError{Path: path, Detail: fmt.Sprintf(format, args...)}
}

// recordWriter frames records onto an io.Writer, numbering them.
type recordWriter struct {
	w   io.Writer
	seq uint32
	n   int64 // bytes written, including magic
	err error
}

func newRecordWriter(w io.Writer) *recordWriter { return &recordWriter{w: w} }

func (rw *recordWriter) writeMagic(magic string) {
	if rw.err != nil {
		return
	}
	var n int
	n, rw.err = rw.w.Write([]byte(magic))
	rw.n += int64(n)
}

// record frames one payload. The payload slice is not retained.
func (rw *recordWriter) record(typ uint8, payload []byte) {
	if rw.err != nil {
		return
	}
	hdr := make([]byte, 9)
	binary.LittleEndian.PutUint32(hdr[0:], rw.seq)
	hdr[4] = typ
	binary.LittleEndian.PutUint32(hdr[5:], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(hdr)
	crc.Write(payload)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	for _, part := range [][]byte{hdr, payload, sum[:]} {
		var n int
		n, rw.err = rw.w.Write(part)
		rw.n += int64(n)
		if rw.err != nil {
			return
		}
	}
	rw.seq++
}

// recordReader parses framed records, enforcing consecutive ordinals and
// checksums. Every malformation maps to *CorruptError.
type recordReader struct {
	r    io.Reader
	path string
	seq  uint32
}

func newRecordReader(r io.Reader, path string) *recordReader {
	return &recordReader{r: r, path: path}
}

func (rr *recordReader) readMagic(magic string) error {
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(rr.r, got); err != nil {
		return &CorruptError{Path: rr.path, Detail: "short magic", Err: err}
	}
	if string(got) != magic {
		return corrupt(rr.path, "bad magic %q", got)
	}
	return nil
}

// next returns the next record. io.EOF (untyped) signals a clean end of
// file; any other problem is a *CorruptError.
func (rr *recordReader) next() (typ uint8, payload []byte, err error) {
	hdr := make([]byte, 9)
	if _, err := io.ReadFull(rr.r, hdr); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, &CorruptError{Path: rr.path, Detail: "truncated record header", Err: err}
	}
	seq := binary.LittleEndian.Uint32(hdr[0:])
	typ = hdr[4]
	n := binary.LittleEndian.Uint32(hdr[5:])
	if n > 1<<30 {
		return 0, nil, corrupt(rr.path, "record %d: implausible length %d", seq, n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(rr.r, payload); err != nil {
		return 0, nil, &CorruptError{Path: rr.path, Detail: "truncated record payload", Err: err}
	}
	var sum [4]byte
	if _, err := io.ReadFull(rr.r, sum[:]); err != nil {
		return 0, nil, &CorruptError{Path: rr.path, Detail: "truncated record checksum", Err: err}
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr)
	crc.Write(payload)
	if crc.Sum32() != binary.LittleEndian.Uint32(sum[:]) {
		return 0, nil, corrupt(rr.path, "record %d (type %d): checksum mismatch", seq, typ)
	}
	if seq != rr.seq {
		return 0, nil, corrupt(rr.path, "record ordinal %d, want %d (duplicated or reordered record)", seq, rr.seq)
	}
	rr.seq++
	return typ, payload, nil
}

// enc is a little append-based encoder for record payloads.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }

// dec decodes a record payload; it remembers the first failure.
type dec struct {
	b    []byte
	path string
	err  error
}

func (d *dec) u8() uint8 {
	if d.err == nil && len(d.b) < 1 {
		d.err = corrupt(d.path, "payload underflow")
	}
	if d.err != nil {
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err == nil && len(d.b) < 8 {
		d.err = corrupt(d.path, "payload underflow")
	}
	if d.err != nil {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) i64() int64 { return int64(d.u64()) }

func (d *dec) done() error {
	if d.err == nil && len(d.b) != 0 {
		d.err = corrupt(d.path, "%d trailing payload bytes", len(d.b))
	}
	return d.err
}
