package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repligc/internal/core"
	"repligc/internal/faultinject"
	"repligc/internal/gctest"
	"repligc/internal/heap"
	"repligc/internal/simtime"
)

// MatrixConfig parameterises the crash-point matrix: workload seeds × crash
// plans, all deterministic, so a failing cell replays exactly.
type MatrixConfig struct {
	// Seeds drive the gctest shadow-model workload, one reference run per
	// seed.
	Seeds []uint64
	// OpsPerRun is the workload length before the final forced commit.
	OpsPerRun int
	// Plans are the crash sites applied to each run's artifacts; zero
	// plans means baseline-only (recover the undamaged artifacts).
	Plans []faultinject.CrashPlan
	// BudgetBytes is the writer's per-pause copy budget; small values
	// spread each epoch over many pauses, widening the window the WAL
	// patches must cover. Zero defaults to 16 KB.
	BudgetBytes int64
	// WorkDir hosts the per-case artifact directories. Empty uses a
	// temporary directory that is removed when the matrix finishes.
	WorkDir string
}

// CaseResult is one matrix cell.
type CaseResult struct {
	Seed    uint64 `json:"seed"`
	Plan    string `json:"plan"` // "baseline" for the undamaged control
	Outcome string `json:"outcome"`
	Epoch   uint64 `json:"epoch,omitempty"` // recovered epoch, when recovery succeeded
	Err     string `json:"err,omitempty"`
	Failed  bool   `json:"failed"` // true when the cell violates the contract
}

// MatrixReport aggregates the matrix for the CI artifact.
type MatrixReport struct {
	Schema   string       `json:"schema"`
	Cases    []CaseResult `json:"cases"`
	Failures int          `json:"failures"`
	Epochs   int          `json:"epochs"` // committed epochs across reference runs
}

// MatrixSchema identifies the report format.
const MatrixSchema = "repligc-crash-matrix/1"

// matrixHeapConfig is the small heap the matrix runs on: tight enough that
// the gctest driver provokes minors, promotions and majors within a few
// thousand operations.
func matrixHeapConfig() (heap.Config, core.Config) {
	hcfg := heap.Config{
		NurseryBytes:    16 << 10,
		NurseryCapBytes: 64 << 10,
		OldSemiBytes:    512 << 10,
	}
	ccfg := core.Config{
		NurseryBytes:        16 << 10,
		MajorThresholdBytes: 192 << 10,
		CopyLimitBytes:      8 << 10,
		IncrementalMinor:    true,
		IncrementalMajor:    true,
		// Interleaved pacing multiplies pause-boundary hook points, so
		// epochs spread over many small increments.
		InterleavedTaxPermille: 200,
	}
	return hcfg, ccfg
}

// referenceRun drives one seeded workload with a checkpoint writer attached
// and returns the writer (for its per-epoch fingerprints) and the final
// mutator/collector (for the uncrashed continuation).
func referenceRun(dir string, seed uint64, ops int, budget int64) (*Writer, *core.Mutator, *core.Replicating, error) {
	hcfg, ccfg := matrixHeapConfig()
	h := heap.New(hcfg)
	clock := simtime.NewClock()
	m := core.NewMutator(h, clock, simtime.Default1993(), core.LogAllMutations)
	gc := core.NewReplicating(h, ccfg)
	m.AttachGC(gc)
	w := NewWriter(Config{Dir: dir, BudgetBytes: budget})
	gc.SetCheckpointer(w)

	d := gctest.NewDriver(m, int64(seed))
	if err := d.Step(ops); err != nil {
		return nil, nil, nil, fmt.Errorf("reference run seed %d: %w", seed, err)
	}
	if err := d.Verify(); err != nil {
		return nil, nil, nil, fmt.Errorf("reference run seed %d: shadow verify: %w", seed, err)
	}
	if err := gc.FinishCycles(m); err != nil {
		return nil, nil, nil, err
	}
	if err := w.ForceCommit(m, gc); err != nil {
		return nil, nil, nil, err
	}
	return w, m, gc, nil
}

// rebuild constructs a fresh runtime over restored state.
func rebuild(r *Restored) (*core.Mutator, *core.Replicating) {
	_, ccfg := matrixHeapConfig()
	clock := simtime.NewClock()
	m := core.NewMutator(r.Heap, clock, simtime.Default1993(), core.LogAllMutations)
	gc := core.NewReplicating(r.Heap, ccfg)
	m.AttachGC(gc)
	r.Attach(m, gc)
	return m, gc
}

// probeRecovered exercises a recovered runtime: the heap must audit clean,
// survive continued allocation with collections, and the degradation ladder
// must still end in a typed OOM and come back after headroom is restored.
func probeRecovered(m *core.Mutator, gc *core.Replicating) error {
	if err := core.AuditHeap(m); err != nil {
		return fmt.Errorf("post-recovery audit: %w", err)
	}
	for i := 0; i < 512; i++ {
		if _, err := m.Alloc(heap.KindArray, 4); err != nil {
			return fmt.Errorf("post-recovery alloc %d: %w", i, err)
		}
	}
	if err := gc.FinishCycles(m); err != nil {
		return fmt.Errorf("post-recovery FinishCycles: %w", err)
	}
	if err := core.AuditHeap(m); err != nil {
		return fmt.Errorf("post-continuation audit: %w", err)
	}

	// Degradation ladder: shrink every space to near its current use; the
	// ladder must degrade to a typed *core.OOMError, never a panic or a
	// silent corruption.
	h := m.H
	h.Nursery.SetLimitBytes(h.Nursery.UsedBytes() + 256)
	h.OldFrom().SetLimitBytes(h.OldFrom().UsedBytes() + 256)
	h.OldTo().SetLimitBytes(h.OldTo().UsedBytes() + 256)
	var oom *core.OOMError
	sawOOM := false
	for i := 0; i < 4096; i++ {
		if _, err := m.Alloc(heap.KindArray, 16); err != nil {
			if !errors.As(err, &oom) {
				return fmt.Errorf("ladder surfaced a non-typed error: %w", err)
			}
			sawOOM = true
			break
		}
	}
	if !sawOOM {
		return fmt.Errorf("shrunk heap never reached the typed OOM rung")
	}
	// RestoreHeadroom: limits back to capacity, allocation must recover.
	for _, s := range []*heap.Space{&h.Nursery, h.OldFrom(), h.OldTo()} {
		s.SetLimitBytes(int64(s.Cap-s.Lo) * heap.BytesPerWord)
	}
	if _, err := m.Alloc(heap.KindArray, 16); err != nil {
		return fmt.Errorf("alloc after headroom restore: %w", err)
	}
	if err := core.AuditHeap(m); err != nil {
		return fmt.Errorf("post-ladder audit: %w", err)
	}
	return nil
}

// epochFingerprint looks up the writer-recorded fingerprint for epoch.
func epochFingerprint(w *Writer, epoch uint64) (uint64, bool) {
	for _, e := range w.Stats().Epochs {
		if e.Epoch == epoch {
			return e.Fingerprint, true
		}
	}
	return 0, false
}

// RunCrashMatrix executes the full matrix. Every cell must end in one of
// two outcomes — a recovery whose fingerprint matches the writer's
// commit-time hash for that epoch (then audit + ladder must pass), or a
// typed *CorruptError — and the report marks any other ending as a failure.
//
//gclint:io owns the per-case artifact directories under the matrix work dir
func RunCrashMatrix(cfg MatrixConfig) (*MatrixReport, error) {
	if cfg.OpsPerRun <= 0 {
		cfg.OpsPerRun = 4000
	}
	if cfg.BudgetBytes <= 0 {
		cfg.BudgetBytes = 16 << 10
	}
	work := cfg.WorkDir
	if work == "" {
		tmp, err := os.MkdirTemp("", "rtgc-crash-matrix-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		work = tmp
	}

	rep := &MatrixReport{Schema: MatrixSchema}
	for si, seed := range cfg.Seeds {
		refDir := filepath.Join(work, fmt.Sprintf("ref-%d", si))
		w, _, _, err := referenceRun(refDir, seed, cfg.OpsPerRun, cfg.BudgetBytes)
		if err != nil {
			return nil, err
		}
		rep.Epochs += w.Stats().Committed

		// Baseline control: the undamaged artifacts must recover to the
		// newest epoch with a matching fingerprint.
		rep.add(runCase(w, refDir, seed, "baseline", false))

		for pi, plan := range cfg.Plans {
			// Newest-epoch damage: recovery may fall back to an older
			// retained epoch, or reject with a typed error.
			caseDir := filepath.Join(work, fmt.Sprintf("case-%d-%d", si, pi))
			if err := CloneDir(refDir, caseDir); err != nil {
				return nil, err
			}
			if _, err := ApplyCrash(caseDir, plan); err != nil {
				rep.add(CaseResult{Seed: seed, Plan: plan.String(),
					Outcome: "crash-apply-error", Err: err.Error(), Failed: true})
				continue
			}
			rep.add(runCase(w, caseDir, seed, plan.String(), true))

			// All-epochs damage: nothing intact remains, so the only
			// contractual ending is the typed rejection — never a silently
			// wrong heap.
			allDir := filepath.Join(work, fmt.Sprintf("case-%d-%d-all", si, pi))
			if err := CloneDir(refDir, allDir); err != nil {
				return nil, err
			}
			if err := ApplyCrashAll(allDir, plan); err != nil {
				rep.add(CaseResult{Seed: seed, Plan: plan.String() + "/all-epochs",
					Outcome: "crash-apply-error", Err: err.Error(), Failed: true})
				continue
			}
			rep.add(runCase(w, allDir, seed, plan.String()+"/all-epochs", true))
		}
	}
	for _, c := range rep.Cases {
		if c.Failed {
			rep.Failures++
		}
	}
	return rep, nil
}

func (rep *MatrixReport) add(c CaseResult) { rep.Cases = append(rep.Cases, c) }

// runCase recovers one (possibly damaged) artifact directory, classifying
// the outcome against the contract.
func runCase(w *Writer, dir string, seed uint64, planName string, damaged bool) CaseResult {
	c := CaseResult{Seed: seed, Plan: planName}
	r, err := Recover(dir)
	if err != nil {
		var ce *CorruptError
		if errors.As(err, &ce) {
			// Typed rejection is a contractual outcome — but only under
			// damage; the baseline must recover.
			c.Outcome, c.Err = "corrupt-detected", err.Error()
			c.Failed = !damaged
			return c
		}
		c.Outcome, c.Err, c.Failed = "untyped-error", err.Error(), true
		return c
	}
	c.Epoch = r.Epoch
	want, ok := epochFingerprint(w, r.Epoch)
	if !ok {
		c.Outcome, c.Err, c.Failed = "unknown-epoch", fmt.Sprintf("recovered epoch %d was never committed", r.Epoch), true
		return c
	}
	if r.Fingerprint != want {
		c.Outcome, c.Failed = "fingerprint-mismatch", true
		c.Err = fmt.Sprintf("recovered fingerprint %#x, reference %#x", r.Fingerprint, want)
		return c
	}
	m, gc := rebuild(r)
	if err := probeRecovered(m, gc); err != nil {
		c.Outcome, c.Err, c.Failed = "probe-failed", err.Error(), true
		return c
	}
	c.Outcome = "recovered"
	return c
}
