package checkpoint

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repligc/internal/core"
	"repligc/internal/heap"
)

// Restored is the outcome of a successful recovery: a rebuilt heap plus
// everything needed to re-attach a mutator and collector and continue the
// run. Its Fingerprint has already been verified against the commit footer,
// so the heap image is bit-identical to the state the writer hashed live at
// commit time.
type Restored struct {
	Epoch       uint64
	Fingerprint uint64
	Cfg         heap.Config
	Heap        *heap.Heap

	Roots      []heap.Value
	LogBase    int64
	LogEntries []core.LogEntry

	BytesAllocated     int64
	LogWrites          int64
	MinorLogCursor     int64
	PromotedSinceMajor int64
	PromoHighWater     int64

	// Recorded space geometry, re-applied by Attach (collector
	// construction clobbers the nursery's soft limit).
	nurseryHi, nurseryNext uint64
	fromHi, fromNext       uint64
	toHi, toNext           uint64
}

// RootArray is the flat root source a recovered run starts from: the
// checkpointed root slots in their original visit order. The original run's
// structured root sources (VM registers, driver tables) do not survive a
// crash; their slots do.
type RootArray struct {
	Slots []heap.Value
}

// VisitRoots implements core.RootSource.
func (ra *RootArray) VisitRoots(v core.RootVisitor) {
	for i := range ra.Slots {
		v(&ra.Slots[i])
	}
}

// Attach wires a freshly constructed mutator/collector pair onto the
// restored state. m must have been built over r.Heap; gc must be a new
// collector over the same heap. After Attach the pair is equivalent to the
// checkpointed run at its commit point: same heap words, same retained
// mutation log, same roots (exposed through r's RootArray, also returned),
// same scheduling state.
func (r *Restored) Attach(m *core.Mutator, gc *core.Replicating) *RootArray {
	// Collector construction re-applied cfg.NurseryBytes as the nursery
	// soft limit; put the recorded geometry back.
	r.applyGeometry()
	m.Log.Restore(r.LogBase, r.LogEntries)
	m.BytesAllocated = r.BytesAllocated
	m.LogWrites = r.LogWrites
	ra := &RootArray{Slots: append([]heap.Value(nil), r.Roots...)}
	m.Roots.Register(ra)
	gc.RestoreScheduling(r.MinorLogCursor, r.PromotedSinceMajor, r.PromoHighWater)
	return ra
}

// applyGeometry writes the recorded space cursors and soft limits into the
// reconstructed heap's Space structs.
func (r *Restored) applyGeometry() {
	h := r.Heap
	h.Nursery.Hi, h.Nursery.Next = r.nurseryHi, r.nurseryNext
	h.OldFrom().Hi, h.OldFrom().Next = r.fromHi, r.fromNext
	h.OldTo().Hi, h.OldTo().Next = r.toHi, r.toNext
}

// Epochs lists the epoch numbers in dir that have both artifact files,
// ascending. Missing directories list as empty.
//
//gclint:io scans the artifact directory for snapshot/WAL pairs
func Epochs(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	snaps := map[uint64]bool{}
	var out []uint64
	for _, ent := range ents {
		var epoch uint64
		if n, _ := fmt.Sscanf(ent.Name(), "snap-%d.ckpt", &epoch); n == 1 && filepath.Ext(ent.Name()) == ".ckpt" {
			snaps[epoch] = true
		}
	}
	for _, ent := range ents {
		var epoch uint64
		if n, _ := fmt.Sscanf(ent.Name(), "wal-%d.ckpt", &epoch); n == 1 && filepath.Ext(ent.Name()) == ".ckpt" && snaps[epoch] {
			out = append(out, epoch)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Recover loads the newest recoverable epoch in dir. Damaged epochs are
// skipped (newest first); if none survives, the returned error is a
// *CorruptError wrapping every per-epoch failure. Recovery never returns a
// heap whose fingerprint does not match its commit footer.
func Recover(dir string) (*Restored, error) {
	epochs, err := Epochs(dir)
	if err != nil {
		return nil, &CorruptError{Path: dir, Detail: "unreadable artifact directory", Err: err}
	}
	if len(epochs) == 0 {
		return nil, corrupt(dir, "no checkpoint epochs")
	}
	var fails []error
	for i := len(epochs) - 1; i >= 0; i-- {
		r, err := RecoverEpoch(dir, epochs[i])
		if err == nil {
			return r, nil
		}
		fails = append(fails, err)
	}
	return nil, &CorruptError{Path: dir, Detail: "no recoverable epoch", Err: errors.Join(fails...)}
}

// RecoverEpoch loads one specific epoch, verifying every record checksum,
// the record ordinals, both completeness footers, and finally the state
// fingerprint against the commit record.
func RecoverEpoch(dir string, epoch uint64) (*Restored, error) {
	snapPath := filepath.Join(dir, fmt.Sprintf("snap-%08d.ckpt", epoch))
	walPath := filepath.Join(dir, fmt.Sprintf("wal-%08d.ckpt", epoch))

	r := &Restored{Epoch: epoch}
	var walBase int64
	if err := readSnapshot(snapPath, r, &walBase); err != nil {
		return nil, err
	}
	if err := readWAL(walPath, r); err != nil {
		return nil, err
	}
	r.applyGeometry()

	// Re-derive the canonical state tuple from the restored image and
	// check it against the fingerprint the writer computed from the live
	// heap. Any inconsistency the checksums could not see — a patch
	// missed, a segment applied to the wrong offset — surfaces here.
	st := r.restoredState()
	if got := st.fingerprint(); got != r.Fingerprint {
		return nil, corrupt(walPath, "state fingerprint %#x does not match commit record %#x", got, r.Fingerprint)
	}
	return r, nil
}

// restoredState rebuilds the canonical tuple from a restored image, in
// exactly the shape captureState builds it from a live run.
func (r *Restored) restoredState() *state {
	h := r.Heap
	return &state{
		cfg:                r.Cfg,
		fromOldB:           h.OldFrom().Name == "oldB",
		nurseryHi:          r.nurseryHi,
		nurseryNext:        r.nurseryNext,
		fromHi:             r.fromHi,
		fromNext:           r.fromNext,
		toHi:               r.toHi,
		toNext:             r.toNext,
		fromWords:          h.Arena[h.OldFrom().Lo:r.fromNext],
		nurseryWords:       h.Arena[h.Nursery.Lo:r.nurseryNext],
		roots:              r.Roots,
		logBase:            r.LogBase,
		logEntries:         r.LogEntries,
		bytesAllocated:     r.BytesAllocated,
		logWrites:          r.LogWrites,
		minorLogCursor:     r.MinorLogCursor,
		promotedSinceMajor: r.PromotedSinceMajor,
		promoHighWater:     r.PromoHighWater,
	}
}

// readSnapshot parses the snapshot file into a fresh heap.
//
//gclint:io reads the epoch's snapshot file
func readSnapshot(path string, r *Restored, walBase *int64) error {
	f, err := os.Open(path)
	if err != nil {
		return &CorruptError{Path: path, Detail: "unreadable snapshot", Err: err}
	}
	defer f.Close()
	rr := newRecordReader(bufio.NewReaderSize(f, 1<<16), path)
	if err := rr.readMagic(snapMagic); err != nil {
		return err
	}

	typ, payload, err := rr.next()
	if err != nil {
		return asCorrupt(path, err)
	}
	if typ != recSnapHeader {
		return corrupt(path, "first record type %d, want snapshot header", typ)
	}
	d := dec{b: payload, path: path}
	ver := d.u64()
	epoch := d.u64()
	*walBase = d.i64()
	cfg := heap.Config{
		NurseryBytes:    d.i64(),
		NurseryCapBytes: d.i64(),
		OldSemiBytes:    d.i64(),
	}
	fromOldB := d.u8() == 1
	if err := d.done(); err != nil {
		return err
	}
	if ver != version {
		return corrupt(path, "format version %d, want %d", ver, version)
	}
	if epoch != r.Epoch {
		return corrupt(path, "snapshot claims epoch %d, file is named for %d", epoch, r.Epoch)
	}
	if cfg.NurseryBytes <= 0 || cfg.OldSemiBytes <= 0 || cfg.NurseryBytes > 1<<40 || cfg.OldSemiBytes > 1<<40 {
		return corrupt(path, "implausible heap config %+v", cfg)
	}
	r.Cfg = cfg
	r.Heap = heap.New(cfg)
	if fromOldB {
		r.Heap.SwapOld()
	}

	segs := 0
	for {
		typ, payload, err := rr.next()
		if err != nil {
			return asCorrupt(path, err)
		}
		switch typ {
		case recSegment:
			d := dec{b: payload, path: path}
			space := d.u8()
			start := d.u64()
			count := d.u64()
			var sp *heap.Space
			switch space {
			case spaceOldFrom:
				sp = r.Heap.OldFrom()
			case spaceNursery:
				sp = &r.Heap.Nursery
			default:
				return corrupt(path, "segment %d: unknown space id %d", segs, space)
			}
			if start < sp.Lo || count > sp.Cap-start {
				return corrupt(path, "segment %d: range [%d,%d) outside space %s", segs, start, start+count, sp.Name)
			}
			if uint64(len(d.b)) != count*heap.BytesPerWord {
				return corrupt(path, "segment %d: payload %d bytes, want %d words", segs, len(d.b), count)
			}
			for i := uint64(0); i < count; i++ {
				r.Heap.Arena[start+i] = heap.Value(d.u64())
			}
			if err := d.done(); err != nil {
				return err
			}
			segs++
		case recSnapFooter:
			d := dec{b: payload, path: path}
			want := d.u64()
			if err := d.done(); err != nil {
				return err
			}
			if uint64(segs) != want {
				return corrupt(path, "footer claims %d segments, read %d", want, segs)
			}
			if _, _, err := rr.next(); err != io.EOF {
				return corrupt(path, "trailing data after snapshot footer")
			}
			return nil
		default:
			return corrupt(path, "unexpected record type %d in snapshot body", typ)
		}
	}
}

// readWAL parses the WAL file and applies it to the restored heap.
//
//gclint:io reads the epoch's WAL file
func readWAL(path string, r *Restored) error {
	f, err := os.Open(path)
	if err != nil {
		return &CorruptError{Path: path, Detail: "unreadable WAL", Err: err}
	}
	defer f.Close()
	rr := newRecordReader(bufio.NewReaderSize(f, 1<<16), path)
	if err := rr.readMagic(walMagic); err != nil {
		return err
	}

	// The records must appear in the fixed order commit writes them.
	want := []uint8{recWALHeader, recSpaces, recPatch, recLog, recRoots, recSched, recCommit}
	for _, wantTyp := range want {
		typ, payload, err := rr.next()
		if err != nil {
			return asCorrupt(path, err)
		}
		if typ != wantTyp {
			return corrupt(path, "record type %d, want %d", typ, wantTyp)
		}
		d := dec{b: payload, path: path}
		switch typ {
		case recWALHeader:
			if epoch := d.u64(); epoch != r.Epoch {
				return corrupt(path, "WAL claims epoch %d, file is named for %d", epoch, r.Epoch)
			}
		case recSpaces:
			r.nurseryHi, r.nurseryNext = d.u64(), d.u64()
			r.fromHi, r.fromNext = d.u64(), d.u64()
			r.toHi, r.toNext = d.u64(), d.u64()
			if err := checkSpace(path, "nursery", &r.Heap.Nursery, r.nurseryHi, r.nurseryNext); err != nil {
				return err
			}
			if err := checkSpace(path, "old-from", r.Heap.OldFrom(), r.fromHi, r.fromNext); err != nil {
				return err
			}
			if err := checkSpace(path, "old-to", r.Heap.OldTo(), r.toHi, r.toNext); err != nil {
				return err
			}
		case recPatch:
			n := d.u64()
			if n > uint64(len(r.Heap.Arena)) {
				return corrupt(path, "implausible patch count %d", n)
			}
			for i := uint64(0); i < n && d.err == nil; i++ {
				idx := d.u64()
				val := heap.Value(d.u64())
				if idx >= uint64(len(r.Heap.Arena)) {
					return corrupt(path, "patch %d: arena index %d out of range", i, idx)
				}
				r.Heap.Arena[idx] = val
			}
		case recLog:
			r.LogBase = d.i64()
			n := d.u64()
			if n > 1<<28 {
				return corrupt(path, "implausible log entry count %d", n)
			}
			r.LogEntries = make([]core.LogEntry, 0, n)
			for i := uint64(0); i < n && d.err == nil; i++ {
				e := core.LogEntry{
					Obj:  heap.Value(d.u64()),
					Slot: int32(uint32(d.u64())),
					Len:  int32(uint32(d.u64())),
				}
				e.Byte = d.u8() == 1
				r.LogEntries = append(r.LogEntries, e)
			}
		case recRoots:
			n := d.u64()
			if n > 1<<28 {
				return corrupt(path, "implausible root count %d", n)
			}
			r.Roots = make([]heap.Value, 0, n)
			for i := uint64(0); i < n && d.err == nil; i++ {
				r.Roots = append(r.Roots, heap.Value(d.u64()))
			}
		case recSched:
			r.BytesAllocated = d.i64()
			r.LogWrites = d.i64()
			r.MinorLogCursor = d.i64()
			r.PromotedSinceMajor = d.i64()
			r.PromoHighWater = d.i64()
		case recCommit:
			r.Fingerprint = d.u64()
		}
		if err := d.done(); err != nil {
			return err
		}
	}
	if _, _, err := rr.next(); err != io.EOF {
		return corrupt(path, "trailing data after commit record")
	}
	return nil
}

// checkSpace validates recorded geometry against the reconstructed space.
func checkSpace(path, name string, sp *heap.Space, hi, next uint64) error {
	if hi < sp.Lo || hi > sp.Cap || next < sp.Lo || next > hi {
		return corrupt(path, "%s geometry hi=%d next=%d outside [%d,%d]", name, hi, next, sp.Lo, sp.Cap)
	}
	return nil
}

// asCorrupt maps a record-reader error (including bare EOF on a file that
// needed more records) to a *CorruptError.
func asCorrupt(path string, err error) error {
	if err == io.EOF {
		return corrupt(path, "file ends before its completeness footer")
	}
	return err
}
