package core

import (
	"fmt"

	"repligc/internal/heap"
)

// AuditHeap walks the object graph reachable from the mutator's roots and
// verifies structural integrity: every pointer must land in a mutator-
// visible space, every header must be a sane descriptor (following
// forwarding where a collection is in flight), and byte-kind objects must
// never be traversed as pointers. It returns the first violation found.
//
// The audit sees the heap exactly as the mutator does — through from-space
// originals — so it can run at any collector-quiescent point, including in
// the middle of an incremental collection, where it doubles as a check of
// the from-space invariant (a collector that leaked a to-space pointer
// into mutator-visible state before the flip would be caught here).
func AuditHeap(m *Mutator) error {
	h := m.H
	visited := make(map[heap.Value]bool)
	var walk func(v heap.Value, depth int) error
	walk = func(v heap.Value, depth int) error {
		if !v.IsPtr() || visited[v] {
			return nil
		}
		if depth > 1_000_000 {
			return fmt.Errorf("audit: traversal too deep (cycle bookkeeping broken?)")
		}
		visited[v] = true

		if !h.Nursery.Contains(v) && !h.OldFrom().Contains(v) && !h.OldTo().Contains(v) {
			return fmt.Errorf("audit: pointer %v outside every space", v)
		}

		raw := h.RawHeader(v)
		hdr := heap.Header(raw)
		if !heap.IsHeader(raw) {
			// A forwarded original: legal only during an active collection;
			// the forwarding target must itself be a valid object.
			fwd := h.ForwardAddr(v)
			if !fwd.IsPtr() {
				return fmt.Errorf("audit: forwarding word of %v is not a pointer", v)
			}
			if !h.OldFrom().Contains(fwd) && !h.OldTo().Contains(fwd) {
				return fmt.Errorf("audit: %v forwards outside the old generation", v)
			}
			hdr = h.HeaderOf(v)
		}
		if hdr.Kind() > heap.KindMax {
			return fmt.Errorf("audit: object %v has invalid kind %d", v, hdr.Kind())
		}
		if hdr.SizeWords() <= 0 || hdr.SizeBytes() > 1<<30 {
			return fmt.Errorf("audit: object %v has implausible size %d", v, hdr.SizeBytes())
		}
		if !hdr.Kind().HasPointers() {
			return nil
		}
		for i := 0; i < hdr.Len(); i++ {
			if err := walk(h.Load(v, i), depth+1); err != nil {
				return fmt.Errorf("%v[%d]: %w", hdr.Kind(), i, err)
			}
		}
		return nil
	}

	var firstErr error
	m.Roots.Visit(func(slot *heap.Value) {
		if firstErr != nil {
			return
		}
		if err := walk(*slot, 0); err != nil {
			firstErr = err
		}
	})
	if firstErr != nil {
		return firstErr
	}
	if sc, ok := m.GC.(ScanAuditor); ok {
		return sc.AuditScanned(m)
	}
	return nil
}

// ScanAuditor is implemented by collectors that can verify their own
// incremental-scan invariants beyond the structural checks above; AuditHeap
// invokes it after the graph walk succeeds.
type ScanAuditor interface {
	AuditScanned(m *Mutator) error
}

// AuditScanned verifies the replication collector's tricolor discipline: an
// object the scan has finished with (black) must not reference anything the
// scan is supposed to have already redirected. Concretely, a fully scanned
// minor replica holds no nursery pointers, and a fully traced major to-space
// object holds no old from-space pointers — except through the collector's
// own deferred-work records (pending mutable copies, queued flip fixups, and
// mutations logged since the relevant cursor, all of which are re-pointed no
// later than the flip).
func (c *Replicating) AuditScanned(m *Mutator) error {
	h := c.h
	if c.minorActive {
		// Slots allowed to keep nursery pointers: deferred mutable copies
		// (§2.5), logged minor roots awaiting the flip, and entries the log
		// cursor has not reached yet.
		except := make(map[fixup]bool)
		for _, f := range c.pendingMut {
			except[f] = true
		}
		addSeq := func(seq int64) {
			if seq < m.Log.Base() {
				return
			}
			if e := m.Log.At(seq); !e.Byte {
				except[fixup{obj: e.Obj, slot: e.Slot}] = true
			}
		}
		for _, seq := range c.minorRootSeqs {
			addSeq(seq)
		}
		for seq := c.minorLogCursor; seq < m.Log.Len(); seq++ {
			addSeq(seq)
		}
		// Mutator-owned objects inside the region (oversized allocations)
		// were stepped over, not scanned.
		skipAt := make(map[uint64]uint64)
		for _, sp := range c.skips {
			skipAt[sp.start] = sp.words
		}
		for idx := c.minorScanStart; idx < c.scan; {
			if w, ok := skipAt[idx]; ok {
				idx += w
				continue
			}
			raw := h.Arena[idx]
			if !heap.IsHeader(raw) {
				return fmt.Errorf("audit: scanned minor region holds a forwarded header at word %#x", idx)
			}
			hdr := heap.Header(raw)
			p := heap.Value((idx + 1) << 3)
			if hdr.Kind().HasPointers() {
				for i := 0; i < hdr.Len(); i++ {
					v := h.Load(p, i)
					if h.Nursery.Contains(v) && !except[fixup{obj: p, slot: int32(i)}] {
						return fmt.Errorf("audit: scanned replica %v slot %d still holds nursery pointer %v", p, i, v)
					}
				}
			}
			idx += uint64(hdr.SizeWords())
		}
	}
	if c.majorActive {
		// Slots allowed to keep from-space pointers: queued mutable-reference
		// fixups (re-pointed at the major flip) and mutations the major log
		// cursor has not reached yet.
		except := make(map[fixup]bool)
		for _, f := range c.fixups {
			except[f] = true
		}
		for seq := c.majorLogCursor; seq < m.Log.Len(); seq++ {
			if seq < m.Log.Base() {
				continue
			}
			if e := m.Log.At(seq); !e.Byte {
				except[fixup{obj: e.Obj, slot: e.Slot}] = true
			}
		}
		var err error
		h.WalkObjects(h.OldTo(), func(p heap.Value, hdr heap.Header) bool {
			// Under the implicit Cheney scan, black is an address test: the
			// cursor has fully passed every object whose header sits below
			// it. The object at the cursor may be partially scanned
			// (majorScanSlot resumes inside it); it owes nothing yet.
			if uint64(p)>>3-1 >= c.majorScan {
				return true
			}
			if !hdr.Kind().HasPointers() {
				return true
			}
			for i := 0; i < hdr.Len(); i++ {
				v := h.Load(p, i)
				if h.OldFrom().Contains(v) && !except[fixup{obj: p, slot: int32(i)}] {
					err = fmt.Errorf("audit: black to-space object %v slot %d holds from-space pointer %v", p, i, v)
					return false
				}
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}
