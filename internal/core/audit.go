package core

import (
	"fmt"

	"repligc/internal/heap"
)

// AuditHeap walks the object graph reachable from the mutator's roots and
// verifies structural integrity: every pointer must land in a mutator-
// visible space, every header must be a sane descriptor (following
// forwarding where a collection is in flight), and byte-kind objects must
// never be traversed as pointers. It returns the first violation found.
//
// The audit sees the heap exactly as the mutator does — through from-space
// originals — so it can run at any collector-quiescent point, including in
// the middle of an incremental collection, where it doubles as a check of
// the from-space invariant (a collector that leaked a to-space pointer
// into mutator-visible state before the flip would be caught here).
func AuditHeap(m *Mutator) error {
	h := m.H
	visited := make(map[heap.Value]bool)
	var walk func(v heap.Value, depth int) error
	walk = func(v heap.Value, depth int) error {
		if !v.IsPtr() || visited[v] {
			return nil
		}
		if depth > 1_000_000 {
			return fmt.Errorf("audit: traversal too deep (cycle bookkeeping broken?)")
		}
		visited[v] = true

		if !h.Nursery.Contains(v) && !h.OldFrom().Contains(v) && !h.OldTo().Contains(v) {
			return fmt.Errorf("audit: pointer %v outside every space", v)
		}

		raw := h.RawHeader(v)
		hdr := heap.Header(raw)
		if !heap.IsHeader(raw) {
			// A forwarded original: legal only during an active collection;
			// the forwarding target must itself be a valid object.
			fwd := h.ForwardAddr(v)
			if !fwd.IsPtr() {
				return fmt.Errorf("audit: forwarding word of %v is not a pointer", v)
			}
			if !h.OldFrom().Contains(fwd) && !h.OldTo().Contains(fwd) {
				return fmt.Errorf("audit: %v forwards outside the old generation", v)
			}
			hdr = h.HeaderOf(v)
		}
		if hdr.Kind() >= heap.KindBytes+1 {
			return fmt.Errorf("audit: object %v has invalid kind %d", v, hdr.Kind())
		}
		if hdr.SizeWords() <= 0 || hdr.SizeBytes() > 1<<30 {
			return fmt.Errorf("audit: object %v has implausible size %d", v, hdr.SizeBytes())
		}
		if !hdr.Kind().HasPointers() {
			return nil
		}
		for i := 0; i < hdr.Len(); i++ {
			if err := walk(h.Load(v, i), depth+1); err != nil {
				return fmt.Errorf("%v[%d]: %w", hdr.Kind(), i, err)
			}
		}
		return nil
	}

	var firstErr error
	m.Roots.Visit(func(slot *heap.Value) {
		if firstErr != nil {
			return
		}
		if err := walk(*slot, 0); err != nil {
			firstErr = err
		}
	})
	return firstErr
}
