package core

// White-box tests of AuditHeap and AuditScanned: each test builds a healthy
// heap, verifies the audit passes, then injects one specific corruption
// through raw heap access and checks that the audit reports that corruption
// and not something else. Test files are outside gclint's jurisdiction, which
// is exactly where heap-corrupting code belongs.

import (
	"strings"
	"testing"

	"repligc/internal/heap"
	"repligc/internal/simtime"
)

func auditMutator(t *testing.T, cfg Config) (*Mutator, *Replicating) {
	t.Helper()
	h := heap.New(heap.Config{
		NurseryBytes:    128 << 10,
		NurseryCapBytes: 4 << 20,
		OldSemiBytes:    16 << 20,
	})
	m := NewMutator(h, simtime.NewClock(), simtime.Default1993(), LogAllMutations)
	gc := NewReplicating(h, cfg)
	m.AttachGC(gc)
	return m, gc
}

// mustAuditError asserts the audit fails and the message names the injected
// corruption.
func mustAuditError(t *testing.T, m *Mutator, want string) {
	t.Helper()
	err := AuditHeap(m)
	if err == nil {
		t.Fatalf("audit passed over a corrupted heap (want error containing %q)", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("audit error %q does not mention %q", err, want)
	}
}

func TestAuditRejectsOutOfRangeKind(t *testing.T) {
	m, _ := auditMutator(t, Config{NurseryBytes: 128 << 10})
	p := m.MustAlloc(heap.KindRecord, 2)
	m.Init(p, 0, heap.FromInt(1))
	m.Init(p, 1, heap.Nil)
	m.PushHandle(p)
	if err := AuditHeap(m); err != nil {
		t.Fatalf("audit failed on a healthy heap: %v", err)
	}

	// Rewrite the header word with a kind beyond heap.KindMax. The length is
	// kept so only the kind field is wrong.
	m.H.Arena[uint64(p)>>3-1] = heap.Value(heap.MakeHeader(heap.KindMax+1, 2))
	mustAuditError(t, m, "invalid kind")
}

func TestAuditRejectsNonPointerForwardingWord(t *testing.T) {
	m, _ := auditMutator(t, Config{NurseryBytes: 128 << 10})
	p := m.MustAlloc(heap.KindRecord, 1)
	m.Init(p, 0, heap.Nil)
	m.PushHandle(p)
	if err := AuditHeap(m); err != nil {
		t.Fatalf("audit failed on a healthy heap: %v", err)
	}

	// An even header word is read as a forwarding pointer; Nil is even but
	// not a pointer, so the object claims to be forwarded to nowhere.
	// SetForward refuses such a target, so the word is clobbered directly.
	m.H.Arena[uint64(p)>>3-1] = heap.Nil
	mustAuditError(t, m, "is not a pointer")
}

func TestAuditRejectsForwardingOutsideOldGeneration(t *testing.T) {
	m, _ := auditMutator(t, Config{NurseryBytes: 128 << 10})
	p := m.MustAlloc(heap.KindRecord, 1)
	m.Init(p, 0, heap.Nil)
	m.PushHandle(p)
	junk := m.MustAlloc(heap.KindRecord, 1)
	m.Init(junk, 0, heap.Nil)

	// A forwarding pointer must aim at the old generation; a nursery target
	// means the forwarding word was clobbered.
	m.H.SetForward(p, junk)
	mustAuditError(t, m, "forwards outside the old generation")
}

func TestAuditRejectsOutOfSpacePointer(t *testing.T) {
	m, _ := auditMutator(t, Config{NurseryBytes: 128 << 10})
	p := m.MustAlloc(heap.KindArray, 2)
	m.Init(p, 0, heap.FromInt(7))
	m.Init(p, 1, heap.Nil)
	m.PushHandle(p)
	if err := AuditHeap(m); err != nil {
		t.Fatalf("audit failed on a healthy heap: %v", err)
	}

	// A word-aligned address beyond every space: a dangling or wild pointer.
	m.H.Store(p, 1, heap.Value(1<<40))
	mustAuditError(t, m, "outside every space")
}

// TestAuditScannedCatchesCorruptMinorReplica drives an incremental minor
// collection to a mid-cycle point where some replicas have been scanned, then
// smuggles a nursery pointer into a scanned replica slot behind the
// collector's back — precisely the inconsistency the Cheney scan exists to
// eliminate, invisible to the structural audit because the pointer itself is
// valid.
func TestAuditScannedCatchesCorruptMinorReplica(t *testing.T) {
	m, gc := auditMutator(t, Config{
		NurseryBytes:     128 << 10,
		CopyLimitBytes:   4 << 10,
		IncrementalMinor: true,
	})
	h := m.H

	// A nursery object to use as the smuggled pointer: unrooted, so it is
	// never replicated, but nursery addresses stay valid until the flip.
	junk := m.MustAlloc(heap.KindRecord, 1)
	m.Init(junk, 0, heap.Nil)

	// High survival: every record is pinned, so the minor collection has far
	// more than one pause budget's worth of copying and scanning to do.
	for i := 0; i < 3000; i++ {
		p := m.MustAlloc(heap.KindRecord, 3)
		m.Init(p, 0, heap.FromInt(int64(i)))
		m.Init(p, 1, heap.Nil)
		m.Init(p, 2, heap.Nil)
		m.PushHandle(p)
	}
	for i := 0; i < 200 && !(gc.minorActive && gc.scan > gc.minorScanStart); i++ {
		gc.CollectForAlloc(m, 0)
	}
	if !gc.minorActive || gc.scan == gc.minorScanStart {
		t.Fatal("could not reach a mid-minor state with a scanned region")
	}
	if err := AuditHeap(m); err != nil {
		t.Fatalf("audit failed mid-collection on a healthy heap: %v", err)
	}

	// Find a scanned pointer-bearing replica and corrupt its first slot.
	var target heap.Value
	for idx := gc.minorScanStart; idx < gc.scan; {
		hdr := heap.Header(h.Arena[idx])
		if hdr.Kind().HasPointers() && hdr.Len() > 0 {
			target = heap.Value((idx + 1) << 3)
			break
		}
		idx += uint64(hdr.SizeWords())
	}
	if target == heap.Nil {
		t.Fatal("no pointer-bearing replica in the scanned region")
	}
	h.Store(target, 0, junk)
	mustAuditError(t, m, "still holds nursery pointer")
}

// TestAuditScannedCatchesCorruptBlackObject does the same for the major
// collection: a to-space object the implicit Cheney cursor has passed must
// not hold old from-space pointers, so planting one must be reported.
func TestAuditScannedCatchesCorruptBlackObject(t *testing.T) {
	m, gc := auditMutator(t, Config{
		NurseryBytes:        128 << 10,
		MajorThresholdBytes: 256 << 10,
		CopyLimitBytes:      4 << 10,
		IncrementalMinor:    true,
		IncrementalMajor:    true,
	})
	h := m.H

	// Promote a steady stream of records — pinning one in eight, so minor
	// cycles complete with leftover pause budget for the major to spend —
	// until a major collection is active and has blackened at least one
	// pointer-bearing object.
	findBlack := func() heap.Value {
		if !gc.majorActive {
			return heap.Nil
		}
		var black heap.Value
		h.WalkObjects(h.OldTo(), func(p heap.Value, hdr heap.Header) bool {
			if uint64(p)>>3-1 >= gc.majorScan {
				return true // at or above the cursor: not yet black
			}
			if !hdr.Kind().HasPointers() || hdr.Len() == 0 {
				return true
			}
			black = p
			return false
		})
		return black
	}
	var black heap.Value
	for i := 0; i < 200_000 && black == heap.Nil; i++ {
		p := m.MustAlloc(heap.KindRecord, 3)
		m.Init(p, 0, heap.FromInt(int64(i)))
		m.Init(p, 1, heap.Nil)
		m.Init(p, 2, heap.Nil)
		if i%8 == 0 {
			m.PushHandle(p)
		}
		if i%512 == 0 {
			black = findBlack()
		}
	}
	if black == heap.Nil {
		t.Fatal("could not reach a mid-major state with a black object")
	}
	if err := AuditHeap(m); err != nil {
		t.Fatalf("audit failed mid-major on a healthy heap: %v", err)
	}

	// An old from-space pointer to plant: until the major flip the roots
	// still address from-space originals, so any old-from root will do.
	// (The from-space itself cannot be walked mid-major: forwarded objects
	// have no headers left.)
	var fromObj heap.Value
	m.Roots.Visit(func(slot *heap.Value) {
		if fromObj == heap.Nil && h.OldFrom().Contains(*slot) {
			fromObj = *slot
		}
	})
	if fromObj == heap.Nil {
		t.Fatal("old from-space is empty")
	}
	h.Store(black, 0, fromObj)
	mustAuditError(t, m, "holds from-space pointer")
}
