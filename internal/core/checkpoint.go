package core

// The collector side of crash-consistent checkpointing (internal/checkpoint
// owns the snapshot format and file I/O; this file owns the pause-boundary
// contract). The replicating collector drives the snapshot writer with one
// call per pause, inside the pause window, so every byte of checkpoint work
// is charged to the stopped mutator and shows up in pause times and MMU
// curves exactly like collection work does.

// CheckpointPoint describes the collector's state at the pause boundary
// handed to a Checkpointer. The writer uses it to decide whether an epoch
// may begin or commit (both require quiescence) and whether an open epoch
// must abort (a major flip swaps the old semispaces, invalidating every
// segment copied so far).
type CheckpointPoint struct {
	// Quiescent reports that no minor or major collection is in flight:
	// the mutation log's retained suffix is exactly the next cycle's
	// remembered set, and no object carries a forwarding pointer.
	Quiescent bool
	// MajorActive reports an in-flight major collection. Promotions are
	// landing in old-to, which the snapshot does not cover, so an open
	// epoch is already doomed to abort at the coming flip.
	MajorActive bool
	// MajorCollections is the completed-major counter; a change since the
	// epoch began means the semispaces swapped underneath the snapshot.
	MajorCollections int
	// MinorLogCursor is the collector's pending log position: entries at
	// and above it are the remembered set a restored run must re-consume.
	MinorLogCursor int64
	// PromotedSinceMajor and PromoHighWater are the scheduling state a
	// restored collector needs to keep the major threshold O and the
	// degradation ladder's headroom reservation honest across a crash.
	PromotedSinceMajor int64
	PromoHighWater     int64
}

// Checkpointer receives one callback per collection pause, inside the pause.
// internal/checkpoint.Writer is the implementation; the interface lives here
// so core does not import the I/O layer.
type Checkpointer interface {
	PauseCheckpoint(m *Mutator, p CheckpointPoint)
}

// SetCheckpointer attaches w (nil detaches). The mutator must log all
// mutations: the checkpoint write-ahead log is the mutation log, and a
// pointers-only log would lose non-pointer stores across recovery.
func (c *Replicating) SetCheckpointer(w Checkpointer) { c.ckpt = w }

// checkpointPoint assembles the pause-boundary state for the writer.
func (c *Replicating) checkpointPoint() CheckpointPoint {
	return CheckpointPoint{
		Quiescent:          !c.minorActive && !c.majorActive,
		MajorActive:        c.majorActive,
		MajorCollections:   c.stats.MajorCollections,
		MinorLogCursor:     c.minorLogCursor,
		PromotedSinceMajor: c.promotedSinceMajor,
		PromoHighWater:     c.promoHighWater,
	}
}

// CheckpointNow exposes the current pause-boundary state outside the hook,
// for checkpoint.Writer.ForceCommit (which runs its own pause window after
// FinishCycles has left the collector quiescent).
func (c *Replicating) CheckpointNow() CheckpointPoint { return c.checkpointPoint() }

// RestoreScheduling reinstates the collector scheduling state a checkpoint
// recorded at commit time: the pending log cursor (the remembered set starts
// there), the promotion volume counted toward the major threshold O, and the
// promotion high-water mark feeding the headroom reservation. It must be
// called on a freshly constructed collector, before the mutator runs.
//
//gclint:pauseentry recovery runs before the mutator is released; no barrier can append behind the restored cursor
func (c *Replicating) RestoreScheduling(minorLogCursor, promotedSinceMajor, promoHighWater int64) {
	c.minorLogCursor = minorLogCursor
	c.promotedSinceMajor = promotedSinceMajor
	c.promoHighWater = promoHighWater
	c.scan = c.h.OldFrom().Next
	c.scanSlot = 0
}
