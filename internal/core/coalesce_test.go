package core_test

import (
	"testing"

	"repligc/internal/core"
	"repligc/internal/gctest"
	"repligc/internal/heap"
)

// coalesceConfigs are the collector configurations the coalescing property
// is checked under: the real-time collector (both generations incremental,
// where log entries are consumed by minor and major cursors at different
// times), the stop-the-world core configuration, and the lazy-reapply
// ablation, whose deferred queue records sequence numbers of entries that
// coalescing makes scarcer.
func coalesceConfigs() map[string]core.Config {
	return map[string]core.Config{
		"rt": {
			NurseryBytes:        96 << 10,
			MajorThresholdBytes: 384 << 10,
			CopyLimitBytes:      8 << 10,
			IncrementalMinor:    true,
			IncrementalMajor:    true,
		},
		"stop-copy-core": {
			NurseryBytes:        96 << 10,
			MajorThresholdBytes: 384 << 10,
		},
		"rt-lazy": {
			NurseryBytes:        96 << 10,
			MajorThresholdBytes: 384 << 10,
			CopyLimitBytes:      8 << 10,
			IncrementalMinor:    true,
			IncrementalMajor:    true,
			LazyLogProcessing:   true,
		},
	}
}

// TestCoalescedReplayBitIdentical is the PR's property test: for seeded
// random workloads — including byte and non-pointer mutations — a run whose
// barrier coalesces log entries (dirty stamps + nursery fast path) must
// produce a heap bit-identical to a run with the naive append-every-store
// barrier. Identity is checked as equal reachable-graph fingerprints at
// every checkpoint plus a full shadow-model verification of both heaps:
// coalescing only changes how the log represents the exception set, never
// the contents the collector reconstructs.
func TestCoalescedReplayBitIdentical(t *testing.T) {
	const (
		steps       = 400
		checkpoints = 25
	)
	for name, cfg := range coalesceConfigs() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 6; seed++ {
				mNaive, _ := newRun(cfg, core.LogAllMutations)
				mNaive.NaiveBarrier = true
				mCoal, _ := newRun(cfg, core.LogAllMutations)

				dNaive := gctest.NewDriver(mNaive, seed)
				dCoal := gctest.NewDriver(mCoal, seed)
				for cp := 0; cp < checkpoints; cp++ {
					if err := dNaive.Step(steps); err != nil {
						t.Fatalf("seed %d naive: %v", seed, err)
					}
					if err := dCoal.Step(steps); err != nil {
						t.Fatalf("seed %d coalesced: %v", seed, err)
					}
					fpN, fpC := dNaive.Fingerprint(), dCoal.Fingerprint()
					if fpN != fpC {
						t.Fatalf("seed %d checkpoint %d: fingerprints diverge (naive %#x, coalesced %#x)",
							seed, cp, fpN, fpC)
					}
				}
				if err := dNaive.Verify(); err != nil {
					t.Fatalf("seed %d naive shadow check: %v", seed, err)
				}
				if err := dCoal.Verify(); err != nil {
					t.Fatalf("seed %d coalesced shadow check: %v", seed, err)
				}
				if err := core.AuditHeap(mCoal); err != nil {
					t.Fatalf("seed %d coalesced audit: %v", seed, err)
				}
				if mCoal.LogWrites > mNaive.LogWrites {
					t.Fatalf("seed %d: coalesced barrier wrote more entries (%d) than naive (%d)",
						seed, mCoal.LogWrites, mNaive.LogWrites)
				}
			}
		})
	}
}

// TestBatchedReplayBitIdentical is the hot-path property test: the replay
// memo, block byte copies and batched scan accounting (the default) must
// leave every observable identical to the naive entry-at-a-time paths
// (Config.NaiveReplay) — same reachable-graph fingerprints at every
// checkpoint, same shadow-model contents, and the same simulated clock down
// to the per-account breakdown. The optimisations may only change how fast
// the host executes the collector, never what the collector does.
func TestBatchedReplayBitIdentical(t *testing.T) {
	const (
		steps       = 400
		checkpoints = 25
	)
	for name, cfg := range coalesceConfigs() {
		t.Run(name, func(t *testing.T) {
			naiveCfg := cfg
			naiveCfg.NaiveReplay = true
			for seed := int64(1); seed <= 6; seed++ {
				mNaive, _ := newRun(naiveCfg, core.LogAllMutations)
				mOpt, _ := newRun(cfg, core.LogAllMutations)

				dNaive := gctest.NewDriver(mNaive, seed)
				dOpt := gctest.NewDriver(mOpt, seed)
				for cp := 0; cp < checkpoints; cp++ {
					if err := dNaive.Step(steps); err != nil {
						t.Fatalf("seed %d naive replay: %v", seed, err)
					}
					if err := dOpt.Step(steps); err != nil {
						t.Fatalf("seed %d batched replay: %v", seed, err)
					}
					fpN, fpO := dNaive.Fingerprint(), dOpt.Fingerprint()
					if fpN != fpO {
						t.Fatalf("seed %d checkpoint %d: fingerprints diverge (naive %#x, batched %#x)",
							seed, cp, fpN, fpO)
					}
				}
				if err := dNaive.Verify(); err != nil {
					t.Fatalf("seed %d naive shadow check: %v", seed, err)
				}
				if err := dOpt.Verify(); err != nil {
					t.Fatalf("seed %d batched shadow check: %v", seed, err)
				}
				if err := core.AuditHeap(mOpt); err != nil {
					t.Fatalf("seed %d batched audit: %v", seed, err)
				}
				if got, want := mOpt.Clock.Now(), mNaive.Clock.Now(); got != want {
					t.Fatalf("seed %d: simulated clocks diverge (batched %d, naive %d)", seed, got, want)
				}
				if got, want := mOpt.Clock.Breakdown(), mNaive.Clock.Breakdown(); got != want {
					t.Fatalf("seed %d: simulated cost breakdowns diverge\nbatched %v\nnaive   %v", seed, got, want)
				}
			}
		})
	}
}

// TestCoalescingActuallyCoalesces guards against the property test passing
// vacuously: on the torture workload the coalesced barrier must suppress a
// visible fraction of the naive run's log appends.
func TestCoalescingActuallyCoalesces(t *testing.T) {
	cfg := coalesceConfigs()["rt"]
	mNaive, _ := newRun(cfg, core.LogAllMutations)
	mNaive.NaiveBarrier = true
	mCoal, _ := newRun(cfg, core.LogAllMutations)
	if err := gctest.NewDriver(mNaive, 42).Step(8000); err != nil {
		t.Fatal(err)
	}
	if err := gctest.NewDriver(mCoal, 42).Step(8000); err != nil {
		t.Fatal(err)
	}
	if mCoal.BarrierFastSkips+mCoal.BarrierDirtySkips == 0 {
		t.Fatal("coalesced run skipped nothing; fast paths never fired")
	}
	if mCoal.LogWrites >= mNaive.LogWrites {
		t.Fatalf("coalesced run logged %d entries, naive %d; expected a reduction",
			mCoal.LogWrites, mNaive.LogWrites)
	}
}

// TestRootSlotsZeroAllocs asserts the allocation-free root enumeration: once
// the reusable buffer has warmed to the root population's size, Slots()
// performs zero Go allocations — unlike Visit, whose per-call closure
// escapes. Also checks both enumerations agree on order and count.
func TestRootSlotsZeroAllocs(t *testing.T) {
	var rs core.RootSet
	table := make([]heap.Value, 2048)
	rs.Register(rootFunc(func(v core.RootVisitor) {
		for i := range table {
			v(&table[i])
		}
	}))

	var visited []*heap.Value
	n := rs.Visit(func(slot *heap.Value) { visited = append(visited, slot) })
	slots := rs.Slots()
	if n != len(table) || len(slots) != len(table) {
		t.Fatalf("enumeration counts disagree: Visit %d, Slots %d, want %d", n, len(slots), len(table))
	}
	for i := range slots {
		if slots[i] != visited[i] {
			t.Fatalf("slot %d: Slots and Visit enumerate different pointers", i)
		}
	}

	if a := testing.AllocsPerRun(200, func() { rs.Slots() }); a != 0 {
		t.Fatalf("Slots allocates %.1f times per enumeration, want 0", a)
	}
}

// TestBarrierFastPathZeroAllocs asserts the satellite requirement directly:
// the barrier fast path performs zero Go allocations per store, for both
// the nursery skip and the dirty-stamp skip.
func TestBarrierFastPathZeroAllocs(t *testing.T) {
	m := bareMutator()
	nursery := m.MustAlloc(heap.KindArray, 8)
	old, ok := m.H.AllocIn(m.H.OldFrom(), heap.KindArray, 8)
	if !ok {
		t.Fatal("old-space alloc failed")
	}
	m.Set(old, 0, heap.FromInt(0)) // prime the dirty stamp

	if n := testing.AllocsPerRun(1000, func() {
		m.Set(nursery, 0, heap.FromInt(7))
	}); n != 0 {
		t.Fatalf("nursery fast path allocates %.1f times per store, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		m.Set(old, 0, heap.FromInt(7))
	}); n != 0 {
		t.Fatalf("dirty-stamp fast path allocates %.1f times per store, want 0", n)
	}
}
