package core_test

import (
	"testing"

	"repligc/internal/core"
	"repligc/internal/gctest"
	"repligc/internal/heap"
)

// coalesceConfigs are the collector configurations the coalescing property
// is checked under: the real-time collector (both generations incremental,
// where log entries are consumed by minor and major cursors at different
// times), the stop-the-world core configuration, and the lazy-reapply
// ablation, whose deferred queue records sequence numbers of entries that
// coalescing makes scarcer.
func coalesceConfigs() map[string]core.Config {
	return map[string]core.Config{
		"rt": {
			NurseryBytes:        96 << 10,
			MajorThresholdBytes: 384 << 10,
			CopyLimitBytes:      8 << 10,
			IncrementalMinor:    true,
			IncrementalMajor:    true,
		},
		"stop-copy-core": {
			NurseryBytes:        96 << 10,
			MajorThresholdBytes: 384 << 10,
		},
		"rt-lazy": {
			NurseryBytes:        96 << 10,
			MajorThresholdBytes: 384 << 10,
			CopyLimitBytes:      8 << 10,
			IncrementalMinor:    true,
			IncrementalMajor:    true,
			LazyLogProcessing:   true,
		},
	}
}

// TestCoalescedReplayBitIdentical is the PR's property test: for seeded
// random workloads — including byte and non-pointer mutations — a run whose
// barrier coalesces log entries (dirty stamps + nursery fast path) must
// produce a heap bit-identical to a run with the naive append-every-store
// barrier. Identity is checked as equal reachable-graph fingerprints at
// every checkpoint plus a full shadow-model verification of both heaps:
// coalescing only changes how the log represents the exception set, never
// the contents the collector reconstructs.
func TestCoalescedReplayBitIdentical(t *testing.T) {
	const (
		steps       = 400
		checkpoints = 25
	)
	for name, cfg := range coalesceConfigs() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 6; seed++ {
				mNaive, _ := newRun(cfg, core.LogAllMutations)
				mNaive.NaiveBarrier = true
				mCoal, _ := newRun(cfg, core.LogAllMutations)

				dNaive := gctest.NewDriver(mNaive, seed)
				dCoal := gctest.NewDriver(mCoal, seed)
				for cp := 0; cp < checkpoints; cp++ {
					if err := dNaive.Step(steps); err != nil {
						t.Fatalf("seed %d naive: %v", seed, err)
					}
					if err := dCoal.Step(steps); err != nil {
						t.Fatalf("seed %d coalesced: %v", seed, err)
					}
					fpN, fpC := dNaive.Fingerprint(), dCoal.Fingerprint()
					if fpN != fpC {
						t.Fatalf("seed %d checkpoint %d: fingerprints diverge (naive %#x, coalesced %#x)",
							seed, cp, fpN, fpC)
					}
				}
				if err := dNaive.Verify(); err != nil {
					t.Fatalf("seed %d naive shadow check: %v", seed, err)
				}
				if err := dCoal.Verify(); err != nil {
					t.Fatalf("seed %d coalesced shadow check: %v", seed, err)
				}
				if err := core.AuditHeap(mCoal); err != nil {
					t.Fatalf("seed %d coalesced audit: %v", seed, err)
				}
				if mCoal.LogWrites > mNaive.LogWrites {
					t.Fatalf("seed %d: coalesced barrier wrote more entries (%d) than naive (%d)",
						seed, mCoal.LogWrites, mNaive.LogWrites)
				}
			}
		})
	}
}

// TestCoalescingActuallyCoalesces guards against the property test passing
// vacuously: on the torture workload the coalesced barrier must suppress a
// visible fraction of the naive run's log appends.
func TestCoalescingActuallyCoalesces(t *testing.T) {
	cfg := coalesceConfigs()["rt"]
	mNaive, _ := newRun(cfg, core.LogAllMutations)
	mNaive.NaiveBarrier = true
	mCoal, _ := newRun(cfg, core.LogAllMutations)
	if err := gctest.NewDriver(mNaive, 42).Step(8000); err != nil {
		t.Fatal(err)
	}
	if err := gctest.NewDriver(mCoal, 42).Step(8000); err != nil {
		t.Fatal(err)
	}
	if mCoal.BarrierFastSkips+mCoal.BarrierDirtySkips == 0 {
		t.Fatal("coalesced run skipped nothing; fast paths never fired")
	}
	if mCoal.LogWrites >= mNaive.LogWrites {
		t.Fatalf("coalesced run logged %d entries, naive %d; expected a reduction",
			mCoal.LogWrites, mNaive.LogWrites)
	}
}

// TestBarrierFastPathZeroAllocs asserts the satellite requirement directly:
// the barrier fast path performs zero Go allocations per store, for both
// the nursery skip and the dirty-stamp skip.
func TestBarrierFastPathZeroAllocs(t *testing.T) {
	m := bareMutator()
	nursery := m.MustAlloc(heap.KindArray, 8)
	old, ok := m.H.AllocIn(m.H.OldFrom(), heap.KindArray, 8)
	if !ok {
		t.Fatal("old-space alloc failed")
	}
	m.Set(old, 0, heap.FromInt(0)) // prime the dirty stamp

	if n := testing.AllocsPerRun(1000, func() {
		m.Set(nursery, 0, heap.FromInt(7))
	}); n != 0 {
		t.Fatalf("nursery fast path allocates %.1f times per store, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		m.Set(old, 0, heap.FromInt(7))
	}); n != 0 {
		t.Fatalf("dirty-stamp fast path allocates %.1f times per store, want 0", n)
	}
}
