package core

import (
	"repligc/internal/simtime"
)

// Collector is the contract between the mutator and a garbage collector.
type Collector interface {
	// Name identifies the configuration ("rt", "minor-inc", "sc", ...).
	Name() string

	// CollectForAlloc is invoked when the nursery cannot satisfy an
	// allocation of needWords payload+header words. The collector must
	// make the allocation possible (collect, flip, or expand the nursery)
	// or return a typed *OOMError once its degradation ladder is spent;
	// it must never panic on resource exhaustion, and the heap must stay
	// auditable (AuditHeap) after an error.
	CollectForAlloc(m *Mutator, needWords int) error

	// AfterAlloc is invoked after every successful nursery allocation so
	// that replay-driven collectors can trigger collections at recorded
	// allocation marks rather than at nursery exhaustion.
	AfterAlloc(m *Mutator)

	// FinishCycles drives any in-progress incremental collections to
	// completion. Benchmarks call it once at the end of a run so that
	// total copying work is comparable across configurations. Like
	// CollectForAlloc it surfaces exhaustion as a typed *OOMError.
	FinishCycles(m *Mutator) error

	// Stats exposes the collector's counters.
	Stats() *GCStats

	// Pauses exposes the pause recorder.
	Pauses() *simtime.Recorder
}

// GCStats counts collector work in the units the paper reports.
type GCStats struct {
	MinorCollections int   // completed minor collections (flips)
	MajorCollections int   // completed major collections (flips)
	PauseCount       int   // number of mutator pauses
	BytesCopiedMinor int64 // bytes replicated nursery -> old
	BytesCopiedMajor int64 // bytes replicated old-from -> old-to
	LogScanned       int64 // log entries examined
	LogReapplied     int64 // logged mutations reapplied to replicas
	FlipEntryUpdates int64 // logged locations re-pointed during flips
	RootSlotUpdates  int64 // root slots scanned or updated
	ForcedCompletion int   // incremental collections forced non-incremental
	NurseryExpansion int64 // bytes of nursery expansion granted (param A)

	// EmergencyCollections counts degradation-ladder activations: pauses
	// promoted to full stop-the-world completion because the promotion
	// target's headroom fell below the reservation (nursery contents plus
	// the promotion high-water mark), or because a failed old-space
	// allocation requested an emergency major.
	EmergencyCollections int

	// FlipCopied records the cumulative TotalBytesCopied at each minor
	// flip. Comparing two runs with synchronized flips at their last
	// common flip index yields the paper's latent-garbage measurement
	// (table 3).
	FlipCopied []int64
}

// EmergencyCollector is implemented by collectors that can run a
// last-resort stop-the-world collection — the top rung of the degradation
// ladder — when a direct old-generation allocation fails. The mutator
// invokes it once and retries the allocation; only if the retry also
// fails does the typed error surface.
type EmergencyCollector interface {
	CollectEmergency(m *Mutator) error
}

// TotalBytesCopied is the collector's total copying volume; the difference
// between an incremental run and a synchronized stop-and-copy run is the
// paper's latent garbage (table 3).
func (s *GCStats) TotalBytesCopied() int64 { return s.BytesCopiedMinor + s.BytesCopiedMajor }
