package core

// Multi-mutator groups: N mutator contexts sharing one heap and one
// collector.
//
// The paper's replication collector was built for ML threads — many mutators
// over a single heap, with the collector interleaved between them. The
// context split here reproduces that shape. A Group owns the state that is
// logically per-heap (the collector-facing mutation log, the root set, the
// simulated clock, the collector), while each member Mutator keeps what is
// logically per-thread: its own nursery bump chunk (allocation between
// safepoints touches no shared cursor), its own private mutation log (the
// write barrier appends with no sharing), and its own shadow handle stack
// (registered as one more source in the shared root set, so root
// enumeration at flips spans every mutator).
//
// The merge rule is the same one internal/checkpoint relies on for WAL
// commit: entries are value-free, so the log is a set of dirty locations,
// not a sequence of values. At every pause entry — before any log cursor
// moves — the group seals each member's chunk and folds each member's
// private log into the shared log in canonical (Obj, Slot, Byte, Len)
// order, dropping exact duplicates. Replay re-reads the slot's current
// contents, so the merged order (and the order members ran in) cannot
// change what any entry applies. The shared heap's dirty-stamp table is
// keyed by the heap-wide log epoch, which BeginLogEpoch advances at that
// same pause entry, so every member's coalescing stamps are invalidated
// together.
//
// Time: members share one Clock, which therefore accumulates total work —
// the serial timeline. Run/reconcile project that serial timeline onto
// per-mutator wall timelines in which only a pause's Sync portion (root
// scan, flip, checkpoint commit) stops everyone, while the rest of the
// pause overlaps with other mutators' execution. The collector is one more
// actor on those timelines: its non-sync pause work advances only its own
// wall clock and that of the mutator whose allocation triggered the pause.
// Utilization and MMU computed from the group recorder thus reflect genuine
// mutator/collector overlap, while determinism is untouched — wall
// accounting observes the serial execution, it never steers it.

import (
	"sort"

	"repligc/internal/heap"
	"repligc/internal/simtime"
)

// Group is a set of mutator contexts sharing one heap, one collector, one
// collector-facing mutation log and one root set.
type Group struct {
	H     *heap.Heap
	Clock *simtime.Clock // shared total-work timeline (per-member in goroutine-backed groups)
	Log   *MutationLog   // the collector-facing log every member merges into
	Roots *RootSet       // every member's handle stack plus externally registered sources
	GC    Collector

	Members []*Mutator

	// Overlap selects the multi-actor time model. When set, only a pause's
	// Sync portion stops every mutator; the remainder overlaps with the
	// other mutators. When clear, every pause stops everyone for its full
	// length — the serial model, useful as a baseline.
	Overlap bool

	// MergedEntries counts log entries folded into the shared log at pause
	// entries; MergeDropped counts the exact duplicates the canonical-order
	// dedup removed on top of that.
	MergedEntries int64
	MergeDropped  int64

	chunkWords uint64
	mergeOrder []int      // member order for draining locals; nil = index order
	scratch    []LogEntry // reused merge buffer

	par *parRendezvous // non-nil when goroutine-backed (see parallel.go)

	// Wall-timeline projection state (see reconcileTo).
	wall       []simtime.Duration // per-member wall clocks
	work       []simtime.Duration // per-member useful (non-waiting) time
	wallGC     simtime.Duration   // the collector actor's wall clock
	reconciled simtime.Duration   // serial-clock point folded in so far
	pauseSeen  int                // pauses of GC.Pauses() folded in so far
	rec        simtime.Recorder   // all-stopped intervals, in wall coordinates
}

// NewGroup builds a group of n mutator contexts over h. With n == 1 the
// single member is configured exactly like a solo NewMutator mutator — the
// shared log is its barrier target and allocation bumps the space cursor
// directly — so one-member group runs are bit-identical to pre-group runs.
// With n > 1 each member gets a private log and a private nursery chunk.
func NewGroup(h *heap.Heap, clock *simtime.Clock, cost simtime.CostModel, policy LogPolicy, n int) *Group {
	if n < 1 {
		//gclint:allow panicpath -- invariant: construction-time misuse, not resource exhaustion
		panic("core: group needs at least one mutator")
	}
	g := &Group{
		H:       h,
		Clock:   clock,
		Log:     &MutationLog{},
		Roots:   &RootSet{},
		Overlap: true,
		wall:    make([]simtime.Duration, n),
		work:    make([]simtime.Duration, n),
	}
	for i := 0; i < n; i++ {
		m := &Mutator{
			H:      h,
			Clock:  clock,
			Cost:   cost,
			Log:    g.Log,
			Roots:  g.Roots,
			Policy: policy,
			Actor:  i,
			group:  g,
		}
		m.local = g.Log
		if n > 1 {
			m.local = &MutationLog{}
			m.chunked = true
		}
		g.Roots.Register(&m.handles)
		g.Members = append(g.Members, m)
	}

	// Chunks sized so each member refills a handful of times per nursery
	// fill: a quarter of an even split, clamped to keep both the refill
	// rate and the sealed-filler waste bounded.
	cw := uint64(h.Nursery.LimitBytes()) / heap.BytesPerWord / uint64(4*n)
	if cw < 64 {
		cw = 64
	}
	if cw > 8192 {
		cw = 8192
	}
	g.chunkWords = cw

	prev := h.PreEpochHook
	h.PreEpochHook = func() {
		if prev != nil {
			prev()
		}
		g.pauseEntry()
	}
	return g
}

// AttachGC wires the collector into the group and every member.
func (g *Group) AttachGC(gc Collector) {
	g.GC = gc
	for _, m := range g.Members {
		m.AttachGC(gc)
	}
}

// SetMergeOrder overrides the order member logs are drained in at merge
// time (a permutation of member indices). It exists so tests can prove the
// canonical merge makes results independent of drain order; nil restores
// index order.
func (g *Group) SetMergeOrder(order []int) { g.mergeOrder = order }

// pauseEntry is the group's half of pause entry, invoked from
// Heap.BeginLogEpoch before the log epoch advances: every member's nursery
// chunk is sealed (the nursery must walk as a dense object sequence while
// the collector owns it) and every member's private log is folded into the
// shared log, so that no collector cursor can move before all members'
// mutations are visible. The epoch advance that follows invalidates every
// member's coalescing stamps at once.
//
//gclint:pauseentry invoked only from Heap.BeginLogEpoch, which every collector calls immediately after Clock.BeginPause (and goroutine-backed groups call only with all members parked at the stop-the-world rendezvous)
func (g *Group) pauseEntry() {
	for _, m := range g.Members {
		if m.chunked {
			g.H.SealChunk(&m.chunk)
		}
	}
	g.mergeLogs()
}

// mergeLogs drains each member's private log and appends the union to the
// shared log in canonical (Obj, Slot, Byte, Len) order with exact
// duplicates removed. Entries are value-free, so dropping a duplicate and
// ordering canonically are both sound — replay re-reads current slot
// contents — and they make the merged log independent of the order members
// are drained in.
func (g *Group) mergeLogs() {
	batch := g.scratch[:0]
	if g.mergeOrder != nil {
		for _, i := range g.mergeOrder {
			batch = g.drainMember(batch, i)
		}
	} else {
		for i := range g.Members {
			batch = g.drainMember(batch, i)
		}
	}
	g.scratch = batch[:0]
	if len(batch) == 0 {
		return
	}
	sort.Slice(batch, func(i, j int) bool { return entryLess(batch[i], batch[j]) })
	for i, e := range batch {
		if i > 0 && e == batch[i-1] {
			g.MergeDropped++
			continue
		}
		g.Log.Append(e)
		g.MergedEntries++
	}
}

func (g *Group) drainMember(batch []LogEntry, i int) []LogEntry {
	if m := g.Members[i]; m.local != g.Log {
		batch = append(batch, m.local.TakeAll()...)
	}
	return batch
}

// entryLess is the canonical merge order.
func entryLess(a, b LogEntry) bool {
	if a.Obj != b.Obj {
		return a.Obj < b.Obj
	}
	if a.Slot != b.Slot {
		return a.Slot < b.Slot
	}
	if a.Byte != b.Byte {
		return !a.Byte // word entries before byte entries on the same slot
	}
	return a.Len < b.Len
}

// refillAlloc is the slow path of a chunked member's nursery allocation:
// the current chunk is out of room, so seal it and carve a fresh one off
// the shared cursor. Objects larger than a chunk, and the nursery's final
// sub-chunk tail, fall back to direct shared-cursor allocation. In a
// goroutine-backed group this entire path runs under the group lock (and
// parks first if a collection is in progress), which is what keeps the
// common chunk-interior path lock-free.
func (g *Group) refillAlloc(m *Mutator, k heap.Kind, n int) (heap.Value, bool) {
	if g.par != nil {
		g.par.mu.Lock()
		defer g.par.mu.Unlock()
		g.par.parkIfStoppedLocked()
	}
	need := uint64(heap.MakeHeader(k, n).SizeWords())
	if need > g.chunkWords {
		return m.H.AllocIn(&m.H.Nursery, k, n)
	}
	m.H.SealChunk(&m.chunk)
	c, ok := m.H.ReserveChunk(&m.H.Nursery, g.chunkWords)
	if !ok {
		return m.H.AllocIn(&m.H.Nursery, k, n)
	}
	m.chunk = c
	return m.H.AllocInChunk(&m.chunk, k, n)
}

// Run executes one quantum of member i — f runs against that member — and
// folds the serial-clock time it consumed into the wall timelines. Callers
// drive a group by interleaving quanta: each member makes progress on the
// shared clock in turn, and any pauses the collector took during the
// quantum are attributed per the overlap model.
func (g *Group) Run(i int, f func(m *Mutator) error) error {
	g.reconcileTo(-1, g.Clock.Now())
	err := f(g.Members[i])
	g.reconcileTo(i, g.Clock.Now())
	return err
}

// reconcileTo folds the serial-clock segment (g.reconciled, upTo] into the
// per-actor wall timelines. actor is the member whose quantum produced the
// segment, or -1 for time elapsed outside any quantum (setup, teardown,
// direct collector calls), which is treated as a global barrier.
//
// Within the segment, non-pause time is the actor's own progress: its wall
// and work clocks advance, nobody else's do. Each pause recorded by the
// collector becomes an all-stopped rendezvous of only its Sync duration:
// every actor's wall clock is brought to the barrier point (the maximum
// wall time so far — actors that were "ahead" are simply waited for) and
// advanced by Sync. The remaining pause work belongs to the collector
// actor: its wall clock, and that of the triggering member (whose
// allocation cannot complete until the pause ends), advance by the full
// pause length, overlapping the other members' subsequent quanta. With
// Overlap off (or for pauses whose Sync equals their length — emergencies,
// forced completions, stop-and-copy), the rendezvous spans the whole pause
// and the model degenerates to the serial timeline.
func (g *Group) reconcileTo(actor int, upTo simtime.Duration) {
	var ps []simtime.Pause
	if g.GC != nil {
		ps = g.GC.Pauses().Pauses
	}
	cl := g.reconciled
	for ; g.pauseSeen < len(ps) && ps[g.pauseSeen].At < upTo; g.pauseSeen++ {
		p := ps[g.pauseSeen]
		g.advance(actor, p.At-cl)
		sync := p.Sync
		if !g.Overlap || actor < 0 || sync <= 0 || sync > p.Length {
			sync = p.Length
		}
		t := g.wallGC
		for _, w := range g.wall {
			if w > t {
				t = w
			}
		}
		g.rec.Record(simtime.Pause{
			At: t, Length: sync, Sync: sync,
			Kind: p.Kind, CopiedB: p.CopiedB, LogProcN: p.LogProcN,
		})
		for j := range g.wall {
			g.wall[j] = t + sync
		}
		g.wallGC = t + p.Length
		if actor >= 0 {
			g.wall[actor] = t + p.Length
		}
		cl = p.At + p.Length
	}
	g.advance(actor, upTo-cl)
	g.reconciled = upTo
}

// advance credits d of mutator-side progress to actor (or to everyone, as
// barrier time, when actor < 0).
func (g *Group) advance(actor int, d simtime.Duration) {
	if d <= 0 {
		return
	}
	if actor < 0 {
		for j := range g.wall {
			g.wall[j] += d
		}
		return
	}
	g.wall[actor] += d
	g.work[actor] += d
}

// Elapsed reports the group's wall-clock makespan: the furthest wall
// timeline, collector actor included. With one member this equals the
// serial clock; with overlap it is smaller than the serial clock by
// exactly the overlapped collector work.
func (g *Group) Elapsed() simtime.Duration {
	e := g.wallGC
	for _, w := range g.wall {
		if w > e {
			e = w
		}
	}
	return e
}

// Work reports member i's accumulated useful (non-waiting) wall time.
func (g *Group) Work(i int) simtime.Duration { return g.work[i] }

// Wall reports member i's current wall-clock time.
func (g *Group) Wall(i int) simtime.Duration { return g.wall[i] }

// Utilization reports member i's useful fraction of the group makespan.
func (g *Group) Utilization(i int) float64 {
	e := g.Elapsed()
	if e <= 0 {
		return 1
	}
	return float64(g.work[i]) / float64(e)
}

// OverlapRatio reports serial-clock time over wall-clock makespan: 1.0 when
// nothing overlapped (one member, or Overlap off), and greater than 1 when
// mutators genuinely ran during collector-side pause work.
func (g *Group) OverlapRatio() float64 {
	e := g.Elapsed()
	if e <= 0 {
		return 1
	}
	return float64(g.Clock.Now()) / float64(e)
}

// GroupPauses exposes the all-stopped intervals in wall coordinates — the
// recorder to compute multi-mutator MMU from (simtime.MMUFromPauses).
func (g *Group) GroupPauses() *simtime.Recorder { return &g.rec }
