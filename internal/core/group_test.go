package core

import (
	"testing"

	"repligc/internal/heap"
	"repligc/internal/simtime"
)

func newTestGroup(t *testing.T, n int) *Group {
	t.Helper()
	h := heap.New(heap.Config{NurseryBytes: 256 << 10, NurseryCapBytes: 1 << 20, OldSemiBytes: 4 << 20})
	g := NewGroup(h, simtime.NewClock(), simtime.Default1993(), LogAllMutations, n)
	// The log-centric tests below store into fresh nursery objects, which
	// the coalescing barrier's fast path would never log (copied whole at
	// the next startMinor); the naive barrier logs every mutation, so the
	// merge paths actually see entries.
	for _, m := range g.Members {
		m.NaiveBarrier = true
	}
	return g
}

// TestGroupSoloSharesLog pins the bit-identity precondition: a one-member
// group's barrier appends straight to the shared log and allocation bumps
// the space cursor (no chunking), exactly like a solo NewMutator mutator.
func TestGroupSoloSharesLog(t *testing.T) {
	g := newTestGroup(t, 1)
	m := g.Members[0]
	if m.local != g.Log {
		t.Fatal("one-member group does not share the collector-facing log")
	}
	if m.chunked {
		t.Fatal("one-member group should not chunk its nursery")
	}
	p, err := m.Alloc(heap.KindRef, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Set(p, 0, heap.FromInt(42))
	if g.Log.Retained() != 1 {
		t.Fatalf("barrier wrote %d entries to the shared log, want 1", g.Log.Retained())
	}
}

// TestGroupMergeAtPauseEntry checks the tentpole invariant: members' private
// logs drain into the shared log when the heap begins a new coalescing
// epoch, in canonical order with exact duplicates removed, and member
// chunks are sealed so the nursery still walks densely.
func TestGroupMergeAtPauseEntry(t *testing.T) {
	g := newTestGroup(t, 2)
	m0, m1 := g.Members[0], g.Members[1]

	p0, err := m0.Alloc(heap.KindArray, 4)
	if err != nil {
		t.Fatal(err)
	}
	h0 := m0.PushHandle(p0)

	// Both members mutate the same object; member 1 also hits the same
	// slot, producing an exact duplicate entry across the two private logs.
	m0.Set(p0, 0, heap.FromInt(1))
	m0.Set(p0, 1, heap.FromInt(2))
	m1.Set(p0, 0, heap.FromInt(3))
	m1.Set(p0, 2, heap.FromInt(4))

	if g.Log.Retained() != 0 {
		t.Fatalf("entries reached the shared log before any pause: %d", g.Log.Retained())
	}
	if m0.local.Retained() != 2 || m1.local.Retained() != 2 {
		t.Fatalf("private log counts: %d and %d, want 2 and 2", m0.local.Retained(), m1.local.Retained())
	}

	g.H.BeginLogEpoch() // pause entry

	if m0.local.Retained() != 0 || m1.local.Retained() != 0 {
		t.Fatal("private logs not drained at pause entry")
	}
	// Slots 0 (deduped), 1, 2 → three merged entries.
	if got := g.Log.Retained(); got != 3 {
		t.Fatalf("shared log holds %d entries after merge, want 3", got)
	}
	if g.MergeDropped != 1 {
		t.Fatalf("MergeDropped = %d, want 1 (the duplicate slot-0 entry)", g.MergeDropped)
	}
	// Canonical order: ascending slot on the same object.
	for i := int64(0); i < 3; i++ {
		e := g.Log.At(g.Log.Base() + i)
		if e.Obj != p0 || e.Slot != int32(i) {
			t.Fatalf("merged entry %d = %+v, want slot %d of %v", i, e, i, p0)
		}
	}
	// Chunks sealed: the nursery must walk as a dense object sequence.
	seen := 0
	g.H.WalkObjects(&g.H.Nursery, func(p heap.Value, hdr heap.Header) bool {
		seen++
		return true
	})
	if seen == 0 {
		t.Fatal("nursery walk saw no objects")
	}
	_ = h0
}

// TestGroupMergeOrderIndependent runs the same cross-member mutation set
// under opposite drain orders and requires identical shared-log contents —
// the canonical sort plus value-free dedup is what buys this.
func TestGroupMergeOrderIndependent(t *testing.T) {
	run := func(order []int) []LogEntry {
		g := newTestGroup(t, 2)
		g.SetMergeOrder(order)
		m0, m1 := g.Members[0], g.Members[1]
		p, err := m0.Alloc(heap.KindArray, 6)
		if err != nil {
			t.Fatal(err)
		}
		m0.PushHandle(p)
		m0.Set(p, 3, heap.FromInt(1))
		m1.Set(p, 1, heap.FromInt(2))
		m0.Set(p, 5, heap.FromInt(3))
		m1.Set(p, 3, heap.FromInt(4)) // duplicate slot across members
		g.H.BeginLogEpoch()
		var out []LogEntry
		for s := g.Log.Base(); s < g.Log.Len(); s++ {
			out = append(out, g.Log.At(s))
		}
		return out
	}
	a, b := run(nil), run([]int{1, 0})
	if len(a) != len(b) {
		t.Fatalf("merged lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs across drain orders: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestGroupMergePreservesPin is the checkpoint-interaction bugfix check: a
// WAL pin taken on the shared log before members logged anything must keep
// every merged entry reachable through the pinned range — merging happens
// at pause entry, before any cursor moves or trim runs, so a trim to the
// log head right after the merge must still retain the pinned suffix
// (including entries that originated in a different mutator's private log).
func TestGroupMergePreservesPin(t *testing.T) {
	g := newTestGroup(t, 2)
	m0, m1 := g.Members[0], g.Members[1]
	p, err := m0.Alloc(heap.KindArray, 4)
	if err != nil {
		t.Fatal(err)
	}
	m0.PushHandle(p)

	// Open a checkpoint epoch: pin the shared log at its current head,
	// exactly what checkpoint.Writer does with MinorLogCursor.
	walBase := g.Log.Len()
	g.Log.Pin(walBase)

	m0.Set(p, 0, heap.FromInt(10))
	m1.Set(p, 1, heap.FromInt(11))

	g.H.BeginLogEpoch() // merge lands the entries above the pin

	merged := g.Log.Len() - walBase
	if merged < 2 {
		t.Fatalf("merged %d entries above the pin, want >= 2", merged)
	}

	// A flip-style trim to the head must be clamped to the pin.
	g.Log.TrimTo(g.Log.Len())
	if g.Log.Base() != walBase {
		t.Fatalf("trim passed the pin: base %d, pin %d", g.Log.Base(), walBase)
	}
	// The WAL replay range must still be fully readable, member-1-origin
	// entries included.
	sawM1 := false
	for s := walBase; s < g.Log.Len(); s++ {
		e := g.Log.At(s)
		if e.Obj == p && e.Slot == 1 && !e.Byte {
			sawM1 = true
		}
	}
	if !sawM1 {
		t.Fatal("member 1's pinned entry did not survive the merge+trim")
	}

	// After commit the pin lifts and the trim completes.
	g.Log.Unpin()
	g.Log.TrimTo(g.Log.Len())
	if g.Log.Retained() != 0 {
		t.Fatalf("log retains %d entries after unpin+trim, want 0", g.Log.Retained())
	}
}

// TestGroupChunkedAllocation drives a member through several chunk refills
// and checks the nursery stays densely walkable after sealing.
func TestGroupChunkedAllocation(t *testing.T) {
	g := newTestGroup(t, 4)
	var ps []heap.Value
	for i, m := range g.Members {
		for k := 0; k < 200; k++ {
			p, err := m.Alloc(heap.KindRecord, 1+(i+k)%7)
			if err != nil {
				t.Fatal(err)
			}
			m.Init(p, 0, heap.FromInt(int64(i*1000+k)))
			if k%10 == 0 {
				m.PushHandle(p)
				ps = append(ps, p)
			}
		}
	}
	g.H.BeginLogEpoch() // seal all chunks
	// The walk must traverse every allocated object and filler without
	// tripping over a malformed header.
	var live, fillers int
	g.H.WalkObjects(&g.H.Nursery, func(p heap.Value, hdr heap.Header) bool {
		if hdr.Kind() == heap.KindBytes {
			fillers++
		} else {
			live++
		}
		return true
	})
	if live < 800 {
		t.Fatalf("walk saw %d records, want >= 800", live)
	}
	if fillers == 0 {
		t.Fatal("sealing produced no fillers despite multiple open chunks")
	}
	// Spot-check object contents survived chunked allocation.
	for i, p := range ps {
		if v := g.Members[0].Get(p, 0); !v.IsInt() {
			t.Fatalf("object %d slot 0 not an int: %v", i, v)
		}
	}
}

// TestGroupOversizedFallsBack pins the big-object path: an object larger
// than a chunk must come off the shared cursor, not wedge the chunk loop.
func TestGroupOversizedFallsBack(t *testing.T) {
	g := newTestGroup(t, 2)
	m := g.Members[0]
	// Larger than chunkWords (max 8192 words) is impossible within the
	// nursery here; use a size bigger than the computed chunk but small
	// enough to fit: chunk words for a 256 KiB nursery and n=2 is
	// 256Ki/8/8 = 4096 words. 5000 payload words exceeds it.
	p, err := m.Alloc(heap.KindArray, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsPtr() {
		t.Fatal("oversized alloc returned non-pointer")
	}
}

// stubCollector feeds Run/reconcile a hand-authored pause stream.
type stubCollector struct {
	rec   simtime.Recorder
	stats GCStats
}

func (s *stubCollector) Name() string                        { return "stub" }
func (s *stubCollector) CollectForAlloc(*Mutator, int) error { return nil }
func (s *stubCollector) AfterAlloc(*Mutator)                 {}
func (s *stubCollector) FinishCycles(*Mutator) error         { return nil }
func (s *stubCollector) Stats() *GCStats                     { return &s.stats }
func (s *stubCollector) Pauses() *simtime.Recorder           { return &s.rec }

// TestGroupWallAccounting hand-computes the overlap projection for a
// two-member group with one pause: only the Sync portion stops both
// members; the remainder overlaps member 1's next quantum.
func TestGroupWallAccounting(t *testing.T) {
	g := newTestGroup(t, 2)
	stub := &stubCollector{}
	g.AttachGC(stub)

	const q = 100 * simtime.Microsecond
	// Quantum 1: member 0 runs q, then a pause of 40us with 10us sync.
	if err := g.Run(0, func(m *Mutator) error {
		m.Clock.Charge(simtime.AcctMutator, q)
		at := m.Clock.Now()
		m.Clock.Charge(simtime.AcctMinorCopy, 40*simtime.Microsecond)
		stub.rec.Record(simtime.Pause{At: at, Length: 40 * simtime.Microsecond, Sync: 10 * simtime.Microsecond})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Quantum 2: member 1 runs q.
	if err := g.Run(1, func(m *Mutator) error {
		m.Clock.Charge(simtime.AcctMutator, q)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Expectations: barrier at t=100us (both members' walls level), sync
	// 10us stops both; member 0 (the triggerer) waits the full 40us.
	// wall0 = 100 + 40 = 140. wall1 = 100 + 10 + 100 = 210.
	if w0 := g.Wall(0); w0 != 140*simtime.Microsecond {
		t.Fatalf("wall0 = %v, want 140us", w0)
	}
	if w1 := g.Wall(1); w1 != 210*simtime.Microsecond {
		t.Fatalf("wall1 = %v, want 210us", w1)
	}
	// Serial clock advanced 240us; makespan is 210us → overlap ratio > 1.
	if g.Clock.Now() != 240*simtime.Microsecond {
		t.Fatalf("serial clock = %v, want 240us", g.Clock.Now())
	}
	if e := g.Elapsed(); e != 210*simtime.Microsecond {
		t.Fatalf("elapsed = %v, want 210us", e)
	}
	if r := g.OverlapRatio(); r <= 1 {
		t.Fatalf("overlap ratio = %v, want > 1", r)
	}
	// Each member performed exactly one quantum of useful time.
	if g.Work(0) != q || g.Work(1) != q {
		t.Fatalf("work = %v, %v; want %v each", g.Work(0), g.Work(1), q)
	}
	// The group recorder holds one all-stopped interval of the sync length
	// at the barrier point.
	ps := g.GroupPauses().Pauses
	if len(ps) != 1 || ps[0].Length != 10*simtime.Microsecond || ps[0].At != q {
		t.Fatalf("group pauses = %+v, want one 10us pause at 100us", ps)
	}
	// MMU over a 50us window must reflect the 10us stop, not the 40us one.
	if mmu := simtime.MMUFromPauses(ps, g.Elapsed(), 50*simtime.Microsecond); mmu < 0.79 || mmu > 0.81 {
		t.Fatalf("MMU(50us) = %v, want 0.8", mmu)
	}
}

// TestGroupSoloWallMatchesClock pins the degenerate case: a one-member
// group's wall timeline tracks the serial clock exactly — the sole mutator
// waits out every pause in full, so nothing overlaps and the projection is
// the identity.
func TestGroupSoloWallMatchesClock(t *testing.T) {
	g := newTestGroup(t, 1)
	stub := &stubCollector{}
	g.AttachGC(stub)
	for i := 0; i < 4; i++ {
		withPause := i == 1 || i == 3
		if err := g.Run(0, func(m *Mutator) error {
			m.Clock.Charge(simtime.AcctMutator, 50*simtime.Microsecond)
			if withPause {
				at := m.Clock.Now()
				m.Clock.Charge(simtime.AcctMinorCopy, 30*simtime.Microsecond)
				stub.rec.Record(simtime.Pause{At: at, Length: 30 * simtime.Microsecond, Sync: 5 * simtime.Microsecond})
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if g.Elapsed() != g.Clock.Now() {
		t.Fatalf("solo group: elapsed %v != clock %v", g.Elapsed(), g.Clock.Now())
	}
	if r := g.OverlapRatio(); r != 1 {
		t.Fatalf("solo group overlap ratio = %v, want 1", r)
	}
	// With Overlap off a two-member group records full-length stops.
	g2 := newTestGroup(t, 2)
	g2.Overlap = false
	stub2 := &stubCollector{}
	g2.AttachGC(stub2)
	if err := g2.Run(0, func(m *Mutator) error {
		m.Clock.Charge(simtime.AcctMutator, 50*simtime.Microsecond)
		at := m.Clock.Now()
		m.Clock.Charge(simtime.AcctMinorCopy, 30*simtime.Microsecond)
		stub2.rec.Record(simtime.Pause{At: at, Length: 30 * simtime.Microsecond, Sync: 5 * simtime.Microsecond})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	ps := g2.GroupPauses().Pauses
	if len(ps) != 1 || ps[0].Length != 30*simtime.Microsecond {
		t.Fatalf("Overlap=false pause = %+v, want full 30us stop", ps)
	}
}
