// Package core implements the paper's primary contribution: the
// replication-based incremental garbage collector with its from-space
// invariant, mutation log, bounded copy budgets and atomic flips, together
// with the mutator interface (allocation, write barrier, getheader) that
// both the MiniML virtual machine and the MiniML compiler run on.
//
// The collector (Replicating, in replica.go) is the unified incremental
// engine: with both generations incremental it is the paper's real-time
// collector; with only one generation incremental it is the minor- or
// major-incremental configuration of the paper's §4.4 study. The
// stop-and-copy baseline lives in internal/stopcopy as an independent,
// destructively-forwarding implementation, mirroring the paper's comparison
// against the original SML/NJ collector.
package core

import (
	"repligc/internal/heap"
)

// LogPolicy selects which mutations the mutator records, reproducing the
// paper's compiler configurations (§4.5).
type LogPolicy int

const (
	// LogPointersOnly is the unmodified SML/NJ storelist: only stores of
	// pointer values are logged (they are what a generational collector
	// needs). Integer-ref and byte mutations are not recorded.
	LogPointersOnly LogPolicy = iota
	// LogAllMutations is the paper's modified compiler: every mutation is
	// logged, as replication collection requires.
	LogAllMutations
)

// String names the policy.
func (p LogPolicy) String() string {
	if p == LogPointersOnly {
		return "pointers-only"
	}
	return "all-mutations"
}

// LogEntry records one mutation: which object, which slot, and whether the
// slot is a word or a byte. The mutated value is deliberately absent:
// entries are re-read at processing time, so a later mutation of the same
// slot is handled by whichever entry is processed last (paper §2.1).
type LogEntry struct {
	Obj  heap.Value // the mutated (from-space original) object
	Slot int32      // word index, or starting byte index when Byte is set
	Len  int32      // number of bytes covered (byte entries only; >= 1)
	Byte bool       // byte-granularity store (never a pointer)
}

// MutationLog is the storelist: an append-only sequence of mutation records
// shared by the minor and major collections, each of which consumes entries
// through its own cursor. Entries below both cursors are trimmed.
type MutationLog struct {
	entries []LogEntry
	base    int64 // sequence number of entries[0]

	// pin, while pinned, is a low-water mark TrimTo may not pass: an open
	// checkpoint epoch replays every entry from its pin at commit time, so
	// trimming past it would silently drop write-ahead-log records and the
	// recovered heap would miss mutations.
	pin    int64
	pinned bool
}

// Pin clamps all future TrimTo calls to seq: entries at and above seq stay
// retained until Unpin. Pinning below the current base cannot resurrect
// already-trimmed entries; the effective pin is max(seq, Base()).
func (l *MutationLog) Pin(seq int64) {
	if seq < l.base {
		seq = l.base
	}
	l.pin, l.pinned = seq, true
}

// Unpin lifts the trim clamp.
func (l *MutationLog) Unpin() { l.pinned = false }

// Pinned reports the active pin, or (0, false).
func (l *MutationLog) Pinned() (int64, bool) { return l.pin, l.pinned }

// Restore replaces the log's contents wholesale: entries[0] gets sequence
// number base. It is the recovery path's entry point (the retained suffix of
// a checkpointed run's log is part of the checkpoint); the log is left
// unpinned.
func (l *MutationLog) Restore(base int64, entries []LogEntry) {
	l.entries = append(l.entries[:0:0], entries...)
	l.base = base
	l.pinned = false
}

// Append adds an entry and returns its sequence number.
func (l *MutationLog) Append(e LogEntry) int64 {
	l.entries = append(l.entries, e)
	return l.base + int64(len(l.entries)) - 1
}

// Len returns the sequence number just past the newest entry.
func (l *MutationLog) Len() int64 { return l.base + int64(len(l.entries)) }

// Base returns the sequence number of the oldest retained entry.
func (l *MutationLog) Base() int64 { return l.base }

// At returns the entry with sequence number seq, which must be retained.
func (l *MutationLog) At(seq int64) LogEntry {
	if seq < l.base || seq >= l.Len() {
		//gclint:allow panicpath -- invariant: cursors never pass TrimTo's low-water mark
		panic("core: log sequence out of range")
	}
	return l.entries[seq-l.base]
}

// trimCompactFloor keeps tiny logs from compacting on every trim: below
// this capacity the retained/capacity ratio is noise.
const trimCompactFloor = 64

// TrimTo discards entries below seq (all cursors must have passed seq).
// While a checkpoint pin is active the trim is clamped to the pin, so an
// epoch's write-ahead range can never be truncated out from under it.
//
// The common trim is an O(1) re-slice; the discarded prefix lingers in the
// backing array until the next growth reallocation drops it. Only when the
// retained suffix has shrunk below a quarter of the remaining capacity is
// it copied into a right-sized array, so a sequence of m small trims costs
// O(m) amortised instead of the old copy-the-tail behaviour's
// O(m·retained), and a huge log spike cannot pin its backing array behind a
// handful of surviving entries.
func (l *MutationLog) TrimTo(seq int64) {
	if l.pinned && seq > l.pin {
		seq = l.pin
	}
	if seq <= l.base {
		return
	}
	if seq > l.Len() {
		seq = l.Len()
	}
	n := seq - l.base
	l.entries = l.entries[n:]
	l.base = seq
	if c := cap(l.entries); c > trimCompactFloor && len(l.entries) < c/4 {
		compact := make([]LogEntry, len(l.entries))
		copy(compact, l.entries)
		l.entries = compact
	}
}

// TakeAll removes and returns every retained entry, advancing the base past
// them, as if every cursor had consumed the log. It is the draining half of
// the multi-mutator merge: a group empties each member's private log into
// the shared collector-facing log at pause entry. Private logs have no
// cursors and are never pinned — checkpoint pins target the shared log the
// entries are merged into, so a pinned write-ahead range survives the merge
// by construction (the entries land above the shared log's pin before any
// trim can run). The returned slice aliases the log's old backing array and
// is valid until the caller discards it.
func (l *MutationLog) TakeAll() []LogEntry {
	es := l.entries
	l.base += int64(len(es))
	l.entries = nil
	return es
}

// Retained reports how many entries are currently held.
func (l *MutationLog) Retained() int { return len(l.entries) }

// Capacity reports the capacity of the backing array from the current base
// onward. It exists so tests can pin TrimTo's compaction behaviour.
func (l *MutationLog) Capacity() int { return cap(l.entries) }
