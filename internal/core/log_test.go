package core

import (
	"testing"

	"repligc/internal/heap"
)

// TestTrimToCompacts pins the satellite fix for TrimTo's worst case: a log
// spike followed by trims must not leave a huge backing array pinned behind
// a few retained entries, and repeated small trims must not retain the full
// original capacity forever.
func TestTrimToCompacts(t *testing.T) {
	var l MutationLog
	const spike = 4096
	for i := 0; i < spike; i++ {
		l.Append(LogEntry{Obj: heap.Value(8), Slot: int32(i)})
	}
	spikeCap := l.Capacity()
	if spikeCap < spike {
		t.Fatalf("capacity %d below appended count %d", spikeCap, spike)
	}

	// Trim away all but 16 entries: retained << cap/4, so the backing
	// array must be replaced by a right-sized one.
	l.TrimTo(l.Len() - 16)
	if got := l.Retained(); got != 16 {
		t.Fatalf("Retained() = %d, want 16", got)
	}
	if l.Capacity() >= spikeCap/4 {
		t.Fatalf("TrimTo retained capacity %d of spike capacity %d; want compaction below 1/4", l.Capacity(), spikeCap)
	}

	// The retained entries must survive compaction with sequence numbers
	// intact.
	for seq := l.Base(); seq < l.Len(); seq++ {
		if got := l.At(seq); int64(got.Slot) != seq {
			t.Fatalf("entry %d corrupted after compaction: slot %d", seq, got.Slot)
		}
	}
}

// TestTrimToSmallLogsStayPut checks the compaction floor: trims on small
// logs are plain re-slices with no reallocation churn.
func TestTrimToSmallLogsStayPut(t *testing.T) {
	var l MutationLog
	for i := 0; i < trimCompactFloor; i++ {
		l.Append(LogEntry{Obj: heap.Value(8), Slot: int32(i)})
	}
	l.TrimTo(l.Len() - 2)
	if got := l.Retained(); got != 2 {
		t.Fatalf("Retained() = %d, want 2", got)
	}
	if l.Capacity() > trimCompactFloor {
		t.Fatalf("small log capacity %d exceeds floor %d", l.Capacity(), trimCompactFloor)
	}
}

// TestTrimToRepeatedSmallTrims drives the steady-state pattern — append a
// few, trim a few — and checks capacity stays bounded by a small multiple
// of the live window rather than growing with total log traffic.
func TestTrimToRepeatedSmallTrims(t *testing.T) {
	var l MutationLog
	const window = 128
	for round := 0; round < 2000; round++ {
		for i := 0; i < window; i++ {
			l.Append(LogEntry{Obj: heap.Value(8), Slot: int32(i)})
		}
		l.TrimTo(l.Len() - 8)
		if got := l.Retained(); got != 8 {
			t.Fatalf("round %d: Retained() = %d, want 8", round, got)
		}
	}
	// Amortised bound: with compaction at cap/4 the capacity can never
	// exceed 4× the post-trim window (plus append's doubling slack).
	if l.Capacity() > 16*window {
		t.Fatalf("steady-state capacity %d grew unboundedly (window %d)", l.Capacity(), window)
	}
}

// TestTrimToRespectsPin pins the checkpoint truncation race: while an epoch
// holds a pin, a minor flip's trim must not discard entries the epoch will
// replay at commit, even when the trim target is far past the pin.
func TestTrimToRespectsPin(t *testing.T) {
	var l MutationLog
	for i := 0; i < 256; i++ {
		l.Append(LogEntry{Obj: heap.Value(8), Slot: int32(i)})
	}

	l.Pin(100)
	l.TrimTo(200) // a flip passing the pin: must clamp to 100
	if got := l.Base(); got != 100 {
		t.Fatalf("Base() = %d after pinned trim, want 100", got)
	}
	for seq := int64(100); seq < l.Len(); seq++ {
		if got := l.At(seq); int64(got.Slot) != seq {
			t.Fatalf("entry %d corrupted by pinned trim: slot %d", seq, got.Slot)
		}
	}

	// Trims below the pin still work.
	l.TrimTo(100)
	if got := l.Base(); got != 100 {
		t.Fatalf("Base() = %d, want 100", got)
	}

	// Unpin releases the clamp; the deferred trim can now complete.
	l.Unpin()
	l.TrimTo(200)
	if got := l.Base(); got != 200 {
		t.Fatalf("Base() = %d after unpinned trim, want 200", got)
	}
}

// TestTrimToPinSurvivesCompaction drives a pinned trim through the
// compaction path and checks the pinned range survives the copy.
func TestTrimToPinSurvivesCompaction(t *testing.T) {
	var l MutationLog
	const spike = 4096
	for i := 0; i < spike; i++ {
		l.Append(LogEntry{Obj: heap.Value(8), Slot: int32(i)})
	}
	pin := l.Len() - 32
	l.Pin(pin)
	l.TrimTo(l.Len()) // wants everything gone; pin holds the last 32
	if got := l.Base(); got != pin {
		t.Fatalf("Base() = %d, want pin %d", got, pin)
	}
	if got := l.Retained(); got != 32 {
		t.Fatalf("Retained() = %d, want 32", got)
	}
	for seq := pin; seq < l.Len(); seq++ {
		if got := l.At(seq); int64(got.Slot) != seq {
			t.Fatalf("entry %d corrupted: slot %d", seq, got.Slot)
		}
	}
}

// TestPinClampsToBase checks that pinning below the already-trimmed base
// cannot resurrect discarded entries or wedge future trims.
func TestPinClampsToBase(t *testing.T) {
	var l MutationLog
	for i := 0; i < 64; i++ {
		l.Append(LogEntry{Obj: heap.Value(8), Slot: int32(i)})
	}
	l.TrimTo(40)
	l.Pin(10) // below base: effective pin is 40
	if pin, ok := l.Pinned(); !ok || pin != 40 {
		t.Fatalf("Pinned() = (%d, %v), want (40, true)", pin, ok)
	}
	l.TrimTo(50)
	if got := l.Base(); got != 40 {
		t.Fatalf("Base() = %d, want 40 (clamped to pin)", got)
	}
}

// TestLogRestore checks the recovery path's wholesale replacement: contents,
// base, and the pin all reset.
func TestLogRestore(t *testing.T) {
	var l MutationLog
	for i := 0; i < 16; i++ {
		l.Append(LogEntry{Obj: heap.Value(8), Slot: int32(i)})
	}
	l.Pin(4)

	entries := []LogEntry{
		{Obj: heap.Value(16), Slot: 7},
		{Obj: heap.Value(24), Slot: 9},
	}
	l.Restore(1000, entries)
	if got := l.Base(); got != 1000 {
		t.Fatalf("Base() = %d, want 1000", got)
	}
	if got := l.Len(); got != 1002 {
		t.Fatalf("Len() = %d, want 1002", got)
	}
	if _, ok := l.Pinned(); ok {
		t.Fatal("Restore left the log pinned")
	}
	if got := l.At(1001); got.Slot != 9 {
		t.Fatalf("At(1001).Slot = %d, want 9", got.Slot)
	}
	// Restore copies: mutating the caller's slice must not alias the log.
	entries[0].Slot = 99
	if got := l.At(1000); got.Slot != 99 {
		// aliasing would show 99; a copy shows 7
		if got.Slot != 7 {
			t.Fatalf("At(1000).Slot = %d, want 7", got.Slot)
		}
	} else {
		t.Fatal("Restore aliased the caller's slice")
	}
}
