package core

import (
	"testing"

	"repligc/internal/heap"
)

// TestTrimToCompacts pins the satellite fix for TrimTo's worst case: a log
// spike followed by trims must not leave a huge backing array pinned behind
// a few retained entries, and repeated small trims must not retain the full
// original capacity forever.
func TestTrimToCompacts(t *testing.T) {
	var l MutationLog
	const spike = 4096
	for i := 0; i < spike; i++ {
		l.Append(LogEntry{Obj: heap.Value(8), Slot: int32(i)})
	}
	spikeCap := l.Capacity()
	if spikeCap < spike {
		t.Fatalf("capacity %d below appended count %d", spikeCap, spike)
	}

	// Trim away all but 16 entries: retained << cap/4, so the backing
	// array must be replaced by a right-sized one.
	l.TrimTo(l.Len() - 16)
	if got := l.Retained(); got != 16 {
		t.Fatalf("Retained() = %d, want 16", got)
	}
	if l.Capacity() >= spikeCap/4 {
		t.Fatalf("TrimTo retained capacity %d of spike capacity %d; want compaction below 1/4", l.Capacity(), spikeCap)
	}

	// The retained entries must survive compaction with sequence numbers
	// intact.
	for seq := l.Base(); seq < l.Len(); seq++ {
		if got := l.At(seq); int64(got.Slot) != seq {
			t.Fatalf("entry %d corrupted after compaction: slot %d", seq, got.Slot)
		}
	}
}

// TestTrimToSmallLogsStayPut checks the compaction floor: trims on small
// logs are plain re-slices with no reallocation churn.
func TestTrimToSmallLogsStayPut(t *testing.T) {
	var l MutationLog
	for i := 0; i < trimCompactFloor; i++ {
		l.Append(LogEntry{Obj: heap.Value(8), Slot: int32(i)})
	}
	l.TrimTo(l.Len() - 2)
	if got := l.Retained(); got != 2 {
		t.Fatalf("Retained() = %d, want 2", got)
	}
	if l.Capacity() > trimCompactFloor {
		t.Fatalf("small log capacity %d exceeds floor %d", l.Capacity(), trimCompactFloor)
	}
}

// TestTrimToRepeatedSmallTrims drives the steady-state pattern — append a
// few, trim a few — and checks capacity stays bounded by a small multiple
// of the live window rather than growing with total log traffic.
func TestTrimToRepeatedSmallTrims(t *testing.T) {
	var l MutationLog
	const window = 128
	for round := 0; round < 2000; round++ {
		for i := 0; i < window; i++ {
			l.Append(LogEntry{Obj: heap.Value(8), Slot: int32(i)})
		}
		l.TrimTo(l.Len() - 8)
		if got := l.Retained(); got != 8 {
			t.Fatalf("round %d: Retained() = %d, want 8", round, got)
		}
	}
	// Amortised bound: with compaction at cap/4 the capacity can never
	// exceed 4× the post-trim window (plus append's doubling slack).
	if l.Capacity() > 16*window {
		t.Fatalf("steady-state capacity %d grew unboundedly (window %d)", l.Capacity(), window)
	}
}
