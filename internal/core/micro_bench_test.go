package core_test

// Wall-clock micro-benchmarks of the substrate itself (as opposed to the
// simulated-time paper experiments in the repo root): allocation, barrier,
// and collection throughput of the Go implementation.

import (
	"testing"

	"repligc/internal/core"
	"repligc/internal/heap"
	"repligc/internal/simtime"
)

func benchMutator(gcCfg core.Config) (*core.Mutator, *core.Replicating) {
	h := heap.New(heap.Config{
		NurseryBytes:    1 << 20,
		NurseryCapBytes: 16 << 20,
		OldSemiBytes:    64 << 20,
	})
	m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), core.LogAllMutations)
	gc := core.NewReplicating(h, gcCfg)
	m.AttachGC(gc)
	return m, gc
}

func rtCfg() core.Config {
	return core.Config{
		NurseryBytes:        1 << 20,
		MajorThresholdBytes: 4 << 20,
		CopyLimitBytes:      100 << 10,
		IncrementalMinor:    true,
		IncrementalMajor:    true,
	}
}

// BenchmarkAllocSmallRecords measures raw allocation throughput (including
// collections) for the paper's dominant object shape: three-word records.
func BenchmarkAllocSmallRecords(b *testing.B) {
	m, _ := benchMutator(rtCfg())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := m.MustAlloc(heap.KindRecord, 2)
		m.Init(p, 0, heap.FromInt(int64(i)))
		m.Init(p, 1, heap.Nil)
	}
	b.SetBytes(3 * heap.BytesPerWord)
}

// BenchmarkWriteBarrier measures the logged store path.
func BenchmarkWriteBarrier(b *testing.B) {
	m, _ := benchMutator(rtCfg())
	arr := m.MustAlloc(heap.KindArray, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Set(arr, i%64, heap.FromInt(int64(i)))
		if i%4096 == 0 {
			m.Log.TrimTo(m.Log.Len()) // keep the log bounded
		}
	}
}

// oldArray allocates a 64-slot array directly in the old generation so the
// barrier benchmarks below exercise the logged (non-nursery) path.
func oldArray(b *testing.B, m *core.Mutator) heap.Value {
	b.Helper()
	p, ok := m.H.AllocIn(m.H.OldFrom(), heap.KindArray, 64)
	if !ok {
		b.Fatal("old-space alloc failed")
	}
	return p
}

// BenchmarkBarrierNurseryFastPath measures the cheapest barrier outcome: a
// store into an unreplicated nursery object, which appends nothing. The
// fast path must be allocation-free (asserted, not just reported).
func BenchmarkBarrierNurseryFastPath(b *testing.B) {
	m, _ := benchMutator(rtCfg())
	arr := m.MustAlloc(heap.KindArray, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Set(arr, i%64, heap.FromInt(int64(i)))
	}
	b.StopTimer()
	if m.LogWrites != 0 {
		b.Fatalf("nursery fast path appended %d log entries", m.LogWrites)
	}
	if n := testing.AllocsPerRun(1000, func() {
		m.Set(arr, 0, heap.FromInt(1))
	}); n != 0 {
		b.Fatalf("fast path allocates %.1f times per store, want 0", n)
	}
}

// BenchmarkBarrierDirtyHit measures a logged store whose slot is already
// stamped in the current epoch: the append is suppressed by one load and
// one compare. Also asserted allocation-free.
func BenchmarkBarrierDirtyHit(b *testing.B) {
	m, _ := benchMutator(rtCfg())
	arr := oldArray(b, m)
	m.Set(arr, 0, heap.FromInt(0)) // prime the stamp
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Set(arr, 0, heap.FromInt(int64(i)))
	}
	b.StopTimer()
	if m.LogWrites != 1 {
		b.Fatalf("dirty-hit loop appended %d log entries, want 1", m.LogWrites)
	}
	if n := testing.AllocsPerRun(1000, func() {
		m.Set(arr, 0, heap.FromInt(1))
	}); n != 0 {
		b.Fatalf("dirty hit allocates %.1f times per store, want 0", n)
	}
}

// BenchmarkBarrierDirtyMiss measures the slow path under coalescing: every
// iteration starts a fresh epoch, so each store stamps its slot and appends
// an entry (stamp write + append + cost charge).
func BenchmarkBarrierDirtyMiss(b *testing.B) {
	m, _ := benchMutator(rtCfg())
	arr := oldArray(b, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.H.BeginLogEpoch()
		m.Set(arr, i%64, heap.FromInt(int64(i)))
		if i%4096 == 0 {
			m.Log.TrimTo(m.Log.Len()) // keep the log bounded
		}
	}
}

// BenchmarkBarrierNaive measures the pre-coalescing barrier (always append)
// on the same old-space store pattern as BenchmarkBarrierDirtyHit, so the
// hit/naive pair is the barrier ns/op before/after comparison.
func BenchmarkBarrierNaive(b *testing.B) {
	m, _ := benchMutator(rtCfg())
	m.NaiveBarrier = true
	arr := oldArray(b, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Set(arr, 0, heap.FromInt(int64(i)))
		if i%4096 == 0 {
			m.Log.TrimTo(m.Log.Len()) // keep the log bounded
		}
	}
}

// benchReplay drives a mutation-heavy loop — a long-lived nursery ref
// mutated between incremental pauses — and reports log entries re-applied
// per operation. With the naive barrier every store between two pauses of
// an active cycle is re-applied to the replica; coalesced, each slot is
// re-applied once per pause.
func benchReplay(b *testing.B, naive bool) {
	m, gc := benchMutator(rtCfg())
	m.NaiveBarrier = naive
	refs := make([]heap.Value, 16)
	for i := range refs {
		r := m.MustAlloc(heap.KindRef, 1)
		m.Init(r, 0, heap.FromInt(0))
		refs[i] = r
	}
	// Enough surviving bulk that a minor cycle spans several budgeted
	// pauses — the refs get replicated mid-cycle while the loop keeps
	// mutating them, which is what forces log reapplication.
	keep := make([]heap.Value, 1024)
	m.Roots.Register(rootFunc(func(v core.RootVisitor) {
		for i := range refs {
			v(&refs[i])
		}
		for i := range keep {
			v(&keep[i])
		}
	}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Set(refs[i%16], 0, heap.FromInt(int64(i)))
		if i%4 == 0 {
			p := m.MustAlloc(heap.KindRecord, 30)
			if i%16 == 0 {
				keep[(i/16)%1024] = p
			}
		}
		if i%1024 == 1023 {
			// Refresh one ref so nursery-resident mutated refs exist in
			// every cycle, not just the first.
			r := m.MustAlloc(heap.KindRef, 1)
			m.Init(r, 0, heap.FromInt(int64(i)))
			refs[i%16] = r
		}
	}
	b.StopTimer()
	gc.FinishCycles(m)
	b.ReportMetric(float64(gc.Stats().LogReapplied)/float64(b.N), "reapplied/op")
	b.ReportMetric(float64(m.LogWrites)/float64(b.N), "logged/op")
}

// BenchmarkLogReplayNaive is the baseline replay cost: every store appends,
// every pending entry re-applies.
func BenchmarkLogReplayNaive(b *testing.B) { benchReplay(b, true) }

// BenchmarkLogReplayCoalesced is the same workload through the coalescing
// barrier: one entry (and one reapply) per dirty slot per cycle.
func BenchmarkLogReplayCoalesced(b *testing.B) { benchReplay(b, false) }

// BenchmarkGetHeader measures the forwarding-aware header read the paper
// found unmeasurably cheap.
func BenchmarkGetHeader(b *testing.B) {
	m, _ := benchMutator(rtCfg())
	p := m.MustAlloc(heap.KindRecord, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Header(p).Kind() != heap.KindRecord {
			b.Fatal("wrong kind")
		}
	}
}

// BenchmarkMinorCollection measures full minor collections of a nursery
// with about 25% survival.
func BenchmarkMinorCollection(b *testing.B) {
	m, gc := benchMutator(core.Config{
		NurseryBytes: 1 << 20,
		// Stop-the-world configuration: one pause per collection. Majors
		// recycle the old generation so arbitrarily large b.N fits.
		MajorThresholdBytes: 16 << 20,
	})
	// Retained root table giving ~25% survival.
	keep := make([]heap.Value, 1024)
	m.Roots.Register(rootFunc(func(v core.RootVisitor) {
		for i := range keep {
			v(&keep[i])
		}
	}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := m.MustAlloc(heap.KindRecord, 30)
		if i%4 == 0 {
			keep[(i/4)%1024] = p
		}
	}
	b.StopTimer()
	gc.FinishCycles(m)
	b.ReportMetric(float64(gc.Stats().MinorCollections)/float64(b.N)*1e6, "collections/Mop")
}

// BenchmarkEqStructural measures polymorphic equality over small records.
func BenchmarkEqStructural(b *testing.B) {
	m, _ := benchMutator(rtCfg())
	mk := func() heap.Value {
		p := m.MustAlloc(heap.KindRecord, 2)
		m.Init(p, 0, heap.FromInt(7))
		m.Init(p, 1, m.MustAllocString([]byte("hello")))
		return p
	}
	h1 := m.PushHandle(mk())
	h2 := m.PushHandle(mk())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.Eq(m.HandleVal(h1), m.HandleVal(h2)) {
			b.Fatal("not equal")
		}
	}
}
