package core_test

// Wall-clock micro-benchmarks of the substrate itself (as opposed to the
// simulated-time paper experiments in the repo root): allocation, barrier,
// and collection throughput of the Go implementation.

import (
	"testing"

	"repligc/internal/core"
	"repligc/internal/heap"
	"repligc/internal/simtime"
)

func benchMutator(gcCfg core.Config) (*core.Mutator, *core.Replicating) {
	h := heap.New(heap.Config{
		NurseryBytes:    1 << 20,
		NurseryCapBytes: 16 << 20,
		OldSemiBytes:    64 << 20,
	})
	m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), core.LogAllMutations)
	gc := core.NewReplicating(h, gcCfg)
	m.AttachGC(gc)
	return m, gc
}

func rtCfg() core.Config {
	return core.Config{
		NurseryBytes:        1 << 20,
		MajorThresholdBytes: 4 << 20,
		CopyLimitBytes:      100 << 10,
		IncrementalMinor:    true,
		IncrementalMajor:    true,
	}
}

// BenchmarkAllocSmallRecords measures raw allocation throughput (including
// collections) for the paper's dominant object shape: three-word records.
func BenchmarkAllocSmallRecords(b *testing.B) {
	m, _ := benchMutator(rtCfg())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := m.MustAlloc(heap.KindRecord, 2)
		m.Init(p, 0, heap.FromInt(int64(i)))
		m.Init(p, 1, heap.Nil)
	}
	b.SetBytes(3 * heap.BytesPerWord)
}

// BenchmarkWriteBarrier measures the logged store path.
func BenchmarkWriteBarrier(b *testing.B) {
	m, _ := benchMutator(rtCfg())
	arr := m.MustAlloc(heap.KindArray, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Set(arr, i%64, heap.FromInt(int64(i)))
		if i%4096 == 0 {
			m.Log.TrimTo(m.Log.Len()) // keep the log bounded
		}
	}
}

// BenchmarkGetHeader measures the forwarding-aware header read the paper
// found unmeasurably cheap.
func BenchmarkGetHeader(b *testing.B) {
	m, _ := benchMutator(rtCfg())
	p := m.MustAlloc(heap.KindRecord, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Header(p).Kind() != heap.KindRecord {
			b.Fatal("wrong kind")
		}
	}
}

// BenchmarkMinorCollection measures full minor collections of a nursery
// with about 25% survival.
func BenchmarkMinorCollection(b *testing.B) {
	m, gc := benchMutator(core.Config{
		NurseryBytes: 1 << 20,
		// Stop-the-world configuration: one pause per collection. Majors
		// recycle the old generation so arbitrarily large b.N fits.
		MajorThresholdBytes: 16 << 20,
	})
	// Retained root table giving ~25% survival.
	keep := make([]heap.Value, 1024)
	m.Roots.Register(rootFunc(func(v core.RootVisitor) {
		for i := range keep {
			v(&keep[i])
		}
	}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := m.MustAlloc(heap.KindRecord, 30)
		if i%4 == 0 {
			keep[(i/4)%1024] = p
		}
	}
	b.StopTimer()
	gc.FinishCycles(m)
	b.ReportMetric(float64(gc.Stats().MinorCollections)/float64(b.N)*1e6, "collections/Mop")
}

// BenchmarkEqStructural measures polymorphic equality over small records.
func BenchmarkEqStructural(b *testing.B) {
	m, _ := benchMutator(rtCfg())
	mk := func() heap.Value {
		p := m.MustAlloc(heap.KindRecord, 2)
		m.Init(p, 0, heap.FromInt(7))
		m.Init(p, 1, m.MustAllocString([]byte("hello")))
		return p
	}
	h1 := m.PushHandle(mk())
	h2 := m.PushHandle(mk())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.Eq(m.HandleVal(h1), m.HandleVal(h2)) {
			b.Fatal("not equal")
		}
	}
}
