package core

import (
	"repligc/internal/heap"
	"repligc/internal/simtime"
	"repligc/internal/trace"
)

// Mutator is the interface through which all application code (the MiniML
// VM, the MiniML compiler, examples) touches the heap. It implements the
// paper's mutator-side mechanisms: bump allocation in the nursery with
// collector callbacks, the write barrier that appends to the mutation log,
// and the getheader operation that follows the forwarding word merged into
// object headers. Reads are raw loads — under the from-space invariant the
// mutator always addresses original objects, which is the whole point of
// replication collection (no read barrier).
type Mutator struct {
	H     *heap.Heap
	Clock *simtime.Clock
	Cost  simtime.CostModel
	Log   *MutationLog
	Roots *RootSet
	GC    Collector

	// Policy selects which mutations are logged (paper §4.5's compiler
	// modifications switch).
	Policy LogPolicy

	// NaiveBarrier disables the write barrier's fast paths: every store
	// that the policy covers appends a log entry, exactly as the unmodified
	// barrier did. It exists for the differential property tests (coalesced
	// replay must be bit-identical to naive replay) and for the baseline
	// leg of the benchmark trajectory.
	NaiveBarrier bool

	// BytesAllocated counts every byte ever allocated; policy scripts are
	// expressed in this coordinate so that runs with different collectors
	// flip at identical points.
	BytesAllocated int64

	// LogWrites counts barrier-produced log entries.
	LogWrites int64

	// BarrierFastSkips counts stores the barrier skipped logging entirely
	// because the target was an unreplicated nursery object — the next
	// startMinor copies it with its current contents, so no entry is owed.
	BarrierFastSkips int64

	// BarrierDirtySkips counts stores whose log append was suppressed by a
	// current-epoch dirty stamp: the log already retains an unconsumed
	// entry covering the slot, and entries are value-free, so a second one
	// would be pure overhead.
	BarrierDirtySkips int64

	// Trace, when non-nil, receives allocation-epoch events (one every
	// AllocEpochBytes of allocation). The hook lives on the slow-path side
	// of chargeAlloc, never in the write barrier, so the barrier fast
	// paths stay allocation-free with tracing on or off.
	Trace *trace.Recorder

	// Actor identifies this mutator context within its Group (0 when
	// solo). The trace subsystem stamps allocation epochs with it so
	// per-mutator allocation timelines stay distinguishable in exports.
	Actor int

	traceAllocMark int64 // BytesAllocated threshold for the next epoch event

	handles handleStack

	// Multi-mutator context split (see group.go). group is nil for a solo
	// mutator. local is the log the write barrier appends to: the shared
	// collector-facing Log when solo (or in a one-member group, which keeps
	// those runs bit-identical to solo runs by construction), or a private
	// per-mutator log that the group merges into Log at every pause entry.
	// chunk is the private nursery bump span of a chunked group member;
	// allocation inside it touches no shared cursor.
	group   *Group
	local   *MutationLog
	chunk   heap.Chunk
	chunked bool
}

// AllocEpochBytes is the allocation volume between consecutive
// alloc-epoch trace events.
const AllocEpochBytes = 256 << 10

// NewMutator wires a mutator to a heap and clock; the collector is attached
// separately (collectors need the mutator during construction of a run).
func NewMutator(h *heap.Heap, clock *simtime.Clock, cost simtime.CostModel, policy LogPolicy) *Mutator {
	m := &Mutator{
		H:      h,
		Clock:  clock,
		Cost:   cost,
		Log:    &MutationLog{},
		Roots:  &RootSet{},
		Policy: policy,
	}
	m.local = m.Log
	m.Roots.Register(&m.handles)
	return m
}

// AttachGC installs the collector.
func (m *Mutator) AttachGC(gc Collector) { m.GC = gc }

// Step charges the cost of n mutator instructions (VM bytecodes or units of
// compiler work). It is how mutator computation advances simulated time.
func (m *Mutator) Step(n int) {
	m.Clock.Charge(simtime.AcctMutator, simtime.Duration(n)*m.Cost.Instruction)
}

// Pacer is implemented by collectors that interleave work with allocation
// (the concurrent-style pacing of the paper's §6). AllocTax runs at the top
// of every allocation, before the object exists.
type Pacer interface {
	AllocTax(m *Mutator, bytes int64) error
}

// Alloc allocates an object of kind k with length field n (words, or bytes
// for byte kinds) in the nursery, invoking the collector when the nursery
// is exhausted. Objects too large for the nursery go directly to the old
// generation, as in SML/NJ. Exhaustion the collector's degradation ladder
// cannot recover from is reported as a typed *OOMError; the heap stays
// fully auditable and usable for smaller allocations afterwards.
func (m *Mutator) Alloc(k heap.Kind, n int) (heap.Value, error) {
	hdr := heap.MakeHeader(k, n)
	sizeB := hdr.SizeBytes()
	if p, ok := m.GC.(Pacer); ok {
		if err := p.AllocTax(m, sizeB); err != nil {
			return heap.Nil, err
		}
	}
	// Oversized objects bypass the nursery.
	if sizeB > m.H.Nursery.LimitBytes()/2 {
		return m.allocOld(k, n)
	}
	for attempt := 0; ; attempt++ {
		if p, ok := m.nurseryAlloc(k, n); ok {
			m.chargeAlloc(hdr)
			if m.GC != nil {
				m.GC.AfterAlloc(m)
			}
			//gclint:handle the fresh object is not yet reachable from any root, so AfterAlloc implementations must not copy or flip (they schedule work for the next CollectForAlloc); p cannot move here
			return p, nil
		}
		if m.GC == nil || attempt > 0 {
			return heap.Nil, m.oomFor(&m.H.Nursery, hdr, attempt > 0)
		}
		if err := m.GC.CollectForAlloc(m, hdr.SizeWords()); err != nil {
			return heap.Nil, err
		}
	}
}

// nurseryAlloc is Alloc's nursery bump step. A solo mutator allocates at
// the shared space cursor, exactly as before the context split. A chunked
// group member allocates inside its private chunk and refills it from the
// shared cursor only when the chunk runs dry, so the common path is free of
// shared state (goroutine-backed groups take the group lock only for the
// refill).
func (m *Mutator) nurseryAlloc(k heap.Kind, n int) (heap.Value, bool) {
	if !m.chunked {
		return m.H.AllocIn(&m.H.Nursery, k, n)
	}
	if p, ok := m.H.AllocInChunk(&m.chunk, k, n); ok {
		return p, true
	}
	return m.group.refillAlloc(m, k, n)
}

// MustAlloc is Alloc for callers that treat exhaustion as fatal (tests,
// examples, the MiniML compiler behind its recover boundary). It panics
// with the typed *OOMError.
func (m *Mutator) MustAlloc(k heap.Kind, n int) heap.Value {
	p, err := m.Alloc(k, n)
	if err != nil {
		//gclint:allow panicpath -- Must variant: the caller opted into fatal OOM; the value is the typed *OOMError
		panic(err)
	}
	return p
}

// oomFor builds the typed error for a failed nursery-path allocation.
func (m *Mutator) oomFor(space *heap.Space, hdr heap.Header, degraded bool) *OOMError {
	res := OOMNursery
	if space == &m.H.Nursery && space.Hi == space.Cap {
		res = OOMExpansion // grown to the hard cap and still too small
	}
	name := ""
	if m.GC != nil {
		name = m.GC.Name()
	}
	return &OOMError{
		Resource:  res,
		Collector: name,
		Space:     space.Name,
		Request:   hdr.SizeBytes(),
		Free:      int64(space.FreeWords()) * heap.BytesPerWord,
		Limit:     space.LimitBytes(),
		Degraded:  degraded,
	}
}

// OldAllocNoter is implemented by collectors that must account for objects
// allocated directly in the old generation (oversized allocations).
type OldAllocNoter interface {
	NoteOldAlloc(p heap.Value, hdr heap.Header)
}

// allocOld allocates directly in the old generation — into the collector's
// promotion space, so that during an active major collection the object is
// born in to-space and never needs major copying. When the space is full
// the collector gets one emergency stop-the-world collection (the top rung
// of the degradation ladder) before the typed error surfaces.
func (m *Mutator) allocOld(k heap.Kind, n int) (heap.Value, error) {
	hdr := heap.MakeHeader(k, n)
	for attempt := 0; ; attempt++ {
		space := m.H.OldFrom()
		if ps, ok := m.GC.(interface{ PromoteSpace() *heap.Space }); ok {
			space = ps.PromoteSpace()
		}
		if p, ok := m.H.AllocIn(space, k, n); ok {
			m.chargeAlloc(hdr)
			if rc, ok := m.GC.(OldAllocNoter); ok {
				rc.NoteOldAlloc(p, hdr)
			}
			return p, nil
		}
		ec, ok := m.GC.(EmergencyCollector)
		if !ok || attempt > 0 {
			name := ""
			if m.GC != nil {
				name = m.GC.Name()
			}
			return heap.Nil, &OOMError{
				Resource:  OOMOldSpace,
				Collector: name,
				Space:     space.Name,
				Request:   hdr.SizeBytes(),
				Free:      int64(space.FreeWords()) * heap.BytesPerWord,
				Limit:     space.LimitBytes(),
				Degraded:  attempt > 0,
			}
		}
		if err := ec.CollectEmergency(m); err != nil {
			return heap.Nil, err
		}
	}
}

func (m *Mutator) chargeAlloc(hdr heap.Header) {
	m.Clock.Charge(simtime.AcctAlloc, simtime.Duration(hdr.SizeWords())*m.Cost.AllocWord)
	m.BytesAllocated += hdr.SizeBytes()
	if m.Trace != nil && m.BytesAllocated >= m.traceAllocMark {
		m.Trace.AllocEpoch(m.Clock.Now(), int64(m.Actor), m.BytesAllocated)
		m.traceAllocMark = m.BytesAllocated + AllocEpochBytes
	}
}

// Get reads payload word i of p. No barrier, no forwarding check.
func (m *Mutator) Get(p heap.Value, i int) heap.Value { return m.H.Load(p, i) }

// Init performs an initialising store into a freshly allocated object.
// Initialising stores into the nursery are not mutations and are never
// logged; initialising stores into an object allocated directly in the old
// generation are logged like mutations, because they can create old→new
// pointers (the generational remembered set must see them) and can race
// with an in-progress replication of the object.
func (m *Mutator) Init(p heap.Value, i int, v heap.Value) {
	m.H.Store(p, i, v)
	if !m.H.Nursery.Contains(p) && (m.Policy == LogAllMutations || v.IsPtr()) {
		if m.skipWordLog(p, i) {
			return
		}
		m.logMutation(LogEntry{Obj: p, Slot: int32(i)})
	}
}

// Set mutates payload word i of p, recording the mutation per the logging
// policy. This is the write barrier.
func (m *Mutator) Set(p heap.Value, i int, v heap.Value) {
	m.H.Store(p, i, v)
	if m.Policy == LogAllMutations || v.IsPtr() {
		if m.skipWordLog(p, i) {
			return
		}
		m.logMutation(LogEntry{Obj: p, Slot: int32(i)})
	}
}

// skipWordLog is the write barrier's fast path for one word slot. It
// reports true when the store needs no log entry: either the target is an
// unreplicated nursery object (the next startMinor copies it whole, so its
// current contents travel with it and it cannot be a remembered-set source),
// or the slot's dirty stamp matches the current log epoch (the log already
// retains an unconsumed, value-free entry covering the slot — see
// heap/stamp.go). On a stamp miss it marks the slot and directs the caller
// to the slow path, making the common repeated-store case one load and one
// compare.
//
//gclint:fastpath unreplicated nursery objects owe no log entry (copied whole at the next startMinor); a current-epoch stamp proves the log retains an unconsumed entry for this slot, and entries are value-free so one entry suffices
func (m *Mutator) skipWordLog(p heap.Value, i int) bool {
	if m.NaiveBarrier {
		return false
	}
	if m.H.Nursery.Contains(p) && !m.H.IsForwarded(p) {
		m.BarrierFastSkips++
		return true
	}
	if m.H.SlotDirty(p, i) {
		m.BarrierDirtySkips++
		return true
	}
	m.H.MarkSlotDirty(p, i)
	return false
}

// skipByteWordsLog is skipWordLog for a byte store covering payload words
// [w, w+n). Byte stores coalesce at word granularity, so the fast path needs
// the conjunction of the covered words' stamps; on a miss the caller must
// log a word-aligned entry covering all n words (the stamps vouch for whole
// words, and an entry narrower than its stamp would lose later byte stores
// to the same word).
//
//gclint:fastpath unreplicated nursery objects owe no log entry; current-epoch stamps prove the log retains unconsumed word-aligned entries covering these words
func (m *Mutator) skipByteWordsLog(p heap.Value, w, n int) bool {
	if m.NaiveBarrier {
		return false
	}
	if m.H.Nursery.Contains(p) && !m.H.IsForwarded(p) {
		m.BarrierFastSkips++
		return true
	}
	if m.H.WordsDirty(p, w, n) {
		m.BarrierDirtySkips++
		return true
	}
	m.H.MarkWordsDirty(p, w, n)
	return false
}

// GetByte reads byte i of a byte-kind object.
func (m *Mutator) GetByte(p heap.Value, i int) byte { return m.H.LoadByte(p, i) }

// SetByte mutates byte i of a byte-kind object. Byte mutations are only
// logged under LogAllMutations — the paper's compiler modification whose
// cost shows up in Comp (§4.5). The coalesced entry covers the containing
// word: payloads are padded to word boundaries, entries are value-free, and
// the word is what the dirty stamp vouches for.
func (m *Mutator) SetByte(p heap.Value, i int, b byte) {
	m.H.StoreByte(p, i, b)
	if m.Policy != LogAllMutations {
		return
	}
	if m.NaiveBarrier {
		m.logMutation(LogEntry{Obj: p, Slot: int32(i), Len: 1, Byte: true})
		return
	}
	w := i / heap.BytesPerWord
	if m.skipByteWordsLog(p, w, 1) {
		return
	}
	m.logMutation(LogEntry{Obj: p, Slot: int32(w * heap.BytesPerWord), Len: heap.BytesPerWord, Byte: true})
}

// SetByteRange mutates len(data) bytes of a byte-kind object starting at
// byte off, producing a single coalesced log entry covering the range (the
// runtime-system equivalent of logging a block store, used by the compiler
// when it emits code into heap buffers). The entry is widened to word
// alignment so it matches what the dirty stamps vouch for.
func (m *Mutator) SetByteRange(p heap.Value, off int, data []byte) {
	for i, b := range data {
		m.H.StoreByte(p, off+i, b)
	}
	if m.Policy != LogAllMutations || len(data) == 0 {
		return
	}
	if m.NaiveBarrier {
		m.logMutation(LogEntry{Obj: p, Slot: int32(off), Len: int32(len(data)), Byte: true})
		return
	}
	w0 := off / heap.BytesPerWord
	nw := (off+len(data)-1)/heap.BytesPerWord - w0 + 1
	if m.skipByteWordsLog(p, w0, nw) {
		return
	}
	m.logMutation(LogEntry{
		Obj:  p,
		Slot: int32(w0 * heap.BytesPerWord),
		Len:  int32(nw * heap.BytesPerWord),
		Byte: true,
	})
}

func (m *Mutator) logMutation(e LogEntry) {
	m.local.Append(e)
	m.LogWrites++
	m.Clock.Charge(simtime.AcctLogWrite, m.Cost.LogWrite)
}

// Header returns p's descriptor, following the forwarding word if the
// object has been replicated — the paper's getheader operation, used by
// length primitives and polymorphic equality. The forwarding test's cost is
// charged here; the paper found it unmeasurably small.
func (m *Mutator) Header(p heap.Value) heap.Header {
	m.Clock.Charge(simtime.AcctHeaderCheck, m.Cost.HeaderCheck)
	return m.H.HeaderOf(p)
}

// Kind returns p's object kind via Header.
func (m *Mutator) Kind(p heap.Value) heap.Kind { return m.Header(p).Kind() }

// Length returns p's length field via Header.
func (m *Mutator) Length(p heap.Value) int { return m.Header(p).Len() }

// Eq implements ML polymorphic equality: immediates compare by value,
// mutable objects by identity, immutable objects structurally.
func (m *Mutator) Eq(a, b heap.Value) bool {
	if a == b {
		return true
	}
	if !a.IsPtr() || !b.IsPtr() {
		return false
	}
	ha, hb := m.Header(a), m.Header(b)
	if ha.Kind() != hb.Kind() || ha.Len() != hb.Len() {
		return false
	}
	if ha.Kind().Mutable() {
		return false // identity already failed
	}
	if !ha.Kind().HasPointers() {
		for i := 0; i < ha.Len(); i++ {
			if m.GetByte(a, i) != m.GetByte(b, i) {
				return false
			}
		}
		return true
	}
	for i := 0; i < ha.Len(); i++ {
		if !m.Eq(m.Get(a, i), m.Get(b, i)) {
			return false
		}
	}
	return true
}

// PushHandle pins v on the shadow stack and returns its handle.
func (m *Mutator) PushHandle(v heap.Value) Handle {
	m.handles.slots = append(m.handles.slots, v)
	return Handle(len(m.handles.slots) - 1)
}

// HandleVal dereferences a handle.
func (m *Mutator) HandleVal(h Handle) heap.Value { return m.handles.slots[h] }

// SetHandleVal overwrites the pinned value.
func (m *Mutator) SetHandleVal(h Handle, v heap.Value) { m.handles.slots[h] = v }

// HandleMark returns the current shadow-stack depth, for scoped release.
func (m *Mutator) HandleMark() Handle { return Handle(len(m.handles.slots)) }

// PopHandles releases every handle at or above mark.
func (m *Mutator) PopHandles(mark Handle) {
	if int(mark) > len(m.handles.slots) {
		//gclint:allow panicpath -- invariant: unbalanced handle stack is caller corruption, not resource exhaustion
		panic("core: PopHandles beyond stack")
	}
	m.handles.slots = m.handles.slots[:mark]
}

// Collapse releases every handle at or above mark and re-pins h's value as
// the new top of the shadow stack, returning its handle. It performs no
// allocation, so the value cannot go stale in between.
func (m *Mutator) Collapse(mark Handle, h Handle) Handle {
	v := m.HandleVal(h)
	m.PopHandles(mark)
	return m.PushHandle(v)
}

// AllocString allocates an immutable string holding b.
func (m *Mutator) AllocString(b []byte) (heap.Value, error) {
	p, err := m.Alloc(heap.KindString, len(b))
	if err != nil {
		return heap.Nil, err
	}
	m.H.SetBytes(p, b)
	return p, nil
}

// MustAllocString is AllocString with MustAlloc's fatal-OOM contract.
func (m *Mutator) MustAllocString(b []byte) heap.Value {
	p, err := m.AllocString(b)
	if err != nil {
		//gclint:allow panicpath -- Must variant: the caller opted into fatal OOM; the value is the typed *OOMError
		panic(err)
	}
	return p
}

// AllocBytes allocates a mutable byte array of n bytes (zeroed).
func (m *Mutator) AllocBytes(n int) (heap.Value, error) { return m.Alloc(heap.KindBytes, n) }

// MustAllocBytes is AllocBytes with MustAlloc's fatal-OOM contract.
func (m *Mutator) MustAllocBytes(n int) heap.Value {
	p, err := m.AllocBytes(n)
	if err != nil {
		//gclint:allow panicpath -- Must variant: the caller opted into fatal OOM; the value is the typed *OOMError
		panic(err)
	}
	return p
}

// Bytes copies the payload of a byte-kind object into a fresh Go slice; the
// getheader cost of reading the length is charged like any other header
// check. This is the mutator-facing counterpart of Heap.Bytes, which client
// code must not call directly (gclint rule "barrier").
func (m *Mutator) Bytes(p heap.Value) []byte {
	m.Clock.Charge(simtime.AcctHeaderCheck, m.Cost.HeaderCheck)
	return m.H.Bytes(p)
}

// GoString copies a string object's payload out as a Go string.
func (m *Mutator) GoString(p heap.Value) string { return string(m.Bytes(p)) }
