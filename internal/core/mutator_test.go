package core_test

import (
	"testing"

	"repligc/internal/core"
	"repligc/internal/gctest"
	"repligc/internal/heap"
	"repligc/internal/simtime"
)

// bareMutator builds a mutator without a collector for barrier-level tests
// that never exhaust the nursery.
func bareMutator() *core.Mutator {
	h := heap.New(heap.Config{NurseryBytes: 1 << 20, NurseryCapBytes: 2 << 20, OldSemiBytes: 8 << 20})
	return core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), core.LogAllMutations)
}

func TestBarrierLoggingPolicies(t *testing.T) {
	for _, pol := range []core.LogPolicy{core.LogPointersOnly, core.LogAllMutations} {
		// NaiveBarrier pins the policy matrix itself: which stores the
		// barrier's slow path records under each compiler configuration.
		h := heap.New(heap.Config{NurseryBytes: 1 << 20, NurseryCapBytes: 2 << 20, OldSemiBytes: 8 << 20})
		m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), pol)
		m.NaiveBarrier = true

		obj := m.MustAlloc(heap.KindArray, 4)
		target := m.MustAlloc(heap.KindRecord, 1)
		before := m.LogWrites
		m.Set(obj, 0, target)           // pointer store: always logged
		m.Set(obj, 1, heap.FromInt(42)) // immediate store: LogAll only
		bs := m.MustAllocBytes(8)
		m.SetByte(bs, 0, 7) // byte store: LogAll only
		got := m.LogWrites - before

		want := int64(3)
		if pol == core.LogPointersOnly {
			want = 1
		}
		if got != want {
			t.Errorf("%v: %d log writes, want %d", pol, got, want)
		}
	}
}

// TestBarrierNurseryFastPath pins the fast path: stores into unreplicated
// nursery objects append nothing (the next startMinor copies the object
// with its current contents), and the skip is counted.
func TestBarrierNurseryFastPath(t *testing.T) {
	m := bareMutator()
	obj := m.MustAlloc(heap.KindArray, 4)
	target := m.MustAlloc(heap.KindRecord, 1)
	bs := m.MustAllocBytes(16)
	before := m.LogWrites
	m.Set(obj, 0, target)
	m.Set(obj, 1, heap.FromInt(42))
	m.SetByte(bs, 0, 7)
	m.SetByteRange(bs, 8, []byte{1, 2, 3})
	if got := m.LogWrites - before; got != 0 {
		t.Fatalf("nursery stores appended %d log entries, want 0", got)
	}
	if m.BarrierFastSkips != 4 {
		t.Fatalf("BarrierFastSkips = %d, want 4", m.BarrierFastSkips)
	}
	// The stores themselves must still land.
	if m.Get(obj, 0) != target || m.Get(obj, 1) != heap.FromInt(42) {
		t.Fatal("skipped stores did not reach the heap")
	}
	if m.GetByte(bs, 0) != 7 || m.GetByte(bs, 9) != 2 {
		t.Fatal("skipped byte stores did not reach the heap")
	}
}

// TestBarrierDirtyStampCoalesces pins the dirty-stamp path on old-space
// objects: the first store to a slot in an epoch logs one entry; repeats
// are suppressed until the next epoch begins.
func TestBarrierDirtyStampCoalesces(t *testing.T) {
	m := bareMutator()
	p, ok := m.H.AllocIn(m.H.OldFrom(), heap.KindArray, 4)
	if !ok {
		t.Fatal("old-space alloc failed")
	}
	before := m.LogWrites
	for i := 0; i < 10; i++ {
		m.Set(p, 0, heap.FromInt(int64(i)))
	}
	if got := m.LogWrites - before; got != 1 {
		t.Fatalf("10 stores to one slot logged %d entries, want 1", got)
	}
	if m.BarrierDirtySkips != 9 {
		t.Fatalf("BarrierDirtySkips = %d, want 9", m.BarrierDirtySkips)
	}
	m.Set(p, 1, heap.FromInt(1)) // distinct slot: its own entry
	if got := m.LogWrites - before; got != 2 {
		t.Fatalf("store to second slot logged %d total entries, want 2", got)
	}
	m.H.BeginLogEpoch() // a pause expires every stamp
	m.Set(p, 0, heap.FromInt(99))
	if got := m.LogWrites - before; got != 3 {
		t.Fatalf("post-epoch store logged %d total entries, want 3", got)
	}
}

func TestSetByteRangeCoalesces(t *testing.T) {
	m := bareMutator()
	// An old-space buffer: nursery targets take the no-log fast path.
	p, ok := m.H.AllocIn(m.H.OldFrom(), heap.KindBytes, 64)
	if !ok {
		t.Fatal("old-space alloc failed")
	}
	before := m.LogWrites
	data := []byte("hello world, hello world!")
	m.SetByteRange(p, 3, data)
	if m.LogWrites != before+1 {
		t.Fatalf("range store logged %d entries, want 1", m.LogWrites-before)
	}
	for i, b := range data {
		if m.GetByte(p, 3+i) != b {
			t.Fatalf("byte %d mismatch", i)
		}
	}
	// A second store into the same (word-aligned) region coalesces away.
	m.SetByteRange(p, 4, data[:8])
	if m.LogWrites != before+1 {
		t.Fatalf("overlapping range store logged %d entries, want 1", m.LogWrites-before)
	}
	// Empty ranges log nothing.
	m.SetByteRange(p, 0, nil)
	if m.LogWrites != before+1 {
		t.Fatal("empty range produced a log entry")
	}
	// The naive barrier logs byte-exact entries, one per range.
	m.NaiveBarrier = true
	m.SetByteRange(p, 3, data)
	if m.LogWrites != before+2 {
		t.Fatalf("naive range store logged %d entries, want 2 total", m.LogWrites-before)
	}
}

func TestInitToOldSpaceIsLogged(t *testing.T) {
	m := bareMutator()
	// Oversized: bigger than half the nursery goes straight to old space.
	big := m.MustAlloc(heap.KindArray, 80<<10) // 640 KB > 512 KB
	if !m.H.OldFrom().Contains(big) {
		t.Fatal("oversized allocation not in old space")
	}
	small := m.MustAlloc(heap.KindRecord, 1)
	before := m.LogWrites
	m.Init(big, 0, small) // old→new pointer via Init: must be logged
	if m.LogWrites != before+1 {
		t.Fatal("Init into old space not logged")
	}
	before = m.LogWrites
	m.Init(small, 0, heap.FromInt(1)) // nursery Init: never logged
	if m.LogWrites != before {
		t.Fatal("nursery Init was logged")
	}
}

func TestHandleDiscipline(t *testing.T) {
	m := bareMutator()
	mark := m.HandleMark()
	a := m.PushHandle(m.MustAlloc(heap.KindRecord, 1))
	b := m.PushHandle(heap.FromInt(9))
	if m.HandleVal(b).Int() != 9 {
		t.Fatal("handle deref broken")
	}
	m.SetHandleVal(b, heap.FromInt(10))
	if m.HandleVal(b).Int() != 10 {
		t.Fatal("handle update broken")
	}
	c := m.Collapse(mark, b)
	if m.HandleVal(c).Int() != 10 {
		t.Fatal("collapse lost the value")
	}
	if m.HandleMark() != mark+1 {
		t.Fatalf("collapse left depth %d, want %d", m.HandleMark(), mark+1)
	}
	m.PopHandles(mark)
	_ = a
	defer func() {
		if recover() == nil {
			t.Fatal("PopHandles beyond stack must panic")
		}
	}()
	m.PopHandles(mark + 5)
}

func TestPolymorphicEquality(t *testing.T) {
	m := bareMutator()
	s1 := m.MustAllocString([]byte("abc"))
	s2 := m.MustAllocString([]byte("abc"))
	s3 := m.MustAllocString([]byte("abd"))
	if !m.Eq(s1, s2) || m.Eq(s1, s3) {
		t.Fatal("string equality broken")
	}

	mkPair := func(a, b heap.Value) heap.Value {
		p := m.MustAlloc(heap.KindRecord, 2)
		m.Init(p, 0, a)
		m.Init(p, 1, b)
		return p
	}
	p1 := mkPair(heap.FromInt(1), s1)
	p2 := mkPair(heap.FromInt(1), s2)
	p3 := mkPair(heap.FromInt(2), s1)
	if !m.Eq(p1, p2) || m.Eq(p1, p3) {
		t.Fatal("structural record equality broken")
	}

	r1 := m.MustAlloc(heap.KindRef, 1)
	r2 := m.MustAlloc(heap.KindRef, 1)
	if m.Eq(r1, r2) || !m.Eq(r1, r1) {
		t.Fatal("ref identity equality broken")
	}
	if m.Eq(heap.FromInt(3), s1) || !m.Eq(heap.FromInt(3), heap.FromInt(3)) {
		t.Fatal("immediate equality broken")
	}
	// Different lengths are never equal.
	if m.Eq(m.MustAllocString([]byte("ab")), s1) {
		t.Fatal("length mismatch compared equal")
	}
}

// TestOversizedDuringActiveCollections exercises the skip-span machinery:
// objects allocated directly in old space while incremental collections are
// in flight are mutator-owned, must not be treated as replicas, and must
// survive with correct contents.
func TestOversizedDuringActiveCollections(t *testing.T) {
	cfg := core.Config{
		NurseryBytes:        16 << 10,
		MajorThresholdBytes: 64 << 10,
		CopyLimitBytes:      2 << 10,
		IncrementalMinor:    true,
		IncrementalMajor:    true,
	}
	m, gc := newRun(cfg, core.LogAllMutations)
	d := gctest.NewDriver(m, 3)

	type bigRef struct {
		arr heap.Value
	}
	roots := &bigRef{}
	m.Roots.Register(rootFunc(func(v core.RootVisitor) { v(&roots.arr) }))

	// Keep churning; periodically allocate an oversized array mid-cycle,
	// fill it with pointers to fresh nursery objects, and verify later.
	for round := 0; round < 20; round++ {
		d.Step(300)
		big := m.MustAlloc(heap.KindArray, 2<<10) // 16 KB > half of 16 KB nursery
		roots.arr = big
		for i := 0; i < 32; i++ {
			small := m.MustAlloc(heap.KindRecord, 1)
			m.Init(small, 0, heap.FromInt(int64(round*100+i)))
			m.Set(big, i, small)
		}
		d.Step(300)
		for i := 0; i < 32; i++ {
			got := m.Get(m.Get(roots.arr, i), 0).Int()
			if got != int64(round*100+i) {
				t.Fatalf("round %d slot %d: got %d", round, i, got)
			}
		}
		if err := d.Verify(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	gc.FinishCycles(m)
	if err := core.AuditHeap(m); err != nil {
		t.Fatal(err)
	}
}

// rootFunc adapts a function to core.RootSource.
type rootFunc func(core.RootVisitor)

func (f rootFunc) VisitRoots(v core.RootVisitor) { f(v) }

func TestLogTrimming(t *testing.T) {
	var l core.MutationLog
	for i := 0; i < 100; i++ {
		l.Append(core.LogEntry{Slot: int32(i)})
	}
	if l.Len() != 100 || l.Base() != 0 {
		t.Fatalf("len=%d base=%d", l.Len(), l.Base())
	}
	l.TrimTo(40)
	if l.Base() != 40 || l.Retained() != 60 {
		t.Fatalf("after trim: base=%d retained=%d", l.Base(), l.Retained())
	}
	if l.At(40).Slot != 40 || l.At(99).Slot != 99 {
		t.Fatal("entries shifted incorrectly")
	}
	l.TrimTo(10) // no-op backwards
	if l.Base() != 40 {
		t.Fatal("backwards trim changed base")
	}
	l.TrimTo(1000) // clamped
	if l.Retained() != 0 {
		t.Fatal("over-trim retained entries")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("At below base must panic")
		}
	}()
	l.At(5)
}

func TestCollectorlessAllocReturnsTypedOOM(t *testing.T) {
	h := heap.New(heap.Config{NurseryBytes: 8 << 10, NurseryCapBytes: 8 << 10, OldSemiBytes: 1 << 20})
	m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), core.LogAllMutations)
	for i := 0; i < 10000; i++ {
		_, err := m.Alloc(heap.KindRecord, 8)
		if err == nil {
			continue
		}
		oom, ok := core.AsOOM(err)
		if !ok {
			t.Fatalf("want *core.OOMError, got %T: %v", err, err)
		}
		if oom.Resource != core.OOMNursery && oom.Resource != core.OOMExpansion {
			t.Fatalf("unexpected exhausted resource %v", oom.Resource)
		}
		if err := core.AuditHeap(m); err != nil {
			t.Fatalf("heap not auditable after OOM: %v", err)
		}
		return
	}
	t.Fatal("expected out-of-memory error")
}

func TestMustAllocPanicsWithTypedOOM(t *testing.T) {
	h := heap.New(heap.Config{NurseryBytes: 8 << 10, NurseryCapBytes: 8 << 10, OldSemiBytes: 1 << 20})
	m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), core.LogAllMutations)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected out-of-memory panic")
		}
		err, ok := r.(error)
		if !ok || !core.IsOOM(err) {
			t.Fatalf("panic value is not a typed OOM error: %v", r)
		}
	}()
	for i := 0; i < 10000; i++ {
		m.MustAlloc(heap.KindRecord, 8)
	}
}
