package core

import (
	"errors"
	"fmt"
)

// OOMResource identifies which memory resource was exhausted when an
// allocation or replication could not be satisfied.
type OOMResource int

const (
	// OOMNursery: a nursery allocation failed and a collection could not
	// make room (the nursery still has headroom below its cap, but the
	// survivors plus the request do not fit).
	OOMNursery OOMResource = iota
	// OOMOldSpace: a direct old-generation allocation (an oversized
	// object) failed even after an emergency collection.
	OOMOldSpace
	// OOMPromotion: the promotion space overflowed while a minor
	// collection was replicating nursery survivors.
	OOMPromotion
	// OOMToSpace: the reserve semispace overflowed while a major
	// collection was replicating old-space survivors.
	OOMToSpace
	// OOMExpansion: the nursery-expansion bound was blown — the nursery
	// grew to its hard cap and the pending allocation still does not fit.
	OOMExpansion
)

// String names the resource for diagnostics.
func (r OOMResource) String() string {
	switch r {
	case OOMNursery:
		return "nursery"
	case OOMOldSpace:
		return "old space"
	case OOMPromotion:
		return "promotion space"
	case OOMToSpace:
		return "major to-space"
	case OOMExpansion:
		return "nursery expansion bound"
	default:
		return fmt.Sprintf("OOMResource(%d)", int(r))
	}
}

// OOMError is the typed failure every resource-exhaustion path surfaces.
// The collectors never panic on exhaustion: they first run the degradation
// ladder (emergency non-incremental completion, headroom-driven early
// majors, nursery regrowth toward the cap — see DESIGN.md, "Failure model
// and fault injection"), and only when degradation cannot free space does
// this error propagate Alloc → Mutator → VM → cmd/rtgc. The heap remains
// structurally sound after the error: AuditHeap must pass on it.
type OOMError struct {
	Resource  OOMResource
	Collector string // collector configuration name ("" if none attached)
	Space     string // the exhausted heap space's name
	Request   int64  // bytes that could not be obtained
	Free      int64  // bytes free in the space at failure time
	Limit     int64  // the space's soft limit in bytes at failure time
	Degraded  bool   // the degradation ladder ran before this surfaced
}

// Error renders the one-line diagnostic cmd/rtgc prints.
func (e *OOMError) Error() string {
	deg := ""
	if e.Degraded {
		deg = " after emergency completion"
	}
	gc := e.Collector
	if gc == "" {
		gc = "no collector"
	}
	return fmt.Sprintf("out of memory: %s exhausted%s (%s: need %d bytes, %d free of %d in %s)",
		e.Resource, deg, gc, e.Request, e.Free, e.Limit, e.Space)
}

// IsOOM reports whether err is (or wraps) a typed out-of-memory failure.
func IsOOM(err error) bool {
	var oe *OOMError
	return errors.As(err, &oe)
}

// AsOOM extracts the typed out-of-memory failure from err's chain.
func AsOOM(err error) (*OOMError, bool) {
	var oe *OOMError
	if errors.As(err, &oe) {
		return oe, true
	}
	return nil, false
}
