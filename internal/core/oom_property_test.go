package core_test

import (
	"testing"
	"testing/quick"

	"repligc/internal/core"
	"repligc/internal/gctest"
	"repligc/internal/heap"
	"repligc/internal/simtime"
	"repligc/internal/stopcopy"
)

// TestFailedAllocLeavesHeapUsable is the robustness property in one
// sentence: after an arbitrary amount of live churn, an allocation too big
// for the old generation must fail with the typed *OOMError (degraded,
// because the emergency collection ran first), the heap must still pass a
// full audit, the survivor graph must be intact, and a reasonable smaller
// allocation must succeed.
func TestFailedAllocLeavesHeapUsable(t *testing.T) {
	const oldSemi = 512 << 10

	mkReplicating := func() *core.Mutator {
		h := heap.New(heap.Config{NurseryBytes: 16 << 10, NurseryCapBytes: 64 << 10, OldSemiBytes: oldSemi})
		m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), core.LogAllMutations)
		m.AttachGC(core.NewReplicating(h, core.Config{
			NurseryBytes:        16 << 10,
			MajorThresholdBytes: 128 << 10,
			CopyLimitBytes:      4 << 10,
			IncrementalMinor:    true,
			IncrementalMajor:    true,
		}))
		return m
	}
	mkStopCopy := func() *core.Mutator {
		h := heap.New(heap.Config{NurseryBytes: 16 << 10, NurseryCapBytes: 64 << 10, OldSemiBytes: oldSemi})
		m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), core.LogPointersOnly)
		m.AttachGC(stopcopy.New(h, stopcopy.Config{NurseryBytes: 16 << 10, MajorThresholdBytes: 128 << 10}))
		return m
	}

	for _, tc := range []struct {
		name string
		mk   func() *core.Mutator
	}{
		{"replicating", mkReplicating},
		{"stopcopy", mkStopCopy},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prop := func(seed int64, churn uint16) bool {
				m := tc.mk()
				d := gctest.NewDriver(m, seed)
				if err := d.Step(int(churn % 600)); err != nil {
					t.Logf("churn failed unexpectedly: %v", err)
					return false
				}
				// A word count beyond the whole old semispace can never be
				// satisfied, no matter how much the emergency ladder frees.
				_, err := m.Alloc(heap.KindArray, 2*oldSemi/heap.BytesPerWord)
				oom, ok := core.AsOOM(err)
				if !ok {
					t.Logf("impossible allocation returned %v, want *OOMError", err)
					return false
				}
				if !oom.Degraded {
					t.Logf("OOM not marked degraded after emergency completion: %+v", oom)
					return false
				}
				if err := core.AuditHeap(m); err != nil {
					t.Logf("heap not auditable after OOM: %v", err)
					return false
				}
				if err := d.Verify(); err != nil {
					t.Logf("survivor graph damaged by failed allocation: %v", err)
					return false
				}
				if _, err := m.Alloc(heap.KindRecord, 2); err != nil {
					t.Logf("small allocation failed after recovered OOM: %v", err)
					return false
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
