package core

// Goroutine-backed groups: the same Group interface, with each member
// driven by a real goroutine instead of cooperatively scheduled quanta.
//
// This mode exists to exercise the multi-mutator data structures under the
// race detector, not to produce numbers: interleavings are scheduled by the
// Go runtime, so runs are not deterministic and no simulated-time metrics
// are derived from them. The synchronization discipline is the classic
// safepoint rendezvous:
//
//   - Each member gets its own Clock (clocks are written on every charge;
//     sharing one would race) and runs with NaiveBarrier set, so the write
//     barrier never touches the shared dirty-stamp table. Logging still
//     goes to the member's private log, which is single-writer.
//   - Allocation inside a member's private nursery chunk is lock-free;
//     chunk refill and direct shared-cursor allocation take the group lock
//     and park first if a collection has been requested.
//   - A member whose allocation needs the collector requests stop-the-world
//     via the wrapping stwCollector: it waits until every other running
//     member has parked at a safepoint (Safepoint, a refill, or its own
//     collector request), then runs the underlying collector while it alone
//     owns the heap. The group merge at pause entry then reads every
//     member's private log with all members stopped.
//
// Workloads drive members with periodic Safepoint() calls; a member that
// allocates frequently parks at refills anyway, but Safepoint bounds the
// stop latency for read-mostly phases.

import (
	"sync"

	"repligc/internal/heap"
	"repligc/internal/simtime"
)

// parRendezvous is the stop-the-world rendezvous state shared by a
// goroutine-backed group's members.
type parRendezvous struct {
	mu      sync.Mutex
	cond    *sync.Cond
	stopReq bool // a collection wants (or has) the world stopped
	active  int  // members currently running in goroutines
	parked  int  // members currently waiting at a safepoint
}

// ParallelGroup drives a Group's members with real goroutines.
type ParallelGroup struct {
	G   *Group
	rdv *parRendezvous
}

// NewParallelGroup builds an n-member goroutine-backed group over h. The
// members come back reconfigured for parallel execution: private clocks and
// naive (stamp-free) write barriers. Attach the collector with AttachGC —
// it is wrapped so that every collection entry point stops the world first.
func NewParallelGroup(h *heap.Heap, cost simtime.CostModel, policy LogPolicy, n int) *ParallelGroup {
	g := NewGroup(h, simtime.NewClock(), cost, policy, n)
	pg := &ParallelGroup{G: g, rdv: &parRendezvous{}}
	pg.rdv.cond = sync.NewCond(&pg.rdv.mu)
	g.par = pg.rdv
	for i, m := range g.Members {
		if i > 0 {
			m.Clock = simtime.NewClock()
		}
		m.NaiveBarrier = true
	}
	return pg
}

// AttachGC wires gc into the group behind a stop-the-world wrapper.
func (pg *ParallelGroup) AttachGC(gc Collector) {
	pg.G.GC = gc
	wrapped := &stwCollector{rdv: pg.rdv, Collector: gc}
	for _, m := range pg.G.Members {
		m.AttachGC(wrapped)
	}
}

// Run starts one goroutine per workload function (fn[i] drives member i)
// and blocks until all of them return, collecting their errors.
func (pg *ParallelGroup) Run(fns []func(m *Mutator) error) []error {
	errs := make([]error, len(fns))
	var wg sync.WaitGroup
	pg.rdv.mu.Lock()
	pg.rdv.active += len(fns)
	pg.rdv.mu.Unlock()
	for i, fn := range fns {
		wg.Add(1)
		go func(i int, fn func(m *Mutator) error) {
			defer wg.Done()
			defer pg.exitWorker()
			errs[i] = fn(pg.G.Members[i])
		}(i, fn)
	}
	wg.Wait()
	return errs
}

func (pg *ParallelGroup) exitWorker() {
	pg.rdv.mu.Lock()
	pg.rdv.active--
	pg.rdv.cond.Broadcast()
	pg.rdv.mu.Unlock()
}

// Safepoint parks the calling member for the duration of any in-progress
// stop-the-world collection. Workloads call it between operations.
func (pg *ParallelGroup) Safepoint() {
	pg.rdv.mu.Lock()
	pg.rdv.parkIfStoppedLocked()
	pg.rdv.mu.Unlock()
}

// parkIfStoppedLocked waits out any stop-the-world request while counted as
// parked. Callers hold mu.
func (r *parRendezvous) parkIfStoppedLocked() {
	for r.stopReq {
		r.parked++
		r.cond.Broadcast() // the stopper may be waiting on the parked count
		for r.stopReq {
			r.cond.Wait()
		}
		r.parked--
	}
}

// stopTheWorldAnd waits until every other active member is parked, runs f
// with the world stopped, then releases everyone. Concurrent requests
// serialize: the loser parks like any other member and re-requests after
// the winner finishes.
func (r *parRendezvous) stopTheWorldAnd(f func() error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.parkIfStoppedLocked()
	r.stopReq = true
	for r.parked < r.active-1 {
		r.cond.Wait()
	}
	err := f()
	r.stopReq = false
	r.cond.Broadcast()
	return err
}

// stwCollector wraps a Collector so that its collection entry points
// perform the stop-the-world rendezvous first. Only the embedded
// interface's methods are promoted, so optional capabilities (Pacer,
// EmergencyCollector, promotion-space queries) deliberately do not leak
// through: a goroutine-backed run takes none of those side paths.
type stwCollector struct {
	rdv *parRendezvous
	Collector
}

func (s *stwCollector) CollectForAlloc(m *Mutator, needWords int) error {
	return s.rdv.stopTheWorldAnd(func() error { return s.Collector.CollectForAlloc(m, needWords) })
}

func (s *stwCollector) FinishCycles(m *Mutator) error {
	return s.rdv.stopTheWorldAnd(func() error { return s.Collector.FinishCycles(m) })
}

// compile-time check that the wrapper stays a plain Collector.
var _ Collector = (*stwCollector)(nil)
