package core

// White-box zero-allocation assertions for the replay hot path: reprocessing
// a batch of logged mutations against already-replicated nursery objects —
// the work every incremental pause repeats — must perform no Go allocations.
// The per-object forwarding memo, the block byte copy and the plain-loop
// reapply all operate on preallocated state; an allocation here would be a
// per-entry cost invisible to the simulated clock.

import (
	"testing"

	"repligc/internal/heap"
	"repligc/internal/simtime"
)

// primeReplicatedMidCycle allocates a pointer array and a byte buffer in the
// nursery, anchors them from a logged old-generation object (so the log
// replay phase at the start of a minor cycle replicates them), and drives
// filler allocation until both are observed forwarded while still
// nursery-resident — an incremental minor cycle is active and their replicas
// receive log reapplication. A keep table gives each cycle enough survivors
// to span several budgeted pauses; retries because a flip can promote the
// pair before a pause boundary observes them.
func primeReplicatedMidCycle(t *testing.T, m *Mutator) (arr, buf heap.Value) {
	t.Helper()
	h := m.H
	anchor, ok := h.AllocIn(h.OldFrom(), heap.KindArray, 2)
	if !ok {
		t.Fatal("old-space anchor alloc failed")
	}
	keep := make([]heap.Value, 512)
	m.Roots.Register(rootSourceFunc(func(v RootVisitor) {
		v(&anchor)
		for i := range keep {
			v(&keep[i])
		}
	}))
	for attempt := 0; attempt < 64; attempt++ {
		arr = m.MustAlloc(heap.KindArray, 64)
		buf = m.MustAllocBytes(256)
		m.Set(anchor, 0, arr)
		m.Set(anchor, 1, buf)
		for i := 0; i < 4096; i++ {
			p := m.MustAlloc(heap.KindRecord, 6)
			keep[i%512] = p
			arr, buf = h.Load(anchor, 0), h.Load(anchor, 1)
			if h.Nursery.Contains(arr) && h.IsForwarded(arr) &&
				h.Nursery.Contains(buf) && h.IsForwarded(buf) {
				return arr, buf
			}
			if !h.Nursery.Contains(arr) || !h.Nursery.Contains(buf) {
				break // promoted by a flip; retry with fresh objects
			}
		}
	}
	t.Fatal("could not catch the pair replicated mid-cycle")
	return heap.Nil, heap.Nil
}

// rootSourceFunc adapts a function to RootSource for the test fixtures.
type rootSourceFunc func(RootVisitor)

func (f rootSourceFunc) VisitRoots(v RootVisitor) { f(v) }

// TestReplayBatchPathZeroAllocs reprocesses a fixed window of the mutation
// log — word stores and a byte-range store against replicated nursery
// objects — and asserts the replay path allocates nothing per batch.
func TestReplayBatchPathZeroAllocs(t *testing.T) {
	h := heap.New(heap.Config{
		NurseryBytes:    32 << 10,
		NurseryCapBytes: 1 << 20,
		OldSemiBytes:    16 << 20,
	})
	m := NewMutator(h, simtime.NewClock(), simtime.Default1993(), LogAllMutations)
	c := NewReplicating(h, Config{
		NurseryBytes:        32 << 10,
		MajorThresholdBytes: 8 << 20,
		CopyLimitBytes:      4 << 10,
		IncrementalMinor:    true,
		IncrementalMajor:    true,
	})
	m.AttachGC(c)

	arr, buf := primeReplicatedMidCycle(t, m)

	// Append the batch once: runs of word stores to the array (the shape
	// the forwarding memo accelerates) plus one byte range (the block-copy
	// path). Mutator.Set may grow the log; the measured loop below only
	// re-reads it.
	start := c.minorLogCursor
	for i := 0; i < 32; i++ {
		m.Set(arr, i, heap.FromInt(int64(i)))
	}
	chunk := make([]byte, 128)
	for i := range chunk {
		chunk[i] = byte(i)
	}
	m.SetByteRange(buf, 8, chunk)
	if m.Log.Len() == start {
		t.Fatal("mutations were not logged; the batch is empty")
	}

	// Warm once (memo, charge tables), then assert.
	c.minorLogCursor = start
	if _, err := c.processMinorLog(m, true); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		c.minorLogCursor = start
		if _, err := c.processMinorLog(m, true); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("replay batch path allocates %.1f times per batch, want 0", n)
	}
	if c.stats.LogReapplied == 0 {
		t.Fatal("no entries were re-applied; the assertion is vacuous")
	}
}
