package core

import (
	"fmt"

	"repligc/internal/heap"
	"repligc/internal/policy"
	"repligc/internal/simtime"
	"repligc/internal/trace"
)

// Config parameterises the replication collector with the paper's knobs.
type Config struct {
	// NurseryBytes is the paper's N: the nursery size at which a minor
	// collection is initiated.
	NurseryBytes int64
	// MajorThresholdBytes is the paper's O: a major collection begins when
	// the volume promoted by minor collections since the last major
	// exceeds it. Zero disables major collections.
	MajorThresholdBytes int64
	// CopyLimitBytes is the paper's L: the total memory the collections
	// may copy during a single pause. Zero means unlimited (stop-the-
	// world behaviour for whichever generations are marked incremental).
	CopyLimitBytes int64
	// ExpandBytes is the paper's A: the nursery expansion granted per
	// pause while an incremental collection is awaiting completion.
	// Zero defaults to L/2, the paper's choice.
	ExpandBytes int64

	// IncrementalMinor and IncrementalMajor select the paper's
	// configurations: both true is the real-time collector; exactly one
	// true is the minor- or major-incremental variant of §4.4's study.
	IncrementalMinor bool
	IncrementalMajor bool

	// LazyLogProcessing defers mutation-log reapplication to the moment
	// of collection completion (paper §2.5's "delay the need to process
	// the log until the last possible moment"). Used by the ablation
	// bench; off by default.
	LazyLogProcessing bool

	// DeferMutableCopies implements the paper's §2.5 copy-order
	// opportunity: "The collector could choose to concentrate early
	// replication effort on only immutable objects, and thereby delay the
	// need to process the log until the last possible moment." Mutable
	// nursery objects discovered by the Cheney scan or by log
	// reapplication are not copied immediately; the referring replica
	// slot keeps the from-space pointer (a recorded inconsistency, as the
	// invariant permits) and the copy happens in the completing
	// increment, when the object's contents are final — so its log
	// entries never need reapplying at all. Off by default.
	DeferMutableCopies bool

	// NaiveReplay disables the wall-clock hot-path optimisations of the
	// replay and scan machinery: the per-object forwarding memo that gives
	// runs of same-target log entries one header check per group, the
	// block copy() used to reapply logged byte ranges, and the batched
	// budget accounting of the Cheney scans. All three are simulated-cost
	// neutral (the clock is charged per entry, per word and per slot
	// exactly as before), so a NaiveReplay run is bit-identical in
	// simulated time and heap contents — which is what the differential
	// property tests and the before/after wall-clock benchmarks rely on.
	// Off by default.
	NaiveReplay bool

	// BoundedLogProcessing makes log processing respect the work limit L,
	// resuming from the same cursor at the next pause. The paper's
	// implementation processes the log non-incrementally and admits that
	// this can exceed L (§3.4), noting it "can easily be implemented so
	// that [it is] performed incrementally" — this flag is that extension.
	BoundedLogProcessing bool

	// MaxMinorPauses bounds how many pauses one incremental minor
	// collection may span before it is forced to complete
	// non-incrementally (the paper's conservative completion / L lower
	// bound, §3.3). Zero means 1024.
	MaxMinorPauses int

	// InterleavedTaxPermille enables the concurrent-style pacing of the
	// paper's §6 ("The replication primitive can be interleaved freely
	// with mutator activity"): instead of performing collection work in
	// discrete pauses when the nursery fills, the collector runs a small
	// work quantum every few kilobytes of allocation — a copying tax of
	// InterleavedTaxPermille bytes of copy+scan work per 1000 bytes
	// allocated. Collection starts when the nursery is half full and
	// normally completes before it fills, so the only stop-the-mutator
	// events of any size are the atomic flips, as in the authors'
	// concurrent collector. Zero disables interleaving. Requires
	// IncrementalMinor.
	InterleavedTaxPermille int

	// Record, when non-nil, accumulates the run's flip script (§4.2).
	Record *policy.Script
	// Replay, when non-nil, drives minor flip points and the major
	// schedule from a recorded script. Only honoured when IncrementalMinor
	// is false: collections that complete in one pause can be pinned to
	// the recorded allocation marks exactly.
	Replay *policy.Script
}

func (c Config) expandBytes() int64 {
	if c.ExpandBytes > 0 {
		return c.ExpandBytes
	}
	return c.CopyLimitBytes / 2
}

func (c Config) maxMinorPauses() int {
	if c.MaxMinorPauses > 0 {
		return c.MaxMinorPauses
	}
	return 1024
}

// Name describes the configuration in the paper's terms.
func (c Config) Name() string {
	switch {
	case c.IncrementalMinor && c.IncrementalMajor:
		return "rt"
	case c.IncrementalMinor:
		return "minor-inc"
	case c.IncrementalMajor:
		return "major-inc"
	default:
		return "stop-copy(core)"
	}
}

// span marks a region of words the Cheney scan must step over
// (mutator-owned objects allocated directly in the old generation).
type span struct {
	start uint64
	words uint64
}

// fixup records a to-space slot that holds a from-space pointer to a
// MUTABLE object and must be re-pointed during the major flip. Slots
// holding immutable from-space pointers are rewritten eagerly (the mutator
// cannot observe the difference between an immutable original and its
// replica), but exposing a mutable replica before the flip would let the
// mutator read or write it while the collector is still reapplying the
// original's mutation log — so mutable references stay aimed at the
// from-space original until the atomic flip.
type fixup struct {
	obj  heap.Value // a to-space object (stable address)
	slot int32
}

// Replicating is the replication-based incremental collector. It maintains
// the paper's from-space invariant: the mutator only ever addresses
// original objects (or replicas that have already been handed over by a
// flip); the collector incrementally builds replicas, keeps them consistent
// by reapplying the mutation log, and atomically redirects all roots at a
// flip.
//
// Generations: minor collections replicate the nursery into the old
// generation's current promotion space; when the promoted volume crosses O
// a major collection incrementally replicates the old from-space into the
// reserve semispace. While a major collection is active, minor collections
// promote directly into the major's to-space ("allocating black"), so fresh
// promotions never become major copying work — this is what lets the major
// terminate under a small L even though the mutator keeps promoting, and
// follows the approach of the authors' concurrent follow-up collector.
type Replicating struct {
	cfg   Config
	h     *heap.Heap
	stats GCStats
	rec   simtime.Recorder
	tr    *trace.Recorder // nil when tracing is disabled (every emit is a nil check)

	// Cheney state. The minor scan covers only the objects promoted in
	// the current cycle (it rewrites their nursery pointers before the
	// minor flip). The major collection uses the classic implicit Cheney
	// scan: a cursor sweeps old-to in address order, and everything copied
	// or promoted there lands above the cursor, so no gray worklist (and
	// none of its allocations) is needed. The trade-off is the textbook
	// one: objects promoted during the major that die before the flip are
	// still swept by the cursor (floating garbage costs scan work, and
	// their old-from referents are replicated), matching the behaviour of
	// the authors' concurrent follow-up collector.
	scan           uint64 // minor cursor (fresh promotions this cycle)
	scanSlot       int    // resume slot within the object at the cursor
	minorScanStart uint64 // cycle's first promoted word (audit: scanned region)
	skips          []span // mutator-owned objects inside the minor scan region
	minorSkipIdx   int
	pendingMut     []fixup // replica slots holding deferred mutable nursery refs (§2.5)

	// The major-scan cursors and all per-cycle collection state below are
	// pause-only: multi-mutator sharing will make unsynchronized writes to
	// them data races, so gclint checks that every writer is dominated by
	// a pause entry (rule "pauseonly").

	//gclint:pauseonly the major cursor only advances while the mutator is stopped; a mid-scan mutation is routed through the log instead
	majorScan uint64 // major cursor: header word of the next old-to object to scan
	//gclint:pauseonly resume state of the paused major scan; only valid between increments of a stopped mutator
	majorScanSlot int // resume slot within the object at the major cursor

	// Minor collection state.

	//gclint:pauseonly cycle activation happens inside the pause that starts the cycle; the barrier fast path reads it un-synchronized
	minorActive bool
	//gclint:pauseonly the log cursor moves only while the mutator is stopped, else the barrier could append entries behind it
	minorLogCursor int64 // next log entry for the minor collection
	//gclint:pauseonly flip-entry worklist; grown while processing the log under pause, consumed at the flip
	minorRootSeqs []int64 // old-space pointer entries to re-point at the flip
	//gclint:pauseonly per-cycle pause counter, bumped once per pause
	minorPauses int // pauses spanned by the active minor collection
	//gclint:pauseonly snapshot of BytesCopiedMinor at cycle start, taken under the starting pause
	minorStartCopy int64 // BytesCopiedMinor at cycle start
	//gclint:pauseonly deferred reapply queue; filled and drained by log processing, which only runs under pause
	lazyMinorSeqs []int64 // deferred reapply queue under LazyLogProcessing

	// Major collection state.

	//gclint:pauseonly cycle activation happens inside the pause that starts the cycle; the barrier fast path reads it un-synchronized
	majorActive bool
	//gclint:pauseonly the log cursor moves only while the mutator is stopped, else the barrier could append entries behind it
	majorLogCursor     int64
	promotedSinceMajor int64
	//gclint:pauseonly major fixup worklist; grown by log processing and the scan, consumed at the major flip, all under pause
	fixups []fixup
	//gclint:pauseonly dedup set for fixups; same pause-only lifecycle as the worklist it guards
	fixupSeen       map[fixup]struct{} // dedup: a slot is queued once
	forcedMajorFlip bool               // replay wants a major flip at the next minor flip

	// Replay memo: consecutive log entries overwhelmingly target the same
	// object (the barrier logs a dirtied array slot by slot), so the
	// forwarding lookup — two arena reads and the space dispatch — is done
	// once per run of same-object entries and cached here. A memo for an
	// unforwarded object is only trusted while no copy has happened since
	// (the stamp below), because any replication may forward it; a
	// forwarded object's replica address is stable until the next flip,
	// which resets the memo.

	//gclint:pauseonly the memo is only consulted by log processing, which runs under pause
	memoObj heap.Value // last log-entry target; Nil when the memo is empty
	//gclint:pauseonly same pause-only lifecycle as memoObj
	memoReplica heap.Value
	//gclint:pauseonly same pause-only lifecycle as memoObj
	memoFwd bool
	//gclint:pauseonly total bytes copied when the memo was taken; detects forwarding installed since
	memoStamp int64

	replay    *policy.Cursor
	finishing bool // inside FinishCycles: flips are not recorded

	// Degradation-ladder state. promoHighWater is the largest volume one
	// minor cycle has ever promoted; the headroom reservation (DESIGN.md,
	// "Failure model") keeps that many bytes plus the current nursery
	// contents free in the promotion target, forcing completion (and an
	// early major) before a mid-copy overflow can happen. emergency marks
	// a pause promoted to full stop-the-world completion.
	promoHighWater int64
	emergency      bool

	// Interleaved pacing state.
	taxCredit  int64 // accumulated work credit in bytes
	microLimit int64 // per-micro-pause work budget (0: normal pauses)

	// Per-pause scratch.
	pauseCopied   int64 // bytes copied this pause (for the recorder)
	pauseLogProcd int64 // log entries processed this pause
	pauseWork     int64 // copy+scan bytes counted against the L budget

	// ckpt, when set, is called at the tail of every pause (still inside
	// the pause window) so the checkpoint writer can advance its snapshot
	// cursor under the same stopped-mutator guarantee collection work has.
	ckpt Checkpointer
}

// NewReplicating builds a collector over h. Attach it to the mutator with
// m.AttachGC. The mutator must use LogAllMutations: replication collection
// is incorrect without a complete mutation log.
func NewReplicating(h *heap.Heap, cfg Config) *Replicating {
	c := &Replicating{cfg: cfg, h: h}
	c.scan = h.OldFrom().Next
	if cfg.Replay != nil {
		c.replay = policy.NewCursor(cfg.Replay)
	}
	h.Nursery.SetLimitBytes(cfg.NurseryBytes)
	if cfg.Replay != nil {
		if d, ok := policy.NewCursor(cfg.Replay).NurseryDelta(0); ok {
			h.Nursery.SetLimitBytes(d)
		}
	}
	return c
}

// Name implements Collector.
func (c *Replicating) Name() string { return c.cfg.Name() }

// Stats implements Collector.
func (c *Replicating) Stats() *GCStats { return &c.stats }

// Pauses implements Collector.
func (c *Replicating) Pauses() *simtime.Recorder { return &c.rec }

// SetTrace attaches an event recorder; nil detaches it. Trace emission
// charges nothing to the simulated clock, so traced and untraced runs are
// bit-for-bit identical.
func (c *Replicating) SetTrace(r *trace.Recorder) { c.tr = r }

// phase opens a trace phase and returns its closer; callers invoke the
// closer exactly once, on every exit path, so begin/end events stay balanced
// even when an increment ends in a typed exhaustion error.
func (c *Replicating) phase(m *Mutator, p trace.Phase) func() {
	c.tr.PhaseBegin(m.Clock.Now(), p)
	return func() { c.tr.PhaseEnd(m.Clock.Now(), p) }
}

// AfterAlloc implements Collector; flip points are steered by nursery
// limits, so nothing happens here.
func (c *Replicating) AfterAlloc(m *Mutator) {}

// PromoteSpace reports where promotions (and oversized direct allocations)
// go: the old from-space normally, the major's to-space while a major
// collection is in progress.
func (c *Replicating) PromoteSpace() *heap.Space {
	if c.majorActive {
		return c.h.OldTo()
	}
	return c.h.OldFrom()
}

// NoteOldAlloc records an object allocated directly in the old generation
// (oversized allocations). It counts toward the major threshold O, and it
// must be excluded from the Cheney scan: the object is owned by the mutator
// (it is not a replica), so rewriting its nursery pointers before the flip
// would violate the from-space invariant. Its old→new and old→old pointers
// reach the collector through Init's logging instead.
func (c *Replicating) NoteOldAlloc(p heap.Value, hdr heap.Header) {
	c.promotedSinceMajor += hdr.SizeBytes()
	if c.minorActive {
		// The object sits inside the current minor scan region but is
		// owned by the mutator; the scan must step over it. Its contents
		// reach the collector through Init's logging.
		start := uint64(p)>>3 - 1 // header word index
		c.skips = append(c.skips, span{start: start, words: uint64(hdr.SizeWords())})
		return
	}
	// Between cycles the minor cursor just tracks the frontier.
	c.scan = c.PromoteSpace().Next
	c.scanSlot = 0
}

// workLimit returns the per-pause work allowance in bytes of copy+scan
// traffic, or 0 for unlimited. L bounds the memory *copied* per pause
// (paper §3.3); since every copied byte is also scanned exactly once over a
// collection's lifetime, bounding copy+scan at 2L yields steady pauses of
// about L / (2 MB/s) — 50 ms at the paper's L = 100 KB.
func (c *Replicating) workLimit() int64 {
	if c.microLimit > 0 {
		return c.microLimit
	}
	if c.cfg.CopyLimitBytes <= 0 || !c.cfg.IncrementalMinor && !c.cfg.IncrementalMajor {
		return 0
	}
	return 2 * c.cfg.CopyLimitBytes
}

// taxQuantum is the work size of one interleaved micro-pause (bytes of
// copy+scan); 4 KB is about one millisecond at the paper's copying rate.
const taxQuantum = 4 << 10

// AllocTax implements the interleaved (concurrent-style) pacing: called at
// the top of every allocation, before the object exists, which is a safe
// point — a flip here redirects all roots and the caller holds no
// unprotected heap values.
//
//gclint:pauseentry the allocation top is a safe point; cycle state only changes under the Clock.BeginPause micro-pause (or inside c.pause), never on the tax-accounting prefix
func (c *Replicating) AllocTax(m *Mutator, bytes int64) error {
	if c.cfg.InterleavedTaxPermille <= 0 {
		return nil
	}
	c.taxCredit += bytes * int64(c.cfg.InterleavedTaxPermille) / 1000
	if c.taxCredit < taxQuantum {
		return nil
	}
	minorDue := c.minorActive || c.h.Nursery.UsedBytes() >= c.cfg.NurseryBytes/2
	if !minorDue && !c.majorActive {
		// Nothing worth doing yet; keep a bounded credit so an idle
		// stretch does not bank an unbounded work debt.
		if c.taxCredit > 4*taxQuantum {
			c.taxCredit = 4 * taxQuantum
		}
		return nil
	}
	budget := c.taxCredit
	c.taxCredit = 0
	c.microLimit = budget
	var err error
	if minorDue {
		err = c.pause(m, 0, false)
	} else {
		// Only the major collection has pending work: run a mid-cycle
		// major increment without forcing a (trivial) minor collection.
		m.Clock.BeginPause()
		at := m.Clock.Now()
		syncBase := pauseSyncBase(m.Clock)
		c.tr.PauseBegin(at)
		c.tr.Counters(at, m.LogWrites, m.BarrierFastSkips, m.BarrierDirtySkips)
		// Log cursors may move below: start a fresh coalescing epoch so
		// barrier stamps from before this micro-pause cannot vouch for
		// entries the cursor is about to consume (heap/stamp.go).
		c.h.BeginLogEpoch()
		c.pauseCopied, c.pauseLogProcd, c.pauseWork = 0, 0, 0
		c.stats.PauseCount++
		_, err = c.runMajorIncrement(m, false, false)
		length := m.Clock.EndPause()
		sync := pauseSyncBase(m.Clock) - syncBase
		if sync > length {
			sync = length
		}
		c.rec.Record(simtime.Pause{
			At: at, Length: length, Kind: simtime.PauseMinor, Sync: sync,
			CopiedB: c.pauseCopied, LogProcN: c.pauseLogProcd,
		})
		c.tr.PauseEnd(m.Clock.Now(), c.pauseCopied, c.pauseLogProcd, int64(simtime.PauseMinor))
	}
	c.microLimit = 0
	return err
}

// entryWorkBytes is the work-budget weight of examining one log entry
// under BoundedLogProcessing (roughly the footprint of a small object).
const entryWorkBytes = 16

// CollectForAlloc implements Collector: one garbage-collection pause.
func (c *Replicating) CollectForAlloc(m *Mutator, needWords int) error {
	return c.pause(m, needWords, false)
}

// FinishCycles implements Collector: drive all pending incremental work to
// completion so total copy volumes are comparable across configurations.
func (c *Replicating) FinishCycles(m *Mutator) error {
	if !c.minorActive && !c.majorActive {
		return nil
	}
	// Run ordinary budgeted pauses so the tail of the run has the same
	// bounded-pause behaviour as the rest; fall back to forced completion
	// only if the collection fails to converge. Flips forced here are an
	// end-of-run artifact and are not recorded into policy scripts.
	c.finishing = true
	defer func() { c.finishing = false }()
	for i := 0; c.minorActive || c.majorActive; i++ {
		if err := c.pause(m, 0, i > 1<<16); err != nil {
			return err
		}
	}
	return nil
}

// CollectEmergency implements EmergencyCollector: one honest stop-the-world
// pause that drives the active cycles to completion and forces a full major
// collection, compacting the old generation so a failed direct allocation
// can retry. The long pause is charged to simulated time and recorded like
// any other.
func (c *Replicating) CollectEmergency(m *Mutator) error {
	c.stats.EmergencyCollections++
	c.emergency = true
	return c.pause(m, 0, true)
}

// pauseSyncBase samples the accounts whose within-pause deltas form the
// stop-the-world portion of a replicating pause (Pause.Sync): root scans,
// flips and checkpoint commits need every mutator stopped, while replica
// copying and log replay only need the from-space invariant and may overlap
// other mutators' execution in the multi-mutator time model (group.go).
func pauseSyncBase(clk *simtime.Clock) simtime.Duration {
	return clk.AccountTotal(simtime.AcctRootScan) +
		clk.AccountTotal(simtime.AcctFlip) +
		clk.AccountTotal(simtime.AcctCheckpoint)
}

// pause stops the mutator and performs one increment of collection work.
// When force is set the pause ignores budgets and completes everything.
// The pause is always charged and recorded — including when it ends in a
// typed exhaustion error, so degraded runs report honest long pauses.
//
//gclint:pauseentry Clock.BeginPause stops the (single) mutator before any collector state changes; every collector entry point funnels through here
func (c *Replicating) pause(m *Mutator, needWords int, force bool) error {
	m.Clock.BeginPause()
	at := m.Clock.Now()
	syncBase := pauseSyncBase(m.Clock)
	c.tr.PauseBegin(at)
	c.tr.Counters(at, m.LogWrites, m.BarrierFastSkips, m.BarrierDirtySkips)
	if c.emergency {
		// CollectEmergency escalated before entering the pause; mark the
		// rung as a distinct (instantaneous) phase.
		c.tr.PhaseMark(at, trace.PhaseEmergency)
	}
	// Every pause starts a fresh log-coalescing epoch before any cursor
	// moves: dirty stamps written by the barrier since the previous pause
	// vouch for entries this pause may now consume, so they must expire
	// here (heap/stamp.go spells out the invariant).
	c.h.BeginLogEpoch()
	c.pauseCopied, c.pauseLogProcd, c.pauseWork = 0, 0, 0
	c.stats.PauseCount++

	kind := simtime.PauseMinor
	err := c.pauseBody(m, needWords, force, &kind)
	// Stop-the-world pauses (forced completions, emergencies) admit no
	// overlap: capture the flag before it resets — pauseBody may have
	// escalated on low headroom after entry.
	stw := force || c.emergency
	c.emergency = false

	if c.ckpt != nil {
		end := c.phase(m, trace.PhaseCheckpoint)
		c.ckpt.PauseCheckpoint(m, c.checkpointPoint())
		end()
	}

	length := m.Clock.EndPause()
	if DebugPause != nil && length > 100*simtime.Millisecond {
		DebugPause(c, m, length)
	}
	sync := pauseSyncBase(m.Clock) - syncBase
	if stw || sync > length {
		sync = length
	}
	c.rec.Record(simtime.Pause{
		At: at, Length: length, Kind: kind, Sync: sync,
		CopiedB: c.pauseCopied, LogProcN: c.pauseLogProcd,
	})
	c.tr.PauseEnd(m.Clock.Now(), c.pauseCopied, c.pauseLogProcd, int64(kind))
	return err
}

// pauseBody is the work of one pause; pause wraps it so the clock and the
// recorder see every pause, successful or not.
func (c *Replicating) pauseBody(m *Mutator, needWords int, force bool, kind *simtime.PauseKind) error {
	// Degradation ladder, headroom reservation: if the promotion target
	// cannot absorb a worst-case cycle (everything currently in the
	// nursery plus the recorded high-water mark as reserve), finish all
	// incremental work now, in one long pause, rather than risk an
	// unrecoverable overflow in the middle of a later copy.
	if !force && c.lowHeadroom() {
		force = true
		c.emergency = true
		c.stats.EmergencyCollections++
		c.stats.ForcedCompletion++
		c.tr.PhaseMark(m.Clock.Now(), trace.PhaseEmergency)
	}

	if !c.minorActive {
		c.startMinor(m)
	}
	c.minorPauses++
	forceMinor := force || !c.cfg.IncrementalMinor || c.minorPauses > c.cfg.maxMinorPauses()
	if c.minorPauses > c.cfg.maxMinorPauses() {
		c.stats.ForcedCompletion++
	}

	done, err := c.runMinorIncrement(m, forceMinor)
	if err != nil {
		return err
	}
	if done {
		majorFlipped, err := c.afterMinorFlip(m, force)
		if err != nil {
			return err
		}
		if majorFlipped && !c.cfg.IncrementalMajor {
			*kind = simtime.PauseMajor
		}
	} else if needWords > 0 || c.h.Nursery.FreeWords() == 0 {
		// Await completion: grant the mutator room to keep allocating
		// (paper parameter A), enough for the pending allocation. Pauses
		// that were not forced by a failed allocation (interleaved micro-
		// pauses) skip the expansion — the nursery still has room.
		grow := c.cfg.expandBytes()
		needB := int64(needWords) * heap.BytesPerWord
		if grow < needB {
			grow = needB
		}
		granted := c.h.Nursery.GrowBytes(grow)
		c.stats.NurseryExpansion += granted
		if granted < needB {
			// Expansion bound blown: conservative completion (the
			// ladder's first rung), then regrow toward the cap for the
			// blocked allocation. Only if the nursery still cannot hold
			// the request does Alloc surface the typed error.
			c.stats.ForcedCompletion++
			done, err := c.runMinorIncrement(m, true)
			if err != nil {
				return err
			}
			if !done {
				//gclint:allow panicpath -- invariant: a forced increment has no budget to run out of
				panic("core: forced minor completion did not complete")
			}
			if _, err := c.afterMinorFlip(m, force); err != nil {
				return err
			}
			if free := c.h.Nursery.LimitBytes() - c.h.Nursery.UsedBytes(); free < needB {
				c.stats.NurseryExpansion += c.h.Nursery.GrowBytes(needB - free)
			}
		}
	}
	return nil
}

// lowHeadroom reports whether the promotion target is at risk of
// overflowing: its free bytes are below the worst case the active (or
// next) minor cycle can promote — the nursery's current contents — plus
// the promotion high-water mark as a safety reserve. The trigger depends
// only on simulated-heap state, so fault plans and replays stay
// deterministic.
func (c *Replicating) lowHeadroom() bool {
	free := int64(c.PromoteSpace().FreeWords()) * heap.BytesPerWord
	return free < c.h.Nursery.UsedBytes()+c.promoHighWater
}

// DebugPause, when set, is invoked for long pauses (test diagnostics).
var DebugPause func(c *Replicating, m *Mutator, length simtime.Duration)

// startMinor begins a minor collection cycle.
func (c *Replicating) startMinor(m *Mutator) {
	c.minorActive = true
	c.minorPauses = 0
	c.minorStartCopy = c.stats.BytesCopiedMinor
	// The minor log cursor persists across cycles: entries logged since
	// the previous flip are this cycle's remembered set. The minor scan
	// cursor tracks the promotion frontier; everything below it belongs
	// to earlier cycles (and, during a major, to the major scan).
	c.scan = c.PromoteSpace().Next
	c.scanSlot = 0
	c.minorScanStart = c.scan
	c.minorSkipIdx = len(c.skips)
}

// overBudget reports whether the current pause has used its copy+scan work
// allowance. Log processing, root scanning and flips are not limited by L
// by default (the paper's §3.4 caveats).
func (c *Replicating) overBudget(force bool) bool {
	limit := c.workLimit()
	return !force && limit > 0 && c.pauseWork >= limit
}

// budgetSlots reports how many scan slots the current pause may still
// process before overBudget would stop it: exactly ceil(remaining/word), so
// a batch of this many per-word charges lands the cursor on the identical
// slot a check-every-slot loop would stop at. A non-positive return means
// the budget is already spent; unlimited budgets report maxInt.
func (c *Replicating) budgetSlots(force bool) int {
	limit := c.workLimit()
	if force || limit <= 0 {
		return int(^uint(0) >> 1)
	}
	rem := limit - c.pauseWork
	if rem <= 0 {
		return 0
	}
	return int((rem + heap.BytesPerWord - 1) / heap.BytesPerWord)
}

// forwardingOf resolves the forwarding state of a log-entry target through
// the replay memo: one header check per run of same-object entries instead
// of one per entry. Under NaiveReplay the memo is bypassed and every call
// reads the header, restoring the unbatched wall-clock behaviour (the
// resolved state is identical either way).
func (c *Replicating) forwardingOf(obj heap.Value) (replica heap.Value, fwd bool) {
	if !c.cfg.NaiveReplay && obj == c.memoObj && obj != heap.Nil &&
		(c.memoFwd || c.memoStamp == c.stats.BytesCopiedMinor+c.stats.BytesCopiedMajor) {
		return c.memoReplica, c.memoFwd
	}
	h := c.h
	fwd = h.IsForwarded(obj)
	if fwd {
		replica = h.ForwardAddr(obj)
	}
	if !c.cfg.NaiveReplay {
		c.memoObj = obj
		c.memoReplica = replica
		c.memoFwd = fwd
		c.memoStamp = c.stats.BytesCopiedMinor + c.stats.BytesCopiedMajor
	}
	return replica, fwd
}

// resetReplayMemo empties the memo. Flips are the moments forwarding words
// disappear (the nursery resets, the old semispaces swap) and heap
// addresses get reused, so every flip must drop the cache.
func (c *Replicating) resetReplayMemo() {
	c.memoObj = heap.Nil
	c.memoReplica = heap.Nil
	c.memoFwd = false
	c.memoStamp = 0
}

// runMinorIncrement performs one increment of the minor collection and
// reports whether the collection completed (including its flip). A typed
// exhaustion error leaves the cycle active and resumable: every cursor
// stops exactly at the failed unit of work.
func (c *Replicating) runMinorIncrement(m *Mutator, force bool) (bool, error) {
	h := c.h

	// 1. Process the mutation log: discover minor roots (old-space slots
	// holding nursery pointers) and keep replicas up to date. By default
	// log processing is not incremental (paper §3.4) and ignores L; with
	// BoundedLogProcessing it stops at the work limit and resumes at the
	// next pause.
	endPhase := c.phase(m, trace.PhaseLogReplay)
	done, err := c.processMinorLog(m, force)
	endPhase()
	if !done {
		return false, err
	}

	// 2. Cheney scan of the objects promoted this cycle.
	endPhase = c.phase(m, trace.PhaseCopy)
	done, err = c.scanFresh(m, force)
	endPhase()
	if !done {
		return false, err
	}

	// 3. The log is drained and the scan has caught up: attempt
	// completion. Only now are the mutator roots scanned — intermediate
	// increments make their progress through the log and the Cheney scan,
	// so the (per-pause-constant) root-scan cost is paid once per
	// collection rather than once per increment. Root referents are
	// replicated within the budget; an aborted pass is retried by a later
	// increment.
	aborted := false
	var visitErr error
	endPhase = c.phase(m, trace.PhaseRootScan)
	// Roots.Slots enumerates into a reusable buffer: no per-scan closure
	// allocations, and the loop can stop the moment the budget runs out.
	// Every slot is still charged (the root scan visits them all).
	roots := m.Roots.Slots()
	for _, slot := range roots {
		v := *slot
		if h.Nursery.Contains(v) {
			if _, err := c.replicateMinor(m, v); err != nil {
				visitErr = err
				break
			}
			if c.overBudget(force) {
				aborted = true
				break
			}
		}
	}
	c.chargeRoots(m, len(roots))
	endPhase()
	if visitErr != nil {
		return false, visitErr
	}
	if aborted {
		return false, nil
	}
	// The roots may have enqueued fresh copies; finish scanning them.
	endPhase = c.phase(m, trace.PhaseCopy)
	done, err = c.scanFresh(m, force)
	endPhase()
	if !done {
		return false, err
	}

	// 4. Lazy mode deferred its reapplies to this moment.
	if c.cfg.LazyLogProcessing {
		endPhase = c.phase(m, trace.PhaseLogReplay)
		err := c.drainLazyMinor(m)
		endPhase()
		if err != nil {
			return false, err
		}
		// Reapplication may have replicated new objects; finish scanning.
		endPhase = c.phase(m, trace.PhaseCopy)
		done, err := c.scanFresh(m, true)
		endPhase()
		if !done {
			if err != nil {
				return false, err
			}
			//gclint:allow panicpath -- invariant: a forced scan has no budget to run out of
			panic("core: lazy completion scan did not finish")
		}
	}
	// Deferred mutable copies happen now, when their contents are final;
	// each round of copies can expose more deferred references, so loop
	// to a fixpoint.
	for len(c.pendingMut) > 0 {
		endPhase = c.phase(m, trace.PhaseCopy)
		err := c.drainPendingMutables(m)
		var done bool
		if err == nil {
			done, err = c.scanFresh(m, true)
		}
		endPhase()
		if err != nil {
			return false, err
		}
		if !done {
			//gclint:allow panicpath -- invariant: a forced scan has no budget to run out of
			panic("core: pending-mutable completion scan did not finish")
		}
	}
	if c.minorLogCursor != m.Log.Len() {
		return false, nil
	}

	endPhase = c.phase(m, trace.PhaseFlip)
	err = c.minorFlip(m)
	endPhase()
	if err != nil {
		return false, err
	}
	return true, nil
}

// processMinorLog consumes pending log entries for the minor collection;
// it reports whether the log was fully drained. On a typed exhaustion
// error the cursor is rewound to the failed entry so a later (degraded)
// increment resumes exactly there.
func (c *Replicating) processMinorLog(m *Mutator, force bool) (bool, error) {
	h := c.h
	rewind := func(err error) (bool, error) {
		c.minorLogCursor--
		c.stats.LogScanned--
		c.pauseLogProcd--
		return false, err
	}
	for c.minorLogCursor < m.Log.Len() {
		if c.cfg.BoundedLogProcessing {
			if c.overBudget(force) {
				return false, nil
			}
			c.pauseWork += entryWorkBytes
		}
		seq := c.minorLogCursor
		e := m.Log.At(seq)
		c.minorLogCursor++
		c.stats.LogScanned++
		c.pauseLogProcd++
		m.Clock.Charge(simtime.AcctLogScan, m.Cost.LogScan)

		switch {
		case h.Nursery.Contains(e.Obj):
			if c.cfg.LazyLogProcessing {
				c.lazyMinorSeqs = append(c.lazyMinorSeqs, seq)
				continue
			}
			if err := c.reapplyMinor(m, e); err != nil {
				return rewind(err)
			}
		case h.OldFrom().Contains(e.Obj), h.OldTo().Contains(e.Obj):
			// A mutation to an old object: a minor root when it stores a
			// nursery pointer. (Old-to objects are mutator-visible while
			// a major collection is active: promoted objects and direct
			// allocations live there.)
			if e.Byte {
				continue // byte data holds no roots
			}
			v := h.Load(e.Obj, int(e.Slot))
			if h.Nursery.Contains(v) {
				if _, err := c.replicateMinor(m, v); err != nil {
					return rewind(err)
				}
				c.minorRootSeqs = append(c.minorRootSeqs, seq)
			}
		}
	}
	return true, nil
}

// reapplyMinor brings the replica of a mutated, already-replicated nursery
// object up to date with one logged mutation.
func (c *Replicating) reapplyMinor(m *Mutator, e LogEntry) error {
	h := c.h
	replica, fwd := c.forwardingOf(e.Obj)
	if !fwd {
		return nil // not yet replicated; the copy will carry current contents
	}
	c.stats.LogReapplied++
	m.Clock.Charge(simtime.AcctLogReapply, m.Cost.LogReapply)
	if e.Byte {
		if c.cfg.NaiveReplay {
			for i := int32(0); i < e.Len; i++ {
				h.StoreByte(replica, int(e.Slot+i), h.LoadByte(e.Obj, int(e.Slot+i)))
			}
		} else {
			h.CopyPayloadBytes(replica, e.Obj, int(e.Slot), int(e.Len))
		}
		return nil
	}
	var err error
	v := h.Load(e.Obj, int(e.Slot))
	if h.Nursery.Contains(v) {
		v, err = c.minorValue(m, v, replica, int(e.Slot))
	} else {
		v, err = c.toSpaceValue(m, v, replica, int(e.Slot))
	}
	if err != nil {
		return err // replica slot untouched; reapplying again later is safe
	}
	h.Store(replica, int(e.Slot), v)
	// Storing a to-space reference needs no further action even when the
	// replica has already been passed by the major cursor: every old-to
	// object is scanned by address, so the referent is covered regardless.
	return nil
}

// drainLazyMinor reapplies all deferred mutations at completion time. The
// queue is only truncated once every entry has been applied, so an
// exhaustion error mid-drain is retried from the top (reapplication is
// idempotent: it copies the original's current contents).
func (c *Replicating) drainLazyMinor(m *Mutator) error {
	for _, seq := range c.lazyMinorSeqs {
		if seq < m.Log.Base() {
			//gclint:allow panicpath -- invariant: trimLog keeps every queued lazy entry alive
			panic("core: lazy log entry trimmed prematurely")
		}
		if err := c.reapplyMinor(m, m.Log.At(seq)); err != nil {
			return err
		}
	}
	c.lazyMinorSeqs = c.lazyMinorSeqs[:0]
	return nil
}

// minorValue prepares a nursery value for storage into a replica slot.
// Under DeferMutableCopies, references to not-yet-copied mutable objects
// are left pointing into the nursery and the slot is queued; the copy (and
// the slot fix) happen in the completing increment.
func (c *Replicating) minorValue(m *Mutator, v heap.Value, slotObj heap.Value, slot int) (heap.Value, error) {
	h := c.h
	if h.IsForwarded(v) {
		return h.ForwardAddr(v), nil
	}
	if c.cfg.DeferMutableCopies && heap.Header(h.RawHeader(v)).Kind().Mutable() {
		c.pendingMut = append(c.pendingMut, fixup{obj: slotObj, slot: int32(slot)})
		return v, nil
	}
	return c.replicateMinor(m, v)
}

// drainPendingMutables copies the deferred mutable objects and re-points
// the recorded slots; runs at completion, when contents are final. The
// queue is only truncated after a full pass: slots already re-pointed no
// longer hold nursery values, so a resumed pass skips them.
func (c *Replicating) drainPendingMutables(m *Mutator) error {
	h := c.h
	for _, f := range c.pendingMut {
		v := h.Load(f.obj, int(f.slot))
		if !h.Nursery.Contains(v) {
			continue // overwritten since; a later entry handled it
		}
		nv, err := c.replicateMinor(m, v)
		if err != nil {
			return err
		}
		h.Store(f.obj, int(f.slot), nv)
	}
	c.pendingMut = c.pendingMut[:0]
	return nil
}

// replicateMinor ensures v (a nursery object) has a replica in the
// promotion space and returns the replica pointer. The original stays
// intact — its header word now carries the forwarding pointer (paper §3.2).
// Overflow of the promotion space surfaces as a typed *OOMError; v is left
// unforwarded and the heap is still auditable (the headroom reservation in
// pauseBody exists to make this path unreachable in practice).
func (c *Replicating) replicateMinor(m *Mutator, v heap.Value) (heap.Value, error) {
	h := c.h
	if h.IsForwarded(v) {
		return h.ForwardAddr(v), nil
	}
	hdr := heap.Header(h.RawHeader(v))
	space := c.PromoteSpace()
	replica, ok := h.CopyObject(v, space)
	if !ok {
		return heap.Nil, c.oomCopy(OOMPromotion, space, hdr)
	}
	h.SetForward(v, replica)
	b := hdr.SizeBytes()
	c.stats.BytesCopiedMinor += b
	c.pauseCopied += b
	c.pauseWork += b
	m.Clock.Charge(simtime.AcctMinorCopy, simtime.Duration(hdr.SizeWords())*m.Cost.CopyWord)
	return replica, nil
}

// oomCopy builds the typed error for a failed replication copy.
func (c *Replicating) oomCopy(res OOMResource, space *heap.Space, hdr heap.Header) *OOMError {
	return &OOMError{
		Resource:  res,
		Collector: c.Name(),
		Space:     space.Name,
		Request:   hdr.SizeBytes(),
		Free:      int64(space.FreeWords()) * heap.BytesPerWord,
		Limit:     space.LimitBytes(),
		Degraded:  c.emergency,
	}
}

// replicateMajor ensures v (an old from-space object) has a replica in
// old-to and returns it. Only meaningful while a major is active. Overflow
// of the reserve semispace surfaces as a typed *OOMError with v left
// unforwarded.
func (c *Replicating) replicateMajor(m *Mutator, v heap.Value) (heap.Value, error) {
	h := c.h
	if h.IsForwarded(v) {
		return h.ForwardAddr(v), nil
	}
	hdr := heap.Header(h.RawHeader(v))
	replica, ok := h.CopyObject(v, h.OldTo())
	if !ok {
		return heap.Nil, c.oomCopy(OOMToSpace, h.OldTo(), hdr)
	}
	h.SetForward(v, replica)
	b := hdr.SizeBytes()
	c.stats.BytesCopiedMajor += b
	c.pauseCopied += b
	c.pauseWork += b
	m.Clock.Charge(simtime.AcctMajorCopy, simtime.Duration(hdr.SizeWords())*m.Cost.CopyWord)
	// The replica lands at the old-to frontier, above the major cursor, so
	// the implicit Cheney scan reaches it without any queueing.
	return replica, nil
}

// toSpaceValue prepares a value for storage into a to-space slot while a
// major collection is active. From-space referents are replicated;
// immutable references are redirected to the replica immediately (the
// mutator cannot tell originals and replicas of immutable objects apart),
// while mutable references keep pointing at the original — exposing a
// mutable replica before the flip would break the from-space invariant —
// and the slot is queued for re-pointing during the major flip.
func (c *Replicating) toSpaceValue(m *Mutator, v heap.Value, slotObj heap.Value, slot int) (heap.Value, error) {
	if !c.majorActive || !c.h.OldFrom().Contains(v) {
		return v, nil
	}
	if c.h.HeaderOf(v).Kind().Mutable() {
		f := fixup{obj: slotObj, slot: int32(slot)}
		if _, dup := c.fixupSeen[f]; !dup {
			c.fixupSeen[f] = struct{}{}
			c.fixups = append(c.fixups, f)
		}
		// Under §2.5 deferred copying the mutable object itself is not
		// replicated until the major's completion attempts, so mutations
		// made to it in the meantime never need reapplying; otherwise
		// copy eagerly (the slot still waits for the flip either way).
		if !c.cfg.DeferMutableCopies {
			if _, err := c.replicateMajor(m, v); err != nil {
				return heap.Nil, err
			}
		}
		return v, nil
	}
	return c.replicateMajor(m, v)
}

// drainDeferredMajorMutables replicates the mutable old-from objects whose
// copies were deferred (their slots are the recorded fixups), queueing the
// replicas for tracing. Budget-gated; reports whether everything pending
// was copied.
func (c *Replicating) drainDeferredMajorMutables(m *Mutator, force bool) (bool, error) {
	h := c.h
	for _, f := range c.fixups {
		v := h.Load(f.obj, int(f.slot))
		if !h.OldFrom().Contains(v) || h.IsForwarded(v) {
			continue
		}
		if c.overBudget(force) {
			return false, nil
		}
		if _, err := c.replicateMajor(m, v); err != nil {
			return false, err
		}
	}
	return true, nil
}

// scanFresh advances the minor Cheney scan over the objects promoted in
// the current cycle, rewriting their nursery pointers to promoted replicas.
// From-space references in fresh promotions are left untouched here — the
// mutator is entitled to use from-space originals, and the major scan deals
// with them at its own pace. It reports whether the scan caught up with the
// promotion frontier.
func (c *Replicating) scanFresh(m *Mutator, force bool) (bool, error) {
	h := c.h
	space := c.PromoteSpace()
	for c.scan < space.Next {
		if c.scanSlot == 0 && c.minorSkipIdx < len(c.skips) && c.skips[c.minorSkipIdx].start == c.scan {
			c.scan += c.skips[c.minorSkipIdx].words
			c.minorSkipIdx++
			continue
		}
		if c.overBudget(force) {
			return false, nil
		}
		w := h.Arena[c.scan]
		if !heap.IsHeader(w) {
			//gclint:allow panicpath -- invariant: replicas are never themselves forwarded during their cycle
			panic(fmt.Sprintf("core: minor scan hit forwarded object at %#x", c.scan))
		}
		hdr := heap.Header(w)
		p := heap.Value((c.scan + 1) << 3)
		if !hdr.Kind().HasPointers() {
			c.pauseWork += hdr.SizeBytes()
			m.Clock.Charge(simtime.AcctMinorCopy, simtime.Duration(hdr.SizeWords())*m.Cost.ScanWord)
			c.scan += uint64(hdr.SizeWords())
			continue
		}
		// Pointer-bearing objects are scanned slot by slot so that even a
		// single large object cannot blow the pause budget (the paper's
		// §3.4 incremental-large-object extension); the slot cursor
		// resumes at the next increment.
		if c.scanSlot == 0 {
			c.pauseWork += heap.BytesPerWord // header word
			m.Clock.Charge(simtime.AcctMinorCopy, m.Cost.ScanWord)
		}
		i := c.scanSlot
		if c.cfg.NaiveReplay {
			for ; i < hdr.Len(); i++ {
				if c.overBudget(force) {
					c.scanSlot = i
					return false, nil
				}
				c.pauseWork += heap.BytesPerWord
				m.Clock.Charge(simtime.AcctMinorCopy, m.Cost.ScanWord)
				v := h.Load(p, i)
				if h.Nursery.Contains(v) {
					nv, err := c.minorValue(m, v, p, i)
					if err != nil {
						c.scanSlot = i // resume exactly at the failed slot
						return false, err
					}
					h.Store(p, i, nv)
				}
			}
		} else {
			// Batched accounting: runs of uninteresting slots are swept in
			// a tight loop and charged in one go. The batch size is exactly
			// the slot allowance the per-slot budget check would have
			// granted, and any slot that triggers a copy ends its batch (a
			// copy consumes budget too), so the cursor stops on the
			// identical slot — simulated charges and heap contents are
			// bit-equal to the NaiveReplay loop above.
			for i < hdr.Len() {
				n := c.budgetSlots(force)
				if n == 0 {
					c.scanSlot = i
					return false, nil
				}
				if rem := hdr.Len() - i; n > rem {
					n = rem
				}
				var v heap.Value
				j := i
				for ; j < i+n; j++ {
					v = h.Load(p, j)
					if h.Nursery.Contains(v) {
						break
					}
				}
				scanned := j - i
				hit := j < i+n
				if hit {
					scanned++ // the interesting slot is charged too
				}
				c.pauseWork += int64(scanned) * heap.BytesPerWord
				m.Clock.Charge(simtime.AcctMinorCopy, simtime.Duration(scanned)*m.Cost.ScanWord)
				if !hit {
					i = j
					continue
				}
				nv, err := c.minorValue(m, v, p, j)
				if err != nil {
					c.scanSlot = j // resume exactly at the failed slot
					return false, err
				}
				h.Store(p, j, nv)
				i = j + 1
			}
		}
		c.scanSlot = 0
		c.scan += uint64(hdr.SizeWords())
	}
	return true, nil
}

// scanMajor advances the major's implicit Cheney scan within the work
// budget: a cursor sweeps old-to in address order, and because every major
// replica and every promotion is allocated at the old-to frontier — above
// the cursor — reaching the frontier means everything is traced, with no
// gray worklist and no per-object queue allocations. Each object's
// from-space referents are replicated (immutable references rewritten,
// mutable ones recorded as flip fixups); to-space referents need no action
// (they are scanned by address), and nursery referents are the minor
// machinery's business — the minor flip re-points every logged old→nursery
// slot before a major can complete. The sweep also visits mutator-owned
// direct allocations and objects that died since promotion: floating
// garbage costs scan work, the price of dropping the worklist. Scanning is
// resumable *within* an object, so even a single large array cannot blow
// the pause budget — the incremental-large-object extension the paper
// suggests in §3.4. It reports whether the cursor reached the frontier.
func (c *Replicating) scanMajor(m *Mutator, force bool) (bool, error) {
	h := c.h
	to := h.OldTo()
	for c.majorScan < to.Next {
		w := h.Arena[c.majorScan]
		if !heap.IsHeader(w) {
			//gclint:allow panicpath -- invariant: to-space objects are replicas and never forwarded
			panic("core: major scan hit forwarded object")
		}
		hdr := heap.Header(w)
		p := heap.Value((c.majorScan + 1) << 3)
		if !hdr.Kind().HasPointers() {
			if c.overBudget(force) {
				return false, nil
			}
			c.pauseWork += hdr.SizeBytes()
			m.Clock.Charge(simtime.AcctMajorCopy, simtime.Duration(hdr.SizeWords())*m.Cost.ScanWord)
			c.majorScan += uint64(hdr.SizeWords())
			continue
		}
		if c.majorScanSlot == 0 {
			if c.overBudget(force) {
				return false, nil
			}
			c.pauseWork += heap.BytesPerWord // header word
			m.Clock.Charge(simtime.AcctMajorCopy, m.Cost.ScanWord)
		}
		i := c.majorScanSlot
		if c.cfg.NaiveReplay {
			for ; i < hdr.Len(); i++ {
				if c.overBudget(force) {
					c.majorScanSlot = i
					return false, nil
				}
				c.pauseWork += heap.BytesPerWord
				m.Clock.Charge(simtime.AcctMajorCopy, m.Cost.ScanWord)
				v := h.Load(p, i)
				if h.OldFrom().Contains(v) {
					nv, err := c.toSpaceValue(m, v, p, i)
					if err != nil {
						c.majorScanSlot = i // resume at the failed slot
						return false, err
					}
					if nv != v {
						h.Store(p, i, nv)
					}
				}
			}
		} else {
			// Batched accounting, exactly as in scanFresh: uninteresting
			// runs sweep in a tight loop with one charge, interesting slots
			// end their batch so the budget reflects the copy they caused.
			for i < hdr.Len() {
				n := c.budgetSlots(force)
				if n == 0 {
					c.majorScanSlot = i
					return false, nil
				}
				if rem := hdr.Len() - i; n > rem {
					n = rem
				}
				var v heap.Value
				j := i
				for ; j < i+n; j++ {
					v = h.Load(p, j)
					if h.OldFrom().Contains(v) {
						break
					}
				}
				scanned := j - i
				hit := j < i+n
				if hit {
					scanned++
				}
				c.pauseWork += int64(scanned) * heap.BytesPerWord
				m.Clock.Charge(simtime.AcctMajorCopy, simtime.Duration(scanned)*m.Cost.ScanWord)
				if !hit {
					i = j
					continue
				}
				nv, err := c.toSpaceValue(m, v, p, j)
				if err != nil {
					c.majorScanSlot = j // resume at the failed slot
					return false, err
				}
				if nv != v {
					h.Store(p, j, nv)
				}
				i = j + 1
			}
		}
		c.majorScanSlot = 0
		c.majorScan += uint64(hdr.SizeWords())
	}
	return true, nil
}

// majorScanDone reports whether the major cursor has reached the old-to
// frontier (everything currently in to-space has been scanned).
func (c *Replicating) majorScanDone() bool { return c.majorScan >= c.h.OldTo().Next }

func (c *Replicating) chargeRoots(m *Mutator, n int) {
	c.stats.RootSlotUpdates += int64(n)
	m.Clock.Charge(simtime.AcctRootScan, simtime.Duration(n)*m.Cost.RootUpdate)
}

// minorFlip atomically redirects the mutator onto the replicas: logged
// old-space slots (the minor roots) are re-pointed via an extra traversal
// of the filtered log (the paper's CF cost), then every mutator root is
// updated, and the nursery is discarded. A typed exhaustion error from a
// straggler copy aborts the flip with the cycle still active: nothing is
// truncated until every fallible step has succeeded, and the already-
// re-pointed slots no longer hold nursery values, so a retried flip skips
// them.
func (c *Replicating) minorFlip(m *Mutator) error {
	h := c.h

	// Re-point logged old-space locations at promoted replicas.
	for _, seq := range c.minorRootSeqs {
		e := m.Log.At(seq)
		v := h.Load(e.Obj, int(e.Slot))
		if !h.Nursery.Contains(v) {
			continue // overwritten since; a later entry handled it
		}
		if !h.IsForwarded(v) {
			if _, err := c.replicateMinor(m, v); err != nil {
				return err
			}
		}
		h.Store(e.Obj, int(e.Slot), h.ForwardAddr(v))
		c.stats.FlipEntryUpdates++
		m.Clock.Charge(simtime.AcctFlip, m.Cost.FlipEntry)
		if c.majorActive && h.OldFrom().Contains(e.Obj) {
			// If the holder is an old-from object, the major must also
			// observe the store (reapply to its replica). The promoted
			// referent itself needs no queueing: it lives in old-to, which
			// the major cursor scans by address.
			m.Log.Append(LogEntry{Obj: e.Obj, Slot: e.Slot})
		}
	}
	c.minorRootSeqs = c.minorRootSeqs[:0]

	// Update every mutator root; promoted replicas the roots now reference
	// live in old-to, where an active major's cursor scans them by address.
	roots := m.Roots.Slots()
	for _, slot := range roots {
		v := *slot
		if h.Nursery.Contains(v) {
			if !h.IsForwarded(v) {
				//gclint:allow panicpath -- invariant: the completion pass replicated every nursery root before the flip
				panic("core: unreplicated root at minor flip")
			}
			*slot = h.ForwardAddr(v)
		}
	}
	c.stats.RootSlotUpdates += int64(len(roots))
	m.Clock.Charge(simtime.AcctFlip, simtime.Duration(len(roots))*m.Cost.RootUpdate)

	// Advance the minor cursor over anything the flip appended for the
	// major collection: those entries are not nursery business.
	c.minorLogCursor = m.Log.Len()

	// Discard the nursery and grant the next cycle's allocation room. The
	// replay memo dies with it: nursery addresses are about to be reused.
	h.Nursery.Reset()
	c.resetReplayMemo()
	promoted := c.stats.BytesCopiedMinor - c.minorStartCopy
	c.promotedSinceMajor += promoted
	if promoted > c.promoHighWater {
		c.promoHighWater = promoted // feeds the headroom reservation
	}
	c.stats.MinorCollections++
	c.minorActive = false
	// Skip spans expire with the cycle: the minor scan has passed them,
	// and the major traces by reachability rather than by region.
	c.skips = c.skips[:0]
	c.minorSkipIdx = 0

	c.stats.FlipCopied = append(c.stats.FlipCopied, c.stats.TotalBytesCopied())
	if c.cfg.Record != nil && !c.finishing {
		// MajorFlip is patched by afterMinorFlip if a major completes in
		// this pause.
		c.cfg.Record.Record(policy.Event{AllocMark: m.BytesAllocated})
	}
	c.setNextNurseryLimit(m)
	c.trimLog(m)
	return nil
}

// setNextNurseryLimit restores the nursery limit for the next cycle: the
// configured N, or the replayed allocation delta from the script.
func (c *Replicating) setNextNurseryLimit(m *Mutator) {
	limit := c.cfg.NurseryBytes
	if c.replay != nil {
		if ev, ok := c.replay.Next(); ok {
			c.forcedMajorFlip = ev.MajorFlip
			if d, ok := c.replay.NurseryDelta(m.BytesAllocated); ok {
				limit = d
			}
		}
	}
	// Keep a sane floor so a replayed delta can always satisfy the
	// allocation that triggered the pause.
	const floor = 64 << 10
	if limit < floor {
		limit = floor
	}
	c.h.Nursery.SetLimitBytes(limit)
}

// trimLog drops log entries no collection still needs.
func (c *Replicating) trimLog(m *Mutator) {
	low := c.minorLogCursor
	if c.majorActive && c.majorLogCursor < low {
		low = c.majorLogCursor
	}
	m.Log.TrimTo(low)
}

// afterMinorFlip runs the major-generation work that the paper schedules
// immediately after each minor termination: activate a major collection
// when the promotion threshold O is crossed, then perform major work within
// the pause's remaining budget (or, if the minor work already exhausted it,
// process the log only). It reports whether a major flip completed.
//
// An emergency pause overrides the threshold: the old generation is the
// only place a degraded collection can reclaim space, so the major runs
// (and completes) regardless of O.
func (c *Replicating) afterMinorFlip(m *Mutator, force bool) (bool, error) {
	if !c.majorActive {
		trigger := c.cfg.MajorThresholdBytes > 0 && c.promotedSinceMajor >= c.cfg.MajorThresholdBytes
		if c.replay != nil {
			trigger = c.forcedMajorFlip
		}
		if c.emergency {
			trigger = true
		}
		if !trigger {
			return false, nil
		}
		c.startMajor(m)
	}
	forceMajor := force || c.emergency || !c.cfg.IncrementalMajor || (c.replay != nil && c.forcedMajorFlip)
	// Under interleaved pacing, the post-flip increment is the only moment
	// a major can complete; give it a quarter of the standard per-pause
	// work budget rather than the micro quantum (flips are the one place
	// the concurrent design stops the mutator for real work, but they
	// should still stay well under the pause target).
	micro := c.microLimit
	if micro > 0 {
		bigger := c.cfg.CopyLimitBytes / 2
		if bigger > micro {
			c.microLimit = bigger
		}
	}
	flipped, err := c.runMajorIncrement(m, forceMajor, true)
	c.microLimit = micro
	if err != nil {
		return false, err
	}
	if flipped {
		c.forcedMajorFlip = false
		if c.cfg.Record != nil && !c.finishing && c.cfg.Record.Len() > 0 {
			c.cfg.Record.Events[c.cfg.Record.Len()-1].MajorFlip = true
		}
	}
	return flipped, nil
}

// startMajor begins a major collection cycle. It must be called right after
// a minor flip, when the nursery is empty and no old→nursery pointers
// exist. From this moment promotions land in old-to (allocated black for
// the minor generation) and the major cursor sweeps old-to behind them;
// old-to is empty here (the previous major flip reset it), so the cursor
// starts at the bottom of the space.
func (c *Replicating) startMajor(m *Mutator) {
	c.majorActive = true
	c.majorLogCursor = m.Log.Len()
	c.scan = c.h.OldTo().Next
	c.scanSlot = 0
	c.majorScan = c.h.OldTo().Next
	c.majorScanSlot = 0
	c.fixupSeen = make(map[fixup]struct{})
}

// runMajorIncrement performs one increment of the major collection and
// reports whether it completed (including its flip). Log processing always
// runs; replication work is skipped when the pause budget is already spent
// (paper §3.3). postFlip marks increments running right after a minor flip,
// when no old→nursery pointers exist; increments interleaved mid-cycle
// (concurrent-style pacing, §6) pass false, and a logged slot whose current
// value still points into the nursery blocks the log queue until the next
// minor flip re-points it. Completion is only possible post-flip.
func (c *Replicating) runMajorIncrement(m *Mutator, force, postFlip bool) (bool, error) {
	h := c.h

	// 1. Drain the major log: reapply mutations to existing replicas of
	// old-from objects, and track from-space references stored into
	// mutator-visible to-space objects.
	endPhase := c.phase(m, trace.PhaseLogReplay)
	done, err := c.processMajorLog(m, force, postFlip)
	endPhase()
	if !done {
		return false, err
	}

	if c.overBudget(force) {
		return false, nil
	}

	// 2. Advance the implicit Cheney scan toward the old-to frontier.
	endPhase = c.phase(m, trace.PhaseCopy)
	done, err = c.scanMajor(m, force)
	endPhase()
	if !done {
		return false, err
	}

	// 3. Scan and log are drained: attempt completion. Scan the mutator
	// roots (the nursery is empty right after a minor flip, so roots
	// reference only the old generation or immediates); from-space
	// referents are replicated — the roots themselves are only redirected
	// at the flip — and to-space referents need no action, since the
	// cursor sweeps them by address. As with the minor collection, roots
	// are scanned once per completion attempt rather than once per
	// increment.
	if !postFlip {
		return false, nil
	}
	aborted := false
	var visitErr error
	endPhase = c.phase(m, trace.PhaseRootScan)
	roots := m.Roots.Slots()
	for _, slot := range roots {
		v := *slot
		if h.OldFrom().Contains(v) {
			if _, err := c.replicateMajor(m, v); err != nil {
				visitErr = err
				break
			}
			if c.overBudget(force) {
				aborted = true
				break
			}
		}
	}
	c.chargeRoots(m, len(roots))
	endPhase()
	if visitErr != nil {
		return false, visitErr
	}
	if aborted {
		return false, nil
	}
	// Root replication pushed fresh copies above the cursor; finish the
	// sweep.
	endPhase = c.phase(m, trace.PhaseCopy)
	done, err = c.scanMajor(m, force)
	endPhase()
	if !done {
		return false, err
	}

	// Deferred mutable copies (§2.5) happen now: copy, trace their
	// contents, and repeat until no pending copies remain — each round can
	// expose further deferred references.
	if c.cfg.DeferMutableCopies {
		endPhase = c.phase(m, trace.PhaseCopy)
		for {
			if done, err := c.drainDeferredMajorMutables(m, force); !done {
				endPhase()
				return false, err
			}
			if c.majorScanDone() {
				break
			}
			if done, err := c.scanMajor(m, force); !done {
				endPhase()
				return false, err
			}
		}
		endPhase()
	}

	if c.majorLogCursor != m.Log.Len() || !c.majorScanDone() {
		return false, nil
	}
	endPhase = c.phase(m, trace.PhaseFlip)
	err = c.majorFlip(m)
	endPhase()
	if err != nil {
		return false, err
	}
	return true, nil
}

// processMajorLog consumes pending log entries for the major collection;
// it reports whether log processing has gone as far as it can this
// increment (a mid-cycle entry whose slot still holds a nursery pointer
// parks the queue until the next minor flip, which counts as done). A
// typed exhaustion error rewinds the cursor to the failed entry, like the
// mid-cycle retry.
func (c *Replicating) processMajorLog(m *Mutator, force, postFlip bool) (bool, error) {
	h := c.h
	rewind := func(err error) (bool, error) {
		c.majorLogCursor--
		c.stats.LogScanned--
		c.pauseLogProcd--
		return false, err
	}
logLoop:
	for c.majorLogCursor < m.Log.Len() {
		if c.cfg.BoundedLogProcessing {
			if c.overBudget(force) {
				return false, nil
			}
			c.pauseWork += entryWorkBytes
		}
		e := m.Log.At(c.majorLogCursor)
		c.majorLogCursor++
		c.stats.LogScanned++
		c.pauseLogProcd++
		m.Clock.Charge(simtime.AcctLogScan, m.Cost.LogScan)

		switch {
		case h.OldFrom().Contains(e.Obj):
			replica, fwd := c.forwardingOf(e.Obj)
			if !fwd {
				continue // unreplicated: the copy will carry current contents
			}
			if !e.Byte {
				v := h.Load(e.Obj, int(e.Slot))
				if h.Nursery.Contains(v) {
					if postFlip {
						//gclint:allow panicpath -- invariant: the minor flip re-points every logged old→nursery slot
						panic("core: old object holds nursery pointer after a minor flip")
					}
					// Mid-cycle: the slot will be re-pointed by the next
					// minor flip; retry this entry then.
					c.majorLogCursor--
					c.stats.LogScanned--
					c.pauseLogProcd--
					break logLoop
				}
			}
			c.stats.LogReapplied++
			m.Clock.Charge(simtime.AcctLogReapply, m.Cost.LogReapply)
			if e.Byte {
				if c.cfg.NaiveReplay {
					for i := int32(0); i < e.Len; i++ {
						h.StoreByte(replica, int(e.Slot+i), h.LoadByte(e.Obj, int(e.Slot+i)))
					}
				} else {
					h.CopyPayloadBytes(replica, e.Obj, int(e.Slot), int(e.Len))
				}
				continue
			}
			v := h.Load(e.Obj, int(e.Slot))
			nv, err := c.toSpaceValue(m, v, replica, int(e.Slot))
			if err != nil {
				return rewind(err)
			}
			h.Store(replica, int(e.Slot), nv)

		case h.OldTo().Contains(e.Obj):
			// A mutator-visible to-space object received a store. The
			// object itself is swept by the major cursor regardless, but
			// if the cursor has already passed it a stored from-space
			// value would go unseen — so the direct-store handler deals
			// with it here, per the mutability rule. To-space values need
			// nothing: their referents are scanned by address.
			if e.Byte {
				continue
			}
			v := h.Load(e.Obj, int(e.Slot))
			if h.OldFrom().Contains(v) {
				nv, err := c.toSpaceValue(m, v, e.Obj, int(e.Slot))
				if err != nil {
					return rewind(err)
				}
				if nv != v {
					h.Store(e.Obj, int(e.Slot), nv)
				}
			}
		}
	}
	return true, nil
}

// majorFlip atomically redirects everything that still references the old
// from-space — queued mutable-reference fixups and the mutator roots — then
// swaps the semispaces and discards the from-space. Like minorFlip it is
// abortable: a straggler copy that overflows to-space surfaces a typed
// error before anything is truncated, and the already-re-pointed fixups no
// longer hold from-space values, so a retried flip skips them.
func (c *Replicating) majorFlip(m *Mutator) error {
	h := c.h
	if h.Nursery.UsedWords() != 0 {
		//gclint:allow panicpath -- invariant: majors only flip right after a minor flip emptied the nursery
		panic("core: major flip with non-empty nursery")
	}

	// Re-point recorded to-space slots that still hold mutable from-space
	// references.
	for _, f := range c.fixups {
		v := h.Load(f.obj, int(f.slot))
		if !h.OldFrom().Contains(v) {
			continue // overwritten since; later entries handled it
		}
		if !h.IsForwarded(v) {
			if _, err := c.replicateMajor(m, v); err != nil {
				return err
			}
		}
		h.Store(f.obj, int(f.slot), h.ForwardAddr(v))
		c.stats.FlipEntryUpdates++
		m.Clock.Charge(simtime.AcctFlip, m.Cost.FlipEntry)
	}
	c.fixups = c.fixups[:0]
	c.fixupSeen = nil

	roots := m.Roots.Slots()
	for _, slot := range roots {
		v := *slot
		if h.OldFrom().Contains(v) {
			if !h.IsForwarded(v) {
				//gclint:allow panicpath -- invariant: the completion pass replicated every old-from root before the flip
				panic("core: unreplicated root at major flip")
			}
			*slot = h.ForwardAddr(v)
		}
	}
	c.stats.RootSlotUpdates += int64(len(roots))
	m.Clock.Charge(simtime.AcctFlip, simtime.Duration(len(roots))*m.Cost.RootUpdate)

	h.SwapOld()
	c.resetReplayMemo() // old-from forwarding words just vanished
	c.scan = h.OldFrom().Next
	c.scanSlot = 0
	c.skips = c.skips[:0]
	c.minorSkipIdx = 0
	c.majorScan = 0
	c.majorScanSlot = 0
	c.majorActive = false
	c.promotedSinceMajor = 0
	c.stats.MajorCollections++

	// Both cursors are at the log's end; everything can go.
	c.majorLogCursor = m.Log.Len()
	c.minorLogCursor = m.Log.Len()
	m.Log.TrimTo(m.Log.Len())
	return nil
}
