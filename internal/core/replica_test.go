package core_test

import (
	"testing"
	"testing/quick"

	"repligc/internal/core"
	"repligc/internal/gctest"
	"repligc/internal/heap"
	"repligc/internal/simtime"
)

func newRun(gcCfg core.Config, policy core.LogPolicy) (*core.Mutator, *core.Replicating) {
	h := heap.New(heap.Config{
		NurseryBytes:    gcCfg.NurseryBytes,
		NurseryCapBytes: 32 * gcCfg.NurseryBytes,
		OldSemiBytes:    16 << 20,
	})
	m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), policy)
	gc := core.NewReplicating(h, gcCfg)
	m.AttachGC(gc)
	return m, gc
}

func tortureConfig(minorInc, majorInc bool) core.Config {
	return core.Config{
		NurseryBytes:        32 << 10,
		MajorThresholdBytes: 128 << 10,
		CopyLimitBytes:      8 << 10,
		IncrementalMinor:    minorInc,
		IncrementalMajor:    majorInc,
	}
}

// TestReplicatingShadowModel is the central correctness test: a large
// pseudo-random workload is mirrored in a Go shadow graph and verified
// against the heap, repeatedly, while incremental collections are in
// flight.
func TestReplicatingShadowModel(t *testing.T) {
	for _, cfg := range []struct {
		name               string
		minorInc, majorInc bool
		lazy               bool
	}{
		{"rt", true, true, false},
		{"minor-inc", true, false, false},
		{"major-inc", false, true, false},
		{"stop-copy-core", false, false, false},
		{"rt-lazy", true, true, true},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			c := tortureConfig(cfg.minorInc, cfg.majorInc)
			c.LazyLogProcessing = cfg.lazy
			m, gc := newRun(c, core.LogAllMutations)
			d := gctest.NewDriver(m, 1)
			for round := 0; round < 60; round++ {
				d.Step(400)
				if err := d.Verify(); err != nil {
					t.Fatalf("round %d (ops %d, pauses %d): %v",
						round, d.Ops, gc.Stats().PauseCount, err)
				}
			}
			gc.FinishCycles(m)
			if err := d.Verify(); err != nil {
				t.Fatalf("after FinishCycles: %v", err)
			}
			st := gc.Stats()
			if st.MinorCollections == 0 {
				t.Fatal("no minor collections happened; workload too small")
			}
			if c.MajorThresholdBytes > 0 && st.MajorCollections == 0 {
				t.Fatal("no major collections happened; workload too small")
			}
		})
	}
}

// TestDifferentialFingerprints runs the identical workload under every
// configuration and demands identical reachable-graph fingerprints.
func TestDifferentialFingerprints(t *testing.T) {
	fingerprint := func(minorInc, majorInc, lazy bool) uint64 {
		c := tortureConfig(minorInc, majorInc)
		c.LazyLogProcessing = lazy
		m, gc := newRun(c, core.LogAllMutations)
		d := gctest.NewDriver(m, 42)
		d.Step(20000)
		gc.FinishCycles(m)
		return d.Fingerprint()
	}
	want := fingerprint(false, false, false)
	for _, cfg := range []struct {
		name                     string
		minorInc, majorInc, lazy bool
	}{
		{"rt", true, true, false},
		{"minor-inc", true, false, false},
		{"major-inc", false, true, false},
		{"rt-lazy", true, true, true},
	} {
		if got := fingerprint(cfg.minorInc, cfg.majorInc, cfg.lazy); got != want {
			t.Errorf("%s fingerprint %#x differs from stop-copy-core %#x", cfg.name, got, want)
		}
	}
}

// TestPauseBounding verifies the headline claim: with the incremental
// collector, pause times are bounded near the budget implied by L, while
// the non-incremental configuration produces much longer majors. The
// torture workload mutates far more than any of the paper's benchmarks, so
// the default (unbounded, paper-faithful) log processing is allowed some
// overshoot; with the BoundedLogProcessing extension the bound is tight.
func TestPauseBounding(t *testing.T) {
	run := func(minorInc, majorInc, boundedLog bool) *simtime.Recorder {
		cfg := tortureConfig(minorInc, majorInc)
		cfg.BoundedLogProcessing = boundedLog
		m, gc := newRun(cfg, core.LogAllMutations)
		d := gctest.NewDriver(m, 7)
		d.Step(24000)
		gc.FinishCycles(m)
		return gc.Pauses()
	}
	rt := run(true, true, false)
	rtBounded := run(true, true, true)
	sc := run(false, false, false)

	// Work budget for L = 8 KB at the default cost model: 2L of copy+scan
	// is about 4 ms.
	budget := simtime.Duration(2*8<<10/heap.BytesPerWord) * simtime.Default1993().CopyWord
	if max := sc.Max(); max < 5*budget {
		t.Errorf("stop-copy max pause %v suspiciously short (budget %v)", max, budget)
	}
	if sc.Max() <= rt.Max() {
		t.Errorf("stop-copy max pause %v not longer than rt max %v", sc.Max(), rt.Max())
	}
	// Bounded log processing keeps even this mutation-heavy workload's
	// pauses within a small multiple of the budget. Root scans and flips
	// remain outside L, as in the paper, whose own worst pause was 84 ms
	// against a 50 ms target; with this test's tiny L (8 KB ≈ 4 ms) the
	// fixed per-pause costs weigh proportionally more.
	if max := rtBounded.Max(); max > 5*budget {
		t.Errorf("bounded rt max pause %v exceeds 5x budget %v", max, budget)
	}
	if p99 := rtBounded.Percentile(99); p99 > 4*budget {
		t.Errorf("bounded rt p99 %v exceeds 4x budget %v", p99, budget)
	}
}

// TestWorkloadResultsIndependentOfCollector ensures the mutator cannot
// observe the collector: allocation totals must match exactly across
// configurations (this is what makes replay scripts portable).
func TestWorkloadResultsIndependentOfCollector(t *testing.T) {
	alloc := func(minorInc, majorInc bool) int64 {
		m, gc := newRun(tortureConfig(minorInc, majorInc), core.LogAllMutations)
		d := gctest.NewDriver(m, 99)
		d.Step(15000)
		gc.FinishCycles(m)
		return m.BytesAllocated
	}
	a := alloc(true, true)
	b := alloc(false, false)
	if a != b {
		t.Fatalf("allocation totals differ: rt=%d sc=%d", a, b)
	}
}

// TestLatentGarbage checks table 3's direction: an incremental collector
// copies at least as much as a synchronized stop-and-copy collector, the
// difference being latent garbage.
func TestLatentGarbage(t *testing.T) {
	copied := func(minorInc, majorInc bool) int64 {
		m, gc := newRun(tortureConfig(minorInc, majorInc), core.LogAllMutations)
		d := gctest.NewDriver(m, 123)
		d.Step(20000)
		gc.FinishCycles(m)
		return gc.Stats().TotalBytesCopied()
	}
	rt := copied(true, true)
	sc := copied(false, false)
	if rt < sc {
		t.Errorf("rt copied %d < stop-copy %d; latent garbage cannot be negative", rt, sc)
	}
}

func TestForcedCompletionUnderTinyBudget(t *testing.T) {
	// With an absurdly small L and small expansion headroom the collector
	// must fall back to conservative completion rather than diverge.
	c := core.Config{
		NurseryBytes:        32 << 10,
		MajorThresholdBytes: 128 << 10,
		CopyLimitBytes:      256, // far below any real pause budget
		ExpandBytes:         512,
		IncrementalMinor:    true,
		IncrementalMajor:    true,
		MaxMinorPauses:      8,
	}
	m, gc := newRun(c, core.LogAllMutations)
	d := gctest.NewDriver(m, 5)
	d.Step(8000)
	gc.FinishCycles(m)
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	if gc.Stats().ForcedCompletion == 0 {
		t.Fatal("expected forced completions under a tiny budget")
	}
}

func TestStatsAccounting(t *testing.T) {
	m, gc := newRun(tortureConfig(true, true), core.LogAllMutations)
	d := gctest.NewDriver(m, 11)
	d.Step(20000)
	gc.FinishCycles(m)
	st := gc.Stats()
	if st.LogScanned == 0 || st.LogReapplied == 0 {
		t.Errorf("log machinery unused: scanned=%d reapplied=%d", st.LogScanned, st.LogReapplied)
	}
	if st.FlipEntryUpdates == 0 {
		t.Error("no flip entry updates recorded")
	}
	if st.RootSlotUpdates == 0 {
		t.Error("no root updates recorded")
	}
	if st.BytesCopiedMinor == 0 || st.BytesCopiedMajor == 0 {
		t.Errorf("copy volumes: minor=%d major=%d", st.BytesCopiedMinor, st.BytesCopiedMajor)
	}
	if st.PauseCount != len(gc.Pauses().Pauses) {
		t.Errorf("pause count %d != recorded pauses %d", st.PauseCount, len(gc.Pauses().Pauses))
	}
}

// TestAuditHeapDuringCollections runs the audit at many points, including
// mid-incremental-collection, where it checks the from-space invariant.
func TestAuditHeapDuringCollections(t *testing.T) {
	m, gc := newRun(tortureConfig(true, true), core.LogAllMutations)
	d := gctest.NewDriver(m, 77)
	for round := 0; round < 30; round++ {
		d.Step(600)
		if err := core.AuditHeap(m); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	gc.FinishCycles(m)
	if err := core.AuditHeap(m); err != nil {
		t.Fatalf("after finish: %v", err)
	}
}

// TestShadowModelPropertySeeds drives the shadow-model torture test over
// arbitrary seeds via testing/quick: any seed the framework invents must
// produce a heap that matches its shadow.
func TestShadowModelPropertySeeds(t *testing.T) {
	f := func(seed int64, minorInc, majorInc bool) bool {
		cfg := tortureConfig(minorInc, majorInc)
		m, gc := newRun(cfg, core.LogAllMutations)
		d := gctest.NewDriver(m, seed)
		d.Step(4000)
		if err := d.Verify(); err != nil {
			t.Logf("seed %d (%v,%v): %v", seed, minorInc, majorInc, err)
			return false
		}
		gc.FinishCycles(m)
		if err := d.Verify(); err != nil {
			t.Logf("seed %d post-finish: %v", seed, err)
			return false
		}
		return core.AuditHeap(m) == nil
	}
	cfg := &quick.Config{MaxCount: 12}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestInterleavedPacing exercises the §6 concurrent-style configuration:
// correctness via the shadow model, and the pause profile it exists for —
// micro-pauses bounded by the work quantum plus flip costs, far below the
// pause-based collector's budgeted pauses.
func TestInterleavedPacing(t *testing.T) {
	cfg := tortureConfig(true, true)
	cfg.InterleavedTaxPermille = 3000 // the torture driver has ~60% survival
	cfg.BoundedLogProcessing = true
	m, gc := newRun(cfg, core.LogAllMutations)
	d := gctest.NewDriver(m, 21)
	for round := 0; round < 40; round++ {
		d.Step(500)
		if err := d.Verify(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	gc.FinishCycles(m)
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := core.AuditHeap(m); err != nil {
		t.Fatal(err)
	}
	st := gc.Stats()
	if st.MinorCollections == 0 || st.MajorCollections == 0 {
		t.Fatalf("collections: %d minor, %d major", st.MinorCollections, st.MajorCollections)
	}

	// Compare the pause profile against the pause-based collector on the
	// same workload.
	base, baseGC := newRun(tortureConfig(true, true), core.LogAllMutations)
	db := gctest.NewDriver(base, 21)
	db.Step(20000)
	baseGC.FinishCycles(base)

	conc := gc.Pauses()
	if conc.Percentile(50) >= baseGC.Pauses().Percentile(50) {
		t.Errorf("interleaved p50 %v not below pause-based p50 %v",
			conc.Percentile(50), baseGC.Pauses().Percentile(50))
	}
}

// TestDeferMutableCopies exercises the §2.5 immutable-first variant:
// correctness via the shadow model and differential fingerprints, plus the
// property it exists for — far fewer log reapplies, because mutable objects
// are copied at completion with final contents.
func TestDeferMutableCopies(t *testing.T) {
	run := func(deferMut bool) (uint64, int64) {
		cfg := tortureConfig(true, true)
		cfg.DeferMutableCopies = deferMut
		m, gc := newRun(cfg, core.LogAllMutations)
		d := gctest.NewDriver(m, 4242)
		for round := 0; round < 30; round++ {
			d.Step(500)
			if err := d.Verify(); err != nil {
				t.Fatalf("defer=%v round %d: %v", deferMut, round, err)
			}
		}
		gc.FinishCycles(m)
		if err := d.Verify(); err != nil {
			t.Fatalf("defer=%v final: %v", deferMut, err)
		}
		if err := core.AuditHeap(m); err != nil {
			t.Fatalf("defer=%v audit: %v", deferMut, err)
		}
		return d.Fingerprint(), gc.Stats().LogReapplied
	}
	fpEager, reapplyEager := run(false)
	fpDefer, reapplyDefer := run(true)
	if fpEager != fpDefer {
		t.Fatalf("fingerprints differ: %#x vs %#x", fpEager, fpDefer)
	}
	if reapplyDefer >= reapplyEager {
		t.Errorf("deferred copying reapplied %d >= eager %d; the §2.5 benefit is missing",
			reapplyDefer, reapplyEager)
	}
}
