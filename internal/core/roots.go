package core

import "repligc/internal/heap"

// RootVisitor is applied to every root slot; it may overwrite the slot
// (that is how flips redirect the mutator onto the replicas).
type RootVisitor func(slot *heap.Value)

// RootSource is anything holding heap pointers the collector must treat as
// roots: VM registers and operand stacks, global tables, and the handle
// stack used by Go code that manipulates heap values.
type RootSource interface {
	VisitRoots(v RootVisitor)
}

// RootSet aggregates all registered root sources.
type RootSet struct {
	sources []RootSource

	// buf and collect make Slots allocation-free: buf is reused across
	// enumerations and collect is the one method value handed to every
	// source (building a fresh closure per Visit call is what used to
	// allocate on every root scan and flip).
	buf     []*heap.Value
	collect RootVisitor
}

// Register adds a root source.
func (r *RootSet) Register(s RootSource) { r.sources = append(r.sources, s) }

// Visit applies v to every root slot and returns the number of slots
// visited (the unit in which root-scan and flip costs are charged).
func (r *RootSet) Visit(v RootVisitor) int {
	n := 0
	counting := func(slot *heap.Value) {
		n++
		v(slot)
	}
	for _, s := range r.sources {
		s.VisitRoots(counting)
	}
	return n
}

func (r *RootSet) appendSlot(slot *heap.Value) { r.buf = append(r.buf, slot) }

// Slots enumerates every root slot into a reusable buffer and returns it,
// in the same source-registration order Visit uses. The returned slice is
// owned by the RootSet and valid until the next Slots call, which is safe
// for the collector's pause-time uses (root scans and flips never nest).
// After the buffer has warmed to the root population's size, enumeration
// performs zero Go allocations — unlike Visit, whose counting closure (and
// any capturing visitor passed to it) escapes on every call.
func (r *RootSet) Slots() []*heap.Value {
	r.buf = r.buf[:0]
	if r.collect == nil {
		r.collect = r.appendSlot
	}
	for _, s := range r.sources {
		s.VisitRoots(r.collect)
	}
	return r.buf
}

// Handle is a stable reference to a heap value for Go code. Go locals
// holding heap.Values directly go stale at a flip (the collector cannot see
// the Go stack), so any value held across a potential collection point must
// live in the mutator's handle stack instead — the classic shadow-stack
// discipline. A Handle indexes that stack.
type Handle int

// handleStack is the mutator's shadow stack; it is a RootSource.
type handleStack struct {
	slots []heap.Value
}

func (hs *handleStack) VisitRoots(v RootVisitor) {
	for i := range hs.slots {
		v(&hs.slots[i])
	}
}
