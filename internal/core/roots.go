package core

import "repligc/internal/heap"

// RootVisitor is applied to every root slot; it may overwrite the slot
// (that is how flips redirect the mutator onto the replicas).
type RootVisitor func(slot *heap.Value)

// RootSource is anything holding heap pointers the collector must treat as
// roots: VM registers and operand stacks, global tables, and the handle
// stack used by Go code that manipulates heap values.
type RootSource interface {
	VisitRoots(v RootVisitor)
}

// RootSet aggregates all registered root sources.
type RootSet struct {
	sources []RootSource
}

// Register adds a root source.
func (r *RootSet) Register(s RootSource) { r.sources = append(r.sources, s) }

// Visit applies v to every root slot and returns the number of slots
// visited (the unit in which root-scan and flip costs are charged).
func (r *RootSet) Visit(v RootVisitor) int {
	n := 0
	counting := func(slot *heap.Value) {
		n++
		v(slot)
	}
	for _, s := range r.sources {
		s.VisitRoots(counting)
	}
	return n
}

// Handle is a stable reference to a heap value for Go code. Go locals
// holding heap.Values directly go stale at a flip (the collector cannot see
// the Go stack), so any value held across a potential collection point must
// live in the mutator's handle stack instead — the classic shadow-stack
// discipline. A Handle indexes that stack.
type Handle int

// handleStack is the mutator's shadow stack; it is a RootSource.
type handleStack struct {
	slots []heap.Value
}

func (hs *handleStack) VisitRoots(v RootVisitor) {
	for i := range hs.slots {
		v(&hs.slots[i])
	}
}
