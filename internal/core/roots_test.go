package core

import (
	"testing"

	"repligc/internal/heap"
)

// sliceSource is a minimal RootSource over its own slots.
type sliceSource struct {
	slots []heap.Value
}

func (s *sliceSource) VisitRoots(v RootVisitor) {
	for i := range s.slots {
		v(&s.slots[i])
	}
}

// collectVisit gathers the slot pointers Visit enumerates, in order.
func collectVisit(r *RootSet) []*heap.Value {
	var out []*heap.Value
	r.Visit(func(slot *heap.Value) { out = append(out, slot) })
	return out
}

// sameSlots requires two enumerations to yield identical slot-pointer
// sequences (same pointers, same order).
func sameSlots(t *testing.T, label string, visit, slots []*heap.Value) {
	t.Helper()
	if len(visit) != len(slots) {
		t.Fatalf("%s: Visit enumerated %d slots, Slots %d", label, len(visit), len(slots))
	}
	for i := range visit {
		if visit[i] != slots[i] {
			t.Fatalf("%s: slot %d differs: Visit %p, Slots %p", label, i, visit[i], slots[i])
		}
	}
}

// TestRootSetSlotsVisitAgree is the differential check between RootSet's
// two enumeration paths: Slots (the collector's allocation-free pause-time
// form, which caches a visitor method value on first use) and Visit (the
// general form). They must yield identical slot sequences at every stage of
// a registration lifecycle — in particular after sources are registered
// *after* Slots has already warmed its cache, which is exactly what happens
// when a new mutator context (or a driver's root table) joins mid-cycle.
func TestRootSetSlotsVisitAgree(t *testing.T) {
	r := &RootSet{}

	// Empty set.
	sameSlots(t, "empty", collectVisit(r), r.Slots())

	a := &sliceSource{slots: []heap.Value{heap.FromInt(1), heap.FromInt(2)}}
	r.Register(a)
	sameSlots(t, "one source", collectVisit(r), r.Slots())

	// Warm Slots' cached visitor, then register more sources — the cache
	// must not freeze the source list.
	_ = r.Slots()
	b := &sliceSource{slots: []heap.Value{heap.FromInt(3)}}
	r.Register(b)
	sameSlots(t, "registered after warm-up", collectVisit(r), r.Slots())

	// A source that grows between enumerations (the driver root table and
	// handle stacks do this constantly).
	b.slots = append(b.slots, heap.FromInt(4), heap.FromInt(5))
	sameSlots(t, "grown source", collectVisit(r), r.Slots())

	// Register mid-cycle relative to an in-progress enumeration consumer:
	// take Slots' buffer, register, and check both paths agree afterwards
	// (the earlier buffer is dead per Slots' contract).
	_ = r.Slots()
	c := &sliceSource{slots: []heap.Value{heap.FromInt(6)}}
	r.Register(c)
	sameSlots(t, "mid-cycle registration", collectVisit(r), r.Slots())

	// Count agreement: Visit's return value is the charged root count and
	// must equal len(Slots()).
	n := r.Visit(func(*heap.Value) {})
	if got := len(r.Slots()); n != got {
		t.Fatalf("Visit counted %d, Slots enumerated %d", n, got)
	}
}

// TestRootSetSlotsStableAcrossRepeats pins that repeated Slots calls reuse
// the buffer without changing the enumeration.
func TestRootSetSlotsStableAcrossRepeats(t *testing.T) {
	r := &RootSet{}
	s := &sliceSource{slots: []heap.Value{heap.FromInt(7), heap.FromInt(8), heap.FromInt(9)}}
	r.Register(s)
	first := append([]*heap.Value(nil), r.Slots()...)
	second := r.Slots()
	sameSlots(t, "repeat", first, second)
}
