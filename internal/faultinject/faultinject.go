// Package faultinject drives collectors into their failure and degradation
// paths at deterministic points. A Plan is a seeded schedule of adversarial
// events — forced collections, headroom shrinks that make promotion or
// to-space copying overflow mid-cycle, mutation-log spikes, forced
// conservative completion — expressed in the run's own coordinates
// (operation counts), never host time or host randomness, so every failure
// a plan provokes replays identically.
//
// The injector plugs into the gctest shadow-model driver through its Inject
// hook, and into any other workload by calling Tick once per operation.
package faultinject

import (
	"fmt"
	"sort"

	"repligc/internal/core"
	"repligc/internal/heap"
	"repligc/internal/rng"
)

// Action is one kind of injected fault.
type Action int

const (
	// ForceCollect invokes the collector as if an allocation had run out
	// of nursery, forcing a pause at an arbitrary mutator point.
	ForceCollect Action = iota
	// ShrinkOld clamps both old-generation semispaces to their current
	// use plus Arg bytes of slack, so the next promotion or major copy
	// overflows at an adversarial moment.
	ShrinkOld
	// ShrinkNursery clamps the nursery to its current use plus Arg bytes,
	// forcing the expansion-bound path on the next allocation burst.
	ShrinkNursery
	// RestoreHeadroom undoes the shrinks: every space's soft limit is
	// raised back to its hard capacity.
	RestoreHeadroom
	// LogSpike performs Arg logged mutations on an injector-owned object,
	// growing the mutation log without allocating — adversarial input for
	// bounded log processing.
	LogSpike
	// ForceComplete drives all in-flight incremental collections to
	// completion (the conservative, non-incremental ending).
	ForceComplete

	numActions // count sentinel for Adversarial
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ForceCollect:
		return "force-collect"
	case ShrinkOld:
		return "shrink-old"
	case ShrinkNursery:
		return "shrink-nursery"
	case RestoreHeadroom:
		return "restore-headroom"
	case LogSpike:
		return "log-spike"
	case ForceComplete:
		return "force-complete"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// Event schedules one fault at a deterministic point.
type Event struct {
	// AtOp fires the event when the injector's operation counter (one per
	// Tick) reaches this value; events at the same op fire in plan order.
	AtOp int64
	// Action selects the fault.
	Action Action
	// Arg is action-specific: bytes of residual slack for the shrink
	// actions, number of mutations for LogSpike; ignored otherwise.
	Arg int64
}

// Plan is a deterministic fault schedule.
type Plan struct {
	// Every, when positive, forces a collection on every Every-th Tick —
	// the "collect at every Kth allocation" torture mode.
	Every int64
	// Events fire when the operation counter reaches each AtOp; they must
	// be sorted by AtOp (Adversarial returns them sorted).
	Events []Event
}

// Adversarial builds a seeded plan of n events spread over spanOps
// operations, mixing every action. Shrink slacks are small (0–8 KB) so the
// plan reliably provokes overflow on small test heaps; the same seed always
// yields the same plan. The draws come from the shared rng splitmix64
// stream (the regression test pins the plans bit-identical to the sequence
// this package produced before the generator was extracted).
func Adversarial(seed uint64, n int, spanOps int64) Plan {
	if spanOps < 1 {
		spanOps = 1
	}
	s := rng.New(seed)
	evs := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		ev := Event{
			AtOp:   int64(s.Uint64n(uint64(spanOps))) + 1,
			Action: Action(s.Uint64n(uint64(numActions))),
		}
		switch ev.Action {
		case ShrinkOld, ShrinkNursery:
			ev.Arg = int64(s.Uint64n(8 << 10))
		case LogSpike:
			ev.Arg = int64(s.Uint64n(512)) + 32
		}
		evs = append(evs, ev)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].AtOp < evs[j].AtOp })
	return Plan{Events: evs}
}

// Injector applies a Plan to a running mutator. It registers itself as a
// root source (the LogSpike target object must stay live).
type Injector struct {
	M    *core.Mutator
	plan Plan

	ops   int64
	next  int        // cursor into plan.Events
	spike heap.Value // LogSpike's mutation target

	// Injected counts events applied so far.
	Injected int
}

// New attaches a plan to m.
func New(m *core.Mutator, plan Plan) *Injector {
	in := &Injector{M: m, plan: plan}
	m.Roots.Register(in)
	return in
}

// VisitRoots exposes the injector's one heap pointer.
func (in *Injector) VisitRoots(v core.RootVisitor) { v(&in.spike) }

// Ops reports how many operations have ticked.
func (in *Injector) Ops() int64 { return in.ops }

// Tick advances the operation counter and applies every due event. It
// returns the first error an injected fault provoked — always the typed
// *core.OOMError when the fault exhausted the heap.
func (in *Injector) Tick() error {
	in.ops++
	if in.plan.Every > 0 && in.ops%in.plan.Every == 0 {
		if err := in.apply(Event{Action: ForceCollect}); err != nil {
			return err
		}
	}
	for in.next < len(in.plan.Events) && in.plan.Events[in.next].AtOp <= in.ops {
		ev := in.plan.Events[in.next]
		in.next++
		if err := in.apply(ev); err != nil {
			return err
		}
	}
	return nil
}

func (in *Injector) apply(ev Event) error {
	in.Injected++
	m := in.M
	h := m.H
	switch ev.Action {
	case ForceCollect:
		return m.GC.CollectForAlloc(m, 0)
	case ShrinkOld:
		h.OldFrom().SetLimitBytes(h.OldFrom().UsedBytes() + ev.Arg)
		h.OldTo().SetLimitBytes(h.OldTo().UsedBytes() + ev.Arg)
		return nil
	case ShrinkNursery:
		h.Nursery.SetLimitBytes(h.Nursery.UsedBytes() + ev.Arg)
		return nil
	case RestoreHeadroom:
		for _, s := range []*heap.Space{&h.Nursery, h.OldFrom(), h.OldTo()} {
			s.SetLimitBytes(int64(s.Cap-s.Lo) * heap.BytesPerWord)
		}
		return nil
	case LogSpike:
		if in.spike == heap.Nil {
			p, err := m.Alloc(heap.KindArray, 8)
			if err != nil {
				return err
			}
			in.spike = p
		}
		n := ev.Arg
		if n <= 0 {
			n = 64
		}
		for i := int64(0); i < n; i++ {
			m.Set(in.spike, int(i%8), heap.FromInt(i))
		}
		return nil
	case ForceComplete:
		return m.GC.FinishCycles(m)
	}
	return fmt.Errorf("faultinject: unknown action %v", ev.Action)
}

// CrashTarget selects which checkpoint artifact a crash plan damages.
type CrashTarget int

const (
	// CrashSnapshot damages the newest epoch's snapshot file.
	CrashSnapshot CrashTarget = iota
	// CrashWAL damages the newest epoch's write-ahead log.
	CrashWAL

	numCrashTargets
)

// String names the target.
func (t CrashTarget) String() string {
	switch t {
	case CrashSnapshot:
		return "snapshot"
	case CrashWAL:
		return "wal"
	}
	return fmt.Sprintf("CrashTarget(%d)", int(t))
}

// CrashKind selects how the targeted file is damaged — the three failure
// modes a real kill-at-byte-k crash (or a torn sector) leaves behind.
type CrashKind int

const (
	// CrashTruncate cuts the file at a fractional offset, as if the
	// process was killed mid-write at byte k.
	CrashTruncate CrashKind = iota
	// CrashTornWord flips bits inside one aligned word at a fractional
	// offset: a torn or misdirected sector write.
	CrashTornWord
	// CrashDuplicateRecord appends a copy of an interior byte range, the
	// classic doubled-record artifact of a replayed buffer flush.
	CrashDuplicateRecord

	numCrashKinds
)

// String names the kind.
func (k CrashKind) String() string {
	switch k {
	case CrashTruncate:
		return "truncate"
	case CrashTornWord:
		return "torn-word"
	case CrashDuplicateRecord:
		return "duplicate-record"
	}
	return fmt.Sprintf("CrashKind(%d)", int(k))
}

// CrashPlan is one deterministic crash site: which artifact, what damage,
// and where within the file (as a fraction, so one plan scales to any file
// size). Mask seeds the torn-word bit flip; it is never zero. The plan is
// pure data — internal/checkpoint applies it to files, keeping this package
// free of I/O.
type CrashPlan struct {
	Target   CrashTarget
	Kind     CrashKind
	Fraction float64 // damage site as a fraction of file size, in [0, 1)
	Mask     uint64  // torn-word XOR pattern
}

// String renders the plan compactly for matrix reports.
func (p CrashPlan) String() string {
	return fmt.Sprintf("%s/%s@%.3f", p.Target, p.Kind, p.Fraction)
}

// CrashPlans builds n seeded crash sites covering every target × kind
// combination before repeating, with seeded fractional offsets. The same
// seed always yields the same plans.
func CrashPlans(seed uint64, n int) []CrashPlan {
	s := rng.New(seed)
	out := make([]CrashPlan, 0, n)
	for i := 0; i < n; i++ {
		p := CrashPlan{
			Target:   CrashTarget(i % int(numCrashTargets)),
			Kind:     CrashKind((i / int(numCrashTargets)) % int(numCrashKinds)),
			Fraction: float64(s.Uint64n(1000)) / 1000,
			Mask:     s.Next() | 1, // never zero: always flips at least one bit
		}
		out = append(out, p)
	}
	return out
}
