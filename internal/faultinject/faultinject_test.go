package faultinject_test

import (
	"reflect"
	"testing"

	"repligc/internal/core"
	"repligc/internal/faultinject"
	"repligc/internal/gctest"
	"repligc/internal/heap"
	"repligc/internal/simtime"
	"repligc/internal/stopcopy"
)

// newRT builds a replicating-collector run on a heap of the given sizes.
func newRT(nursery, old int64, incremental bool) (*core.Mutator, core.Collector) {
	h := heap.New(heap.Config{NurseryBytes: nursery, NurseryCapBytes: 4 * nursery, OldSemiBytes: old})
	m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), core.LogAllMutations)
	gc := core.NewReplicating(h, core.Config{
		NurseryBytes:        nursery,
		MajorThresholdBytes: old / 4,
		CopyLimitBytes:      4 << 10,
		IncrementalMinor:    incremental,
		IncrementalMajor:    incremental,
	})
	m.AttachGC(gc)
	return m, gc
}

func newSC(nursery, old int64) (*core.Mutator, core.Collector) {
	h := heap.New(heap.Config{NurseryBytes: nursery, NurseryCapBytes: 4 * nursery, OldSemiBytes: old})
	m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), core.LogPointersOnly)
	gc := stopcopy.New(h, stopcopy.Config{NurseryBytes: nursery, MajorThresholdBytes: old / 4})
	m.AttachGC(gc)
	return m, gc
}

func TestAdversarialPlanIsDeterministic(t *testing.T) {
	a := faultinject.Adversarial(42, 64, 5000)
	b := faultinject.Adversarial(42, 64, 5000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	c := faultinject.Adversarial(43, 64, 5000)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].AtOp < a.Events[i-1].AtOp {
			t.Fatal("events not sorted by AtOp")
		}
	}
}

// runOnce drives one seeded torture run under plan and reports how far it
// got, the error (if any) and the surviving graph's fingerprint.
func runOnce(t *testing.T, mk func() (*core.Mutator, core.Collector), plan faultinject.Plan) (int, string, uint64) {
	t.Helper()
	m, _ := mk()
	d := gctest.NewDriver(m, 9)
	in := faultinject.New(m, plan)
	d.Inject = in.Tick
	errStr := ""
	if err := d.Step(4000); err != nil {
		errStr = err.Error()
	}
	return d.Ops, errStr, d.Fingerprint()
}

func TestInjectedRunsReplayIdentically(t *testing.T) {
	plan := faultinject.Adversarial(7, 48, 3000)
	mk := func() (*core.Mutator, core.Collector) { return newRT(32<<10, 256<<10, true) }
	ops1, err1, fp1 := runOnce(t, mk, plan)
	ops2, err2, fp2 := runOnce(t, mk, plan)
	if ops1 != ops2 || err1 != err2 || fp1 != fp2 {
		t.Fatalf("same plan diverged: ops %d/%d err %q/%q fp %#x/%#x",
			ops1, ops2, err1, err2, fp1, fp2)
	}
}

func TestEveryKthOpForcesCollections(t *testing.T) {
	m, gc := newRT(64<<10, 4<<20, true)
	d := gctest.NewDriver(m, 11)
	in := faultinject.New(m, faultinject.Plan{Every: 25})
	d.Inject = in.Tick
	if err := d.Step(2000); err != nil {
		t.Fatalf("torture run failed on a roomy heap: %v", err)
	}
	if got := gc.Stats().MinorCollections; got < 50 {
		t.Fatalf("Every=25 over 2000 ops forced only %d minor collections", got)
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := core.AuditHeap(m); err != nil {
		t.Fatal(err)
	}
}

// TestAdversarialFaultsYieldTypedOOM shrinks headroom at seeded points on a
// small heap under every collector shape: whatever fails must fail with the
// typed *core.OOMError, and the heap must stay auditable afterwards.
func TestAdversarialFaultsYieldTypedOOM(t *testing.T) {
	cases := []struct {
		name string
		mk   func() (*core.Mutator, core.Collector)
	}{
		{"replicating-incremental", func() (*core.Mutator, core.Collector) { return newRT(16<<10, 96<<10, true) }},
		{"replicating-stw", func() (*core.Mutator, core.Collector) { return newRT(16<<10, 96<<10, false) }},
		{"stopcopy", func() (*core.Mutator, core.Collector) { return newSC(16<<10, 96<<10) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 4; seed++ {
				m, _ := tc.mk()
				d := gctest.NewDriver(m, int64(seed))
				in := faultinject.New(m, faultinject.Adversarial(seed, 64, 2000))
				d.Inject = in.Tick
				err := func() (err error) {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("seed %d: collector panicked on exhaustion: %v", seed, r)
						}
					}()
					return d.Step(3000)
				}()
				if err != nil {
					if _, ok := core.AsOOM(err); !ok {
						t.Fatalf("seed %d: error is not a typed OOM: %v", seed, err)
					}
				}
				if err := core.AuditHeap(m); err != nil {
					t.Fatalf("seed %d: heap not auditable after injected faults: %v", seed, err)
				}
			}
		})
	}
}

// TestCrashPlansDeterministic pins the property the crash matrix depends
// on: plans are pure data derived from the seed, so a failing matrix cell
// names a reproducible crash site.
func TestCrashPlansDeterministic(t *testing.T) {
	a := faultinject.CrashPlans(0xc0ffee, 16)
	b := faultinject.CrashPlans(0xc0ffee, 16)
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("plan counts: %d, %d, want 16", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := faultinject.CrashPlans(0xdead, 16)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical plan sets")
	}
	targets, kinds := map[faultinject.CrashTarget]bool{}, map[faultinject.CrashKind]bool{}
	for _, p := range a {
		targets[p.Target] = true
		kinds[p.Kind] = true
		if p.Fraction < 0 || p.Fraction >= 1 {
			t.Fatalf("plan fraction %v outside [0,1)", p.Fraction)
		}
		if p.Kind == faultinject.CrashTornWord && p.Mask == 0 {
			t.Fatal("torn-word plan with a zero mask would damage nothing")
		}
	}
	if len(targets) != 2 || len(kinds) != 3 {
		t.Fatalf("16 plans cover %d targets and %d kinds; want every target and kind", len(targets), len(kinds))
	}
}

// TestPlansPinnedToExtractedGenerator pins the seeded plans bit-identical to
// the sequence this package produced before its splitmix64 generator was
// extracted into internal/rng: the exact events of Adversarial(42, 6, 500)
// and the exact sites of CrashPlans(7, 4), values recorded from the
// pre-extraction implementation. Any change to the shared stream's
// recurrence, or to how this package consumes it, breaks this test.
func TestPlansPinnedToExtractedGenerator(t *testing.T) {
	wantEvents := []faultinject.Event{
		{AtOp: 147, Action: faultinject.ShrinkNursery, Arg: 3511},
		{AtOp: 265, Action: faultinject.LogSpike, Arg: 294},
		{AtOp: 414, Action: faultinject.ShrinkOld, Arg: 8018},
		{AtOp: 426, Action: faultinject.ShrinkNursery, Arg: 7637},
		{AtOp: 457, Action: faultinject.ShrinkNursery, Arg: 6773},
		{AtOp: 475, Action: faultinject.ForceComplete, Arg: 0},
	}
	if got := faultinject.Adversarial(42, 6, 500); !reflect.DeepEqual(got.Events, wantEvents) {
		t.Errorf("Adversarial(42, 6, 500) diverged from the pre-extraction plan:\n got %+v\nwant %+v",
			got.Events, wantEvents)
	}
	wantCrash := []faultinject.CrashPlan{
		{Target: faultinject.CrashSnapshot, Kind: faultinject.CrashTruncate, Fraction: 0.487, Mask: 0x44c3cd7f43c661d},
		{Target: faultinject.CrashWAL, Kind: faultinject.CrashTruncate, Fraction: 0.346, Mask: 0x953aeb70673e29cb},
		{Target: faultinject.CrashSnapshot, Kind: faultinject.CrashTornWord, Fraction: 0.674, Mask: 0x3fdabe86cbbeaa11},
		{Target: faultinject.CrashWAL, Kind: faultinject.CrashTornWord, Fraction: 0.798, Mask: 0x53fcd6513d02beff},
	}
	if got := faultinject.CrashPlans(7, 4); !reflect.DeepEqual(got, wantCrash) {
		t.Errorf("CrashPlans(7, 4) diverged from the pre-extraction plans:\n got %+v\nwant %+v", got, wantCrash)
	}
}
