// Package gctest provides a shadow-model torture driver for validating
// garbage collectors. The driver performs a pseudo-random sequence of
// allocations, mutations and root drops through a core.Mutator while
// mirroring every operation in an ordinary Go object graph. At any
// collector-quiescent point the simulated heap can be verified against the
// shadow graph: if the collector lost an object, corrupted a replica,
// missed a logged mutation or left a stale pointer after a flip, the
// comparison fails.
package gctest

import (
	"fmt"
	"math/rand"

	"repligc/internal/core"
	"repligc/internal/heap"
)

// Node is the shadow of one heap object.
type Node struct {
	Kind  heap.Kind
	Words []Shadow // for pointer-bearing kinds
	Bytes []byte   // for byte kinds
}

// Shadow mirrors a heap.Value: nil pointer, immediate integer, or node.
type Shadow struct {
	Node  *Node
	Int   int64
	IsNil bool
}

func intShadow(i int64) Shadow  { return Shadow{Int: i} }
func nodeShadow(n *Node) Shadow { return Shadow{Node: n} }
func nilShadow() Shadow         { return Shadow{IsNil: true} }

// rootSource exposes the driver's roots to the collector.
type rootSource struct {
	slots []heap.Value
}

func (r *rootSource) VisitRoots(v core.RootVisitor) {
	for i := range r.slots {
		v(&r.slots[i])
	}
}

// Driver runs the torture workload.
type Driver struct {
	M   *core.Mutator
	rng *rand.Rand

	roots  *rootSource
	shadow []Shadow // parallel to roots.slots

	// Ops counts operations performed.
	Ops int

	// Inject, when set, runs before every operation. A fault-injection
	// plan (internal/faultinject) uses it to shrink spaces, force
	// collections or spike the mutation log at deterministic points; any
	// error it returns aborts Step with that error.
	Inject func() error
}

// NewDriver attaches a torture driver to m, seeding its PRNG with seed so
// runs are reproducible and identical across collector configurations.
func NewDriver(m *core.Mutator, seed int64) *Driver {
	d := &Driver{M: m, rng: rand.New(rand.NewSource(seed)), roots: &rootSource{}}
	m.Roots.Register(d.roots)
	return d
}

// RootCount reports the number of live driver roots.
func (d *Driver) RootCount() int { return len(d.roots.slots) }

// pickRoot returns a random root index, or -1 when none exist.
func (d *Driver) pickRoot() int {
	if len(d.roots.slots) == 0 {
		return -1
	}
	return d.rng.Intn(len(d.roots.slots))
}

// allocObject allocates a random object and roots it. Heap exhaustion is
// returned, not panicked: the exhaustion-matrix tests drive the driver into
// OOM on purpose and assert the error is typed.
func (d *Driver) allocObject() error {
	kinds := []heap.Kind{heap.KindRecord, heap.KindRef, heap.KindArray, heap.KindString, heap.KindBytes, heap.KindClosure}
	k := kinds[d.rng.Intn(len(kinds))]
	switch k {
	case heap.KindString, heap.KindBytes:
		n := d.rng.Intn(40)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(d.rng.Intn(256))
		}
		var p heap.Value
		var err error
		if k == heap.KindString {
			p, err = d.M.AllocString(b)
			if err != nil {
				return err
			}
		} else {
			p, err = d.M.AllocBytes(n)
			if err != nil {
				return err
			}
			// Fill via the (logged) byte-mutation path.
			for i, c := range b {
				d.M.SetByte(p, i, c)
			}
		}
		d.addRoot(p, nodeShadow(&Node{Kind: k, Bytes: b}))
	default:
		n := 1 + d.rng.Intn(6)
		node := &Node{Kind: k, Words: make([]Shadow, n)}
		// Choose initial contents before allocating: each randomValue may
		// reference existing roots, and allocation itself can trigger a
		// collection that rewrites root slots, so values are re-read from
		// the root table after allocation.
		type pick struct {
			rootIdx int // -1: use imm
			imm     heap.Value
			sh      Shadow
		}
		picks := make([]pick, n)
		for i := range picks {
			if j := d.pickRoot(); j >= 0 && d.rng.Intn(3) != 0 {
				picks[i] = pick{rootIdx: j}
			} else {
				v := d.rng.Int63n(1 << 20)
				picks[i] = pick{rootIdx: -1, imm: heap.FromInt(v), sh: intShadow(v)}
			}
		}
		p, err := d.M.Alloc(k, n)
		if err != nil {
			return err
		}
		for i, pk := range picks {
			if pk.rootIdx >= 0 {
				d.M.Init(p, i, d.roots.slots[pk.rootIdx])
				node.Words[i] = d.shadow[pk.rootIdx]
			} else {
				d.M.Init(p, i, pk.imm)
				node.Words[i] = pk.sh
			}
		}
		d.addRoot(p, nodeShadow(node))
	}
	return nil
}

func (d *Driver) addRoot(p heap.Value, s Shadow) {
	d.roots.slots = append(d.roots.slots, p)
	d.shadow = append(d.shadow, s)
}

// mutate rewrites a random slot of a random mutable rooted object.
func (d *Driver) mutate() {
	i := d.pickRoot()
	if i < 0 {
		return
	}
	sh := d.shadow[i]
	if sh.Node == nil {
		return
	}
	p := d.roots.slots[i]
	//gclint:dispatch
	switch sh.Node.Kind {
	case heap.KindRecord, heap.KindClosure, heap.KindString:
		// Immutable kinds cannot be mutated; a new kind added to the heap
		// must be classified here explicitly (gclint rule "exhaustive").
		return
	case heap.KindRef, heap.KindArray:
		if len(sh.Node.Words) == 0 {
			return
		}
		slot := d.rng.Intn(len(sh.Node.Words))
		// Pick the value; pointer picks are re-read from the root table at
		// store time (no allocation can intervene here, but stay uniform).
		if j := d.pickRoot(); j >= 0 && d.rng.Intn(2) == 0 {
			d.M.Set(p, slot, d.roots.slots[j])
			sh.Node.Words[slot] = d.shadow[j]
		} else {
			v := d.rng.Int63n(1 << 20)
			d.M.Set(p, slot, heap.FromInt(v))
			sh.Node.Words[slot] = intShadow(v)
		}
	case heap.KindBytes:
		if len(sh.Node.Bytes) == 0 {
			return
		}
		if d.rng.Intn(3) == 0 {
			// Coalesced range store (the compiler's code-emission path).
			off := d.rng.Intn(len(sh.Node.Bytes))
			n := 1 + d.rng.Intn(len(sh.Node.Bytes)-off)
			data := make([]byte, n)
			for i := range data {
				data[i] = byte(d.rng.Intn(256))
			}
			d.M.SetByteRange(p, off, data)
			copy(sh.Node.Bytes[off:], data)
			return
		}
		slot := d.rng.Intn(len(sh.Node.Bytes))
		b := byte(d.rng.Intn(256))
		d.M.SetByte(p, slot, b)
		sh.Node.Bytes[slot] = b
	}
}

// dropRoot forgets a random root (making a subgraph potentially garbage).
func (d *Driver) dropRoot() {
	if len(d.roots.slots) <= 4 {
		return
	}
	i := d.pickRoot()
	last := len(d.roots.slots) - 1
	d.roots.slots[i] = d.roots.slots[last]
	d.shadow[i] = d.shadow[last]
	d.roots.slots = d.roots.slots[:last]
	d.shadow = d.shadow[:last]
}

// maxRoots bounds the driver's root table. Real mutators have small root
// sets (registers, shallow operand stacks); an unbounded table would make
// root scanning dominate every pause and distort pause-time measurements.
const maxRoots = 512

// Step performs n random operations. It stops at the first error — either
// from the Inject hook or from an allocation that exhausted the heap — so
// the driver's shadow graph stays consistent with everything that actually
// happened.
func (d *Driver) Step(n int) error {
	for k := 0; k < n; k++ {
		d.Ops++
		if d.Inject != nil {
			if err := d.Inject(); err != nil {
				return err
			}
		}
		switch r := d.rng.Intn(10); {
		case r < 5:
			if err := d.allocObject(); err != nil {
				return err
			}
		case r < 8:
			d.mutate()
		default:
			d.dropRoot()
		}
		for len(d.roots.slots) > maxRoots {
			d.dropRoot()
		}
		d.M.Step(3)
	}
	return nil
}

// Verify walks the heap from the driver's roots in lockstep with the shadow
// graph and reports the first discrepancy. It must be called at a point
// where the collector is quiescent for the *mutator's* view to be the
// from-space originals — which is every point, thanks to the from-space
// invariant; verification therefore also exercises that invariant
// mid-collection.
func (d *Driver) Verify() error {
	seen := make(map[heap.Value]*Node)
	for i, p := range d.roots.slots {
		if err := d.verifyValue(p, d.shadow[i], seen, 0); err != nil {
			return fmt.Errorf("root %d: %w", i, err)
		}
	}
	return nil
}

func (d *Driver) verifyValue(v heap.Value, s Shadow, seen map[heap.Value]*Node, depth int) error {
	switch {
	case s.IsNil:
		if v != heap.Nil {
			return fmt.Errorf("want nil, got %v", v)
		}
		return nil
	case s.Node == nil:
		if !v.IsInt() || v.Int() != s.Int {
			return fmt.Errorf("want int %d, got %v", s.Int, v)
		}
		return nil
	}
	if !v.IsPtr() {
		return fmt.Errorf("want pointer to %v node, got %v", s.Node.Kind, v)
	}
	if prev, ok := seen[v]; ok {
		if prev != s.Node {
			return fmt.Errorf("aliasing mismatch at %v", v)
		}
		return nil
	}
	seen[v] = s.Node

	hdr := d.M.Header(v)
	if hdr.Kind() != s.Node.Kind {
		return fmt.Errorf("kind mismatch: heap %v, shadow %v", hdr.Kind(), s.Node.Kind)
	}
	if s.Node.Bytes != nil || !hdr.Kind().HasPointers() {
		if hdr.Len() != len(s.Node.Bytes) {
			return fmt.Errorf("byte length mismatch: heap %d, shadow %d", hdr.Len(), len(s.Node.Bytes))
		}
		for i, b := range s.Node.Bytes {
			if g := d.M.GetByte(v, i); g != b {
				return fmt.Errorf("byte %d mismatch: heap %d, shadow %d", i, g, b)
			}
		}
		return nil
	}
	if hdr.Len() != len(s.Node.Words) {
		return fmt.Errorf("length mismatch: heap %d, shadow %d", hdr.Len(), len(s.Node.Words))
	}
	for i, ws := range s.Node.Words {
		if err := d.verifyValue(d.M.Get(v, i), ws, seen, depth+1); err != nil {
			return fmt.Errorf("%v slot %d: %w", hdr.Kind(), i, err)
		}
	}
	return nil
}

// Fingerprint produces a deterministic signature of the reachable graph for
// cross-collector differential comparison.
func (d *Driver) Fingerprint() uint64 {
	var hash uint64 = 14695981039346656037
	mix := func(x uint64) {
		hash ^= x
		hash *= 1099511628211
	}
	ids := make(map[heap.Value]uint64)
	var walk func(v heap.Value)
	walk = func(v heap.Value) {
		switch {
		case v == heap.Nil:
			mix(1)
		case v.IsInt():
			mix(2)
			mix(uint64(v.Int()))
		default:
			if id, ok := ids[v]; ok {
				mix(3)
				mix(id)
				return
			}
			id := uint64(len(ids) + 1)
			ids[v] = id
			hdr := d.M.Header(v)
			mix(4)
			mix(uint64(hdr.Kind()))
			mix(uint64(hdr.Len()))
			if !hdr.Kind().HasPointers() {
				for i := 0; i < hdr.Len(); i++ {
					mix(uint64(d.M.GetByte(v, i)))
				}
				return
			}
			for i := 0; i < hdr.Len(); i++ {
				walk(d.M.Get(v, i))
			}
		}
	}
	for _, p := range d.roots.slots {
		walk(p)
	}
	return hash
}
