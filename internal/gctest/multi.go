package gctest

// MultiDriver tortures a multi-mutator group: one shadow-model Driver per
// member, interleaved in round-robin quanta through core.Group.Run, plus a
// shared mutable array that every member hammers. The shared array is what
// exercises the cross-log paths — members logging mutations of the same
// object (often the same slot) from different private logs within one
// coalescing epoch, which the pause-entry merge must fold into the shared
// log without losing or double-applying anything.

import (
	"fmt"
	"math/rand"

	"repligc/internal/core"
	"repligc/internal/heap"
)

// sharedSlots is the size of the contended array. Small on purpose: fewer
// slots means more same-slot collisions across members' logs.
const sharedSlots = 8

// MultiDriver drives every member of a group.
type MultiDriver struct {
	G       *core.Group
	Drivers []*Driver

	shared core.Handle  // member 0's handle to the contended array
	rngs   []*rand.Rand // per-member streams for shared-array stores
}

// NewMultiDriver attaches one Driver per group member, seeding member i
// with seed+i*9973 so the per-member op streams are distinct but
// reproducible, and allocates the shared contended array rooted through
// member 0's handle stack (the shared RootSet keeps it live for everyone).
func NewMultiDriver(g *core.Group, seed int64) (*MultiDriver, error) {
	md := &MultiDriver{G: g}
	for i, m := range g.Members {
		md.Drivers = append(md.Drivers, NewDriver(m, seed+int64(i)*9973))
		md.rngs = append(md.rngs, rand.New(rand.NewSource(seed^int64(i+1)<<32)))
	}
	p, err := g.Members[0].Alloc(heap.KindArray, sharedSlots)
	if err != nil {
		return nil, err
	}
	md.shared = g.Members[0].PushHandle(p)
	return md, nil
}

// Step runs one round: each member in turn gets a quantum of n driver
// operations plus one store into the shared array, scheduled through
// Group.Run so the wall-timeline accounting observes every quantum.
func (md *MultiDriver) Step(n int) error {
	for i := range md.Drivers {
		d := md.Drivers[i]
		err := md.G.Run(i, func(m *core.Mutator) error {
			if err := d.Step(n); err != nil {
				return err
			}
			// Contended store: the slot ranges of the members overlap, so
			// distinct private logs carry entries for the same (Obj, Slot)
			// within one epoch and the merge's canonical dedup fires.
			rng := md.rngs[i]
			p := md.G.Members[0].HandleVal(md.shared)
			m.Set(p, rng.Intn(sharedSlots), heap.FromInt(rng.Int63n(1<<20)))
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Verify checks every member's shadow graph.
func (md *MultiDriver) Verify() error {
	for i, d := range md.Drivers {
		if err := d.Verify(); err != nil {
			return fmt.Errorf("member %d: %w", i, err)
		}
	}
	return nil
}

// Fingerprint combines the members' reachable-graph fingerprints with the
// shared array's contents into one address-independent signature.
func (md *MultiDriver) Fingerprint() uint64 {
	var hash uint64 = 14695981039346656037
	mix := func(x uint64) {
		hash ^= x
		hash *= 1099511628211
	}
	for _, d := range md.Drivers {
		mix(d.Fingerprint())
	}
	m := md.G.Members[0]
	p := m.HandleVal(md.shared)
	for i := 0; i < sharedSlots; i++ {
		v := m.Get(p, i)
		if v.IsInt() {
			mix(uint64(v.Int()))
		} else {
			mix(uint64(v))
		}
	}
	return hash
}
