package heap

// Per-mutator nursery chunks. A multi-mutator group gives each mutator
// context a private contiguous span of the nursery to bump-allocate in, so
// allocation needs no synchronization between safepoints: reserving a chunk
// moves the shared Space cursor once, and every allocation after that
// touches only the chunk's private cursor. At pause entry each chunk is
// sealed — its unused remainder becomes a dead filler object — so the
// nursery stays a dense sequence of well-formed objects and address-order
// walks (WalkObjects, Census) remain valid. Fillers are unreachable, so no
// collection ever copies one; they are discarded with the nursery at the
// next minor flip like any other dead object.

// Chunk is one mutator's private bump span. The zero Chunk is inactive:
// every allocation in it fails, and sealing it is a no-op.
type Chunk struct {
	next uint64 // private allocation cursor (arena word index)
	end  uint64 // exclusive upper bound of the span
}

// Active reports whether the chunk still has an open span.
func (c *Chunk) Active() bool { return c.end != 0 }

// FreeWords reports the words remaining in the chunk.
func (c *Chunk) FreeWords() uint64 { return c.end - c.next }

// ReserveChunk carves a words-sized span out of s for private bump
// allocation. It fails when s lacks room below its soft limit, exactly like
// AllocIn.
func (h *Heap) ReserveChunk(s *Space, words uint64) (Chunk, bool) {
	if words == 0 || s.Next+words > s.Hi {
		return Chunk{}, false
	}
	c := Chunk{next: s.Next, end: s.Next + words}
	s.Next = c.end
	return c, true
}

// AllocInChunk allocates an object of kind k with length field n inside c,
// writing the header and zeroing the payload. It fails when the chunk lacks
// room (or is inactive); the caller then seals the chunk and reserves a
// fresh one.
func (h *Heap) AllocInChunk(c *Chunk, k Kind, n int) (Value, bool) {
	hdr := MakeHeader(k, n)
	need := uint64(hdr.SizeWords())
	if c.next+need > c.end {
		return Nil, false
	}
	hi := c.next
	c.next += need
	h.Arena[hi] = Value(hdr)
	p := ptrFromIndex(hi + 1)
	for i := uint64(1); i < need; i++ {
		h.Arena[hi+i] = Nil
	}
	return p, true
}

// SealChunk retires c: the unused remainder is overwritten with one dead
// byte-kind filler object (header plus zeroed payload) so the containing
// space walks as a dense object sequence, and the chunk becomes inactive.
// A filler is never reachable, so it is never copied and dies with its
// space. Sealing an inactive chunk does nothing.
func (h *Heap) SealChunk(c *Chunk) {
	if c.Active() {
		if rem := c.end - c.next; rem > 0 {
			h.Arena[c.next] = Value(MakeHeader(KindBytes, int((rem-1)*BytesPerWord)))
			for i := c.next + 1; i < c.end; i++ {
				h.Arena[i] = Nil
			}
		}
	}
	*c = Chunk{}
}
