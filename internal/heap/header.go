package heap

import "fmt"

// Kind classifies heap objects. Mutability is a property of the kind: the
// replication collector only ever needs log entries for mutable kinds, and
// the immutable-first copy-order optimisation (paper §2.5) keys off it.
type Kind uint8

// Object kinds.
const (
	KindRecord  Kind = iota // immutable record of Values
	KindClosure             // immutable closure: code index + free variables
	KindString              // immutable byte vector (length in bytes)
	KindRef                 // mutable cell(s) of Values (ML ref / tuple of refs)
	KindArray               // mutable array of Values
	KindBytes               // mutable byte array (length in bytes)
	numKinds
)

// KindMax is the largest valid Kind. Heap audits reject headers whose kind
// field exceeds it (corrupted or misparsed descriptors).
const KindMax = numKinds - 1

var kindNames = [numKinds]string{"record", "closure", "string", "ref", "array", "bytes"}

// String returns the kind's name.
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Mutable reports whether objects of this kind can be mutated after
// initialisation. The switch is exhaustiveness-checked (gclint rule
// "exhaustive"): a new kind must be classified here before it compiles
// cleanly, because the collector's logging obligations depend on it.
func (k Kind) Mutable() bool {
	//gclint:dispatch
	switch k {
	case KindRef, KindArray, KindBytes:
		return true
	case KindRecord, KindClosure, KindString:
		return false
	}
	//gclint:allow panicpath -- invariant: an out-of-range kind is heap corruption, not resource exhaustion
	panic(fmt.Sprintf("heap: Mutable on invalid kind %d", int(k)))
}

// HasPointers reports whether the payload words of this kind can contain
// heap pointers and therefore must be scanned. Exhaustiveness-checked like
// Mutable: misclassifying a new kind here would make the collector skip (or
// misparse) its payload.
func (k Kind) HasPointers() bool {
	//gclint:dispatch
	switch k {
	case KindRecord, KindClosure, KindRef, KindArray:
		return true
	case KindString, KindBytes:
		return false
	}
	//gclint:allow panicpath -- invariant: an out-of-range kind is heap corruption, not resource exhaustion
	panic(fmt.Sprintf("heap: HasPointers on invalid kind %d", int(k)))
}

// Header is an object descriptor word. Like SML/NJ descriptors it always has
// bit 0 set, so that an even word in the header slot is unambiguously a
// forwarding pointer (a word-aligned Value). Layout:
//
//	bits 0    : 1 (descriptor tag)
//	bits 1..7 : Kind
//	bits 8..  : length (payload words, or payload bytes for byte kinds)
type Header uint64

// MakeHeader builds a descriptor for an object of kind k whose length field
// is n (words for word kinds, bytes for KindString/KindBytes).
func MakeHeader(k Kind, n int) Header {
	if n < 0 {
		//gclint:allow panicpath -- invariant: a negative length is caller misuse, not resource exhaustion
		panic("heap: negative object length")
	}
	return Header(uint64(n)<<8 | uint64(k)<<1 | 1)
}

// IsHeader reports whether the raw word w holds a descriptor (as opposed to
// a forwarding pointer).
func IsHeader(w Value) bool { return w&1 == 1 }

// Kind extracts the object kind.
func (h Header) Kind() Kind { return Kind(h >> 1 & 0x7f) }

// Len extracts the length field: the number of payload words, or of payload
// bytes for byte kinds.
func (h Header) Len() int { return int(h >> 8) }

// PayloadWords reports the number of payload words the object occupies.
func (h Header) PayloadWords() int {
	if h.Kind() == KindString || h.Kind() == KindBytes {
		return (h.Len() + BytesPerWord - 1) / BytesPerWord
	}
	return h.Len()
}

// SizeWords reports the total footprint in words, including the header.
func (h Header) SizeWords() int { return h.PayloadWords() + 1 }

// SizeBytes reports the total footprint in bytes, including the header.
// This is the unit in which the paper's N, O, L and A parameters, copy
// budgets and latent-garbage measurements are expressed.
func (h Header) SizeBytes() int64 { return int64(h.SizeWords()) * BytesPerWord }

// String renders the header for debugging.
func (h Header) String() string {
	return fmt.Sprintf("%s[%d]", h.Kind(), h.Len())
}

// BytesPerWord is the accounting size of one heap word.
const BytesPerWord = 8
