package heap

import "fmt"

// Config sizes a Heap. All quantities are bytes. The defaults mirror the
// paper's experimental ranges: nurseries of 0.2–1 MB (parameter N) that can
// be expanded while an incremental collection is pending, and old-generation
// semispaces large enough to hold all live data plus promotion headroom.
type Config struct {
	NurseryBytes    int64 // initial nursery size (the paper's N)
	NurseryCapBytes int64 // hard bound on nursery expansion
	OldSemiBytes    int64 // size of each old-generation semispace
}

// DefaultConfig returns a configuration with a 1 MB nursery expandable to
// 8 MB and 64 MB old semispaces.
func DefaultConfig() Config {
	return Config{
		NurseryBytes:    1 << 20,
		NurseryCapBytes: 8 << 20,
		OldSemiBytes:    64 << 20,
	}
}

// Heap is the simulated two-generation heap: a nursery plus two old
// semispaces over a single flat word arena.
type Heap struct {
	Arena []Value

	Nursery Space
	oldA    Space
	oldB    Space
	oldFrom *Space // current old space (minor collections promote here)
	oldTo   *Space // reserve semispace (major collections copy here)

	// Log-epoch coalescing side table (see stamp.go). stamps parallels
	// Arena word-for-word; a stamp equal to logEpoch marks a word whose
	// mutation is already recorded in the log for the current cycle.
	stamps   []uint32
	logEpoch uint32

	// EpochHook, when non-nil, observes every BeginLogEpoch — the trace
	// subsystem uses it to mark coalescing epochs. The heap stays free of
	// trace (and simtime) dependencies; the hook owns its own timestamps.
	EpochHook func(epoch uint32)

	// PreEpochHook, when non-nil, runs at the very start of BeginLogEpoch,
	// before the epoch advances. Every collector begins every pause with
	// BeginLogEpoch, so this is the one heap-level point that is reliably
	// "pause entry": the multi-mutator group hangs its merge there —
	// sealing per-mutator nursery chunks and folding per-mutator mutation
	// logs into the shared log — so that no log cursor can move before the
	// merged entries are visible.
	PreEpochHook func()
}

// New builds a heap from cfg.
func New(cfg Config) *Heap {
	if cfg.NurseryBytes <= 0 || cfg.OldSemiBytes <= 0 {
		//gclint:allow panicpath -- invariant: construction-time config misuse, not resource exhaustion
		panic("heap: non-positive space size")
	}
	if cfg.NurseryCapBytes < cfg.NurseryBytes {
		cfg.NurseryCapBytes = cfg.NurseryBytes
	}
	nCap := uint64(cfg.NurseryCapBytes) / BytesPerWord
	oCap := uint64(cfg.OldSemiBytes) / BytesPerWord

	// Word 0 is reserved so that Value(0) is never a valid object pointer.
	lo := uint64(1)
	h := &Heap{Arena: make([]Value, lo+nCap+2*oCap)}
	h.stamps = make([]uint32, len(h.Arena))
	h.logEpoch = 1
	h.Nursery = Space{Name: "nursery", Lo: lo, Cap: lo + nCap}
	h.oldA = Space{Name: "oldA", Lo: lo + nCap, Cap: lo + nCap + oCap}
	h.oldB = Space{Name: "oldB", Lo: lo + nCap + oCap, Cap: lo + nCap + 2*oCap}
	h.Nursery.Reset()
	h.oldA.Reset()
	h.oldB.Reset()
	h.Nursery.Hi = h.Nursery.Lo
	h.Nursery.SetLimitBytes(cfg.NurseryBytes)
	h.oldA.Hi = h.oldA.Cap
	h.oldB.Hi = h.oldB.Cap
	h.oldFrom = &h.oldA
	h.oldTo = &h.oldB
	return h
}

// OldFrom returns the current old space.
func (h *Heap) OldFrom() *Space { return h.oldFrom }

// OldTo returns the reserve old semispace.
func (h *Heap) OldTo() *Space { return h.oldTo }

// SwapOld exchanges the roles of the old semispaces (a major flip) and
// empties the discarded from-space.
func (h *Heap) SwapOld() {
	h.oldFrom, h.oldTo = h.oldTo, h.oldFrom
	h.oldTo.Reset()
}

// AllocIn allocates an object of kind k with length field n in space s,
// writing the header and zeroing the payload. It returns the object pointer
// and true, or Nil and false when the space lacks room below its soft limit.
func (h *Heap) AllocIn(s *Space, k Kind, n int) (Value, bool) {
	hdr := MakeHeader(k, n)
	need := uint64(hdr.SizeWords())
	if s.Next+need > s.Hi {
		return Nil, false
	}
	hi := s.Next
	s.Next += need
	h.Arena[hi] = Value(hdr)
	p := ptrFromIndex(hi + 1)
	for i := uint64(1); i < need; i++ {
		h.Arena[hi+i] = Nil
	}
	return p, true
}

// RawHeader returns the raw word in p's header slot, which is either a
// descriptor or a forwarding pointer.
func (h *Heap) RawHeader(p Value) Value { return h.Arena[p.index()-1] }

// IsForwarded reports whether p's header slot holds a forwarding pointer.
func (h *Heap) IsForwarded(p Value) bool { return !IsHeader(h.RawHeader(p)) }

// ForwardAddr returns the replica address stored in p's header slot. It is
// only meaningful when IsForwarded(p).
func (h *Heap) ForwardAddr(p Value) Value { return h.RawHeader(p) }

// SetForward overwrites p's header word with a forwarding pointer to dst,
// the non-destructive copy trick of paper §3.2: the payload stays intact so
// the mutator can keep using the original.
func (h *Heap) SetForward(p, dst Value) {
	if !dst.IsPtr() {
		//gclint:allow panicpath -- invariant: a non-pointer forwarding word is collector corruption
		panic("heap: forwarding to non-pointer")
	}
	h.Arena[p.index()-1] = dst
}

// HeaderOf returns p's descriptor, following forwarding chains (at most two
// hops: nursery→old-from→old-to). This is the mutator's getheader operation
// (paper fig. 4); callers charge the forwarding-check cost.
func (h *Heap) HeaderOf(p Value) Header {
	w := h.RawHeader(p)
	for !IsHeader(w) {
		w = h.RawHeader(w)
	}
	return Header(w)
}

// ResolveForward follows forwarding pointers from p to the newest replica.
func (h *Heap) ResolveForward(p Value) Value {
	for p.IsPtr() && h.IsForwarded(p) {
		p = h.ForwardAddr(p)
	}
	return p
}

// Load reads payload word i of object p. No forwarding check: under the
// from-space invariant the mutator always reads the original object.
func (h *Heap) Load(p Value, i int) Value { return h.Arena[p.index()+uint64(i)] }

// Store writes payload word i of object p. The write barrier lives above
// this in the mutator; Store itself is raw.
func (h *Heap) Store(p Value, i int, v Value) { h.Arena[p.index()+uint64(i)] = v }

// LoadByte reads byte i of a byte-kind object (little-endian packing).
func (h *Heap) LoadByte(p Value, i int) byte {
	w := h.Arena[p.index()+uint64(i/BytesPerWord)]
	return byte(w >> (uint(i%BytesPerWord) * 8))
}

// StoreByte writes byte i of a byte-kind object.
func (h *Heap) StoreByte(p Value, i int, b byte) {
	idx := p.index() + uint64(i/BytesPerWord)
	sh := uint(i%BytesPerWord) * 8
	w := uint64(h.Arena[idx])
	w = w&^(uint64(0xff)<<sh) | uint64(b)<<sh
	h.Arena[idx] = Value(w)
}

// Bytes copies the payload of a byte-kind object into a fresh Go slice.
func (h *Heap) Bytes(p Value) []byte {
	hdr := h.HeaderOf(p)
	n := hdr.Len()
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = h.LoadByte(p, i)
	}
	return out
}

// SetBytes writes b into the payload of a byte-kind object starting at 0.
func (h *Heap) SetBytes(p Value, b []byte) {
	for i, c := range b {
		h.StoreByte(p, i, c)
	}
}

// CopyPayloadBytes copies n payload bytes starting at byte offset off from
// src into the same offsets of dst — the block-copy path for reapplying a
// logged byte-range mutation to a replica. The word-aligned body moves as a
// single copy() over the arena; only the unaligned head and tail (at most
// seven bytes each) fall back to byte stores, so the result is bit-identical
// to a byte-at-a-time loop at memmove speed.
func (h *Heap) CopyPayloadBytes(dst, src Value, off, n int) {
	for n > 0 && off%BytesPerWord != 0 {
		h.StoreByte(dst, off, h.LoadByte(src, off))
		off++
		n--
	}
	if words := uint64(n / BytesPerWord); words > 0 {
		si := src.index() + uint64(off/BytesPerWord)
		di := dst.index() + uint64(off/BytesPerWord)
		copy(h.Arena[di:di+words], h.Arena[si:si+words])
		off += int(words) * BytesPerWord
		n -= int(words) * BytesPerWord
	}
	for ; n > 0; n-- {
		h.StoreByte(dst, off, h.LoadByte(src, off))
		off++
	}
}

// CopyObject copies the object at src (whose descriptor must still be
// intact) into space dst, returning the replica pointer. The original is
// left untouched — installing the forwarding pointer is the caller's
// decision, which is what makes the copy non-destructive.
func (h *Heap) CopyObject(src Value, dst *Space) (Value, bool) {
	hdr := Header(h.RawHeader(src))
	if !IsHeader(Value(hdr)) {
		//gclint:allow panicpath -- invariant: callers check IsForwarded before copying
		panic("heap: CopyObject on forwarded object")
	}
	need := uint64(hdr.SizeWords())
	if dst.Next+need > dst.Hi {
		return Nil, false
	}
	di := dst.Next
	dst.Next += need
	si := src.index() - 1
	copy(h.Arena[di:di+need], h.Arena[si:si+need])
	return ptrFromIndex(di + 1), true
}

// WalkObjects visits the objects of s in address order, calling f with each
// object pointer and descriptor. Walking a space containing forwarded
// objects is not possible (their sizes are gone with their headers), so this
// is only valid for to-spaces and for quiescent heaps; it exists for
// invariant checking and tests.
func (h *Heap) WalkObjects(s *Space, f func(p Value, hdr Header) bool) {
	idx := s.Lo
	for idx < s.Next {
		w := h.Arena[idx]
		if !IsHeader(w) {
			//gclint:allow panicpath -- invariant: walked spaces hold replicas, which are never forwarded
			panic(fmt.Sprintf("heap: WalkObjects hit forwarding pointer at %#x in %s", idx, s.Name))
		}
		hdr := Header(w)
		if !f(ptrFromIndex(idx+1), hdr) {
			return
		}
		idx += uint64(hdr.SizeWords())
	}
}

// CensusEntry summarises the live objects of one kind in a space.
type CensusEntry struct {
	Count int64
	Bytes int64
}

// Census walks the allocated objects of the given spaces and tallies them
// by kind. It is only valid when no objects in those spaces carry
// forwarding pointers (i.e. at collector-quiescent points); it exists for
// tools and tests, not for the collectors themselves.
func (h *Heap) Census(spaces ...*Space) map[Kind]CensusEntry {
	out := make(map[Kind]CensusEntry)
	for _, s := range spaces {
		h.WalkObjects(s, func(p Value, hdr Header) bool {
			e := out[hdr.Kind()]
			e.Count++
			e.Bytes += hdr.SizeBytes()
			out[hdr.Kind()] = e
			return true
		})
	}
	return out
}
