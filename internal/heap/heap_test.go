package heap

import (
	"testing"
	"testing/quick"
)

func testHeap() *Heap {
	return New(Config{NurseryBytes: 1 << 16, NurseryCapBytes: 1 << 18, OldSemiBytes: 1 << 20})
}

func TestValueTagging(t *testing.T) {
	f := func(i int32) bool {
		v := FromInt(int64(i))
		return v.IsInt() && !v.IsPtr() && v.Int() == int64(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if Nil.IsPtr() || Nil.IsInt() {
		t.Fatal("Nil must be neither pointer nor int")
	}
	if !FromBool(true).Bool() || FromBool(false).Bool() {
		t.Fatal("bool round trip failed")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	f := func(rawKind uint8, rawLen uint16) bool {
		k := Kind(rawKind % uint8(numKinds))
		n := int(rawLen)
		h := MakeHeader(k, n)
		return IsHeader(Value(h)) && h.Kind() == k && h.Len() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderSizes(t *testing.T) {
	if got := MakeHeader(KindRecord, 3).SizeWords(); got != 4 {
		t.Fatalf("record[3] size = %d words, want 4", got)
	}
	if got := MakeHeader(KindBytes, 9).PayloadWords(); got != 2 {
		t.Fatalf("bytes[9] payload = %d words, want 2", got)
	}
	if got := MakeHeader(KindString, 0).SizeWords(); got != 1 {
		t.Fatalf("string[0] size = %d words, want 1", got)
	}
	if got := MakeHeader(KindRecord, 2).SizeBytes(); got != 24 {
		t.Fatalf("record[2] bytes = %d, want 24", got)
	}
}

func TestKindProperties(t *testing.T) {
	for _, k := range []Kind{KindRef, KindArray, KindBytes} {
		if !k.Mutable() {
			t.Errorf("%v should be mutable", k)
		}
	}
	for _, k := range []Kind{KindRecord, KindClosure, KindString} {
		if k.Mutable() {
			t.Errorf("%v should be immutable", k)
		}
	}
	if KindBytes.HasPointers() || KindString.HasPointers() {
		t.Error("byte kinds must not be scanned for pointers")
	}
	if !KindRecord.HasPointers() || !KindRef.HasPointers() {
		t.Error("word kinds must be scanned for pointers")
	}
}

func TestAllocAndAccess(t *testing.T) {
	h := testHeap()
	p, ok := h.AllocIn(&h.Nursery, KindRecord, 3)
	if !ok {
		t.Fatal("alloc failed")
	}
	if !h.Nursery.Contains(p) {
		t.Fatal("allocated object not in nursery")
	}
	hdr := h.HeaderOf(p)
	if hdr.Kind() != KindRecord || hdr.Len() != 3 {
		t.Fatalf("header = %v", hdr)
	}
	for i := 0; i < 3; i++ {
		if h.Load(p, i) != Nil {
			t.Fatalf("slot %d not zeroed", i)
		}
	}
	h.Store(p, 1, FromInt(42))
	if got := h.Load(p, 1); got.Int() != 42 {
		t.Fatalf("load = %v", got)
	}
}

func TestAllocExhaustion(t *testing.T) {
	h := testHeap()
	n := 0
	for {
		if _, ok := h.AllocIn(&h.Nursery, KindRecord, 7); !ok {
			break
		}
		n++
	}
	if n == 0 {
		t.Fatal("no allocations succeeded")
	}
	want := int(h.Nursery.LimitBytes() / (8 * BytesPerWord))
	if n != want {
		t.Fatalf("allocated %d objects, want %d", n, want)
	}
}

func TestByteAccess(t *testing.T) {
	h := testHeap()
	p, _ := h.AllocIn(&h.Nursery, KindBytes, 13)
	data := []byte("hello, world!")
	h.SetBytes(p, data)
	if got := string(h.Bytes(p)); got != "hello, world!" {
		t.Fatalf("bytes = %q", got)
	}
	h.StoreByte(p, 0, 'H')
	if h.LoadByte(p, 0) != 'H' {
		t.Fatal("StoreByte/LoadByte failed")
	}
	// Bytes must not disturb neighbours.
	if got := string(h.Bytes(p)); got != "Hello, world!" {
		t.Fatalf("bytes after poke = %q", got)
	}
}

func TestByteAccessProperty(t *testing.T) {
	h := testHeap()
	f := func(data []byte) bool {
		if len(data) > 200 {
			data = data[:200]
		}
		p, ok := h.AllocIn(&h.Nursery, KindBytes, len(data))
		if !ok {
			h.Nursery.Reset()
			p, _ = h.AllocIn(&h.Nursery, KindBytes, len(data))
		}
		for i, b := range data {
			h.StoreByte(p, i, b)
		}
		for i, b := range data {
			if h.LoadByte(p, i) != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForwarding(t *testing.T) {
	h := testHeap()
	p, _ := h.AllocIn(&h.Nursery, KindRecord, 2)
	h.Store(p, 0, FromInt(7))
	h.Store(p, 1, FromInt(8))

	replica, ok := h.CopyObject(p, h.OldFrom())
	if !ok {
		t.Fatal("copy failed")
	}
	if h.Load(replica, 0).Int() != 7 || h.Load(replica, 1).Int() != 8 {
		t.Fatal("replica contents differ")
	}
	if h.IsForwarded(p) {
		t.Fatal("copy must not forward by itself")
	}

	h.SetForward(p, replica)
	if !h.IsForwarded(p) {
		t.Fatal("not forwarded after SetForward")
	}
	if h.ForwardAddr(p) != replica {
		t.Fatal("forward address wrong")
	}
	// The original payload must remain readable: the from-space invariant
	// depends on non-destructive copying.
	if h.Load(p, 0).Int() != 7 {
		t.Fatal("original payload destroyed by forwarding")
	}
	// getheader follows the forwarding word.
	if hdr := h.HeaderOf(p); hdr.Kind() != KindRecord || hdr.Len() != 2 {
		t.Fatalf("HeaderOf(forwarded) = %v", hdr)
	}
	if h.ResolveForward(p) != replica {
		t.Fatal("ResolveForward failed")
	}
}

func TestForwardingChain(t *testing.T) {
	h := testHeap()
	p, _ := h.AllocIn(&h.Nursery, KindRef, 1)
	r1, _ := h.CopyObject(p, h.OldFrom())
	h.SetForward(p, r1)
	r2, _ := h.CopyObject(r1, h.OldTo())
	h.SetForward(r1, r2)
	if h.ResolveForward(p) != r2 {
		t.Fatal("two-hop resolve failed")
	}
	if hdr := h.HeaderOf(p); hdr.Kind() != KindRef {
		t.Fatalf("two-hop header = %v", hdr)
	}
}

func TestCopyObjectPanicsOnForwarded(t *testing.T) {
	h := testHeap()
	p, _ := h.AllocIn(&h.Nursery, KindRef, 1)
	r, _ := h.CopyObject(p, h.OldFrom())
	h.SetForward(p, r)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.CopyObject(p, h.OldFrom())
}

func TestSwapOld(t *testing.T) {
	h := testHeap()
	from, to := h.OldFrom(), h.OldTo()
	_, _ = h.AllocIn(to, KindRecord, 1)
	h.SwapOld()
	if h.OldFrom() != to || h.OldTo() != from {
		t.Fatal("swap did not exchange spaces")
	}
	if h.OldTo().UsedWords() != 0 {
		t.Fatal("discarded space not reset")
	}
	if h.OldFrom().UsedWords() == 0 {
		t.Fatal("survivor space lost its contents")
	}
}

func TestNurseryGrow(t *testing.T) {
	h := testHeap()
	limit := h.Nursery.LimitBytes()
	granted := h.Nursery.GrowBytes(1 << 14)
	if granted != 1<<14 {
		t.Fatalf("granted = %d", granted)
	}
	if h.Nursery.LimitBytes() != limit+1<<14 {
		t.Fatal("limit did not grow")
	}
	// Growth clamps at the hard cap.
	h.Nursery.GrowBytes(1 << 30)
	if h.Nursery.Hi != h.Nursery.Cap {
		t.Fatal("growth exceeded cap")
	}
}

func TestWalkObjects(t *testing.T) {
	h := testHeap()
	var want []Value
	for i := 0; i < 10; i++ {
		p, _ := h.AllocIn(&h.Nursery, KindRecord, i)
		want = append(want, p)
	}
	var got []Value
	h.WalkObjects(&h.Nursery, func(p Value, hdr Header) bool {
		got = append(got, p)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("walked %d objects, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("object %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSpaceMembershipDisjoint(t *testing.T) {
	h := testHeap()
	p, _ := h.AllocIn(&h.Nursery, KindRecord, 1)
	q, _ := h.AllocIn(h.OldFrom(), KindRecord, 1)
	r, _ := h.AllocIn(h.OldTo(), KindRecord, 1)
	for _, c := range []struct {
		v       Value
		n, a, b bool
	}{
		{p, true, false, false},
		{q, false, true, false},
		{r, false, false, true},
	} {
		if h.Nursery.Contains(c.v) != c.n || h.OldFrom().Contains(c.v) != c.a || h.OldTo().Contains(c.v) != c.b {
			t.Fatalf("membership wrong for %v", c.v)
		}
	}
	if h.Nursery.Contains(FromInt(123)) {
		t.Fatal("immediate contained in space")
	}
	if h.Nursery.Contains(Nil) {
		t.Fatal("nil contained in space")
	}
}

func TestSpaceLimitEdges(t *testing.T) {
	h := testHeap()
	s := &h.Nursery
	// Limit below current allocation clamps to Next.
	p, _ := h.AllocIn(s, KindRecord, 100)
	_ = p
	s.SetLimitBytes(0)
	if s.Hi < s.Next {
		t.Fatal("limit dropped below allocation cursor")
	}
	// Limit beyond cap clamps to cap.
	got := s.SetLimitBytes(1 << 40)
	if got != int64(s.Cap-s.Lo)*BytesPerWord {
		t.Fatalf("over-cap limit reports %d", got)
	}
	if s.FreeWords() != s.Hi-s.Next {
		t.Fatal("FreeWords inconsistent")
	}
}

func TestHeaderMaxLength(t *testing.T) {
	// Large length fields survive the header round trip (code buffers and
	// big arrays rely on this).
	h := MakeHeader(KindBytes, 1<<20)
	if h.Len() != 1<<20 || h.PayloadWords() != 1<<17 {
		t.Fatalf("big header: len=%d payload=%d", h.Len(), h.PayloadWords())
	}
	if !IsHeader(Value(h)) {
		t.Fatal("big header lost its descriptor tag")
	}
}

func TestNewHeapValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero-sized space")
		}
	}()
	New(Config{NurseryBytes: 0, OldSemiBytes: 1 << 20})
}

func TestDefaultConfigUsable(t *testing.T) {
	h := New(DefaultConfig())
	if _, ok := h.AllocIn(&h.Nursery, KindRecord, 4); !ok {
		t.Fatal("default heap cannot allocate")
	}
}

func TestCensus(t *testing.T) {
	h := testHeap()
	for i := 0; i < 5; i++ {
		h.AllocIn(&h.Nursery, KindRecord, 3)
	}
	h.AllocIn(&h.Nursery, KindBytes, 10)
	h.AllocIn(h.OldFrom(), KindRef, 1)
	c := h.Census(&h.Nursery, h.OldFrom())
	if c[KindRecord].Count != 5 || c[KindRecord].Bytes != 5*4*BytesPerWord {
		t.Fatalf("records: %+v", c[KindRecord])
	}
	if c[KindBytes].Count != 1 || c[KindRef].Count != 1 {
		t.Fatalf("census: %+v", c)
	}
}
