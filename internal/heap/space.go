package heap

import "fmt"

// Space is a contiguous region of the arena with a bump allocation cursor.
// The nursery and both old-generation semispaces are Spaces.
type Space struct {
	Name string
	Lo   uint64 // first usable word index (inclusive)
	Hi   uint64 // current limit (exclusive); may be below Cap for the nursery
	Cap  uint64 // hard upper bound word index (exclusive)
	Next uint64 // allocation cursor
}

// Reset empties the space.
func (s *Space) Reset() { s.Next = s.Lo }

// Contains reports whether pointer p addresses an object in this space's
// region. Membership is by region, not by liveness: a pointer to the first
// payload word has its header at index-1, so valid object pointers lie in
// (Lo, Cap].
func (s *Space) Contains(p Value) bool {
	if !p.IsPtr() {
		return false
	}
	idx := p.index()
	return idx > s.Lo && idx <= s.Cap
}

// ContainsIndex reports whether the arena word index lies in [Lo, Cap).
func (s *Space) ContainsIndex(idx uint64) bool { return idx >= s.Lo && idx < s.Cap }

// UsedWords reports the number of allocated words (headers included).
func (s *Space) UsedWords() uint64 { return s.Next - s.Lo }

// UsedBytes reports allocated bytes.
func (s *Space) UsedBytes() int64 { return int64(s.UsedWords()) * BytesPerWord }

// FreeWords reports words remaining below the current limit.
func (s *Space) FreeWords() uint64 { return s.Hi - s.Next }

// SetLimitBytes moves the soft limit to b bytes above Lo, clamped to Cap.
// It reports the resulting limit in bytes.
func (s *Space) SetLimitBytes(b int64) int64 {
	w := uint64(b) / BytesPerWord
	if s.Lo+w > s.Cap {
		w = s.Cap - s.Lo
	}
	s.Hi = s.Lo + w
	if s.Hi < s.Next {
		s.Hi = s.Next
	}
	return int64(s.Hi-s.Lo) * BytesPerWord
}

// GrowBytes raises the soft limit by b bytes, clamped to Cap. It reports
// the number of bytes actually added.
func (s *Space) GrowBytes(b int64) int64 {
	w := uint64(b) / BytesPerWord
	if s.Hi+w > s.Cap {
		w = s.Cap - s.Hi
	}
	s.Hi += w
	return int64(w) * BytesPerWord
}

// LimitBytes reports the current soft capacity in bytes.
func (s *Space) LimitBytes() int64 { return int64(s.Hi-s.Lo) * BytesPerWord }

func (s *Space) String() string {
	return fmt.Sprintf("%s[%#x..%#x next=%#x cap=%#x]", s.Name, s.Lo, s.Hi, s.Next, s.Cap)
}
