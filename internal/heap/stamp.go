package heap

// Log-epoch stamps: the coalescing side table for the mutation log.
//
// The replication invariant tolerates stale replicas only as recorded in the
// mutation log, and log entries carry no values — the collector re-reads the
// slot from the original at apply time. Two entries for the same slot in the
// same collection cycle are therefore redundant: applying either one copies
// the slot's *current* contents. The side table below lets the write barrier
// detect that redundancy with one load and one compare.
//
// Each arena word has a uint32 stamp. The heap carries a current log epoch,
// advanced by the collector at the start of every pause (BeginLogEpoch). A
// stamp equal to the current epoch means: the log already retains an entry
// covering this word, appended since every active log cursor last moved —
// cursors only advance during pauses, and a pause begins by advancing the
// epoch, so stamps from earlier epochs can never vouch for an entry a cursor
// has already consumed. The barrier may then skip the append entirely.
//
// On the rare uint32 wraparound the whole table is cleared, which merely
// costs one round of duplicate log entries — stamps are an optimisation,
// never a correctness input.

// BeginLogEpoch starts a new coalescing epoch, invalidating every dirty
// stamp at O(1) cost. Collectors call it on entry to each pause, before any
// log cursor moves.
func (h *Heap) BeginLogEpoch() {
	if h.PreEpochHook != nil {
		h.PreEpochHook()
	}
	h.logEpoch++
	if h.logEpoch == 0 {
		for i := range h.stamps {
			h.stamps[i] = 0
		}
		h.logEpoch = 1
	}
	if h.EpochHook != nil {
		h.EpochHook(h.logEpoch)
	}
}

// SlotDirty reports whether payload word i of object p was already marked
// dirty in the current epoch, i.e. whether the mutation log still retains an
// unconsumed entry covering the word. This is the write barrier's fast-path
// load+compare.
func (h *Heap) SlotDirty(p Value, i int) bool {
	return h.stamps[p.index()+uint64(i)] == h.logEpoch
}

// MarkSlotDirty stamps payload word i of object p with the current epoch.
// The caller must have appended (or be about to append, within the same
// mutator operation) a log entry covering the word.
func (h *Heap) MarkSlotDirty(p Value, i int) {
	h.stamps[p.index()+uint64(i)] = h.logEpoch
}

// WordsDirty reports whether payload words [i, i+n) of object p are all
// stamped in the current epoch. Byte-range stores coalesce at word
// granularity, so their fast path needs the conjunction over the covered
// words.
func (h *Heap) WordsDirty(p Value, i, n int) bool {
	base := p.index() + uint64(i)
	for k := uint64(0); k < uint64(n); k++ {
		if h.stamps[base+k] != h.logEpoch {
			return false
		}
	}
	return true
}

// MarkWordsDirty stamps payload words [i, i+n) of object p with the current
// epoch.
func (h *Heap) MarkWordsDirty(p Value, i, n int) {
	base := p.index() + uint64(i)
	for k := uint64(0); k < uint64(n); k++ {
		h.stamps[base+k] = h.logEpoch
	}
}
