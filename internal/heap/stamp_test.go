package heap

import "testing"

func TestStampEpochBasics(t *testing.T) {
	h := testHeap()
	p, ok := h.AllocIn(&h.Nursery, KindRecord, 4)
	if !ok {
		t.Fatal("alloc failed")
	}
	if h.SlotDirty(p, 0) {
		t.Fatal("fresh object reported dirty")
	}
	h.MarkSlotDirty(p, 0)
	if !h.SlotDirty(p, 0) {
		t.Fatal("MarkSlotDirty did not stick")
	}
	if h.SlotDirty(p, 1) {
		t.Fatal("neighbouring slot reported dirty")
	}
	h.BeginLogEpoch()
	if h.SlotDirty(p, 0) {
		t.Fatal("stamp survived an epoch advance")
	}
}

func TestStampWordRanges(t *testing.T) {
	h := testHeap()
	p, ok := h.AllocIn(&h.Nursery, KindBytes, 64)
	if !ok {
		t.Fatal("alloc failed")
	}
	if h.WordsDirty(p, 0, 3) {
		t.Fatal("fresh range reported dirty")
	}
	h.MarkWordsDirty(p, 1, 2)
	if !h.WordsDirty(p, 1, 2) {
		t.Fatal("marked range not dirty")
	}
	if h.WordsDirty(p, 0, 3) {
		t.Fatal("range with one clean word reported dirty")
	}
	h.MarkSlotDirty(p, 0)
	if !h.WordsDirty(p, 0, 3) {
		t.Fatal("fully marked range not dirty")
	}
}

// TestStampEpochWraparound drives the uint32 epoch through zero and checks
// the table is cleared rather than letting ancient stamps alias the new
// epoch — a stale "dirty" answer would suppress a needed log entry.
func TestStampEpochWraparound(t *testing.T) {
	h := testHeap()
	p, ok := h.AllocIn(&h.Nursery, KindRecord, 2)
	if !ok {
		t.Fatal("alloc failed")
	}
	h.MarkSlotDirty(p, 0)
	h.logEpoch = ^uint32(0) // jump to the last epoch value
	h.MarkSlotDirty(p, 1)
	h.BeginLogEpoch() // wraps: table cleared, epoch restarts at 1
	if h.logEpoch != 1 {
		t.Fatalf("epoch after wraparound = %d, want 1", h.logEpoch)
	}
	if h.SlotDirty(p, 0) || h.SlotDirty(p, 1) {
		t.Fatal("stamps survived the wraparound clear")
	}
}
