// Package heap implements the simulated word-addressed heap that every other
// component runs on. It reproduces the SML/NJ object model the paper depends
// on: small tagged values, a descriptor (header) word immediately before each
// object, and — crucially for replication copying — the convention that the
// forwarding pointer is merged into the header word (paper §3.2): descriptors
// always have their low bit set, so an even header slot *is* a forwarding
// pointer to the replica.
//
// The heap is a flat arena of 64-bit words carved into a nursery and two old
// semispaces, matching SML/NJ's two-level generational layout (paper fig. 3).
package heap

import "fmt"

// Value is a tagged machine word. Bit 0 distinguishes immediates from
// pointers, exactly as in SML/NJ:
//
//   - bit0 = 1: an immediate 63-bit signed integer;
//   - bit0 = 0: a pointer, encoded as the byte offset of the object's first
//     payload word within the arena (word-aligned, so bits 0..2 are zero).
//
// The zero Value is Nil, a distinguished non-pointer used for ML unit and
// for uninitialised slots; arena offset 0 is never handed out.
type Value uint64

// Nil is the distinguished empty value.
const Nil Value = 0

// FromInt makes an immediate integer value.
func FromInt(i int64) Value { return Value(uint64(i)<<1 | 1) }

// FromBool makes an immediate boolean (false=0, true=1).
func FromBool(b bool) Value {
	if b {
		return FromInt(1)
	}
	return FromInt(0)
}

// IsInt reports whether v is an immediate integer.
func (v Value) IsInt() bool { return v&1 == 1 }

// Int returns the immediate integer stored in v. It is the caller's
// responsibility to check IsInt first; on a pointer the result is garbage.
func (v Value) Int() int64 { return int64(v) >> 1 }

// Bool interprets an immediate as a boolean (nonzero = true).
func (v Value) Bool() bool { return v.IsInt() && v.Int() != 0 }

// IsPtr reports whether v is a (non-nil) heap pointer.
func (v Value) IsPtr() bool { return v != Nil && v&1 == 0 }

// index returns the arena word index of the first payload word.
func (v Value) index() uint64 { return uint64(v) >> 3 }

// WordIndex returns the arena word index of payload word slot of object p.
// It exists for the checkpoint subsystem, which addresses snapshot segments
// and WAL patch records by absolute arena index; everything else goes through
// Load/Store.
func WordIndex(p Value, slot int) uint64 { return p.index() + uint64(slot) }

// ptrFromIndex builds a pointer Value from an arena word index.
func ptrFromIndex(idx uint64) Value { return Value(idx << 3) }

// String renders the value for debugging.
func (v Value) String() string {
	switch {
	case v == Nil:
		return "nil"
	case v.IsInt():
		return fmt.Sprintf("%d", v.Int())
	default:
		return fmt.Sprintf("@%#x", uint64(v))
	}
}
