package lang

import (
	"fmt"

	"repligc/internal/core"
	"repligc/internal/heap"
)

// The abstract syntax tree lives on the simulated heap: each node is a
// record whose slot 0 is the tag, slot 1 the packed source position, and
// the remaining slots the children (subtrees, heap lists of subtrees, or
// immediate integers such as symbol ids and literals). Go code touches
// nodes only through core.Handle values, never holding raw heap.Values
// across an allocation — a flip would invalidate them.

// Tag identifies the node's form.
type Tag int64

// Expression node tags.
const (
	TagInt     Tag = iota + 1 // [value]
	TagStr                    // [literal pool index]
	TagBool                   // [0/1]
	TagUnit                   // []
	TagVar                    // [symbol]
	TagFn                     // [param symbol, body]
	TagApp                    // [fn, arg]
	TagBin                    // [binop, left, right]
	TagNot                    // [expr]
	TagNeg                    // [expr]
	TagIf                     // [cond, then, else]
	TagLet                    // [symbol, rhs, body]
	TagFun                    // [list of TagFunDef, body]
	TagFunDef                 // [name symbol, param symbol, body]
	TagCase                   // [scrutinee, list of TagAlt]
	TagAlt                    // [pattern, body]
	TagTuple                  // [list of exprs]
	TagProj                   // [index, expr]
	TagList                   // [list of exprs]
	TagRef                    // [expr]
	TagDeref                  // [expr]
	TagAssign                 // [lhs, rhs]
	TagAndalso                // [left, right]
	TagOrelse                 // [left, right]
	TagSeq                    // [list of exprs]

	// Pattern node tags.
	TagPWild  // []
	TagPVar   // [symbol]
	TagPInt   // [value]
	TagPBool  // [0/1]
	TagPUnit  // []
	TagPNil   // []
	TagPCons  // [head pat, tail pat]
	TagPTuple // [list of pats]
)

func packPos(p Pos) int64   { return int64(p.Line)<<12 | int64(p.Col)&0xfff }
func unpackPos(v int64) Pos { return Pos{Line: int(v >> 12), Col: int(v & 0xfff)} }

// kidArg is either a handle to a subtree or an immediate value.
type kidArg struct {
	h   core.Handle
	imm heap.Value
	raw bool
}

func sub(h core.Handle) kidArg { return kidArg{h: h} }
func imm(v int64) kidArg       { return kidArg{imm: heap.FromInt(v), raw: true} }

// newNode allocates an AST node. Children referenced by handle are read
// only after the allocation, so a collection triggered by Alloc cannot
// invalidate them.
func newNode(m *core.Mutator, tag Tag, pos Pos, kids ...kidArg) core.Handle {
	p := m.MustAlloc(heap.KindRecord, 2+len(kids))
	m.Init(p, 0, heap.FromInt(int64(tag)))
	m.Init(p, 1, heap.FromInt(packPos(pos)))
	for i, k := range kids {
		if k.raw {
			m.Init(p, 2+i, k.imm)
		} else {
			m.Init(p, 2+i, m.HandleVal(k.h))
		}
	}
	m.Step(2 + len(kids))
	return m.PushHandle(p)
}

// nodeTag reads a node's tag.
func nodeTag(m *core.Mutator, h core.Handle) Tag {
	return Tag(m.Get(m.HandleVal(h), 0).Int())
}

// nodePos reads a node's source position.
func nodePos(m *core.Mutator, h core.Handle) Pos {
	return unpackPos(m.Get(m.HandleVal(h), 1).Int())
}

// kidImm reads child i as an immediate integer.
func kidImm(m *core.Mutator, h core.Handle, i int) int64 {
	return m.Get(m.HandleVal(h), 2+i).Int()
}

// kidHandle pins child i and returns its handle.
func kidHandle(m *core.Mutator, h core.Handle, i int) core.Handle {
	return m.PushHandle(m.Get(m.HandleVal(h), 2+i))
}

// Heap lists: nil is the immediate 0; cons cells are two-slot records.

// listNil returns a handle to the empty list.
func listNil(m *core.Mutator) core.Handle { return m.PushHandle(heap.FromInt(0)) }

// listCons allocates a cons cell (head, tail given as handles).
func listCons(m *core.Mutator, head, tail core.Handle) core.Handle {
	p := m.MustAlloc(heap.KindRecord, 2)
	m.Init(p, 0, m.HandleVal(head))
	m.Init(p, 1, m.HandleVal(tail))
	m.Step(2)
	return m.PushHandle(p)
}

// listFromHandles builds a heap list of the given elements, left to right.
func listFromHandles(m *core.Mutator, elems []core.Handle) core.Handle {
	acc := listNil(m)
	for i := len(elems) - 1; i >= 0; i-- {
		acc = listCons(m, elems[i], acc)
	}
	return acc
}

// listLen measures a heap list.
func listLen(m *core.Mutator, h core.Handle) int {
	v := m.HandleVal(h)
	n := 0
	for v.IsPtr() {
		n++
		v = m.Get(v, 1)
	}
	return n
}

// listIter calls f with a handle to each element in order. The element
// handle (and anything f pushed) is released after each call; f must
// collapse anything it wants to keep below iterMark.
func listIter(m *core.Mutator, h core.Handle, f func(elem core.Handle) error) error {
	cur := m.PushHandle(m.HandleVal(h))
	defer m.PopHandles(cur)
	for m.HandleVal(cur).IsPtr() {
		mark := m.HandleMark()
		elem := m.PushHandle(m.Get(m.HandleVal(cur), 0))
		if err := f(elem); err != nil {
			return err
		}
		next := m.Get(m.HandleVal(cur), 1)
		m.PopHandles(mark)
		m.SetHandleVal(cur, next)
	}
	return nil
}

// DumpNode renders a subtree for debugging and tests.
func DumpNode(m *core.Mutator, h core.Handle, syms *SymTab) string {
	mark := m.HandleMark()
	defer m.PopHandles(mark)
	return dump(m, h, syms)
}

func dump(m *core.Mutator, h core.Handle, syms *SymTab) string {
	tag := nodeTag(m, h)
	name := func(i int) string { return syms.Name(int32(kidImm(m, h, i))) }
	kid := func(i int) string {
		k := kidHandle(m, h, i)
		s := dump(m, k, syms)
		m.PopHandles(k)
		return s
	}
	kidList := func(i int) string {
		out := ""
		l := kidHandle(m, h, i)
		_ = listIter(m, l, func(e core.Handle) error {
			if out != "" {
				out += " "
			}
			out += dump(m, e, syms)
			return nil
		})
		m.PopHandles(l)
		return out
	}
	switch tag {
	case TagInt, TagPInt:
		return fmt.Sprintf("%d", kidImm(m, h, 0))
	case TagStr:
		return fmt.Sprintf("(str %d)", kidImm(m, h, 0))
	case TagBool, TagPBool:
		if kidImm(m, h, 0) != 0 {
			return "true"
		}
		return "false"
	case TagUnit, TagPUnit:
		return "()"
	case TagVar:
		return name(0)
	case TagFn:
		return fmt.Sprintf("(fn %s %s)", name(0), kid(1))
	case TagApp:
		return fmt.Sprintf("(%s %s)", kid(0), kid(1))
	case TagBin:
		return fmt.Sprintf("(%s %s %s)", binOpName(kidImm(m, h, 0)), kid(1), kid(2))
	case TagNot:
		return fmt.Sprintf("(not %s)", kid(0))
	case TagNeg:
		return fmt.Sprintf("(~ %s)", kid(0))
	case TagIf:
		return fmt.Sprintf("(if %s %s %s)", kid(0), kid(1), kid(2))
	case TagLet:
		return fmt.Sprintf("(let %s %s %s)", name(0), kid(1), kid(2))
	case TagFun:
		return fmt.Sprintf("(fun [%s] %s)", kidList(0), kid(1))
	case TagFunDef:
		return fmt.Sprintf("(%s %s %s)", name(0), name(1), kid(2))
	case TagCase:
		return fmt.Sprintf("(case %s [%s])", kid(0), kidList(1))
	case TagAlt:
		return fmt.Sprintf("(%s => %s)", kid(0), kid(1))
	case TagTuple:
		return fmt.Sprintf("(tuple %s)", kidList(0))
	case TagProj:
		return fmt.Sprintf("(#%d %s)", kidImm(m, h, 0), kid(1))
	case TagList:
		return fmt.Sprintf("(list %s)", kidList(0))
	case TagRef:
		return fmt.Sprintf("(ref %s)", kid(0))
	case TagDeref:
		return fmt.Sprintf("(! %s)", kid(0))
	case TagAssign:
		return fmt.Sprintf("(:= %s %s)", kid(0), kid(1))
	case TagAndalso:
		return fmt.Sprintf("(andalso %s %s)", kid(0), kid(1))
	case TagOrelse:
		return fmt.Sprintf("(orelse %s %s)", kid(0), kid(1))
	case TagSeq:
		return fmt.Sprintf("(seq %s)", kidList(0))
	case TagPWild:
		return "_"
	case TagPVar:
		return name(0)
	case TagPNil:
		return "[]"
	case TagPCons:
		return fmt.Sprintf("(:: %s %s)", kid(0), kid(1))
	case TagPTuple:
		return fmt.Sprintf("(ptuple %s)", kidList(0))
	default:
		return fmt.Sprintf("(tag%d)", tag)
	}
}

func binOpName(op int64) string {
	names := []string{"+", "-", "*", "/", "mod", "<", "<=", ">", ">=", "=", "<>", "::", "^"}
	if int(op) < len(names) {
		return names[op]
	}
	return "?"
}
