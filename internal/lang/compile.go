package lang

import (
	"math"

	"repligc/internal/bytecode"
	"repligc/internal/core"
	"repligc/internal/heap"
)

// builtins maps identifier spellings to (opcode, arity). A builtin must be
// fully applied; it is recognised only when the name is not bound.
var builtins = map[string]struct {
	op    bytecode.Op
	arity int
}{
	"print":  {bytecode.OpPrint, 1},
	"itos":   {bytecode.OpItoS, 1},
	"stoi":   {bytecode.OpStoI, 1},
	"size":   {bytecode.OpSize, 1},
	"sub":    {bytecode.OpSub, 2},
	"array":  {bytecode.OpMkArray, 2},
	"aget":   {bytecode.OpAGet, 2},
	"aset":   {bytecode.OpASet, 3},
	"alen":   {bytecode.OpALen, 1},
	"spawn":  {bytecode.OpSpawn, 1},
	"yield":  {bytecode.OpYield, 1},
	"newsv":  {bytecode.OpNewSV, 1},
	"putsv":  {bytecode.OpPutSV, 2},
	"takesv": {bytecode.OpTakeSV, 1},
}

// freeVar is one captured variable of a function under compilation. Boxed
// variables (recursive fun-group bindings) are captured as their mutable
// environment record rather than by value, so mutually recursive closures
// observe the backpatched definitions.
type freeVar struct {
	sym   int32
	boxed bool
}

// funcCtx tracks one function being compiled: its accumulated free
// variables and the lexical context of its definition site, which is where
// captures are resolved.
type funcCtx struct {
	parent      *funcCtx
	parentScope core.Handle // the enclosing local scope at the fn expression
	free        []freeVar
	freeIdx     map[int32]int
}

func (f *funcCtx) addFree(sym int32, boxed bool) int {
	if f.freeIdx == nil {
		f.freeIdx = make(map[int32]int)
	}
	if i, ok := f.freeIdx[sym]; ok {
		return i
	}
	i := len(f.free)
	f.free = append(f.free, freeVar{sym: sym, boxed: boxed})
	f.freeIdx[sym] = i
	return i
}

// Compiler lowers the heap AST to bytecode with flat closure conversion:
// local bindings live in per-function chains of two-slot heap records
// (mirroring the runtime environment), and every fn captures exactly its
// free variables — the SML/NJ strategy, and the reason long-lived closures
// do not retain dead scopes. The compiler's own working state — scope
// chains, interned symbols and open code buffers — lives on the simulated
// heap; only bookkeeping integers stay in Go.
type Compiler struct {
	m        *core.Mutator
	syms     *SymTab
	literals []string
	blocks   []*blockBuf
	bufs     *bufRoots
}

// Compile parses and compiles one MiniML program. Heap exhaustion while
// compiling (the compiler's working data lives on the simulated heap)
// surfaces as the typed *core.OOMError, not a panic: the deeply recursive
// compiler allocates through the Must variants and this boundary recovers
// them — the text/template idiom for error returns across recursion.
func Compile(m *core.Mutator, src string) (prog *bytecode.Program, err error) {
	mark := m.HandleMark()
	defer m.PopHandles(mark)
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && core.IsOOM(e) {
				prog, err = nil, e
				return
			}
			panic(r)
		}
	}()

	syms := NewSymTab(m)
	root, lits, err := Parse(m, syms, src)
	if err != nil {
		return nil, err
	}
	c := &Compiler{m: m, syms: syms, literals: lits, bufs: &bufRoots{}}
	m.Roots.Register(c.bufs)
	defer func() { c.bufs.slots = nil }()

	entry := newBlockBuf(m, c.bufs, "entry")
	c.blocks = append(c.blocks, entry)
	emptyScope := m.PushHandle(heap.FromInt(0))
	entryCtx := &funcCtx{}
	// The entry block's continuation is OpHalt, not OpReturn, so its body
	// is not in tail position: a tail call here would let the callee's
	// return end the main thread before the program halts.
	if err := c.expr(entry, emptyScope, entryCtx, root, false); err != nil {
		return nil, err
	}
	if len(entryCtx.free) > 0 {
		return nil, errf(Pos{}, "internal: entry block has free variables")
	}
	entry.emit(m, bytecode.Instr{Op: bytecode.OpHalt})

	prog = &bytecode.Program{Strings: c.literals, Entry: 0}
	for _, b := range c.blocks {
		prog.Blocks = append(prog.Blocks, b.assemble(m))
	}
	return prog, nil
}

// scopeBind allocates a compile-time scope record {sym<<1|boxed, parent};
// the chain's shape matches the runtime environment chain exactly, so a
// local variable's hop count is its position in this list.
func (c *Compiler) scopeBind(scope core.Handle, sym int32, boxed bool) core.Handle {
	tag := int64(sym) << 1
	if boxed {
		tag |= 1
	}
	p := c.m.MustAlloc(heap.KindRecord, 2)
	c.m.Init(p, 0, heap.FromInt(tag))
	c.m.Init(p, 1, c.m.HandleVal(scope))
	c.m.Step(2)
	return c.m.PushHandle(p)
}

// lookupLocal walks the local scope chain for sym.
func (c *Compiler) lookupLocal(scope core.Handle, sym int32) (hops int32, boxed, ok bool) {
	v := c.m.HandleVal(scope)
	for v.IsPtr() {
		tag := c.m.Get(v, 0).Int()
		if int32(tag>>1) == sym {
			return hops, tag&1 != 0, true
		}
		v = c.m.Get(v, 1)
		hops++
	}
	return 0, false, false
}

// resolve classifies a variable occurrence: a local of the current
// function, a free variable (registered in fctx), or unbound. Free
// variables inherit the boxedness of their defining binding, found by
// walking the lexical chain of definition sites.
type varRef struct {
	free  bool
	hops  int32 // local: env hops
	idx   int   // free: closure slot
	boxed bool
}

func (c *Compiler) resolve(scope core.Handle, fctx *funcCtx, sym int32) (varRef, bool) {
	if hops, boxed, ok := c.lookupLocal(scope, sym); ok {
		return varRef{hops: hops, boxed: boxed}, true
	}
	// Search enclosing functions for the defining binding.
	f := fctx
	for f.parent != nil {
		if hops, boxed, ok := c.lookupLocal(f.parentScope, sym); ok {
			_ = hops
			idx := fctx.addFree(sym, boxed)
			return varRef{free: true, idx: idx, boxed: boxed}, true
		}
		f = f.parent
	}
	return varRef{}, false
}

// emitVar pushes the value of a resolved variable.
func (c *Compiler) emitVar(b *blockBuf, r varRef) {
	if !r.free {
		b.emit(c.m, bytecode.Instr{Op: bytecode.OpLocal, A: r.hops})
		return
	}
	b.emit(c.m, bytecode.Instr{Op: bytecode.OpFree, A: int32(r.idx)})
	if r.boxed {
		// The captured thing is the mutable environment record; its
		// value sits in payload slot 1.
		b.emit(c.m, bytecode.Instr{Op: bytecode.OpProj, A: 1})
	}
}

// emitCapture pushes the capture for one free variable of a child function,
// resolved in the parent's context: boxed bindings are captured as their
// environment record, plain bindings by value.
func (c *Compiler) emitCapture(b *blockBuf, scope core.Handle, fctx *funcCtx, fv freeVar, pos Pos) error {
	if hops, boxed, ok := c.lookupLocal(scope, fv.sym); ok {
		op := bytecode.OpLocal
		if boxed {
			op = bytecode.OpLocalRec
		}
		b.emit(c.m, bytecode.Instr{Op: op, A: hops})
		return nil
	}
	// Free in the parent as well: the parent's own capture already holds
	// the box or value in the right form.
	if _, ok := c.resolve(scope, fctx, fv.sym); !ok {
		return errf(pos, "internal: unresolvable capture %s", c.syms.Name(fv.sym))
	}
	idx := fctx.addFree(fv.sym, fv.boxed)
	b.emit(c.m, bytecode.Instr{Op: bytecode.OpFree, A: int32(idx)})
	return nil
}

// function compiles a fn body into a fresh block; returns the block index
// and the function's free variables (for the caller to capture).
func (c *Compiler) function(name string, param int32, defScope core.Handle, defCtx *funcCtx, body core.Handle) (int32, []freeVar, error) {
	m := c.m
	blk := newBlockBuf(m, c.bufs, name)
	idx := int32(len(c.blocks))
	c.blocks = append(c.blocks, blk)

	fctx := &funcCtx{parent: defCtx, parentScope: defScope}
	base := m.PushHandle(heap.FromInt(0))
	inner := c.scopeBind(base, param, false)
	if err := c.expr(blk, inner, fctx, body, true); err != nil {
		return 0, nil, err
	}
	blk.emit(m, bytecode.Instr{Op: bytecode.OpReturn})
	m.PopHandles(base)
	return idx, fctx.free, nil
}

// emitClosure compiles a fn node: child block first (collecting its free
// variables), then the captures and the closure allocation.
func (c *Compiler) emitClosure(b *blockBuf, scope core.Handle, fctx *funcCtx, name string, param int32, body core.Handle, pos Pos) error {
	blk, frees, err := c.function(name, param, scope, fctx, body)
	if err != nil {
		return err
	}
	for _, fv := range frees {
		if err := c.emitCapture(b, scope, fctx, fv, pos); err != nil {
			return err
		}
	}
	b.emit(c.m, bytecode.Instr{Op: bytecode.OpClosure, A: blk, B: int32(len(frees))})
	return nil
}

// expr compiles a node. tail is true when the expression's continuation is
// exactly a return, enabling tail calls.
func (c *Compiler) expr(b *blockBuf, scope core.Handle, fctx *funcCtx, node core.Handle, tail bool) error {
	m := c.m
	mark := m.HandleMark()
	defer m.PopHandles(mark)
	m.Step(4)

	switch tag := nodeTag(m, node); tag {
	case TagInt:
		v := kidImm(m, node, 0)
		if v > math.MaxInt32 || v < math.MinInt32 {
			return errf(nodePos(m, node), "integer literal %d out of 32-bit range", v)
		}
		b.emit(m, bytecode.Instr{Op: bytecode.OpConstInt, A: int32(v)})

	case TagBool:
		b.emit(m, bytecode.Instr{Op: bytecode.OpConstInt, A: int32(kidImm(m, node, 0))})

	case TagUnit:
		b.emit(m, bytecode.Instr{Op: bytecode.OpConstInt, A: 0})

	case TagStr:
		b.emit(m, bytecode.Instr{Op: bytecode.OpConstStr, A: int32(kidImm(m, node, 0))})

	case TagVar:
		sym := int32(kidImm(m, node, 0))
		r, ok := c.resolve(scope, fctx, sym)
		if !ok {
			return errf(nodePos(m, node), "unbound variable %s", c.syms.Name(sym))
		}
		c.emitVar(b, r)

	case TagFn:
		sym := int32(kidImm(m, node, 0))
		body := kidHandle(m, node, 1)
		return c.emitClosure(b, scope, fctx, c.syms.Name(sym), sym, body, nodePos(m, node))

	case TagApp:
		return c.app(b, scope, fctx, node, tail)

	case TagBin:
		op := int32(kidImm(m, node, 0))
		l, r := kidHandle(m, node, 1), kidHandle(m, node, 2)
		if err := c.expr(b, scope, fctx, l, false); err != nil {
			return err
		}
		if err := c.expr(b, scope, fctx, r, false); err != nil {
			return err
		}
		b.emit(m, bytecode.Instr{Op: bytecode.OpBin, A: op})

	case TagNot, TagNeg, TagRef, TagDeref:
		e := kidHandle(m, node, 0)
		if err := c.expr(b, scope, fctx, e, false); err != nil {
			return err
		}
		op := map[Tag]bytecode.Op{
			TagNot: bytecode.OpNot, TagNeg: bytecode.OpNeg,
			TagRef: bytecode.OpMkRef, TagDeref: bytecode.OpDeref,
		}[tag]
		b.emit(m, bytecode.Instr{Op: op})

	case TagAssign:
		l, r := kidHandle(m, node, 0), kidHandle(m, node, 1)
		if err := c.expr(b, scope, fctx, l, false); err != nil {
			return err
		}
		if err := c.expr(b, scope, fctx, r, false); err != nil {
			return err
		}
		b.emit(m, bytecode.Instr{Op: bytecode.OpAssign})

	case TagAndalso, TagOrelse:
		l, r := kidHandle(m, node, 0), kidHandle(m, node, 1)
		if err := c.expr(b, scope, fctx, l, false); err != nil {
			return err
		}
		j1 := b.emit(m, bytecode.Instr{Op: bytecode.OpJumpIfNot})
		if tag == TagAndalso {
			if err := c.expr(b, scope, fctx, r, false); err != nil {
				return err
			}
			j2 := b.emit(m, bytecode.Instr{Op: bytecode.OpJump})
			b.patch(m, j1, bytecode.Instr{Op: bytecode.OpJumpIfNot, A: int32(b.n)})
			b.emit(m, bytecode.Instr{Op: bytecode.OpConstInt, A: 0})
			b.patch(m, j2, bytecode.Instr{Op: bytecode.OpJump, A: int32(b.n)})
		} else {
			b.emit(m, bytecode.Instr{Op: bytecode.OpConstInt, A: 1})
			j2 := b.emit(m, bytecode.Instr{Op: bytecode.OpJump})
			b.patch(m, j1, bytecode.Instr{Op: bytecode.OpJumpIfNot, A: int32(b.n)})
			if err := c.expr(b, scope, fctx, r, false); err != nil {
				return err
			}
			b.patch(m, j2, bytecode.Instr{Op: bytecode.OpJump, A: int32(b.n)})
		}

	case TagIf:
		cond, then, els := kidHandle(m, node, 0), kidHandle(m, node, 1), kidHandle(m, node, 2)
		if err := c.expr(b, scope, fctx, cond, false); err != nil {
			return err
		}
		j1 := b.emit(m, bytecode.Instr{Op: bytecode.OpJumpIfNot})
		if err := c.expr(b, scope, fctx, then, tail); err != nil {
			return err
		}
		j2 := b.emit(m, bytecode.Instr{Op: bytecode.OpJump})
		b.patch(m, j1, bytecode.Instr{Op: bytecode.OpJumpIfNot, A: int32(b.n)})
		if err := c.expr(b, scope, fctx, els, tail); err != nil {
			return err
		}
		b.patch(m, j2, bytecode.Instr{Op: bytecode.OpJump, A: int32(b.n)})

	case TagLet:
		sym := int32(kidImm(m, node, 0))
		rhs, body := kidHandle(m, node, 1), kidHandle(m, node, 2)
		if err := c.expr(b, scope, fctx, rhs, false); err != nil {
			return err
		}
		b.emit(m, bytecode.Instr{Op: bytecode.OpBind})
		inner := c.scopeBind(scope, sym, false)
		if err := c.expr(b, inner, fctx, body, tail); err != nil {
			return err
		}
		if !tail {
			b.emit(m, bytecode.Instr{Op: bytecode.OpEnvPop, A: 1})
		}

	case TagFun:
		return c.funGroup(b, scope, fctx, node, tail)

	case TagCase:
		return c.caseExpr(b, scope, fctx, node, tail)

	case TagTuple:
		list := kidHandle(m, node, 0)
		n := 0
		if err := listIter(m, list, func(e core.Handle) error {
			n++
			return c.expr(b, scope, fctx, e, false)
		}); err != nil {
			return err
		}
		b.emit(m, bytecode.Instr{Op: bytecode.OpMkTuple, A: int32(n)})

	case TagProj:
		i := kidImm(m, node, 0)
		e := kidHandle(m, node, 1)
		if err := c.expr(b, scope, fctx, e, false); err != nil {
			return err
		}
		b.emit(m, bytecode.Instr{Op: bytecode.OpProj, A: int32(i - 1)})

	case TagList:
		list := kidHandle(m, node, 0)
		n := 0
		if err := listIter(m, list, func(e core.Handle) error {
			n++
			return c.expr(b, scope, fctx, e, false)
		}); err != nil {
			return err
		}
		b.emit(m, bytecode.Instr{Op: bytecode.OpConstInt, A: 0}) // nil
		for i := 0; i < n; i++ {
			b.emit(m, bytecode.Instr{Op: bytecode.OpBin, A: int32(bytecode.BinCons)})
		}

	case TagSeq:
		list := kidHandle(m, node, 0)
		n := listLen(m, list)
		i := 0
		if err := listIter(m, list, func(e core.Handle) error {
			i++
			last := i == n
			if err := c.expr(b, scope, fctx, e, tail && last); err != nil {
				return err
			}
			if !last {
				b.emit(m, bytecode.Instr{Op: bytecode.OpPopN, A: 1})
			}
			return nil
		}); err != nil {
			return err
		}

	default:
		return errf(nodePos(m, node), "cannot compile node tag %d", tag)
	}
	return nil
}

// app compiles an application spine: builtin call or closure call.
func (c *Compiler) app(b *blockBuf, scope core.Handle, fctx *funcCtx, node core.Handle, tail bool) error {
	m := c.m
	var args []core.Handle
	head := node
	for nodeTag(m, head) == TagApp {
		args = append(args, kidHandle(m, head, 1))
		head = kidHandle(m, head, 0)
	}
	ordered := make([]core.Handle, len(args))
	for i, a := range args {
		ordered[len(args)-1-i] = a
	}

	if nodeTag(m, head) == TagVar {
		sym := int32(kidImm(m, head, 0))
		if _, bound := c.resolve(scope, fctx, sym); !bound {
			name := c.syms.Name(sym)
			bi, ok := builtins[name]
			if !ok {
				return errf(nodePos(m, head), "unbound variable %s", name)
			}
			if len(ordered) != bi.arity {
				return errf(nodePos(m, head), "builtin %s expects %d arguments, got %d", name, bi.arity, len(ordered))
			}
			for _, a := range ordered {
				if err := c.expr(b, scope, fctx, a, false); err != nil {
					return err
				}
			}
			b.emit(m, bytecode.Instr{Op: bi.op})
			return nil
		}
	}

	if err := c.expr(b, scope, fctx, head, false); err != nil {
		return err
	}
	for i, a := range ordered {
		if err := c.expr(b, scope, fctx, a, false); err != nil {
			return err
		}
		op := bytecode.OpCall
		if tail && i == len(ordered)-1 {
			op = bytecode.OpTailCall
		}
		b.emit(m, bytecode.Instr{Op: op})
	}
	return nil
}

// funGroup compiles `fun f .. and g .. in body`: the group's bindings are
// mutable environment records (boxes); each closure captures the boxes of
// the group members it references, and each box is patched with its closure
// once allocated — a logged mutation, like any store.
func (c *Compiler) funGroup(b *blockBuf, scope core.Handle, fctx *funcCtx, node core.Handle, tail bool) error {
	m := c.m
	defs := kidHandle(m, node, 0)
	body := kidHandle(m, node, 1)
	k := listLen(m, defs)

	type defInfo struct {
		name, param int32
		body        core.Handle
	}
	infos := make([]defInfo, 0, k)
	v := m.HandleVal(defs)
	for v.IsPtr() {
		d := m.Get(v, 0)
		infos = append(infos, defInfo{
			name:  int32(m.Get(d, 2).Int()),
			param: int32(m.Get(d, 3).Int()),
			body:  m.PushHandle(m.Get(d, 4)),
		})
		v = m.Get(v, 1)
	}

	inner := scope
	for _, info := range infos {
		b.emit(m, bytecode.Instr{Op: bytecode.OpBindHole})
		inner = c.scopeBind(inner, info.name, true)
	}
	for i, info := range infos {
		if err := c.emitClosure(b, inner, fctx, c.syms.Name(info.name), info.param, info.body, nodePos(m, node)); err != nil {
			return err
		}
		b.emit(m, bytecode.Instr{Op: bytecode.OpPatch, A: int32(k - 1 - i)})
	}
	if err := c.expr(b, inner, fctx, body, tail); err != nil {
		return err
	}
	if !tail {
		b.emit(m, bytecode.Instr{Op: bytecode.OpEnvPop, A: int32(k)})
	}
	return nil
}

// failSite records a pattern-test failure point.
type failSite struct {
	instr int // index of the test instruction to patch
	depth int // pending stack values to pop on failure
	binds int // environment bindings to unwind on failure
}

// caseExpr compiles case/of with sequential alternatives. Each alternative
// duplicates the scrutinee, runs its pattern tests (failure sites jump to
// per-site unwind trampolines that pop pending stack values and bindings
// before trying the next alternative), evaluates its body, and drops the
// saved scrutinee.
func (c *Compiler) caseExpr(b *blockBuf, scope core.Handle, fctx *funcCtx, node core.Handle, tail bool) error {
	m := c.m
	scrut := kidHandle(m, node, 0)
	alts := kidHandle(m, node, 1)
	if err := c.expr(b, scope, fctx, scrut, false); err != nil {
		return err
	}

	var endJumps []int
	var pendingFails []failSite

	patchFail := func(f failSite, target int32) {
		ins := b.read(m, f.instr)
		if ins.Op == bytecode.OpTestInt || ins.Op == bytecode.OpTestTuple {
			ins.B = target
		} else {
			ins.A = target
		}
		b.patch(m, f.instr, ins)
	}
	emitTrampolines := func(fails []failSite, dest int32) []int {
		var jumps []int
		for _, f := range fails {
			patchFail(f, int32(b.n))
			if f.depth > 0 {
				b.emit(m, bytecode.Instr{Op: bytecode.OpPopN, A: int32(f.depth)})
			}
			if f.binds > 0 {
				b.emit(m, bytecode.Instr{Op: bytecode.OpEnvPop, A: int32(f.binds)})
			}
			jumps = append(jumps, b.emit(m, bytecode.Instr{Op: bytecode.OpJump, A: dest}))
		}
		return jumps
	}

	if err := listIter(m, alts, func(alt core.Handle) error {
		if len(pendingFails) > 0 {
			skip := b.emit(m, bytecode.Instr{Op: bytecode.OpJump, A: -1})
			jumps := emitTrampolines(pendingFails, -1)
			dup := int32(b.n)
			for _, j := range jumps {
				b.patch(m, j, bytecode.Instr{Op: bytecode.OpJump, A: dup})
			}
			b.patch(m, skip, bytecode.Instr{Op: bytecode.OpJump, A: dup})
			pendingFails = pendingFails[:0]
		}

		b.emit(m, bytecode.Instr{Op: bytecode.OpDup})
		pat := kidHandle(m, alt, 0)
		body := kidHandle(m, alt, 1)
		inner := scope
		binds := 0
		var fails []failSite
		var err error
		inner, binds, err = c.pattern(b, inner, pat, 0, 0, &fails)
		if err != nil {
			return err
		}
		if err := c.expr(b, inner, fctx, body, tail); err != nil {
			return err
		}
		b.emit(m, bytecode.Instr{Op: bytecode.OpSwapPop})
		if binds > 0 {
			b.emit(m, bytecode.Instr{Op: bytecode.OpEnvPop, A: int32(binds)})
		}
		endJumps = append(endJumps, b.emit(m, bytecode.Instr{Op: bytecode.OpJump, A: -1}))
		pendingFails = fails
		return nil
	}); err != nil {
		return err
	}

	// Failures of the last alternative are runtime match failures: no
	// unwinding needed, just point every site at a failing halt.
	if len(pendingFails) > 0 {
		halt := int32(b.n)
		b.emit(m, bytecode.Instr{Op: bytecode.OpHalt, A: 1})
		for _, f := range pendingFails {
			patchFail(f, halt)
		}
	}
	end := int32(b.n)
	for _, j := range endJumps {
		b.patch(m, j, bytecode.Instr{Op: bytecode.OpJump, A: end})
	}
	return nil
}

// pattern compiles one pattern match. The value under test is on top of
// the stack and is consumed. depth counts pending sibling values beneath
// it; binds counts bindings made so far in this alternative.
func (c *Compiler) pattern(b *blockBuf, scope, pat core.Handle, depth, binds int, fails *[]failSite) (core.Handle, int, error) {
	m := c.m
	switch tag := nodeTag(m, pat); tag {
	case TagPWild:
		b.emit(m, bytecode.Instr{Op: bytecode.OpPopN, A: 1})
		return scope, binds, nil

	case TagPVar:
		sym := int32(kidImm(m, pat, 0))
		b.emit(m, bytecode.Instr{Op: bytecode.OpBind})
		return c.scopeBind(scope, sym, false), binds + 1, nil

	case TagPInt, TagPBool:
		k := int32(kidImm(m, pat, 0))
		idx := b.emit(m, bytecode.Instr{Op: bytecode.OpTestInt, A: k, B: -1})
		*fails = append(*fails, failSite{instr: idx, depth: depth, binds: binds})
		return scope, binds, nil

	case TagPUnit:
		idx := b.emit(m, bytecode.Instr{Op: bytecode.OpTestInt, A: 0, B: -1})
		*fails = append(*fails, failSite{instr: idx, depth: depth, binds: binds})
		return scope, binds, nil

	case TagPNil:
		idx := b.emit(m, bytecode.Instr{Op: bytecode.OpTestNil, A: -1})
		*fails = append(*fails, failSite{instr: idx, depth: depth, binds: binds})
		return scope, binds, nil

	case TagPCons:
		idx := b.emit(m, bytecode.Instr{Op: bytecode.OpTestCons, A: -1})
		*fails = append(*fails, failSite{instr: idx, depth: depth, binds: binds})
		head := kidHandle(m, pat, 0)
		tail := kidHandle(m, pat, 1)
		var err error
		// Stack now: ... tail head; match head with tail pending.
		scope, binds, err = c.pattern(b, scope, head, depth+1, binds, fails)
		if err != nil {
			return scope, binds, err
		}
		return c.pattern(b, scope, tail, depth, binds, fails)

	case TagPTuple:
		list := kidHandle(m, pat, 0)
		n := listLen(m, list)
		idx := b.emit(m, bytecode.Instr{Op: bytecode.OpTestTuple, A: int32(n), B: -1})
		*fails = append(*fails, failSite{instr: idx, depth: depth, binds: binds})
		// Walk the sub-patterns with a pinned cursor; the scope handles the
		// sub-patterns create must outlive each iteration (listIter's
		// per-element cleanup would release them), so iterate manually.
		cur := m.PushHandle(m.HandleVal(list))
		i := 0
		var err error
		for m.HandleVal(cur).IsPtr() {
			elem := m.PushHandle(m.Get(m.HandleVal(cur), 0))
			m.SetHandleVal(cur, m.Get(m.HandleVal(cur), 1))
			scope, binds, err = c.pattern(b, scope, elem, depth+(n-1-i), binds, fails)
			if err != nil {
				return scope, binds, err
			}
			i++
		}
		return scope, binds, nil
	}
	return scope, binds, errf(nodePos(m, pat), "cannot compile pattern tag %d", nodeTag(m, pat))
}
