package lang

import (
	"strings"
	"testing"

	"repligc/internal/bytecode"
)

func compileSrc(t *testing.T, src string) *bytecode.Program {
	t.Helper()
	m := testMutator()
	prog, err := Compile(m, src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return prog
}

// ops flattens one block's opcodes.
func ops(b bytecode.Block) []bytecode.Op {
	out := make([]bytecode.Op, len(b.Code))
	for i, ins := range b.Code {
		out[i] = ins.Op
	}
	return out
}

func hasOp(b bytecode.Block, op bytecode.Op) bool {
	for _, o := range ops(b) {
		if o == op {
			return true
		}
	}
	return false
}

func TestFlatClosureCapturesOnlyFreeVariables(t *testing.T) {
	// "dead" is in scope at the fn but not free in it: a flat closure
	// must not capture it.
	prog := compileSrc(t, `
let dead = [1, 2, 3] in
let live = 42 in
let f = fn x => x + live in
f 0`)
	var fnBlock *bytecode.Block
	for i := range prog.Blocks {
		if prog.Blocks[i].Name == "x" {
			fnBlock = &prog.Blocks[i]
		}
	}
	if fnBlock == nil {
		t.Fatalf("fn block not found:\n%s", prog.Disassemble())
	}
	// The closure must have exactly one capture (live).
	for _, blk := range prog.Blocks {
		for _, ins := range blk.Code {
			if ins.Op == bytecode.OpClosure {
				if ins.B != 1 {
					t.Fatalf("closure captures %d values, want 1:\n%s", ins.B, prog.Disassemble())
				}
			}
		}
	}
	if !hasOp(*fnBlock, bytecode.OpFree) {
		t.Fatalf("fn body must access its free variable via OpFree:\n%s", prog.Disassemble())
	}
}

func TestNestedFreeVariablePropagation(t *testing.T) {
	// z is free in the innermost fn and must be threaded through the
	// middle closure's captures.
	prog := compileSrc(t, `
let z = 7 in
let outer = fn a => fn b => a + b + z in
outer 1 2`)
	dis := prog.Disassemble()
	if !strings.Contains(dis, "free") {
		t.Fatalf("expected free-variable accesses:\n%s", dis)
	}
	// The middle block ("a") must build the inner closure from 2 captures
	// (a and z).
	for _, blk := range prog.Blocks {
		if blk.Name != "a" {
			continue
		}
		for _, ins := range blk.Code {
			if ins.Op == bytecode.OpClosure && ins.B != 2 {
				t.Fatalf("inner closure captures %d, want 2:\n%s", ins.B, dis)
			}
		}
	}
}

func TestRecursiveBindingsAreBoxed(t *testing.T) {
	prog := compileSrc(t, `
fun f n = if n = 0 then 0 else f (n - 1) in
let g = fn x => f x in
g 3`)
	dis := prog.Disassemble()
	if !strings.Contains(dis, "bindhole") || !strings.Contains(dis, "patch") {
		t.Fatalf("fun group must use bindhole/patch:\n%s", dis)
	}
	// g's body accesses f as a boxed free variable: free then proj.
	for _, blk := range prog.Blocks {
		if blk.Name != "x" {
			continue
		}
		sawFree := false
		for _, ins := range blk.Code {
			if ins.Op == bytecode.OpFree {
				sawFree = true
			}
			if sawFree && ins.Op == bytecode.OpProj && ins.A == 1 {
				return // boxed access found
			}
		}
	}
	t.Fatalf("boxed free-variable access (free; proj 1) not found:\n%s", dis)
}

func TestTailCallsEmitted(t *testing.T) {
	prog := compileSrc(t, `fun loop n = if n = 0 then 0 else loop (n - 1) in loop 5`)
	found := false
	for _, blk := range prog.Blocks {
		if hasOp(blk, bytecode.OpTailCall) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no tail call emitted:\n%s", prog.Disassemble())
	}
}

func TestTailPositionThroughCaseAndLet(t *testing.T) {
	prog := compileSrc(t, `
fun walk l = case l of [] => 0 | _ :: r => let s = r in walk s in
walk [1, 2]`)
	for _, blk := range prog.Blocks {
		if blk.Name == "walk" {
			if !hasOp(blk, bytecode.OpTailCall) {
				t.Fatalf("recursion through case+let must be a tail call:\n%s", prog.Disassemble())
			}
			return
		}
	}
	t.Fatal("walk block not found")
}

func TestBuiltinArityChecked(t *testing.T) {
	m := testMutator()
	cases := []string{
		`print`,            // builtins are not values
		`print "a" "b"`,    // too many
		`sub "a"`,          // too few
		`aset a 1`,         // too few (a also unbound, but arity errs first or not — either is an error)
		`unknownbuiltin 1`, // not a builtin at all
	}
	for _, src := range cases {
		if _, err := Compile(m, src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestShadowingBuiltinNames(t *testing.T) {
	// A local binding named like a builtin must win.
	prog := compileSrc(t, `let size = fn x => 99 in size "abc"`)
	for _, blk := range prog.Blocks {
		if hasOp(blk, bytecode.OpSize) {
			t.Fatalf("builtin op emitted despite shadowing:\n%s", prog.Disassemble())
		}
	}
}

func TestIntLiteralRange(t *testing.T) {
	m := testMutator()
	if _, err := Compile(m, `print (itos 4294967296)`); err == nil {
		t.Fatal("expected out-of-range literal error")
	}
}

func TestCaseFailureTrampolinesUnwind(t *testing.T) {
	// Deep nested patterns failing at different depths must compile with
	// balanced unwind code (popn/envpop before the next alternative).
	prog := compileSrc(t, `
fun f p = case p of
    ((1, a), b) => a + b
  | ((x, 2), _) => x
  | _ => 0 in
print (itos (f ((1, 10), 20) + f ((5, 2), 9) + f ((9, 9), 9)))`)
	dis := prog.Disassemble()
	if !strings.Contains(dis, "popn") {
		t.Fatalf("expected unwind popn in trampolines:\n%s", dis)
	}
}

func TestEntryHasNoFreeVariables(t *testing.T) {
	prog := compileSrc(t, `let x = 1 in x + x`)
	entry := prog.Blocks[prog.Entry]
	if hasOp(entry, bytecode.OpFree) {
		t.Fatal("entry block must not reference free variables")
	}
}

func TestCompilerHeapFootprint(t *testing.T) {
	// Compilation allocates its IR on the simulated heap: a nontrivial
	// module must allocate well more than its source size.
	m := testMutator()
	src := strings.Repeat("let x = (1, [2, 3], \"abc\") in\n", 50) + "0"
	before := m.BytesAllocated
	if _, err := Compile(m, src); err != nil {
		t.Fatal(err)
	}
	allocated := m.BytesAllocated - before
	if allocated < int64(4*len(src)) {
		t.Fatalf("compiler allocated only %d bytes for %d bytes of source", allocated, len(src))
	}
	if m.LogWrites == 0 && m.BarrierFastSkips == 0 {
		t.Fatal("code emission produced no write-barrier traffic (neither log entries nor fast-path skips)")
	}
}
