package lang

import (
	"repligc/internal/bytecode"
	"repligc/internal/core"
	"repligc/internal/heap"
)

// bufRoots keeps every open code buffer alive for the duration of a
// compilation, independent of the handle stack's scoped discipline (buffers
// created while compiling a nested function must survive the enclosing
// expression's handle cleanup).
type bufRoots struct {
	slots []heap.Value
}

// VisitRoots implements core.RootSource.
func (r *bufRoots) VisitRoots(v core.RootVisitor) {
	for i := range r.slots {
		v(&r.slots[i])
	}
}

// blockBuf is an open code buffer for one block being compiled. The buffer
// is a mutable byte object on the simulated heap; every emitted instruction
// is written byte by byte through the mutator's (logged) byte-store path,
// and branch backpatching rewrites earlier bytes — this is the Comp
// workload's signature mutation pattern (paper §4.5: "Comp contains many
// mutations to byte data").
type blockBuf struct {
	name  string
	roots *bufRoots
	idx   int // slot in roots holding the KindBytes object
	cap   int // capacity in bytes
	n     int // instructions emitted

	// pending batches encoded instructions before they are stored to the
	// heap buffer, so sequential emission produces one logged mutation
	// per flush rather than one per instruction — ordinary emitter
	// buffering, which also matches a realistic storelist density.
	pending      []byte
	pendingStart int // byte offset of pending[0] in the heap buffer
}

const initialBlockCap = 16 * bytecode.EncodedSize

// flushThreshold bounds the emission buffer (in instructions).
const flushThreshold = 8 * bytecode.EncodedSize

// newBlockBuf allocates a fresh code buffer rooted in roots.
func newBlockBuf(m *core.Mutator, roots *bufRoots, name string) *blockBuf {
	b := &blockBuf{name: name, roots: roots, cap: initialBlockCap}
	p := m.MustAllocBytes(b.cap)
	b.idx = len(roots.slots)
	roots.slots = append(roots.slots, p)
	return b
}

// obj returns the buffer's current heap object.
func (b *blockBuf) obj() heap.Value { return b.roots.slots[b.idx] }

// flush stores any pending encoded instructions into the heap buffer.
func (b *blockBuf) flush(m *core.Mutator) {
	if len(b.pending) == 0 {
		return
	}
	m.SetByteRange(b.obj(), b.pendingStart, b.pending)
	b.pending = b.pending[:0]
}

// emit appends one instruction and returns its index.
func (b *blockBuf) emit(m *core.Mutator, ins bytecode.Instr) int {
	off := b.n * bytecode.EncodedSize
	if off+bytecode.EncodedSize > b.cap {
		b.flush(m)
		b.grow(m)
	}
	if len(b.pending) == 0 {
		b.pendingStart = off
	}
	var enc [bytecode.EncodedSize]byte
	ins.EncodeInto(enc[:], 0)
	b.pending = append(b.pending, enc[:]...)
	if len(b.pending) >= flushThreshold {
		b.flush(m)
	}
	m.Step(3)
	b.n++
	return b.n - 1
}

// grow doubles the buffer, copying through the heap byte paths.
func (b *blockBuf) grow(m *core.Mutator) {
	newCap := b.cap * 2
	np := m.MustAllocBytes(newCap)
	// np is freshly allocated; the old buffer is still rooted, so
	// re-reading it after the allocation is safe.
	op := b.obj()
	used := b.n * bytecode.EncodedSize
	chunk := make([]byte, used)
	for i := range chunk {
		chunk[i] = m.GetByte(op, i)
	}
	m.SetByteRange(np, 0, chunk)
	m.Step(used / 4)
	b.roots.slots[b.idx] = np
	b.cap = newCap
}

// patch rewrites the instruction at index idx.
func (b *blockBuf) patch(m *core.Mutator, idx int, ins bytecode.Instr) {
	b.flush(m)
	var enc [bytecode.EncodedSize]byte
	ins.EncodeInto(enc[:], 0)
	m.SetByteRange(b.obj(), idx*bytecode.EncodedSize, enc[:])
	m.Step(3)
}

// read decodes the instruction at index idx back out of the heap buffer.
func (b *blockBuf) read(m *core.Mutator, idx int) bytecode.Instr {
	b.flush(m)
	off := idx * bytecode.EncodedSize
	var enc [bytecode.EncodedSize]byte
	p := b.obj()
	for i := range enc {
		enc[i] = m.GetByte(p, off+i)
	}
	return bytecode.DecodeInstr(enc[:], 0)
}

// assemble decodes the finished buffer into a bytecode block.
func (b *blockBuf) assemble(m *core.Mutator) bytecode.Block {
	b.flush(m)
	code := make([]bytecode.Instr, b.n)
	for i := range code {
		code[i] = b.read(m, i)
	}
	m.Step(b.n)
	return bytecode.Block{Name: b.name, Code: code}
}
