package lang

import "strconv"

var keywords = map[string]TokKind{
	"let": TLet, "in": TIn, "fn": TFn, "fun": TFun, "and": TAnd, "if": TIf,
	"then": TThen, "else": TElse, "case": TCase, "of": TOf, "true": TTrue,
	"false": TFalse, "andalso": TAndalso, "orelse": TOrelse, "not": TNot,
	"ref": TRef, "mod": TMod,
}

// Lexer turns MiniML source text into tokens. Comments are ML style:
// (* ... *), nesting allowed.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer builds a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) pos() Pos { return Pos{l.line, l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpace() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '(' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			depth := 1
			for depth > 0 {
				if l.off >= len(l.src) {
					return errf(start, "unterminated comment")
				}
				switch {
				case l.peek() == '(' && l.peek2() == '*':
					l.advance()
					l.advance()
					depth++
				case l.peek() == '*' && l.peek2() == ')':
					l.advance()
					l.advance()
					depth--
				default:
					l.advance()
				}
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '\''
}

func isIdentRest(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpace(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TEOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isDigit(c):
		start := l.off
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		n, err := strconv.ParseInt(l.src[start:l.off], 10, 64)
		if err != nil {
			return Token{}, errf(pos, "integer literal out of range")
		}
		return Token{Kind: TInt, Pos: pos, Int: n}, nil

	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentRest(l.peek()) {
			l.advance()
		}
		word := l.src[start:l.off]
		if k, ok := keywords[word]; ok {
			return Token{Kind: k, Pos: pos}, nil
		}
		return Token{Kind: TIdent, Pos: pos, Text: word}, nil

	case c == '"':
		l.advance()
		var buf []byte
		for {
			if l.off >= len(l.src) {
				return Token{}, errf(pos, "unterminated string literal")
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if l.off >= len(l.src) {
					return Token{}, errf(pos, "unterminated escape")
				}
				esc := l.advance()
				switch esc {
				case 'n':
					buf = append(buf, '\n')
				case 't':
					buf = append(buf, '\t')
				case '\\', '"':
					buf = append(buf, esc)
				default:
					return Token{}, errf(pos, "unknown escape \\%c", esc)
				}
				continue
			}
			buf = append(buf, ch)
		}
		return Token{Kind: TString, Pos: pos, Text: string(buf)}, nil

	case c == '#':
		l.advance()
		if !isDigit(l.peek()) {
			return Token{}, errf(pos, "expected digit after #")
		}
		start := l.off
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		n, _ := strconv.ParseInt(l.src[start:l.off], 10, 32)
		if n < 1 {
			return Token{}, errf(pos, "projection index must be >= 1")
		}
		return Token{Kind: TProj, Pos: pos, Int: n}, nil
	}

	two := func(k TokKind) (Token, error) {
		l.advance()
		l.advance()
		return Token{Kind: k, Pos: pos}, nil
	}
	one := func(k TokKind) (Token, error) {
		l.advance()
		return Token{Kind: k, Pos: pos}, nil
	}
	switch c {
	case '(':
		return one(TLParen)
	case ')':
		return one(TRParen)
	case '[':
		return one(TLBrack)
	case ']':
		return one(TRBrack)
	case ',':
		return one(TComma)
	case ';':
		return one(TSemi)
	case '|':
		return one(TBar)
	case '+':
		return one(TPlus)
	case '-':
		return one(TMinus)
	case '*':
		return one(TStar)
	case '/':
		return one(TSlash)
	case '^':
		return one(TCaret)
	case '!':
		return one(TBang)
	case '~':
		return one(TTilde)
	case '_':
		return one(TUscore)
	case '=':
		if l.peek2() == '>' {
			return two(TArrow)
		}
		return one(TEq)
	case '<':
		switch l.peek2() {
		case '>':
			return two(TNe)
		case '=':
			return two(TLe)
		}
		return one(TLt)
	case '>':
		if l.peek2() == '=' {
			return two(TGe)
		}
		return one(TGt)
	case ':':
		switch l.peek2() {
		case ':':
			return two(TCons)
		case '=':
			return two(TAssign)
		}
		return Token{}, errf(pos, "unexpected ':'")
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

// LexAll tokenises the whole input (including the trailing TEOF).
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TEOF {
			return toks, nil
		}
	}
}
