package lang

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(t *testing.T, src string) []TokKind {
	t.Helper()
	toks, err := LexAll(src)
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	out := make([]TokKind, len(toks))
	for i, tok := range toks {
		out[i] = tok.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	got := kinds(t, `let x = 42 in x + y`)
	want := []TokKind{TLet, TIdent, TEq, TInt, TIn, TIdent, TPlus, TIdent, TEOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, err := LexAll("fun func iff in int andalso andalsoo")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TFun, TIdent, TIdent, TIn, TIdent, TAndalso, TIdent, TEOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("token %d: got %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexMultiCharOperators(t *testing.T) {
	got := kinds(t, `=> = <> <= < >= > :: := ! ~ ^`)
	want := []TokKind{TArrow, TEq, TNe, TLe, TLt, TGe, TGt, TCons, TAssign, TBang, TTilde, TCaret, TEOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexIntegers(t *testing.T) {
	toks, err := LexAll("0 7 1234567890")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int64{0, 7, 1234567890} {
		if toks[i].Kind != TInt || toks[i].Int != want {
			t.Fatalf("token %d: %+v, want int %d", i, toks[i], want)
		}
	}
	if _, err := LexAll("99999999999999999999999"); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := LexAll(`"hello" "a\nb" "tab\there" "q\"q" "back\\slash"`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"hello", "a\nb", "tab\there", `q"q`, `back\slash`}
	for i, w := range want {
		if toks[i].Kind != TString || toks[i].Text != w {
			t.Fatalf("token %d: %q, want %q", i, toks[i].Text, w)
		}
	}
	for _, bad := range []string{`"unterminated`, `"bad \q escape"`, `"trailing \`} {
		if _, err := LexAll(bad); err == nil {
			t.Fatalf("no error for %q", bad)
		}
	}
}

func TestLexProjections(t *testing.T) {
	toks, err := LexAll("#1 #23")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TProj || toks[0].Int != 1 {
		t.Fatalf("got %+v", toks[0])
	}
	if toks[1].Kind != TProj || toks[1].Int != 23 {
		t.Fatalf("got %+v", toks[1])
	}
	for _, bad := range []string{"#", "#x", "#0"} {
		if _, err := LexAll(bad); err == nil {
			t.Fatalf("no error for %q", bad)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := LexAll(`1 (* comment *) 2 (* nested (* inner *) outer *) 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 { // 3 ints + EOF
		t.Fatalf("got %d tokens", len(toks))
	}
	if _, err := LexAll("(* unterminated"); err == nil {
		t.Fatal("expected unterminated-comment error")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Fatalf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Fatalf("b at %v", toks[1].Pos)
	}
}

func TestLexBadInput(t *testing.T) {
	for _, bad := range []string{"$", "`", ": ", "@"} {
		if _, err := LexAll(bad); err == nil {
			t.Fatalf("no error for %q", bad)
		}
	}
}

// TestLexNeverPanics throws arbitrary bytes at the lexer.
func TestLexNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = LexAll(string(data)) // errors allowed, panics are not
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLexRoundTripIdentifiers: identifiers separated by spaces survive.
func TestLexRoundTripIdentifiers(t *testing.T) {
	f := func(parts []uint8) bool {
		var names []string
		for i, p := range parts {
			if i > 20 {
				break
			}
			names = append(names, string(rune('a'+p%26))+string(rune('a'+(p/26)%26)))
		}
		if len(names) == 0 {
			return true
		}
		toks, err := LexAll(strings.Join(names, " "))
		if err != nil {
			return false
		}
		if len(toks) != len(names)+1 {
			return false
		}
		for i, n := range names {
			// Keywords lex as keywords; skip those.
			if _, isKw := keywords[n]; isKw {
				continue
			}
			if toks[i].Kind != TIdent || toks[i].Text != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
