package lang

import (
	"repligc/internal/bytecode"
	"repligc/internal/core"
)

// Parser builds the heap-allocated AST. It is a conventional recursive-
// descent / precedence-climbing parser; the only unconventional part is the
// handle discipline: every subtree is pinned on the mutator's shadow stack
// until its parent node adopts it, and each parse function collapses its
// scratch handles before returning, so the live handle depth tracks the
// parser's recursion depth rather than the AST size.
type Parser struct {
	m    *core.Mutator
	syms *SymTab
	toks []Token
	pos  int

	// Literals collects string literal contents; TagStr nodes carry an
	// index into this pool.
	Literals []string
}

// Parse parses a whole program (one expression) and returns a handle to
// its AST root together with the string literal pool.
func Parse(m *core.Mutator, syms *SymTab, src string) (core.Handle, []string, error) {
	toks, err := LexAll(src)
	if err != nil {
		return 0, nil, err
	}
	p := &Parser{m: m, syms: syms, toks: toks}
	m.Step(len(toks)) // lexing work
	root, err := p.parseExpr()
	if err != nil {
		return 0, nil, err
	}
	if p.cur().Kind != TEOF {
		return 0, nil, errf(p.cur().Pos, "unexpected %s after expression", p.cur().Kind)
	}
	return root, p.Literals, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) expect(k TokKind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errf(t.Pos, "expected %s, found %s", k, t.Kind)
	}
	p.pos++
	return t, nil
}

func (p *Parser) literal(s string) int32 {
	for i, l := range p.Literals {
		if l == s {
			return int32(i)
		}
	}
	p.Literals = append(p.Literals, s)
	return int32(len(p.Literals) - 1)
}

// parseExpr handles the binding and control forms, then falls through to
// operator expressions.
func (p *Parser) parseExpr() (core.Handle, error) {
	switch t := p.cur(); t.Kind {
	case TLet:
		return p.parseLet()
	case TFun:
		return p.parseFun()
	case TFn:
		return p.parseFn()
	case TIf:
		return p.parseIf()
	case TCase:
		return p.parseCase()
	default:
		return p.parseAssign()
	}
}

// let x = e in body
func (p *Parser) parseLet() (core.Handle, error) {
	mark := p.m.HandleMark()
	t := p.next() // let
	name, err := p.expect(TIdent)
	if err != nil {
		return 0, err
	}
	if _, err := p.expect(TEq); err != nil {
		return 0, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return 0, err
	}
	if _, err := p.expect(TIn); err != nil {
		return 0, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return 0, err
	}
	sym := p.syms.Intern(name.Text)
	node := newNode(p.m, TagLet, t.Pos, imm(int64(sym)), sub(rhs), sub(body))
	return p.m.Collapse(mark, node), nil
}

// fun f x y = e [and g a = e2 ...] in body
func (p *Parser) parseFun() (core.Handle, error) {
	mark := p.m.HandleMark()
	t := p.next() // fun
	var defs []core.Handle
	for {
		d, err := p.parseFunDef()
		if err != nil {
			return 0, err
		}
		defs = append(defs, d)
		if p.cur().Kind != TAnd {
			break
		}
		p.next()
	}
	if _, err := p.expect(TIn); err != nil {
		return 0, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return 0, err
	}
	list := listFromHandles(p.m, defs)
	node := newNode(p.m, TagFun, t.Pos, sub(list), sub(body))
	return p.m.Collapse(mark, node), nil
}

// f x y z = e  →  FunDef(f, x, fn y => fn z => e)
func (p *Parser) parseFunDef() (core.Handle, error) {
	mark := p.m.HandleMark()
	name, err := p.expect(TIdent)
	if err != nil {
		return 0, err
	}
	var params []Token
	for p.cur().Kind == TIdent {
		params = append(params, p.next())
	}
	if len(params) == 0 {
		return 0, errf(name.Pos, "function %s needs at least one parameter", name.Text)
	}
	if _, err := p.expect(TEq); err != nil {
		return 0, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return 0, err
	}
	// Curry the extra parameters into nested fns, innermost first.
	for i := len(params) - 1; i >= 1; i-- {
		sym := p.syms.Intern(params[i].Text)
		body = newNode(p.m, TagFn, params[i].Pos, imm(int64(sym)), sub(body))
	}
	fsym := p.syms.Intern(name.Text)
	psym := p.syms.Intern(params[0].Text)
	node := newNode(p.m, TagFunDef, name.Pos, imm(int64(fsym)), imm(int64(psym)), sub(body))
	return p.m.Collapse(mark, node), nil
}

// fn x => e
func (p *Parser) parseFn() (core.Handle, error) {
	mark := p.m.HandleMark()
	t := p.next() // fn
	param, err := p.expect(TIdent)
	if err != nil {
		return 0, err
	}
	if _, err := p.expect(TArrow); err != nil {
		return 0, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return 0, err
	}
	sym := p.syms.Intern(param.Text)
	node := newNode(p.m, TagFn, t.Pos, imm(int64(sym)), sub(body))
	return p.m.Collapse(mark, node), nil
}

// if c then a else b
func (p *Parser) parseIf() (core.Handle, error) {
	mark := p.m.HandleMark()
	t := p.next() // if
	c, err := p.parseExpr()
	if err != nil {
		return 0, err
	}
	if _, err := p.expect(TThen); err != nil {
		return 0, err
	}
	a, err := p.parseExpr()
	if err != nil {
		return 0, err
	}
	if _, err := p.expect(TElse); err != nil {
		return 0, err
	}
	b, err := p.parseExpr()
	if err != nil {
		return 0, err
	}
	node := newNode(p.m, TagIf, t.Pos, sub(c), sub(a), sub(b))
	return p.m.Collapse(mark, node), nil
}

// case e of p1 => e1 | p2 => e2 ...
func (p *Parser) parseCase() (core.Handle, error) {
	mark := p.m.HandleMark()
	t := p.next() // case
	scrut, err := p.parseExpr()
	if err != nil {
		return 0, err
	}
	if _, err := p.expect(TOf); err != nil {
		return 0, err
	}
	var alts []core.Handle
	for {
		pat, err := p.parsePattern()
		if err != nil {
			return 0, err
		}
		if _, err := p.expect(TArrow); err != nil {
			return 0, err
		}
		body, err := p.parseExpr()
		if err != nil {
			return 0, err
		}
		alts = append(alts, newNode(p.m, TagAlt, t.Pos, sub(pat), sub(body)))
		if p.cur().Kind != TBar {
			break
		}
		p.next()
	}
	list := listFromHandles(p.m, alts)
	node := newNode(p.m, TagCase, t.Pos, sub(scrut), sub(list))
	return p.m.Collapse(mark, node), nil
}

// Patterns: pcons := patom ("::" pcons)?
func (p *Parser) parsePattern() (core.Handle, error) {
	mark := p.m.HandleMark()
	head, err := p.parsePatAtom()
	if err != nil {
		return 0, err
	}
	if p.cur().Kind == TCons {
		t := p.next()
		tail, err := p.parsePattern()
		if err != nil {
			return 0, err
		}
		node := newNode(p.m, TagPCons, t.Pos, sub(head), sub(tail))
		return p.m.Collapse(mark, node), nil
	}
	return p.m.Collapse(mark, head), nil
}

func (p *Parser) parsePatAtom() (core.Handle, error) {
	mark := p.m.HandleMark()
	t := p.next()
	switch t.Kind {
	case TUscore:
		return newNode(p.m, TagPWild, t.Pos), nil
	case TIdent:
		sym := p.syms.Intern(t.Text)
		return newNode(p.m, TagPVar, t.Pos, imm(int64(sym))), nil
	case TInt:
		return newNode(p.m, TagPInt, t.Pos, imm(t.Int)), nil
	case TTilde:
		n, err := p.expect(TInt)
		if err != nil {
			return 0, err
		}
		return newNode(p.m, TagPInt, t.Pos, imm(-n.Int)), nil
	case TTrue:
		return newNode(p.m, TagPBool, t.Pos, imm(1)), nil
	case TFalse:
		return newNode(p.m, TagPBool, t.Pos, imm(0)), nil
	case TLBrack:
		if p.cur().Kind == TRBrack {
			p.next()
			return newNode(p.m, TagPNil, t.Pos), nil
		}
		// [p1, p2, ...] desugars to p1 :: p2 :: ... :: [].
		var elems []core.Handle
		for {
			e, err := p.parsePattern()
			if err != nil {
				return 0, err
			}
			elems = append(elems, e)
			if p.cur().Kind != TComma {
				break
			}
			p.next()
		}
		if _, err := p.expect(TRBrack); err != nil {
			return 0, err
		}
		acc := newNode(p.m, TagPNil, t.Pos)
		for i := len(elems) - 1; i >= 0; i-- {
			acc = newNode(p.m, TagPCons, t.Pos, sub(elems[i]), sub(acc))
		}
		return p.m.Collapse(mark, acc), nil
	case TLParen:
		if p.cur().Kind == TRParen {
			p.next()
			return newNode(p.m, TagPUnit, t.Pos), nil
		}
		var elems []core.Handle
		for {
			e, err := p.parsePattern()
			if err != nil {
				return 0, err
			}
			elems = append(elems, e)
			if p.cur().Kind != TComma {
				break
			}
			p.next()
		}
		if _, err := p.expect(TRParen); err != nil {
			return 0, err
		}
		if len(elems) == 1 {
			return p.m.Collapse(mark, elems[0]), nil
		}
		list := listFromHandles(p.m, elems)
		node := newNode(p.m, TagPTuple, t.Pos, sub(list))
		return p.m.Collapse(mark, node), nil
	}
	return 0, errf(t.Pos, "expected pattern, found %s", t.Kind)
}

// Operator precedence: := (right, lowest), orelse, andalso, comparisons,
// :: (right), + - ^, * / mod, unary, application, atoms.

func (p *Parser) parseAssign() (core.Handle, error) {
	mark := p.m.HandleMark()
	lhs, err := p.parseOrelse()
	if err != nil {
		return 0, err
	}
	if p.cur().Kind == TAssign {
		t := p.next()
		rhs, err := p.parseAssign()
		if err != nil {
			return 0, err
		}
		node := newNode(p.m, TagAssign, t.Pos, sub(lhs), sub(rhs))
		return p.m.Collapse(mark, node), nil
	}
	return p.m.Collapse(mark, lhs), nil
}

func (p *Parser) parseOrelse() (core.Handle, error) {
	return p.parseLeftAssoc(
		func() (core.Handle, error) { return p.parseAndalso() },
		map[TokKind]Tag{TOrelse: TagOrelse})
}

func (p *Parser) parseAndalso() (core.Handle, error) {
	return p.parseLeftAssoc(
		func() (core.Handle, error) { return p.parseCmp() },
		map[TokKind]Tag{TAndalso: TagAndalso})
}

// parseLeftAssoc folds `sub (op sub)*` for short-circuit forms.
func (p *Parser) parseLeftAssoc(parse func() (core.Handle, error), ops map[TokKind]Tag) (core.Handle, error) {
	mark := p.m.HandleMark()
	lhs, err := parse()
	if err != nil {
		return 0, err
	}
	for {
		tag, ok := ops[p.cur().Kind]
		if !ok {
			return p.m.Collapse(mark, lhs), nil
		}
		t := p.next()
		rhs, err := parse()
		if err != nil {
			return 0, err
		}
		lhs = newNode(p.m, tag, t.Pos, sub(lhs), sub(rhs))
	}
}

var cmpOps = map[TokKind]bytecode.BinOp{
	TEq: bytecode.BinEq, TNe: bytecode.BinNe, TLt: bytecode.BinLt,
	TLe: bytecode.BinLe, TGt: bytecode.BinGt, TGe: bytecode.BinGe,
}

func (p *Parser) parseCmp() (core.Handle, error) {
	mark := p.m.HandleMark()
	lhs, err := p.parseCons()
	if err != nil {
		return 0, err
	}
	if op, ok := cmpOps[p.cur().Kind]; ok {
		t := p.next()
		rhs, err := p.parseCons()
		if err != nil {
			return 0, err
		}
		node := newNode(p.m, TagBin, t.Pos, imm(int64(op)), sub(lhs), sub(rhs))
		return p.m.Collapse(mark, node), nil
	}
	return p.m.Collapse(mark, lhs), nil
}

func (p *Parser) parseCons() (core.Handle, error) {
	mark := p.m.HandleMark()
	lhs, err := p.parseAdd()
	if err != nil {
		return 0, err
	}
	if p.cur().Kind == TCons {
		t := p.next()
		rhs, err := p.parseCons() // right associative
		if err != nil {
			return 0, err
		}
		node := newNode(p.m, TagBin, t.Pos, imm(int64(bytecode.BinCons)), sub(lhs), sub(rhs))
		return p.m.Collapse(mark, node), nil
	}
	return p.m.Collapse(mark, lhs), nil
}

var addOps = map[TokKind]bytecode.BinOp{
	TPlus: bytecode.BinAdd, TMinus: bytecode.BinSub, TCaret: bytecode.BinStrCat,
}

var mulOps = map[TokKind]bytecode.BinOp{
	TStar: bytecode.BinMul, TSlash: bytecode.BinDiv, TMod: bytecode.BinMod,
}

func (p *Parser) parseAdd() (core.Handle, error) { return p.parseBinLevel(addOps, p.parseMul) }
func (p *Parser) parseMul() (core.Handle, error) { return p.parseBinLevel(mulOps, p.parseUnary) }

func (p *Parser) parseBinLevel(ops map[TokKind]bytecode.BinOp, sublevel func() (core.Handle, error)) (core.Handle, error) {
	mark := p.m.HandleMark()
	lhs, err := sublevel()
	if err != nil {
		return 0, err
	}
	for {
		op, ok := ops[p.cur().Kind]
		if !ok {
			return p.m.Collapse(mark, lhs), nil
		}
		t := p.next()
		rhs, err := sublevel()
		if err != nil {
			return 0, err
		}
		lhs = newNode(p.m, TagBin, t.Pos, imm(int64(op)), sub(lhs), sub(rhs))
	}
}

func (p *Parser) parseUnary() (core.Handle, error) {
	mark := p.m.HandleMark()
	t := p.cur()
	var tag Tag
	switch t.Kind {
	case TNot:
		tag = TagNot
	case TTilde:
		tag = TagNeg
	case TBang:
		tag = TagDeref
	case TRef:
		tag = TagRef
	default:
		return p.parseApp()
	}
	p.next()
	e, err := p.parseUnary()
	if err != nil {
		return 0, err
	}
	node := newNode(p.m, tag, t.Pos, sub(e))
	return p.m.Collapse(mark, node), nil
}

// Application: atom atom* (left associative).
func (p *Parser) parseApp() (core.Handle, error) {
	mark := p.m.HandleMark()
	fn, err := p.parseAtom()
	if err != nil {
		return 0, err
	}
	for p.startsAtom() {
		arg, err := p.parseAtom()
		if err != nil {
			return 0, err
		}
		fn = newNode(p.m, TagApp, p.cur().Pos, sub(fn), sub(arg))
	}
	return p.m.Collapse(mark, fn), nil
}

func (p *Parser) startsAtom() bool {
	switch p.cur().Kind {
	case TInt, TString, TIdent, TTrue, TFalse, TLParen, TLBrack, TProj:
		return true
	}
	return false
}

func (p *Parser) parseAtom() (core.Handle, error) {
	mark := p.m.HandleMark()
	t := p.next()
	switch t.Kind {
	case TInt:
		return newNode(p.m, TagInt, t.Pos, imm(t.Int)), nil
	case TString:
		return newNode(p.m, TagStr, t.Pos, imm(int64(p.literal(t.Text)))), nil
	case TTrue:
		return newNode(p.m, TagBool, t.Pos, imm(1)), nil
	case TFalse:
		return newNode(p.m, TagBool, t.Pos, imm(0)), nil
	case TIdent:
		sym := p.syms.Intern(t.Text)
		return newNode(p.m, TagVar, t.Pos, imm(int64(sym))), nil
	case TProj:
		e, err := p.parseAtom()
		if err != nil {
			return 0, err
		}
		node := newNode(p.m, TagProj, t.Pos, imm(t.Int), sub(e))
		return p.m.Collapse(mark, node), nil
	case TLBrack:
		var elems []core.Handle
		if p.cur().Kind != TRBrack {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return 0, err
				}
				elems = append(elems, e)
				if p.cur().Kind != TComma {
					break
				}
				p.next()
			}
		}
		if _, err := p.expect(TRBrack); err != nil {
			return 0, err
		}
		list := listFromHandles(p.m, elems)
		node := newNode(p.m, TagList, t.Pos, sub(list))
		return p.m.Collapse(mark, node), nil
	case TLParen:
		if p.cur().Kind == TRParen {
			p.next()
			return newNode(p.m, TagUnit, t.Pos), nil
		}
		first, err := p.parseExpr()
		if err != nil {
			return 0, err
		}
		switch p.cur().Kind {
		case TComma: // tuple
			elems := []core.Handle{first}
			for p.cur().Kind == TComma {
				p.next()
				e, err := p.parseExpr()
				if err != nil {
					return 0, err
				}
				elems = append(elems, e)
			}
			if _, err := p.expect(TRParen); err != nil {
				return 0, err
			}
			list := listFromHandles(p.m, elems)
			node := newNode(p.m, TagTuple, t.Pos, sub(list))
			return p.m.Collapse(mark, node), nil
		case TSemi: // sequence
			elems := []core.Handle{first}
			for p.cur().Kind == TSemi {
				p.next()
				e, err := p.parseExpr()
				if err != nil {
					return 0, err
				}
				elems = append(elems, e)
			}
			if _, err := p.expect(TRParen); err != nil {
				return 0, err
			}
			list := listFromHandles(p.m, elems)
			node := newNode(p.m, TagSeq, t.Pos, sub(list))
			return p.m.Collapse(mark, node), nil
		default:
			if _, err := p.expect(TRParen); err != nil {
				return 0, err
			}
			return p.m.Collapse(mark, first), nil
		}
	}
	return 0, errf(t.Pos, "expected expression, found %s", t.Kind)
}
