package lang

import (
	"strings"
	"testing"

	"repligc/internal/core"
	"repligc/internal/heap"
	"repligc/internal/simtime"
	"repligc/internal/stopcopy"
)

// testMutator builds a mutator with a small collected heap so parsing and
// compilation themselves run through collections.
func testMutator() *core.Mutator {
	h := heap.New(heap.Config{NurseryBytes: 32 << 10, NurseryCapBytes: 1 << 20, OldSemiBytes: 16 << 20})
	m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), core.LogAllMutations)
	gc := stopcopy.New(h, stopcopy.Config{NurseryBytes: 32 << 10, MajorThresholdBytes: 256 << 10})
	m.AttachGC(gc)
	return m
}

// parseDump parses src and renders the AST.
func parseDump(t *testing.T, src string) string {
	t.Helper()
	m := testMutator()
	syms := NewSymTab(m)
	root, _, err := Parse(m, syms, src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return DumpNode(m, root, syms)
}

func TestParsePrecedence(t *testing.T) {
	cases := []struct{ src, want string }{
		{`1 + 2 * 3`, "(+ 1 (* 2 3))"},
		{`1 * 2 + 3`, "(+ (* 1 2) 3)"},
		{`1 - 2 - 3`, "(- (- 1 2) 3)"},
		{`1 < 2 + 3`, "(< 1 (+ 2 3))"},
		{`1 :: 2 :: xs`, "(:: 1 (:: 2 xs))"},
		{`a ^ b ^ c`, "(^ (^ a b) c)"},
		{`f x y`, "((f x) y)"},
		{`f x + g y`, "(+ (f x) (g y))"},
		{`not a andalso b`, "(andalso (not a) b)"},
		{`a andalso b orelse c`, "(orelse (andalso a b) c)"},
		{`r := 1 + 2`, "(:= r (+ 1 2))"},
		{`!r + 1`, "(+ (! r) 1)"},
		{`~x * 2`, "(* (~ x) 2)"},
		{`#1 p + #2 p`, "(+ (#1 p) (#2 p))"},
		{`x = 1 :: []`, "(= x (:: 1 (list )))"},
	}
	for _, c := range cases {
		if got := parseDump(t, c.src); got != c.want {
			t.Errorf("%s => %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseBindingForms(t *testing.T) {
	cases := []struct{ src, want string }{
		{`let x = 1 in x`, "(let x 1 x)"},
		{`fn x => x + 1`, "(fn x (+ x 1))"},
		{`fun f x = x in f`, "(fun [(f x x)] f)"},
		{`fun f x y = y in f`, "(fun [(f x (fn y y))] f)"},
		{`fun f x = g x and g y = f y in f`, "(fun [(f x (g x)) (g y (f y))] f)"},
		{`if a then b else c`, "(if a b c)"},
		{`(a; b; c)`, "(seq a b c)"},
		{`(1, 2)`, "(tuple 1 2)"},
		{`[1, 2, 3]`, "(list 1 2 3)"},
		{`[]`, "(list )"},
		{`()`, "()"},
		{`ref 5`, "(ref 5)"},
	}
	for _, c := range cases {
		if got := parseDump(t, c.src); got != c.want {
			t.Errorf("%s => %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseCase(t *testing.T) {
	got := parseDump(t, `case xs of [] => 0 | (a, b) :: _ => a | x => x`)
	want := "(case xs [(([]) => 0) (((:: (ptuple a b) _)) => a) ((x) => x)])"
	// The dump format for alternatives is (pat => body); normalise spaces.
	if !strings.Contains(got, "case xs") ||
		!strings.Contains(got, "[]") ||
		!strings.Contains(got, "ptuple a b") {
		t.Fatalf("got %s (reference %s)", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`let = 1 in x`,     // missing name
		`let x 1 in x`,     // missing =
		`let x = 1 x`,      // missing in
		`fn => x`,          // missing param
		`fn x x`,           // missing =>
		`if a then b`,      // missing else
		`case x of`,        // no alternatives
		`case x of 1 -> 2`, // wrong arrow
		`(1, 2`,            // unclosed paren
		`[1, 2`,            // unclosed bracket
		`fun f = 1 in f`,   // zero parameters
		`1 +`,              // dangling operator
		``,                 // empty program
		`1 2 3 extra )`,    // trailing junk
	}
	m := testMutator()
	for _, src := range cases {
		syms := NewSymTab(m)
		if _, _, err := Parse(m, syms, src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseErrorsCarryPositions(t *testing.T) {
	m := testMutator()
	syms := NewSymTab(m)
	_, _, err := Parse(m, syms, "let x =\n   in x")
	if err == nil {
		t.Fatal("expected error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if perr.Pos.Line != 2 {
		t.Fatalf("error position %v, want line 2", perr.Pos)
	}
}

func TestStringLiteralPool(t *testing.T) {
	m := testMutator()
	syms := NewSymTab(m)
	_, lits, err := Parse(m, syms, `("a" ^ "b" ^ "a" ^ "c")`)
	if err != nil {
		t.Fatal(err)
	}
	if len(lits) != 3 { // "a" deduplicated
		t.Fatalf("literal pool %v", lits)
	}
}

func TestSymTabInterning(t *testing.T) {
	m := testMutator()
	syms := NewSymTab(m)
	a := syms.Intern("foo")
	b := syms.Intern("bar")
	c := syms.Intern("foo")
	if a != c || a == b {
		t.Fatalf("interning broken: %d %d %d", a, b, c)
	}
	if syms.Name(a) != "foo" || syms.Name(b) != "bar" {
		t.Fatal("Name lookup broken")
	}
	if syms.Len() != 2 {
		t.Fatalf("Len = %d", syms.Len())
	}
	if syms.Name(999) != "?" {
		t.Fatal("out-of-range Name should be ?")
	}
}

// TestParserSurvivesCollections parses a large program with a tiny nursery
// so the heap AST is built across many collections, exercising the handle
// discipline.
func TestParserSurvivesCollections(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 200; i++ {
		b.WriteString("let v")
		b.WriteString(strings.Repeat("x", i%7+1))
		b.WriteString(" = (1, [2, 3], \"s\") in\n")
	}
	b.WriteString("0")
	m := testMutator()
	syms := NewSymTab(m)
	root, _, err := Parse(m, syms, b.String())
	if err != nil {
		t.Fatal(err)
	}
	// The dump walks the whole surviving AST, verifying it is intact.
	out := DumpNode(m, root, syms)
	if !strings.Contains(out, "let v") {
		t.Fatal("dump lost structure")
	}
	if gc := m.GC.Stats(); gc.MinorCollections == 0 {
		t.Fatal("test did not exercise collection")
	}
}
