package lang

import (
	"repligc/internal/bytecode"
	"repligc/internal/core"
)

// Prelude is MiniML's standard library: list, pair, string, arithmetic and
// concurrency helpers written in MiniML itself. CompileWithPrelude wraps a
// program in these definitions; the compiler's flat closure conversion
// ensures unused bindings cost nothing at run time beyond their one-time
// definition (each is a single closure allocation).
//
// The library triples as (a) user convenience, (b) a substantial body of
// idiomatic MiniML exercising every language feature, and (c) extra
// compiler workload for the Comp benchmark's corpus.
const Prelude = `
(* ---- arithmetic ---- *)
fun min a b = if a < b then a else b in
fun max a b = if a < b then b else a in
fun abs n = if n < 0 then ~1 * n else n in
fun gcd a b = if b = 0 then abs a else gcd b (a mod b) in
fun pow b e = if e = 0 then 1 else b * pow b (e - 1) in

(* ---- pairs ---- *)
fun fst p = #1 p in
fun snd p = #2 p in
fun swap p = (#2 p, #1 p) in

(* ---- lists ---- *)
fun null l = case l of [] => true | _ => false in
fun hd l = case l of x :: _ => x in
fun tl l = case l of _ :: r => r in
fun length l =
  let r = ref l in
  let n = ref 0 in
  fun go u = case !r of [] => !n | _ :: t => (r := t; n := !n + 1; go ()) in
  go () in
fun revapp a b = case a of [] => b | x :: r => revapp r (x :: b) in
fun rev l = revapp l [] in
fun append a b = case a of [] => b | x :: r => x :: append r b in
fun map f l = case l of [] => [] | x :: r => f x :: map f r in
fun appl f l = case l of [] => () | x :: r => (f x; appl f r) in
fun filterl p l =
  case l of
    [] => []
  | x :: r => if p x then x :: filterl p r else filterl p r in
fun foldl f acc l = case l of [] => acc | x :: r => foldl f (f acc x) r in
fun foldr f acc l = case l of [] => acc | x :: r => f x (foldr f acc r) in
fun nth l i = case l of x :: r => if i = 0 then x else nth r (i - 1) in
fun take n l =
  if n = 0 then []
  else case l of [] => [] | x :: r => x :: take (n - 1) r in
fun drop n l =
  if n = 0 then l
  else case l of [] => [] | _ :: r => drop (n - 1) r in
fun exists p l = case l of [] => false | x :: r => p x orelse exists p r in
fun all p l = case l of [] => true | x :: r => p x andalso all p r in
fun member x l = exists (fn y => y = x) l in
fun zip a b =
  case a of
    [] => []
  | x :: xs =>
      (case b of [] => [] | y :: ys => (x, y) :: zip xs ys) in
fun range lo hi = if lo >= hi then [] else lo :: range (lo + 1) hi in
fun suml l = foldl (fn a => fn x => a + x) 0 l in
fun tabulate n f =
  fun go i = if i = n then [] else f i :: go (i + 1) in
  go 0 in

(* ---- sorting (the prelude's own mergesort) ---- *)
fun msort cmp l =
  fun split l a b = case l of [] => (a, b) | x :: r => split r (x :: b) a in
  fun mergei a b acc =
    case a of
      [] => revapp acc b
    | x :: xs =>
        (case b of
           [] => revapp acc a
         | y :: ys =>
             if cmp x y then mergei xs b (x :: acc)
             else mergei a ys (y :: acc)) in
  fun go l =
    case l of
      [] => []
    | x :: r =>
        (case r of
           [] => l
         | _ => let p = split l [] [] in
                mergei (go (#1 p)) (go (#2 p)) []) in
  go l in

(* ---- strings ---- *)
fun strrep s n = if n = 0 then "" else s ^ strrep s (n - 1) in
fun joinl sep l =
  case l of
    [] => ""
  | x :: r => (case r of [] => x | _ => x ^ sep ^ joinl sep r) in
fun itoslist l = map (fn x => itos x) l in
fun println s = print (s ^ "\n") in

(* ---- refs and arrays ---- *)
fun incr r = r := !r + 1 in
fun decr r = r := !r - 1 in
fun afill a v =
  fun go i = if i = alen a then () else (aset a i v; go (i + 1)) in
  go 0 in
fun atolist a =
  fun go i = if i = alen a then [] else aget a i :: go (i + 1) in
  go 0 in
fun afromlist l =
  let a = array (length l) 0 in
  fun go i rest = case rest of [] => a | x :: r => (aset a i x; go (i + 1) r) in
  go 0 l in

(* ---- futures (threads + sync vars) ---- *)
fun future f = let sv = newsv () in (spawn (fn u => putsv sv (f ())); sv) in
fun force sv = takesv sv in
fun parmap f l = map (fn sv => force sv) (map (fn x => future (fn u => f x)) l) in
`

// CompileWithPrelude compiles src with the standard prelude in scope.
func CompileWithPrelude(m *core.Mutator, src string) (*bytecode.Program, error) {
	return Compile(m, Prelude+src)
}
