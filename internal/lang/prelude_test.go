package lang

import (
	"strings"
	"testing"

	"repligc/internal/vm"
)

func runPrelude(t *testing.T, src string) string {
	t.Helper()
	m := testMutator()
	prog, err := CompileWithPrelude(m, src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	machine := vm.New(m, prog)
	machine.MaxSteps = 100_000_000
	if err := machine.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return machine.Output.String()
}

func TestPreludeListFunctions(t *testing.T) {
	cases := []struct{ src, want string }{
		{`print (itos (length [5, 6, 7]))`, "3"},
		{`print (itos (suml (range 1 11)))`, "55"},
		{`print (itos (suml (map (fn x => x * x) [1, 2, 3])))`, "14"},
		{`print (itos (suml (filterl (fn x => x mod 2 = 0) (range 0 10))))`, "20"},
		{`print (itos (foldl (fn a => fn x => a * x) 1 [2, 3, 4]))`, "24"},
		{`print (itos (foldr (fn x => fn a => x - a) 0 [10, 4]))`, "6"},
		{`print (joinl "," (itoslist (rev [1, 2, 3])))`, "3,2,1"},
		{`print (joinl "-" (itoslist (append [1] [2, 3])))`, "1-2-3"},
		{`print (itos (nth [9, 8, 7] 1))`, "8"},
		{`print (joinl "" (itoslist (take 2 [4, 5, 6])))`, "45"},
		{`print (joinl "" (itoslist (drop 2 [4, 5, 6])))`, "6"},
		{`if member 3 [1, 2, 3] then print "y" else print "n"`, "y"},
		{`if all (fn x => x > 0) [1, 2] andalso not (exists (fn x => x > 5) [1, 2]) then print "ok" else print "no"`, "ok"},
		{`print (itos (suml (map (fn p => fst p * snd p) (zip [1, 2] [10, 20]))))`, "50"},
		{`print (itos (suml (tabulate 5 (fn i => i * i))))`, "30"},
	}
	for _, c := range cases {
		if got := runPrelude(t, c.src); got != c.want {
			t.Errorf("%s => %q, want %q", c.src, got, c.want)
		}
	}
}

func TestPreludeSort(t *testing.T) {
	got := runPrelude(t, `print (joinl "," (itoslist (msort (fn a => fn b => a <= b) [5, 1, 4, 2, 3])))`)
	if got != "1,2,3,4,5" {
		t.Fatalf("msort => %q", got)
	}
	desc := runPrelude(t, `print (joinl "," (itoslist (msort (fn a => fn b => a >= b) [5, 1, 4])))`)
	if desc != "5,4,1" {
		t.Fatalf("msort desc => %q", desc)
	}
}

func TestPreludeArithmetic(t *testing.T) {
	got := runPrelude(t, `print (itos (gcd 48 36 + pow 2 10 + min 3 5 + max 3 5 + abs (~7)))`)
	if got != "1051" { // 12 + 1024 + 3 + 5 + 7
		t.Fatalf("got %q", got)
	}
}

func TestPreludeArraysAndRefs(t *testing.T) {
	got := runPrelude(t, `
let a = afromlist [3, 1, 2] in
let c = ref 0 in
(afill a 9;
 incr c; incr c; decr c;
 print (itos (suml (atolist a) + !c)))`)
	if got != "28" { // 27 + 1
		t.Fatalf("got %q", got)
	}
}

func TestPreludeStrings(t *testing.T) {
	if got := runPrelude(t, `print (strrep "ab" 3)`); got != "ababab" {
		t.Fatalf("strrep => %q", got)
	}
	if got := runPrelude(t, `println "x"`); got != "x\n" {
		t.Fatalf("println => %q", got)
	}
}

func TestPreludeFutures(t *testing.T) {
	got := runPrelude(t, `print (itos (suml (parmap (fn x => x * x) (range 1 6))))`)
	if got != "55" {
		t.Fatalf("parmap => %q", got)
	}
}

func TestPreludeCompilesStandalone(t *testing.T) {
	m := testMutator()
	prog, err := CompileWithPrelude(m, `0`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Blocks) < 30 {
		t.Fatalf("prelude produced only %d blocks", len(prog.Blocks))
	}
	if !strings.Contains(prog.Disassemble(), "closure") {
		t.Fatal("prelude bytecode missing closures")
	}
}
