package lang

import (
	"repligc/internal/core"
)

// SymTab interns identifiers. Each symbol's name is also allocated as a
// string object on the simulated heap (kept live through a heap list), so
// the compiler's symbol handling contributes compiler-shaped allocation to
// the Comp workload, as SML/NJ's atom tables did.
type SymTab struct {
	m     *core.Mutator
	ids   map[string]int32
	names []string
	strs  core.Handle // heap list of heap strings
}

// NewSymTab builds an empty table over m. The table owns one handle slot
// for the lifetime of the compilation.
func NewSymTab(m *core.Mutator) *SymTab {
	return &SymTab{
		m:    m,
		ids:  make(map[string]int32),
		strs: listNil(m),
	}
}

// Intern returns the symbol id for name, creating it if needed.
func (s *SymTab) Intern(name string) int32 {
	if id, ok := s.ids[name]; ok {
		return id
	}
	id := int32(len(s.names))
	s.ids[name] = id
	s.names = append(s.names, name)

	mark := s.m.HandleMark()
	hs := s.m.PushHandle(s.m.MustAllocString([]byte(name)))
	cell := listCons(s.m, hs, s.strs)
	s.m.SetHandleVal(s.strs, s.m.HandleVal(cell))
	s.m.PopHandles(mark)
	return id
}

// Name returns the symbol's spelling.
func (s *SymTab) Name(id int32) string {
	if int(id) < len(s.names) {
		return s.names[id]
	}
	return "?"
}

// Len reports the number of interned symbols.
func (s *SymTab) Len() int { return len(s.names) }
