// Package lang implements the MiniML language: lexer, parser, and a
// compiler to the VM's bytecode. The compiler is simultaneously a substrate
// (it produces the programs the benchmarks run) and the paper's Comp
// workload: its abstract syntax trees, symbol strings, scope structures and
// emitted code buffers all live on the simulated heap, allocated through
// the mutator API, so that compiling MiniML source exercises the collector
// the way compiling SML exercised SML/NJ's — including the many byte-data
// mutations (code emission) whose logging cost the paper measures in §4.5.
package lang

import "fmt"

// TokKind classifies tokens.
type TokKind int

// Token kinds.
const (
	TEOF TokKind = iota
	TInt
	TString
	TIdent
	TProj // #N

	// Keywords.
	TLet
	TIn
	TFn
	TFun
	TAnd // "and" chains mutually recursive functions
	TIf
	TThen
	TElse
	TCase
	TOf
	TTrue
	TFalse
	TAndalso
	TOrelse
	TNot
	TRef
	TMod

	// Punctuation and operators.
	TLParen
	TRParen
	TLBrack
	TRBrack
	TComma
	TSemi
	TBar
	TArrow  // =>
	TEq     // =
	TNe     // <>
	TLt     // <
	TLe     // <=
	TGt     // >
	TGe     // >=
	TPlus   // +
	TMinus  // -
	TStar   // *
	TSlash  // /
	TCaret  // ^
	TCons   // ::
	TAssign // :=
	TBang   // !
	TTilde  // ~
	TUscore // _
)

var tokNames = map[TokKind]string{
	TEOF: "end of input", TInt: "integer", TString: "string", TIdent: "identifier",
	TProj: "#N", TLet: "let", TIn: "in", TFn: "fn", TFun: "fun", TAnd: "and",
	TIf: "if", TThen: "then", TElse: "else", TCase: "case", TOf: "of",
	TTrue: "true", TFalse: "false", TAndalso: "andalso", TOrelse: "orelse",
	TNot: "not", TRef: "ref", TMod: "mod", TLParen: "(", TRParen: ")",
	TLBrack: "[", TRBrack: "]", TComma: ",", TSemi: ";", TBar: "|",
	TArrow: "=>", TEq: "=", TNe: "<>", TLt: "<", TLe: "<=", TGt: ">",
	TGe: ">=", TPlus: "+", TMinus: "-", TStar: "*", TSlash: "/", TCaret: "^",
	TCons: "::", TAssign: ":=", TBang: "!", TTilde: "~", TUscore: "_",
}

// String names the token kind.
func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Token is one lexeme with its source position.
type Token struct {
	Kind TokKind
	Pos  Pos
	Text string // identifier or string-literal contents
	Int  int64  // integer value, or projection index for TProj
}

// Pos is a line/column source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a lexing, parsing or compilation error with position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
