// Package policy implements the paper's measurement methodology (§4.2):
// the real-time collector is run once to produce a script of exactly when
// it flipped and how much allocation space it returned, and that script is
// replayed for the other configurations, so that measured differences come
// from the collection mechanism rather than from policy decisions. Scripts
// are expressed in total-bytes-allocated coordinates, which are identical
// across configurations because the workloads are deterministic and cannot
// observe the collector.
package policy

// Event records one minor flip of the recording run.
type Event struct {
	// AllocMark is Mutator.BytesAllocated at the instant of the flip.
	AllocMark int64
	// MajorFlip reports whether a major collection completed in the same
	// pause as this minor flip.
	MajorFlip bool
}

// Script is the ordered flip history of one run.
type Script struct {
	Events []Event
}

// Record appends an event.
func (s *Script) Record(e Event) { s.Events = append(s.Events, e) }

// Len reports the number of recorded events.
func (s *Script) Len() int { return len(s.Events) }

// Cursor walks a script during replay.
type Cursor struct {
	s   *Script
	idx int
}

// NewCursor starts a replay of s.
func NewCursor(s *Script) *Cursor { return &Cursor{s: s} }

// Next consumes the next event. Exhausted scripts return ok=false; the
// replaying collector then falls back to its native policy (this happens
// only for trailing collections after the recorded run's last flip).
func (c *Cursor) Next() (Event, bool) {
	if c == nil || c.s == nil || c.idx >= len(c.s.Events) {
		return Event{}, false
	}
	e := c.s.Events[c.idx]
	c.idx++
	return e, true
}

// PeekMark reports the allocation mark of the upcoming event, or ok=false
// when the script is exhausted.
func (c *Cursor) PeekMark() (int64, bool) {
	if c == nil || c.s == nil || c.idx >= len(c.s.Events) {
		return 0, false
	}
	return c.s.Events[c.idx].AllocMark, true
}

// NurseryDelta reports the allocation room the recorded run granted between
// the flip at mark prev and the upcoming flip: the replayed nursery limit.
// ok=false when the script is exhausted.
func (c *Cursor) NurseryDelta(prev int64) (int64, bool) {
	mark, ok := c.PeekMark()
	if !ok || mark <= prev {
		return 0, ok && mark > prev
	}
	return mark - prev, true
}
