package policy

import (
	"testing"
	"testing/quick"
)

func TestCursorWalk(t *testing.T) {
	s := &Script{}
	s.Record(Event{AllocMark: 100})
	s.Record(Event{AllocMark: 250, MajorFlip: true})
	s.Record(Event{AllocMark: 400})
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}

	c := NewCursor(s)
	if m, ok := c.PeekMark(); !ok || m != 100 {
		t.Fatalf("peek = %d, %v", m, ok)
	}
	e, ok := c.Next()
	if !ok || e.AllocMark != 100 || e.MajorFlip {
		t.Fatalf("first = %+v", e)
	}
	e, ok = c.Next()
	if !ok || !e.MajorFlip {
		t.Fatalf("second = %+v", e)
	}
	if _, ok := c.Next(); !ok {
		t.Fatal("third missing")
	}
	if _, ok := c.Next(); ok {
		t.Fatal("cursor did not exhaust")
	}
	if _, ok := c.PeekMark(); ok {
		t.Fatal("peek after exhaustion")
	}
}

func TestNurseryDelta(t *testing.T) {
	s := &Script{Events: []Event{{AllocMark: 300}, {AllocMark: 520}}}
	c := NewCursor(s)
	if d, ok := c.NurseryDelta(0); !ok || d != 300 {
		t.Fatalf("delta = %d, %v", d, ok)
	}
	c.Next()
	if d, ok := c.NurseryDelta(300); !ok || d != 220 {
		t.Fatalf("delta = %d, %v", d, ok)
	}
	c.Next()
	if _, ok := c.NurseryDelta(520); ok {
		t.Fatal("delta on exhausted script")
	}
}

func TestNurseryDeltaNonIncreasingMark(t *testing.T) {
	s := &Script{Events: []Event{{AllocMark: 100}}}
	c := NewCursor(s)
	if d, ok := c.NurseryDelta(150); ok && d > 0 {
		t.Fatalf("delta for passed mark = %d, %v", d, ok)
	}
}

func TestNilCursorSafe(t *testing.T) {
	var c *Cursor
	if _, ok := c.Next(); ok {
		t.Fatal("nil cursor Next should be empty")
	}
	if _, ok := c.PeekMark(); ok {
		t.Fatal("nil cursor Peek should be empty")
	}
}

func TestCursorProperty(t *testing.T) {
	f := func(marks []uint16) bool {
		s := &Script{}
		var total int64
		for _, m := range marks {
			total += int64(m) + 1
			s.Record(Event{AllocMark: total})
		}
		c := NewCursor(s)
		prev := int64(0)
		n := 0
		for {
			d, ok := c.NurseryDelta(prev)
			if !ok {
				break
			}
			e, ok2 := c.Next()
			if !ok2 {
				return false
			}
			if prev+d != e.AllocMark {
				return false
			}
			prev = e.AllocMark
			n++
		}
		return n == len(marks)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
