// Package rng is the repository's one source of deterministic pseudo-random
// numbers: a seeded splitmix64 stream with stream splitting. Everything that
// needs randomness — fault-injection plans, workload arrival processes,
// request-profile draws — derives from one of these streams, never from
// math/rand or any other implicit global state, so every plan, trace and
// schedule is a pure function of its seed and replays bit-identically.
//
// Stream splitting gives independent substreams of one seed: Split(i) is a
// pure function of the parent's seed and i, so the arrival process, the
// object-size draws and the session draws of a workload each consume their
// own sequence and adding draws to one never perturbs the others.
package rng

// Stream is a splitmix64 sequence. The zero value is a valid stream seeded
// with 0; most callers use New.
type Stream struct {
	state uint64
}

// New returns a stream seeded with seed. The sequence it produces is
// identical to the classic splitmix64 recurrence starting from that state.
func New(seed uint64) *Stream { return &Stream{state: seed} }

// mix64 is the splitmix64 output function applied to z.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Next advances the stream and returns the next 64-bit value.
func (s *Stream) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix64(s.state)
}

// Split returns substream i of the stream's current state without advancing
// it. Split is a pure function of (state, i): the same parent seed always
// yields the same family of substreams, and draws from one substream never
// affect any other.
func (s *Stream) Split(i uint64) *Stream {
	// Decorrelate the child from the parent sequence by pushing the pair
	// (state, i) through the output function twice with distinct offsets.
	return &Stream{state: mix64(mix64(s.state+0x9e3779b97f4a7c15*(i+1)) + 0x6a09e667f3bcc909)}
}

// Uint64n returns a value in [0, n). It panics when n is zero. The modulo
// bias is below 2^-53 for every n the repository uses and is the same on
// every host, which is all determinism requires.
func (s *Stream) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	return s.Next() % n
}

// Intn returns a value in [0, n) as an int. It panics when n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Float64 returns a value in [0, 1) with 53 bits of precision.
func (s *Stream) Float64() float64 {
	return float64(s.Next()>>11) / (1 << 53)
}
