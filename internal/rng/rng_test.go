package rng_test

import (
	"testing"

	"repligc/internal/rng"
)

// TestPinnedSequence pins the stream to the splitmix64 reference values for
// seed 0 (Vigna's published test vector prefix) so the recurrence can never
// drift silently — faultinject's plans and every workload trace depend on it.
func TestPinnedSequence(t *testing.T) {
	s := rng.New(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
		0xf88bb8a8724c81ec, 0x1b39896a51a8749b,
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("Next() #%d = %#x, want %#x", i, got, w)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := rng.New(12345), rng.New(12345)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := rng.New(12346)
	same := 0
	a = rng.New(12345)
	for i := 0; i < 64; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds shared %d of 64 outputs", same)
	}
}

// TestSplitIndependence checks the substream contract: Split is a pure
// function of the parent's state (drawing from one substream never perturbs
// a sibling), distinct indices yield distinct streams, and a substream
// differs from its parent.
func TestSplitIndependence(t *testing.T) {
	parent := rng.New(99)
	s0 := parent.Split(0)
	first := s0.Next()

	// Draining a sibling must not change substream 0's sequence.
	s1 := parent.Split(1)
	for i := 0; i < 100; i++ {
		s1.Next()
	}
	if got := parent.Split(0).Next(); got != first {
		t.Fatalf("Split(0) after sibling draws = %#x, want %#x", got, first)
	}

	// Distinct indices and the parent itself must all disagree.
	seen := map[uint64]uint64{}
	for i := uint64(0); i < 64; i++ {
		v := parent.Split(i).Next()
		if prev, dup := seen[v]; dup {
			t.Fatalf("Split(%d) and Split(%d) produced the same first draw", prev, i)
		}
		seen[v] = i
	}
	if parent.Next() == first {
		t.Fatal("parent sequence collides with substream 0")
	}
}

func TestBoundedDraws(t *testing.T) {
	s := rng.New(7)
	for i := 0; i < 1000; i++ {
		if v := s.Uint64n(13); v >= 13 {
			t.Fatalf("Uint64n(13) = %d", v)
		}
		if v := s.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		if f := s.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v", f)
		}
	}
}
