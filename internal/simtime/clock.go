// Package simtime provides the deterministic simulated clock used by the
// whole system. Every unit of work — a VM instruction, an allocated word, a
// copied word, a processed mutation-log entry — is charged a fixed cost from
// a CostModel, so "time" measurements are exact functions of the work
// performed, independent of the host machine and of Go's own garbage
// collector. The default cost model is calibrated against the paper's
// DECstation 5000/200 measurements: a copying rate of about 2 MB/s, so that
// a copy budget of L = 100 KB corresponds to a 50 ms pause.
package simtime

import "fmt"

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Milliseconds reports d as a floating-point number of milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Seconds reports d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the duration with a unit chosen by magnitude.
func (d Duration) String() string {
	switch {
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.1fus", float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%.1fms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// Account identifies a bucket of charged time, so that total execution time
// can be decomposed into the components of the paper's figure 7.
type Account int

// The accounts of figure 7 ("Components of Execution Time").
const (
	AcctMutator     Account = iota // ordinary mutator instructions
	AcctAlloc                      // allocation (bump pointer + header init)
	AcctLogWrite                   // mutator-side mutation logging
	AcctHeaderCheck                // getheader forwarding checks
	AcctMinorCopy                  // copying/scanning during minor collections
	AcctMajorCopy                  // copying/scanning during major collections
	AcctLogScan                    // generational scan of pointer mutations
	AcctLogReapply                 // reapplying mutations to replicas (CR)
	AcctFlip                       // atomically updating roots at a flip (CF)
	AcctRootScan                   // scanning mutator roots
	AcctCheckpoint                 // incremental snapshot copying and WAL persistence
	AcctIdle                       // open-loop serving: the server waiting for the next arrival
	numAccounts
)

var acctNames = [numAccounts]string{
	"mutator", "alloc", "log-write", "header-check",
	"minor-copy", "major-copy", "log-scan", "log-reapply", "flip", "root-scan",
	"checkpoint", "idle",
}

// String returns the short name of the account.
func (a Account) String() string {
	if a < 0 || a >= numAccounts {
		return fmt.Sprintf("account(%d)", int(a))
	}
	return acctNames[a]
}

// NumAccounts is the number of distinct charge accounts.
const NumAccounts = int(numAccounts)

// Clock accrues simulated time. It is not safe for concurrent use; the
// simulation is single-threaded by design (the paper's collector interleaves
// with the mutator rather than running in parallel). Multi-mutator groups
// share one clock as a serial total-work timeline and project overlap
// separately (core.Group); the goroutine-backed parallel mode gives each
// member its own clock so this constraint holds per goroutine.
type Clock struct {
	now      Duration
	byAcct   [numAccounts]Duration
	inPause  bool
	pauseAcc Duration // time accrued during the current pause
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Now reports the current simulated time.
func (c *Clock) Now() Duration { return c.now }

// Charge advances the clock by d, attributing the time to account a.
// Negative charges are ignored.
func (c *Clock) Charge(a Account, d Duration) {
	if d <= 0 {
		return
	}
	c.now += d
	c.byAcct[a] += d
	if c.inPause {
		c.pauseAcc += d
	}
}

// AccountTotal reports the total time charged to account a.
func (c *Clock) AccountTotal(a Account) Duration { return c.byAcct[a] }

// Breakdown returns a copy of the per-account totals.
func (c *Clock) Breakdown() [NumAccounts]Duration {
	var out [NumAccounts]Duration
	copy(out[:], c.byAcct[:])
	return out
}

// BeginPause marks the start of a garbage-collection pause. Charges made
// until EndPause accumulate into the pause duration. Pauses do not nest.
func (c *Clock) BeginPause() {
	if c.inPause {
		panic("simtime: BeginPause while already paused")
	}
	c.inPause = true
	c.pauseAcc = 0
}

// EndPause marks the end of the current pause and returns its duration.
func (c *Clock) EndPause() Duration {
	if !c.inPause {
		panic("simtime: EndPause without BeginPause")
	}
	c.inPause = false
	return c.pauseAcc
}

// InPause reports whether the clock is currently inside a pause.
func (c *Clock) InPause() bool { return c.inPause }

// PauseElapsed reports the time accrued so far in the current pause.
// Incremental collectors compare it against their per-pause budget (the
// paper's copy limit L expressed in time).
func (c *Clock) PauseElapsed() Duration {
	if !c.inPause {
		return 0
	}
	return c.pauseAcc
}
