package simtime

// CostModel fixes the simulated cost of each primitive unit of work. All
// costs are per-unit Durations. The zero value is a valid (free) model, but
// almost all callers want Default1993, which is calibrated to the paper's
// hardware: a 25 MHz DECstation 5000/200 whose collector copied data at
// roughly 2 MB/s, so that copying the L = 100 KB budget takes 50 ms.
type CostModel struct {
	// Mutator-side costs.
	Instruction Duration // one VM instruction or one unit of compiler work
	AllocWord   Duration // per word allocated (bump + initialisation)
	LogWrite    Duration // appending one entry to the mutation log
	HeaderCheck Duration // one getheader forwarding test

	// Collector-side costs.
	CopyWord   Duration // copying one word into to-space
	ScanWord   Duration // scanning one to-space word
	LogScan    Duration // examining one log entry (generational scan)
	LogReapply Duration // reapplying one logged mutation to a replica
	RootUpdate Duration // scanning or atomically updating one root
	FlipEntry  Duration // re-pointing one logged location during a flip
}

// Default1993 reproduces the paper's measured rates.
//
// Copying: 2 MB/s total for copy+scan. Each live word is copied once and
// scanned once, so with 8-byte words each of CopyWord and ScanWord gets
// half the 4 us/word budget. Log costs are sized so that the repeated-log-
// processing experiment of table 2 lands near the paper's CR percentages,
// and mutator instruction cost approximates a 25 MHz machine executing a
// few cycles per bytecode.
func Default1993() CostModel {
	return CostModel{
		Instruction: 80 * Nanosecond,
		AllocWord:   120 * Nanosecond,
		LogWrite:    400 * Nanosecond,
		HeaderCheck: 40 * Nanosecond,
		CopyWord:    2 * Microsecond,
		ScanWord:    2 * Microsecond,
		LogScan:     1 * Microsecond,
		LogReapply:  4 * Microsecond,
		RootUpdate:  1 * Microsecond,
		FlipEntry:   4 * Microsecond,
	}
}

// BytesPerWord is the accounting size of a heap word. The simulated heap
// stores 64-bit words; all of the paper's parameters (N, O, L, A) are given
// in bytes and converted with this constant.
const BytesPerWord = 8

// CopyRateBytesPerSec reports the model's effective copying throughput in
// bytes per second (copy+scan combined), the quantity the paper measures at
// about 2 MB/s.
func (m CostModel) CopyRateBytesPerSec() float64 {
	perWord := m.CopyWord + m.ScanWord
	if perWord <= 0 {
		return 0
	}
	return float64(BytesPerWord) * float64(Second) / float64(perWord)
}
