package simtime

// CostModel fixes the simulated cost of each primitive unit of work. All
// costs are per-unit Durations. The zero value is a valid (free) model, but
// almost all callers want Default1993, which is calibrated to the paper's
// hardware: a 25 MHz DECstation 5000/200 whose collector copied data at
// roughly 2 MB/s, so that copying the L = 100 KB budget takes 50 ms.
type CostModel struct {
	// Mutator-side costs.
	Instruction Duration // one VM instruction or one unit of compiler work
	AllocWord   Duration // per word allocated (bump + initialisation)
	LogWrite    Duration // appending one entry to the mutation log
	HeaderCheck Duration // one getheader forwarding test

	// Collector-side costs.
	CopyWord   Duration // copying one word into to-space
	ScanWord   Duration // scanning one to-space word
	LogScan    Duration // examining one log entry (generational scan)
	LogReapply Duration // reapplying one logged mutation to a replica
	RootUpdate Duration // scanning or atomically updating one root
	FlipEntry  Duration // re-pointing one logged location during a flip
}

// Default1993 reproduces the paper's measured rates.
//
// Copying: 2 MB/s total for copy+scan. Each live word is copied once and
// scanned once, so with 8-byte words each of CopyWord and ScanWord gets
// half the 4 us/word budget. Log costs are sized so that the repeated-log-
// processing experiment of table 2 lands near the paper's CR percentages,
// and mutator instruction cost approximates a 25 MHz machine executing a
// few cycles per bytecode.
func Default1993() CostModel {
	return CostModel{
		Instruction: 80 * Nanosecond,
		AllocWord:   120 * Nanosecond,
		LogWrite:    400 * Nanosecond,
		HeaderCheck: 40 * Nanosecond,
		CopyWord:    2 * Microsecond,
		ScanWord:    2 * Microsecond,
		LogScan:     1 * Microsecond,
		LogReapply:  4 * Microsecond,
		RootUpdate:  1 * Microsecond,
		FlipEntry:   4 * Microsecond,
	}
}

// BytesPerWord is the accounting size of a heap word. The simulated heap
// stores 64-bit words; all of the paper's parameters (N, O, L, A) are given
// in bytes and converted with this constant.
const BytesPerWord = 8

// CopyRateBytesPerSec reports the model's effective copying throughput in
// bytes per second (copy+scan combined), the quantity the paper measures at
// about 2 MB/s. It deliberately excludes log-reapply and root costs; see
// ReplayRateBytesPerSec for the mutation-log side.
func (m CostModel) CopyRateBytesPerSec() float64 {
	perWord := m.CopyWord + m.ScanWord
	if perWord <= 0 {
		return 0
	}
	return float64(BytesPerWord) * float64(Second) / float64(perWord)
}

// ReplayRateBytesPerSec reports the model's mutation-log replay throughput
// in bytes per second: every reapplied entry re-copies one word of mutated
// payload into the replica after being examined by the log scan, so the
// per-word cost is LogScan + LogReapply. This is the rate that governs how
// fast a collection can catch up with a mutation-heavy phase — a quantity
// CopyRateBytesPerSec ignores entirely.
func (m CostModel) ReplayRateBytesPerSec() float64 {
	perEntry := m.LogScan + m.LogReapply
	if perEntry <= 0 {
		return 0
	}
	return float64(BytesPerWord) * float64(Second) / float64(perEntry)
}

// FittedNs carries per-primitive costs in (possibly fractional, possibly
// noisy) nanoseconds, the shape a least-squares calibration produces.
type FittedNs struct {
	InstructionNs float64 `json:"instruction_ns"`
	AllocWordNs   float64 `json:"alloc_word_ns"`
	LogWriteNs    float64 `json:"log_write_ns"`
	HeaderCheckNs float64 `json:"header_check_ns"`
	CopyWordNs    float64 `json:"copy_word_ns"`
	ScanWordNs    float64 `json:"scan_word_ns"`
	LogScanNs     float64 `json:"log_scan_ns"`
	LogReapplyNs  float64 `json:"log_reapply_ns"`
	RootUpdateNs  float64 `json:"root_update_ns"`
	FlipEntryNs   float64 `json:"flip_entry_ns"`
}

// Ns expresses m in FittedNs form, the inverse of Fitted; Fitted(m.Ns())
// round-trips any model whose costs are whole nanoseconds.
func (m CostModel) Ns() FittedNs {
	return FittedNs{
		InstructionNs: float64(m.Instruction),
		AllocWordNs:   float64(m.AllocWord),
		LogWriteNs:    float64(m.LogWrite),
		HeaderCheckNs: float64(m.HeaderCheck),
		CopyWordNs:    float64(m.CopyWord),
		ScanWordNs:    float64(m.ScanWord),
		LogScanNs:     float64(m.LogScan),
		LogReapplyNs:  float64(m.LogReapply),
		RootUpdateNs:  float64(m.RootUpdate),
		FlipEntryNs:   float64(m.FlipEntry),
	}
}

// Fitted builds a runnable CostModel from calibrated per-primitive costs.
// Each cost is rounded to the nearest whole nanosecond and clamped at zero:
// a least-squares fit over collinear counters can produce small negative
// coefficients, and a negative cost would run the simulated clock backwards.
func Fitted(f FittedNs) CostModel {
	d := func(ns float64) Duration {
		if ns <= 0 {
			return 0
		}
		return Duration(ns + 0.5)
	}
	return CostModel{
		Instruction: d(f.InstructionNs),
		AllocWord:   d(f.AllocWordNs),
		LogWrite:    d(f.LogWriteNs),
		HeaderCheck: d(f.HeaderCheckNs),
		CopyWord:    d(f.CopyWordNs),
		ScanWord:    d(f.ScanWordNs),
		LogScan:     d(f.LogScanNs),
		LogReapply:  d(f.LogReapplyNs),
		RootUpdate:  d(f.RootUpdateNs),
		FlipEntry:   d(f.FlipEntryNs),
	}
}
