package simtime

import (
	"math"
	"testing"
)

func TestCopyRateMatchesPaper(t *testing.T) {
	// The paper's DECstation copies at about 2 MB/s (copy+scan combined);
	// Default1993 encodes exactly that: 8 bytes per 4 us.
	got := Default1993().CopyRateBytesPerSec()
	if want := 2e6; math.Abs(got-want) > 1 {
		t.Fatalf("CopyRateBytesPerSec = %v, want %v", got, want)
	}
}

func TestReplayRate(t *testing.T) {
	// One reapplied entry costs LogScan + LogReapply = 5 us and moves one
	// 8-byte word, so the default replay rate is 1.6 MB/s.
	got := Default1993().ReplayRateBytesPerSec()
	if want := 1.6e6; math.Abs(got-want) > 1 {
		t.Fatalf("ReplayRateBytesPerSec = %v, want %v", got, want)
	}
	if r := (CostModel{}).ReplayRateBytesPerSec(); r != 0 {
		t.Fatalf("zero model replay rate = %v, want 0", r)
	}
}

func TestFittedRoundTrip(t *testing.T) {
	def := Default1993()
	if got := Fitted(def.Ns()); got != def {
		t.Fatalf("Fitted(Default1993.Ns()) = %+v, want %+v", got, def)
	}
}

func TestFittedRoundsAndClamps(t *testing.T) {
	m := Fitted(FittedNs{
		InstructionNs: 79.6,  // rounds up
		AllocWordNs:   120.4, // rounds down
		CopyWordNs:    -3.2,  // least-squares artifact: clamps to zero
	})
	if m.Instruction != 80*Nanosecond {
		t.Fatalf("Instruction = %v, want 80ns", m.Instruction)
	}
	if m.AllocWord != 120*Nanosecond {
		t.Fatalf("AllocWord = %v, want 120ns", m.AllocWord)
	}
	if m.CopyWord != 0 {
		t.Fatalf("CopyWord = %v, want 0 (clamped)", m.CopyWord)
	}
}

func TestFittedModelIsRunnable(t *testing.T) {
	// A fitted model must be usable exactly like Default1993: charging it
	// advances the clock by count x cost with no surprises.
	m := Fitted(FittedNs{CopyWordNs: 250, ScanWordNs: 250})
	c := NewClock()
	c.Charge(AcctMinorCopy, 10*m.CopyWord)
	if c.Now() != 2500*Nanosecond {
		t.Fatalf("clock = %v after 10 fitted copy words, want 2.5us", c.Now())
	}
	if got := m.CopyRateBytesPerSec(); math.Abs(got-16e6) > 1 {
		t.Fatalf("fitted copy rate = %v, want 16e6", got)
	}
}
