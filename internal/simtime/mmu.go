package simtime

// Minimum mutator utilization over recorded pauses. The trace subsystem
// computes MMU curves from its own event stream; this is the pause-list
// form, used where only a Recorder exists — in particular for the
// multi-mutator group timeline, whose all-stopped intervals are synthesized
// by core.Group rather than traced.

import "sort"

// MMUFromPauses reports the minimum mutator utilization over every window
// of width w inside [0, total]: the smallest fraction of any such window
// that was not covered by a pause. Pauses must be non-overlapping; they are
// sorted by start time internally. Degenerate inputs (no pauses, or a
// non-positive window or total) report full utilization.
func MMUFromPauses(pauses []Pause, total, w Duration) float64 {
	if len(pauses) == 0 || w <= 0 || total <= 0 {
		return 1
	}
	if w > total {
		w = total
	}
	ps := make([]Pause, len(pauses))
	copy(ps, pauses)
	sort.Slice(ps, func(i, j int) bool { return ps[i].At < ps[j].At })

	// cum[i] is the total pause time strictly before pause i.
	cum := make([]Duration, len(ps)+1)
	for i, p := range ps {
		cum[i+1] = cum[i] + p.Length
	}
	// pausedBefore(t) is the total pause time in [0, t).
	pausedBefore := func(t Duration) Duration {
		i := sort.Search(len(ps), func(i int) bool { return ps[i].At >= t })
		d := cum[i]
		if i > 0 {
			if end := ps[i-1].At + ps[i-1].Length; end > t {
				d -= end - t
			}
		}
		return d
	}

	// The minimum is attained with a window edge on a pause edge: candidate
	// starts are each pause's start and each pause's end minus w, plus the
	// interval ends.
	starts := make([]Duration, 0, 2*len(ps)+2)
	starts = append(starts, 0, total-w)
	for _, p := range ps {
		starts = append(starts, p.At, p.At+p.Length-w)
	}
	min := 1.0
	for _, s := range starts {
		if s < 0 {
			s = 0
		}
		if s+w > total {
			s = total - w
		}
		stopped := pausedBefore(s+w) - pausedBefore(s)
		if stopped > w {
			stopped = w
		}
		if u := float64(w-stopped) / float64(w); u < min {
			min = u
		}
	}
	return min
}
