package simtime

import (
	"math"
	"testing"
)

// oldPercentileSorted is the pre-fix nearest-rank rule, reproduced verbatim
// for differential comparison: it approximated ceil(p·n/100) by adding a
// 0.999999 epsilon before truncating.
func oldPercentileSorted(sorted []Duration, p float64) Duration {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(p/100*float64(len(sorted))+0.999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// wantRank is the specification: the 1-based nearest rank is the exact
// ceiling of p·n/100 with p on the micro-percent grid, clamped to [1, n].
func wantRank(n int, p float64) int {
	pm := int64(math.Round(p * microPercent))
	const denom = 100 * microPercent
	rank := (pm*int64(n) + denom - 1) / denom
	if rank < 1 {
		rank = 1
	}
	if rank > int64(n) {
		rank = int64(n)
	}
	return int(rank)
}

// seq builds [1, 2, ..., n] so the returned percentile IS its 1-based rank.
func seq(n int) []Duration {
	ds := make([]Duration, n)
	for i := range ds {
		ds[i] = Duration(i + 1)
	}
	return ds
}

// TestPercentileNearestRankExact pins the fix across the boundary cases the
// old epsilon rule got wrong or nearly wrong: p·n/100 exactly integral
// (no round-up may happen), n = 1, p just above 0, and p whose product's
// fractional part falls inside the old rule's (0, 1e-6) blind spot.
func TestPercentileNearestRankExact(t *testing.T) {
	cases := []struct {
		name string
		n    int
		p    float64
		want int // 1-based rank
	}{
		// p·n/100 exactly integral: rank must be the product itself.
		{"exact-median-even", 2, 50, 1},
		{"exact-median-100", 100, 50, 50},
		{"exact-p95-n100", 100, 95, 95},
		{"exact-p25-n4", 4, 25, 1},
		{"exact-p75-n4", 4, 75, 3},
		// Just above an integral product: rank must step up by one.
		{"above-median-even", 2, 50.000001, 2},
		{"above-p95-n100", 100, 95.000001, 96},
		// n = 1: every percentile is the sole element.
		{"single-p0", 1, 0, 1},
		{"single-p50", 1, 50, 1},
		{"single-p999", 1, 99.9, 1},
		{"single-p100", 1, 100, 1},
		// p just above zero: nearest rank is the minimum.
		{"tiny-p", 1000, 0.000001, 1},
		{"tiny-p-smaller-n", 10, 0.000001, 1},
		// Decimal quantiles must land exactly despite float representation.
		{"p999-n1000", 1000, 99.9, 999},
		{"p999-n10000", 10000, 99.9, 9990},
		{"p501-n1000", 1000, 50.1, 501},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if w := wantRank(c.n, c.p); w != c.want {
				t.Fatalf("test-case inconsistency: spec rank %d, case wants %d", w, c.want)
			}
			got := Percentile(seq(c.n), c.p)
			if int(got) != c.want {
				t.Fatalf("Percentile(n=%d, p=%v) = rank %d, want %d", c.n, c.p, int(got), c.want)
			}
		})
	}
}

// TestPercentileCeilingProperty checks the defining inequality of the
// nearest-rank ceiling for a sweep of (n, p): with r the returned 1-based
// rank, (r-1)·100 < p·n ≤ r·100 must hold (in exact micro-percent
// arithmetic), except where clamping to [1, n] applies.
func TestPercentileCeilingProperty(t *testing.T) {
	ps := []float64{0.000001, 0.1, 1, 5, 24.9999, 25, 25.000001, 33.3, 50, 66.6, 75, 90, 95, 99, 99.9, 99.99, 99.999999}
	for n := 1; n <= 137; n++ {
		ds := seq(n)
		for _, p := range ps {
			r := int64(Percentile(ds, p))
			pm := int64(math.Round(p * microPercent))
			const denom = int64(100 * microPercent)
			prod := pm * int64(n)
			switch {
			case prod <= 0: // clamped up to rank 1
				if r != 1 {
					t.Fatalf("n=%d p=%v: rank %d, want clamp to 1", n, p, r)
				}
			case prod > denom*int64(n): // cannot happen for p < 100
				t.Fatalf("n=%d p=%v: product overflowed the range", n, p)
			default:
				if !((r-1)*denom < prod && prod <= r*denom) {
					t.Fatalf("n=%d p=%v: rank %d violates (r-1)·denom < p·n ≤ r·denom", n, p, r)
				}
			}
		}
	}
}

// TestPercentileDiffersFromOldOnlyWhereOldWasWrong sweeps (n, p) pairs and
// requires: wherever old and new disagree, the old result violates the
// nearest-rank specification and the new one satisfies it — i.e. the fix
// changed exactly the wrong answers.
func TestPercentileDiffersFromOldOnlyWhereOldWasWrong(t *testing.T) {
	ps := []float64{
		0.000001, 1, 10, 25, 33.333333, 50, 50.000001, 66.666667, 75,
		90, 95, 95.000001, 99, 99.9, 99.99, 99.999999,
	}
	diverged := 0
	for n := 1; n <= 256; n++ {
		ds := seq(n)
		for _, p := range ps {
			oldR := int(oldPercentileSorted(ds, p))
			newR := int(Percentile(ds, p))
			want := wantRank(n, p)
			if newR != want {
				t.Fatalf("n=%d p=%v: new rank %d, spec %d", n, p, newR, want)
			}
			if oldR != newR {
				diverged++
				if oldR == want {
					t.Fatalf("n=%d p=%v: old rank %d was correct but new gives %d", n, p, oldR, newR)
				}
			}
		}
	}
	// The blind spot is real: the sweep includes p values (50.000001 with
	// n=2, 95.000001 with n=100, ...) whose product's fractional part falls
	// in (0, 1e-6), where the old epsilon under-ranked by one.
	if diverged == 0 {
		t.Fatal("sweep found no divergence; boundary cases lost their teeth")
	}
}

// TestPercentileStandardQuantilesUnchanged pins that the fix does not move
// any of the quantiles the committed benchmark artifacts report (0, 50, 95,
// 99, 99.9, 100) for representative pause-count sizes.
func TestPercentileStandardQuantilesUnchanged(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 10, 64, 100, 1000, 4096} {
		ds := seq(n)
		for _, p := range []float64{0, 50, 95, 99, 99.9, 100} {
			oldR, newR := oldPercentileSorted(ds, p), Percentile(ds, p)
			if oldR != newR {
				t.Fatalf("n=%d p=%v: standard quantile moved old=%d new=%d", n, p, int(oldR), int(newR))
			}
		}
	}
}

// TestPercentilesBatchMatchesSingle pins the batch API to the single-call
// rule after the fix.
func TestPercentilesBatchMatchesSingle(t *testing.T) {
	ds := []Duration{9, 1, 8, 2, 7, 3, 6, 4, 5}
	ps := []float64{0, 10, 50, 90, 99.9, 100}
	batch := Percentiles(ds, ps...)
	for i, p := range ps {
		if single := Percentile(ds, p); batch[i] != single {
			t.Fatalf("p=%v: batch %d != single %d", p, batch[i], single)
		}
	}
}
