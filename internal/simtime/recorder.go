package simtime

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// PauseKind classifies a recorded collector pause.
type PauseKind int

// Pause kinds.
const (
	PauseMinor PauseKind = iota // a minor collection (or one increment of one)
	PauseMajor                  // a non-incremental major collection
	PauseOther                  // anything else (forced collections, flips)
)

var pauseKindNames = [...]string{"minor", "major", "other"}

// String returns the pause kind's name.
func (k PauseKind) String() string {
	if int(k) < len(pauseKindNames) {
		return pauseKindNames[k]
	}
	return fmt.Sprintf("pausekind(%d)", int(k))
}

// Pause is one recorded stop-the-mutator interval.
type Pause struct {
	At       Duration // simulated time at the start of the pause
	Length   Duration
	Kind     PauseKind
	CopiedB  int64 // bytes copied during the pause
	LogProcN int64 // log entries processed during the pause

	// Sync is the portion of the pause that requires every mutator to be
	// stopped — root scanning, flips and checkpoint commits. The rest of
	// the pause is replication work (copying, log replay) that the paper's
	// collector may overlap with mutators that did not trigger it. Single-
	// mutator collectors may leave it zero; multi-mutator accounting
	// (core.Group) treats a zero-Sync pause conservatively when overlap is
	// disabled by stopping everyone for the whole pause.
	Sync Duration
}

// Recorder accumulates the pauses of one benchmark run.
type Recorder struct {
	Pauses []Pause
}

// Record appends a pause.
func (r *Recorder) Record(p Pause) { r.Pauses = append(r.Pauses, p) }

// Durations returns the lengths of all pauses, in recording order.
func (r *Recorder) Durations() []Duration {
	out := make([]Duration, len(r.Pauses))
	for i, p := range r.Pauses {
		out[i] = p.Length
	}
	return out
}

// CSV renders the recorded pauses as comma-separated rows (start time and
// length in simulated nanoseconds, kind, bytes copied, log entries
// processed) for offline analysis and plotting.
func (r *Recorder) CSV() string {
	var b strings.Builder
	b.WriteString("at_ns,length_ns,kind,copied_bytes,log_entries\n")
	for _, p := range r.Pauses {
		fmt.Fprintf(&b, "%d,%d,%s,%d,%d\n", int64(p.At), int64(p.Length), p.Kind, p.CopiedB, p.LogProcN)
	}
	return b.String()
}

// Percentile returns the p-th percentile (0 <= p <= 100) of pause lengths
// using nearest-rank on a sorted copy. It returns 0 when no pauses were
// recorded.
func (r *Recorder) Percentile(p float64) Duration {
	return Percentile(r.Durations(), p)
}

// Max returns the longest recorded pause (0 when none).
func (r *Recorder) Max() Duration {
	var m Duration
	for _, p := range r.Pauses {
		if p.Length > m {
			m = p.Length
		}
	}
	return m
}

// Total returns the summed length of all pauses.
func (r *Recorder) Total() Duration {
	var t Duration
	for _, p := range r.Pauses {
		t += p.Length
	}
	return t
}

// Percentile returns the p-th percentile of ds by nearest rank. The input
// is not modified. It returns 0 for an empty slice.
func Percentile(ds []Duration, p float64) Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return percentileSorted(sorted, p)
}

// Percentiles returns the nearest-rank percentile of ds for each p in ps,
// sorting once however many quantiles are asked for. Each result is exactly
// what Percentile(ds, p) returns; batch callers (the trace summary, the perf
// report, the serving engine's latency tails) use this form so a four-or-
// five-quantile digest costs one sort instead of one per quantile. An empty
// input yields all zeros.
func Percentiles(ds []Duration, ps ...float64) []Duration {
	out := make([]Duration, len(ps))
	if len(ds) == 0 {
		return out
	}
	sorted := make([]Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

// microPercent is the resolution at which percentile arguments are
// interpreted: p is rounded to the nearest millionth of a percent before
// ranking. Quantiles are requested as decimal literals (95, 99.9), and the
// micro-percent grid represents every such literal exactly — float64 alone
// does not (float64(99.9) is 99.90000000000000568...), so ranking on the
// raw float would shift exact-boundary ranks by one.
const microPercent = 1_000_000

// percentileSorted is the shared nearest-rank rule over an already-sorted,
// non-empty slice: the p-th percentile is element ceil(p·n/100) (1-based),
// computed with exact integer arithmetic at micro-percent resolution. The
// previous implementation approximated the ceiling by adding a 0.999999
// epsilon before truncating, which under-ranked by one whenever the true
// fractional part of p·n/100 landed in (0, 1e-6) — a misreported tail, not
// a tie-break.
func percentileSorted(sorted []Duration, p float64) Duration {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	const denom = 100 * microPercent // micro-percents in the whole range
	pm := int64(math.Round(p * microPercent))
	rank := (pm*int64(len(sorted)) + denom - 1) / denom // exact ceil
	if rank < 1 {
		rank = 1 // p rounded to zero micro-percents: nearest rank is the minimum
	}
	if rank > int64(len(sorted)) {
		rank = int64(len(sorted))
	}
	return sorted[rank-1]
}

// Histogram buckets pause durations into fixed-width bins, mirroring the
// paper's figures 5 and 6.
type Histogram struct {
	BinWidth Duration
	Min      Duration // durations below Min are dropped
	Max      Duration // durations at or above Max land in the overflow bin
	Counts   []int
	Overflow int
}

// NewHistogram builds a histogram covering [min, max) with the given bin
// width. It panics when the parameters are inconsistent.
func NewHistogram(binWidth, min, max Duration) *Histogram {
	if binWidth <= 0 || max <= min {
		panic("simtime: invalid histogram bounds")
	}
	n := int((max - min + binWidth - 1) / binWidth)
	return &Histogram{BinWidth: binWidth, Min: min, Max: max, Counts: make([]int, n)}
}

// Add records one duration.
func (h *Histogram) Add(d Duration) {
	if d < h.Min {
		return
	}
	if d >= h.Max {
		h.Overflow++
		return
	}
	h.Counts[(d-h.Min)/h.BinWidth]++
}

// AddAll records every duration in ds.
func (h *Histogram) AddAll(ds []Duration) {
	for _, d := range ds {
		h.Add(d)
	}
}

// Render writes the histogram as fixed-width text rows: bin start, count,
// and a proportional bar. Empty leading/trailing bins are kept so series
// from different runs line up.
func (h *Histogram) Render(label string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", label)
	peak := h.Overflow
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		peak = 1
	}
	for i, c := range h.Counts {
		lo := h.Min + Duration(i)*h.BinWidth
		bar := strings.Repeat("#", c*50/peak)
		fmt.Fprintf(&b, "  %8s %6d %s\n", lo.String(), c, bar)
	}
	if h.Overflow > 0 {
		fmt.Fprintf(&b, "  %7s+ %6d %s\n", h.Max.String(), h.Overflow,
			strings.Repeat("#", h.Overflow*50/peak))
	}
	return b.String()
}
