package simtime

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClockChargeAccumulates(t *testing.T) {
	c := NewClock()
	c.Charge(AcctMutator, 10*Millisecond)
	c.Charge(AcctAlloc, 5*Millisecond)
	if got := c.Now(); got != 15*Millisecond {
		t.Fatalf("Now = %v, want 15ms", got)
	}
	if got := c.AccountTotal(AcctMutator); got != 10*Millisecond {
		t.Fatalf("mutator account = %v, want 10ms", got)
	}
	if got := c.AccountTotal(AcctAlloc); got != 5*Millisecond {
		t.Fatalf("alloc account = %v, want 5ms", got)
	}
}

func TestClockIgnoresNonPositiveCharges(t *testing.T) {
	c := NewClock()
	c.Charge(AcctMutator, 0)
	c.Charge(AcctMutator, -5)
	if c.Now() != 0 {
		t.Fatalf("Now = %v, want 0", c.Now())
	}
}

func TestClockPauseAccrual(t *testing.T) {
	c := NewClock()
	c.Charge(AcctMutator, Second)
	c.BeginPause()
	if !c.InPause() {
		t.Fatal("InPause = false inside pause")
	}
	c.Charge(AcctMinorCopy, 30*Millisecond)
	if got := c.PauseElapsed(); got != 30*Millisecond {
		t.Fatalf("PauseElapsed = %v, want 30ms", got)
	}
	c.Charge(AcctFlip, 4*Millisecond)
	if got := c.EndPause(); got != 34*Millisecond {
		t.Fatalf("pause length = %v, want 34ms", got)
	}
	if c.InPause() {
		t.Fatal("InPause = true after EndPause")
	}
	if got := c.PauseElapsed(); got != 0 {
		t.Fatalf("PauseElapsed outside pause = %v, want 0", got)
	}
}

func TestClockPausePanics(t *testing.T) {
	c := NewClock()
	mustPanic(t, func() { c.EndPause() })
	c.BeginPause()
	mustPanic(t, func() { c.BeginPause() })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{1500 * Nanosecond, "1.5us"},
		{50 * Millisecond, "50.0ms"},
		{2 * Second, "2.00s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestDefault1993Calibration(t *testing.T) {
	m := Default1993()
	rate := m.CopyRateBytesPerSec()
	// The paper measures a copying rate of about 2 MB/s, so that the
	// L = 100 KB budget corresponds to a 50 ms pause.
	if rate < 1.8e6 || rate > 2.2e6 {
		t.Fatalf("copy rate = %.0f B/s, want about 2e6", rate)
	}
	perWord := m.CopyWord + m.ScanWord
	budget := Duration(100<<10/BytesPerWord) * perWord
	if budget < 45*Millisecond || budget > 55*Millisecond {
		t.Fatalf("100KB budget = %v, want about 50ms", budget)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	ds := []Duration{50, 10, 40, 20, 30}
	if got := Percentile(ds, 50); got != 30 {
		t.Fatalf("p50 = %v, want 30", got)
	}
	if got := Percentile(ds, 99); got != 50 {
		t.Fatalf("p99 = %v, want 50", got)
	}
	if got := Percentile(ds, 0); got != 10 {
		t.Fatalf("p0 = %v, want 10", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty p50 = %v, want 0", got)
	}
	// Input must not be reordered.
	if ds[0] != 50 || ds[4] != 30 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		ds := make([]Duration, len(raw))
		var max, min Duration = 0, 1 << 62
		for i, r := range raw {
			ds[i] = Duration(r)
			if ds[i] > max {
				max = ds[i]
			}
			if ds[i] < min {
				min = ds[i]
			}
		}
		p50 := Percentile(ds, 50)
		p99 := Percentile(ds, 99)
		return p50 >= min && p50 <= p99 && p99 <= max && Percentile(ds, 100) == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecorder(t *testing.T) {
	var r Recorder
	r.Record(Pause{Length: 10 * Millisecond, Kind: PauseMinor})
	r.Record(Pause{Length: 90 * Millisecond, Kind: PauseMajor})
	r.Record(Pause{Length: 20 * Millisecond, Kind: PauseMinor})
	if got := r.Max(); got != 90*Millisecond {
		t.Fatalf("Max = %v", got)
	}
	if got := r.Total(); got != 120*Millisecond {
		t.Fatalf("Total = %v", got)
	}
	if got := r.Percentile(50); got != 20*Millisecond {
		t.Fatalf("p50 = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10*Millisecond, 0, 100*Millisecond)
	h.AddAll([]Duration{5 * Millisecond, 15 * Millisecond, 15 * Millisecond, 250 * Millisecond})
	if h.Counts[0] != 1 || h.Counts[1] != 2 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Overflow != 1 {
		t.Fatalf("overflow = %d", h.Overflow)
	}
	out := h.Render("pauses")
	if !strings.Contains(out, "pauses") || !strings.Contains(out, "#") {
		t.Fatalf("render output missing content:\n%s", out)
	}
}

func TestHistogramInvalid(t *testing.T) {
	mustPanic(t, func() { NewHistogram(0, 0, Second) })
	mustPanic(t, func() { NewHistogram(Millisecond, Second, Second) })
}

func TestAccountString(t *testing.T) {
	if AcctFlip.String() != "flip" {
		t.Fatalf("AcctFlip = %q", AcctFlip.String())
	}
	if Account(99).String() == "" {
		t.Fatal("out-of-range account has empty name")
	}
}

func TestRecorderCSV(t *testing.T) {
	var r Recorder
	r.Record(Pause{At: 5 * Millisecond, Length: 2 * Millisecond, Kind: PauseMinor, CopiedB: 100, LogProcN: 3})
	r.Record(Pause{At: 9 * Millisecond, Length: Millisecond, Kind: PauseMajor})
	out := r.CSV()
	want := "at_ns,length_ns,kind,copied_bytes,log_entries\n" +
		"5000000,2000000,minor,100,3\n" +
		"9000000,1000000,major,0,0\n"
	if out != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", out, want)
	}
}

// TestPercentilesMatchesPercentile pins the batch helper to the single-
// quantile rule at every small n where nearest-rank is easiest to get wrong:
// for n < 100 the p99 rank is the last element, and p99 vs p99.9 only
// separate once n reaches the hundreds.
func TestPercentilesMatchesPercentile(t *testing.T) {
	for n := 1; n <= 12; n++ {
		// Descending input: Percentiles must sort, not trust order.
		ds := make([]Duration, n)
		for i := range ds {
			ds[i] = Duration((n - i) * 10)
		}
		ps := []float64{0, 50, 95, 99, 99.9, 100}
		got := Percentiles(ds, ps...)
		if len(got) != len(ps) {
			t.Fatalf("n=%d: got %d results for %d quantiles", n, len(got), len(ps))
		}
		for i, p := range ps {
			if want := Percentile(ds, p); got[i] != want {
				t.Errorf("n=%d p%.1f: Percentiles = %v, Percentile = %v", n, p, got[i], want)
			}
		}
		// With n < 100 observations both extreme quantiles are the max.
		if got[3] != Duration(n*10) || got[4] != Duration(n*10) {
			t.Errorf("n=%d: p99 %v / p99.9 %v, want the max %v", n, got[3], got[4], Duration(n*10))
		}
	}
	// At n = 1000 the two tails must separate: nearest rank 990 vs 999.
	ds := make([]Duration, 1000)
	for i := range ds {
		ds[i] = Duration(i + 1)
	}
	got := Percentiles(ds, 99, 99.9)
	if got[0] != 990 || got[1] != 999 {
		t.Errorf("n=1000: p99 %v p99.9 %v, want 990 and 999", got[0], got[1])
	}
	if out := Percentiles(nil, 50, 99); out[0] != 0 || out[1] != 0 {
		t.Errorf("empty input: got %v, want zeros", out)
	}
}
