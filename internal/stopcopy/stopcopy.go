// Package stopcopy is the baseline: a classical two-generation
// stop-and-copy collector in the style of the original SML/NJ collector the
// paper compares against. It forwards destructively while the mutator is
// stopped, consumes the storelist as its remembered set, and updates
// referring slots immediately — there is no replica consistency machinery,
// no reapply cost and no separate flip traversal. It is implemented
// independently of the replication collector so the two can be checked
// against each other (differential testing) as well as benchmarked.
package stopcopy

import (
	"repligc/internal/core"
	"repligc/internal/heap"
	"repligc/internal/policy"
	"repligc/internal/simtime"
	"repligc/internal/trace"
)

// Config parameterises the baseline collector.
type Config struct {
	// NurseryBytes is the paper's N.
	NurseryBytes int64
	// MajorThresholdBytes is the paper's O; zero disables major
	// collections.
	MajorThresholdBytes int64
	// Replay, when non-nil, drives collection points from a recorded
	// script instead of N and O (the paper's §4.2 methodology).
	Replay *policy.Script
}

// Collector is the stop-and-copy baseline.
type Collector struct {
	cfg   Config
	h     *heap.Heap
	stats core.GCStats
	rec   simtime.Recorder

	//gclint:pauseonly the log cursor only advances while the mutator is stopped; the barrier appends ahead of it
	logCursor          int64
	promotedSinceMajor int64
	//gclint:pauseonly Cheney cursor; stop-and-copy scans run to completion inside a single pause
	scan uint64 // shared Cheney cursor for the current collection

	replay *policy.Cursor
	//gclint:pauseonly replay decisions are consumed at pause time, when the next collection's kind is chosen
	forcedMajor bool

	// Degradation-ladder state. promoHighWater is the largest volume one
	// minor collection has promoted; when old-space headroom falls below
	// the nursery contents plus this reserve, the next pause runs a major
	// regardless of the threshold O. wedged records a mid-collection
	// overflow: stop-and-copy forwarding is destructive and a partially
	// copied collection cannot be resumed, so the collector fails every
	// subsequent request with the same typed error rather than corrupt
	// the heap (which stays auditable — originals keep their payloads and
	// forwarding words are legal mid-collection).
	//gclint:pauseonly the high-water mark is raised at the end of a minor collection, before the mutator resumes
	promoHighWater int64
	//gclint:pauseonly wedging is detected mid-collection; once set it is only read (every request fails fast)
	wedged *core.OOMError

	tr *trace.Recorder // nil when tracing is disabled (every emit is a nil check)
}

// New builds the baseline collector over h.
func New(h *heap.Heap, cfg Config) *Collector {
	c := &Collector{cfg: cfg, h: h}
	h.Nursery.SetLimitBytes(cfg.NurseryBytes)
	if cfg.Replay != nil {
		c.replay = policy.NewCursor(cfg.Replay)
		if d, ok := policy.NewCursor(cfg.Replay).NurseryDelta(0); ok {
			h.Nursery.SetLimitBytes(d)
		}
	}
	return c
}

// Name implements core.Collector.
func (c *Collector) Name() string { return "stop-copy" }

// Stats implements core.Collector.
func (c *Collector) Stats() *core.GCStats { return &c.stats }

// Pauses implements core.Collector.
func (c *Collector) Pauses() *simtime.Recorder { return &c.rec }

// SetTrace attaches an event recorder; nil detaches it.
func (c *Collector) SetTrace(r *trace.Recorder) { c.tr = r }

// phase opens a trace phase and returns its closer, stamped with the
// simulated clock. Free when tracing is off: a nil recorder records
// nothing.
func (c *Collector) phase(m *core.Mutator, p trace.Phase) func() {
	c.tr.PhaseBegin(m.Clock.Now(), p)
	return func() { c.tr.PhaseEnd(m.Clock.Now(), p) }
}

// AfterAlloc implements core.Collector; collection points are steered by
// nursery limits, so nothing happens here.
func (c *Collector) AfterAlloc(m *core.Mutator) {}

// NoteOldAlloc implements core.OldAllocNoter for oversized allocations.
func (c *Collector) NoteOldAlloc(p heap.Value, hdr heap.Header) {
	c.promotedSinceMajor += hdr.SizeBytes()
}

// FinishCycles implements core.Collector; stop-and-copy collections always
// complete within their pause, so there is nothing to finish — unless a
// prior collection wedged, which stays reportable here.
func (c *Collector) FinishCycles(m *core.Mutator) error {
	if c.wedged != nil {
		return c.wedged
	}
	return nil
}

// CollectForAlloc implements core.Collector: one stop-the-world pause
// containing a minor collection and, when the promotion threshold (or the
// replay script) says so, a major collection. Minor+major happen under a
// single pause, which is exactly what produces the long baseline pauses of
// the paper's figure 6.
func (c *Collector) CollectForAlloc(m *core.Mutator, needWords int) error {
	return c.pause(m, false)
}

// CollectEmergency implements core.EmergencyCollector: a stop-the-world
// pause with a forced major collection, compacting the old generation so a
// failed direct allocation can retry.
func (c *Collector) CollectEmergency(m *core.Mutator) error {
	c.stats.EmergencyCollections++
	return c.pause(m, true)
}

// pause runs one stop-the-world collection. The pause is charged and
// recorded even when it ends in a typed exhaustion error, so degraded runs
// report honest long pauses.
//
//gclint:pauseentry Clock.BeginPause stops the (single) mutator before any collection work; CollectForAlloc/CollectEmergency both funnel through here
func (c *Collector) pause(m *core.Mutator, emergency bool) error {
	if c.wedged != nil {
		return c.wedged
	}
	m.Clock.BeginPause()
	at := m.Clock.Now()
	c.tr.PauseBegin(at)
	c.tr.Counters(at, m.LogWrites, m.BarrierFastSkips, m.BarrierDirtySkips)
	// The pause consumes the mutation log (it is this collector's
	// remembered set), so barrier coalescing stamps must expire here —
	// same contract as the replicating collector (heap/stamp.go).
	c.h.BeginLogEpoch()
	start := c.stats.TotalBytesCopied()
	logStart := c.stats.LogScanned
	c.stats.PauseCount++

	// Degradation ladder, headroom reservation: when the old space cannot
	// absorb a worst-case minor collection (the whole nursery) plus the
	// recorded high-water mark as reserve, run a major this pause even if
	// the threshold O has not been crossed.
	free := int64(c.h.OldFrom().FreeWords()) * heap.BytesPerWord
	lowHeadroom := free < c.h.Nursery.UsedBytes()+c.promoHighWater
	if lowHeadroom && !emergency {
		c.stats.EmergencyCollections++
		c.stats.ForcedCompletion++
	}
	if emergency || lowHeadroom {
		c.tr.PhaseMark(m.Clock.Now(), trace.PhaseEmergency)
	}

	kind := simtime.PauseMinor
	err := c.minorCollect(m)

	if err == nil {
		major := c.cfg.MajorThresholdBytes > 0 && c.promotedSinceMajor >= c.cfg.MajorThresholdBytes
		if c.replay != nil {
			major = c.forcedMajor
		}
		if emergency || lowHeadroom {
			major = true
		}
		if major {
			kind = simtime.PauseMajor
			err = c.majorCollect(m)
		}
	}
	if err != nil {
		c.wedged, _ = core.AsOOM(err)
	}

	length := m.Clock.EndPause()
	// Destructive forwarding leaves no from-space originals for other
	// mutators to run against: the whole pause is stop-the-world.
	c.rec.Record(simtime.Pause{
		At: at, Length: length, Kind: kind, Sync: length,
		CopiedB:  c.stats.TotalBytesCopied() - start,
		LogProcN: c.stats.LogScanned - logStart,
	})
	c.tr.PauseEnd(m.Clock.Now(), c.stats.TotalBytesCopied()-start,
		c.stats.LogScanned-logStart, int64(kind))
	return err
}

// forward destructively copies the object at v into dst (unless already
// forwarded) and returns the to-space address. Overflow surfaces as a
// typed *core.OOMError with v left unforwarded.
func (c *Collector) forward(m *core.Mutator, v heap.Value, dst *heap.Space, acct simtime.Account, copied *int64) (heap.Value, error) {
	h := c.h
	if h.IsForwarded(v) {
		return h.ForwardAddr(v), nil
	}
	hdr := heap.Header(h.RawHeader(v))
	replica, ok := h.CopyObject(v, dst)
	if !ok {
		res := core.OOMPromotion
		if dst == h.OldTo() {
			res = core.OOMToSpace
		}
		return heap.Nil, &core.OOMError{
			Resource:  res,
			Collector: c.Name(),
			Space:     dst.Name,
			Request:   hdr.SizeBytes(),
			Free:      int64(dst.FreeWords()) * heap.BytesPerWord,
			Limit:     dst.LimitBytes(),
			Degraded:  true, // stop-and-copy has no smaller increment to fall back to
		}
	}
	h.SetForward(v, replica)
	*copied += hdr.SizeBytes()
	m.Clock.Charge(acct, simtime.Duration(hdr.SizeWords())*m.Cost.CopyWord)
	return replica, nil
}

// minorCollect copies live nursery data into the old generation. On a
// typed overflow error the nursery is NOT reset: every original keeps its
// payload and the heap stays auditable (the collector wedges — see pause).
func (c *Collector) minorCollect(m *core.Mutator) error {
	h := c.h
	from := &h.Nursery
	to := h.OldFrom()
	c.scan = to.Next
	copiedBefore := c.stats.BytesCopiedMinor

	// Remembered set: logged old-space slots holding nursery pointers are
	// updated in place as they are processed — no flip traversal.
	endPhase := c.phase(m, trace.PhaseLogReplay)
	for c.logCursor < m.Log.Len() {
		e := m.Log.At(c.logCursor)
		c.logCursor++
		c.stats.LogScanned++
		m.Clock.Charge(simtime.AcctLogScan, m.Cost.LogScan)
		if e.Byte || !to.Contains(e.Obj) {
			continue
		}
		v := h.Load(e.Obj, int(e.Slot))
		if from.Contains(v) {
			nv, err := c.forward(m, v, to, simtime.AcctMinorCopy, &c.stats.BytesCopiedMinor)
			if err != nil {
				endPhase()
				return err
			}
			h.Store(e.Obj, int(e.Slot), nv)
		}
	}
	endPhase()

	// Roots.
	var visitErr error
	endPhase = c.phase(m, trace.PhaseRootScan)
	n := m.Roots.Visit(func(slot *heap.Value) {
		if visitErr != nil {
			return
		}
		v := *slot
		if from.Contains(v) {
			nv, err := c.forward(m, v, to, simtime.AcctMinorCopy, &c.stats.BytesCopiedMinor)
			if err != nil {
				visitErr = err
				return
			}
			*slot = nv
		}
	})
	c.stats.RootSlotUpdates += int64(n)
	m.Clock.Charge(simtime.AcctRootScan, simtime.Duration(n)*m.Cost.RootUpdate)
	endPhase()
	if visitErr != nil {
		return visitErr
	}

	// Cheney scan of the promotion region.
	endPhase = c.phase(m, trace.PhaseCopy)
	err := c.cheney(m, from, to, simtime.AcctMinorCopy, &c.stats.BytesCopiedMinor)
	endPhase()
	if err != nil {
		return err
	}

	promoted := c.stats.BytesCopiedMinor - copiedBefore
	c.promotedSinceMajor += promoted
	if promoted > c.promoHighWater {
		c.promoHighWater = promoted // feeds the headroom reservation
	}

	h.Nursery.Reset()
	c.stats.MinorCollections++
	c.stats.FlipCopied = append(c.stats.FlipCopied, c.stats.TotalBytesCopied())
	m.Log.TrimTo(m.Log.Len())
	c.logCursor = m.Log.Len()
	c.setNextNurseryLimit(m)
	return nil
}

// cheney scans to-space from c.scan, forwarding every from-space referent.
func (c *Collector) cheney(m *core.Mutator, from, to *heap.Space, acct simtime.Account, copied *int64) error {
	h := c.h
	for c.scan < to.Next {
		w := h.Arena[c.scan]
		if !heap.IsHeader(w) {
			//gclint:allow panicpath -- invariant: to-space holds replicas, which are never forwarded
			panic("stopcopy: scan hit forwarded object in to-space")
		}
		hdr := heap.Header(w)
		p := heap.Value((c.scan + 1) << 3)
		m.Clock.Charge(acct, simtime.Duration(hdr.SizeWords())*m.Cost.ScanWord)
		if hdr.Kind().HasPointers() {
			for i := 0; i < hdr.Len(); i++ {
				v := h.Load(p, i)
				if from.Contains(v) {
					nv, err := c.forward(m, v, to, acct, copied)
					if err != nil {
						return err
					}
					h.Store(p, i, nv)
				}
			}
		}
		c.scan += uint64(hdr.SizeWords())
	}
	return nil
}

// majorCollect copies all live old-generation data into the reserve
// semispace and swaps. It runs right after a minor collection, so the
// nursery is empty and the mutator roots are the only root set.
func (c *Collector) majorCollect(m *core.Mutator) error {
	h := c.h
	if h.Nursery.UsedWords() != 0 {
		//gclint:allow panicpath -- invariant: majors only run right after a minor emptied the nursery
		panic("stopcopy: major collection with non-empty nursery")
	}
	from := h.OldFrom()
	to := h.OldTo()
	c.scan = to.Next

	var visitErr error
	endPhase := c.phase(m, trace.PhaseRootScan)
	n := m.Roots.Visit(func(slot *heap.Value) {
		if visitErr != nil {
			return
		}
		v := *slot
		if from.Contains(v) {
			nv, err := c.forward(m, v, to, simtime.AcctMajorCopy, &c.stats.BytesCopiedMajor)
			if err != nil {
				visitErr = err
				return
			}
			*slot = nv
		}
	})
	c.stats.RootSlotUpdates += int64(n)
	m.Clock.Charge(simtime.AcctRootScan, simtime.Duration(n)*m.Cost.RootUpdate)
	endPhase()
	if visitErr != nil {
		return visitErr
	}

	endPhase = c.phase(m, trace.PhaseCopy)
	err := c.cheney(m, from, to, simtime.AcctMajorCopy, &c.stats.BytesCopiedMajor)
	endPhase()
	if err != nil {
		return err
	}

	h.SwapOld()
	c.promotedSinceMajor = 0
	c.stats.MajorCollections++
	c.forcedMajor = false
	return nil
}

// setNextNurseryLimit applies the configured N or the replayed delta.
func (c *Collector) setNextNurseryLimit(m *core.Mutator) {
	limit := c.cfg.NurseryBytes
	if c.replay != nil {
		if ev, ok := c.replay.Next(); ok {
			c.forcedMajor = ev.MajorFlip
			if d, ok := c.replay.NurseryDelta(m.BytesAllocated); ok {
				limit = d
			}
		}
	}
	const floor = 64 << 10
	if limit < floor {
		limit = floor
	}
	c.h.Nursery.SetLimitBytes(limit)
}
