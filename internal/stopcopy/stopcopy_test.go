package stopcopy_test

import (
	"testing"

	"repligc/internal/core"
	"repligc/internal/gctest"
	"repligc/internal/heap"
	"repligc/internal/policy"
	"repligc/internal/simtime"
	"repligc/internal/stopcopy"
)

func newHeap() *heap.Heap {
	return heap.New(heap.Config{
		NurseryBytes:    32 << 10,
		NurseryCapBytes: 1 << 20,
		OldSemiBytes:    16 << 20,
	})
}

func newSC(cfg stopcopy.Config, pol core.LogPolicy) (*core.Mutator, *stopcopy.Collector) {
	h := newHeap()
	m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), pol)
	gc := stopcopy.New(h, cfg)
	m.AttachGC(gc)
	return m, gc
}

func scConfig() stopcopy.Config {
	return stopcopy.Config{NurseryBytes: 32 << 10, MajorThresholdBytes: 128 << 10}
}

func TestStopCopyShadowModel(t *testing.T) {
	for _, pol := range []core.LogPolicy{core.LogPointersOnly, core.LogAllMutations} {
		t.Run(pol.String(), func(t *testing.T) {
			m, gc := newSC(scConfig(), pol)
			d := gctest.NewDriver(m, 1)
			for round := 0; round < 70; round++ {
				d.Step(400)
				if err := d.Verify(); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
			}
			st := gc.Stats()
			if st.MinorCollections == 0 || st.MajorCollections == 0 {
				t.Fatalf("collections: minor=%d major=%d", st.MinorCollections, st.MajorCollections)
			}
		})
	}
}

// TestCrossImplementationDifferential runs the identical workload under the
// independent stop-and-copy implementation and the replication collector in
// its stop-the-world configuration, demanding identical reachable graphs.
func TestCrossImplementationDifferential(t *testing.T) {
	runSC := func() uint64 {
		m, _ := newSC(scConfig(), core.LogAllMutations)
		d := gctest.NewDriver(m, 77)
		d.Step(20000)
		return d.Fingerprint()
	}
	runCore := func() uint64 {
		h := newHeap()
		m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), core.LogAllMutations)
		gc := core.NewReplicating(h, core.Config{
			NurseryBytes:        32 << 10,
			MajorThresholdBytes: 128 << 10,
		})
		m.AttachGC(gc)
		d := gctest.NewDriver(m, 77)
		d.Step(20000)
		gc.FinishCycles(m)
		return d.Fingerprint()
	}
	if a, b := runSC(), runCore(); a != b {
		t.Fatalf("fingerprints differ: stopcopy=%#x core=%#x", a, b)
	}
}

// TestRecordReplaySynchronisation is the paper's §4.2 methodology: record a
// script from a real-time run, replay it under stop-and-copy, and check the
// flips happen at exactly the recorded allocation marks. This is what makes
// the latent-garbage measurement (table 3) well-defined.
func TestRecordReplaySynchronisation(t *testing.T) {
	script := &policy.Script{}

	// Recording run: the real-time collector.
	{
		h := newHeap()
		m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), core.LogAllMutations)
		gc := core.NewReplicating(h, core.Config{
			NurseryBytes:        32 << 10,
			MajorThresholdBytes: 128 << 10,
			CopyLimitBytes:      8 << 10,
			IncrementalMinor:    true,
			IncrementalMajor:    true,
			Record:              script,
		})
		m.AttachGC(gc)
		d := gctest.NewDriver(m, 31)
		d.Step(20000)
		gc.FinishCycles(m)
		if script.Len() == 0 {
			t.Fatal("recording produced no events")
		}
		if gc.Stats().MajorCollections == 0 {
			t.Fatal("recording run had no major collections")
		}
	}

	// Replay run: stop-and-copy, flips pinned to the script.
	m, gc := newSC(stopcopy.Config{NurseryBytes: 32 << 10, MajorThresholdBytes: 128 << 10, Replay: script}, core.LogAllMutations)
	d := gctest.NewDriver(m, 31)
	d.Step(20000)
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}

	st := gc.Stats()
	// Every scripted minor flip that fits in the run must have happened at
	// its recorded mark. The replayed run performs at least as many minor
	// collections as scripted events consumed; compare pause times against
	// allocation marks.
	marks := make(map[int64]bool, script.Len())
	for _, e := range script.Events {
		marks[e.AllocMark] = true
	}
	aligned := 0
	for i, e := range script.Events {
		if int(e.AllocMark) > 0 && i < st.MinorCollections {
			aligned++
		}
	}
	if aligned == 0 {
		t.Fatal("no aligned flips")
	}
	wantMajors := 0
	for _, e := range script.Events {
		if e.MajorFlip {
			wantMajors++
		}
	}
	if st.MajorCollections != wantMajors {
		t.Fatalf("replayed majors = %d, scripted = %d", st.MajorCollections, wantMajors)
	}
}

// TestLatentGarbageViaReplay reproduces table 3's measurement method: with
// flips and allocation amounts synchronized, copied(RT) - copied(S&C) is the
// latent garbage, which must be non-negative.
func TestLatentGarbageViaReplay(t *testing.T) {
	script := &policy.Script{}
	var rtCopied int64
	{
		h := newHeap()
		m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), core.LogAllMutations)
		gc := core.NewReplicating(h, core.Config{
			NurseryBytes:        32 << 10,
			MajorThresholdBytes: 128 << 10,
			CopyLimitBytes:      8 << 10,
			IncrementalMinor:    true,
			IncrementalMajor:    true,
			Record:              script,
		})
		m.AttachGC(gc)
		d := gctest.NewDriver(m, 555)
		d.Step(25000)
		gc.FinishCycles(m)
		rtCopied = gc.Stats().TotalBytesCopied()
	}
	m, gc := newSC(stopcopy.Config{NurseryBytes: 32 << 10, Replay: script}, core.LogAllMutations)
	d := gctest.NewDriver(m, 555)
	d.Step(25000)
	_ = m
	scCopied := gc.Stats().TotalBytesCopied()
	if rtCopied < scCopied {
		t.Fatalf("latent garbage negative: rt=%d sc=%d", rtCopied, scCopied)
	}
}

func TestStopCopyPausesAreLong(t *testing.T) {
	m, gc := newSC(scConfig(), core.LogPointersOnly)
	d := gctest.NewDriver(m, 9)
	d.Step(20000)
	_ = m
	var sawMajor bool
	for _, p := range gc.Pauses().Pauses {
		if p.Kind == simtime.PauseMajor {
			sawMajor = true
			if p.Length < 10*simtime.Millisecond {
				t.Errorf("major pause %v implausibly short", p.Length)
			}
		}
	}
	if !sawMajor {
		t.Fatal("no major pauses recorded")
	}
}

func TestPointersOnlyPolicyLogsLess(t *testing.T) {
	run := func(pol core.LogPolicy) int64 {
		m, _ := newSC(scConfig(), pol)
		d := gctest.NewDriver(m, 4)
		d.Step(10000)
		return m.LogWrites
	}
	lean, full := run(core.LogPointersOnly), run(core.LogAllMutations)
	if lean >= full {
		t.Fatalf("pointers-only logged %d >= all-mutations %d", lean, full)
	}
	if lean == 0 {
		t.Fatal("pointers-only logged nothing; driver writes no pointers?")
	}
}

// TestCopyVolumesMatchCoreStopTheWorld pits the two independent stop-the-
// world implementations against each other under one replayed script: the
// replication engine in its non-incremental configuration and this
// package's classical copier must copy exactly the same number of bytes at
// every synchronized flip (both copy precisely the data reachable at the
// collection point).
func TestCopyVolumesMatchCoreStopTheWorld(t *testing.T) {
	script := &policy.Script{}
	// Record from a core non-incremental run.
	{
		h := newHeap()
		m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), core.LogAllMutations)
		gc := core.NewReplicating(h, core.Config{
			NurseryBytes:        32 << 10,
			MajorThresholdBytes: 128 << 10,
			Record:              script,
		})
		m.AttachGC(gc)
		d := gctest.NewDriver(m, 808)
		d.Step(18000)
		if gc.Stats().MajorCollections == 0 {
			t.Fatal("recording run had no majors")
		}
	}

	run := func(useCore bool) []int64 {
		h := newHeap()
		m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), core.LogAllMutations)
		var gc core.Collector
		if useCore {
			gc = core.NewReplicating(h, core.Config{
				NurseryBytes: 32 << 10,
				Replay:       script,
			})
		} else {
			gc = stopcopy.New(h, stopcopy.Config{NurseryBytes: 32 << 10, Replay: script})
		}
		m.AttachGC(gc)
		d := gctest.NewDriver(m, 808)
		d.Step(18000)
		if err := d.Verify(); err != nil {
			t.Fatal(err)
		}
		return gc.Stats().FlipCopied
	}

	a, b := run(true), run(false)
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		t.Fatal("no synchronized flips")
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			t.Fatalf("flip %d: core copied %d bytes, stopcopy copied %d", i, a[i], b[i])
		}
	}
}
