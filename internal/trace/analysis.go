package trace

// The analysis layer: everything computed over a recorded trace. Pause
// quantiles reuse simtime.Percentile — the one tested quantile
// implementation in the repository — and the MMU computation is exact, not
// sampled: minimum mutator utilization over a sliding window is a piecewise
// function whose minima occur only when a window edge aligns with a pause
// edge, so evaluating those alignments suffices.

import (
	"fmt"
	"sort"

	"repligc/internal/simtime"
)

// PauseSpan is one closed pause interval extracted from a trace.
type PauseSpan struct {
	Start, End simtime.Duration
	Copied     int64 // bytes copied during the pause
	LogEntries int64 // log entries processed during the pause
	PauseKind  int64 // the simtime.PauseKind recorded at pause-end
}

// Length is the span's duration.
func (s PauseSpan) Length() simtime.Duration { return s.End - s.Start }

// MMUPoint is one point of an MMU curve.
type MMUPoint struct {
	Window      simtime.Duration
	Utilization float64 // minimum mutator utilization over any such window
}

// Analysis is the digest of one trace.
type Analysis struct {
	Start, End simtime.Duration // first and last event timestamps
	Pauses     []PauseSpan
	PhaseTime  [NumPhases]simtime.Duration
	PhaseCount [NumPhases]int
	Copied     int64 // total bytes copied across pauses
	LogEntries int64 // total log entries processed across pauses

	cum []simtime.Duration // cum[i]: total pause time in Pauses[:i]
}

// Analyze validates events and digests them. The trace must be well-formed
// (Validate); a trimmed Recorder.Events slice always is.
func Analyze(events []Event) (*Analysis, error) {
	if err := Validate(events); err != nil {
		return nil, err
	}
	a := &Analysis{cum: []simtime.Duration{0}}
	if len(events) == 0 {
		return a, nil
	}
	a.Start = events[0].At
	a.End = events[len(events)-1].At
	var pauseStart, phaseStart simtime.Duration
	for _, e := range events {
		switch e.Kind {
		case KindPauseBegin:
			pauseStart = e.At
		case KindPauseEnd:
			a.Pauses = append(a.Pauses, PauseSpan{
				Start: pauseStart, End: e.At,
				Copied: e.A, LogEntries: e.B, PauseKind: e.C,
			})
			a.Copied += e.A
			a.LogEntries += e.B
		case KindPhaseBegin:
			phaseStart = e.At
		case KindPhaseEnd:
			a.PhaseTime[e.Phase] += e.At - phaseStart
			a.PhaseCount[e.Phase]++
		}
	}
	a.cum = make([]simtime.Duration, len(a.Pauses)+1)
	for i, p := range a.Pauses {
		a.cum[i+1] = a.cum[i] + p.Length()
	}
	return a, nil
}

// Total is the simulated span the trace covers.
func (a *Analysis) Total() simtime.Duration { return a.End - a.Start }

// TotalPause is the summed length of all pauses.
func (a *Analysis) TotalPause() simtime.Duration { return a.cum[len(a.Pauses)] }

// Utilization is the whole-run mutator utilization: the fraction of
// simulated time not spent in pauses.
func (a *Analysis) Utilization() float64 {
	if a.Total() <= 0 {
		return 1
	}
	return 1 - float64(a.TotalPause())/float64(a.Total())
}

// PauseDurations returns every pause length in recording order.
func (a *Analysis) PauseDurations() []simtime.Duration {
	out := make([]simtime.Duration, len(a.Pauses))
	for i, p := range a.Pauses {
		out[i] = p.Length()
	}
	return out
}

// PauseQuantile is the p-th percentile pause (nearest rank, via
// simtime.Percentile — the shared quantile implementation).
func (a *Analysis) PauseQuantile(p float64) simtime.Duration {
	return simtime.Percentile(a.PauseDurations(), p)
}

// PauseQuantiles returns the percentile pause for each p in ps, sorting the
// pause durations once (simtime.Percentiles — the batch form of the shared
// quantile implementation).
func (a *Analysis) PauseQuantiles(ps ...float64) []simtime.Duration {
	return simtime.Percentiles(a.PauseDurations(), ps...)
}

// busyBefore returns the total pause time in [a.Start, t).
func (a *Analysis) busyBefore(t simtime.Duration) simtime.Duration {
	i := sort.Search(len(a.Pauses), func(i int) bool { return a.Pauses[i].End > t })
	b := a.cum[i]
	if i < len(a.Pauses) && a.Pauses[i].Start < t {
		b += t - a.Pauses[i].Start
	}
	return b
}

// windowUtil is the mutator utilization of the window [t, t+w].
func (a *Analysis) windowUtil(t, w simtime.Duration) float64 {
	busy := a.busyBefore(t+w) - a.busyBefore(t)
	return 1 - float64(busy)/float64(w)
}

// MMU returns the minimum mutator utilization over every window of length w
// inside the trace. Windows at least as long as the whole trace degenerate
// to the overall utilization. The minimum of the sliding-window utilization
// is attained where a window edge coincides with a pause edge, so the
// computation is exact: it evaluates a window starting at every pause start
// and ending at every pause end (clamped to the trace), plus the two
// extremes.
func (a *Analysis) MMU(w simtime.Duration) float64 {
	total := a.Total()
	if w <= 0 {
		return 0
	}
	if w >= total {
		return a.Utilization()
	}
	mmu := a.windowUtil(a.Start, w)
	consider := func(t simtime.Duration) {
		if t < a.Start {
			t = a.Start
		}
		if t > a.End-w {
			t = a.End - w
		}
		if u := a.windowUtil(t, w); u < mmu {
			mmu = u
		}
	}
	consider(a.End - w)
	for _, p := range a.Pauses {
		consider(p.Start)
		consider(p.End - w)
	}
	if mmu < 0 {
		mmu = 0 // windows shorter than one pause are fully consumed
	}
	return mmu
}

// MMUCurve evaluates MMU at each window, in order.
func (a *Analysis) MMUCurve(windows []simtime.Duration) []MMUPoint {
	out := make([]MMUPoint, len(windows))
	for i, w := range windows {
		out[i] = MMUPoint{Window: w, Utilization: a.MMU(w)}
	}
	return out
}

// StandardWindows is the default MMU window ladder: 1 ms to 10 s in a
// 1-2-5 progression, truncated to windows shorter than the trace, with the
// trace length itself as the final point.
func (a *Analysis) StandardWindows() []simtime.Duration {
	var out []simtime.Duration
	for _, ms := range []int64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000} {
		w := simtime.Duration(ms) * simtime.Millisecond
		if w >= a.Total() {
			break
		}
		out = append(out, w)
	}
	if t := a.Total(); t > 0 {
		out = append(out, t)
	}
	return out
}

// CopyMBps is replication throughput: bytes copied per second of pause time.
func (a *Analysis) CopyMBps() float64 {
	if a.TotalPause() <= 0 {
		return 0
	}
	return float64(a.Copied) / (1 << 20) / a.TotalPause().Seconds()
}

// LogEntriesPerMs is log-processing throughput: entries consumed per
// millisecond of pause time.
func (a *Analysis) LogEntriesPerMs() float64 {
	if a.TotalPause() <= 0 {
		return 0
	}
	return float64(a.LogEntries) / a.TotalPause().Milliseconds()
}

// Summary renders a one-screen plain-text digest: pause quantiles, MMU
// ladder, per-phase attribution, and throughput. dropped is the recorder's
// eviction count, surfaced so a truncated trace cannot masquerade as a
// complete one.
func Summary(label string, a *Analysis, dropped int64) string {
	s := fmt.Sprintf("--- trace: %s ---\n", label)
	s += fmt.Sprintf("span %v, %d pauses (total %v, utilization %.1f%%)\n",
		a.Total(), len(a.Pauses), a.TotalPause(), 100*a.Utilization())
	if dropped > 0 {
		s += fmt.Sprintf("WARNING: ring dropped %d events; figures describe the retained suffix\n", dropped)
	}
	if len(a.Pauses) > 0 {
		q := a.PauseQuantiles(50, 90, 95, 99, 100)
		s += fmt.Sprintf("pause p50 %v  p90 %v  p95 %v  p99 %v  max %v\n",
			q[0], q[1], q[2], q[3], q[4])
	}
	s += "MMU:"
	for _, pt := range a.MMUCurve(a.StandardWindows()) {
		s += fmt.Sprintf("  %v %.1f%%", pt.Window, 100*pt.Utilization)
	}
	s += "\nphases:\n"
	for p := Phase(0); p < NumPhases; p++ {
		if a.PhaseCount[p] == 0 {
			continue
		}
		pct := 0.0
		if tp := a.TotalPause(); tp > 0 {
			pct = 100 * float64(a.PhaseTime[p]) / float64(tp)
		}
		s += fmt.Sprintf("  %-10s %4d spans %10v (%5.1f%% of pause time)\n",
			p, a.PhaseCount[p], a.PhaseTime[p], pct)
	}
	s += fmt.Sprintf("throughput: copy %.2f MB/s of pause, log %.1f entries/ms of pause\n",
		a.CopyMBps(), a.LogEntriesPerMs())
	return s
}
