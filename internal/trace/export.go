package trace

// Exporters: Chrome trace-event JSON (the format Perfetto and about:tracing
// load), CSV for offline analysis, and a shape checker for the Chrome output
// that CI runs against emitted artifacts. Chrome timestamps are microseconds;
// ours are simulated nanoseconds, so the conversion divides by 1e3. The
// simulated timeline is presented as pid 1 / tid 1 ("collector").

import (
	"encoding/json"
	"fmt"
	"strings"

	"repligc/internal/simtime"
)

// chromeEvent is one entry of the trace-event format's traceEvents array.
// Maps marshal with sorted keys, so the output is deterministic.
type chromeEvent struct {
	Name  string           `json:"name"`
	Ph    string           `json:"ph"`
	Ts    float64          `json:"ts"`
	Pid   int              `json:"pid"`
	Tid   int              `json:"tid"`
	Scope string           `json:"s,omitempty"`
	Args  map[string]int64 `json:"args,omitempty"`
}

// chromeDoc is the trace-event format's object form.
type chromeDoc struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

const (
	chromePid = 1
	chromeTid = 1
)

// chromeTs converts a simulated timestamp to Chrome's microsecond scale.
func chromeTs(at simtime.Duration) float64 { return float64(at) / 1e3 }

// ChromeTrace renders events as Chrome trace-event JSON: pauses and phases
// as nested B/E duration slices, counters and allocation epochs as C counter
// series, log epochs as instant events. labels lands in otherData verbatim
// (exporter glue may put wall-clock metadata there; the event stream itself
// never carries host time).
func ChromeTrace(events []Event, labels map[string]string) ([]byte, error) {
	ces := make([]chromeEvent, 0, len(events))
	for _, e := range events {
		ce := chromeEvent{Pid: chromePid, Tid: chromeTid, Ts: chromeTs(e.At)}
		switch e.Kind {
		case KindPauseBegin:
			ce.Name, ce.Ph = "pause", "B"
		case KindPauseEnd:
			ce.Name, ce.Ph = "pause", "E"
			ce.Args = map[string]int64{"copied_bytes": e.A, "log_entries": e.B, "kind": e.C}
		case KindPhaseBegin:
			ce.Name, ce.Ph = e.Phase.String(), "B"
		case KindPhaseEnd:
			ce.Name, ce.Ph = e.Phase.String(), "E"
		case KindAllocEpoch:
			// One counter series per mutator actor: the thread id carries
			// the actor so a multi-mutator group's allocation timelines
			// render as separate tracks.
			ce.Name, ce.Ph = "allocated_bytes", "C"
			ce.Tid = chromeTid + int(e.B)
			ce.Args = map[string]int64{"bytes": e.A, "actor": e.B}
		case KindCounters:
			ce.Name, ce.Ph = "barrier", "C"
			ce.Args = map[string]int64{"log_writes": e.A, "nursery_skips": e.B, "dirty_skips": e.C}
		case KindLogEpoch:
			ce.Name, ce.Ph, ce.Scope = "log-epoch", "i", "t"
			ce.Args = map[string]int64{"epoch": e.A}
		default:
			return nil, fmt.Errorf("trace: cannot export unknown event kind %d", e.Kind)
		}
		ces = append(ces, ce)
	}
	doc := chromeDoc{TraceEvents: ces, DisplayTimeUnit: "ms", OtherData: labels}
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// CSV renders events as comma-separated rows for offline analysis.
func CSV(events []Event) string {
	var b strings.Builder
	b.WriteString("at_ns,kind,phase,a,b,c\n")
	for _, e := range events {
		phase := ""
		if e.Kind == KindPhaseBegin || e.Kind == KindPhaseEnd {
			phase = e.Phase.String()
		}
		fmt.Fprintf(&b, "%d,%s,%s,%d,%d,%d\n", int64(e.At), e.Kind, phase, e.A, e.B, e.C)
	}
	return b.String()
}

// ValidateChrome checks that data parses as Chrome trace-event JSON with
// balanced, properly nested B/E duration events and non-decreasing
// timestamps per thread. This is the CI shape check for emitted artifacts —
// structure only, never thresholds on the numbers.
func ValidateChrome(data []byte) error {
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("chrome trace: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("chrome trace: no traceEvents")
	}
	type tidKey struct{ pid, tid int }
	stacks := make(map[tidKey][]string)
	lastTs := make(map[tidKey]float64)
	for i, e := range doc.TraceEvents {
		k := tidKey{e.Pid, e.Tid}
		if e.Ph != "M" { // metadata events are timeless
			if ts, seen := lastTs[k]; seen && e.Ts < ts {
				return fmt.Errorf("chrome trace: event %d (%s %q) ts %.3f precedes %.3f on pid %d tid %d",
					i, e.Ph, e.Name, e.Ts, ts, e.Pid, e.Tid)
			}
			lastTs[k] = e.Ts
		}
		switch e.Ph {
		case "B":
			stacks[k] = append(stacks[k], e.Name)
		case "E":
			st := stacks[k]
			if len(st) == 0 {
				return fmt.Errorf("chrome trace: event %d: E %q with no open B on pid %d tid %d",
					i, e.Name, e.Pid, e.Tid)
			}
			if top := st[len(st)-1]; e.Name != "" && top != e.Name {
				return fmt.Errorf("chrome trace: event %d: E %q does not match open B %q", i, e.Name, top)
			}
			stacks[k] = st[:len(st)-1]
		case "C", "i", "I", "M":
			// Counters, instants and metadata carry no nesting.
		default:
			return fmt.Errorf("chrome trace: event %d: unsupported phase %q", i, e.Ph)
		}
	}
	// Map iteration order does not matter here: any unbalanced thread is an
	// error regardless of which one is reported first, but the diagnostics
	// must still be deterministic — collect and pick the smallest key.
	var unbalanced []tidKey
	for k, st := range stacks { //gclint:allow maprange -- keys are re-sorted below; only the sorted minimum reaches the output
		if len(st) > 0 {
			unbalanced = append(unbalanced, k)
		}
	}
	if len(unbalanced) > 0 {
		minK := unbalanced[0]
		for _, k := range unbalanced[1:] {
			if k.pid < minK.pid || (k.pid == minK.pid && k.tid < minK.tid) {
				minK = k
			}
		}
		return fmt.Errorf("chrome trace: %d B events left open on pid %d tid %d (first open: %q)",
			len(stacks[minK]), minK.pid, minK.tid, stacks[minK][0])
	}
	return nil
}
