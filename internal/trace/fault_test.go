package trace_test

// Satellite coverage: the trace must stay well-formed under every
// fault-injection plan — balanced pause begin/end, flat non-overlapping
// phases, emergency rungs visible as distinct phases — even when the run
// ends in a typed OOM. This pins the collectors' hook discipline: every
// exit path out of an instrumented region closes what it opened.

import (
	"testing"

	"repligc/internal/core"
	"repligc/internal/faultinject"
	"repligc/internal/gctest"
	"repligc/internal/heap"
	"repligc/internal/simtime"
	"repligc/internal/stopcopy"
	"repligc/internal/trace"
)

// attach wires a fresh recorder into every hook point of a hand-built run
// (the cmd/ and bench layers do the same wiring through bench.AttachTrace).
func attach(t *testing.T, m *core.Mutator, gc core.Collector) *trace.Recorder {
	t.Helper()
	tr := trace.NewRecorder(1 << 18)
	m.Trace = tr
	clock := m.Clock
	m.H.EpochHook = func(epoch uint32) { tr.LogEpoch(clock.Now(), int64(epoch)) }
	ts, ok := gc.(interface{ SetTrace(*trace.Recorder) })
	if !ok {
		t.Fatalf("collector %s does not implement SetTrace", gc.Name())
	}
	ts.SetTrace(tr)
	return tr
}

func newRT(nursery, old int64, incremental bool) (*core.Mutator, core.Collector) {
	h := heap.New(heap.Config{NurseryBytes: nursery, NurseryCapBytes: 4 * nursery, OldSemiBytes: old})
	m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), core.LogAllMutations)
	gc := core.NewReplicating(h, core.Config{
		NurseryBytes:        nursery,
		MajorThresholdBytes: old / 4,
		CopyLimitBytes:      4 << 10,
		IncrementalMinor:    incremental,
		IncrementalMajor:    incremental,
	})
	m.AttachGC(gc)
	return m, gc
}

func newSC(nursery, old int64) (*core.Mutator, core.Collector) {
	h := heap.New(heap.Config{NurseryBytes: nursery, NurseryCapBytes: 4 * nursery, OldSemiBytes: old})
	m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), core.LogPointersOnly)
	gc := stopcopy.New(h, stopcopy.Config{NurseryBytes: nursery, MajorThresholdBytes: old / 4})
	m.AttachGC(gc)
	return m, gc
}

// planAt builds a plan firing action at a spread of operation points.
func planAt(action faultinject.Action, arg int64, ops ...int64) faultinject.Plan {
	p := faultinject.Plan{}
	for _, op := range ops {
		p.Events = append(p.Events, faultinject.Event{AtOp: op, Action: action, Arg: arg})
	}
	return p
}

// TestTraceWellFormedUnderFaultPlans runs every fault plan against every
// collector shape and requires a validating trace regardless of outcome.
func TestTraceWellFormedUnderFaultPlans(t *testing.T) {
	plans := []struct {
		name string
		plan faultinject.Plan
	}{
		{"force-collect", faultinject.Plan{Every: 25}},
		{"shrink-old", planAt(faultinject.ShrinkOld, 2<<10, 200, 500, 800)},
		{"log-spike", planAt(faultinject.LogSpike, 256, 100, 300, 500, 700)},
		{"force-complete", planAt(faultinject.ForceComplete, 0, 150, 450, 750)},
	}
	collectors := []struct {
		name string
		mk   func() (*core.Mutator, core.Collector)
	}{
		{"replicating-incremental", func() (*core.Mutator, core.Collector) { return newRT(16<<10, 96<<10, true) }},
		{"replicating-stw", func() (*core.Mutator, core.Collector) { return newRT(16<<10, 96<<10, false) }},
		{"stopcopy", func() (*core.Mutator, core.Collector) { return newSC(16<<10, 96<<10) }},
	}
	for _, pc := range plans {
		for _, cc := range collectors {
			t.Run(pc.name+"/"+cc.name, func(t *testing.T) {
				m, gc := cc.mk()
				tr := attach(t, m, gc)
				d := gctest.NewDriver(m, 17)
				in := faultinject.New(m, pc.plan)
				d.Inject = in.Tick
				runErr := d.Step(1500)
				if runErr != nil {
					if _, ok := core.AsOOM(runErr); !ok {
						t.Fatalf("run failed with an untyped error: %v", runErr)
					}
				}
				if tr.Dropped() != 0 {
					t.Fatalf("recorder dropped %d events; enlarge the test capacity", tr.Dropped())
				}
				evs := tr.Events()
				if len(evs) == 0 {
					t.Fatal("fault plan produced no trace events")
				}
				if err := trace.Validate(evs); err != nil {
					t.Fatalf("trace not well-formed (run err: %v): %v", runErr, err)
				}
				an, err := trace.Analyze(evs)
				if err != nil {
					t.Fatal(err)
				}
				stats := gc.Stats()
				if got, want := len(an.Pauses), int(stats.PauseCount); got != want {
					t.Errorf("trace has %d pause spans, GCStats counted %d", got, want)
				}
				// Emergency rungs must be visible as distinct phases. Only
				// asserted for clean runs: a collector that wedged can count
				// an emergency attempt it refused to execute.
				if runErr == nil && stats.EmergencyCollections > 0 &&
					an.PhaseCount[trace.PhaseEmergency] == 0 {
					t.Errorf("%d emergency collections but no emergency phase in the trace",
						stats.EmergencyCollections)
				}
			})
		}
	}
}

// TestEmergencyRungVisibleInTrace drives a run into the degradation ladder
// deterministically (tiny old space, adversarial shrinks) and requires the
// emergency phase to appear — the positive counterpart of the conditional
// check above.
func TestEmergencyRungVisibleInTrace(t *testing.T) {
	found := false
	for seed := uint64(1); seed <= 6 && !found; seed++ {
		m, gc := newRT(16<<10, 96<<10, true)
		tr := attach(t, m, gc)
		d := gctest.NewDriver(m, int64(seed))
		in := faultinject.New(m, faultinject.Adversarial(seed, 64, 2000))
		d.Inject = in.Tick
		if err := d.Step(3000); err != nil {
			if _, ok := core.AsOOM(err); !ok {
				t.Fatalf("seed %d: untyped error: %v", seed, err)
			}
		}
		evs := tr.Events()
		if err := trace.Validate(evs); err != nil {
			t.Fatalf("seed %d: trace not well-formed: %v", seed, err)
		}
		an, err := trace.Analyze(evs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if gc.Stats().EmergencyCollections > 0 && an.PhaseCount[trace.PhaseEmergency] > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no adversarial seed surfaced an emergency rung in the trace")
	}
}

// TestTracedRunIsBitIdenticalToUntraced pins the zero-interference claim:
// attaching a recorder must not change a single simulated timestamp or
// statistic, because trace emission charges nothing to the clock.
func TestTracedRunIsBitIdenticalToUntraced(t *testing.T) {
	run := func(traced bool) (simtime.Duration, core.GCStats, uint64) {
		m, gc := newRT(32<<10, 1<<20, true)
		if traced {
			attach(t, m, gc)
		}
		d := gctest.NewDriver(m, 23)
		if err := d.Step(2500); err != nil {
			t.Fatal(err)
		}
		return m.Clock.Now(), *gc.Stats(), d.Fingerprint()
	}
	elapsed1, stats1, fp1 := run(false)
	elapsed2, stats2, fp2 := run(true)
	if elapsed1 != elapsed2 {
		t.Errorf("tracing changed elapsed simulated time: %v vs %v", elapsed1, elapsed2)
	}
	if fp1 != fp2 {
		t.Errorf("tracing changed the heap fingerprint: %#x vs %#x", fp1, fp2)
	}
	// FlipCopied is a slice; compare the scalar counters field by field via
	// the recorded pause count and copy volumes.
	if stats1.PauseCount != stats2.PauseCount ||
		stats1.TotalBytesCopied() != stats2.TotalBytesCopied() ||
		stats1.LogScanned != stats2.LogScanned {
		t.Errorf("tracing changed GC statistics: %+v vs %+v", stats1, stats2)
	}
}
