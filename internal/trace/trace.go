// Package trace is the collector's observability subsystem: a low-overhead
// event recorder plus the analysis and export layers built on it. The
// replication collector's whole claim is about pause *behaviour* — not just
// how long pauses are, but where each pause went (root scan vs log replay vs
// copy increment vs flip) and whether the mutator keeps up a utilization
// target over every window of simulated time. GCStats and simtime.Recorder
// answer neither question; this package does.
//
// The recorder is a fixed-capacity ring buffer of small typed events stamped
// with simulated time. Every emit method is safe on a nil *Recorder and
// returns after a single comparison, so hook points stay wired permanently
// in the collectors and cost nothing when tracing is disabled — in
// particular the write-barrier fast paths remain allocation-free. Events
// charge nothing to the simulated clock, so an instrumented run is
// bit-for-bit identical to an uninstrumented one.
//
// All timestamps are simtime.Duration. The wall clock never appears here
// (gclint rule "wallclock"); exporter glue in cmd/ may stamp artifacts with
// wall-clock metadata, but nothing in the event model depends on it.
package trace

import (
	"fmt"

	"repligc/internal/simtime"
)

// Phase identifies one attributable component of a collection pause. The
// phases mirror the paper's cost taxonomy: root scanning, mutation-log
// replay (CR), the copy/scan increment, the atomic flip (CF), and the
// degradation ladder's emergency rung.
type Phase uint8

// The pause phases.
const (
	PhaseRootScan  Phase = iota // scanning or redirecting mutator roots
	PhaseLogReplay              // consuming the mutation log (scan + reapply)
	PhaseCopy                   // replication copying and Cheney scanning
	PhaseFlip                   // atomically re-pointing roots and logged slots
	PhaseEmergency              // degradation-ladder escalation marker
	PhaseCheckpoint             // incremental snapshot copying / WAL commit
	NumPhases
)

var phaseNames = [NumPhases]string{
	"root-scan", "log-replay", "copy", "flip", "emergency", "checkpoint",
}

// String returns the phase's short name.
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Kind classifies an event.
type Kind uint8

// The event kinds.
const (
	KindPauseBegin Kind = iota // mutator stopped
	KindPauseEnd               // mutator resumed; A=bytes copied, B=log entries, C=pause kind
	KindPhaseBegin             // phase opened inside a pause
	KindPhaseEnd               // phase closed
	KindAllocEpoch             // allocation milestone; A=cumulative bytes allocated, B=mutator actor
	KindCounters               // barrier snapshot; A=log writes, B=nursery skips, C=dirty skips
	KindLogEpoch               // heap coalescing epoch advanced; A=epoch
	numKinds
)

var kindNames = [numKinds]string{
	"pause-begin", "pause-end", "phase-begin", "phase-end",
	"alloc-epoch", "counters", "log-epoch",
}

// String returns the kind's short name.
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one recorded occurrence. The payload words A, B, C are
// kind-specific (see the Kind constants); Phase is meaningful only for the
// phase kinds.
type Event struct {
	At      simtime.Duration
	A, B, C int64
	Kind    Kind
	Phase   Phase
}

// DefaultCapacity is the ring size NewRecorder uses for capacity <= 0.
const DefaultCapacity = 1 << 16

// Recorder is a fixed-capacity ring buffer of events. When the ring fills,
// the oldest events are dropped (flight-recorder semantics) and the drop is
// counted; Events re-synchronizes to a structurally consistent suffix. All
// methods are nil-receiver-safe: a nil *Recorder records nothing and
// allocates nothing, which is how tracing is disabled.
//
// The recorder is not safe for concurrent use; the simulation is
// single-threaded by design.
type Recorder struct {
	buf     []Event
	start   int // index of the oldest retained event
	n       int // number of retained events
	dropped int64

	// evictedInPause tracks whether the oldest *retained* event sits inside
	// a pause whose begin was evicted, so Events can trim to a balanced
	// suffix after drops.
	evictedInPause bool
}

// NewRecorder returns a recorder retaining up to capacity events
// (DefaultCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// emit appends e, evicting the oldest event when the ring is full.
func (r *Recorder) emit(e Event) {
	if r == nil {
		return
	}
	if r.n == len(r.buf) {
		old := r.buf[r.start]
		switch old.Kind {
		case KindPauseBegin:
			r.evictedInPause = true
		case KindPauseEnd:
			r.evictedInPause = false
		}
		r.start++
		if r.start == len(r.buf) {
			r.start = 0
		}
		r.n--
		r.dropped++
	}
	i := r.start + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = e
	r.n++
}

// PauseBegin records the mutator stopping at time at.
func (r *Recorder) PauseBegin(at simtime.Duration) {
	r.emit(Event{At: at, Kind: KindPauseBegin})
}

// PauseEnd records the mutator resuming: copied bytes, log entries
// processed, and the simtime.PauseKind of the finished pause.
func (r *Recorder) PauseEnd(at simtime.Duration, copied, logN, pauseKind int64) {
	r.emit(Event{At: at, Kind: KindPauseEnd, A: copied, B: logN, C: pauseKind})
}

// PhaseBegin records phase p opening. Phases are flat: at most one phase is
// open at a time, always inside a pause (Validate enforces this).
func (r *Recorder) PhaseBegin(at simtime.Duration, p Phase) {
	r.emit(Event{At: at, Kind: KindPhaseBegin, Phase: p})
}

// PhaseEnd records phase p closing.
func (r *Recorder) PhaseEnd(at simtime.Duration, p Phase) {
	r.emit(Event{At: at, Kind: KindPhaseEnd, Phase: p})
}

// PhaseMark records an instantaneous phase (begin immediately followed by
// end) — how the degradation ladder's emergency rung shows up as a distinct,
// overlap-free phase.
func (r *Recorder) PhaseMark(at simtime.Duration, p Phase) {
	r.PhaseBegin(at, p)
	r.PhaseEnd(at, p)
}

// AllocEpoch records an allocation milestone: cumulative bytes allocated by
// the given mutator actor (actor 0 for solo mutators). Per-actor stamping
// keeps the allocation timelines of a multi-mutator group separable in
// exports.
func (r *Recorder) AllocEpoch(at simtime.Duration, actor, bytesAllocated int64) {
	r.emit(Event{At: at, Kind: KindAllocEpoch, A: bytesAllocated, B: actor})
}

// Counters records a barrier-counter snapshot (cumulative log writes,
// nursery fast-path skips, dirty-stamp skips).
func (r *Recorder) Counters(at simtime.Duration, logWrites, nurserySkips, dirtySkips int64) {
	r.emit(Event{At: at, Kind: KindCounters, A: logWrites, B: nurserySkips, C: dirtySkips})
}

// LogEpoch records the heap advancing its log-coalescing epoch.
func (r *Recorder) LogEpoch(at simtime.Duration, epoch int64) {
	r.emit(Event{At: at, Kind: KindLogEpoch, A: epoch})
}

// Dropped reports how many events were evicted because the ring filled.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Len reports how many events are currently retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Events returns the retained events in emission order. After drops the
// returned slice is trimmed to a structurally consistent suffix: if the
// oldest retained event sits inside a pause whose begin was evicted,
// everything through that pause's end is discarded too, so Validate holds
// on the result.
func (r *Recorder) Events() []Event {
	if r == nil || r.n == 0 {
		return nil
	}
	out := make([]Event, r.n)
	tail := copy(out, r.buf[r.start:min(r.start+r.n, len(r.buf))])
	copy(out[tail:], r.buf[:r.n-tail])
	if r.dropped > 0 && r.evictedInPause {
		cut := len(out)
		for i, e := range out {
			if e.Kind == KindPauseEnd {
				cut = i + 1
				break
			}
		}
		out = out[cut:]
	}
	return out
}

// Validate checks that events form a well-formed trace: timestamps
// non-decreasing; pause begin/end strictly alternating (pauses never nest);
// phases flat (at most one open, begin/end balanced, matching phases) and
// only inside pauses; everything closed at the end. The collectors' hook
// discipline guarantees this even for runs that end in a typed OOM — the
// fault-injection tests pin that property.
func Validate(events []Event) error {
	var (
		last      simtime.Duration
		inPause   bool
		openPhase Phase
		phaseOpen bool
	)
	for i, e := range events {
		if e.At < last {
			return fmt.Errorf("trace: event %d (%s) at %v precedes event %d at %v",
				i, e.Kind, e.At, i-1, last)
		}
		last = e.At
		switch e.Kind {
		case KindPauseBegin:
			if inPause {
				return fmt.Errorf("trace: event %d: pause-begin inside an open pause", i)
			}
			inPause = true
		case KindPauseEnd:
			if !inPause {
				return fmt.Errorf("trace: event %d: pause-end without an open pause", i)
			}
			if phaseOpen {
				return fmt.Errorf("trace: event %d: pause-end with phase %s still open", i, openPhase)
			}
			inPause = false
		case KindPhaseBegin:
			if !inPause {
				return fmt.Errorf("trace: event %d: phase %s begun outside a pause", i, e.Phase)
			}
			if phaseOpen {
				return fmt.Errorf("trace: event %d: phase %s begun while %s is open (phases must not overlap)",
					i, e.Phase, openPhase)
			}
			if e.Phase >= NumPhases {
				return fmt.Errorf("trace: event %d: unknown phase %d", i, e.Phase)
			}
			phaseOpen, openPhase = true, e.Phase
		case KindPhaseEnd:
			if !phaseOpen {
				return fmt.Errorf("trace: event %d: phase %s ended without a begin", i, e.Phase)
			}
			if e.Phase != openPhase {
				return fmt.Errorf("trace: event %d: phase-end %s does not match open phase %s",
					i, e.Phase, openPhase)
			}
			phaseOpen = false
		case KindAllocEpoch, KindCounters, KindLogEpoch:
			// Annotations: legal anywhere.
		default:
			return fmt.Errorf("trace: event %d: unknown kind %d", i, e.Kind)
		}
	}
	if phaseOpen {
		return fmt.Errorf("trace: phase %s still open at end of trace", openPhase)
	}
	if inPause {
		return fmt.Errorf("trace: pause still open at end of trace")
	}
	return nil
}
