package trace_test

import (
	"strings"
	"testing"

	"repligc/internal/simtime"
	"repligc/internal/trace"
)

const ms = simtime.Millisecond

// mkPause appends one [start, end) pause to events.
func mkPause(events []trace.Event, start, end simtime.Duration) []trace.Event {
	return append(events,
		trace.Event{At: start, Kind: trace.KindPauseBegin},
		trace.Event{At: end, Kind: trace.KindPauseEnd},
	)
}

func TestNilRecorderIsSafeAndFree(t *testing.T) {
	var r *trace.Recorder
	allocs := testing.AllocsPerRun(100, func() {
		r.PauseBegin(0)
		r.PhaseBegin(0, trace.PhaseCopy)
		r.PhaseEnd(0, trace.PhaseCopy)
		r.PauseEnd(1, 2, 3, 4)
		r.AllocEpoch(5, 0, 6)
		r.Counters(7, 8, 9, 10)
		r.LogEpoch(11, 12)
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocated %.0f times per emit round, want 0", allocs)
	}
	if r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil {
		t.Fatal("nil recorder reported retained state")
	}
}

func TestLiveRecorderEmitsWithoutAllocating(t *testing.T) {
	r := trace.NewRecorder(16) // small: rounds will wrap and evict
	var at simtime.Duration
	allocs := testing.AllocsPerRun(100, func() {
		r.PauseBegin(at)
		r.PhaseBegin(at, trace.PhaseCopy)
		r.PhaseEnd(at, trace.PhaseCopy)
		r.PauseEnd(at, 1, 2, 3)
		at++
	})
	if allocs != 0 {
		t.Fatalf("recorder allocated %.0f times per emit round after construction, want 0", allocs)
	}
}

func TestRingDropsOldestAndStaysConsistent(t *testing.T) {
	r := trace.NewRecorder(8)
	var at simtime.Duration
	for i := 0; i < 10; i++ {
		r.PauseBegin(at)
		at++
		r.PhaseBegin(at, trace.PhaseCopy)
		at++
		r.PhaseEnd(at, trace.PhaseCopy)
		at++
		r.PauseEnd(at, 0, 0, 0)
		at++
	}
	if r.Dropped() == 0 {
		t.Fatal("40 events into an 8-slot ring dropped nothing")
	}
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want 8", r.Len())
	}
	evs := r.Events()
	if err := trace.Validate(evs); err != nil {
		t.Fatalf("retained suffix is not well-formed: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("no events retained")
	}
}

// TestRingTrimsEvictedPause covers the flight-recorder edge: when a pause's
// begin is evicted while its end survives, Events must discard through that
// end so the suffix still validates.
func TestRingTrimsEvictedPause(t *testing.T) {
	r := trace.NewRecorder(4)
	r.PauseBegin(0)
	for i := 1; i <= 6; i++ {
		r.AllocEpoch(simtime.Duration(i), 0, int64(i)) // evicts the pause-begin
	}
	r.PauseEnd(7, 0, 0, 0)
	evs := r.Events()
	if err := trace.Validate(evs); err != nil {
		t.Fatalf("trimmed suffix is not well-formed: %v\nevents: %v", err, evs)
	}
	for _, e := range evs {
		if e.Kind == trace.KindPauseEnd {
			t.Fatal("orphaned pause-end survived trimming")
		}
	}
}

func TestValidateRejectsMalformedTraces(t *testing.T) {
	cases := []struct {
		name string
		evs  []trace.Event
		want string
	}{
		{"time-regression", []trace.Event{
			{At: 5, Kind: trace.KindAllocEpoch}, {At: 4, Kind: trace.KindAllocEpoch},
		}, "precedes"},
		{"nested-pause", []trace.Event{
			{At: 0, Kind: trace.KindPauseBegin}, {At: 1, Kind: trace.KindPauseBegin},
		}, "inside an open pause"},
		{"orphan-pause-end", []trace.Event{
			{At: 0, Kind: trace.KindPauseEnd},
		}, "without an open pause"},
		{"phase-outside-pause", []trace.Event{
			{At: 0, Kind: trace.KindPhaseBegin, Phase: trace.PhaseCopy},
		}, "outside a pause"},
		{"phase-overlap", []trace.Event{
			{At: 0, Kind: trace.KindPauseBegin},
			{At: 1, Kind: trace.KindPhaseBegin, Phase: trace.PhaseCopy},
			{At: 2, Kind: trace.KindPhaseBegin, Phase: trace.PhaseFlip},
		}, "must not overlap"},
		{"phase-mismatch", []trace.Event{
			{At: 0, Kind: trace.KindPauseBegin},
			{At: 1, Kind: trace.KindPhaseBegin, Phase: trace.PhaseCopy},
			{At: 2, Kind: trace.KindPhaseEnd, Phase: trace.PhaseFlip},
		}, "does not match"},
		{"phase-open-at-pause-end", []trace.Event{
			{At: 0, Kind: trace.KindPauseBegin},
			{At: 1, Kind: trace.KindPhaseBegin, Phase: trace.PhaseCopy},
			{At: 2, Kind: trace.KindPauseEnd},
		}, "still open"},
		{"pause-open-at-end", []trace.Event{
			{At: 0, Kind: trace.KindPauseBegin},
		}, "still open"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := trace.Validate(tc.evs)
			if err == nil {
				t.Fatal("Validate accepted a malformed trace")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestMMUExact pins the MMU computation on a hand-built trace with one
// 10 ms pause at [50 ms, 60 ms) inside a 100 ms run, where every value is
// computable by hand.
func TestMMUExact(t *testing.T) {
	evs := []trace.Event{{At: 0, Kind: trace.KindAllocEpoch}}
	evs = mkPause(evs, 50*ms, 60*ms)
	evs = append(evs, trace.Event{At: 100 * ms, Kind: trace.KindAllocEpoch})
	a, err := trace.Analyze(evs)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Total(); got != 100*ms {
		t.Fatalf("Total = %v, want 100ms", got)
	}
	if got := a.Utilization(); got != 0.9 {
		t.Fatalf("Utilization = %v, want 0.9", got)
	}
	cases := []struct {
		w    simtime.Duration
		want float64
	}{
		{5 * ms, 0},    // fits inside the pause
		{10 * ms, 0},   // exactly the pause
		{20 * ms, 0.5}, // worst window half-consumed
		{40 * ms, 0.75},
		{100 * ms, 0.9},  // whole trace
		{1000 * ms, 0.9}, // longer than the trace degenerates to overall
		{0, 0},
	}
	for _, tc := range cases {
		if got := a.MMU(tc.w); got != tc.want {
			t.Errorf("MMU(%v) = %v, want %v", tc.w, got, tc.want)
		}
	}
}

func TestAnalyzeAttributesPhasesAndPayloads(t *testing.T) {
	evs := []trace.Event{
		{At: 0, Kind: trace.KindPauseBegin},
		{At: 0, Kind: trace.KindPhaseBegin, Phase: trace.PhaseRootScan},
		{At: 2 * ms, Kind: trace.KindPhaseEnd, Phase: trace.PhaseRootScan},
		{At: 2 * ms, Kind: trace.KindPhaseBegin, Phase: trace.PhaseCopy},
		{At: 7 * ms, Kind: trace.KindPhaseEnd, Phase: trace.PhaseCopy},
		{At: 8 * ms, Kind: trace.KindPauseEnd, A: 4096, B: 17, C: int64(simtime.PauseMajor)},
	}
	a, err := trace.Analyze(evs)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pauses) != 1 || a.Pauses[0].Length() != 8*ms {
		t.Fatalf("pauses = %+v, want one 8ms span", a.Pauses)
	}
	if a.Copied != 4096 || a.LogEntries != 17 {
		t.Fatalf("payload totals = %d/%d, want 4096/17", a.Copied, a.LogEntries)
	}
	if a.PhaseTime[trace.PhaseRootScan] != 2*ms || a.PhaseTime[trace.PhaseCopy] != 5*ms {
		t.Fatalf("phase times = %v", a.PhaseTime)
	}
	if a.PhaseCount[trace.PhaseRootScan] != 1 || a.PhaseCount[trace.PhaseCopy] != 1 {
		t.Fatalf("phase counts = %v", a.PhaseCount)
	}
	if got := a.PauseQuantile(100); got != 8*ms {
		t.Fatalf("PauseQuantile(100) = %v, want 8ms", got)
	}
	s := trace.Summary("unit", a, 3)
	for _, want := range []string{"unit", "root-scan", "copy", "WARNING", "MMU"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	evs := []trace.Event{
		{At: 0, Kind: trace.KindAllocEpoch, A: 1024},
		{At: 1 * ms, Kind: trace.KindPauseBegin},
		{At: 1 * ms, Kind: trace.KindCounters, A: 1, B: 2, C: 3},
		{At: 1 * ms, Kind: trace.KindLogEpoch, A: 2},
		{At: 1 * ms, Kind: trace.KindPhaseBegin, Phase: trace.PhaseLogReplay},
		{At: 2 * ms, Kind: trace.KindPhaseEnd, Phase: trace.PhaseLogReplay},
		{At: 3 * ms, Kind: trace.KindPauseEnd, A: 64, B: 1, C: 0},
	}
	data, err := trace.ChromeTrace(evs, map[string]string{"workload": "unit"})
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateChrome(data); err != nil {
		t.Fatalf("emitted trace fails its own validator: %v\n%s", err, data)
	}
	for _, want := range []string{`"pause"`, `"log-replay"`, `"allocated_bytes"`, `"workload": "unit"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("chrome JSON missing %s", want)
		}
	}
}

func TestValidateChromeRejectsUnbalanced(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"empty", `{"traceEvents":[]}`, "no traceEvents"},
		{"open-B", `{"traceEvents":[{"name":"pause","ph":"B","ts":1,"pid":1,"tid":1}]}`, "left open"},
		{"orphan-E", `{"traceEvents":[{"name":"pause","ph":"E","ts":1,"pid":1,"tid":1}]}`, "no open B"},
		{"mismatched", `{"traceEvents":[
			{"name":"pause","ph":"B","ts":1,"pid":1,"tid":1},
			{"name":"copy","ph":"E","ts":2,"pid":1,"tid":1}]}`, "does not match"},
		{"time-warp", `{"traceEvents":[
			{"name":"a","ph":"B","ts":5,"pid":1,"tid":1},
			{"name":"a","ph":"E","ts":4,"pid":1,"tid":1}]}`, "precedes"},
		{"bad-phase", `{"traceEvents":[{"name":"x","ph":"X","ts":1,"pid":1,"tid":1}]}`, "unsupported"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := trace.ValidateChrome([]byte(tc.doc))
			if err == nil {
				t.Fatal("ValidateChrome accepted a malformed document")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCSVExport(t *testing.T) {
	evs := []trace.Event{
		{At: 0, Kind: trace.KindPauseBegin},
		{At: 5, Kind: trace.KindPhaseBegin, Phase: trace.PhaseFlip},
		{At: 9, Kind: trace.KindPhaseEnd, Phase: trace.PhaseFlip},
		{At: 10, Kind: trace.KindPauseEnd, A: 1, B: 2, C: 3},
	}
	out := trace.CSV(evs)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("CSV has %d lines, want header + 4 rows:\n%s", len(lines), out)
	}
	if lines[0] != "at_ns,kind,phase,a,b,c" {
		t.Fatalf("bad header %q", lines[0])
	}
	if lines[2] != "5,phase-begin,flip,0,0,0" {
		t.Fatalf("bad row %q", lines[2])
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	a, err := trace.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total() != 0 || a.TotalPause() != 0 || len(a.Pauses) != 0 {
		t.Fatal("empty trace produced non-zero digest")
	}
	if got := a.Utilization(); got != 1 {
		t.Fatalf("empty-trace utilization = %v, want 1", got)
	}
}
