package vm_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repligc/internal/core"
	"repligc/internal/heap"
	"repligc/internal/lang"
	"repligc/internal/simtime"
	"repligc/internal/stopcopy"
	"repligc/internal/vm"
)

// progGen produces random, scope-correct, deterministic MiniML programs of
// integer type. Every generated program terminates (recursion is always on
// a structurally decreasing counter) and prints a single integer, so runs
// under different collectors are directly comparable.
type progGen struct {
	rng   *rand.Rand
	vars  []string // in-scope integer variables
	funcs []string // in-scope int->int functions
	depth int
	next  int
}

func (g *progGen) fresh(prefix string) string {
	g.next++
	return fmt.Sprintf("%s%d", prefix, g.next)
}

// intExpr emits an integer-valued expression.
func (g *progGen) intExpr() string {
	g.depth++
	defer func() { g.depth-- }()
	if g.depth > 5 {
		return g.atom()
	}
	switch g.rng.Intn(10) {
	case 0, 1:
		return fmt.Sprintf("(%s + %s)", g.intExpr(), g.intExpr())
	case 2:
		return fmt.Sprintf("(%s * %s)", g.atom(), g.atom())
	case 3:
		return fmt.Sprintf("(%s - %s)", g.intExpr(), g.atom())
	case 4:
		return fmt.Sprintf("(if %s < %s then %s else %s)",
			g.atom(), g.atom(), g.intExpr(), g.intExpr())
	case 5:
		v := g.fresh("v")
		g.vars = append(g.vars, v)
		body := g.intExpr()
		g.vars = g.vars[:len(g.vars)-1]
		return fmt.Sprintf("(let %s = %s in %s)", v, g.intExpr(), body)
	case 6:
		if len(g.funcs) > 0 {
			f := g.funcs[g.rng.Intn(len(g.funcs))]
			return fmt.Sprintf("(%s %s)", f, g.atom())
		}
		return g.atom()
	case 7:
		// Tuple round trip.
		return fmt.Sprintf("(#1 (%s, %s) + #2 (0, %s))", g.intExpr(), g.atom(), g.atom())
	case 8:
		// List fold via a local recursive function.
		f := g.fresh("sum")
		return fmt.Sprintf(
			"(fun %s l = case l of [] => 0 | x :: r => x + %s r in %s [%s, %s, %s])",
			f, f, f, g.atom(), g.atom(), g.atom())
	default:
		// Ref cell round trip.
		r := g.fresh("r")
		return fmt.Sprintf("(let %s = ref %s in (%s := !%s + %s; !%s))",
			r, g.atom(), r, r, g.atom(), r)
	}
}

func (g *progGen) atom() string {
	if len(g.vars) > 0 && g.rng.Intn(2) == 0 {
		return g.vars[g.rng.Intn(len(g.vars))]
	}
	return fmt.Sprintf("%d", g.rng.Intn(100))
}

// gen produces a whole program: a few top-level functions, then a print of
// a checksum expression.
func genProgram(seed int64) string {
	g := &progGen{rng: rand.New(rand.NewSource(seed))}
	var b strings.Builder
	nf := 1 + g.rng.Intn(3)
	for i := 0; i < nf; i++ {
		f := g.fresh("f")
		p := g.fresh("x")
		g.vars = []string{p}
		// Structural recursion on a counter guarantees termination.
		fmt.Fprintf(&b, "fun %s %s = if %s <= 0 then %s else %s + %s (%s - 1) in\n",
			f, p, p, g.atom(), g.intExpr(), f, p)
		g.vars = nil
		g.funcs = append(g.funcs, f)
	}
	fmt.Fprintf(&b, "print (itos (%s))\n", g.intExpr())
	return b.String()
}

// runUnder executes src under the named collector with a small heap.
func runUnder(t *testing.T, src, collector string) (string, error) {
	t.Helper()
	h := heap.New(heap.Config{NurseryBytes: 24 << 10, NurseryCapBytes: 2 << 20, OldSemiBytes: 32 << 20})
	pol := core.LogAllMutations
	if collector == "sc" {
		pol = core.LogPointersOnly
	}
	m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), pol)
	var gc core.Collector
	switch collector {
	case "sc":
		gc = stopcopy.New(h, stopcopy.Config{NurseryBytes: 24 << 10, MajorThresholdBytes: 128 << 10})
	case "rt":
		gc = core.NewReplicating(h, core.Config{
			NurseryBytes: 24 << 10, MajorThresholdBytes: 128 << 10,
			CopyLimitBytes: 4 << 10, IncrementalMinor: true, IncrementalMajor: true,
		})
	case "rt-conc":
		gc = core.NewReplicating(h, core.Config{
			NurseryBytes: 24 << 10, MajorThresholdBytes: 128 << 10,
			CopyLimitBytes: 4 << 10, IncrementalMinor: true, IncrementalMajor: true,
			InterleavedTaxPermille: 2500, BoundedLogProcessing: true,
		})
	}
	m.AttachGC(gc)
	prog, err := lang.Compile(m, src)
	if err != nil {
		return "", err
	}
	machine := vm.New(m, prog)
	machine.MaxSteps = 50_000_000
	if err := machine.Run(); err != nil {
		return machine.Output.String(), err
	}
	gc.FinishCycles(m)
	if err := core.AuditHeap(m); err != nil {
		return "", fmt.Errorf("heap audit: %w", err)
	}
	return machine.Output.String(), nil
}

// TestDifferentialFuzz generates random programs and demands identical
// output under stop-and-copy, real-time, and interleaved collection.
func TestDifferentialFuzz(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		src := genProgram(seed)
		ref, err := runUnder(t, src, "sc")
		if err != nil {
			t.Fatalf("seed %d under sc: %v\n%s", seed, err, src)
		}
		for _, gc := range []string{"rt", "rt-conc"} {
			got, err := runUnder(t, src, gc)
			if err != nil {
				t.Fatalf("seed %d under %s: %v\n%s", seed, gc, err, src)
			}
			if got != ref {
				t.Fatalf("seed %d: %s output %q != sc output %q\n%s", seed, gc, got, ref, src)
			}
		}
	}
}

// TestFuzzWithPrelude runs generated programs against prelude list
// machinery for extra allocation pressure.
func TestFuzzWithPrelude(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		g := &progGen{rng: rand.New(rand.NewSource(seed * 977))}
		src := fmt.Sprintf(`
let data = map (fn x => (x * %d) mod 97) (range 0 200) in
let sorted = msort (fn a => fn b => a <= b) data in
print (itos (suml sorted + %s))`, 3+seed, g.intExpr())
		ref, err := runUnder(t, lang.Prelude+src, "sc")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := runUnder(t, lang.Prelude+src, "rt")
		if err != nil {
			t.Fatalf("seed %d rt: %v", seed, err)
		}
		if got != ref {
			t.Fatalf("seed %d: rt %q != sc %q", seed, got, ref)
		}
	}
}
