package vm_test

// Wall-clock micro-benchmarks of the language substrate: compilation speed
// and interpretation speed of the Go implementation (the simulated clock is
// not involved in what these measure).

import (
	"testing"

	"repligc/internal/core"
	"repligc/internal/heap"
	"repligc/internal/lang"
	"repligc/internal/simtime"
	"repligc/internal/stopcopy"
	"repligc/internal/vm"
)

func benchRuntime() *core.Mutator {
	h := heap.New(heap.Config{NurseryBytes: 1 << 20, NurseryCapBytes: 16 << 20, OldSemiBytes: 64 << 20})
	m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), core.LogAllMutations)
	gc := stopcopy.New(h, stopcopy.Config{NurseryBytes: 1 << 20, MajorThresholdBytes: 8 << 20})
	m.AttachGC(gc)
	return m
}

// BenchmarkCompilePrelude measures compiling the ~120-line standard prelude.
func BenchmarkCompilePrelude(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := benchRuntime()
		if _, err := lang.Compile(m, lang.Prelude+"0"); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(lang.Prelude)))
}

// BenchmarkVMFib measures interpretation throughput on call-heavy code.
func BenchmarkVMFib(b *testing.B) {
	m := benchRuntime()
	prog, err := lang.Compile(m, `fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) in print (itos (fib 20))`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		machine := vm.New(m, prog)
		if err := machine.Run(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(machine.Steps), "bytecodes/op")
	}
}

// BenchmarkVMListChurn measures allocation-heavy interpretation.
func BenchmarkVMListChurn(b *testing.B) {
	m := benchRuntime()
	prog, err := lang.Compile(m, `
fun build n acc = if n = 0 then acc else build (n - 1) (n :: acc) in
fun sum l acc = case l of [] => acc | x :: r => sum r (acc + x) in
print (itos (sum (build 20000 []) 0))`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		machine := vm.New(m, prog)
		if err := machine.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
