// Package vm executes MiniML bytecode on the simulated heap. The machine
// mirrors SML/NJ's execution model as the paper describes it (§3.1): there
// is no runtime stack to speak of — environments and call frames are heap
// records allocated on every binding and every non-tail call, placing heavy
// demands on the allocator, which is exactly the workload the collectors
// are measured under. Green threads with synchronising variables provide
// the futures that the Sort benchmark is built from.
package vm

import (
	"bytes"
	"fmt"
	"strconv"

	"repligc/internal/bytecode"
	"repligc/internal/core"
	"repligc/internal/heap"
)

// Quantum is the number of instructions a thread runs before the scheduler
// rotates. Deterministic scheduling keeps every run reproducible across
// collector configurations.
const Quantum = 200

// frame record slots: {prev, env, closure, block, pc, sp}.
const (
	framePrev = iota
	frameEnv
	frameClo
	frameBlock
	framePC
	frameSP
	frameSlots
)

type threadStatus int

const (
	statusRunnable threadStatus = iota
	statusBlocked
	statusDone
)

// Thread is one green thread.
type Thread struct {
	id     int
	stack  []heap.Value
	env    heap.Value
	clo    heap.Value // current closure (free-variable access)
	frame  heap.Value
	block  int
	pc     int
	status threadStatus
}

func (t *Thread) push(v heap.Value) { t.stack = append(t.stack, v) }

func (t *Thread) pop() heap.Value {
	v := t.stack[len(t.stack)-1]
	t.stack = t.stack[:len(t.stack)-1]
	return v
}

// peek returns the value i slots below the top (0 = top).
func (t *Thread) peek(i int) heap.Value { return t.stack[len(t.stack)-1-i] }

// RuntimeError is a MiniML-level failure (match failure, type confusion,
// division by zero, deadlock).
type RuntimeError struct {
	Msg   string
	Block int
	PC    int
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("miniml runtime error at block %d pc %d: %s", e.Block, e.PC, e.Msg)
}

// VM runs one program.
type VM struct {
	m    *core.Mutator
	prog *bytecode.Program

	strings []heap.Value // preallocated literal pool (roots)
	threads []*Thread
	next    int // scheduler cursor

	// Output collects everything the program printed.
	Output bytes.Buffer

	// Steps counts executed instructions.
	Steps int64
	// MaxSteps aborts runaway programs; zero means unlimited.
	MaxSteps int64

	halted bool
	err    error
}

// New loads prog into a VM over m. The VM registers itself as a root
// source; the literal pool is allocated up front. If the heap is already
// too small for the literal pool the VM is constructed halted, and Run
// reports the typed *core.OOMError.
func New(m *core.Mutator, prog *bytecode.Program) *VM {
	v := &VM{m: m, prog: prog}
	m.Roots.Register(v)
	for _, s := range prog.Strings {
		p, err := m.AllocString([]byte(s))
		if err != nil {
			v.err = fmt.Errorf("miniml literal pool: %w", err)
			v.halted = true
			return v
		}
		v.strings = append(v.strings, p)
	}
	v.threads = append(v.threads, &Thread{id: 0, block: prog.Entry, env: heap.FromInt(0)})
	return v
}

// oom records heap exhaustion as the machine's terminal error. The typed
// *core.OOMError stays extractable through errors.As; the machine halts —
// a MiniML program cannot observe or recover a failed allocation.
func (v *VM) oom(t *Thread, err error) {
	v.err = fmt.Errorf("miniml heap exhausted at block %d pc %d: %w", t.block, t.pc, err)
	v.halted = true
}

// alloc allocates on behalf of the running thread; ok reports success.
// On exhaustion the VM halts with the allocator's typed error.
func (v *VM) alloc(t *Thread, k heap.Kind, n int) (heap.Value, bool) {
	p, err := v.m.Alloc(k, n)
	if err != nil {
		v.oom(t, err)
		return heap.Nil, false
	}
	return p, true
}

// allocString is alloc for string payloads.
func (v *VM) allocString(t *Thread, b []byte) (heap.Value, bool) {
	p, err := v.m.AllocString(b)
	if err != nil {
		v.oom(t, err)
		return heap.Nil, false
	}
	return p, true
}

// VisitRoots exposes every heap pointer the VM holds.
func (v *VM) VisitRoots(visit core.RootVisitor) {
	for i := range v.strings {
		visit(&v.strings[i])
	}
	for _, t := range v.threads {
		if t.status == statusDone {
			continue
		}
		visit(&t.env)
		visit(&t.clo)
		visit(&t.frame)
		for i := range t.stack {
			visit(&t.stack[i])
		}
	}
}

// Run executes until the program halts or fails.
func (v *VM) Run() error {
	for !v.halted {
		t := v.pickThread()
		if t == nil {
			if v.anyBlocked() {
				return &RuntimeError{Msg: "deadlock: all threads blocked"}
			}
			return &RuntimeError{Msg: "program ended without halting"}
		}
		v.runSlice(t, Quantum)
		if v.err != nil {
			return v.err
		}
	}
	return v.err
}

func (v *VM) pickThread() *Thread {
	n := len(v.threads)
	for i := 0; i < n; i++ {
		t := v.threads[(v.next+i)%n]
		switch t.status {
		case statusRunnable:
			v.next = (v.next + i + 1) % n
			return t
		case statusBlocked:
			// A blocked thread polls its condition when scheduled.
			if v.svReady(t) {
				v.next = (v.next + i + 1) % n
				t.status = statusRunnable
				return t
			}
		}
	}
	return nil
}

func (v *VM) anyBlocked() bool {
	for _, t := range v.threads {
		if t.status == statusBlocked {
			return true
		}
	}
	return false
}

// svReady reports whether the sync variable a blocked thread waits on has
// been filled. The sv is on top of the blocked thread's stack.
func (v *VM) svReady(t *Thread) bool {
	sv := t.peek(0)
	return v.m.Get(sv, 0) != heap.FromInt(0)
}

// checkClosure validates a callee: it must be a closure object whose code
// index is a real block. Untyped programs can apply arbitrary values;
// failing here keeps type confusion a MiniML-level error rather than a
// crash of the host.
func (v *VM) checkClosure(t *Thread, val heap.Value, what string) bool {
	if !val.IsPtr() || v.m.Kind(val) != heap.KindClosure {
		v.fail(t, "%s of non-closure %v", what, val)
		return false
	}
	blk := v.m.Get(val, 0)
	if !blk.IsInt() || blk.Int() < 0 || blk.Int() >= int64(len(v.prog.Blocks)) {
		v.fail(t, "%s of corrupt closure (code %v)", what, blk)
		return false
	}
	return true
}

func (v *VM) fail(t *Thread, format string, args ...any) {
	v.err = &RuntimeError{Msg: fmt.Sprintf(format, args...), Block: t.block, PC: t.pc}
	v.halted = true
}

// runSlice interprets up to quantum instructions on t.
func (v *VM) runSlice(t *Thread, quantum int) {
	m := v.m
	code := v.prog.Blocks[t.block].Code
	for i := 0; i < quantum; i++ {
		if t.pc >= len(code) {
			v.fail(t, "fell off end of block %d", t.block)
			return
		}
		ins := code[t.pc]
		t.pc++
		v.Steps++
		m.Step(1)
		if v.MaxSteps > 0 && v.Steps > v.MaxSteps {
			v.fail(t, "instruction budget exhausted (%d)", v.MaxSteps)
			return
		}

		// The main dispatch: gclint verifies every opcode constant is
		// handled, so a new instruction cannot silently hit the default.
		//gclint:dispatch
		switch ins.Op {
		case bytecode.OpNop:

		case bytecode.OpConstInt:
			t.push(heap.FromInt(int64(ins.A)))

		case bytecode.OpConstStr:
			t.push(v.strings[ins.A])

		case bytecode.OpLocal:
			e := t.env
			for h := int32(0); h < ins.A; h++ {
				e = m.Get(e, 0)
			}
			t.push(m.Get(e, 1))

		case bytecode.OpLocalRec:
			e := t.env
			for h := int32(0); h < ins.A; h++ {
				e = m.Get(e, 0)
			}
			t.push(e)

		case bytecode.OpFree:
			t.push(m.Get(t.clo, 1+int(ins.A)))

		case bytecode.OpClosure:
			// Captures sit on the stack, first free variable deepest.
			n := int(ins.B)
			p, ok := v.alloc(t, heap.KindClosure, 1+n)
			if !ok {
				return
			}
			m.Init(p, 0, heap.FromInt(int64(ins.A)))
			for i := 0; i < n; i++ {
				m.Init(p, 1+i, t.peek(n-1-i))
			}
			t.stack = t.stack[:len(t.stack)-n]
			t.push(p)

		case bytecode.OpCall:
			// Stack: [closure, arg]. Allocate the frame first, pin it on
			// the stack while the environment record is allocated, then
			// re-read everything — allocation can trigger a flip.
			if !v.checkClosure(t, t.peek(1), "call") {
				return
			}
			savedSP := len(t.stack) - 2
			f, ok := v.alloc(t, heap.KindRecord, frameSlots)
			if !ok {
				return
			}
			m.Init(f, framePrev, t.frame)
			m.Init(f, frameEnv, t.env)
			m.Init(f, frameClo, t.clo)
			m.Init(f, frameBlock, heap.FromInt(int64(t.block)))
			m.Init(f, framePC, heap.FromInt(int64(t.pc)))
			m.Init(f, frameSP, heap.FromInt(int64(savedSP)))
			t.push(f)
			e, ok := v.alloc(t, heap.KindRecord, 2)
			if !ok {
				return
			}
			f = t.pop()
			arg, clo := t.pop(), t.pop()
			m.Init(e, 0, heap.FromInt(0)) // base of the callee's local chain
			m.Init(e, 1, arg)
			t.frame = f
			t.env = e
			t.clo = clo
			t.block = int(m.Get(clo, 0).Int())
			t.pc = 0
			code = v.prog.Blocks[t.block].Code

		case bytecode.OpTailCall:
			if !v.checkClosure(t, t.peek(1), "tail call") {
				return
			}
			e, ok := v.alloc(t, heap.KindRecord, 2)
			if !ok {
				return
			}
			arg, clo := t.pop(), t.pop()
			m.Init(e, 0, heap.FromInt(0))
			m.Init(e, 1, arg)
			// Discard anything this call left pending on the stack.
			sp := 0
			if t.frame != heap.Nil {
				sp = int(m.Get(t.frame, frameSP).Int())
			}
			t.stack = t.stack[:sp]
			t.env = e
			t.clo = clo
			t.block = int(m.Get(clo, 0).Int())
			t.pc = 0
			code = v.prog.Blocks[t.block].Code

		case bytecode.OpReturn:
			result := t.pop()
			if t.frame == heap.Nil {
				t.status = statusDone
				t.stack = t.stack[:0]
				return
			}
			f := t.frame
			sp := int(m.Get(f, frameSP).Int())
			t.stack = t.stack[:sp]
			t.push(result)
			t.env = m.Get(f, frameEnv)
			t.clo = m.Get(f, frameClo)
			t.block = int(m.Get(f, frameBlock).Int())
			t.pc = int(m.Get(f, framePC).Int())
			t.frame = m.Get(f, framePrev)
			code = v.prog.Blocks[t.block].Code

		case bytecode.OpJump:
			t.pc = int(ins.A)

		case bytecode.OpJumpIfNot:
			if t.pop() == heap.FromInt(0) {
				t.pc = int(ins.A)
			}

		case bytecode.OpBin:
			if !v.binop(t, bytecode.BinOp(ins.A)) {
				return
			}

		case bytecode.OpNot:
			t.push(heap.FromBool(t.pop() == heap.FromInt(0)))

		case bytecode.OpNeg:
			x := t.pop()
			if !x.IsInt() {
				v.fail(t, "negation of non-integer")
				return
			}
			t.push(heap.FromInt(-x.Int()))

		case bytecode.OpMkTuple:
			n := int(ins.A)
			p, ok := v.alloc(t, heap.KindRecord, n)
			if !ok {
				return
			}
			for i := 0; i < n; i++ {
				m.Init(p, i, t.peek(n-1-i))
			}
			t.stack = t.stack[:len(t.stack)-n]
			t.push(p)

		case bytecode.OpProj:
			tup := t.pop()
			if !tup.IsPtr() {
				v.fail(t, "projection from non-tuple")
				return
			}
			hdr := m.Header(tup)
			if !hdr.Kind().HasPointers() || int(ins.A) >= hdr.Len() {
				v.fail(t, "projection #%d out of range for %v[%d]", ins.A+1, hdr.Kind(), hdr.Len())
				return
			}
			t.push(m.Get(tup, int(ins.A)))

		case bytecode.OpMkRef:
			p, ok := v.alloc(t, heap.KindRef, 1)
			if !ok {
				return
			}
			m.Init(p, 0, t.peek(0))
			t.pop()
			t.push(p)

		case bytecode.OpDeref:
			r := t.pop()
			if !r.IsPtr() {
				v.fail(t, "dereference of non-ref")
				return
			}
			t.push(m.Get(r, 0))

		case bytecode.OpAssign:
			val := t.pop()
			r := t.pop()
			if !r.IsPtr() {
				v.fail(t, "assignment to non-ref")
				return
			}
			m.Set(r, 0, val)
			t.push(heap.FromInt(0))

		case bytecode.OpMkArray:
			init := t.peek(0)
			nv := t.peek(1)
			if !nv.IsInt() || nv.Int() < 0 {
				v.fail(t, "array size must be a non-negative integer")
				return
			}
			n := int(nv.Int())
			p, ok := v.alloc(t, heap.KindArray, n)
			if !ok {
				return
			}
			init = t.peek(0) // re-read after allocation
			for i := 0; i < n; i++ {
				m.Init(p, i, init)
			}
			t.pop()
			t.pop()
			t.push(p)

		case bytecode.OpAGet:
			iv := t.pop()
			arr := t.pop()
			if !arr.IsPtr() || !iv.IsInt() {
				v.fail(t, "aget type error")
				return
			}
			i := int(iv.Int())
			if i < 0 || i >= m.Length(arr) {
				v.fail(t, "array index %d out of bounds %d", i, m.Length(arr))
				return
			}
			t.push(m.Get(arr, i))

		case bytecode.OpASet:
			val := t.pop()
			iv := t.pop()
			arr := t.pop()
			if !arr.IsPtr() || !iv.IsInt() {
				v.fail(t, "aset type error")
				return
			}
			i := int(iv.Int())
			if i < 0 || i >= m.Length(arr) {
				v.fail(t, "array index %d out of bounds %d", i, m.Length(arr))
				return
			}
			m.Set(arr, i, val)
			t.push(heap.FromInt(0))

		case bytecode.OpALen:
			arr := t.pop()
			if !arr.IsPtr() {
				v.fail(t, "alen of non-array")
				return
			}
			t.push(heap.FromInt(int64(m.Length(arr))))

		case bytecode.OpBind:
			e, ok := v.alloc(t, heap.KindRecord, 2)
			if !ok {
				return
			}
			m.Init(e, 0, t.env)
			m.Init(e, 1, t.peek(0))
			t.pop()
			t.env = e

		case bytecode.OpBindHole:
			e, ok := v.alloc(t, heap.KindRef, 2)
			if !ok {
				return
			}
			m.Init(e, 0, t.env)
			m.Init(e, 1, heap.FromInt(0))
			t.env = e

		case bytecode.OpPatch:
			e := t.env
			for h := int32(0); h < ins.A; h++ {
				e = m.Get(e, 0)
			}
			m.Set(e, 1, t.pop())

		case bytecode.OpEnvPop:
			for h := int32(0); h < ins.A; h++ {
				t.env = m.Get(t.env, 0)
			}

		case bytecode.OpPopN:
			t.stack = t.stack[:len(t.stack)-int(ins.A)]

		case bytecode.OpSwapPop:
			r := t.pop()
			t.pop()
			t.push(r)

		case bytecode.OpDup:
			t.push(t.peek(0))

		case bytecode.OpTestInt:
			x := t.pop()
			if !x.IsInt() || x.Int() != int64(ins.A) {
				t.pc = int(ins.B)
			}

		case bytecode.OpTestNil:
			if t.pop() != heap.FromInt(0) {
				t.pc = int(ins.A)
			}

		case bytecode.OpTestCons:
			x := t.peek(0)
			// A cons cell is a two-slot pointer record; anything else
			// (immediates, strings, byte arrays, wider tuples) fails the
			// pattern rather than being reinterpreted.
			if !x.IsPtr() {
				t.pop()
				t.pc = int(ins.A)
				break
			}
			if hdr := m.Header(x); !hdr.Kind().HasPointers() || hdr.Len() != 2 {
				t.pop()
				t.pc = int(ins.A)
				break
			}
			t.pop()
			t.push(m.Get(x, 1)) // tail
			t.push(m.Get(x, 0)) // head
		case bytecode.OpTestTuple:
			x := t.peek(0)
			if !x.IsPtr() || !m.Kind(x).HasPointers() || m.Length(x) != int(ins.A) {
				t.pop()
				t.pc = int(ins.B)
				break
			}
			t.pop()
			for i := int(ins.A) - 1; i >= 0; i-- {
				t.push(m.Get(x, i))
			}

		case bytecode.OpPrint:
			s := t.pop()
			if !s.IsPtr() {
				v.fail(t, "print of non-string")
				return
			}
			v.Output.Write(m.Bytes(s))
			t.push(heap.FromInt(0))

		case bytecode.OpItoS:
			x := t.pop()
			if !x.IsInt() {
				v.fail(t, "itos of non-integer")
				return
			}
			s, ok := v.allocString(t, []byte(strconv.FormatInt(x.Int(), 10)))
			if !ok {
				return
			}
			t.push(s)

		case bytecode.OpStoI:
			s := t.pop()
			if !s.IsPtr() {
				v.fail(t, "stoi of non-string")
				return
			}
			n, _ := strconv.ParseInt(m.GoString(s), 10, 64)
			t.push(heap.FromInt(n))

		case bytecode.OpSize:
			s := t.pop()
			if !s.IsPtr() {
				v.fail(t, "size of non-string")
				return
			}
			t.push(heap.FromInt(int64(m.Length(s))))

		case bytecode.OpSub:
			iv := t.pop()
			s := t.pop()
			if !s.IsPtr() || !iv.IsInt() {
				v.fail(t, "sub type error")
				return
			}
			i := int(iv.Int())
			if i < 0 || i >= m.Length(s) {
				v.fail(t, "string index %d out of bounds %d", i, m.Length(s))
				return
			}
			t.push(heap.FromInt(int64(m.GetByte(s, i))))

		case bytecode.OpSpawn:
			clo := t.peek(0)
			if !v.checkClosure(t, clo, "spawn") {
				return
			}
			e, ok := v.alloc(t, heap.KindRecord, 2)
			if !ok {
				return
			}
			clo = t.peek(0)
			m.Init(e, 0, heap.FromInt(0))
			m.Init(e, 1, heap.FromInt(0)) // unit argument
			nt := &Thread{
				id:    len(v.threads),
				block: int(m.Get(clo, 0).Int()),
				env:   e,
				clo:   clo,
			}
			t.pop()
			v.threads = append(v.threads, nt)
			t.push(heap.FromInt(0))

		case bytecode.OpYield:
			t.push(heap.FromInt(0))
			return // end of slice: reschedule

		case bytecode.OpNewSV:
			p, ok := v.alloc(t, heap.KindRef, 2)
			if !ok {
				return
			}
			m.Init(p, 0, heap.FromInt(0)) // empty
			m.Init(p, 1, heap.FromInt(0))
			t.push(p)

		case bytecode.OpPutSV:
			val := t.peek(0)
			sv := t.peek(1)
			if !sv.IsPtr() {
				v.fail(t, "putsv on non-syncvar")
				return
			}
			if m.Get(sv, 0) != heap.FromInt(0) {
				v.fail(t, "putsv on full syncvar")
				return
			}
			m.Set(sv, 1, val)
			m.Set(sv, 0, heap.FromInt(1))
			t.pop()
			t.pop()
			t.push(heap.FromInt(0))

		case bytecode.OpTakeSV:
			sv := t.peek(0)
			if !sv.IsPtr() {
				v.fail(t, "takesv on non-syncvar")
				return
			}
			if m.Get(sv, 0) == heap.FromInt(0) {
				// Not ready: block with the sv still on the stack and the
				// pc rewound so the instruction retries when scheduled.
				t.pc--
				t.status = statusBlocked
				return
			}
			t.pop()
			t.push(m.Get(sv, 1))

		case bytecode.OpHalt:
			v.halted = true
			if ins.A != 0 {
				v.fail(t, "match failure")
			}
			return

		default:
			v.fail(t, "illegal opcode %v", ins.Op)
			return
		}

		if len(t.stack) > 1<<20 {
			v.fail(t, "operand stack overflow")
			return
		}
	}
}

// binop executes OpBin; reports false when the VM failed.
func (v *VM) binop(t *Thread, op bytecode.BinOp) bool {
	m := v.m
	//gclint:allow exhaustive -- partial by design: every operator absent here is an integer operator handled (exhaustively) by the typed switch below
	switch op {
	case bytecode.BinCons:
		p, ok := v.alloc(t, heap.KindRecord, 2)
		if !ok {
			return false
		}
		m.Init(p, 0, t.peek(1)) // head
		m.Init(p, 1, t.peek(0)) // tail
		t.pop()
		t.pop()
		t.push(p)
		return true

	case bytecode.BinStrCat:
		a, b := t.peek(1), t.peek(0)
		if !a.IsPtr() || !b.IsPtr() {
			v.fail(t, "^ of non-strings")
			return false
		}
		buf := append(m.Bytes(a), m.Bytes(b)...)
		s, ok := v.allocString(t, buf)
		if !ok {
			return false
		}
		t.pop()
		t.pop()
		t.push(s)
		return true

	case bytecode.BinEq, bytecode.BinNe:
		b, a := t.pop(), t.pop()
		eq := m.Eq(a, b)
		if op == bytecode.BinNe {
			eq = !eq
		}
		t.push(heap.FromBool(eq))
		return true
	}

	bv, av := t.pop(), t.pop()
	if !av.IsInt() || !bv.IsInt() {
		v.fail(t, "%v of non-integers (%v, %v)", op, av, bv)
		return false
	}
	a, b := av.Int(), bv.Int()
	var r int64
	switch op {
	case bytecode.BinAdd:
		r = a + b
	case bytecode.BinSub:
		r = a - b
	case bytecode.BinMul:
		r = a * b
	case bytecode.BinDiv:
		if b == 0 {
			v.fail(t, "division by zero")
			return false
		}
		r = a / b
	case bytecode.BinMod:
		if b == 0 {
			v.fail(t, "mod by zero")
			return false
		}
		r = a % b
	case bytecode.BinLt:
		t.push(heap.FromBool(a < b))
		return true
	case bytecode.BinLe:
		t.push(heap.FromBool(a <= b))
		return true
	case bytecode.BinGt:
		t.push(heap.FromBool(a > b))
		return true
	case bytecode.BinGe:
		t.push(heap.FromBool(a >= b))
		return true
	default:
		v.fail(t, "illegal binary operator %v", op)
		return false
	}
	t.push(heap.FromInt(r))
	return true
}

// ThreadCount reports how many threads were ever created.
func (v *VM) ThreadCount() int { return len(v.threads) }
