package vm_test

import (
	"strings"
	"testing"

	"repligc/internal/bytecode"
	"repligc/internal/core"
	"repligc/internal/heap"
	"repligc/internal/lang"
	"repligc/internal/simtime"
	"repligc/internal/stopcopy"
	"repligc/internal/vm"
)

// run compiles and executes src under the real-time collector with a small
// nursery, returning the program's output.
func run(t *testing.T, src string) string {
	t.Helper()
	out, err := tryRun(src, "rt")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out
}

func tryRun(src, collector string) (string, error) {
	h := heap.New(heap.Config{
		NurseryBytes:    64 << 10,
		NurseryCapBytes: 2 << 20,
		OldSemiBytes:    32 << 20,
	})
	m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), core.LogAllMutations)
	var gc core.Collector
	switch collector {
	case "rt":
		gc = core.NewReplicating(h, core.Config{
			NurseryBytes:        64 << 10,
			MajorThresholdBytes: 512 << 10,
			CopyLimitBytes:      16 << 10,
			IncrementalMinor:    true,
			IncrementalMajor:    true,
		})
	case "sc":
		gc = stopcopy.New(h, stopcopy.Config{NurseryBytes: 64 << 10, MajorThresholdBytes: 512 << 10})
	}
	m.AttachGC(gc)
	prog, err := lang.Compile(m, src)
	if err != nil {
		return "", err
	}
	machine := vm.New(m, prog)
	machine.MaxSteps = 200_000_000
	if err := machine.Run(); err != nil {
		return machine.Output.String(), err
	}
	return machine.Output.String(), nil
}

func TestArithmetic(t *testing.T) {
	cases := []struct{ src, want string }{
		{`print (itos (1 + 2 * 3))`, "7"},
		{`print (itos (10 - 3 - 2))`, "5"},
		{`print (itos (17 / 5))`, "3"},
		{`print (itos (17 mod 5))`, "2"},
		{`print (itos (~5 + 3))`, "-2"},
		{`if 3 < 4 then print "yes" else print "no"`, "yes"},
		{`if 3 >= 4 then print "yes" else print "no"`, "no"},
		{`if true andalso false then print "a" else print "b"`, "b"},
		{`if false orelse true then print "a" else print "b"`, "a"},
		{`if not (1 = 2) then print "ne" else print "eq"`, "ne"},
	}
	for _, c := range cases {
		if got := run(t, c.src); got != c.want {
			t.Errorf("%s => %q, want %q", c.src, got, c.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand must not be evaluated when the left decides.
	src := `let r = ref 0 in
	(if false andalso (r := 1; true) then () else ();
	 if true orelse (r := 2; true) then () else ();
	 print (itos (!r)))`
	if got := run(t, src); got != "0" {
		t.Fatalf("short circuit broke: r = %s", got)
	}
}

func TestLetAndFunctions(t *testing.T) {
	src := `
let x = 10 in
let y = x * 2 in
fun add a b = a + b in
print (itos (add x y))`
	if got := run(t, src); got != "30" {
		t.Fatalf("got %q", got)
	}
}

func TestClosuresCapture(t *testing.T) {
	src := `
fun mkadd n = fn x => x + n in
let add5 = mkadd 5 in
let add7 = mkadd 7 in
print (itos (add5 10 + add7 100))`
	if got := run(t, src); got != "122" {
		t.Fatalf("got %q", got)
	}
}

func TestRecursionAndTailCalls(t *testing.T) {
	// A tail loop of a million iterations must not overflow anything.
	src := `
fun loop i acc = if i = 0 then acc else loop (i - 1) (acc + i) in
print (itos (loop 1000000 0))`
	if got := run(t, src); got != "500000500000" {
		t.Fatalf("got %q", got)
	}
}

func TestMutualRecursion(t *testing.T) {
	src := `
fun isEven n = if n = 0 then true else isOdd (n - 1)
and isOdd n = if n = 0 then false else isEven (n - 1) in
(if isEven 10 then print "e" else print "o";
 if isOdd 7 then print "O" else print "E")`
	if got := run(t, src); got != "eO" {
		t.Fatalf("got %q", got)
	}
}

func TestListsAndCase(t *testing.T) {
	src := `
fun sum l = case l of [] => 0 | x :: rest => x + sum rest in
fun len l = case l of [] => 0 | _ :: rest => 1 + len rest in
(print (itos (sum [1, 2, 3, 4, 5]));
 print " ";
 print (itos (len [7, 7, 7])))`
	if got := run(t, src); got != "15 3" {
		t.Fatalf("got %q", got)
	}
}

func TestNestedPatterns(t *testing.T) {
	src := `
fun pairs l = case l of
    [] => 0
  | (a, b) :: rest => a * b + pairs rest in
print (itos (pairs [(2, 3), (4, 5)]))`
	if got := run(t, src); got != "26" {
		t.Fatalf("got %q", got)
	}
}

func TestCaseLiteralsAndFallthrough(t *testing.T) {
	src := `
fun f n = case n of 0 => "zero" | 1 => "one" | _ => "many" in
(print (f 0); print (f 1); print (f 9))`
	if got := run(t, src); got != "zeroonemany" {
		t.Fatalf("got %q", got)
	}
}

func TestMatchFailure(t *testing.T) {
	_, err := tryRun(`case 5 of 1 => print "one"`, "rt")
	if err == nil || !strings.Contains(err.Error(), "match failure") {
		t.Fatalf("want match failure, got %v", err)
	}
}

func TestTuplesAndProjections(t *testing.T) {
	src := `
let t = (1, "two", 3) in
(print (itos (#1 t)); print (#2 t); print (itos (#3 t)))`
	if got := run(t, src); got != "1two3" {
		t.Fatalf("got %q", got)
	}
}

func TestRefsAndSequence(t *testing.T) {
	src := `
let r = ref 10 in
(r := !r + 5;
 r := !r * 2;
 print (itos (!r)))`
	if got := run(t, src); got != "30" {
		t.Fatalf("got %q", got)
	}
}

func TestArrays(t *testing.T) {
	src := `
let a = array 10 0 in
fun fill i = if i = 10 then () else (aset a i (i * i); fill (i + 1)) in
fun total i acc = if i = 10 then acc else total (i + 1) (acc + aget a i) in
(fill 0; print (itos (total 0 0)); print " "; print (itos (alen a)))`
	if got := run(t, src); got != "285 10" {
		t.Fatalf("got %q", got)
	}
}

func TestStrings(t *testing.T) {
	src := `
let s = "hello" ^ ", " ^ "world" in
(print s; print " "; print (itos (size s)); print " "; print (itos (sub s 0)))`
	if got := run(t, src); got != "hello, world 12 104" {
		t.Fatalf("got %q", got)
	}
}

func TestPolymorphicEquality(t *testing.T) {
	src := `
(if [1, 2, 3] = [1, 2, 3] then print "structural" else print "no";
 print " ";
 if (1, (2, 3)) = (1, (2, 3)) then print "deep" else print "shallow";
 print " ";
 let r = ref 1 in
 let s = ref 1 in
 if r = s then print "refs-eq" else print "refs-ne")`
	if got := run(t, src); got != "structural deep refs-ne" {
		t.Fatalf("got %q", got)
	}
}

func TestStoi(t *testing.T) {
	if got := run(t, `print (itos (stoi "123" + 1))`); got != "124" {
		t.Fatalf("got %q", got)
	}
}

func TestThreadsAndSyncVars(t *testing.T) {
	src := `
let sv = newsv () in
(spawn (fn u => putsv sv 42);
 print (itos (takesv sv)))`
	if got := run(t, src); got != "42" {
		t.Fatalf("got %q", got)
	}
}

func TestFuturesFanOut(t *testing.T) {
	src := `
fun future f = let sv = newsv () in (spawn (fn u => putsv sv (f ())); sv) in
fun force sv = takesv sv in
fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) in
let a = future (fn u => fib 15) in
let b = future (fn u => fib 14) in
print (itos (force a + force b))`
	if got := run(t, src); got != "987" {
		t.Fatalf("got %q", got) // fib 15 = 610, fib 14 = 377
	}
}

func TestDeadlockDetection(t *testing.T) {
	_, err := tryRun(`print (itos (takesv (newsv ())))`, "rt")
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock, got %v", err)
	}
}

func TestDivisionByZero(t *testing.T) {
	_, err := tryRun(`print (itos (1 / 0))`, "rt")
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("want division by zero, got %v", err)
	}
}

// TestGCStress allocates heavily with live structures retained across many
// collections and checks the result under both collectors.
func TestGCStress(t *testing.T) {
	src := `
fun build n = if n = 0 then [] else n :: build (n - 1) in
fun sum l = case l of [] => 0 | x :: r => x + sum r in
fun iter k acc =
  if k = 0 then acc
  else iter (k - 1) (acc + sum (build 300)) in
print (itos (iter 200 0))`
	want := "9030000" // 200 * (300*301/2)
	for _, gc := range []string{"rt", "sc"} {
		got, err := tryRun(src, gc)
		if err != nil {
			t.Fatalf("%s: %v", gc, err)
		}
		if got != want {
			t.Errorf("%s: got %q, want %q", gc, got, want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		`undefined_variable`,
		`print`,          // builtin not fully applied (as bare var)
		`spawn 1 2`,      // builtin arity
		`let x = 1 in`,   // truncated
		`case 1 of`,      // truncated
		`fun f = 1 in f`, // missing parameter
	}
	for _, src := range cases {
		if _, err := tryRun(src, "rt"); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	h := heap.New(heap.Config{NurseryBytes: 64 << 10, NurseryCapBytes: 1 << 20, OldSemiBytes: 8 << 20})
	m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), core.LogAllMutations)
	gc := stopcopy.New(h, stopcopy.Config{NurseryBytes: 64 << 10})
	m.AttachGC(gc)
	prog, err := lang.Compile(m, `fun f x = x + 1 in print (itos (f 41))`)
	if err != nil {
		t.Fatal(err)
	}
	dis := prog.Disassemble()
	for _, want := range []string{"entry", "call", "print", "halt"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestInstrEncodeDecode(t *testing.T) {
	ins := bytecode.Instr{Op: bytecode.OpTestInt, A: -12345, B: 67890}
	var buf [bytecode.EncodedSize]byte
	ins.EncodeInto(buf[:], 0)
	back := bytecode.DecodeInstr(buf[:], 0)
	if back != ins {
		t.Fatalf("round trip: %v != %v", back, ins)
	}
}

func TestVariableShadowing(t *testing.T) {
	src := `
let x = 1 in
let x = x + 10 in
fun f x = x * 2 in
(print (itos x); print " "; print (itos (f x)))`
	if got := run(t, src); got != "11 22" {
		t.Fatalf("got %q", got)
	}
}

func TestClosureOverMutableBinding(t *testing.T) {
	// A closure captures the ref cell, not a snapshot of its contents.
	src := `
let r = ref 1 in
let get = fn u => !r in
(r := 99; print (itos (get ())))`
	if got := run(t, src); got != "99" {
		t.Fatalf("got %q", got)
	}
}

func TestDeepDataSurvival(t *testing.T) {
	// A deep list retained across many collections must stay intact.
	src := `
fun build n = if n = 0 then [] else n :: build (n - 1) in
let keep = build 5000 in
fun churn k = if k = 0 then () else (build 500; churn (k - 1)) in
fun sum l acc = case l of [] => acc | x :: r => sum r (acc + x) in
(churn 200; print (itos (sum keep 0)))`
	if got := run(t, src); got != "12502500" {
		t.Fatalf("got %q", got)
	}
}

func TestSpawnFairness(t *testing.T) {
	// Two spawned threads and the main thread interleave; both spawned
	// threads must finish even though main blocks on only one of them.
	src := `
let a = newsv () in
let b = newsv () in
let done = ref 0 in
fun work n acc = if n = 0 then acc else work (n - 1) (acc + n) in
(spawn (fn u => (putsv a (work 5000 0); done := !done + 1));
 spawn (fn u => (putsv b (work 200 0); done := !done + 1));
 let x = takesv a in
 let y = takesv b in
 print (itos (x + y + !done)))`
	want := "12522602" // 12502500 + 20100 + 2
	if got := run(t, src); got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestPutSVTwiceFails(t *testing.T) {
	_, err := tryRun(`let s = newsv () in (putsv s 1; putsv s 2)`, "rt")
	if err == nil || !strings.Contains(err.Error(), "putsv on full") {
		t.Fatalf("want putsv error, got %v", err)
	}
}

func TestTakeSVIsReadOnly(t *testing.T) {
	// Futures semantics: takesv does not empty the variable.
	src := `let s = newsv () in (putsv s 7; print (itos (takesv s + takesv s)))`
	if got := run(t, src); got != "14" {
		t.Fatalf("got %q", got)
	}
}

func TestStringIndexBounds(t *testing.T) {
	_, err := tryRun(`print (itos (sub "ab" 2))`, "rt")
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("want bounds error, got %v", err)
	}
}

func TestArrayBounds(t *testing.T) {
	for _, src := range []string{
		`let a = array 3 0 in print (itos (aget a 3))`,
		`let a = array 3 0 in aset a (~1) 5`,
	} {
		if _, err := tryRun(src, "rt"); err == nil {
			t.Errorf("no bounds error for %q", src)
		}
	}
}

func TestZeroLengthStructures(t *testing.T) {
	src := `
let a = array 0 0 in
let s = "" in
(print (itos (alen a)); print (itos (size s));
 if [] = [] then print "nil-eq" else print "bad")`
	if got := run(t, src); got != "00nil-eq" {
		t.Fatalf("got %q", got)
	}
}

func TestNegativeArithmetic(t *testing.T) {
	cases := []struct{ src, want string }{
		{`print (itos (~7 mod 3))`, "-1"}, // Go semantics: truncated
		{`print (itos (~7 / 2))`, "-3"},   // truncated division
		{`print (itos (0 - 2147483647))`, "-2147483647"},
	}
	for _, c := range cases {
		if got := run(t, c.src); got != c.want {
			t.Errorf("%s => %q, want %q", c.src, got, c.want)
		}
	}
}

func TestCaseOnMixedValues(t *testing.T) {
	// The same case expression dispatching over ints and lists (untyped
	// patterns fail cleanly rather than corrupting the stack).
	src := `
fun classify v =
  case v of
    0 => "zero"
  | [] => "zero"  (* unreachable: [] is also the immediate 0 *)
  | x :: _ => "cons"
  | _ => "other" in
(print (classify 0); print " "; print (classify [1]); print " "; print (classify 9))`
	if got := run(t, src); got != "zero cons other" {
		t.Fatalf("got %q", got)
	}
}

func TestThreadHeavyProgramUnderTinyNursery(t *testing.T) {
	src := `
fun future f = let sv = newsv () in (spawn (fn u => putsv sv (f ())); sv) in
fun build n = if n = 0 then [] else n :: build (n - 1) in
fun sum l acc = case l of [] => acc | x :: r => sum r (acc + x) in
fun launch k =
  if k = 0 then []
  else future (fn u => sum (build 400) 0) :: launch (k - 1) in
fun collect fs acc = case fs of [] => acc | f :: r => collect r (acc + takesv f) in
print (itos (collect (launch 20) 0))`
	want := "1604000" // 20 * 80200
	if got := run(t, src); got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

// TestDeterminism: two identical runs must execute the identical number of
// instructions and produce identical output — the property that makes the
// paper's record/replay methodology sound.
func TestDeterminism(t *testing.T) {
	src := `
fun future f = let sv = newsv () in (spawn (fn u => putsv sv (f ())); sv) in
fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) in
let a = future (fn u => fib 14) in
print (itos (takesv a + fib 13))`
	run1 := func() (string, int64) {
		h := heap.New(heap.Config{NurseryBytes: 32 << 10, NurseryCapBytes: 1 << 20, OldSemiBytes: 16 << 20})
		m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), core.LogAllMutations)
		gc := core.NewReplicating(h, core.Config{
			NurseryBytes: 32 << 10, MajorThresholdBytes: 128 << 10,
			CopyLimitBytes: 8 << 10, IncrementalMinor: true, IncrementalMajor: true,
		})
		m.AttachGC(gc)
		prog, err := lang.Compile(m, src)
		if err != nil {
			t.Fatal(err)
		}
		machine := vm.New(m, prog)
		if err := machine.Run(); err != nil {
			t.Fatal(err)
		}
		return machine.Output.String(), machine.Steps
	}
	o1, s1 := run1()
	o2, s2 := run1()
	if o1 != o2 || s1 != s2 {
		t.Fatalf("nondeterminism: (%q, %d) vs (%q, %d)", o1, s1, o2, s2)
	}
}

// TestTypeConfusionIsRuntimeError: untyped programs can apply, project and
// pattern-match arbitrary values; all of it must surface as MiniML runtime
// errors or failed matches, never as a crash of the host process.
func TestTypeConfusionIsRuntimeError(t *testing.T) {
	errCases := []struct{ src, want string }{
		{`print ((1, 2) 3)`, "call of non-closure"},
		{`print (itos (#3 (1, 2)))`, "out of range"},
		{`print (itos (#1 "str"))`, "out of range"},
		{`spawn (1, 2)`, "spawn of non-closure"},
		{`fun f g = g 0 in print (itos (f 5))`, "non-closure"},
	}
	for _, c := range errCases {
		_, err := tryRun(c.src, "rt")
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", c.src, err, c.want)
		}
	}
	// Cons patterns reject non-record values instead of reinterpreting
	// their payloads.
	okCases := []struct{ src, want string }{
		{`case "ab" of x :: r => print "cons" | _ => print "other"`, "other"},
		{`case (1, 2, 3) of x :: r => print "cons" | _ => print "other"`, "other"},
		{`case (1, 2) of (a, b, c) => print "three" | _ => print "other"`, "other"},
	}
	for _, c := range okCases {
		got, err := tryRun(c.src, "rt")
		if err != nil || got != c.want {
			t.Errorf("%s => (%q, %v), want %q", c.src, got, err, c.want)
		}
	}
}

func TestListPatterns(t *testing.T) {
	cases := []struct{ src, want string }{
		{`case [1, 2] of [a, b] => print (itos (a * 10 + b)) | _ => print "no"`, "12"},
		{`case [1] of [a, b] => print "two" | [a] => print ("one " ^ itos a) | _ => print "no"`, "one 1"},
		{`case [1, 2, 3] of [a, b] => print "two" | a :: r => print ("cons " ^ itos a) | _ => print "no"`, "cons 1"},
		{`case [] of [a] => print "one" | [] => print "empty"`, "empty"},
		{`case [(1, 2), (3, 4)] of [(a, _), (_, d)] => print (itos (a + d)) | _ => print "no"`, "5"},
	}
	for _, c := range cases {
		if got := run(t, c.src); got != c.want {
			t.Errorf("%s => %q, want %q", c.src, got, c.want)
		}
	}
}
