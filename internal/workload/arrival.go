package workload

// Inter-arrival samplers. Every draw comes from a caller-supplied rng.Stream
// substream, so arrival sequences are pure functions of (spec, seed) and two
// cohorts never share randomness. All samplers return gaps in milliseconds of
// simulated time; the generator converts to simtime.Duration once, at
// materialisation.

import (
	"math"

	"repligc/internal/rng"
)

// sampler draws successive inter-arrival gaps (in ms) for one arrival spec.
type sampler struct {
	a     Arrival
	s     *rng.Stream
	burst *burstState
}

// burstState tracks the alternating on/off schedule of a bursty arrival
// process. Window lengths are exponential with the configured means and come
// from their own substream so enabling bursts does not perturb the base law's
// draw sequence.
type burstState struct {
	b       Burst
	s       *rng.Stream
	now     float64 // schedule clock, ms
	edge    float64 // end of the current window, ms
	off     bool    // inside an off window?
}

// newSampler builds a sampler for a; draws comes from the cohort's arrival
// substream and bursts (used only when a.Burst != nil) from the burst
// substream.
func newSampler(a Arrival, draws, bursts *rng.Stream) *sampler {
	sm := &sampler{a: a, s: draws}
	if a.Burst != nil {
		sm.burst = &burstState{b: *a.Burst, s: bursts}
		sm.burst.edge = expDraw(bursts, a.Burst.OnMs) // start "on"
	}
	return sm
}

// next returns the next inter-arrival gap in milliseconds (> 0).
func (sm *sampler) next() float64 {
	meanMs := 1000.0 / sm.a.RatePerSec
	var gap float64
	switch sm.a.Law {
	case LawDeterministic:
		gap = meanMs
	case LawPoisson:
		gap = expDraw(sm.s, meanMs)
	case LawGamma:
		// Mean of Gamma(k, theta) is k*theta; fix theta so the mean stays
		// at the configured rate for any shape.
		gap = gammaDraw(sm.s, sm.a.Shape) * meanMs / sm.a.Shape
	case LawWeibull:
		// Scale lambda chosen so E = lambda*Gamma(1+1/k) equals meanMs.
		lambda := meanMs / gammaFn(1+1/sm.a.Shape)
		gap = weibullDraw(sm.s, sm.a.Shape, lambda)
	default:
		panic("workload: unknown arrival law " + sm.a.Law)
	}
	if gap <= 0 {
		gap = 1e-6 // degenerate draws still advance time
	}
	if sm.burst != nil {
		gap = sm.burst.stretch(gap)
	}
	return gap
}

// stretch applies on/off modulation: a gap that begins inside an off window
// is multiplied by OffFactor. The schedule advances on its own exponential
// clock, so bursts line up across collectors serving the same trace (they
// are resolved at generation time like every other draw).
func (s *burstState) stretch(gap float64) float64 {
	for s.now >= s.edge {
		s.off = !s.off
		mean := s.b.OnMs
		if s.off {
			mean = s.b.OffMs
		}
		s.edge += expDraw(s.s, mean)
	}
	if s.off {
		gap *= s.b.OffFactor
	}
	s.now += gap
	return gap
}

// expDraw samples an exponential with the given mean.
func expDraw(s *rng.Stream, mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// normDraw samples a standard normal (Box-Muller, one branch).
func normDraw(s *rng.Stream) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	v := s.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// gammaDraw samples Gamma(shape, 1) by Marsaglia–Tsang squeeze, with the
// standard boost for shape < 1.
func gammaDraw(s *rng.Stream, shape float64) float64 {
	if shape < 1 {
		u := s.Float64()
		for u == 0 {
			u = s.Float64()
		}
		return gammaDraw(s, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := normDraw(s)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.Float64()
		if u == 0 {
			continue
		}
		if math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			return d * v
		}
	}
}

// weibullDraw samples Weibull(shape k, scale lambda) by inversion.
func weibullDraw(s *rng.Stream, k, lambda float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return lambda * math.Pow(-math.Log(u), 1/k)
}

// gammaFn is the Gamma function (for the Weibull mean normalisation).
func gammaFn(x float64) float64 { return math.Gamma(x) }
