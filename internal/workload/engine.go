package workload

// The serving engine. Serve replays a materialised trace through one
// runtime: requests arrive open-loop at their trace instants, queue behind
// the single simulated server, allocate and mutate session state through the
// Mutator (so the write barrier, the mutation log and the collector all see
// real traffic), and are timed on the simulated clock. GC pauses therefore
// surface exactly where a service feels them: as queue growth and latency
// tails, attributed per request as "intrusion" — the pause time overlapping
// the request's arrival-to-completion window.
//
// Session state lives on the mutator's handle stack (the repository's
// shadow-stack discipline), so roots survive flips without any new root
// plumbing, and every heap.Value is re-read from its handle after a call
// that may collect.

import (
	"fmt"
	"sort"

	"repligc/internal/core"
	"repligc/internal/heap"
	"repligc/internal/simtime"
	"repligc/internal/stopcopy"
	"repligc/internal/trace"
)

// Collector names the engine can build.
const (
	CollectorRT           = "rt"             // full incremental replicating collector
	CollectorRTLazy       = "rt-lazy"        // rt + lazy log processing
	CollectorStopCopyCore = "stop-copy-core" // replicating machinery, non-incremental pauses
	CollectorSC           = "sc"             // plain stop-and-copy baseline
)

// Collectors lists the supported collector names.
func Collectors() []string {
	return []string{CollectorRT, CollectorRTLazy, CollectorStopCopyCore, CollectorSC}
}

// Runtime is one constructed server: heap, mutator, collector, trace
// recorder.
type Runtime struct {
	Heap      *heap.Heap
	Mutator   *core.Mutator
	GC        core.Collector
	Recorder  *trace.Recorder
	Collector string
}

// RuntimeOptions configures NewRuntime.
type RuntimeOptions struct {
	Collector    string // one of Collectors(); default CollectorRT
	NaiveBarrier bool   // disable write-barrier coalescing (baseline leg)
	TraceCap     int    // trace recorder capacity; default 1 << 20 events
}

// NewRuntime builds a server for spec's heap parameters.
func NewRuntime(spec *Spec, opt RuntimeOptions) (*Runtime, error) {
	name := opt.Collector
	if name == "" {
		name = CollectorRT
	}
	hs := spec.Heap.WithDefaults()
	nurseryBytes := hs.NurseryKB << 10
	majorBytes := hs.MajorKB << 10
	copyLimit := hs.CopyLimitKB << 10
	oldSemi := hs.OldMB << 20
	nurseryCap := 16 * nurseryBytes
	if nurseryCap < 16<<20 {
		nurseryCap = 16 << 20
	}
	h := heap.New(heap.Config{
		NurseryBytes:    nurseryBytes,
		NurseryCapBytes: nurseryCap,
		OldSemiBytes:    oldSemi,
	})

	policy := core.LogAllMutations
	if name == CollectorSC {
		policy = core.LogPointersOnly
	}
	m := core.NewMutator(h, simtime.NewClock(), simtime.Default1993(), policy)
	m.NaiveBarrier = opt.NaiveBarrier

	var gc core.Collector
	switch name {
	case CollectorSC:
		gc = stopcopy.New(h, stopcopy.Config{
			NurseryBytes:        nurseryBytes,
			MajorThresholdBytes: majorBytes,
		})
	case CollectorStopCopyCore:
		gc = core.NewReplicating(h, core.Config{
			NurseryBytes:        nurseryBytes,
			MajorThresholdBytes: majorBytes,
		})
	case CollectorRT, CollectorRTLazy:
		gc = core.NewReplicating(h, core.Config{
			NurseryBytes:        nurseryBytes,
			MajorThresholdBytes: majorBytes,
			CopyLimitBytes:      copyLimit,
			IncrementalMinor:    true,
			IncrementalMajor:    true,
			LazyLogProcessing:   name == CollectorRTLazy,
		})
	default:
		return nil, fmt.Errorf("workload: unknown collector %q (want one of %v)", name, Collectors())
	}
	m.AttachGC(gc)

	cap := opt.TraceCap
	if cap == 0 {
		cap = 1 << 20
	}
	r := trace.NewRecorder(cap)
	m.Trace = r
	clock := m.Clock
	h.EpochHook = func(epoch uint32) { r.LogEpoch(clock.Now(), int64(epoch)) }
	if ts, ok := gc.(interface{ SetTrace(*trace.Recorder) }); ok {
		ts.SetTrace(r)
	}
	return &Runtime{Heap: h, Mutator: m, GC: gc, Recorder: r, Collector: name}, nil
}

// ServeOptions tunes one Serve call.
type ServeOptions struct {
	// Inject, when non-nil, runs before each request is served; an error
	// aborts the run. The fault-injection tests wire an Injector.Tick here
	// so adversarial heap events land under live traffic.
	Inject func() error
}

// Serve drives the whole trace through rt and digests the outcome into a
// report leg named legName.
func Serve(rt *Runtime, t *Trace, legName string, opt ServeOptions) (*Leg, error) {
	m, gc, clock := rt.Mutator, rt.GC, rt.Mutator.Clock
	spec := t.Spec

	// Session root tables: one handle per session slot per cohort, pinned on
	// the mutator's shadow stack so the collector updates them at flips.
	slotCounts := t.slotCount()
	tables := make([][]core.Handle, len(spec.Cohorts))
	for ci, n := range slotCounts {
		tables[ci] = make([]core.Handle, n)
		for s := range tables[ci] {
			tables[ci][s] = m.PushHandle(heap.Nil)
		}
	}

	n := len(t.Reqs)
	starts := make([]simtime.Duration, n)
	ends := make([]simtime.Duration, n)
	depths := make([]int, n)
	k := 0 // arrival cursor for queue-depth samples
	for i := range t.Reqs {
		r := &t.Reqs[i]
		if now := clock.Now(); now < r.At {
			clock.Charge(simtime.AcctIdle, r.At-now)
		}
		start := clock.Now()
		starts[i] = start
		for k < n && t.Reqs[k].At <= start {
			k++
		}
		if k <= i {
			k = i + 1 // the request being served is always in the system
		}
		depths[i] = k - i

		if opt.Inject != nil {
			if err := opt.Inject(); err != nil {
				return nil, fmt.Errorf("workload: inject before request %d: %w", i, err)
			}
		}
		if err := serveOne(m, spec, tables, r, i); err != nil {
			return nil, fmt.Errorf("workload: request %d (cohort %s): %w",
				i, spec.Cohorts[r.Cohort].Name, err)
		}
		ends[i] = clock.Now()
	}
	elapsed := clock.Now()
	if err := gc.FinishCycles(m); err != nil {
		return nil, fmt.Errorf("workload: finishing collection cycles: %w", err)
	}
	return buildLeg(rt, t, legName, starts, ends, depths, elapsed)
}

// serveOne executes one request's heap work. gi is the request's global
// index, used to derive deterministic mutation slots and stored values.
func serveOne(m *core.Mutator, spec *Spec, tables [][]core.Handle, r *Req, gi int) error {
	tab := tables[r.Cohort]
	if r.NewWords > 0 {
		p, err := m.Alloc(heap.KindArray, int(r.NewWords))
		if err != nil {
			return fmt.Errorf("session state: %w", err)
		}
		m.Init(p, 0, heap.FromInt(int64(gi)))
		m.SetHandleVal(tab[r.Session], p)
	}
	for _, ob := range r.Objs {
		p, err := m.Alloc(heap.KindArray, int(ob.Words))
		if err != nil {
			return fmt.Errorf("request object: %w", err)
		}
		m.Init(p, 0, heap.FromInt(int64(gi)))
		if ob.Retain >= 0 {
			// Re-read the session root after the allocation above: the
			// collector may have flipped and updated the handle slot.
			sess := m.HandleVal(tab[r.Session])
			if sess != heap.Nil {
				m.Set(sess, int(ob.Retain), p)
			}
		}
	}
	if r.Muts > 0 {
		sess := m.HandleVal(tab[r.Session])
		if sess != heap.Nil {
			words := spec.Cohorts[r.Cohort].Profile.SessionWords
			for j := 0; j < int(r.Muts); j++ {
				slot := int((uint32(gi)*2654435761 + uint32(j)*40503) % uint32(words))
				m.Set(sess, slot, heap.FromInt(int64(gi+j)))
			}
		}
	}
	m.Step(int(r.Steps))
	if r.End {
		m.SetHandleVal(tab[r.Session], heap.Nil)
	}
	return nil
}

// buildLeg digests one served run. The heap fingerprint is computed last:
// walking the graph charges header-check time to the clock, which must not
// perturb any latency measurement.
func buildLeg(rt *Runtime, t *Trace, legName string,
	starts, ends []simtime.Duration, depths []int, elapsed simtime.Duration) (*Leg, error) {

	spec := t.Spec
	clock := rt.Mutator.Clock
	pauses := rt.GC.Pauses()
	idx := newPauseIndex(pauses)

	leg := &Leg{
		Name:                 legName,
		Collector:            rt.Collector,
		ElapsedMs:            elapsed.Milliseconds(),
		IdleMs:               clock.AccountTotal(simtime.AcctIdle).Milliseconds(),
		Requests:             len(t.Reqs),
		Pauses:               len(pauses.Pauses),
		EmergencyCollections: int64(rt.GC.Stats().EmergencyCollections),
	}
	pq := simtime.Percentiles(pauses.Durations(), 50, 99, 100)
	leg.PauseP50Ms, leg.PauseP99Ms, leg.PauseMaxMs =
		pq[0].Milliseconds(), pq[1].Milliseconds(), pq[2].Milliseconds()

	// Queue stats over the per-request service-start samples.
	if n := len(depths); n > 0 {
		sum := 0
		max := 0
		sorted := make([]int, n)
		copy(sorted, depths)
		sort.Ints(sorted)
		for _, d := range depths {
			sum += d
			if d > max {
				max = d
			}
		}
		rank := int(99.0/100*float64(n)+0.999999) - 1
		if rank < 0 {
			rank = 0
		}
		leg.Queue = QueueStats{
			MeanDepth: float64(sum) / float64(n),
			P99Depth:  sorted[rank],
			MaxDepth:  max,
		}
	}

	// Per-cohort latency, queue wait, intrusion, SLO.
	sessions := t.Sessions()
	type acc struct {
		lats, waits, intrs []simtime.Duration
	}
	accs := make([]acc, len(spec.Cohorts))
	for i := range t.Reqs {
		r := &t.Reqs[i]
		a := &accs[r.Cohort]
		a.lats = append(a.lats, ends[i]-r.At)
		a.waits = append(a.waits, starts[i]-r.At)
		a.intrs = append(a.intrs, idx.between(r.At, ends[i]))
	}
	for ci := range spec.Cohorts {
		c := &spec.Cohorts[ci]
		a := &accs[ci]
		cm := CohortMetrics{
			Name:     c.Name,
			Requests: len(a.lats),
			Sessions: sessions[ci],
		}
		lq := simtime.Percentiles(a.lats, 50, 95, 99, 99.9, 100)
		cm.Latency = Latency{
			P50:  lq[0].Milliseconds(),
			P95:  lq[1].Milliseconds(),
			P99:  lq[2].Milliseconds(),
			P999: lq[3].Milliseconds(),
			Max:  lq[4].Milliseconds(),
		}
		var latSum, intrSum simtime.Duration
		for _, d := range a.lats {
			latSum += d
		}
		for _, d := range a.intrs {
			intrSum += d
		}
		if n := len(a.lats); n > 0 {
			cm.Latency.Mean = (latSum / simtime.Duration(n)).Milliseconds()
		}
		cm.QueueWaitP99Ms = simtime.Percentile(a.waits, 99).Milliseconds()
		cm.Intrusion = Intrusion{
			TotalMs: intrSum.Milliseconds(),
			P99Ms:   simtime.Percentile(a.intrs, 99).Milliseconds(),
		}
		if latSum > 0 {
			cm.Intrusion.PctOfLatency = 100 * float64(intrSum) / float64(latSum)
		}
		target := simtime.Duration(c.SLO.TargetMs * float64(simtime.Millisecond))
		deadline := simtime.Duration(c.SLO.DeadlineMs * float64(simtime.Millisecond))
		cm.SLO = SLOBreakdown{TargetMs: c.SLO.TargetMs, DeadlineMs: c.SLO.DeadlineMs}
		for _, d := range a.lats {
			switch {
			case d <= target:
				cm.SLO.Met++
			case d <= deadline:
				cm.SLO.Late++
			default:
				cm.SLO.Missed++
			}
		}
		leg.Cohorts = append(leg.Cohorts, cm)
	}

	// Request-granularity MMU: the standard ladder merged with every
	// cohort's SLO target, from the run's event trace.
	an, err := trace.Analyze(rt.Recorder.Events())
	if err != nil {
		return nil, fmt.Errorf("workload: analyzing run trace: %w", err)
	}
	windows := an.StandardWindows()
	for _, c := range spec.Cohorts {
		w := simtime.Duration(c.SLO.TargetMs * float64(simtime.Millisecond))
		if w > 0 && w < an.Total() {
			windows = append(windows, w)
		}
	}
	sort.Slice(windows, func(i, j int) bool { return windows[i] < windows[j] })
	uniq := windows[:0]
	for _, w := range windows {
		if len(uniq) == 0 || w != uniq[len(uniq)-1] {
			uniq = append(uniq, w)
		}
	}
	for _, pt := range an.MMUCurve(uniq) {
		leg.MMU = append(leg.MMU, MMUPoint{
			WindowMs:    pt.Window.Milliseconds(),
			Utilization: pt.Utilization,
		})
	}

	leg.HeapFingerprint = fmt.Sprintf("%016x", heapFingerprint(rt.Mutator, spec, t))
	return leg, nil
}

// pauseIndex answers "how much pause time overlaps [a, b]" in O(log n) via
// prefix sums, the same pause-edge technique as trace.Analysis.
type pauseIndex struct {
	starts, ends []simtime.Duration
	cum          []simtime.Duration
}

func newPauseIndex(r *simtime.Recorder) *pauseIndex {
	n := len(r.Pauses)
	idx := &pauseIndex{
		starts: make([]simtime.Duration, n),
		ends:   make([]simtime.Duration, n),
		cum:    make([]simtime.Duration, n+1),
	}
	for i, p := range r.Pauses {
		idx.starts[i] = p.At
		idx.ends[i] = p.At + p.Length
		idx.cum[i+1] = idx.cum[i] + p.Length
	}
	return idx
}

// busyBefore is the total pause time in (-inf, t).
func (idx *pauseIndex) busyBefore(t simtime.Duration) simtime.Duration {
	i := sort.Search(len(idx.ends), func(i int) bool { return idx.ends[i] > t })
	b := idx.cum[i]
	if i < len(idx.starts) && idx.starts[i] < t {
		b += t - idx.starts[i]
	}
	return b
}

// between is the pause time overlapping [a, b].
func (idx *pauseIndex) between(a, b simtime.Duration) simtime.Duration {
	if b <= a {
		return 0
	}
	return idx.busyBefore(b) - idx.busyBefore(a)
}
