package workload

// The end-of-run heap fingerprint: an FNV-1a digest of the reachable session
// graph, walked semantically (visit-order object ids, never addresses), so
// two collectors that served the same trace correctly produce the same
// fingerprint even though they laid the heap out differently. This is the
// cross-collector correctness oracle of the determinism matrix.

import (
	"repligc/internal/core"
	"repligc/internal/heap"
)

// heapFingerprint walks every session root in (cohort, slot) order. It reads
// through the Mutator (getheader follows forwarding), so it is safe whenever
// the mutator is — including between incremental collection steps.
func heapFingerprint(m *core.Mutator, spec *Spec, t *Trace) uint64 {
	var hash uint64 = 14695981039346656037
	mix := func(x uint64) {
		hash ^= x
		hash *= 1099511628211
	}
	ids := make(map[heap.Value]uint64)
	var walk func(v heap.Value)
	walk = func(v heap.Value) {
		switch {
		case v == heap.Nil:
			mix(1)
		case v.IsInt():
			mix(2)
			mix(uint64(v.Int()))
		default:
			if id, ok := ids[v]; ok {
				mix(3)
				mix(id)
				return
			}
			id := uint64(len(ids) + 1)
			ids[v] = id
			hdr := m.Header(v)
			mix(4)
			mix(uint64(hdr.Kind()))
			mix(uint64(hdr.Len()))
			if !hdr.Kind().HasPointers() {
				for i := 0; i < hdr.Len(); i++ {
					mix(uint64(m.GetByte(v, i)))
				}
				return
			}
			for i := 0; i < hdr.Len(); i++ {
				walk(m.Get(v, i))
			}
		}
	}
	// The engine's root tables are a prefix of the handle stack, pushed in
	// (cohort, slot) order before any request ran; enumerate them the same
	// way. Cohort boundaries are mixed in so an empty cohort still shapes
	// the digest.
	slotCounts := t.slotCount()
	h := core.Handle(0)
	for ci := range spec.Cohorts {
		mix(5)
		mix(uint64(ci))
		for s := int32(0); s < slotCounts[ci]; s++ {
			walk(m.HandleVal(h))
			h++
		}
	}
	return hash
}
