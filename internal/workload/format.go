package workload

// Plain-text rendering of a serving section, for the CLI entry points.

import (
	"fmt"
	"strings"
)

// FormatSection renders a one-screen digest of a serving section.
func FormatSection(sec *Section) string {
	var b strings.Builder
	fmt.Fprintf(&b, "--- serving: %s (seed %d, %d requests over %.0f ms, trace %s) ---\n",
		sec.Spec, sec.Seed, sec.Requests, sec.DurationMs, sec.TraceFingerprint)
	for i := range sec.Legs {
		l := &sec.Legs[i]
		fmt.Fprintf(&b, "leg %-14s (%s): elapsed %.1f ms (%.1f ms idle), %d pauses (p50 %.2f p99 %.2f max %.2f ms)",
			l.Name, l.Collector, l.ElapsedMs, l.IdleMs, l.Pauses, l.PauseP50Ms, l.PauseP99Ms, l.PauseMaxMs)
		if l.EmergencyCollections > 0 {
			fmt.Fprintf(&b, ", %d emergencies", l.EmergencyCollections)
		}
		fmt.Fprintf(&b, "\n  queue depth: mean %.2f, p99 %d, max %d; heap %s\n",
			l.Queue.MeanDepth, l.Queue.P99Depth, l.Queue.MaxDepth, l.HeapFingerprint)
		for j := range l.Cohorts {
			c := &l.Cohorts[j]
			fmt.Fprintf(&b, "  %-14s %5d reqs %4d sessions | p50 %7.3f p95 %7.3f p99 %7.3f p99.9 %7.3f max %7.3f ms\n",
				c.Name, c.Requests, c.Sessions,
				c.Latency.P50, c.Latency.P95, c.Latency.P99, c.Latency.P999, c.Latency.Max)
			fmt.Fprintf(&b, "  %-14s SLO(%.0f/%.0f ms): %d met, %d late, %d missed | gc intrusion %.1f%% of latency (p99 %.3f ms) | queue wait p99 %.3f ms\n",
				"", c.SLO.TargetMs, c.SLO.DeadlineMs, c.SLO.Met, c.SLO.Late, c.SLO.Missed,
				c.Intrusion.PctOfLatency, c.Intrusion.P99Ms, c.QueueWaitP99Ms)
		}
		b.WriteString("  mmu:")
		for _, pt := range l.MMU {
			fmt.Fprintf(&b, " %gms=%.1f%%", pt.WindowMs, 100*pt.Utilization)
		}
		b.WriteString("\n")
	}
	return b.String()
}
