package workload

// Trace materialisation. Generate resolves every random draw of a spec —
// arrival instants, session starts and ends, object sizes, retention
// choices, mutation and work counts — into a flat, fully-deterministic
// request list. The serving engine then consumes the trace without touching
// the RNG at all, which is what makes record→replay bit-identical and lets
// different collectors serve the *same* traffic.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repligc/internal/rng"
	"repligc/internal/simtime"
)

// ObjAlloc is one materialised allocation inside a request.
type ObjAlloc struct {
	Words  int32
	Retain int32 // session-state slot to store the object into, or -1 to drop it
}

// Req is one fully-sampled request. Cohort indexes Spec.Cohorts; Session is
// a slot in that cohort's session root table.
type Req struct {
	At       simtime.Duration // arrival instant
	Cohort   int32
	Session  int32
	NewWords int32 // > 0: first request of the session — allocate its state with this many words
	End      bool  // last request of the session — drop the root after serving
	Muts     int32 // stores into session state
	Steps    int32 // plain mutator instructions
	Objs     []ObjAlloc
}

// Trace is a materialised workload: a spec plus its resolved request
// sequence, sorted by arrival (ties broken by cohort index, then per-cohort
// generation order).
type Trace struct {
	Spec *Spec
	Reqs []Req
}

// maxRequestsPerCohort bounds runaway specs (rate × duration) before they
// allocate unbounded memory.
const maxRequestsPerCohort = 1 << 20

// Generate materialises spec into a trace. The same spec (including seed)
// always yields a bit-identical trace.
func Generate(spec *Spec) (*Trace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(spec.Seed)
	var all []Req
	for ci := range spec.Cohorts {
		c := &spec.Cohorts[ci]
		base := root.Split(uint64(ci))
		reqs, err := generateCohort(c, int32(ci), spec.DurationMs, base)
		if err != nil {
			return nil, err
		}
		all = append(all, reqs...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].At != all[j].At {
			return all[i].At < all[j].At
		}
		return all[i].Cohort < all[j].Cohort
	})
	return &Trace{Spec: spec, Reqs: all}, nil
}

// generateCohort samples one cohort's requests against the duration horizon.
// Substream layout: 0 = arrival gaps, 1 = burst schedule, 2 = request
// profile, 3 = session lifecycle.
func generateCohort(c *Cohort, ci int32, horizon float64, base *rng.Stream) ([]Req, error) {
	sm := newSampler(c.Arrival, base.Split(0), base.Split(1))
	prof := base.Split(2)
	sess := base.Split(3)
	st := sessionState{meanReqs: c.Profile.SessionReqs}

	var out []Req
	t := 0.0
	for {
		gap := sm.next()
		if err := checkFloat(gap, "inter-arrival gap"); err != nil {
			return nil, err
		}
		t += gap
		if t >= horizon {
			break
		}
		if len(out) >= maxRequestsPerCohort {
			return nil, fmt.Errorf("workload: cohort %s exceeds %d requests; lower rate_per_sec or duration_ms",
				c.Name, maxRequestsPerCohort)
		}
		r := Req{
			At:     simtime.Duration(int64(t*float64(simtime.Millisecond) + 0.5)),
			Cohort: ci,
			Muts:   int32(meanDraw(prof, c.Profile.Mutations)),
			Steps:  int32(meanDraw(prof, c.Profile.WorkSteps)),
		}
		st.assign(&r, sess, c.Profile.SessionWords)
		n := 1 + prof.Intn(2*c.Profile.ObjsPerReq-1) // mean ObjsPerReq, min 1
		r.Objs = make([]ObjAlloc, n)
		for i := range r.Objs {
			r.Objs[i].Words = int32(wordsDraw(prof, c.Profile.ObjWords))
			r.Objs[i].Retain = -1
			if prof.Float64() < c.Profile.RetainPct {
				r.Objs[i].Retain = int32(prof.Intn(c.Profile.SessionWords))
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// sessionState drives the session lifecycle of one cohort: each session is
// born with a drawn request budget, serves that many requests, then ends and
// recycles its root-table slot.
type sessionState struct {
	meanReqs int
	active   []liveSession
	free     []int32
	next     int32
}

type liveSession struct {
	slot int32
	left int
}

// assign picks (or creates) the session that serves r and stamps the
// session fields.
func (st *sessionState) assign(r *Req, sess *rng.Stream, sessionWords int) {
	pNew := 1.0 / float64(st.meanReqs)
	if len(st.active) == 0 || sess.Float64() < pNew {
		slot := st.next
		if n := len(st.free); n > 0 {
			slot = st.free[n-1]
			st.free = st.free[:n-1]
		} else {
			st.next++
		}
		life := 1 + sess.Intn(2*st.meanReqs-1+1) // mean ~meanReqs, min 1
		st.active = append(st.active, liveSession{slot: slot, left: life})
		r.NewWords = int32(sessionWords)
	}
	idx := len(st.active) - 1
	if r.NewWords == 0 {
		idx = sess.Intn(len(st.active))
	}
	ls := &st.active[idx]
	r.Session = ls.slot
	ls.left--
	if ls.left <= 0 {
		r.End = true
		st.free = append(st.free, ls.slot)
		st.active[idx] = st.active[len(st.active)-1]
		st.active = st.active[:len(st.active)-1]
	}
}

// meanDraw samples a non-negative integer with the given mean (uniform on
// [0, 2m]); zero mean always yields zero.
func meanDraw(s *rng.Stream, m int) int {
	if m <= 0 {
		return 0
	}
	return s.Intn(2*m + 1)
}

// wordsDraw samples an object size in words with the given mean, never
// below the two-word minimum (uniform on [2, 2m-2]).
func wordsDraw(s *rng.Stream, m int) int {
	if m <= 2 {
		return 2
	}
	return 2 + s.Intn(2*(m-2)+1)
}

// Sessions reports how many sessions the trace creates per cohort.
func (t *Trace) Sessions() []int {
	out := make([]int, len(t.Spec.Cohorts))
	for i := range t.Reqs {
		if t.Reqs[i].NewWords > 0 {
			out[t.Reqs[i].Cohort]++
		}
	}
	return out
}

// slotCount reports the session root-table size each cohort needs.
func (t *Trace) slotCount() []int32 {
	out := make([]int32, len(t.Spec.Cohorts))
	for i := range t.Reqs {
		r := &t.Reqs[i]
		if r.Session+1 > out[r.Cohort] {
			out[r.Cohort] = r.Session + 1
		}
	}
	return out
}

// Fingerprint is an FNV-1a digest of the spec (canonical JSON) and every
// materialised request field, in order. Replay verifies against it, and the
// serving report embeds it so two reports can be tied to the same traffic.
func (t *Trace) Fingerprint() uint64 {
	h := fnv.New64a()
	specJSON, err := json.Marshal(t.Spec)
	if err != nil {
		panic("workload: spec marshal failed: " + err.Error())
	}
	h.Write(specJSON)
	var buf [8]byte
	w64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	w64(uint64(len(t.Reqs)))
	for i := range t.Reqs {
		r := &t.Reqs[i]
		w64(uint64(r.At))
		w64(uint64(uint32(r.Cohort)))
		w64(uint64(uint32(r.Session)))
		w64(uint64(uint32(r.NewWords)))
		if r.End {
			w64(1)
		} else {
			w64(0)
		}
		w64(uint64(uint32(r.Muts)))
		w64(uint64(uint32(r.Steps)))
		w64(uint64(len(r.Objs)))
		for _, o := range r.Objs {
			w64(uint64(uint32(o.Words)))
			w64(uint64(uint32(o.Retain)))
		}
	}
	return h.Sum64()
}

// checkFloat guards math results that must stay finite (belt and braces for
// exotic spec values).
func checkFloat(v float64, what string) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("workload: %s is not finite", what)
	}
	return nil
}
