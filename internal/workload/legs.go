package workload

// Leg orchestration: run one trace through a set of collector
// configurations and assemble the schema-5 serving section. This is the one
// entry point the bench harness and the CLI share, so a section always
// means the same thing no matter which tool produced it.

import "fmt"

// LegSpec names one serving leg: a collector configuration plus the barrier
// mode it runs under.
type LegSpec struct {
	Name         string
	Collector    string
	NaiveBarrier bool
}

// StandardLegs is the default leg pair of the perf trajectory: the naive
// append-every-store barrier against the coalescing barrier, both under the
// full real-time collector, serving identical traffic.
func StandardLegs() []LegSpec {
	return []LegSpec{
		{Name: "naive-barrier", Collector: CollectorRT, NaiveBarrier: true},
		{Name: "coalesced", Collector: CollectorRT},
	}
}

// RunLegs serves t once per leg spec and assembles the serving section.
func RunLegs(t *Trace, legs []LegSpec) (*Section, error) {
	if len(legs) == 0 {
		return nil, fmt.Errorf("workload: no legs to run")
	}
	sec := &Section{
		Spec:             t.Spec.Name,
		Seed:             t.Spec.Seed,
		DurationMs:       t.Spec.DurationMs,
		Requests:         len(t.Reqs),
		TraceFingerprint: fmt.Sprintf("%016x", t.Fingerprint()),
	}
	for _, ls := range legs {
		rt, err := NewRuntime(t.Spec, RuntimeOptions{Collector: ls.Collector, NaiveBarrier: ls.NaiveBarrier})
		if err != nil {
			return nil, fmt.Errorf("workload: leg %s: %w", ls.Name, err)
		}
		leg, err := Serve(rt, t, ls.Name, ServeOptions{})
		if err != nil {
			return nil, fmt.Errorf("workload: leg %s: %w", ls.Name, err)
		}
		sec.Legs = append(sec.Legs, *leg)
	}
	return sec, nil
}

// BuildReport wraps a section in the standalone schema-5 document.
func BuildReport(sec *Section) *Report {
	return &Report{Schema: ReportSchema, Serving: *sec}
}
