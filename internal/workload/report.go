package workload

// The serving report: what one trace, served by one or more collector legs,
// did to request latency. This is the repligc-bench "serving" section
// (introduced in /5) — internal/bench embeds a Section in its PerfReport,
// and cmd/rtgc-bench can also emit a standalone Report from
// `rtgc-bench serve`.

import (
	"encoding/json"
	"fmt"
	"math"
)

// ReportSchema identifies the serving report layout. It shares the
// repligc-bench lineage (/5 was /4 plus the serving section; /6 adds the
// multi-mutator section), so bench.PerfSchema aliases this constant.
const ReportSchema = "repligc-bench/6"

// Report is the standalone document `rtgc-bench serve` emits.
type Report struct {
	Schema  string  `json:"schema"`
	Serving Section `json:"serving"`
}

// Section describes one trace served by one or more legs.
type Section struct {
	Spec             string  `json:"spec"` // spec name
	Seed             uint64  `json:"seed"`
	DurationMs       float64 `json:"duration_ms"`
	Requests         int     `json:"requests"`
	TraceFingerprint string  `json:"trace_fingerprint"` // hex of Trace.Fingerprint
	Legs             []Leg   `json:"legs"`
}

// Leg is one collector configuration serving the whole trace.
type Leg struct {
	Name      string `json:"name"`      // e.g. "coalesced", "naive-barrier"
	Collector string `json:"collector"` // engine collector name ("rt", "rt-lazy", ...)

	ElapsedMs float64 `json:"elapsed_ms"` // simulated completion time of the last request
	IdleMs    float64 `json:"idle_ms"`    // server idle time (AcctIdle)
	Requests  int     `json:"requests"`

	Pauses               int     `json:"pauses"`
	PauseP50Ms           float64 `json:"pause_p50_ms"`
	PauseP99Ms           float64 `json:"pause_p99_ms"`
	PauseMaxMs           float64 `json:"pause_max_ms"`
	EmergencyCollections int64   `json:"emergency_collections"`

	// HeapFingerprint digests the reachable session graph at end of run
	// (semantic walk, so it is identical across collectors serving the same
	// trace correctly).
	HeapFingerprint string `json:"heap_fingerprint"`

	Queue QueueStats `json:"queue"`

	// MMU is the request-granularity minimum-mutator-utilization curve: the
	// standard window ladder merged with every cohort's SLO target, so each
	// SLO can be read off directly against the worst window it could land in.
	MMU []MMUPoint `json:"mmu"`

	Cohorts []CohortMetrics `json:"cohorts"`
}

// MMUPoint is one point of a leg's MMU curve.
type MMUPoint struct {
	WindowMs    float64 `json:"window_ms"`
	Utilization float64 `json:"utilization"`
}

// QueueStats summarises the open-loop queue, sampled at each request's
// service start.
type QueueStats struct {
	MeanDepth float64 `json:"mean_depth"`
	P99Depth  int     `json:"p99_depth"`
	MaxDepth  int     `json:"max_depth"`
}

// CohortMetrics is one cohort's serving outcome on one leg.
type CohortMetrics struct {
	Name     string `json:"name"`
	Requests int    `json:"requests"`
	Sessions int    `json:"sessions"`

	Latency Latency `json:"latency_ms"`

	// QueueWaitP99Ms is the tail of time spent waiting behind earlier
	// requests (arrival to service start).
	QueueWaitP99Ms float64 `json:"queue_wait_p99_ms"`

	Intrusion Intrusion    `json:"gc_intrusion"`
	SLO       SLOBreakdown `json:"slo"`
}

// Latency is a latency digest in milliseconds.
type Latency struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// Intrusion attributes GC pause time to requests: for each request, the
// pause time overlapping [arrival, completion] — the delay GC imposed on it
// while it was queued or in flight.
type Intrusion struct {
	TotalMs      float64 `json:"total_ms"`
	P99Ms        float64 `json:"p99_ms"`
	PctOfLatency float64 `json:"pct_of_latency"` // total intrusion / total latency
}

// SLOBreakdown classifies the cohort's requests against its SLO.
type SLOBreakdown struct {
	TargetMs   float64 `json:"target_ms"`
	DeadlineMs float64 `json:"deadline_ms"`
	Met        int     `json:"met"`     // latency <= target
	Late       int     `json:"late"`    // target < latency <= deadline
	Missed     int     `json:"missed"`  // latency > deadline
}

// ValidateReport checks that data parses as a serving report with the
// current schema and an internally-consistent serving section. Shape and
// sanity only — never thresholds on the measurements.
func ValidateReport(data []byte) error {
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("serving report: %w", err)
	}
	if rep.Schema != ReportSchema {
		return fmt.Errorf("serving report: schema %q, want %q", rep.Schema, ReportSchema)
	}
	return rep.Serving.Check()
}

// Check rejects serving sections with impossible measurements.
func (s *Section) Check() error {
	if s.Spec == "" {
		return fmt.Errorf("serving: spec name is empty")
	}
	if s.Requests <= 0 {
		return fmt.Errorf("serving: no requests")
	}
	if s.TraceFingerprint == "" {
		return fmt.Errorf("serving: trace fingerprint is empty")
	}
	if len(s.Legs) == 0 {
		return fmt.Errorf("serving: no legs")
	}
	for i := range s.Legs {
		if err := s.Legs[i].check(s.Requests); err != nil {
			return fmt.Errorf("serving leg %s: %w", s.Legs[i].Name, err)
		}
	}
	return nil
}

func (l *Leg) check(requests int) error {
	if l.Name == "" || l.Collector == "" {
		return fmt.Errorf("leg name and collector are required")
	}
	if l.Requests != requests {
		return fmt.Errorf("served %d of %d requests", l.Requests, requests)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"elapsed_ms", l.ElapsedMs}, {"idle_ms", l.IdleMs},
		{"pause_p50_ms", l.PauseP50Ms}, {"pause_p99_ms", l.PauseP99Ms},
		{"pause_max_ms", l.PauseMaxMs}, {"queue mean_depth", l.Queue.MeanDepth},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
			return fmt.Errorf("%s = %v is not a finite non-negative number", f.name, f.v)
		}
	}
	if l.ElapsedMs == 0 {
		return fmt.Errorf("leg did no work")
	}
	if l.PauseP50Ms > l.PauseP99Ms || l.PauseP99Ms > l.PauseMaxMs {
		return fmt.Errorf("pause percentiles are not monotone")
	}
	if l.HeapFingerprint == "" {
		return fmt.Errorf("heap fingerprint is empty")
	}
	if l.Queue.MaxDepth < l.Queue.P99Depth || l.Queue.P99Depth < 0 {
		return fmt.Errorf("queue depths are not monotone (p99 %d, max %d)", l.Queue.P99Depth, l.Queue.MaxDepth)
	}
	if len(l.MMU) == 0 {
		return fmt.Errorf("mmu curve is empty (schema %s requires it)", ReportSchema)
	}
	lastW := 0.0
	for _, pt := range l.MMU {
		if math.IsNaN(pt.WindowMs) || pt.WindowMs <= lastW {
			return fmt.Errorf("mmu windows are not positive and strictly increasing (%v after %v)",
				pt.WindowMs, lastW)
		}
		lastW = pt.WindowMs
		if math.IsNaN(pt.Utilization) || pt.Utilization < 0 || pt.Utilization > 1 {
			return fmt.Errorf("mmu(%v ms) = %v outside [0, 1]", pt.WindowMs, pt.Utilization)
		}
	}
	if len(l.Cohorts) == 0 {
		return fmt.Errorf("no cohort metrics")
	}
	total := 0
	for i := range l.Cohorts {
		c := &l.Cohorts[i]
		if c.Name == "" {
			return fmt.Errorf("cohort %d has no name", i)
		}
		if c.Requests < 0 {
			return fmt.Errorf("cohort %s: negative request count", c.Name)
		}
		total += c.Requests
		lat := c.Latency
		for _, f := range []struct {
			name string
			v    float64
		}{
			{"p50", lat.P50}, {"p95", lat.P95}, {"p99", lat.P99},
			{"p999", lat.P999}, {"max", lat.Max}, {"mean", lat.Mean},
			{"queue_wait_p99_ms", c.QueueWaitP99Ms},
			{"gc_intrusion total_ms", c.Intrusion.TotalMs},
			{"gc_intrusion p99_ms", c.Intrusion.P99Ms},
		} {
			if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
				return fmt.Errorf("cohort %s: %s = %v is not a finite non-negative number", c.Name, f.name, f.v)
			}
		}
		if lat.P50 > lat.P95 || lat.P95 > lat.P99 || lat.P99 > lat.P999 || lat.P999 > lat.Max {
			return fmt.Errorf("cohort %s: latency percentiles are not monotone", c.Name)
		}
		if c.SLO.Met+c.SLO.Late+c.SLO.Missed != c.Requests {
			return fmt.Errorf("cohort %s: SLO classes sum to %d of %d requests",
				c.Name, c.SLO.Met+c.SLO.Late+c.SLO.Missed, c.Requests)
		}
	}
	if total != requests {
		return fmt.Errorf("cohort requests sum to %d of %d", total, requests)
	}
	return nil
}
