// Package workload is the open-loop, request-driven serving engine: the
// measurement substrate for "GC under live traffic". A Spec names client
// cohorts — each with its own arrival process, request profile and SLO — and
// a seed; Generate materialises it into a Trace of fully-sampled requests
// (every random draw resolved, so record and replay are trivially
// bit-identical); Serve drives the trace through the existing
// Runtime/Mutator on the simulated clock, queueing arrivals open-loop so a
// GC pause makes queued requests late, and reports what a service operator
// cares about: per-cohort latency percentiles, SLO-class breakdowns,
// pause-intrusion attribution, queue depths, and MMU at request granularity.
//
// Everything is deterministic: arrival, size and session draws come from
// independent substreams (rng.Stream.Split) of the one spec seed, and the
// engine never reads the wall clock or global randomness.
package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Arrival laws.
const (
	LawPoisson       = "poisson"       // exponential inter-arrivals
	LawGamma         = "gamma"         // gamma inter-arrivals (Shape = k; burstier for k < 1)
	LawWeibull       = "weibull"       // weibull inter-arrivals (Shape = k)
	LawDeterministic = "deterministic" // fixed inter-arrival (rate's reciprocal)
)

// Spec describes one serving workload: the traffic, the per-cohort request
// shapes, and the heap the server runs on. A spec plus its seed fully
// determines the generated trace.
type Spec struct {
	Name       string   `json:"name"`
	Seed       uint64   `json:"seed"`
	DurationMs float64  `json:"duration_ms"` // arrival horizon in simulated milliseconds
	Heap       HeapSpec `json:"heap"`
	Cohorts    []Cohort `json:"cohorts"`
}

// HeapSpec sizes the server's heap in the paper's own parameters. Zero
// fields take the 50 ms-pause-target defaults (N = 200 KB, O = 1 MB,
// L = 100 KB, 16 MB old semispaces).
type HeapSpec struct {
	NurseryKB   int64 `json:"nursery_kb"`
	MajorKB     int64 `json:"major_kb"`
	CopyLimitKB int64 `json:"copy_limit_kb"`
	OldMB       int64 `json:"old_mb"`
}

// WithDefaults fills zero fields with the default cell.
func (h HeapSpec) WithDefaults() HeapSpec {
	if h.NurseryKB == 0 {
		h.NurseryKB = 200
	}
	if h.MajorKB == 0 {
		h.MajorKB = 1024
	}
	if h.CopyLimitKB == 0 {
		h.CopyLimitKB = 100
	}
	if h.OldMB == 0 {
		h.OldMB = 16
	}
	return h
}

// Cohort is one named class of clients: an arrival process, a request
// profile, and the SLO its requests are judged against.
type Cohort struct {
	Name    string  `json:"name"`
	Arrival Arrival `json:"arrival"`
	Profile Profile `json:"profile"`
	SLO     SLO     `json:"slo"`
}

// Arrival is a spec-driven inter-arrival law with optional on/off burst
// modulation.
type Arrival struct {
	Law        string  `json:"law"`
	RatePerSec float64 `json:"rate_per_sec"`     // mean arrival rate while "on"
	Shape      float64 `json:"shape,omitempty"`  // gamma/weibull shape k (1 = exponential)
	Burst      *Burst  `json:"burst,omitempty"`  // optional on/off modulation
}

// Burst modulates an arrival process with alternating on/off windows whose
// lengths are exponential with the given means; during an off window every
// inter-arrival gap is stretched by OffFactor.
type Burst struct {
	OnMs      float64 `json:"on_ms"`
	OffMs     float64 `json:"off_ms"`
	OffFactor float64 `json:"off_factor"` // >= 1; gap multiplier while off
}

// Profile shapes one cohort's requests: how much it allocates, how long its
// objects live (ephemeral vs. retained into session state), how much it
// mutates, and how much plain computation it charges. All integer fields are
// means; the generator draws around them.
type Profile struct {
	ObjsPerReq   int     `json:"objs_per_req"`      // mean ephemeral allocations per request
	ObjWords     int     `json:"obj_words"`         // mean words per allocation
	RetainPct    float64 `json:"retain_pct"`        // fraction of objects stored into session state
	SessionWords int     `json:"session_words"`     // session-state array length in words
	SessionReqs  int     `json:"session_requests"`  // mean requests per session
	Mutations    int     `json:"mutations_per_req"` // mean stores into session state per request
	WorkSteps    int     `json:"work_steps"`        // mean mutator instructions per request
}

// SLO classifies a request's latency: met (<= target), late (<= deadline),
// or deadline-missed.
type SLO struct {
	TargetMs   float64 `json:"target_ms"`
	DeadlineMs float64 `json:"deadline_ms"`
}

// ParseSpec decodes and validates a spec document. Unknown fields are
// rejected so a typo in a committed spec cannot silently change a run.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("workload spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate rejects specs the generator or engine cannot honour.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload spec: name is required")
	}
	if s.DurationMs <= 0 {
		return fmt.Errorf("workload spec %s: duration_ms must be positive", s.Name)
	}
	if len(s.Cohorts) == 0 {
		return fmt.Errorf("workload spec %s: at least one cohort is required", s.Name)
	}
	h := s.Heap
	if h.NurseryKB < 0 || h.MajorKB < 0 || h.CopyLimitKB < 0 || h.OldMB < 0 {
		return fmt.Errorf("workload spec %s: heap sizes must be non-negative", s.Name)
	}
	seen := map[string]bool{}
	for i := range s.Cohorts {
		c := &s.Cohorts[i]
		if c.Name == "" {
			return fmt.Errorf("workload spec %s: cohort %d has no name", s.Name, i)
		}
		if seen[c.Name] {
			return fmt.Errorf("workload spec %s: duplicate cohort %q", s.Name, c.Name)
		}
		seen[c.Name] = true
		if err := c.Arrival.validate(); err != nil {
			return fmt.Errorf("workload spec %s: cohort %s: %w", s.Name, c.Name, err)
		}
		if err := c.Profile.validate(); err != nil {
			return fmt.Errorf("workload spec %s: cohort %s: %w", s.Name, c.Name, err)
		}
		if c.SLO.TargetMs <= 0 || c.SLO.DeadlineMs < c.SLO.TargetMs {
			return fmt.Errorf("workload spec %s: cohort %s: slo needs 0 < target_ms <= deadline_ms",
				s.Name, c.Name)
		}
	}
	return nil
}

func (a *Arrival) validate() error {
	switch a.Law {
	case LawPoisson, LawDeterministic:
	case LawGamma, LawWeibull:
		if a.Shape <= 0 {
			return fmt.Errorf("arrival law %s needs a positive shape", a.Law)
		}
	default:
		return fmt.Errorf("unknown arrival law %q (want %s, %s, %s or %s)",
			a.Law, LawPoisson, LawGamma, LawWeibull, LawDeterministic)
	}
	if a.RatePerSec <= 0 {
		return fmt.Errorf("arrival rate_per_sec must be positive")
	}
	if b := a.Burst; b != nil {
		if b.OnMs <= 0 || b.OffMs <= 0 {
			return fmt.Errorf("burst on_ms and off_ms must be positive")
		}
		if b.OffFactor < 1 {
			return fmt.Errorf("burst off_factor must be >= 1")
		}
	}
	return nil
}

func (p *Profile) validate() error {
	if p.ObjsPerReq < 1 || p.ObjWords < 2 {
		return fmt.Errorf("profile needs objs_per_req >= 1 and obj_words >= 2")
	}
	if p.RetainPct < 0 || p.RetainPct > 1 {
		return fmt.Errorf("profile retain_pct must be in [0, 1]")
	}
	if p.SessionWords < 2 || p.SessionReqs < 1 {
		return fmt.Errorf("profile needs session_words >= 2 and session_requests >= 1")
	}
	if p.Mutations < 0 || p.WorkSteps < 0 {
		return fmt.Errorf("profile mutations_per_req and work_steps must be non-negative")
	}
	return nil
}
