package workload

// Trace record/replay. EncodeTrace serialises a materialised trace to a
// versioned artifact; DecodeTrace reads one back bit-identically. The
// format follows the checkpoint subsystem's framing discipline:
//
//	magic | frame* ,  frame := seq u32 | type u8 | payloadLen u32 | payload | crc u32
//
// where crc is the IEEE CRC-32 of everything before it in the frame and
// sequence numbers must be consecutive, so duplicated, reordered or torn
// records are detected even when their checksums survive. The footer
// carries the request count and the trace fingerprint; a decode either
// yields exactly the encoded trace or fails with a typed *TraceCorruptError
// — never a silently different workload. All integers are little-endian.
//
// This package only transforms bytes; reading and writing artifact *files*
// belongs to cmd/ (gclint rule "io").

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"repligc/internal/simtime"
)

const (
	traceMagic   = "RGCSRVT1" // serving-trace artifact magic
	traceVersion = 1

	// reqsPerRecord batches requests per frame: artifacts stay streamable
	// and a torn tail corrupts one frame, not the whole request list.
	reqsPerRecord = 1024
)

// Record types.
const (
	recTraceHeader uint8 = iota + 1 // version, seed, spec JSON
	recTraceReqs                    // a batch of materialised requests
	recTraceFooter                  // request count, fingerprint (completeness marker)
)

// TraceCorruptError is the typed error for any damaged, truncated or
// inconsistent trace artifact.
type TraceCorruptError struct {
	Detail string
	Err    error
}

// Error implements error.
func (e *TraceCorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("workload trace: %s: %v", e.Detail, e.Err)
	}
	return fmt.Sprintf("workload trace: %s", e.Detail)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *TraceCorruptError) Unwrap() error { return e.Err }

func traceCorrupt(format string, args ...any) *TraceCorruptError {
	return &TraceCorruptError{Detail: fmt.Sprintf(format, args...)}
}

// EncodeTrace serialises t.
func EncodeTrace(t *Trace) ([]byte, error) {
	specJSON, err := canonicalSpec(t.Spec)
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	out.WriteString(traceMagic)
	seq := uint32(0)
	frame := func(typ uint8, payload []byte) {
		hdr := make([]byte, 9)
		binary.LittleEndian.PutUint32(hdr[0:], seq)
		hdr[4] = typ
		binary.LittleEndian.PutUint32(hdr[5:], uint32(len(payload)))
		crc := crc32.NewIEEE()
		crc.Write(hdr)
		crc.Write(payload)
		out.Write(hdr)
		out.Write(payload)
		var sum [4]byte
		binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
		out.Write(sum[:])
		seq++
	}

	var p payload
	p.u32(traceVersion)
	p.u64(t.Spec.Seed)
	p.bytes(specJSON)
	frame(recTraceHeader, p.take())

	for lo := 0; lo < len(t.Reqs); lo += reqsPerRecord {
		hi := lo + reqsPerRecord
		if hi > len(t.Reqs) {
			hi = len(t.Reqs)
		}
		p.u32(uint32(hi - lo))
		for i := lo; i < hi; i++ {
			r := &t.Reqs[i]
			p.u64(uint64(r.At))
			p.u32(uint32(r.Cohort))
			p.u32(uint32(r.Session))
			p.u32(uint32(r.NewWords))
			if r.End {
				p.u8(1)
			} else {
				p.u8(0)
			}
			p.u32(uint32(r.Muts))
			p.u32(uint32(r.Steps))
			p.u32(uint32(len(r.Objs)))
			for _, o := range r.Objs {
				p.u32(uint32(o.Words))
				p.u32(uint32(o.Retain))
			}
		}
		frame(recTraceReqs, p.take())
	}

	p.u64(uint64(len(t.Reqs)))
	p.u64(t.Fingerprint())
	frame(recTraceFooter, p.take())
	return out.Bytes(), nil
}

// DecodeTrace reads an artifact back. The returned trace is verified
// against the footer's request count and fingerprint.
func DecodeTrace(data []byte) (*Trace, error) {
	if len(data) < len(traceMagic) || string(data[:len(traceMagic)]) != traceMagic {
		return nil, traceCorrupt("bad magic (not a serving-trace artifact)")
	}
	rest := data[len(traceMagic):]
	var (
		t          *Trace
		wantSeq    uint32
		sawFooter  bool
		footCount  uint64
		footPrint  uint64
	)
	for len(rest) > 0 {
		if sawFooter {
			return nil, traceCorrupt("data after footer record")
		}
		if len(rest) < 13 {
			return nil, traceCorrupt("truncated frame header")
		}
		seq := binary.LittleEndian.Uint32(rest[0:])
		typ := rest[4]
		plen := binary.LittleEndian.Uint32(rest[5:])
		if uint64(len(rest)) < 13+uint64(plen) {
			return nil, traceCorrupt("record %d: truncated payload (%d of %d bytes)", seq, len(rest)-13, plen)
		}
		body := rest[9 : 9+plen]
		crc := crc32.NewIEEE()
		crc.Write(rest[:9+plen])
		if got := binary.LittleEndian.Uint32(rest[9+plen:]); got != crc.Sum32() {
			return nil, traceCorrupt("record %d: checksum mismatch", seq)
		}
		if seq != wantSeq {
			return nil, traceCorrupt("record sequence %d, want %d (reordered or duplicated)", seq, wantSeq)
		}
		wantSeq++
		rest = rest[13+plen:]

		rd := reader{b: body}
		switch typ {
		case recTraceHeader:
			if t != nil {
				return nil, traceCorrupt("duplicate header record")
			}
			ver := rd.u32()
			if ver != traceVersion {
				return nil, traceCorrupt("version %d, want %d", ver, traceVersion)
			}
			seed := rd.u64()
			specJSON := rd.bytes()
			if rd.err != nil {
				return nil, traceCorrupt("header record: %v", rd.err)
			}
			spec, err := ParseSpec(specJSON)
			if err != nil {
				return nil, &TraceCorruptError{Detail: "header spec", Err: err}
			}
			if spec.Seed != seed {
				return nil, traceCorrupt("header seed %d disagrees with spec seed %d", seed, spec.Seed)
			}
			t = &Trace{Spec: spec}
		case recTraceReqs:
			if t == nil {
				return nil, traceCorrupt("request record before header")
			}
			n := rd.u32()
			for i := uint32(0); i < n; i++ {
				var r Req
				r.At = simtime.Duration(rd.u64())
				r.Cohort = int32(rd.u32())
				r.Session = int32(rd.u32())
				r.NewWords = int32(rd.u32())
				r.End = rd.u8() != 0
				r.Muts = int32(rd.u32())
				r.Steps = int32(rd.u32())
				no := rd.u32()
				if rd.err == nil && uint64(no)*8 > uint64(len(rd.b)) {
					return nil, traceCorrupt("request record: object count %d exceeds payload", no)
				}
				r.Objs = make([]ObjAlloc, no)
				for j := range r.Objs {
					r.Objs[j].Words = int32(rd.u32())
					r.Objs[j].Retain = int32(rd.u32())
				}
				if rd.err != nil {
					return nil, traceCorrupt("request record: %v", rd.err)
				}
				if int(r.Cohort) < 0 || int(r.Cohort) >= len(t.Spec.Cohorts) {
					return nil, traceCorrupt("request cohort %d out of range", r.Cohort)
				}
				t.Reqs = append(t.Reqs, r)
			}
			if rd.err != nil {
				return nil, traceCorrupt("request record: %v", rd.err)
			}
		case recTraceFooter:
			if t == nil {
				return nil, traceCorrupt("footer before header")
			}
			footCount = rd.u64()
			footPrint = rd.u64()
			if rd.err != nil {
				return nil, traceCorrupt("footer record: %v", rd.err)
			}
			sawFooter = true
		default:
			return nil, traceCorrupt("record %d: unknown type %d", seq, typ)
		}
	}
	if t == nil || !sawFooter {
		return nil, traceCorrupt("incomplete artifact (no footer); the recording did not finish")
	}
	if uint64(len(t.Reqs)) != footCount {
		return nil, traceCorrupt("footer promises %d requests, found %d", footCount, len(t.Reqs))
	}
	if got := t.Fingerprint(); got != footPrint {
		return nil, traceCorrupt("fingerprint mismatch: footer %016x, decoded %016x", footPrint, got)
	}
	return t, nil
}

// canonicalSpec marshals the spec in its canonical (struct-ordered) JSON
// form, the same bytes Fingerprint digests.
func canonicalSpec(s *Spec) ([]byte, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("workload trace: marshal spec: %w", err)
	}
	return b, nil
}

// payload accumulates little-endian fields for one record.
type payload struct{ b []byte }

func (p *payload) u8(v uint8) { p.b = append(p.b, v) }
func (p *payload) u32(v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	p.b = append(p.b, tmp[:]...)
}
func (p *payload) u64(v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	p.b = append(p.b, tmp[:]...)
}
func (p *payload) bytes(b []byte) {
	p.u32(uint32(len(b)))
	p.b = append(p.b, b...)
}
func (p *payload) take() []byte {
	out := p.b
	p.b = nil
	return out
}

// reader consumes little-endian fields from one record, latching the first
// error.
type reader struct {
	b   []byte
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.err = fmt.Errorf("short read")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 4 {
		r.err = fmt.Errorf("short read")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.err = fmt.Errorf("short read")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) bytes() []byte {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if uint64(len(r.b)) < uint64(n) {
		r.err = fmt.Errorf("short read")
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}
