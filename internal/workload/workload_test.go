package workload

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repligc/internal/faultinject"
)

// testSpec is a two-cohort serving mix small enough for unit tests but busy
// enough to provoke collections on the default heap: an interactive cohort
// with tight SLOs and a mutation-heavy batch cohort with bursty arrivals.
func testSpec() *Spec {
	return &Spec{
		Name:       "test-mixed",
		Seed:       7,
		DurationMs: 1500,
		Cohorts: []Cohort{
			{
				Name:    "interactive",
				Arrival: Arrival{Law: LawPoisson, RatePerSec: 400},
				Profile: Profile{
					ObjsPerReq: 6, ObjWords: 16, RetainPct: 0.25,
					SessionWords: 64, SessionReqs: 8,
					Mutations: 12, WorkSteps: 2000,
				},
				SLO: SLO{TargetMs: 2, DeadlineMs: 10},
			},
			{
				Name: "batch-ingest",
				Arrival: Arrival{
					Law: LawGamma, RatePerSec: 40, Shape: 0.7,
					Burst: &Burst{OnMs: 200, OffMs: 100, OffFactor: 4},
				},
				Profile: Profile{
					ObjsPerReq: 40, ObjWords: 64, RetainPct: 0.5,
					SessionWords: 256, SessionReqs: 4,
					Mutations: 48, WorkSteps: 20000,
				},
				SLO: SLO{TargetMs: 20, DeadlineMs: 100},
			},
		},
	}
}

func mustGenerate(t *testing.T, spec *Spec) *Trace {
	t.Helper()
	tr, err := Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(tr.Reqs) == 0 {
		t.Fatal("Generate produced no requests")
	}
	return tr
}

func TestGenerateDeterministicAndSeedSensitive(t *testing.T) {
	a := mustGenerate(t, testSpec())
	b := mustGenerate(t, testSpec())
	if !reflect.DeepEqual(a.Reqs, b.Reqs) {
		t.Fatal("same spec generated different traces")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same spec generated different fingerprints")
	}
	other := testSpec()
	other.Seed = 8
	c := mustGenerate(t, other)
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different seeds generated identical traces")
	}
	// Arrivals are sorted and in-horizon.
	last := a.Reqs[0].At
	for _, r := range a.Reqs {
		if r.At < last {
			t.Fatal("trace arrivals are not sorted")
		}
		last = r.At
		if r.At.Milliseconds() >= testSpec().DurationMs {
			t.Fatalf("arrival %v beyond the %v ms horizon", r.At, testSpec().DurationMs)
		}
	}
}

func TestArrivalLaws(t *testing.T) {
	for _, law := range []string{LawPoisson, LawGamma, LawWeibull, LawDeterministic} {
		spec := testSpec()
		spec.Cohorts = spec.Cohorts[:1]
		spec.Cohorts[0].Arrival = Arrival{Law: law, RatePerSec: 200, Shape: 1.5}
		tr := mustGenerate(t, spec)
		// Open-loop rate: expect roughly rate*duration arrivals; the laws all
		// have the configured mean, so a factor-2 band is generous.
		want := 200 * spec.DurationMs / 1000
		if n := float64(len(tr.Reqs)); n < want/2 || n > want*2 {
			t.Errorf("law %s: %d requests, want about %.0f", law, len(tr.Reqs), want)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := mustGenerate(t, testSpec())
	enc, err := EncodeTrace(tr)
	if err != nil {
		t.Fatalf("EncodeTrace: %v", err)
	}
	dec, err := DecodeTrace(enc)
	if err != nil {
		t.Fatalf("DecodeTrace: %v", err)
	}
	if !reflect.DeepEqual(tr.Reqs, dec.Reqs) {
		t.Fatal("decoded requests differ from encoded")
	}
	if tr.Fingerprint() != dec.Fingerprint() {
		t.Fatal("decoded fingerprint differs")
	}
	// Re-encoding the decoded trace is bit-identical: the artifact is a
	// canonical form.
	enc2, err := EncodeTrace(dec)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if string(enc) != string(enc2) {
		t.Fatal("re-encoded artifact differs byte-for-byte")
	}
}

func TestTraceCorruptionDetected(t *testing.T) {
	tr := mustGenerate(t, testSpec())
	enc, err := EncodeTrace(tr)
	if err != nil {
		t.Fatalf("EncodeTrace: %v", err)
	}
	cases := map[string]func([]byte) []byte{
		"bad magic":    func(b []byte) []byte { b[0] ^= 0xff; return b },
		"flipped byte": func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b },
		"truncated":    func(b []byte) []byte { return b[:len(b)-7] },
		"no footer":    func(b []byte) []byte { return b[:len(b)-29] },
	}
	for name, mutate := range cases {
		cp := append([]byte(nil), enc...)
		if _, err := DecodeTrace(mutate(cp)); err == nil {
			t.Errorf("%s: decode accepted a damaged artifact", name)
		} else {
			var ce *TraceCorruptError
			if !asTraceCorrupt(err, &ce) {
				t.Errorf("%s: error %v is not a *TraceCorruptError", name, err)
			}
		}
	}
}

func asTraceCorrupt(err error, target **TraceCorruptError) bool {
	for err != nil {
		if ce, ok := err.(*TraceCorruptError); ok {
			*target = ce
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestDeterminismMatrix is the satellite matrix: for each collector, serving
// the same trace twice is bit-identical (reports and heap fingerprints), and
// the semantic heap fingerprint agrees across collectors — the incremental
// real-time collector, its lazy variant, and the non-incremental core all
// computed the same session graph.
func TestDeterminismMatrix(t *testing.T) {
	tr := mustGenerate(t, testSpec())
	fps := map[string]string{}
	for _, coll := range []string{CollectorRT, CollectorRTLazy, CollectorStopCopyCore} {
		var legs [2]*Leg
		for round := 0; round < 2; round++ {
			rt, err := NewRuntime(tr.Spec, RuntimeOptions{Collector: coll})
			if err != nil {
				t.Fatalf("%s: NewRuntime: %v", coll, err)
			}
			leg, err := Serve(rt, tr, "det", ServeOptions{})
			if err != nil {
				t.Fatalf("%s: Serve: %v", coll, err)
			}
			legs[round] = leg
		}
		a, _ := json.Marshal(legs[0])
		b, _ := json.Marshal(legs[1])
		if string(a) != string(b) {
			t.Errorf("%s: two runs of the same trace produced different reports", coll)
		}
		fps[coll] = legs[0].HeapFingerprint
		if legs[0].Requests != len(tr.Reqs) {
			t.Errorf("%s: served %d of %d requests", coll, legs[0].Requests, len(tr.Reqs))
		}
	}
	if fps[CollectorRT] != fps[CollectorRTLazy] || fps[CollectorRT] != fps[CollectorStopCopyCore] {
		t.Errorf("heap fingerprints disagree across collectors: %v", fps)
	}
}

// TestReplayMatchesRecording: serving a decoded artifact yields exactly the
// metrics of serving the original trace.
func TestReplayMatchesRecording(t *testing.T) {
	tr := mustGenerate(t, testSpec())
	enc, err := EncodeTrace(tr)
	if err != nil {
		t.Fatalf("EncodeTrace: %v", err)
	}
	dec, err := DecodeTrace(enc)
	if err != nil {
		t.Fatalf("DecodeTrace: %v", err)
	}
	secA, err := RunLegs(tr, StandardLegs())
	if err != nil {
		t.Fatalf("RunLegs(recorded): %v", err)
	}
	secB, err := RunLegs(dec, StandardLegs())
	if err != nil {
		t.Fatalf("RunLegs(replayed): %v", err)
	}
	a, _ := json.Marshal(secA)
	b, _ := json.Marshal(secB)
	if string(a) != string(b) {
		t.Fatal("replaying the recorded trace produced different metrics")
	}
}

// TestNaiveBarrierWorseTails: on the same trace, the append-every-store
// barrier must show measurably worse tail latency than the coalescing
// barrier — the serving-facing form of the perf trajectory's headline.
func TestNaiveBarrierWorseTails(t *testing.T) {
	tr := mustGenerate(t, testSpec())
	sec, err := RunLegs(tr, StandardLegs())
	if err != nil {
		t.Fatalf("RunLegs: %v", err)
	}
	if len(sec.Legs) != 2 {
		t.Fatalf("expected 2 legs, got %d", len(sec.Legs))
	}
	naive, coal := sec.Legs[0], sec.Legs[1]
	if naive.Name != "naive-barrier" || coal.Name != "coalesced" {
		t.Fatalf("unexpected leg order: %s, %s", naive.Name, coal.Name)
	}
	if naive.HeapFingerprint != coal.HeapFingerprint {
		t.Fatal("barrier legs computed different session graphs")
	}
	worse := 0
	for i := range naive.Cohorts {
		if naive.Cohorts[i].Latency.P99 > coal.Cohorts[i].Latency.P99 {
			worse++
		}
		if naive.Cohorts[i].Latency.P99 < coal.Cohorts[i].Latency.P99 {
			t.Errorf("cohort %s: naive p99 %.3f ms beats coalesced %.3f ms",
				naive.Cohorts[i].Name, naive.Cohorts[i].Latency.P99, coal.Cohorts[i].Latency.P99)
		}
	}
	if worse == 0 {
		t.Errorf("naive barrier shows no tail-latency penalty on any cohort (naive p99s %v, coalesced %v)",
			[]float64{naive.Cohorts[0].Latency.P99, naive.Cohorts[1].Latency.P99},
			[]float64{coal.Cohorts[0].Latency.P99, coal.Cohorts[1].Latency.P99})
	}
}

// TestFaultInjectionUnderLoad drives a log-spike-plus-shrink plan under live
// traffic: the degradation ladder's emergency pauses must surface as SLO
// misses in the serving report, never as a crash.
func TestFaultInjectionUnderLoad(t *testing.T) {
	spec := testSpec()
	tr := mustGenerate(t, spec)
	rt, err := NewRuntime(spec, RuntimeOptions{Collector: CollectorRT})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	// One event per ~40 requests: spikes of logged mutations plus old-space
	// shrinks with tiny slack, restored before the end so the run finishes.
	n := len(tr.Reqs)
	plan := faultinject.Plan{Events: []faultinject.Event{
		{AtOp: int64(n / 8), Action: faultinject.LogSpike, Arg: 4096},
		{AtOp: int64(n / 4), Action: faultinject.ShrinkOld, Arg: 64 << 10},
		{AtOp: int64(n/4 + 10), Action: faultinject.LogSpike, Arg: 4096},
		{AtOp: int64(n/4 + 30), Action: faultinject.RestoreHeadroom},
		{AtOp: int64(n / 2), Action: faultinject.LogSpike, Arg: 8192},
	}}
	inj := faultinject.New(rt.Mutator, plan)
	leg, err := Serve(rt, tr, "faulted", ServeOptions{Inject: inj.Tick})
	if err != nil {
		t.Fatalf("Serve under fault injection: %v", err)
	}
	if inj.Injected != len(plan.Events) {
		t.Fatalf("injected %d of %d events", inj.Injected, len(plan.Events))
	}
	if leg.EmergencyCollections == 0 {
		t.Error("shrunken old space provoked no degradation-ladder emergencies")
	}
	lateOrMissed := 0
	for _, c := range leg.Cohorts {
		lateOrMissed += c.SLO.Late + c.SLO.Missed
	}
	if lateOrMissed == 0 {
		t.Error("emergency pauses left no mark on any cohort's SLO breakdown")
	}
}

func TestSectionValidates(t *testing.T) {
	tr := mustGenerate(t, testSpec())
	sec, err := RunLegs(tr, StandardLegs())
	if err != nil {
		t.Fatalf("RunLegs: %v", err)
	}
	data, err := json.MarshalIndent(BuildReport(sec), "", "  ")
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	if err := ValidateReport(data); err != nil {
		t.Fatalf("ValidateReport rejected a genuine report: %v", err)
	}
	// Every leg carries the serving section's required shape.
	for _, leg := range sec.Legs {
		if len(leg.MMU) == 0 || len(leg.Cohorts) != len(tr.Spec.Cohorts) {
			t.Fatalf("leg %s: missing MMU or cohorts", leg.Name)
		}
		for _, c := range leg.Cohorts {
			if c.SLO.Met+c.SLO.Late+c.SLO.Missed != c.Requests {
				t.Fatalf("leg %s cohort %s: SLO classes do not partition requests", leg.Name, c.Name)
			}
		}
	}
	// Perturbations must be rejected.
	bad := strings.Replace(string(data), ReportSchema, "repligc-bench/4", 1)
	if err := ValidateReport([]byte(bad)); err == nil {
		t.Error("ValidateReport accepted a stale schema")
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	rep.Serving.Legs[0].Cohorts[0].SLO.Met++
	perturbed, _ := json.Marshal(rep)
	if err := ValidateReport(perturbed); err == nil {
		t.Error("ValidateReport accepted an inconsistent SLO breakdown")
	}
}

func TestSpecValidation(t *testing.T) {
	cases := map[string]func(*Spec){
		"empty name":     func(s *Spec) { s.Name = "" },
		"no cohorts":     func(s *Spec) { s.Cohorts = nil },
		"zero duration":  func(s *Spec) { s.DurationMs = 0 },
		"dup cohort":     func(s *Spec) { s.Cohorts[1].Name = s.Cohorts[0].Name },
		"bad law":        func(s *Spec) { s.Cohorts[0].Arrival.Law = "zipf" },
		"zero rate":      func(s *Spec) { s.Cohorts[0].Arrival.RatePerSec = 0 },
		"gamma no shape": func(s *Spec) { s.Cohorts[1].Arrival.Shape = 0 },
		"slo inverted":   func(s *Spec) { s.Cohorts[0].SLO.DeadlineMs = 1 },
		"tiny session":   func(s *Spec) { s.Cohorts[0].Profile.SessionWords = 1 },
		"bad retain":     func(s *Spec) { s.Cohorts[0].Profile.RetainPct = 1.5 },
		"burst factor":   func(s *Spec) { s.Cohorts[1].Arrival.Burst.OffFactor = 0.5 },
	}
	for name, breakIt := range cases {
		s := testSpec()
		breakIt(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the broken spec", name)
		}
	}
	// ParseSpec rejects unknown fields.
	if _, err := ParseSpec([]byte(`{"name":"x","duration_ms":1,"cohorts":[],"typo_field":1}`)); err == nil {
		t.Error("ParseSpec accepted an unknown field")
	}
}
