// Package repligc is a from-scratch reproduction of "Real-Time Replication
// Garbage Collection" (Nettles & O'Toole, PLDI 1993): the first copying
// garbage collector that lets the mutator keep using the original objects
// while the collector incrementally builds replicas, kept consistent
// through a mutation log and handed over by an atomic flip.
//
// The package bundles everything the paper's system needed: a simulated
// two-generation heap with SML/NJ's object model (headers merged with
// forwarding pointers), the replication collector in all of the paper's
// configurations (real-time, minor-incremental, major-incremental), a
// classical stop-and-copy baseline, a MiniML compiler and VM whose data
// lives entirely on the simulated heap (the benchmark substrate), a
// deterministic simulated clock calibrated to the paper's hardware, and the
// benchmark/experiment harness that regenerates every table and figure of
// the paper's evaluation.
//
// # Quick start
//
//	rt, err := repligc.NewRealTime(repligc.RealTimeOptions{})
//	out, err := rt.CompileAndRun(`print "hello from MiniML\n"`)
//	fmt.Println(out, rt.GC.Pauses().Max())
//
// Lower-level access (allocation, write barrier, handles) is available via
// rt.Mutator; see the examples/ directory for allocation-level, interactive
// and benchmark-style programs.
package repligc

import (
	"fmt"

	"repligc/internal/bench"
	"repligc/internal/bytecode"
	"repligc/internal/core"
	"repligc/internal/heap"
	"repligc/internal/lang"
	"repligc/internal/policy"
	"repligc/internal/simtime"
	"repligc/internal/stopcopy"
	"repligc/internal/vm"
)

// Re-exported core types. The facade exposes the internal packages' types
// as aliases so downstream code can use the full API surface through this
// single import.
type (
	// Heap is the simulated two-generation heap.
	Heap = heap.Heap
	// HeapConfig sizes a heap.
	HeapConfig = heap.Config
	// Value is a tagged heap word (immediate integer or pointer).
	Value = heap.Value
	// Kind classifies heap objects.
	Kind = heap.Kind
	// Header is an object descriptor.
	Header = heap.Header

	// Mutator is the allocation / write-barrier / getheader interface.
	Mutator = core.Mutator
	// Handle pins a heap value for Go code across collections.
	Handle = core.Handle
	// Collector is the mutator-facing collector contract.
	Collector = core.Collector
	// GCStats are the collector's work counters.
	GCStats = core.GCStats
	// ReplicatingConfig parameterises the replication collector
	// (N, O, L, A and the incremental switches).
	ReplicatingConfig = core.Config
	// Replicating is the paper's replication collector.
	Replicating = core.Replicating
	// LogPolicy selects which mutations the write barrier records.
	LogPolicy = core.LogPolicy

	// StopCopy is the stop-and-copy baseline collector.
	StopCopy = stopcopy.Collector
	// StopCopyConfig parameterises the baseline.
	StopCopyConfig = stopcopy.Config

	// Clock is the deterministic simulated clock.
	Clock = simtime.Clock
	// CostModel fixes the simulated cost of each unit of work.
	CostModel = simtime.CostModel
	// Duration is simulated time in nanoseconds.
	Duration = simtime.Duration

	// Script records/replays collection policy decisions (paper §4.2).
	Script = policy.Script

	// Program is compiled MiniML bytecode.
	Program = bytecode.Program
	// VM executes MiniML bytecode on the simulated heap.
	VM = vm.VM

	// BenchSuite runs the paper's evaluation experiments.
	BenchSuite = bench.Suite
	// BenchScale sizes the benchmark workloads.
	BenchScale = bench.Scale

	// OOMError is the typed heap-exhaustion failure every collector
	// surfaces when the degradation ladder (forced completion, emergency
	// major collection) cannot free enough space. Extract it from a
	// wrapped error chain with AsOOM.
	OOMError = core.OOMError
)

// IsOOM reports whether err's chain contains a heap-exhaustion failure.
func IsOOM(err error) bool { return core.IsOOM(err) }

// AsOOM extracts the typed *OOMError from err's chain.
func AsOOM(err error) (*OOMError, bool) { return core.AsOOM(err) }

// Object kinds.
const (
	KindRecord  = heap.KindRecord
	KindClosure = heap.KindClosure
	KindString  = heap.KindString
	KindRef     = heap.KindRef
	KindArray   = heap.KindArray
	KindBytes   = heap.KindBytes
)

// Logging policies.
const (
	LogPointersOnly = core.LogPointersOnly
	LogAllMutations = core.LogAllMutations
)

// Default1993 is the cost model calibrated to the paper's hardware.
func Default1993() CostModel { return simtime.Default1993() }

// Prelude is MiniML's standard library source (lists, strings, arrays,
// futures); prepend it to programs that want it.
const Prelude = lang.Prelude

// NewBenchSuite builds the experiment suite; see cmd/rtgc-bench.
func NewBenchSuite(s BenchScale) *BenchSuite { return bench.NewSuite(s) }

// DefaultBenchScale is the full-evaluation workload scale.
func DefaultBenchScale() BenchScale { return bench.DefaultScale() }

// RealTimeOptions configures NewRealTime. Zero values take the paper's
// defaults: N = 0.2 MB, O = 1 MB, L = 100 KB (the 50 ms pause target).
type RealTimeOptions struct {
	NurseryBytes        int64
	MajorThresholdBytes int64
	CopyLimitBytes      int64
	// Minor/MajorIncremental default to true (the real-time collector);
	// set DisableIncrementalMinor / DisableIncrementalMajor to obtain the
	// paper's partial configurations.
	DisableIncrementalMinor bool
	DisableIncrementalMajor bool
	// InterleavedTaxPermille enables the concurrent-style pacing of the
	// paper's §6: collector work rides on allocation as a copying tax
	// (bytes of work per 1000 bytes allocated) and pause-sized stops all
	// but disappear. 1500 is a reasonable value; zero disables.
	InterleavedTaxPermille int
	// Record, when non-nil, accumulates the run's policy script (§4.2);
	// Replay drives collections from one (see NewStopCopyReplay).
	Record *Script
	// HeapConfig overrides the heap sizing; any zero field keeps its
	// default (nursery sized from NurseryBytes, 96 MB old semispaces).
	HeapConfig HeapConfig
}

// Runtime bundles one heap + mutator + collector, ready to allocate,
// compile and run MiniML.
type Runtime struct {
	Heap    *Heap
	Mutator *Mutator
	GC      Collector
	Clock   *Clock
}

// NewRealTime builds a runtime with the replication collector.
func NewRealTime(o RealTimeOptions) (*Runtime, error) {
	if o.NurseryBytes == 0 {
		o.NurseryBytes = 200 << 10
	}
	if o.MajorThresholdBytes == 0 {
		o.MajorThresholdBytes = 1 << 20
	}
	if o.CopyLimitBytes == 0 {
		o.CopyLimitBytes = 100 << 10
	}
	hc := o.HeapConfig
	if hc.NurseryBytes == 0 {
		hc.NurseryBytes = o.NurseryBytes
	}
	if hc.NurseryCapBytes == 0 {
		hc.NurseryCapBytes = 64 * hc.NurseryBytes
	}
	if hc.OldSemiBytes == 0 {
		hc.OldSemiBytes = 96 << 20
	}
	h := heap.New(hc)
	clock := simtime.NewClock()
	m := core.NewMutator(h, clock, simtime.Default1993(), core.LogAllMutations)
	gc := core.NewReplicating(h, core.Config{
		NurseryBytes:           o.NurseryBytes,
		MajorThresholdBytes:    o.MajorThresholdBytes,
		CopyLimitBytes:         o.CopyLimitBytes,
		IncrementalMinor:       !o.DisableIncrementalMinor,
		IncrementalMajor:       !o.DisableIncrementalMajor,
		InterleavedTaxPermille: o.InterleavedTaxPermille,
		BoundedLogProcessing:   o.InterleavedTaxPermille > 0,
		Record:                 o.Record,
	})
	m.AttachGC(gc)
	return &Runtime{Heap: h, Mutator: m, GC: gc, Clock: clock}, nil
}

// NewStopCopyReplay builds a stop-and-copy runtime whose collections are
// driven by a policy script recorded from a real-time run — the paper's
// §4.2 methodology for measuring mechanism costs with identical policy.
func NewStopCopyReplay(nurseryBytes int64, script *Script) (*Runtime, error) {
	if nurseryBytes == 0 {
		nurseryBytes = 200 << 10
	}
	h := heap.New(HeapConfig{
		NurseryBytes:    nurseryBytes,
		NurseryCapBytes: 64 * nurseryBytes,
		OldSemiBytes:    96 << 20,
	})
	clock := simtime.NewClock()
	m := core.NewMutator(h, clock, simtime.Default1993(), core.LogAllMutations)
	gc := stopcopy.New(h, stopcopy.Config{NurseryBytes: nurseryBytes, Replay: script})
	m.AttachGC(gc)
	return &Runtime{Heap: h, Mutator: m, GC: gc, Clock: clock}, nil
}

// NewStopCopy builds a runtime with the stop-and-copy baseline.
func NewStopCopy(nurseryBytes, majorThresholdBytes int64) (*Runtime, error) {
	if nurseryBytes == 0 {
		nurseryBytes = 200 << 10
	}
	if majorThresholdBytes == 0 {
		majorThresholdBytes = 1 << 20
	}
	h := heap.New(HeapConfig{
		NurseryBytes:    nurseryBytes,
		NurseryCapBytes: 64 * nurseryBytes,
		OldSemiBytes:    96 << 20,
	})
	clock := simtime.NewClock()
	m := core.NewMutator(h, clock, simtime.Default1993(), core.LogPointersOnly)
	gc := stopcopy.New(h, stopcopy.Config{
		NurseryBytes:        nurseryBytes,
		MajorThresholdBytes: majorThresholdBytes,
	})
	m.AttachGC(gc)
	return &Runtime{Heap: h, Mutator: m, GC: gc, Clock: clock}, nil
}

// Compile compiles MiniML source on this runtime's heap (the compiler's
// working data is itself collected — the paper's Comp workload).
func (r *Runtime) Compile(src string) (*Program, error) {
	return lang.Compile(r.Mutator, src)
}

// CompileAndRun compiles and executes a MiniML program, returning its
// printed output. Collector pauses and statistics accumulate on r.GC.
func (r *Runtime) CompileAndRun(src string) (string, error) {
	prog, err := r.Compile(src)
	if err != nil {
		return "", err
	}
	machine := vm.New(r.Mutator, prog)
	machine.MaxSteps = 2_000_000_000
	err = machine.Run()
	return machine.Output.String(), err
}

// Finish drives any in-progress incremental collection to completion. A
// non-nil error is heap exhaustion (IsOOM reports true on it); the heap
// remains auditable.
func (r *Runtime) Finish() error { return r.GC.FinishCycles(r.Mutator) }

// StatsSummary renders the collector's statistics in one line.
func (r *Runtime) StatsSummary() string {
	st := r.GC.Stats()
	rec := r.GC.Pauses()
	return fmt.Sprintf("%s: elapsed=%v alloc=%.1fMB minors=%d majors=%d pauses=%d p99=%v max=%v",
		r.GC.Name(), r.Clock.Now(), float64(r.Mutator.BytesAllocated)/(1<<20),
		st.MinorCollections, st.MajorCollections, st.PauseCount,
		rec.Percentile(99), rec.Max())
}
