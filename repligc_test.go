package repligc_test

import (
	"os"
	"strings"
	"testing"

	"repligc"
)

func TestQuickstartFacade(t *testing.T) {
	rt, err := repligc.NewRealTime(repligc.RealTimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := rt.CompileAndRun(`print ("6*7=" ^ itos (6 * 7) ^ "\n")`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "6*7=42\n" {
		t.Fatalf("output %q", out)
	}
	rt.Finish()
	if !strings.Contains(rt.StatsSummary(), "rt:") {
		t.Errorf("summary: %s", rt.StatsSummary())
	}
}

func TestFacadeCollectsUnderPressure(t *testing.T) {
	rt, err := repligc.NewRealTime(repligc.RealTimeOptions{
		NurseryBytes:        64 << 10,
		MajorThresholdBytes: 256 << 10,
		CopyLimitBytes:      16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := rt.CompileAndRun(`
fun build n acc = if n = 0 then acc else build (n - 1) (n :: acc) in
fun sum l = case l of [] => 0 | x :: r => x + sum r in
fun loop k acc = if k = 0 then acc else loop (k - 1) (acc + sum (build 200 [])) in
print (itos (loop 500 0))`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "10050000" {
		t.Fatalf("output %q", out)
	}
	rt.Finish()
	st := rt.GC.Stats()
	if st.MinorCollections == 0 || st.MajorCollections == 0 {
		t.Fatalf("collections: %d minor, %d major", st.MinorCollections, st.MajorCollections)
	}
}

func TestStopCopyFacadeMatchesRealTime(t *testing.T) {
	prog := `
fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) in
print (itos (fib 18))`
	rt, _ := repligc.NewRealTime(repligc.RealTimeOptions{})
	sc, _ := repligc.NewStopCopy(0, 0)
	a, err := rt.CompileAndRun(prog)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.CompileAndRun(prog)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("outputs differ: %q vs %q", a, b)
	}
}

func TestCompileErrorSurfaces(t *testing.T) {
	rt, _ := repligc.NewRealTime(repligc.RealTimeOptions{})
	if _, err := rt.CompileAndRun(`nonexistent_variable`); err == nil {
		t.Fatal("expected compile error")
	}
}

func TestSampleProgramsRun(t *testing.T) {
	cases := []struct {
		file    string
		prelude bool
		want    string // substring of the expected output
	}{
		{"examples/miniml/sieve.ml", false, "2 3 5 7 11"},
		{"examples/miniml/queens.ml", true, "queens 8 -> 92"},
		{"examples/miniml/life.ml", true, "alive after 30 generations: 5"},
		{"examples/miniml/huffman.ml", true, "weighted code length: 13195"},
	}
	for _, c := range cases {
		src, err := os.ReadFile(c.file)
		if err != nil {
			t.Fatalf("%s: %v", c.file, err)
		}
		text := string(src)
		if c.prelude {
			text = repligc.Prelude + text
		}
		rt, err := repligc.NewRealTime(repligc.RealTimeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		out, err := rt.CompileAndRun(text)
		if err != nil {
			t.Fatalf("%s: %v", c.file, err)
		}
		if !strings.Contains(out, c.want) {
			t.Errorf("%s: output %q missing %q", c.file, out, c.want)
		}
	}
}
